#!/bin/sh
# CI lint: no new polymorphic comparison sites in lib/.
#
# Bare [compare] (and the explicit [Stdlib.compare]) over records and
# variants ties behaviour to structural layout: reordering record fields
# or constructors silently changes sort orders and dedup keys. Library
# code must compare through per-type functions (Field.compare,
# Time.compare, Value.compare, ...) or pin the type at the call site.
#
# The greppable proxies are the compare family; bare structural (=) on
# records cannot be detected lexically and stays a review concern. Known
# audited sites — the ones kept after the order-sensitivity review, each
# either type-pinned or applied to canonical tuple forms — live in
# tools/poly_compare_allowlist.txt as "path:line text" entries (line
# numbers stripped, so the list survives unrelated edits). Add a site
# only together with a justifying comment in the code.
set -u
cd "$(dirname "$0")/.."

allow=tools/poly_compare_allowlist.txt

found=$(grep -rn -E '(^|[^._[:alnum:]])(Stdlib\.)?compare([^_[:alnum:]]|$)' \
    lib --include='*.ml' \
  | grep -v -E '[A-Z][[:alnum:]_]*\.compare' \
  | grep -v -E 'let compare|compare_|~cmp' \
  | sed 's/:[0-9][0-9]*:/:/')

new=$(printf '%s\n' "$found" | grep -v -x -F -f "$allow" | grep -v '^$' || true)

if [ -n "$new" ]; then
  echo "error: new polymorphic compare sites in lib/ — use a per-type" >&2
  echo "compare, or extend tools/poly_compare_allowlist.txt with a" >&2
  echo "justifying comment at the site:" >&2
  printf '%s\n' "$new" >&2
  exit 1
fi
echo "poly-compare lint: ok"
