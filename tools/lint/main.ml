(* ses-lint: the repo's self-hosted static analyzer.

   Usage: main.exe [--json] [--quiet] [--root DIR] [PATH ...]

   Walks every .ml/.mli under the given root-relative paths (default:
   lib bin bench test tools), runs the {!Rules} engine on each, and
   prints the findings as text — or, with [--json], as a JSON array of
   per-file groups built from [Ses_analysis.Diagnostic.list_to_json],
   the same renderer [ses analyze --json] uses. Exits 1 when any
   error-severity diagnostic survives suppression, 0 otherwise.

   Directory walking skips [_build], hidden directories, and cram
   fixture corpora ([*.t] directories): the lint fixtures under
   test/lint.t are deliberately broken and are exercised by the cram
   test itself, not by repo-wide runs. *)

module Diagnostic = Ses_analysis.Diagnostic

let default_paths = [ "lib"; "bin"; "bench"; "test"; "tools" ]

let usage () =
  prerr_endline
    "usage: ses-lint [--json] [--quiet] [--root DIR] [PATH ...]\n\
     \  --json   emit machine-readable findings on stdout\n\
     \  --quiet  print nothing, only set the exit status\n\
     \  --root   resolve PATHs against DIR and report them relative to it\n\
     PATHs default to: lib bin bench test tools";
  exit 2

type mode = Text | Json | Quiet

(* ------------------------------------------------------------------ *)
(* File discovery                                                     *)
(* ------------------------------------------------------------------ *)

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

let skip_dir name =
  String.equal name "_build"
  || (String.length name > 0 && Char.equal name.[0] '.')
  || has_suffix ~suffix:".t" name

(* Returns root-relative paths of the .ml/.mli files under [rel],
   sorted for deterministic reports. *)
let discover ~root rel =
  let acc = ref [] in
  let rec walk rel =
    let full = Filename.concat root rel in
    if Sys.is_directory full then
      Array.iter
        (fun name ->
          let child = Filename.concat full name in
          if Sys.is_directory child then begin
            if not (skip_dir name) then walk (Filename.concat rel name)
          end
          else if has_suffix ~suffix:".ml" name || has_suffix ~suffix:".mli" name
          then acc := Filename.concat rel name :: !acc)
        (Sys.readdir full)
    else acc := rel :: !acc
  in
  if not (Sys.file_exists (Filename.concat root rel)) then begin
    Printf.eprintf "ses-lint: no such path: %s\n" rel;
    exit 2
  end;
  walk rel;
  List.sort String.compare !acc

(* ------------------------------------------------------------------ *)
(* Entry                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let mode = ref Text in
  let root = ref "." in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
        mode := Json;
        parse_args rest
    | "--quiet" :: rest | "-q" :: rest ->
        mode := Quiet;
        parse_args rest
    | "--root" :: dir :: rest ->
        root := dir;
        parse_args rest
    | ("--help" | "-h" | "--root") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && Char.equal arg.[0] '-' -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let paths =
    match List.rev !paths with [] -> default_paths | l -> l
  in
  let files = List.concat_map (discover ~root:!root) paths in
  let reports =
    List.filter_map
      (fun rel ->
        let full = Filename.concat !root rel in
        let source = Rules.read_file full in
        let findings =
          if has_suffix ~suffix:".mli" rel then
            Rules.lint_interface ~path:rel source
          else
            let has_mli =
              if Rules.in_lib rel then
                Some
                  (Sys.file_exists
                     (Filename.concat !root
                        (Filename.remove_extension rel ^ ".mli")))
              else None
            in
            Rules.lint_implementation ~path:rel ~has_mli source
        in
        match findings with [] -> None | _ -> Some (rel, findings))
      files
  in
  let diags_of fs = List.map (fun (f : Rules.finding) -> f.diag) fs in
  let count sev =
    List.fold_left
      (fun n (_, fs) -> n + Diagnostic.count sev (diags_of fs))
      0 reports
  in
  let errors = count Diagnostic.Error and warnings = count Diagnostic.Warning in
  (match !mode with
  | Quiet -> ()
  | Json ->
      let group (rel, fs) =
        Printf.sprintf "{\"file\":%s,\"diagnostics\":%s}"
          (Diagnostic.json_string rel)
          (Diagnostic.list_to_json (diags_of fs))
      in
      Printf.printf
        "{\"files\":%d,\"errors\":%d,\"warnings\":%d,\"findings\":[%s]}\n"
        (List.length files) errors warnings
        (String.concat "," (List.map group reports))
  | Text ->
      List.iter
        (fun (rel, fs) ->
          List.iter
            (fun (f : Rules.finding) ->
              Printf.printf "%s: %s\n" rel (Diagnostic.to_string f.diag))
            fs)
        reports;
      Printf.printf "ses-lint: %d error%s, %d warning%s (%d files)\n" errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")
        (List.length files));
  exit (if errors > 0 then 1 else 0)
