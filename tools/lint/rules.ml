(* The ses-lint rule engine: one ppxlib Parsetree traversal per file
   evaluating every syntactic invariant the repo depends on, reporting
   through [Ses_analysis.Diagnostic] so codebase-level findings share
   the query analyzer's severity/code/span records and renderers.

   Rules are syntactic, not typed: the driver parses with ppxlib's
   parser (no compilation environment), so each rule is written to be
   conservative — scoping is tracked where it matters (a module-local
   [compare] shadows the polymorphic one), and anything the syntax
   cannot decide is left alone rather than guessed at.

   Suppression is per-site: [(expr [@ses.allow "rule-id"])] silences
   one finding inside the attributed node, [[@@@ses.allow "rule-id"]]
   silences a rule for the whole file. An allow that suppresses nothing
   is itself an error ([stale-suppression]), so suppressions cannot
   outlive the code they excuse. *)

open Ppxlib
module Diagnostic = Ses_analysis.Diagnostic
module Span = Ses_pattern.Span

(* ------------------------------------------------------------------ *)
(* Rule catalog                                                       *)
(* ------------------------------------------------------------------ *)

let rule_poly_compare = "poly-compare"
let rule_phys_equal = "phys-equal"
let rule_hashtbl_hash = "hashtbl-hash"
let rule_swallowed_exception = "swallowed-exception"
let rule_mutex_discipline = "mutex-discipline"
let rule_print_stdout = "print-stdout"
let rule_missing_mli = "missing-mli"
let rule_stale_suppression = "stale-suppression"
let rule_parse_error = "parse-error"

type rule = { id : string; doc : string }

let catalog =
  [
    {
      id = rule_poly_compare;
      doc =
        "bare [compare]/[Stdlib.compare], or a structural (=)/(<>) whose \
         operand is a tuple, record, or constructor application — ties \
         behaviour to structural layout; use a per-type compare";
    };
    {
      id = rule_phys_equal;
      doc =
        "physical equality (==)/(!=) outside the identity-caching modules \
         that document a pointer-identity contract";
    };
    {
      id = rule_hashtbl_hash;
      doc =
        "[Hashtbl.hash] outside approved partition-routing sites — it \
         silently degrades sharding when a key changes representation";
    };
    {
      id = rule_swallowed_exception;
      doc =
        "a [try] handler that catches everything and discards the \
         exception; an error in the server/pool paths, a warning elsewhere";
    };
    {
      id = rule_mutex_discipline;
      doc =
        "[Mutex.lock] with no matching [Mutex.unlock] (or [Fun.protect] \
         release) in the same top-level definition";
    };
    {
      id = rule_print_stdout;
      doc =
        "direct stdout output in lib/ — telemetry and the CLI own the \
         process's stdout";
    };
    {
      id = rule_missing_mli;
      doc = "a lib/ module without an explicit .mli interface";
    };
    {
      id = rule_stale_suppression;
      doc = "a [@ses.allow] attribute that no longer suppresses anything";
    };
    { id = rule_parse_error; doc = "a source file ppxlib's parser rejects" };
  ]

let known_rule id = List.exists (fun r -> String.equal r.id id) catalog

(* ------------------------------------------------------------------ *)
(* Per-path policy                                                    *)
(* ------------------------------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let in_lib path = has_prefix ~prefix:"lib/" path

(* Modules whose pointer-identity checks are part of a documented
   contract: the analyzer/planner/shared-plan "analysis changed
   nothing" caching protocol (see [Automaton.prune]'s doc comment) and
   the tests that assert it. *)
let phys_equal_allowed path =
  List.exists (String.equal path)
    [
      "lib/core/automaton.ml";
      "lib/core/planner.ml";
      "lib/core/shared_plan.ml";
      "lib/analysis/analyzer.ml";
      "test/test_analysis.ml";
      "test/test_store.ml";
    ]

(* Where a swallowed exception is load-bearing for liveness: the
   select-loop server must never lose a protocol error, and the domain
   pool's failure channel is the only way a worker exception reaches
   the caller. *)
let swallowed_is_error path =
  has_prefix ~prefix:"lib/server/" path
  || String.equal path "lib/core/domain_pool.ml"

(* ------------------------------------------------------------------ *)
(* Locations                                                          *)
(* ------------------------------------------------------------------ *)

(* ses spans are 1-based lines and columns with the end one past the
   last character — the same convention the query lexer uses — so a
   lexing position converts by [cnum - bol + 1] on both ends. *)
let span_of_location (loc : Location.t) =
  let line (p : Lexing.position) = p.pos_lnum in
  let col (p : Lexing.position) = p.pos_cnum - p.pos_bol + 1 in
  Span.make ~start_line:(line loc.loc_start) ~start_col:(col loc.loc_start)
    ~end_line:(line loc.loc_end) ~end_col:(col loc.loc_end)

let pos_leq (l1, c1) (l2, c2) = l1 < l2 || (l1 = l2 && c1 <= c2)

let loc_contains ~(outer : Location.t) ~(inner : Location.t) =
  let p (pos : Lexing.position) = (pos.pos_lnum, pos.pos_cnum - pos.pos_bol) in
  pos_leq (p outer.loc_start) (p inner.loc_start)
  && pos_leq (p inner.loc_end) (p outer.loc_end)

(* ------------------------------------------------------------------ *)
(* Findings and suppressions                                          *)
(* ------------------------------------------------------------------ *)

type finding = { diag : Diagnostic.t; floc : Location.t; rule : string }

type allow = {
  a_rule : string;
  a_scope : Location.t option;  (* [None] = whole file *)
  a_loc : Location.t;  (* the attribute itself, for stale reports *)
  mutable a_used : bool;
}

type file_report = { path : string; mutable findings : finding list }

let report ctx ~rule ~severity ~loc message =
  let diag =
    Diagnostic.make ~span:(span_of_location loc) severity rule message
  in
  ctx.findings <- { diag; floc = loc; rule } :: ctx.findings

(* ------------------------------------------------------------------ *)
(* Small AST predicates                                               *)
(* ------------------------------------------------------------------ *)

(* A structurally composite operand: comparing one with (=)/(<>) walks
   constructors or fields, so reordering a variant or record silently
   changes the answer. Constant constructors ([None], [[]]) and
   literals stay trivial — flagging [x = None] would only breed
   suppressions. *)
let rec composite_operand e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) | Pexp_variant (_, Some _) -> true
  | Pexp_constraint (inner, _) -> composite_operand inner
  | _ -> false

(* [Some None] = catch-all wildcard, [Some (Some v)] = catch-all that
   binds [v], [None] = a real (constructor-specific) pattern. *)
let catch_all_binding pat =
  match pat.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var v -> Some (Some v.txt)
  | Ppat_alias ({ ppat_desc = Ppat_any; _ }, v) -> Some (Some v.txt)
  | _ -> None

let expr_uses_var name e =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident n; _ } when String.equal n name ->
            found := true
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  !found

let pattern_binds name pat =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var v when String.equal v.txt name -> found := true
        | Ppat_alias (_, v) when String.equal v.txt name -> found := true
        | _ -> ());
        super#pattern p
    end
  in
  it#pattern pat;
  !found

let param_binds name (p : function_param) =
  match p.pparam_desc with
  | Pparam_val (_, _, pat) -> pattern_binds name pat
  | Pparam_newtype _ -> false

(* Renders the small expressions mutexes live in ([m], [w.mutex],
   [t.state.lock]) to a comparison key; anything richer becomes [None]
   and matches any unlock, keeping the rule conservative. *)
let rec mutex_key e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten_exn txt))
  | Pexp_field (base, { txt; _ }) -> (
      match mutex_key base with
      | Some b ->
          Some (b ^ "." ^ String.concat "." (Longident.flatten_exn txt))
      | None -> None)
  | _ -> None

let stdout_printer txt =
  match txt with
  | Lident
      ( "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes" )
  | Ldot
      ( Lident "Stdlib",
        ( "print_string" | "print_endline" | "print_newline" | "print_char"
        | "print_int" | "print_float" | "print_bytes" ) ) ->
      true
  | Ldot (Lident "Printf", "printf")
  | Ldot
      ( Lident "Format",
        ( "printf" | "print_string" | "print_newline" | "print_char"
        | "print_int" | "print_float" | "print_flush" ) ) ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Suppression collection                                             *)
(* ------------------------------------------------------------------ *)

let allow_payload (attr : attribute) =
  if String.equal attr.attr_name.txt "ses.allow" then
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ( { pexp_desc = Pexp_constant (Pconst_string (id, _, _)); _ },
                  _ );
            _;
          };
        ] ->
        Some (Ok id)
    | _ -> Some (Error "expected a string payload: [@ses.allow \"rule-id\"]")
  else None

(* ------------------------------------------------------------------ *)
(* The single-pass linter                                             *)
(* ------------------------------------------------------------------ *)

class linter (ctx : file_report) =
  object (self)
    inherit Ast_traverse.iter as super

    (* > 0 while a local [compare] binding is in scope; structure-level
       bindings push without popping (they scope to end of file). *)
    val mutable compare_shadow = 0

    (* Mutex.lock/unlock operand keys seen inside the current top-level
       structure item; flushed per item by [structure]. *)
    val mutable locks : (string option * Location.t) list = []
    val mutable unlocks : string option list = []
    val mutable allows : allow list = []

    method allows = allows

    method private with_shadow shadows f =
      if shadows then begin
        compare_shadow <- compare_shadow + 1;
        f ();
        compare_shadow <- compare_shadow - 1
      end
      else f ()

    (* Attribute payloads are data, not program code — and a payload
       that parses as a structure would re-enter [structure] below and
       clear the per-item lock accumulators mid-definition. *)
    method! attribute _ = ()

    method private add_allow ~scope (attr : attribute) =
      match allow_payload attr with
      | None -> ()
      | Some (Error msg) ->
          report ctx ~rule:rule_stale_suppression ~severity:Diagnostic.Error
            ~loc:attr.attr_loc ("malformed [@ses.allow]: " ^ msg)
      | Some (Ok id) ->
          if not (known_rule id) then
            report ctx ~rule:rule_stale_suppression ~severity:Diagnostic.Error
              ~loc:attr.attr_loc
              (Printf.sprintf "[@ses.allow %S] names no known rule" id)
          else
            allows <-
              { a_rule = id; a_scope = scope; a_loc = attr.attr_loc;
                a_used = false }
              :: allows

    (* ---- rule checks on one expression node ---- *)

    method private check_expression e =
      (match e.pexp_desc with
      | Pexp_ident { txt = Lident "compare"; _ } when compare_shadow = 0 ->
          report ctx ~rule:rule_poly_compare ~severity:Diagnostic.Error
            ~loc:e.pexp_loc
            "polymorphic [compare]: use a per-type compare (Int.compare, \
             String.compare, Value.compare, ...) or a local typed comparator"
      | Pexp_ident { txt = Ldot (Lident "Stdlib", "compare"); _ } ->
          report ctx ~rule:rule_poly_compare ~severity:Diagnostic.Error
            ~loc:e.pexp_loc
            "polymorphic [Stdlib.compare]: use a per-type compare"
      | Pexp_ident { txt = Lident (("==" | "!=") as op); _ }
        when not (phys_equal_allowed ctx.path) ->
          report ctx ~rule:rule_phys_equal ~severity:Diagnostic.Error
            ~loc:e.pexp_loc
            (Printf.sprintf
               "physical equality (%s) outside the identity-caching modules: \
                compare with a per-type equal, or document the pointer \
                contract and extend the allowlist in tools/lint/rules.ml" op)
      | Pexp_ident { txt = Ldot (Lident "Hashtbl", "hash"); _ } ->
          report ctx ~rule:rule_hashtbl_hash ~severity:Diagnostic.Error
            ~loc:e.pexp_loc
            "[Hashtbl.hash] hashes the runtime representation: route through \
             a per-type hash, or [@ses.allow \"hashtbl-hash\"] an audited \
             partition-routing site"
      | _ -> ());
      match e.pexp_desc with
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); _ };
              _ },
            [ (Nolabel, a); (Nolabel, b) ] )
        when composite_operand a || composite_operand b ->
          report ctx ~rule:rule_poly_compare ~severity:Diagnostic.Error
            ~loc:e.pexp_loc
            (Printf.sprintf
               "structural (%s) on a constructor/tuple/record operand depends \
                on declaration layout: match on the shape or use a per-type \
                equal" op)
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Ldot (Lident "Mutex", "lock"); _ };
              _ },
            [ (Nolabel, m) ] ) ->
          locks <- (mutex_key m, e.pexp_loc) :: locks
      | Pexp_apply
          ( {
              pexp_desc =
                Pexp_ident { txt = Ldot (Lident "Mutex", "unlock"); _ };
              _;
            },
            [ (Nolabel, m) ] ) ->
          unlocks <- mutex_key m :: unlocks
      | Pexp_ident { txt; _ }
        when in_lib ctx.path && stdout_printer txt ->
          report ctx ~rule:rule_print_stdout ~severity:Diagnostic.Error
            ~loc:e.pexp_loc
            "library code must not write to stdout: return the text, take a \
             sink, or log through telemetry"
      | Pexp_try (_, cases) ->
          List.iter
            (fun c ->
              match catch_all_binding c.pc_lhs with
              | None -> ()
              | Some bound ->
                  let swallows =
                    match bound with
                    | None -> true
                    | Some name -> not (expr_uses_var name c.pc_rhs)
                  in
                  if swallows then
                    let severity =
                      if swallowed_is_error ctx.path then Diagnostic.Error
                      else Diagnostic.Warning
                    in
                    report ctx ~rule:rule_swallowed_exception ~severity
                      ~loc:c.pc_lhs.ppat_loc
                      "catch-all handler discards the exception: match the \
                       exceptions this expression can actually raise, or \
                       propagate/record the failure")
            cases
      | _ -> ()

    (* ---- traversal with [compare] scoping ---- *)

    method private iter_case c =
      self#with_shadow
        (pattern_binds "compare" c.pc_lhs)
        (fun () ->
          Option.iter self#expression c.pc_guard;
          self#expression c.pc_rhs)

    method! expression e =
      List.iter (self#add_allow ~scope:(Some e.pexp_loc)) e.pexp_attributes;
      self#check_expression e;
      match e.pexp_desc with
      | Pexp_let (rf, vbs, body) ->
          let shadows =
            List.exists (fun vb -> pattern_binds "compare" vb.pvb_pat) vbs
          in
          List.iter
            (fun vb ->
              List.iter
                (self#add_allow ~scope:(Some vb.pvb_loc))
                vb.pvb_attributes)
            vbs;
          let walk_bound () =
            List.iter (fun vb -> self#expression vb.pvb_expr) vbs
          in
          (match rf with
          | Recursive -> self#with_shadow shadows walk_bound
          | Nonrecursive -> walk_bound ());
          self#with_shadow shadows (fun () -> self#expression body)
      | Pexp_function (params, _, body) ->
          let shadows = List.exists (param_binds "compare") params in
          List.iter
            (fun p ->
              match p.pparam_desc with
              | Pparam_val (_, default, _) ->
                  Option.iter self#expression default
              | Pparam_newtype _ -> ())
            params;
          self#with_shadow shadows (fun () ->
              match body with
              | Pfunction_body b -> self#expression b
              | Pfunction_cases (cases, _, _) ->
                  List.iter self#iter_case cases)
      | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
          self#expression scrut;
          List.iter self#iter_case cases
      | _ -> super#expression e

    (* Top-level items are walked one by one so (a) a structure-level
       [let compare] shadows every later item, and (b) the mutex rule
       can pair locks and unlocks within one definition. *)
    method! structure items =
      List.iter
        (fun item ->
          let shadows =
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.exists
                  (fun vb -> pattern_binds "compare" vb.pvb_pat)
                  vbs
            | _ -> false
          in
          let recursive =
            match item.pstr_desc with
            | Pstr_value (Recursive, _) -> true
            | _ -> false
          in
          if shadows && recursive then compare_shadow <- compare_shadow + 1;
          locks <- [];
          unlocks <- [];
          self#structure_item item;
          List.iter
            (fun (key, loc) ->
              let matched =
                List.exists
                  (fun ukey ->
                    match (key, ukey) with
                    | Some k, Some u -> String.equal k u
                    | None, _ | _, None -> true)
                  unlocks
              in
              if not matched then
                report ctx ~rule:rule_mutex_discipline
                  ~severity:Diagnostic.Error ~loc
                  "Mutex.lock with no matching Mutex.unlock in this \
                   definition: release on every path, e.g. via Fun.protect \
                   ~finally")
            (List.rev locks);
          if shadows && not recursive then compare_shadow <- compare_shadow + 1)
        items

    method! structure_item item =
      (match item.pstr_desc with
      | Pstr_attribute attr -> self#add_allow ~scope:None attr
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              List.iter
                (self#add_allow ~scope:(Some vb.pvb_loc))
                vb.pvb_attributes)
            vbs
      | Pstr_eval (_, attrs) ->
          List.iter (self#add_allow ~scope:(Some item.pstr_loc)) attrs
      | _ -> ());
      super#structure_item item
  end

(* ------------------------------------------------------------------ *)
(* Per-file entry points                                              *)
(* ------------------------------------------------------------------ *)

let whole_file_loc =
  let pos =
    { Lexing.pos_fname = ""; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = false }

(* Applies the collected [@ses.allow] scopes: a finding inside a live
   scope for its rule is dropped (and the allow marked used); an allow
   that caught nothing becomes a [stale-suppression] error. *)
let apply_suppressions ctx (allows : allow list) =
  let survives f =
    if String.equal f.rule rule_stale_suppression then true
    else begin
      let matching =
        List.filter
          (fun a ->
            String.equal a.a_rule f.rule
            &&
            match a.a_scope with
            | None -> true
            | Some scope -> loc_contains ~outer:scope ~inner:f.floc)
          allows
      in
      List.iter (fun a -> a.a_used <- true) matching;
      match matching with [] -> true | _ :: _ -> false
    end
  in
  ctx.findings <- List.filter survives ctx.findings;
  List.iter
    (fun a ->
      if not a.a_used then
        report ctx ~rule:rule_stale_suppression ~severity:Diagnostic.Error
          ~loc:a.a_loc
          (Printf.sprintf
             "stale suppression: [@ses.allow %S] no longer suppresses \
              anything — remove it"
             a.a_rule))
    allows

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lexbuf_of ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  lexbuf

(* Lints one .ml file: parse, traverse, resolve suppressions. The
   missing-mli check is passed in ([has_mli]) because only the driver
   knows the on-disk layout; [None] skips the rule (non-lib paths). *)
let lint_implementation ~path ~has_mli source =
  let ctx = { path; findings = [] } in
  (match Parse.implementation (lexbuf_of ~path source) with
  | exception e ->
      report ctx ~rule:rule_parse_error ~severity:Diagnostic.Error
        ~loc:whole_file_loc
        ("ppxlib parser rejected the file: " ^ Printexc.to_string e)
  | structure ->
      let walker = new linter ctx in
      walker#structure structure;
      (match has_mli with
      | None | Some true -> ()
      | Some false ->
          report ctx ~rule:rule_missing_mli ~severity:Diagnostic.Error
            ~loc:whole_file_loc
            "module exports everything: add a sibling .mli (or \
             [@@@ses.allow \"missing-mli\"] with a justifying comment)");
      apply_suppressions ctx walker#allows);
  List.rev ctx.findings

(* .mli files carry no expressions, so the rules have nothing to say;
   they are still parsed so a syntactically broken interface fails the
   lint rather than hiding until the next build. *)
let lint_interface ~path source =
  let ctx = { path; findings = [] } in
  (match Parse.interface (lexbuf_of ~path source) with
  | exception e ->
      report ctx ~rule:rule_parse_error ~severity:Diagnostic.Error
        ~loc:whole_file_loc
        ("ppxlib parser rejected the file: " ^ Printexc.to_string e)
  | (_ : signature) -> ());
  List.rev ctx.findings
