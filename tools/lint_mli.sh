#!/bin/sh
# CI lint: every module in lib/ ships an explicit interface.
#
# A missing .mli exports everything, so internal helpers leak into the
# public surface and interface drift goes unreviewed: adding a function
# to the .ml silently widens the library API. Each lib/**/*.ml must have
# a sibling .mli; intentional exceptions (e.g. generated modules) live
# in tools/mli_allowlist.txt as repo-relative .ml paths, one per line,
# added only together with a justifying comment at the site.
set -u
cd "$(dirname "$0")/.."

allow=tools/mli_allowlist.txt

missing=$(find lib -name '*.ml' | sort | while IFS= read -r f; do
  [ -f "${f%.ml}.mli" ] || printf '%s\n' "$f"
done)

new=$(printf '%s\n' "$missing" \
  | grep -v -x -F -f "$allow" | grep -v '^$' || true)

if [ -n "$new" ]; then
  echo "error: lib/ modules without an .mli interface — add one, or" >&2
  echo "extend tools/mli_allowlist.txt with a justifying comment at" >&2
  echo "the site:" >&2
  printf '%s\n' "$new" >&2
  exit 1
fi

# Allowlist entries must stay honest: an entry whose module gained an
# .mli (or disappeared) no longer exempts anything and would silently
# mask a future regression under the same path.
stale=$(grep -v '^#' "$allow" | grep -v '^$' | while IFS= read -r f; do
  if [ ! -f "$f" ]; then
    printf '%s (file no longer exists)\n' "$f"
  elif [ -f "${f%.ml}.mli" ]; then
    printf '%s (now has an .mli)\n' "$f"
  fi
done)

if [ -n "$stale" ]; then
  echo "error: stale entries in tools/mli_allowlist.txt — remove them:" >&2
  printf '%s\n' "$stale" >&2
  exit 1
fi
echo "mli lint: ok"
