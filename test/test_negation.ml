(* Negation guards: forbidden events between consecutive event set
   patterns (the SASE-style extension). *)

open Ses_event
open Ses_pattern
open Ses_core
open Helpers

(* <{a}, NOT x, {b}>: a then b within 20, with no x event in between. *)
let neg_pattern ?(extra = []) () =
  Pattern.make_full_exn ~schema:Helpers.schema
    ~sets:[ [ v "a" ]; [ v "b" ] ]
    ~negations:[ (0, v "x") ]
    ~where:([ label "a" "a"; label "b" "b"; label "x" "x" ] @ extra)
    ~within:20

let test_validation () =
  let err ~sets ~negations ~where =
    Result.is_error
      (Pattern.make_full ~schema:Helpers.schema ~sets ~negations ~where
         ~within:10)
  in
  (* Boundary out of range. *)
  Alcotest.(check bool) "beyond the last set" true
    (err ~sets:[ [ v "a" ] ] ~negations:[ (1, v "x") ] ~where:[]);
  Alcotest.(check bool) "negative boundary" true
    (err ~sets:[ [ v "a" ]; [ v "b" ] ] ~negations:[ (-1, v "x") ] ~where:[]);
  (* Negated variables bind exactly one event. *)
  Alcotest.(check bool) "group negation rejected" true
    (err ~sets:[ [ v "a" ]; [ v "b" ] ] ~negations:[ (0, vplus "x") ] ~where:[]);
  (* Name clash with a positive variable. *)
  Alcotest.(check bool) "duplicate name" true
    (err ~sets:[ [ v "a" ]; [ v "b" ] ] ~negations:[ (0, v "a") ] ~where:[]);
  (* Conditions on the negation may not reference later sets. *)
  Alcotest.(check bool) "forward reference rejected" true
    (err
       ~sets:[ [ v "a" ]; [ v "b" ] ]
       ~negations:[ (0, v "x") ]
       ~where:[ Pattern.Spec.fields "x" "V" Predicate.Eq "b" "V" ]);
  (* Conditions between two negated variables are rejected. *)
  Alcotest.(check bool) "neg-neg condition rejected" true
    (err
       ~sets:[ [ v "a" ]; [ v "b" ]; [ v "c" ] ]
       ~negations:[ (0, v "x"); (1, v "y") ]
       ~where:[ Pattern.Spec.fields "x" "V" Predicate.Eq "y" "V" ]);
  (* Backward references are fine. *)
  Alcotest.(check bool) "backward reference accepted" false
    (err
       ~sets:[ [ v "a" ]; [ v "b" ] ]
       ~negations:[ (0, v "x") ]
       ~where:[ Pattern.Spec.fields "x" "ID" Predicate.Eq "a" "ID" ])

let test_accessors () =
  let p = neg_pattern () in
  Alcotest.(check int) "positive vars" 2 (Pattern.n_vars p);
  let x = Option.get (Pattern.var_id p "x") in
  Alcotest.(check bool) "negated id beyond n_vars" true (x >= Pattern.n_vars p);
  Alcotest.(check bool) "is_negated" true (Pattern.is_negated p x);
  Alcotest.(check bool) "positives are not" false (Pattern.is_negated p 0);
  Alcotest.(check (option int)) "boundary" (Some 0) (Pattern.negation_boundary p x);
  Alcotest.(check (list (pair int int))) "negations" [ (0, x) ] (Pattern.negations p);
  Alcotest.(check string) "display name" "!x" (Pattern.var_name p x);
  Alcotest.(check int) "theta proper excludes guard" 2
    (List.length (Pattern.positive_conditions p));
  Alcotest.(check int) "all conditions" 3 (List.length (Pattern.conditions p))

let test_kill_between_sets () =
  let p = neg_pattern () in
  (* Without the forbidden event: match. *)
  check_substs p
    [ [ ("a", 1); ("b", 2) ] ]
    (run p (rel_l [ ("a", 0); ("b", 5) ])).Engine.matches;
  (* An x strictly between kills the instance. *)
  let outcome = run p (rel_l [ ("a", 0); ("x", 2); ("b", 5) ]) in
  check_substs p [] outcome.Engine.matches;
  Alcotest.(check int) "killed counted" 1
    outcome.Engine.metrics.Metrics.instances_killed

let test_not_killed_outside_boundary () =
  let p = neg_pattern () in
  (* x before a or after b is harmless. *)
  check_substs p
    [ [ ("a", 2); ("b", 3) ] ]
    (run p (rel_l [ ("x", 0); ("a", 1); ("b", 5) ])).Engine.matches;
  check_substs p
    [ [ ("a", 1); ("b", 2) ] ]
    (run p (rel_l [ ("a", 0); ("b", 5); ("x", 8) ])).Engine.matches

let test_join_condition_on_guard () =
  (* Forbidden only when the x event belongs to the same entity as a. *)
  let p =
    neg_pattern ~extra:[ Pattern.Spec.fields "x" "ID" Predicate.Eq "a" "ID" ] ()
  in
  (* Foreign-entity x does not kill. *)
  check_substs p
    [ [ ("a", 1); ("b", 3) ] ]
    (run p (rel [ (1, "a", 0, 0); (2, "x", 0, 2); (1, "b", 0, 5) ])).Engine.matches;
  (* Same-entity x does. *)
  check_substs p []
    (run p (rel [ (1, "a", 0, 0); (1, "x", 0, 2); (1, "b", 0, 5) ])).Engine.matches

let test_bind_takes_precedence () =
  (* An event that fires a transition is a binding, not a forbidden
     in-between event — guards only kill instances the event ignores. *)
  let p =
    Pattern.make_full_exn ~schema:Helpers.schema
      ~sets:[ [ v "a" ]; [ v "b" ] ]
      ~negations:[ (0, v "x") ]
      ~where:
        [
          label "a" "a";
          (* b and the forbidden x share the label 'b'. *)
          label "b" "b";
          label "x" "b";
        ]
      ~within:20
  in
  check_substs p
    [ [ ("a", 1); ("b", 2) ] ]
    (run p (rel_l [ ("a", 0); ("b", 3) ])).Engine.matches

let test_second_chance_after_kill () =
  (* A later a restarts the search after a kill. *)
  let p = neg_pattern () in
  check_substs p
    [ [ ("a", 4); ("b", 5) ] ]
    (run p (rel_l [ ("a", 0); ("x", 2); ("b", 5); ("a", 8); ("b", 11) ]))
      .Engine.matches

let test_filter_keeps_forbidden_events () =
  (* The event filter must keep events that can only trigger guards —
     otherwise filtering changes results. *)
  let p = neg_pattern () in
  let r = rel_l [ ("a", 0); ("x", 2); ("b", 5) ] in
  List.iter
    (fun mode ->
      let options = { Engine.default_options with Engine.filter = mode } in
      check_substs p [] (run ~options p r).Engine.matches)
    [ Event_filter.No_filter; Event_filter.Paper; Event_filter.Strong ]

let test_naive_agreement () =
  let p = neg_pattern () in
  let blocked = rel_l [ ("a", 0); ("x", 2); ("b", 5) ] in
  Alcotest.(check int) "oracle also rejects" 0
    (List.length (Naive.all_satisfying_1_3 p blocked));
  let open_rel = rel_l [ ("a", 0); ("y", 2); ("b", 5) ] in
  Alcotest.(check int) "oracle accepts" 1
    (List.length (Naive.all_satisfying_1_3 p open_rel))

let test_brute_force_agreement () =
  let p =
    Pattern.make_full_exn ~schema:Helpers.schema
      ~sets:[ [ v "a"; v "c" ]; [ v "b" ] ]
      ~negations:[ (0, v "x") ]
      ~where:[ label "a" "a"; label "c" "c"; label "b" "b"; label "x" "x" ]
      ~within:30
  in
  let check r =
    let ses = run p r in
    let bf = Ses_baseline.Brute_force.run_relation p r in
    Alcotest.(check (list (list (pair string int))))
      "BF = SES"
      (substs_repr p ses.Engine.matches)
      (substs_repr p bf.Ses_baseline.Brute_force.matches)
  in
  check (rel_l [ ("c", 0); ("a", 1); ("b", 3) ]);
  check (rel_l [ ("c", 0); ("a", 1); ("x", 2); ("b", 3) ]);
  check (rel_l [ ("a", 0); ("x", 1); ("c", 2); ("b", 3) ])

let test_partitioning_requires_pinned_guard () =
  let joined extra_guard =
    Pattern.make_full_exn ~schema:Helpers.schema
      ~sets:[ [ v "a" ]; [ v "b" ] ]
      ~negations:[ (0, v "x") ]
      ~where:
        ([
           label "a" "a";
           label "b" "b";
           label "x" "x";
           Pattern.Spec.fields "a" "ID" Predicate.Eq "b" "ID";
         ]
        @ extra_guard)
      ~within:20
  in
  let key p = Partitioned.partition_key (Automaton.of_pattern p) in
  Alcotest.(check bool) "unpinned guard blocks partitioning" true
    (key (joined []) = None);
  Alcotest.(check bool) "pinned guard allows it" true
    (key (joined [ Pattern.Spec.fields "x" "ID" Predicate.Eq "a" "ID" ]) <> None)

let test_lang_not_groups () =
  let p =
    Ses_lang.Lang.parse_pattern_exn Helpers.schema
      "PATTERN (a) -> NOT (x) -> (b)\n\
       WHERE a.L = 'a' AND b.L = 'b' AND x.L = 'x'\n\
       WITHIN 20"
  in
  Alcotest.(check int) "two positive sets" 2 (Pattern.n_sets p);
  Alcotest.(check int) "one negation" 1 (List.length (Pattern.negations p));
  check_substs p []
    (run p (rel_l [ ("a", 0); ("x", 2); ("b", 5) ])).Engine.matches;
  (* Round trip through the unparser. *)
  let printed = Ses_lang.Lang.to_query p in
  let p' =
    match Ses_lang.Lang.parse_pattern Helpers.schema printed with
    | Ok p' -> p'
    | Error msg -> Alcotest.failf "reparse of %S failed: %s" printed msg
  in
  Alcotest.(check int) "negation survives roundtrip" 1
    (List.length (Pattern.negations p'));
  (* NOT cannot open the chain; a trailing NOT is the after-match guard. *)
  Alcotest.(check bool) "NOT first" true
    (Result.is_error
       (Ses_lang.Lang.parse_pattern Helpers.schema
          "PATTERN NOT (x) -> (a) WITHIN 5"));
  Alcotest.(check bool) "NOT last accepted" true
    (Result.is_ok
       (Ses_lang.Lang.parse_pattern Helpers.schema
          "PATTERN (a) -> NOT (x) WITHIN 5"))

(* Trailing guard: "a then b, with no x afterwards while the window is
   open". *)
let trailing =
  Pattern.make_full_exn ~schema:Helpers.schema
    ~sets:[ [ v "a" ]; [ v "b" ] ]
    ~negations:[ (1, v "x") ]
    ~where:[ label "a" "a"; label "b" "b"; label "x" "x" ]
    ~within:10

let test_trailing_guard_kills () =
  (* x after b and inside the window suppresses the match. *)
  check_substs trailing []
    (run trailing (rel_l [ ("a", 0); ("b", 2); ("x", 5) ])).Engine.matches;
  (* x outside the window arrives after the instance expired: match. *)
  check_substs trailing
    [ [ ("a", 1); ("b", 2) ] ]
    (run trailing (rel_l [ ("a", 0); ("b", 2); ("x", 15) ])).Engine.matches;
  (* No x at all: end-of-stream flush emits. *)
  check_substs trailing
    [ [ ("a", 1); ("b", 2) ] ]
    (run trailing (rel_l [ ("a", 0); ("b", 2) ])).Engine.matches

let test_trailing_guard_oracle () =
  let blocked = rel_l [ ("a", 0); ("b", 2); ("x", 5) ] in
  Alcotest.(check int) "oracle rejects" 0
    (List.length (Naive.all_satisfying_1_3 trailing blocked));
  let late = rel_l [ ("a", 0); ("b", 2); ("x", 15) ] in
  Alcotest.(check int) "oracle accepts outside window" 1
    (List.length (Naive.all_satisfying_1_3 trailing late))

let test_dot_guard () =
  let p = neg_pattern () in
  let dot = Dot.of_automaton (Automaton.of_pattern p) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "guard node" true (contains "octagon" dot);
  Alcotest.(check bool) "guard label" true (contains "!x" dot)

let test_trace_kill () =
  let p = neg_pattern () in
  let steps, _ =
    Trace.run (Automaton.of_pattern p) (rel_l [ ("a", 0); ("x", 2); ("b", 5) ])
  in
  Alcotest.(check bool) "kill observed" true
    (List.exists
       (function Engine.Killed _ -> true | _ -> false)
       steps)

let engine_respects_negations =
  QCheck.Test.make ~count:60 ~name:"engine matches satisfy negations (random)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Ses_gen.Prng.create (Int64.of_int seed) in
      let r =
        Ses_gen.Random_workload.relation rng
          Ses_gen.Random_workload.default_relation
      in
      let p =
        Pattern.make_full_exn ~schema:Helpers.schema
          ~sets:[ [ v "a" ]; [ v "b" ] ]
          ~negations:[ (0, v "x") ]
          ~where:
            [
              label "a" "a";
              label "b" "b";
              label "x" (String.make 1 (Char.chr (Char.code 'a' + Ses_gen.Prng.int rng 3)));
            ]
          ~within:(5 + Ses_gen.Prng.int rng 20)
      in
      let outcome = run p r in
      let events = Ses_event.Relation.events r in
      List.for_all
        (fun s ->
          Substitution.satisfies_1_3 p s
          && Substitution.satisfies_negations p events s)
        outcome.Engine.raw)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "kill between sets" `Quick test_kill_between_sets;
    Alcotest.test_case "harmless outside boundary" `Quick
      test_not_killed_outside_boundary;
    Alcotest.test_case "join condition on guard" `Quick test_join_condition_on_guard;
    Alcotest.test_case "binding beats killing" `Quick test_bind_takes_precedence;
    Alcotest.test_case "second chance after kill" `Quick test_second_chance_after_kill;
    Alcotest.test_case "filter keeps forbidden events" `Quick
      test_filter_keeps_forbidden_events;
    Alcotest.test_case "naive oracle agreement" `Quick test_naive_agreement;
    Alcotest.test_case "brute force agreement" `Quick test_brute_force_agreement;
    Alcotest.test_case "partitioning requires pinned guards" `Quick
      test_partitioning_requires_pinned_guard;
    Alcotest.test_case "language NOT groups" `Quick test_lang_not_groups;
    Alcotest.test_case "trailing guard" `Quick test_trailing_guard_kills;
    Alcotest.test_case "trailing guard oracle" `Quick test_trailing_guard_oracle;
    Alcotest.test_case "dot renders guards" `Quick test_dot_guard;
    Alcotest.test_case "trace records kills" `Quick test_trace_kill;
    QCheck_alcotest.to_alcotest engine_respects_negations;
  ]
