(* Parallel-equivalence properties: the domain-sharded Partitioned
   executor and the domain-parallel Multi runtime must be
   observationally identical to their sequential counterparts — same
   finalized matches (in order), same raw emissions (as a multiset),
   and merged metrics that agree on every layout-invariant counter
   (see [invariant] below for the two that are accounting artefacts of
   the layout).

   The default random-relation spec already exercises τ-expiry (gaps of
   up to several time units against τ ∈ [5, 20]); the deterministic
   negation case covers kills. *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_gen
open Helpers

(* Every pair of variables gets an ID equality: the complete join graph
   pins all transitions to the ID field, so patterns with at least two
   variables are partitionable and the sharded path actually runs. *)
let part_spec =
  { Random_workload.default_pattern with Random_workload.p_id_join = 1.0 }

let with_workload seed f =
  let rng = Prng.create (Int64.of_int seed) in
  let pat = Random_workload.pattern rng part_spec in
  let r = Random_workload.relation rng Random_workload.default_relation in
  f pat r

let canon substs = List.map Substitution.canonical substs
let canon_sorted substs =
  List.sort Substitution.compare_canonical (canon substs)

(* The layout-invariant counters. [max_simultaneous_instances] is a
   shard-local max (a lower bound on the global peak), and
   [instances_expired] is lazy-scan accounting: the plain engine
   collects τ-expired instances whenever any event advances time, while
   a per-key pool only scans when one of its own key's events arrives —
   instances that linger unscanned until close are enforced as expired
   (they never fire) but not counted. Both are therefore compared by
   inequality, not equality. *)
let invariant (m : Metrics.snapshot) =
  {
    m with
    Metrics.max_simultaneous_instances = 0;
    Metrics.instances_expired = 0;
  }

let run_par ~domains automaton r =
  Partitioned.run_relation
    ~options:{ Engine.default_options with Engine.domains }
    automaton r

let domain_grid = [ 1; 2; 4 ]

(* Group variables are the exception: the group-loop transition binds a
   further event while only the group variable itself is bound, and no
   reflexive ID condition exists to pin it, so those patterns correctly
   fall back to the unpartitioned engine. *)
let generator_is_partitionable =
  QCheck.Test.make ~count:60
    ~name:"complete ID-join patterns are partitionable"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat _ ->
          Pattern.n_vars pat < 2
          || Pattern.group_vars pat <> []
          || Partitioned.partition_key (Automaton.of_pattern pat) <> None))

let sharded_output_equals_sequential =
  QCheck.Test.make ~count:60
    ~name:"sharded partitioned output = sequential output"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let seq = Engine.run_relation automaton r in
          List.for_all
            (fun domains ->
              let par = run_par ~domains automaton r in
              (* Finalize sorts by (min timestamp, canonical form), so
                 the match lists agree element by element, not just as
                 sets. Raw emission order differs across layouts. *)
              canon par.Engine.matches = canon seq.Engine.matches
              && canon_sorted par.Engine.raw = canon_sorted seq.Engine.raw)
            domain_grid))

let sharded_metrics_merge_to_sequential =
  QCheck.Test.make ~count:60
    ~name:"sharded merged metrics = sequential metrics (summed counters)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let seq = Engine.run_relation automaton r in
          List.for_all
            (fun domains ->
              let par = run_par ~domains automaton r in
              invariant par.Engine.metrics = invariant seq.Engine.metrics
              && par.Engine.metrics.Metrics.instances_expired
                 <= seq.Engine.metrics.Metrics.instances_expired)
            domain_grid))

(* Hash routing is stable within (and across) runs, so a sharded run is
   fully deterministic: repeating it yields byte-identical metrics —
   including the shard-local instance peak — and identical output. *)
let sharded_run_is_deterministic =
  QCheck.Test.make ~count:40 ~name:"sharded run is deterministic"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let once = run_par ~domains:4 automaton r in
          let again = run_par ~domains:4 automaton r in
          canon once.Engine.matches = canon again.Engine.matches
          && once.Engine.metrics = again.Engine.metrics))

(* Deterministic sharded run with an ID-pinned negation guard and a
   τ-expiring instance: id 2 is killed by its own x event, id 1's x
   arrives only after its match completed, and id 4's first a expires
   before its b shows up (30 - 3 > τ = 20) while its second a still
   matches. *)
let neg_pattern =
  Pattern.make_full_exn ~schema:Helpers.schema
    ~sets:[ [ v "a" ]; [ v "b" ] ]
    ~negations:[ (0, v "x") ]
    ~where:
      ([ label "a" "a"; label "b" "b"; label "x" "x" ]
      @ Pattern.Spec.
          [
            fields "a" "ID" Predicate.Eq "b" "ID";
            fields "x" "ID" Predicate.Eq "a" "ID";
          ])
    ~within:20

let neg_relation =
  rel
    [
      (1, "a", 0, 0);
      (2, "a", 0, 1);
      (3, "a", 0, 2);
      (4, "a", 0, 3);
      (2, "x", 0, 5);
      (1, "b", 0, 8);
      (2, "b", 0, 9);
      (3, "b", 0, 10);
      (4, "a", 0, 12);
      (1, "x", 0, 15);
      (4, "b", 0, 30);
    ]

let test_negation_and_expiry_sharded () =
  let automaton = Automaton.of_pattern neg_pattern in
  Alcotest.(check bool) "negation pattern is partitionable" true
    (Partitioned.partition_key automaton <> None);
  let seq = Engine.run_relation automaton neg_relation in
  check_substs neg_pattern
    [
      [ ("a", 1); ("b", 6) ];
      [ ("a", 3); ("b", 8) ];
      [ ("a", 9); ("b", 11) ];
    ]
    seq.Engine.matches;
  Alcotest.(check bool) "kill exercised" true
    (seq.Engine.metrics.Metrics.instances_killed >= 1);
  Alcotest.(check bool) "expiry exercised" true
    (seq.Engine.metrics.Metrics.instances_expired >= 1);
  List.iter
    (fun domains ->
      let options = { Engine.default_options with Engine.domains } in
      (* The incremental interface, to also pin down that the sharded
         layout really engaged [domains] worker domains. *)
      let st = Partitioned.create ~options automaton in
      Alcotest.(check int)
        (Printf.sprintf "n_domains at %d" domains)
        domains (Partitioned.n_domains st);
      Seq.iter
        (fun e -> ignore (Partitioned.feed st e))
        (Relation.to_seq neg_relation);
      ignore (Partitioned.close st);
      let raw = Partitioned.emitted st in
      let matches = Substitution.finalize neg_pattern raw in
      Alcotest.(check bool)
        (Printf.sprintf "matches at %d domains" domains)
        true
        (canon matches = canon seq.Engine.matches);
      let m = Partitioned.metrics st in
      Alcotest.(check bool)
        (Printf.sprintf "summed counters at %d domains" domains)
        true
        (invariant m = invariant seq.Engine.metrics);
      Alcotest.(check bool)
        (Printf.sprintf "expiry bound at %d domains" domains)
        true
        (m.Metrics.instances_expired
        <= seq.Engine.metrics.Metrics.instances_expired))
    [ 2; 4 ]

let multi_parallel_equals_sequential =
  QCheck.Test.make ~count:40 ~name:"parallel multi = sequential multi"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let p1 = Random_workload.pattern rng Random_workload.default_pattern in
      let p2 = Random_workload.pattern rng Random_workload.default_pattern in
      let p3 = Random_workload.pattern rng part_spec in
      let r = Random_workload.relation rng Random_workload.default_relation in
      let queries =
        [
          ("q1", Automaton.of_pattern p1);
          ("q2", Automaton.of_pattern p2);
          ("q3", Automaton.of_pattern p3);
        ]
      in
      let run domains =
        Multi.run
          ~options:{ Engine.default_options with Engine.domains }
          queries (Relation.to_seq r)
      in
      let seq = run 1 in
      List.for_all
        (fun domains ->
          let par = run domains in
          List.for_all2
            (fun (n1, (o1 : Engine.outcome)) (n2, (o2 : Engine.outcome)) ->
              n1 = n2
              && canon o1.Engine.matches = canon o2.Engine.matches
              && canon_sorted o1.Engine.raw = canon_sorted o2.Engine.raw
              (* Each query runs on exactly one domain, so the semantic
                 counters are bit-identical. The two lazy-accounting
                 counters differ by sweep cadence only: the sequential
                 run feeds in [batch_size] chunks (one expiry sweep per
                 chunk), the workers feed per event (a sweep at every
                 event — a superset of the chunk boundaries), so the
                 per-event side counts at least as many expirations and,
                 retiring instances earlier, peaks no higher. *)
              && invariant o1.Engine.metrics = invariant o2.Engine.metrics
              && o1.Engine.metrics.Metrics.instances_expired
                 <= o2.Engine.metrics.Metrics.instances_expired
              && o1.Engine.metrics.Metrics.max_simultaneous_instances
                 >= o2.Engine.metrics.Metrics.max_simultaneous_instances)
            seq par)
        [ 2; 4 ])

(* Merged cross-query metrics are deterministic across domain counts:
   replica accounting does not depend on which worker ran which
   query. *)
let test_multi_merged_metrics () =
  let queries =
    [
      ("q1", Automaton.of_pattern query_q1);
      ("q1-singleton", Automaton.of_pattern query_q1_singleton);
    ]
  in
  let run domains =
    let t =
      Multi.create ~options:{ Engine.default_options with Engine.domains }
        queries
    in
    Seq.iter (fun e -> ignore (Multi.feed t e)) (Relation.to_seq figure_1);
    ignore (Multi.close t);
    (Multi.n_domains t, Multi.merged_metrics t)
  in
  let d1, m1 = run 1 in
  let d2, m2 = run 2 in
  Alcotest.(check int) "sequential mode" 1 d1;
  Alcotest.(check int) "parallel mode" 2 d2;
  Alcotest.(check bool) "merged metrics identical" true (m1 = m2)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      generator_is_partitionable;
      sharded_output_equals_sequential;
      sharded_metrics_merge_to_sequential;
      sharded_run_is_deterministic;
      multi_parallel_equals_sequential;
    ]
  @ [
      Alcotest.test_case "negation + expiry, sharded" `Quick
        test_negation_and_expiry_sharded;
      Alcotest.test_case "multi merged metrics deterministic" `Quick
        test_multi_merged_metrics;
    ]
