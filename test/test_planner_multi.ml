open Ses_core
open Helpers

(* ---- Planner ---- *)

let test_plan_q1 () =
  let plan = Planner.plan (Automaton.of_pattern query_q1) in
  Alcotest.(check bool) "strong filter chosen" true
    (plan.Planner.filter = Event_filter.Strong);
  Alcotest.(check bool) "no partition for star joins" true
    (plan.Planner.partition = None);
  Alcotest.(check bool) "precheck on" true plan.Planner.precheck_constants;
  Alcotest.(check int) "two cases" 2 (List.length plan.Planner.cases);
  Alcotest.(check bool) "describe" true
    (String.length (Planner.describe plan) > 0)

let test_plan_unconstrained () =
  (* A variable without constant conditions disables filtering. *)
  let p = pattern ~within:10 [ [ v "a" ]; [ v "b" ] ] ~where:[ label "a" "x" ] in
  let plan = Planner.plan (Automaton.of_pattern p) in
  Alcotest.(check bool) "no filter" true
    (plan.Planner.filter = Event_filter.No_filter)

let test_plan_partitionable () =
  let p =
    pattern ~within:10
      [ [ v "a" ]; [ v "b" ] ]
      ~where:
        [
          label "a" "x";
          label "b" "y";
          Ses_pattern.Pattern.Spec.fields "a" "ID" Ses_event.Predicate.Eq "b" "ID";
        ]
  in
  let automaton = Automaton.of_pattern p in
  let plan = Planner.plan automaton in
  Alcotest.(check bool) "partition key found" true
    (plan.Planner.partition <> None)

let test_planner_run_equals_engine () =
  let automaton = Automaton.of_pattern query_q1 in
  let direct = Engine.run_relation automaton figure_1 in
  let planned = Planner.run_relation automaton figure_1 in
  Alcotest.(check (list (list (pair string int))))
    "same matches"
    (substs_repr query_q1 direct.Engine.matches)
    (substs_repr query_q1 planned.Engine.matches)

let planner_transparent =
  QCheck.Test.make ~count:75 ~name:"planner never changes matches"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Ses_gen.Prng.create (Int64.of_int seed) in
      let pat =
        Ses_gen.Random_workload.pattern rng
          Ses_gen.Random_workload.default_pattern
      in
      let r =
        Ses_gen.Random_workload.relation rng
          Ses_gen.Random_workload.default_relation
      in
      let automaton = Automaton.of_pattern pat in
      let direct = Engine.run_relation automaton r in
      let planned = Planner.run_relation automaton r in
      List.map Substitution.canonical direct.Engine.matches
      = List.map Substitution.canonical planned.Engine.matches)

(* ---- Multi ---- *)

let seq_pattern a b =
  pattern ~within:10 [ [ v "x" ]; [ v "y" ] ] ~where:[ label "x" a; label "y" b ]

let test_multi_validation () =
  let a = Automaton.of_pattern (seq_pattern "a" "b") in
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Multi.create: duplicate query name") (fun () ->
      ignore (Multi.create [ ("q", a); ("q", a) ]));
  Alcotest.check_raises "empty name"
    (Invalid_argument "Multi.create: empty query name") (fun () ->
      ignore (Multi.create [ ("", a) ]))

let test_multi_equals_individual () =
  let queries =
    [
      ("ab", Automaton.of_pattern (seq_pattern "a" "b"));
      ("bc", Automaton.of_pattern (seq_pattern "b" "c"));
      ("never", Automaton.of_pattern (seq_pattern "z" "z"));
    ]
  in
  let r = rel_l [ ("a", 0); ("b", 2); ("c", 4); ("a", 6); ("b", 7) ] in
  let multi = Multi.run queries (Ses_event.Relation.to_seq r) in
  List.iter
    (fun (name, automaton) ->
      let solo = Engine.run_relation automaton r in
      let combined = List.assoc name multi in
      Alcotest.(check int)
        (name ^ " same count")
        (List.length solo.Engine.matches)
        (List.length combined.Engine.matches);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) (name ^ " same match") true
            (Substitution.equal a b))
        solo.Engine.matches combined.Engine.matches)
    queries;
  Alcotest.(check (list string)) "names" [ "ab"; "bc"; "never" ]
    (Multi.names (Multi.create queries))

let test_multi_incremental () =
  let queries = [ ("ab", Automaton.of_pattern (seq_pattern "a" "b")) ] in
  let t = Multi.create queries in
  let events = rel_l [ ("a", 0); ("b", 2); ("z", 100) ] in
  let completions = ref [] in
  Ses_event.Relation.iter
    (fun e -> completions := !completions @ Multi.feed t e)
    events;
  (* The a-b match expires when z arrives far outside the window. *)
  Alcotest.(check int) "completed mid-stream" 1 (List.length !completions);
  Alcotest.(check string) "routed to the right query" "ab"
    (fst (List.hd !completions));
  ignore (Multi.close t);
  Alcotest.(check int) "empty after close" 0 (Multi.population t)

let suite =
  [
    Alcotest.test_case "plan for Q1" `Quick test_plan_q1;
    Alcotest.test_case "plan without constants" `Quick test_plan_unconstrained;
    Alcotest.test_case "plan with partition key" `Quick test_plan_partitionable;
    Alcotest.test_case "planner = engine on Figure 1" `Quick
      test_planner_run_equals_engine;
    QCheck_alcotest.to_alcotest planner_transparent;
    Alcotest.test_case "multi validation" `Quick test_multi_validation;
    Alcotest.test_case "multi = individual runs" `Quick test_multi_equals_individual;
    Alcotest.test_case "multi incremental routing" `Quick test_multi_incremental;
  ]
