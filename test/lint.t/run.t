The ses-lint fixture corpus: one bad, one good, and one suppressed
snippet per rule under fixtures/, laid out as a miniature repo so the
path-dependent policies (lib/ vs bin/, lib/server/ severity) are
exercised exactly as they are on the real tree.

A full run over the corpus reports every bad fixture with its exact
code and span, and exits nonzero:

  $ ../../tools/lint/main.exe --root fixtures lib bin
  lib/broken.ml: line 1, column 1: error[parse-error]: ppxlib parser rejected the file: Syntaxerr.Error(_)
  lib/broken.mli: line 1, column 1: error[parse-error]: ppxlib parser rejected the file: Syntaxerr.Error(_)
  lib/hash_bad.ml: line 1, columns 15-26: error[hashtbl-hash]: [Hashtbl.hash] hashes the runtime representation: route through a per-type hash, or [@ses.allow "hashtbl-hash"] an audited partition-routing site
  lib/mutex_bad.ml: line 4, columns 3-16: error[mutex-discipline]: Mutex.lock with no matching Mutex.unlock in this definition: release on every path, e.g. via Fun.protect ~finally
  lib/nomli_bad.ml: line 1, column 1: error[missing-mli]: module exports everything: add a sibling .mli (or [@@@ses.allow "missing-mli"] with a justifying comment)
  lib/phys_bad.ml: line 1, columns 18-19: error[phys-equal]: physical equality (==) outside the identity-caching modules: compare with a per-type equal, or document the pointer contract and extend the allowlist in tools/lint/rules.ml
  lib/poly_bad.ml: line 1, columns 27-33: error[poly-compare]: polymorphic [compare]: use a per-type compare (Int.compare, String.compare, Value.compare, ...) or a local typed comparator
  lib/poly_bad.ml: line 3, columns 17-26: error[poly-compare]: structural (=) on a constructor/tuple/record operand depends on declaration layout: match on the shape or use a per-type equal
  lib/print_bad.ml: line 1, columns 16-28: error[print-stdout]: library code must not write to stdout: return the text, take a sink, or log through telemetry
  lib/server/swallow_bad.ml: line 1, column 39: error[swallowed-exception]: catch-all handler discards the exception: match the exceptions this expression can actually raise, or propagate/record the failure
  lib/stale.ml: line 2, columns 1-29: error[stale-suppression]: [@ses.allow "no-such-rule"] names no known rule
  lib/stale.ml: line 1, columns 1-29: error[stale-suppression]: stale suppression: [@ses.allow "poly-compare"] no longer suppresses anything — remove it
  lib/store/swallow_warn.ml: line 1, column 63: warning[swallowed-exception]: catch-all handler discards the exception: match the exceptions this expression can actually raise, or propagate/record the failure
  ses-lint: 12 errors, 1 warning (45 files)
  [1]

The good and suppressed fixtures — including stdout printing in bin/,
which the print-stdout rule scopes to lib/ only — are all clean:

  $ ../../tools/lint/main.exe --root fixtures \
  >   lib/poly_good.ml lib/poly_allow.ml \
  >   lib/phys_good.ml lib/phys_allow.ml \
  >   lib/hash_good.ml lib/hash_allow.ml \
  >   lib/swallow_good.ml lib/server/swallow_allow.ml \
  >   lib/mutex_good.ml lib/mutex_allow.ml \
  >   lib/print_good.ml lib/print_allow.ml \
  >   lib/nomli_allow.ml bin/print_ok.ml
  ses-lint: 0 errors, 0 warnings (14 files)

A catch-all handler outside the server/pool paths is a warning, not an
error, so it does not fail the run:

  $ ../../tools/lint/main.exe --root fixtures lib/store/swallow_warn.ml
  lib/store/swallow_warn.ml: line 1, column 63: warning[swallowed-exception]: catch-all handler discards the exception: match the exceptions this expression can actually raise, or propagate/record the failure
  ses-lint: 0 errors, 1 warning (1 files)

The same findings render as machine-readable JSON (the query
analyzer's diagnostic schema, grouped per file):

  $ ../../tools/lint/main.exe --json --root fixtures lib/poly_bad.ml lib/poly_bad.mli
  {"files":2,"errors":2,"warnings":0,"findings":[{"file":"lib/poly_bad.ml","diagnostics":[{"severity":"error","code":"poly-compare","message":"polymorphic [compare]: use a per-type compare (Int.compare, String.compare, Value.compare, ...) or a local typed comparator","span":{"start_line":1,"start_col":27,"end_line":1,"end_col":34}},{"severity":"error","code":"poly-compare","message":"structural (=) on a constructor/tuple/record operand depends on declaration layout: match on the shape or use a per-type equal","span":{"start_line":3,"start_col":17,"end_line":3,"end_col":27}}]}]}
  [1]

Quiet mode prints nothing and only sets the exit status:

  $ ../../tools/lint/main.exe -q --root fixtures lib/poly_bad.ml
  [1]
  $ ../../tools/lint/main.exe -q --root fixtures lib/poly_good.ml
