let greet ppf = Format.fprintf ppf "hi@."
