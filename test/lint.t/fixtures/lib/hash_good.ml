let route k = Int.hash k mod 4
