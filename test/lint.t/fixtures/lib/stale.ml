[@@@ses.allow "poly-compare"]
[@@@ses.allow "no-such-rule"]

let id x = x
