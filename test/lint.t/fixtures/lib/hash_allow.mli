val route : 'a -> int
