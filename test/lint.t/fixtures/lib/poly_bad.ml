let sorted xs = List.sort compare xs

let is_pair x = x = (1, 2)
