type t = { m : Mutex.t }

val grab : t -> unit
