val greet : unit -> unit
