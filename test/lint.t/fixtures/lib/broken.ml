let = junk (((
