let same a b = String.equal a b
