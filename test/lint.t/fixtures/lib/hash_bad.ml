let route k = Hashtbl.hash k mod 4
