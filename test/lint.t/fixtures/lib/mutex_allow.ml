type t = { m : Mutex.t }

(* Handed to a callback that unlocks; audited. *)
let grab t = Mutex.lock t.m [@@ses.allow "mutex-discipline"]
