val close : Unix.file_descr -> unit
