let close fd =
  (try Unix.close fd with _ -> ()) [@ses.allow "swallowed-exception"]
