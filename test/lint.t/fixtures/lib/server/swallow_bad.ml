let close fd = try Unix.close fd with _ -> ()
