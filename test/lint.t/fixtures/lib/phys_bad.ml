let same a b = a == b
