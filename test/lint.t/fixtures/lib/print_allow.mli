val greet : unit -> unit
