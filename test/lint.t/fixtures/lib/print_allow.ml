let greet () = (print_endline "hi" [@ses.allow "print-stdout"])
