val same : string -> string -> bool
