type t = { m : Mutex.t; mutable count : int }

let bump t =
  Mutex.lock t.m;
  t.count <- t.count + 1
