type t = { m : Mutex.t; mutable count : int }

let bump t =
  Mutex.lock t.m;
  t.count <- t.count + 1;
  Mutex.unlock t.m

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f
