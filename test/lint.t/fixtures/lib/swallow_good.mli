val lookup : ('a, 'b) Hashtbl.t -> 'a -> 'b option
val log_failure : (string -> unit) -> (unit -> unit) -> unit
