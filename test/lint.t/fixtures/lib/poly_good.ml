let compare a b = Int.compare a b

let sorted xs = List.sort compare xs

let is_none x = match x with None -> true | Some _ -> false
