val route : 'a -> int
