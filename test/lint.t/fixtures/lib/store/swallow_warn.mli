val mtime : string -> float option
