let mtime path = try Some (Unix.stat path).Unix.st_mtime with _ -> None
