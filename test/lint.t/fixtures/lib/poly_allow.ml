(* The one blessed structural sort in the corpus. *)
let sorted xs = (List.sort compare xs [@ses.allow "poly-compare"])
