type t = { m : Mutex.t; mutable count : int }

val bump : t -> unit
