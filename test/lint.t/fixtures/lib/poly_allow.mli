val sorted : 'a list -> 'a list
