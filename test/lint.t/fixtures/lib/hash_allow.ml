(* Audited partition-routing site. *)
let route k = (Hashtbl.hash k [@ses.allow "hashtbl-hash"]) mod 4
