val greet : Format.formatter -> unit
