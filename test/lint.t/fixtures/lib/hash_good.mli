val route : int -> int
