val sorted : 'a list -> 'a list
val is_pair : int * int -> bool
