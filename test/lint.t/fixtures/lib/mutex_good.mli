type t = { m : Mutex.t; mutable count : int }

val bump : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a
