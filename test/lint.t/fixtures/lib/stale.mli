val id : 'a -> 'a
