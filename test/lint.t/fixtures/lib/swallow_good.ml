let lookup t k = try Some (Hashtbl.find t k) with Not_found -> None

let log_failure log f = try f () with e -> log (Printexc.to_string e)
