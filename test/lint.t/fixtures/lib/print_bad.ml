let greet () = print_endline "hi"
