val : ((( nonsense
