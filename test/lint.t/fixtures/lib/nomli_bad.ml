let answer = 42
