(* Pointer identity is the contract under test here. *)
let same a b = (a == b) [@ses.allow "phys-equal"]
