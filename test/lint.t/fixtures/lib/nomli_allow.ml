(* Interface deliberately open: the module is a test scaffold. *)
[@@@ses.allow "missing-mli"]

let answer = 42
