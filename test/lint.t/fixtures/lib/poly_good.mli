val compare : int -> int -> int
val sorted : int list -> int list
val is_none : 'a option -> bool
