let () = print_endline "hi"
