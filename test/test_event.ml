open Ses_event

let schema = Schema.make_exn [ ("ID", Value.Tint); ("L", Value.Tstr) ]

let ev ?(seq = 0) ?(ts = 0) id l =
  Event.make ~seq ~ts [| Value.Int id; Value.Str l |]

let test_accessors () =
  let e = ev ~seq:3 ~ts:42 7 "C" in
  Alcotest.(check int) "seq" 3 (Event.seq e);
  Alcotest.(check int) "ts" 42 (Event.ts e);
  Alcotest.(check bool) "attr" true (Value.equal (Event.attr e 0) (Value.Int 7));
  Alcotest.(check bool) "get attr" true
    (Value.equal (Event.get e (Schema.Field.Attr 1)) (Value.Str "C"));
  Alcotest.(check bool) "get timestamp" true
    (Value.equal (Event.get e Schema.Field.Timestamp) (Value.Int 42));
  Alcotest.(check string) "name" "e4" (Event.name e)

let test_typed_ok () =
  Alcotest.(check bool) "ok" true (Event.typed_ok schema (ev 1 "x"));
  let wrong_arity = Event.make ~seq:0 ~ts:0 [| Value.Int 1 |] in
  Alcotest.(check bool) "arity" false (Event.typed_ok schema wrong_arity);
  let wrong_type = Event.make ~seq:0 ~ts:0 [| Value.Str "x"; Value.Str "y" |] in
  Alcotest.(check bool) "type" false (Event.typed_ok schema wrong_type)

let test_chrono () =
  let a = ev ~seq:0 ~ts:5 1 "x" and b = ev ~seq:1 ~ts:5 1 "y" in
  let c = ev ~seq:2 ~ts:4 1 "z" in
  Alcotest.(check bool) "tie broken by seq" true (Event.compare_chrono a b < 0);
  Alcotest.(check bool) "ts dominates" true (Event.compare_chrono c a < 0);
  Alcotest.(check bool) "equal identity" true (Event.equal a a);
  Alcotest.(check bool) "distinct" false (Event.equal a b)

let test_pp () =
  Alcotest.(check string) "pp" "e1{ID=7, L='C', T=42}"
    (Format.asprintf "%a" (Event.pp schema) (ev ~ts:42 7 "C"))

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "typed_ok" `Quick test_typed_ok;
    Alcotest.test_case "chronological order" `Quick test_chrono;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
