open Ses_event
open Ses_gen

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  let seq rng = List.init 20 (fun _ -> Prng.int rng 1000) in
  Alcotest.(check (list int)) "same stream" (seq a) (seq b);
  let c = Prng.create 43L in
  Alcotest.(check bool) "different seed differs" true (seq (Prng.create 42L) <> seq c)

let test_prng_bounds () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Prng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_copy () =
  let rng = Prng.create 9L in
  ignore (Prng.int rng 100);
  let snap = Prng.copy rng in
  let a = List.init 5 (fun _ -> Prng.int rng 100) in
  let b = List.init 5 (fun _ -> Prng.int snap 100) in
  Alcotest.(check (list int)) "copy resumes identically" a b

let test_prng_shuffle_pick () =
  let rng = Prng.create 11L in
  let l = [ 1; 2; 3; 4; 5; 6 ] in
  let s = Prng.shuffle rng l in
  Alcotest.(check (list int)) "permutation" l (List.sort Int.compare s);
  Alcotest.(check bool) "pick member" true (List.mem (Prng.pick rng l) l);
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick rng []))

let small_chemo =
  { Chemo.default with Chemo.patients = 3; horizon_days = 40; noise_per_day = 0.5 }

let test_chemo_deterministic () =
  let a = Chemo.generate small_chemo and b = Chemo.generate small_chemo in
  Alcotest.(check int) "same size" (Relation.cardinality a) (Relation.cardinality b);
  Alcotest.(check bool) "same events" true
    (List.for_all2
       (fun x y ->
         Event.ts x = Event.ts y
         && Array.for_all2 Value.equal x.Event.payload y.Event.payload)
       (Array.to_list (Relation.events a))
       (Array.to_list (Relation.events b)))

let labels_of r =
  List.sort_uniq String.compare
    (Relation.fold
       (fun acc e ->
         match Event.attr e 1 with Value.Str s -> s :: acc | _ -> acc)
       [] r)

let test_chemo_content () =
  let r = Chemo.generate small_chemo in
  Alcotest.(check bool) "nonempty" false (Relation.is_empty r);
  Alcotest.(check bool) "schema" true (Schema.equal (Relation.schema r) Chemo.schema);
  let present = labels_of r in
  List.iter
    (fun l ->
      Alcotest.(check bool) (Printf.sprintf "label %s present" l) true
        (List.mem l present))
    Chemo.labels;
  (* Chronological order is guaranteed by the relation. *)
  let sorted = ref true in
  let prev = ref min_int in
  Relation.iter
    (fun e ->
      if Event.ts e < !prev then sorted := false;
      prev := Event.ts e)
    r;
  Alcotest.(check bool) "sorted" true !sorted;
  (* Patient ids stay within range. *)
  Relation.iter
    (fun e ->
      match Event.attr e 0 with
      | Value.Int id ->
          if id < 1 || id > small_chemo.Chemo.patients then
            Alcotest.fail "patient id out of range"
      | _ -> Alcotest.fail "ID not an int")
    r

let test_chemo_q1_matches () =
  (* The generator must produce data on which the running example's query
     actually finds matches. *)
  let r = Chemo.generate small_chemo in
  let outcome = Helpers.run Ses_harness.Queries.q1 r in
  Alcotest.(check bool) "q1 matches exist" true
    (outcome.Ses_core.Engine.matches <> [])

let test_duplicate () =
  let r = Chemo.generate small_chemo in
  let d3 = Dataset.duplicate 3 r in
  Alcotest.(check int) "triple size" (3 * Relation.cardinality r)
    (Relation.cardinality d3);
  Alcotest.(check int) "window scales" (3 * Relation.window_size r 264)
    (Relation.window_size d3 264);
  Alcotest.(check int) "duplicate 1 is identity" (Relation.cardinality r)
    (Relation.cardinality (Dataset.duplicate 1 r));
  Alcotest.check_raises "k = 0" (Invalid_argument "Dataset.duplicate: k must be >= 1")
    (fun () -> ignore (Dataset.duplicate 0 r))

let test_d_series () =
  let r = Chemo.generate small_chemo in
  let series = Dataset.d_series r 3 in
  Alcotest.(check (list string)) "names" [ "D1"; "D2"; "D3" ] (List.map fst series);
  Alcotest.(check bool) "D1 is the original" true
    (Relation.cardinality (List.assoc "D1" series) = Relation.cardinality r);
  Alcotest.(check bool) "describe mentions W" true
    (String.length (Dataset.describe r 264) > 0)

let test_random_workload_patterns_valid () =
  (* Pattern generation must always produce valid patterns. *)
  let rng = Prng.create 123L in
  for _ = 1 to 200 do
    let p = Random_workload.pattern rng Random_workload.default_pattern in
    if Ses_pattern.Pattern.n_vars p < 1 then Alcotest.fail "empty pattern"
  done

let test_random_workload_relation () =
  let rng = Prng.create 5L in
  let spec = { Random_workload.default_relation with Random_workload.n_events = 40 } in
  let r = Random_workload.relation rng spec in
  Alcotest.(check int) "requested size" 40 (Relation.cardinality r);
  Alcotest.(check bool) "uses the workload schema" true
    (Schema.equal (Relation.schema r) Random_workload.schema)

let test_clickstream () =
  let r = Clickstream.generate Clickstream.default in
  Alcotest.(check bool) "nonempty" false (Relation.is_empty r);
  Alcotest.(check bool) "schema" true
    (Schema.equal (Relation.schema r) Clickstream.schema);
  let count page =
    Relation.fold
      (fun acc e ->
        if Value.equal (Event.attr e 1) (Value.Str page) then acc + 1 else acc)
      0 r
  in
  Alcotest.(check int) "one product page per shopper"
    Clickstream.default.Clickstream.shoppers (count "product");
  Alcotest.(check bool) "some conversions" true (count "checkout" > 0);
  Alcotest.(check bool) "not everyone converts" true
    (count "checkout" < Clickstream.default.Clickstream.shoppers)

let test_finance_rfid () =
  let fin = Finance.generate Finance.default in
  Alcotest.(check bool) "finance nonempty" false (Relation.is_empty fin);
  Alcotest.(check bool) "finance schema" true
    (Schema.equal (Relation.schema fin) Finance.schema);
  let rf = Rfid.generate Rfid.default in
  Alcotest.(check bool) "rfid nonempty" false (Relation.is_empty rf);
  Alcotest.(check bool) "rfid schema" true
    (Schema.equal (Relation.schema rf) Rfid.schema);
  (* Both generators embed at least one GATE / HEDGE completion. *)
  let has r attr_value =
    Relation.fold
      (fun acc e -> acc || Value.equal (Event.attr e 1) (Value.Str attr_value))
      false r
  in
  Alcotest.(check bool) "hedge present" true (has fin "HEDGE");
  Alcotest.(check bool) "gate present" true (has rf "GATE")

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "prng shuffle/pick" `Quick test_prng_shuffle_pick;
    Alcotest.test_case "chemo deterministic" `Quick test_chemo_deterministic;
    Alcotest.test_case "chemo content" `Quick test_chemo_content;
    Alcotest.test_case "chemo supports Q1" `Quick test_chemo_q1_matches;
    Alcotest.test_case "dataset duplicate" `Quick test_duplicate;
    Alcotest.test_case "d_series" `Quick test_d_series;
    Alcotest.test_case "random patterns valid" `Quick test_random_workload_patterns_valid;
    Alcotest.test_case "random relations" `Quick test_random_workload_relation;
    Alcotest.test_case "clickstream generator" `Quick test_clickstream;
    Alcotest.test_case "finance and rfid generators" `Quick test_finance_rfid;
  ]
