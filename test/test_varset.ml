open Ses_core

let test_basics () =
  let s = Varset.of_list [ 0; 3; 5 ] in
  Alcotest.(check bool) "empty" true (Varset.is_empty Varset.empty);
  Alcotest.(check bool) "nonempty" false (Varset.is_empty s);
  Alcotest.(check bool) "mem" true (Varset.mem 3 s);
  Alcotest.(check bool) "not mem" false (Varset.mem 1 s);
  Alcotest.(check int) "cardinal" 3 (Varset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 3; 5 ] (Varset.to_list s);
  Alcotest.(check bool) "add/remove" true
    (Varset.equal s (Varset.remove 7 (Varset.add 7 s)));
  Alcotest.(check bool) "singleton" true
    (Varset.equal (Varset.singleton 4) (Varset.of_list [ 4 ]))

let test_set_ops () =
  let a = Varset.of_list [ 0; 1 ] and b = Varset.of_list [ 1; 2 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2 ] (Varset.to_list (Varset.union a b));
  Alcotest.(check (list int)) "inter" [ 1 ] (Varset.to_list (Varset.inter a b));
  Alcotest.(check (list int)) "diff" [ 0 ] (Varset.to_list (Varset.diff a b));
  Alcotest.(check bool) "subset" true (Varset.subset (Varset.singleton 1) a);
  Alcotest.(check bool) "not subset" false (Varset.subset b a);
  Alcotest.(check bool) "empty subset of all" true (Varset.subset Varset.empty b)

let test_subsets () =
  let s = Varset.of_list [ 0; 2; 4 ] in
  let subs = Varset.subsets s in
  Alcotest.(check int) "2^3 subsets" 8 (List.length subs);
  Alcotest.(check int) "distinct" 8
    (List.length (List.sort_uniq Varset.compare subs));
  Alcotest.(check bool) "all within" true
    (List.for_all (fun q -> Varset.subset q s) subs);
  Alcotest.(check bool) "contains empty" true
    (List.exists Varset.is_empty subs);
  Alcotest.(check bool) "contains full" true
    (List.exists (Varset.equal s) subs);
  Alcotest.(check int) "empty set has one subset" 1
    (List.length (Varset.subsets Varset.empty))

let test_fold () =
  let s = Varset.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "sum" 6 (Varset.fold ( + ) s 0)

let test_pp () =
  let name_of = function 0 -> "c" | 1 -> "d" | 2 -> "p+" | _ -> "?" in
  Alcotest.(check string) "set" "cdp+"
    (Format.asprintf "%a" (Varset.pp ~name_of) (Varset.of_list [ 0; 1; 2 ]));
  Alcotest.(check string) "empty" "\xe2\x88\x85"
    (Format.asprintf "%a" (Varset.pp ~name_of) Varset.empty)

let roundtrip =
  QCheck.Test.make ~count:200 ~name:"of_list/to_list roundtrip"
    QCheck.(list_of_size Gen.(0 -- 10) (int_bound 61))
    (fun l ->
      let s = Varset.of_list l in
      Varset.to_list s = List.sort_uniq Int.compare l)

let union_cardinal =
  QCheck.Test.make ~count:200 ~name:"inclusion-exclusion"
    QCheck.(
      pair (list_of_size Gen.(0 -- 10) (int_bound 61))
        (list_of_size Gen.(0 -- 10) (int_bound 61)))
    (fun (la, lb) ->
      let a = Varset.of_list la and b = Varset.of_list lb in
      Varset.cardinal (Varset.union a b) + Varset.cardinal (Varset.inter a b)
      = Varset.cardinal a + Varset.cardinal b)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "subsets" `Quick test_subsets;
    Alcotest.test_case "fold" `Quick test_fold;
    Alcotest.test_case "pp" `Quick test_pp;
    QCheck_alcotest.to_alcotest roundtrip;
    QCheck_alcotest.to_alcotest union_cardinal;
  ]
