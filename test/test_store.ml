open Ses_event
open Ses_store

let with_catalog f =
  let dir = Filename.temp_file "ses_catalog" "" in
  Sys.remove dir;
  let finally () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect ~finally (fun () ->
      match Catalog.open_dir dir with
      | Ok c -> f c
      | Error e -> Alcotest.fail e)

let sample = Helpers.rel [ (1, "a", 0, 0); (2, "b", 1, 5) ]

let test_catalog_save_load () =
  with_catalog (fun c ->
      (match Catalog.save c "events" sample with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "exists" true (Catalog.exists c "events");
      Alcotest.(check (list string)) "list" [ "events" ] (Catalog.list c);
      match Catalog.load c "events" with
      | Ok r -> Alcotest.(check int) "cardinality" 2 (Relation.cardinality r)
      | Error e -> Alcotest.fail e)

let test_catalog_remove () =
  with_catalog (fun c ->
      (match Catalog.save c "tmp" sample with Ok () -> () | Error e -> Alcotest.fail e);
      (match Catalog.remove c "tmp" with Ok () -> () | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "gone" false (Catalog.exists c "tmp");
      Alcotest.(check bool) "remove missing errors" true
        (Result.is_error (Catalog.remove c "tmp")))

let test_catalog_names () =
  with_catalog (fun c ->
      Alcotest.(check bool) "slash rejected" true
        (Result.is_error (Catalog.save c "a/b" sample));
      Alcotest.(check bool) "empty rejected" true
        (Result.is_error (Catalog.save c "" sample));
      Alcotest.(check bool) "dots rejected" true
        (Result.is_error (Catalog.load c ".."));
      Alcotest.(check bool) "missing errors" true
        (Result.is_error (Catalog.load c "nothere")))

let test_index () =
  let r =
    Helpers.rel [ (1, "a", 0, 0); (2, "b", 0, 1); (1, "c", 0, 2); (3, "d", 0, 3) ]
  in
  let idx = Index.build r 0 in
  Alcotest.(check int) "attribute" 0 (Index.attribute idx);
  Alcotest.(check int) "three keys" 3 (Index.cardinality idx);
  Alcotest.(check int) "id 1 has two" 2 (List.length (Index.lookup idx (Value.Int 1)));
  Alcotest.(check int) "absent" 0 (List.length (Index.lookup idx (Value.Int 9)));
  (* Chronological order within a key. *)
  let seqs = List.map Event.seq (Index.lookup idx (Value.Int 1)) in
  Alcotest.(check (list int)) "ordered" [ 0; 2 ] seqs;
  Alcotest.(check int) "keys sorted" 1
    (match Index.keys idx with Value.Int k :: _ -> k | _ -> -1)

let test_index_postings () =
  let r =
    Helpers.rel
      [ (1, "a", 0, 0); (2, "b", 0, 3); (1, "c", 0, 5); (1, "d", 0, 9) ]
  in
  let idx = Index.build r 0 in
  (* The postings array is the index's shared storage: chronological,
     and physically the same array on every call. *)
  let p1 = Index.postings idx (Value.Int 1) in
  Alcotest.(check (list int)) "chronological seqs" [ 0; 2; 3 ]
    (Array.to_list (Array.map Event.seq p1));
  Alcotest.(check bool) "shared across calls" true
    (p1 == Index.postings idx (Value.Int 1));
  Alcotest.(check int) "count without postings" 3 (Index.count idx (Value.Int 1));
  Alcotest.(check int) "absent count" 0 (Index.count idx (Value.Int 9));
  Alcotest.(check int) "absent postings" 0
    (Array.length (Index.postings idx (Value.Int 9)));
  (* Zone-map slicing: inclusive bounds, shared array when the range
     covers everything, empty on a disjoint range. *)
  let between lo hi =
    Array.to_list
      (Array.map Event.seq (Index.postings_between idx (Value.Int 1) ~lo ~hi))
  in
  Alcotest.(check (list int)) "inner slice" [ 2 ] (between 1 8);
  Alcotest.(check (list int)) "inclusive bounds" [ 0; 2; 3 ] (between 0 9);
  Alcotest.(check (list int)) "left edge" [ 0 ] (between 0 0);
  Alcotest.(check (list int)) "right edge" [ 3 ] (between 9 20);
  Alcotest.(check (list int)) "disjoint" [] (between 10 20);
  Alcotest.(check (list int)) "inverted range" [] (between 8 1);
  Alcotest.(check bool) "full range shares storage" true
    (p1 == Index.postings_between idx (Value.Int 1) ~lo:0 ~hi:9)

let test_partition () =
  let r =
    Helpers.rel [ (1, "a", 0, 0); (2, "b", 0, 1); (1, "c", 0, 2); (2, "d", 0, 3) ]
  in
  let parts = Partition.by_attribute r 0 in
  Alcotest.(check int) "two partitions" 2 (List.length parts);
  let total =
    List.fold_left (fun acc (_, p) -> acc + Relation.cardinality p) 0 parts
  in
  Alcotest.(check int) "partition of the whole" (Relation.cardinality r) total;
  List.iter
    (fun (key, p) ->
      Relation.iter
        (fun e ->
          Alcotest.(check bool) "homogeneous" true
            (Value.equal (Event.attr e 0) key))
        p)
    parts;
  (match Partition.by_name r "ID" with
  | Ok parts' -> Alcotest.(check int) "by name" 2 (List.length parts')
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown attribute" true
    (Result.is_error (Partition.by_name r "NOPE"))

let test_selection () =
  let r =
    Helpers.rel
      [ (1, "a", 5, 0); (2, "b", 7, 10); (1, "a", 9, 20); (3, "c", 1, 30) ]
  in
  let ok = function Ok x -> x | Error e -> Alcotest.fail e in
  let sel p = Relation.cardinality (ok (Selection.select r p)) in
  Alcotest.(check int) "attr equals" 2
    (sel (Selection.attr "L" Predicate.Eq (Value.Str "a")));
  Alcotest.(check int) "conj" 1
    (sel
       (Selection.conj
          [
            Selection.attr "L" Predicate.Eq (Value.Str "a");
            Selection.attr "V" Predicate.Gt (Value.Int 6);
          ]));
  Alcotest.(check int) "disj" 3
    (sel
       (Selection.disj
          [
            Selection.attr "ID" Predicate.Eq (Value.Int 1);
            Selection.attr "ID" Predicate.Eq (Value.Int 3);
          ]));
  Alcotest.(check int) "time range" 2 (sel (Selection.time_range 5 25));
  Alcotest.(check int) "T attr directly" 3
    (sel (Selection.attr "T" Predicate.Ge (Value.Int 10)));
  Alcotest.(check bool) "unknown attr" true
    (Result.is_error (Selection.select r (Selection.attr "Z" Predicate.Eq (Value.Int 1))));
  Alcotest.(check bool) "type mismatch" true
    (Result.is_error
       (Selection.select r (Selection.attr "L" Predicate.Eq (Value.Int 1))))

let test_csv_stream () =
  let path = Filename.temp_file "ses_stream" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Csv.save path Helpers.figure_1 with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (match Csv_stream.count path with
      | Ok n -> Alcotest.(check int) "count" 14 n
      | Error e -> Alcotest.fail e);
      (* Streaming the file through the engine gives the same matches as
         loading it. *)
      let automaton = Ses_core.Automaton.of_pattern Helpers.query_q1 in
      let st = Ses_core.Engine.create automaton in
      (match Csv_stream.iter path ~f:(fun e -> ignore (Ses_core.Engine.feed st e)) with
      | Ok schema ->
          Alcotest.(check bool) "schema" true
            (Schema.equal schema Helpers.chemo_schema)
      | Error e -> Alcotest.fail e);
      ignore (Ses_core.Engine.close st);
      Alcotest.(check int) "raw emissions" 3
        (List.length (Ses_core.Engine.emitted st));
      (* Sequence numbers follow file order. *)
      match
        Csv_stream.fold path ~init:[] ~f:(fun acc e -> Event.seq e :: acc)
      with
      | Ok (_, seqs) ->
          Alcotest.(check (list int)) "sequence numbers"
            (List.init 14 Fun.id) (List.rev seqs)
      | Error e -> Alcotest.fail e)

let test_csv_stream_errors () =
  let with_content content f =
    let path = Filename.temp_file "ses_stream" ".csv" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        f path)
  in
  with_content "" (fun path ->
      Alcotest.(check bool) "empty" true (Result.is_error (Csv_stream.count path)));
  with_content "A:int,T
1,5
2,3
" (fun path ->
      match Csv_stream.count path with
      | Error msg ->
          Alcotest.(check bool) "out of order reported" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "expected out-of-order error");
  with_content "A:int,T
x,5
" (fun path ->
      Alcotest.(check bool) "bad value" true
        (Result.is_error (Csv_stream.count path)));
  Alcotest.(check bool) "missing file" true
    (Result.is_error (Csv_stream.count "/nonexistent/file.csv"))

let test_catalog_stats () =
  with_catalog (fun c ->
      (* save refreshes the sidecar; stats then reads it back. *)
      (match Catalog.save c "events" sample with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "sidecar written" true
        (Sys.file_exists (Filename.concat (Catalog.path c) "events.stats"));
      (match Catalog.stats c "events" with
      | Ok s ->
          Alcotest.(check int) "rows" 2 (Stats.rows s);
          Alcotest.(check (option int)) "ID cardinality" (Some 2)
            (Option.map
               (fun a -> a.Stats.cardinality)
               (Stats.find s "ID"))
      | Error e -> Alcotest.fail e);
      (* A CSV rewritten behind the catalog's back makes the sidecar
         stale; [stats] must recompute from the newer file. The CSV's
         mtime is pushed into the future so the staleness comparison
         does not depend on filesystem timestamp granularity. *)
      let bigger = Helpers.rel [ (1, "a", 0, 0); (2, "b", 1, 5); (3, "c", 2, 9) ] in
      (match Ses_store.Csv.save (Filename.concat (Catalog.path c) "events.csv") bigger with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let future = Unix.time () +. 10. in
      Unix.utimes (Filename.concat (Catalog.path c) "events.csv") future future;
      (match Catalog.stats c "events" with
      | Ok s -> Alcotest.(check int) "recomputed rows" 3 (Stats.rows s)
      | Error e -> Alcotest.fail e);
      (* refresh_stats forces a recompute even with a fresh sidecar. *)
      (match Catalog.refresh_stats ~cap:1 c "events" with
      | Ok s -> (
          match Stats.find s "ID" with
          | Some a ->
              Alcotest.(check int) "capped histogram" 1
                (List.length a.Stats.histogram)
          | None -> Alcotest.fail "ID attr missing")
      | Error e -> Alcotest.fail e);
      (* Error paths: invalid names and missing relations. *)
      Alcotest.(check bool) "invalid name" true
        (Result.is_error (Catalog.stats c "a/b"));
      Alcotest.(check bool) "invalid name (refresh)" true
        (Result.is_error (Catalog.refresh_stats c ".."));
      Alcotest.(check bool) "missing relation" true
        (Result.is_error (Catalog.stats c "nothere"));
      (* A malformed CSV surfaces the row error instead of statistics. *)
      let bad = Filename.concat (Catalog.path c) "bad.csv" in
      let oc = open_out bad in
      output_string oc "A:int,T\n1,5\nx,6\n";
      close_out oc;
      (match Catalog.stats c "bad" with
      | Error msg ->
          Alcotest.(check bool) "malformed row reported" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "malformed CSV accepted");
      (* A corrupt sidecar is ignored and recomputed, not an error. *)
      let sidecar = Filename.concat (Catalog.path c) "events.stats" in
      let oc = open_out sidecar in
      output_string oc "not a stats file";
      close_out oc;
      Unix.utimes sidecar (future +. 10.) (future +. 10.);
      (match Catalog.stats c "events" with
      | Ok s -> Alcotest.(check int) "recovered from corrupt sidecar" 3 (Stats.rows s)
      | Error e -> Alcotest.fail e);
      (* remove drops the sidecar along with the CSV. *)
      (match Catalog.remove c "events" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "sidecar removed" false (Sys.file_exists sidecar))

let test_csv_stream_stats () =
  let path = Filename.temp_file "ses_stream" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Ses_store.Csv.save path Helpers.figure_1 with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Csv_stream.stats path with
      | Error e -> Alcotest.fail e
      | Ok (schema, s) ->
          Alcotest.(check bool) "schema" true
            (Schema.equal schema Helpers.chemo_schema);
          Alcotest.(check int) "rows" 14 (Stats.rows s);
          Alcotest.(check (option int)) "L='B' count" (Some 5)
            (Stats.estimate_eq s "L" (Value.Str "B")))

let test_store_then_match () =
  (* Integration: persist Figure 1 in a catalog, load it back, and run Q1
     — the paper's full pipeline (store → scan → match). *)
  with_catalog (fun c ->
      (match Catalog.save c "chemo" Helpers.figure_1 with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let r =
        match Catalog.load c "chemo" with Ok r -> r | Error e -> Alcotest.fail e
      in
      let outcome = Helpers.run Helpers.query_q1 r in
      Alcotest.(check int) "two matches from stored data" 2
        (List.length outcome.Ses_core.Engine.matches))

let suite =
  [
    Alcotest.test_case "catalog save/load" `Quick test_catalog_save_load;
    Alcotest.test_case "catalog remove" `Quick test_catalog_remove;
    Alcotest.test_case "catalog name validation" `Quick test_catalog_names;
    Alcotest.test_case "index" `Quick test_index;
    Alcotest.test_case "index postings + zone map" `Quick test_index_postings;
    Alcotest.test_case "partition" `Quick test_partition;
    Alcotest.test_case "catalog stats" `Quick test_catalog_stats;
    Alcotest.test_case "csv stream stats" `Quick test_csv_stream_stats;
    Alcotest.test_case "selection" `Quick test_selection;
    Alcotest.test_case "csv streaming" `Quick test_csv_stream;
    Alcotest.test_case "csv streaming errors" `Quick test_csv_stream_errors;
    Alcotest.test_case "store then match (integration)" `Quick test_store_then_match;
  ]
