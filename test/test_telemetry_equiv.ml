(* Differential properties for the telemetry layer: instrumentation must
   be a pure observer. For random workloads, every executor strategy and
   1/2/4 worker domains, a run with a recording sink produces exactly
   the same finalized matches, raw emissions and [Metrics.snapshot] as a
   run with the no-op sink — and the recorded profile is internally
   consistent with those counters (one ingest span and one [event_ns]
   sample per batch pushed — [run] chunks by [options.batch_size] —
   histogram totals = span totals, merged peak bounded by the measured
   cross-shard peak). *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_gen
open Helpers

let () = Ses_baseline.Brute_force.register ()

let part_spec =
  { Random_workload.default_pattern with Random_workload.p_id_join = 1.0 }

let with_workload seed f =
  let rng = Prng.create (Int64.of_int seed) in
  let pat = Random_workload.pattern rng part_spec in
  let r = Random_workload.relation rng Random_workload.default_relation in
  f pat r

let canon substs = List.map Substitution.canonical substs
let canon_sorted substs =
  List.sort Substitution.compare_canonical (canon substs)

let options ~domains telemetry =
  { Engine.default_options with Engine.domains; telemetry }

let run ~strategy ~domains telemetry automaton r =
  Executor.run_relation ~options:(options ~domains telemetry) strategy
    automaton r

(* The naive oracle enumerates assignments exhaustively and the brute
   force runs one automaton per ordering — both explode on the random
   workloads, so the strategy grid covers them on the small Figure 1
   relation instead (see [strategies_on_figure_1]). *)
let grid_strategies = [ `Auto; `Plain; `Partitioned; `Par_partitioned ]

let domain_grid = [ 1; 2; 4 ]

let find_span p name = List.assoc_opt name p.Telemetry.spans

let find_hist p name = List.assoc_opt name p.Telemetry.histograms

let recording_run_is_invisible =
  QCheck.Test.make ~count:20
    ~name:"recording sink: same matches, raw and metrics as no-op sink"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          List.for_all
            (fun strategy ->
              List.for_all
                (fun domains ->
                  let plain = run ~strategy ~domains None automaton r in
                  let tl = Telemetry.create () in
                  let recorded =
                    run ~strategy ~domains (Some tl) automaton r
                  in
                  canon recorded.Engine.matches = canon plain.Engine.matches
                  && canon_sorted recorded.Engine.raw
                     = canon_sorted plain.Engine.raw
                  && recorded.Engine.metrics = plain.Engine.metrics)
                domain_grid)
            grid_strategies))

(* Internal consistency: every chunk pushed through the executor is one
   ingest span interval and one event_ns histogram sample — [run] chunks
   the input by [options.batch_size] — and the two probes share their
   measurements. *)
let chunks n =
  if n = 0 then 0
  else (n + Engine.default_batch_size - 1) / Engine.default_batch_size

let profile_consistent_with_counters =
  QCheck.Test.make ~count:20
    ~name:"profile: ingest count = batches pushed, histogram = span"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let n = Relation.cardinality r in
          List.for_all
            (fun strategy ->
              List.for_all
                (fun domains ->
                  let tl = Telemetry.create () in
                  let outcome = run ~strategy ~domains (Some tl) automaton r in
                  let p = Telemetry.snapshot tl in
                  match (find_span p "ingest", find_hist p "event_ns") with
                  | Some ingest, Some hist ->
                      ingest.Telemetry.span_count = chunks n
                      && hist.Telemetry.hist_count = chunks n
                      && hist.Telemetry.hist_sum
                         = ingest.Telemetry.span_total_ns
                      && hist.Telemetry.hist_max = ingest.Telemetry.span_max_ns
                      && Array.fold_left ( + ) 0 hist.Telemetry.hist_buckets
                         = chunks n
                      (* the engine-level filter span fires at most once
                         per (pool, batch) — never more often than there
                         are events, and not at all under [No_filter] *)
                      && (match find_span p "filter" with
                         | Some f -> f.Telemetry.span_count <= n
                         | None -> n = 0)
                      && outcome.Engine.metrics.Metrics.events_seen = n
                  | _ -> n = 0)
                domain_grid)
            grid_strategies))

(* The Metrics.merge peak is a lower bound on the true global peak; the
   shared population.global gauge measures that true peak under the
   sharded layouts, so the two must be ordered — and the measured peak
   can never exceed the total number of instances ever created. *)
let merged_peak_bounded_by_measured_peak =
  QCheck.Test.make ~count:30
    ~name:"sharded: merge peak <= measured population.global peak"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          Pattern.n_vars pat < 2
          || Pattern.group_vars pat <> []
          || Partitioned.partition_key automaton = None
          || List.for_all
               (fun domains ->
                 let tl = Telemetry.create () in
                 let outcome =
                   run ~strategy:`Partitioned ~domains (Some tl) automaton r
                 in
                 let p = Telemetry.snapshot tl in
                 match List.assoc_opt "population.global" p.Telemetry.gauges with
                 | None -> false
                 | Some g ->
                     outcome.Engine.metrics.Metrics.max_simultaneous_instances
                     <= g.Telemetry.gauge_peak
                     && g.Telemetry.gauge_peak
                        <= outcome.Engine.metrics.Metrics.instances_created)
               domain_grid))

(* All five strategies on the Figure 1 relation (small enough for the
   naive oracle and the brute-force baseline): sink on/off parity plus
   the ingest accounting, end to end. *)
let test_strategies_on_figure_1 () =
  let automaton = Automaton.of_pattern query_q1_singleton in
  let n = Relation.cardinality figure_1 in
  List.iter
    (fun strategy ->
      let plain = run ~strategy ~domains:1 None automaton figure_1 in
      let tl = Telemetry.create () in
      let recorded = run ~strategy ~domains:1 (Some tl) automaton figure_1 in
      let name = Executor.strategy_name strategy in
      Alcotest.(check bool)
        (Printf.sprintf "%s: matches agree" name)
        true
        (canon recorded.Engine.matches = canon plain.Engine.matches);
      Alcotest.(check bool)
        (Printf.sprintf "%s: metrics agree" name)
        true
        (recorded.Engine.metrics = plain.Engine.metrics);
      let p = Telemetry.snapshot tl in
      match find_span p "ingest" with
      | None -> Alcotest.failf "%s: no ingest span recorded" name
      | Some ingest ->
          Alcotest.(check int)
            (Printf.sprintf "%s: ingest count" name)
            (chunks n) ingest.Telemetry.span_count)
    [ `Auto; `Plain; `Partitioned; `Par_partitioned; `Naive; `Brute_force ]

(* Sharded determinism carries over to the deterministic slice of the
   profile: counts (though not durations) are identical run to run. *)
let sharded_profile_counts_deterministic =
  QCheck.Test.make ~count:10
    ~name:"sharded: profile counts are deterministic"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let counts () =
            let tl = Telemetry.create () in
            ignore (run ~strategy:`Partitioned ~domains:4 (Some tl) automaton r);
            let p = Telemetry.snapshot tl in
            let sorted l =
              List.sort
                (fun (a, x) (b, y) ->
                  let c = String.compare a b in
                  if c <> 0 then c else Int.compare x y)
                l
            in
            ( sorted
                (List.map
                   (fun (n, s) -> (n, s.Telemetry.span_count))
                   p.Telemetry.spans),
              sorted
                (List.map
                   (fun (n, (h : Telemetry.histogram_data)) ->
                     (n, h.Telemetry.hist_count))
                   p.Telemetry.histograms),
              sorted p.Telemetry.counters )
          in
          counts () = counts ()))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      recording_run_is_invisible;
      profile_consistent_with_counters;
      merged_peak_bounded_by_measured_peak;
      sharded_profile_counts_deterministic;
    ]
  @ [
      Alcotest.test_case "all strategies on Figure 1" `Quick
        test_strategies_on_figure_1;
    ]
