open Ses_event
open Ses_pattern
open Helpers

let pat ~where sets = pattern ~where ~within:100 sets

let id p name = Option.get (Pattern.var_id p name)

let test_distinct_labels_exclusive () =
  let p = pat [ [ v "a"; v "b" ] ] ~where:[ label "a" "x"; label "b" "y" ] in
  Alcotest.(check bool) "exclusive" true
    (Exclusivity.mutually_exclusive p (id p "a") (id p "b"));
  Alcotest.(check bool) "symmetric" true
    (Exclusivity.mutually_exclusive p (id p "b") (id p "a"));
  Alcotest.(check bool) "all pairwise" true (Exclusivity.all_pairwise_exclusive p)

let test_same_label_not_exclusive () =
  let p = pat [ [ v "a"; v "b" ] ] ~where:[ label "a" "x"; label "b" "x" ] in
  Alcotest.(check bool) "not exclusive" false
    (Exclusivity.mutually_exclusive p (id p "a") (id p "b"))

let test_self_never_exclusive () =
  let p = pat [ [ v "a" ] ] ~where:[ label "a" "x" ] in
  Alcotest.(check bool) "self" false
    (Exclusivity.mutually_exclusive p (id p "a") (id p "a"))

let test_no_conditions_not_exclusive () =
  let p = pat [ [ v "a"; v "b" ] ] ~where:[] in
  Alcotest.(check bool) "unconstrained" false
    (Exclusivity.mutually_exclusive p (id p "a") (id p "b"))

let test_different_attributes_not_exclusive () =
  (* a.L = 'x' and b.V = 5 never conflict: Definition 6 requires the same
     attribute on both sides. *)
  let p =
    pat
      [ [ v "a"; v "b" ] ]
      ~where:
        [ label "a" "x"; Pattern.Spec.const "b" "V" Predicate.Eq (Value.Int 5) ]
  in
  Alcotest.(check bool) "different attributes" false
    (Exclusivity.mutually_exclusive p (id p "a") (id p "b"))

let test_range_exclusivity () =
  let cond name op k = Pattern.Spec.const name "V" op (Value.Int k) in
  let p =
    pat
      [ [ v "a"; v "b" ] ]
      ~where:[ cond "a" Predicate.Lt 3; cond "b" Predicate.Gt 7 ]
  in
  Alcotest.(check bool) "disjoint ranges exclusive" true
    (Exclusivity.mutually_exclusive p (id p "a") (id p "b"));
  let p2 =
    pat
      [ [ v "a"; v "b" ] ]
      ~where:[ cond "a" Predicate.Lt 5; cond "b" Predicate.Gt 3 ]
  in
  Alcotest.(check bool) "overlapping ranges not exclusive" false
    (Exclusivity.mutually_exclusive p2 (id p2 "a") (id p2 "b"))

let test_var_conditions_ignored () =
  (* Only constant conditions count for Definition 6. *)
  let p =
    pat
      [ [ v "a"; v "b" ] ]
      ~where:[ Pattern.Spec.fields "a" "V" Predicate.Lt "b" "V" ]
  in
  Alcotest.(check bool) "var-var condition ignored" false
    (Exclusivity.mutually_exclusive p (id p "a") (id p "b"))

let check_case = Alcotest.testable Exclusivity.pp_case ( = )

let test_classify () =
  let excl = pat [ [ v "a"; v "b" ] ] ~where:[ label "a" "x"; label "b" "y" ] in
  Alcotest.check check_case "case 1" Exclusivity.Exclusive
    (Exclusivity.classify_set excl 0);
  let overlap = pat [ [ v "a"; v "b" ] ] ~where:[ label "a" "x"; label "b" "x" ] in
  Alcotest.check check_case "case 2" Exclusivity.Overlapping
    (Exclusivity.classify_set overlap 0);
  let with_group =
    pat [ [ v "a"; vplus "b" ] ] ~where:[ label "a" "x"; label "b" "x" ]
  in
  Alcotest.check check_case "case 3, k=1"
    (Exclusivity.Overlapping_with_groups 1)
    (Exclusivity.classify_set with_group 0);
  let two_groups =
    pat [ [ vplus "a"; vplus "b" ] ] ~where:[ label "a" "x"; label "b" "x" ]
  in
  Alcotest.check check_case "case 3, k=2"
    (Exclusivity.Overlapping_with_groups 2)
    (Exclusivity.classify_set two_groups 0);
  (* An exclusive set with groups is still case 1: Lemma 1 only needs
     exclusivity. *)
  let excl_group =
    pat [ [ v "a"; vplus "b" ] ] ~where:[ label "a" "x"; label "b" "y" ]
  in
  Alcotest.check check_case "exclusive despite group" Exclusivity.Exclusive
    (Exclusivity.classify_set excl_group 0)

let test_classify_per_set () =
  let p =
    pat
      [ [ v "a"; v "b" ]; [ v "c"; v "d" ] ]
      ~where:[ label "a" "x"; label "b" "y"; label "c" "z"; label "d" "z" ]
  in
  Alcotest.(check (list check_case)) "per set"
    [ Exclusivity.Exclusive; Exclusivity.Overlapping ]
    (Exclusivity.classify p);
  Alcotest.(check bool) "set 0 exclusive" true (Exclusivity.set_pairwise_exclusive p 0);
  Alcotest.(check bool) "set 1 not" false (Exclusivity.set_pairwise_exclusive p 1);
  Alcotest.(check bool) "whole pattern not" false (Exclusivity.all_pairwise_exclusive p)

let test_running_example () =
  (* Example 10: all event variables of Q1 are pairwise mutually exclusive. *)
  Alcotest.(check bool) "Q1 exclusive" true
    (Exclusivity.all_pairwise_exclusive query_q1)

(* Lemma 1: with pairwise mutually exclusive variables no nondeterminism
   occurs — at most one transition fires per instance and event, so the
   number of instances created never exceeds the number of transitions
   fired plus the fresh instances. *)
let test_lemma1_no_branching () =
  let p =
    pat
      [ [ v "a"; v "b"; v "c" ] ]
      ~where:[ label "a" "x"; label "b" "y"; label "c" "z" ]
  in
  let r =
    rel_l
      [ ("x", 1); ("y", 2); ("x", 3); ("z", 4); ("y", 5); ("z", 6); ("x", 7) ]
  in
  let outcome = run p r in
  let m = outcome.Ses_core.Engine.metrics in
  Alcotest.(check bool) "creations bounded" true
    (m.Ses_core.Metrics.instances_created
    <= m.Ses_core.Metrics.transitions_fired + m.Ses_core.Metrics.events_seen);
  Alcotest.(check int) "transitions = non-fresh creations"
    m.Ses_core.Metrics.transitions_fired
    (m.Ses_core.Metrics.instances_created - m.Ses_core.Metrics.events_seen)

let suite =
  [
    Alcotest.test_case "distinct labels" `Quick test_distinct_labels_exclusive;
    Alcotest.test_case "same label" `Quick test_same_label_not_exclusive;
    Alcotest.test_case "self" `Quick test_self_never_exclusive;
    Alcotest.test_case "no conditions" `Quick test_no_conditions_not_exclusive;
    Alcotest.test_case "different attributes" `Quick test_different_attributes_not_exclusive;
    Alcotest.test_case "ranges" `Quick test_range_exclusivity;
    Alcotest.test_case "variable conditions ignored" `Quick test_var_conditions_ignored;
    Alcotest.test_case "classification" `Quick test_classify;
    Alcotest.test_case "classification per set" `Quick test_classify_per_set;
    Alcotest.test_case "Example 10 (Q1)" `Quick test_running_example;
    Alcotest.test_case "Lemma 1: no branching" `Quick test_lemma1_no_branching;
  ]
