open Ses_core
open Helpers

(* Simple two-variable sequence <{x}, {y}>. *)
let seq_xy ~within =
  pattern ~within [ [ v "x" ]; [ v "y" ] ] ~where:[ label "x" "x"; label "y" "y" ]

let test_simple_sequence () =
  let p = seq_xy ~within:10 in
  let outcome = run p (rel_l [ ("x", 0); ("y", 3) ]) in
  check_substs p [ [ ("x", 1); ("y", 2) ] ] outcome.Engine.matches

let test_no_match () =
  let p = seq_xy ~within:10 in
  let outcome = run p (rel_l [ ("y", 0); ("x", 3) ]) in
  check_substs p [] outcome.Engine.matches

let test_empty_relation () =
  let p = seq_xy ~within:10 in
  let outcome = run p (Ses_event.Relation.of_rows_exn schema []) in
  check_substs p [] outcome.Engine.matches;
  Alcotest.(check int) "no events" 0 outcome.Engine.metrics.Metrics.events_seen

let test_window_expiry () =
  let p = seq_xy ~within:5 in
  (* y arrives 6 units after x: outside τ. *)
  let outcome = run p (rel_l [ ("x", 0); ("y", 6) ]) in
  check_substs p [] outcome.Engine.matches;
  (* A second x revives the search. *)
  let outcome2 = run p (rel_l [ ("x", 0); ("x", 4); ("y", 6) ]) in
  check_substs p [ [ ("x", 2); ("y", 3) ] ] outcome2.Engine.matches

let test_window_boundary_inclusive () =
  (* span exactly τ is allowed (condition 3 is ≤ τ). *)
  let p = seq_xy ~within:5 in
  let outcome = run p (rel_l [ ("x", 0); ("y", 5) ]) in
  check_substs p [ [ ("x", 1); ("y", 2) ] ] outcome.Engine.matches

let test_skip_till_next_match () =
  (* The first eligible y is bound; the later one is ignored. *)
  let p = seq_xy ~within:10 in
  let outcome = run p (rel_l [ ("x", 0); ("y", 2); ("y", 4) ]) in
  check_substs p [ [ ("x", 1); ("y", 2) ] ] outcome.Engine.matches

let test_emission_via_expiry () =
  (* A match completes, then the window closes long before the stream
     ends: the substitution must be emitted on expiry, not only at the
     final flush. *)
  let p = seq_xy ~within:5 in
  let st = Engine.create (Automaton.of_pattern p) in
  let mk = List.map (fun (l, ts) -> (l, ts)) in
  ignore mk;
  let events = rel_l [ ("x", 0); ("y", 2); ("z", 100); ("z", 200) ] in
  let collected = ref [] in
  Ses_event.Relation.iter
    (fun e -> collected := !collected @ Engine.feed st e)
    events;
  Alcotest.(check int) "emitted before close" 1 (List.length !collected);
  Alcotest.(check int) "nothing at close" 0 (List.length (Engine.close st))

let test_group_greedy_maximal () =
  let p =
    pattern ~within:20
      [ [ vplus "g" ]; [ v "z" ] ]
      ~where:[ label "g" "g"; label "z" "z" ]
  in
  let outcome = run p (rel_l [ ("g", 0); ("g", 1); ("g", 2); ("z", 3) ]) in
  (* MAXIMAL mode: only the largest substitution survives. *)
  check_substs p
    [ [ ("g+", 1); ("g+", 2); ("g+", 3); ("z", 4) ] ]
    outcome.Engine.matches

let test_permutation_within_set () =
  let p =
    pattern ~within:20
      [ [ v "a"; v "b" ]; [ v "z" ] ]
      ~where:[ label "a" "a"; label "b" "b"; label "z" "z" ]
  in
  (* Both orders of a and b match. *)
  let o1 = run p (rel_l [ ("a", 0); ("b", 1); ("z", 2) ]) in
  check_substs p [ [ ("a", 1); ("b", 2); ("z", 3) ] ] o1.Engine.matches;
  let o2 = run p (rel_l [ ("b", 0); ("a", 1); ("z", 2) ]) in
  check_substs p [ [ ("a", 2); ("b", 1); ("z", 3) ] ] o2.Engine.matches

let test_order_across_sets_strict () =
  (* An event of set 2 at the same timestamp as set 1's last event cannot
     match (strict <). Same-relation ties are ordered by sequence, but the
     concatenation's time constraint compares timestamps. *)
  let p = seq_xy ~within:10 in
  let outcome = run p (rel_l [ ("x", 5); ("y", 5) ]) in
  check_substs p [] outcome.Engine.matches

let test_single_set_pattern () =
  let p = pattern ~within:10 [ [ v "a"; v "b" ] ] ~where:[ label "a" "a"; label "b" "b" ] in
  let outcome = run p (rel_l [ ("b", 0); ("a", 1) ]) in
  check_substs p [ [ ("a", 2); ("b", 1) ] ] outcome.Engine.matches

let test_tau_zero_simultaneous () =
  (* τ = 0 requires all events at the same timestamp; within one set that
     is allowed. *)
  let p = pattern ~within:0 [ [ v "a"; v "b" ] ] ~where:[ label "a" "a"; label "b" "b" ] in
  let outcome = run p (rel [ (1, "a", 0, 7); (1, "b", 0, 7) ]) in
  check_substs p [ [ ("a", 1); ("b", 2) ] ] outcome.Engine.matches;
  let apart = run p (rel [ (1, "a", 0, 7); (1, "b", 0, 8) ]) in
  check_substs p [] apart.Engine.matches

let test_nondeterministic_branching () =
  (* Both variables accept label 'm'; one m event can start either
     branch. *)
  let p =
    pattern ~within:10
      [ [ v "a"; v "b" ] ]
      ~where:[ label "a" "m"; label "b" "m" ]
  in
  let outcome = run p (rel_l [ ("m", 0); ("m", 1) ]) in
  (* Two symmetric substitutions over the same events. *)
  check_substs p
    [
      [ ("a", 1); ("b", 2) ];
      [ ("a", 2); ("b", 1) ];
    ]
    outcome.Engine.matches;
  Alcotest.(check bool) "branching occurred" true
    (outcome.Engine.metrics.Metrics.instances_created > 3)

let test_condition_on_timestamp () =
  (* Explicit T conditions in Θ are honoured. *)
  let p =
    pattern ~within:100
      [ [ v "x" ]; [ v "y" ] ]
      ~where:
        [
          label "x" "x";
          label "y" "y";
          Ses_pattern.Pattern.Spec.const "y" "T" Ses_event.Predicate.Ge
            (Ses_event.Value.Int 50);
        ]
  in
  let outcome = run p (rel_l [ ("x", 0); ("y", 10); ("y", 60) ]) in
  (* y at t=10 fails y.T >= 50; the instance skips it and binds the later
     y. *)
  check_substs p [ [ ("x", 1); ("y", 3) ] ] outcome.Engine.matches

let test_value_join_condition () =
  let p =
    pattern ~within:100
      [ [ v "x" ]; [ v "y" ] ]
      ~where:
        [
          label "x" "x";
          label "y" "y";
          Ses_pattern.Pattern.Spec.fields "x" "V" Ses_event.Predicate.Lt "y" "V";
        ]
  in
  let outcome =
    run p (rel [ (1, "x", 5, 0); (1, "y", 3, 1); (1, "y", 9, 2) ])
  in
  check_substs p [ [ ("x", 1); ("y", 3) ] ] outcome.Engine.matches

let test_out_of_order_rejected () =
  let p = seq_xy ~within:10 in
  let st = Engine.create (Automaton.of_pattern p) in
  let e1 = Ses_event.Event.make ~seq:0 ~ts:5 [| Ses_event.Value.Int 1; Ses_event.Value.Str "x"; Ses_event.Value.Int 0 |] in
  let e2 = Ses_event.Event.make ~seq:1 ~ts:3 [| Ses_event.Value.Int 1; Ses_event.Value.Str "y"; Ses_event.Value.Int 0 |] in
  ignore (Engine.feed st e1);
  Alcotest.check_raises "rejects regression"
    (Invalid_argument "Engine.feed: events out of chronological order")
    (fun () -> ignore (Engine.feed st e2))

let test_streaming_equals_batch () =
  let p = query_q1 in
  let automaton = Automaton.of_pattern p in
  let batch = Engine.run_relation automaton figure_1 in
  let st = Engine.create automaton in
  Ses_event.Relation.iter (fun e -> ignore (Engine.feed st e)) figure_1;
  ignore (Engine.close st);
  Alcotest.(check int) "same raw emissions"
    (List.length batch.Engine.raw)
    (List.length (Engine.emitted st));
  Alcotest.(check bool) "same content" true
    (List.for_all2 Substitution.equal batch.Engine.raw (Engine.emitted st))

let test_population_tracking () =
  let p = seq_xy ~within:10 in
  let st = Engine.create (Automaton.of_pattern p) in
  Alcotest.(check int) "initially empty" 0 (Engine.population st);
  Ses_event.Relation.iter (fun e -> ignore (Engine.feed st e)) (rel_l [ ("x", 0) ]);
  Alcotest.(check int) "one live instance" 1 (Engine.population st);
  ignore (Engine.close st);
  Alcotest.(check int) "closed" 0 (Engine.population st)

let test_finalize_toggle () =
  let p = query_q1 in
  let options = { Engine.default_options with Engine.finalize = false } in
  let outcome = run ~options p figure_1 in
  Alcotest.(check int) "raw passthrough"
    (List.length outcome.Engine.raw)
    (List.length outcome.Engine.matches)

let test_precheck_equivalence () =
  (* The constant pre-check is a pure optimization: identical raw and
     finalized output on the running example. *)
  let base = { Engine.default_options with Engine.precheck_constants = false } in
  let opt = { Engine.default_options with Engine.precheck_constants = true } in
  let a = run ~options:base query_q1 figure_1 in
  let b = run ~options:opt query_q1 figure_1 in
  Alcotest.(check (list (list (pair string int))))
    "same raw"
    (substs_repr query_q1 a.Engine.raw)
    (substs_repr query_q1 b.Engine.raw);
  Alcotest.(check (list (list (pair string int))))
    "same matches"
    (substs_repr query_q1 a.Engine.matches)
    (substs_repr query_q1 b.Engine.matches);
  Alcotest.(check int) "same transitions fired"
    a.Engine.metrics.Metrics.transitions_fired
    b.Engine.metrics.Metrics.transitions_fired

let test_store_equivalence () =
  (* The flat reference pool and the indexed store are observationally
     identical on the running example: raw, matches, and every counter. *)
  let flat =
    run ~options:{ Engine.default_options with Engine.store = Engine.Flat }
      query_q1 figure_1
  in
  let idx =
    run ~options:{ Engine.default_options with Engine.store = Engine.Indexed }
      query_q1 figure_1
  in
  let sorted o =
    List.sort
      (List.compare Helpers.compare_name_seq)
      (substs_repr query_q1 o)
  in
  Alcotest.(check (list (list (pair string int))))
    "same raw" (sorted flat.Engine.raw) (sorted idx.Engine.raw);
  Alcotest.(check (list (list (pair string int))))
    "same matches" (sorted flat.Engine.matches) (sorted idx.Engine.matches);
  Alcotest.(check bool) "same metrics" true
    (flat.Engine.metrics = idx.Engine.metrics)

let test_population_by_state_ordering () =
  (* Descending count; ties broken by state, so the histogram is
     reproducible run to run. *)
  let p = seq_xy ~within:100 in
  let st = Engine.create (Automaton.of_pattern p) in
  Ses_event.Relation.iter
    (fun e -> ignore (Engine.feed st e))
    (rel_l [ ("x", 0); ("x", 1); ("x", 2) ]);
  let h = Engine.population_by_state st in
  let counts = List.map snd h in
  Alcotest.(check (list int)) "descending counts"
    (List.sort (fun a b -> Int.compare b a) counts)
    counts;
  let rec ties_ordered = function
    | (qa, a) :: ((qb, b) :: _ as rest) ->
        (a <> b || Ses_core.Varset.compare qa qb < 0) && ties_ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "ties in state order" true (ties_ordered h);
  Alcotest.(check int) "sums to population" (Engine.population st)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 h)

let test_metrics_consistency () =
  let outcome = run query_q1 figure_1 in
  let m = outcome.Engine.metrics in
  Alcotest.(check int) "events" 14 m.Metrics.events_seen;
  Alcotest.(check int) "none filtered" 0 m.Metrics.events_filtered;
  Alcotest.(check bool) "max tracked" true (m.Metrics.max_simultaneous_instances > 0);
  Alcotest.(check int) "raw = emitted counter" (List.length outcome.Engine.raw)
    m.Metrics.matches_emitted

let suite =
  [
    Alcotest.test_case "simple sequence" `Quick test_simple_sequence;
    Alcotest.test_case "no match" `Quick test_no_match;
    Alcotest.test_case "empty relation" `Quick test_empty_relation;
    Alcotest.test_case "window expiry" `Quick test_window_expiry;
    Alcotest.test_case "window boundary inclusive" `Quick test_window_boundary_inclusive;
    Alcotest.test_case "skip-till-next-match" `Quick test_skip_till_next_match;
    Alcotest.test_case "emission via expiry" `Quick test_emission_via_expiry;
    Alcotest.test_case "greedy maximal group" `Quick test_group_greedy_maximal;
    Alcotest.test_case "permutations within a set" `Quick test_permutation_within_set;
    Alcotest.test_case "strict order across sets" `Quick test_order_across_sets_strict;
    Alcotest.test_case "single-set pattern" `Quick test_single_set_pattern;
    Alcotest.test_case "tau = 0" `Quick test_tau_zero_simultaneous;
    Alcotest.test_case "nondeterministic branching" `Quick test_nondeterministic_branching;
    Alcotest.test_case "condition on T" `Quick test_condition_on_timestamp;
    Alcotest.test_case "value join" `Quick test_value_join_condition;
    Alcotest.test_case "out-of-order input rejected" `Quick test_out_of_order_rejected;
    Alcotest.test_case "streaming = batch" `Quick test_streaming_equals_batch;
    Alcotest.test_case "population tracking" `Quick test_population_tracking;
    Alcotest.test_case "finalize toggle" `Quick test_finalize_toggle;
    Alcotest.test_case "constant pre-check equivalence" `Quick
      test_precheck_equivalence;
    Alcotest.test_case "flat = indexed store" `Quick test_store_equivalence;
    Alcotest.test_case "population histogram ordering" `Quick
      test_population_by_state_ordering;
    Alcotest.test_case "metrics consistency" `Quick test_metrics_consistency;
  ]
