(* The static analyzer: one test per diagnostic kind, plus the
   pruning bookkeeping and the inferred filter constants. *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_analysis
open Helpers

let codes (r : Analyzer.result) =
  List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) r.Analyzer.diagnostics

let has_code code r = List.mem code (codes r)

let severity_of code (r : Analyzer.result) =
  match
    List.find_opt
      (fun (d : Diagnostic.t) -> d.Diagnostic.code = code)
      r.Analyzer.diagnostics
  with
  | Some d -> Diagnostic.severity_label d.Diagnostic.severity
  | None -> Alcotest.failf "no %s diagnostic" code

let const name field op v = Pattern.Spec.const name field op (Value.Int v)

let test_clean_pattern () =
  let r = Analyzer.analyze_pattern query_q1 in
  Alcotest.(check (list string)) "no diagnostics" [] (codes r);
  Alcotest.(check bool) "automaton physically unchanged" true
    (r.Analyzer.automaton == r.Analyzer.original);
  Alcotest.(check int) "nothing pruned" 0 r.Analyzer.pruned_transitions;
  Alcotest.(check bool) "no extras" true (r.Analyzer.filter_extras = []);
  Alcotest.(check bool) "can match" false r.Analyzer.never_matches

let test_unsatisfiable_variable () =
  let p =
    pattern ~within:10
      ~where:[ label "a" "x"; label "a" "y"; label "b" "z" ]
      [ [ v "a"; v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "unsatisfiable-variable" r);
  Alcotest.(check string) "is an error" "error"
    (severity_of "unsatisfiable-variable" r);
  Alcotest.(check bool) "never matches" true r.Analyzer.never_matches;
  Alcotest.(check bool) "unmatchable" true (has_code "unmatchable-pattern" r);
  Alcotest.(check bool) "transitions pruned" true
    (r.Analyzer.pruned_transitions > 0)

let test_vacuous_negation () =
  let p =
    Pattern.make_full_exn ~schema ~sets:[ [ v "a" ]; [ v "b" ] ]
      ~negations:[ (0, v "x") ]
      ~where:[ label "a" "a"; label "b" "b"; label "x" "p"; label "x" "q" ]
      ~within:10
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "vacuous-negation" r);
  Alcotest.(check string) "is a warning" "warning" (severity_of "vacuous-negation" r);
  Alcotest.(check bool) "pattern still matches" false r.Analyzer.never_matches

let test_contradictory_conditions () =
  (* Each variable is satisfiable alone; the a.V < b.V edge between the
     two constant ranges is not. *)
  let p =
    pattern ~within:10
      ~where:
        [
          label "a" "a";
          label "b" "b";
          const "a" "V" Predicate.Gt 5;
          const "b" "V" Predicate.Lt 3;
          Pattern.Spec.fields "a" "V" Predicate.Lt "b" "V";
        ]
      [ [ v "a"; v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "contradictory-conditions" r);
  Alcotest.(check string) "is an error" "error"
    (severity_of "contradictory-conditions" r);
  Alcotest.(check bool) "never matches" true r.Analyzer.never_matches

let test_temporal_contradiction () =
  (* b's set follows a's, so T_a < T_b is forced — but the condition
     demands the opposite. *)
  let p =
    pattern ~within:10
      ~where:
        [
          label "a" "a";
          label "b" "b";
          Pattern.Spec.fields "b" "T" Predicate.Lt "a" "T";
        ]
      [ [ v "a" ]; [ v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "temporal-contradiction" r);
  Alcotest.(check string) "is an error" "error"
    (severity_of "temporal-contradiction" r);
  Alcotest.(check bool) "never matches" true r.Analyzer.never_matches

let test_dead_transition_and_dead_end () =
  (* In the permuted set {a, b}, binding b second requires b.T < a.T —
     dead on arrival order. Binding a second (a.T > b.T) is fine, so the
     pattern still matches; the pruned a-first state becomes a dead end. *)
  let p =
    pattern ~within:10
      ~where:
        [
          label "a" "a";
          label "b" "b";
          Pattern.Spec.fields "b" "T" Predicate.Lt "a" "T";
        ]
      [ [ v "a"; v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "dead transition" true (has_code "dead-transition" r);
  Alcotest.(check string) "dead transition is a warning" "warning"
    (severity_of "dead-transition" r);
  Alcotest.(check bool) "dead end state" true (has_code "dead-end-state" r);
  Alcotest.(check bool) "still matches" false r.Analyzer.never_matches;
  Alcotest.(check int) "one transition pruned" 1 r.Analyzer.pruned_transitions;
  Alcotest.(check bool) "pruned automaton is new" true
    (not (r.Analyzer.automaton == r.Analyzer.original))

let test_opposite_comparisons_dead () =
  (* No constants at all: deadness comes from the sign sets of the two
     conditions against the same partner field. *)
  let p =
    pattern ~within:10
      ~where:
        [
          Pattern.Spec.fields "a" "V" Predicate.Lt "b" "V";
          Pattern.Spec.fields "a" "V" Predicate.Gt "b" "V";
        ]
      [ [ v "a"; v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "dead transitions" true (has_code "dead-transition" r);
  Alcotest.(check bool) "unmatchable" true (has_code "unmatchable-pattern" r)

let test_unconstrained_variable () =
  let p = pattern ~within:10 ~where:[ label "a" "a" ] [ [ v "a" ]; [ v "b" ] ] in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "unconstrained-variable" r)

let test_unconstrained_negation () =
  let p =
    Pattern.make_full_exn ~schema ~sets:[ [ v "a" ]; [ v "b" ] ]
      ~negations:[ (0, v "x") ]
      ~where:[ label "a" "a"; label "b" "b" ]
      ~within:10
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "unconstrained-negation" r)

let test_unreferenced_group () =
  let p =
    pattern ~within:10 ~where:[ label "a" "a"; label "b" "b" ]
      [ [ vplus "a"; v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "unreferenced-group" r);
  (* q1's p+ is joined on ID, so it must not warn. *)
  Alcotest.(check bool) "joined group is fine" false
    (has_code "unreferenced-group" (Analyzer.analyze_pattern query_q1))

let test_subsumed_condition () =
  let p =
    pattern ~within:10
      ~where:
        [
          label "a" "a";
          const "a" "V" Predicate.Gt 3;
          const "a" "V" Predicate.Gt 5;
          label "b" "b";
        ]
      [ [ v "a"; v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "subsumed-condition" r);
  Alcotest.(check string) "is an info" "info" (severity_of "subsumed-condition" r)

let test_implied_constant () =
  let p =
    pattern ~within:10
      ~where:
        [
          label "a" "a";
          label "b" "b";
          const "a" "ID" Predicate.Eq 5;
          Pattern.Spec.fields "b" "ID" Predicate.Eq "a" "ID";
        ]
      [ [ v "a" ]; [ v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "reported" true (has_code "implied-constant" r);
  let b = Option.get (Pattern.var_id p "b") in
  let extras = List.assoc_opt b r.Analyzer.filter_extras in
  match extras with
  | Some [ (f, Predicate.Eq, Value.Int 5) ] ->
      Alcotest.(check string) "on ID" "ID"
        (Schema.Field.name (Pattern.schema p) f)
  | _ -> Alcotest.fail "expected one inferred ID = 5 constraint for b"

(* Same-set equality chains must NOT produce extras: enforcement order
   would depend on which variable binds first. *)
let test_same_set_chain_produces_no_extras () =
  let p =
    pattern ~within:10
      ~where:
        [
          const "a" "ID" Predicate.Eq 5;
          Pattern.Spec.fields "b" "ID" Predicate.Eq "a" "ID";
        ]
      [ [ v "a"; v "b" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  Alcotest.(check bool) "no extras" true (r.Analyzer.filter_extras = [])

let test_diagnostics_sorted () =
  let p =
    pattern ~within:10
      ~where:
        [
          label "a" "x";
          label "a" "y";
          const "b" "V" Predicate.Gt 3;
          const "b" "V" Predicate.Gt 5;
        ]
      [ [ v "a"; v "b" ]; [ v "c" ] ]
  in
  let r = Analyzer.analyze_pattern p in
  let ranks =
    List.map
      (fun (d : Diagnostic.t) ->
        match d.Diagnostic.severity with
        | Diagnostic.Error -> 0
        | Diagnostic.Warning -> 1
        | Diagnostic.Info -> 2)
      r.Analyzer.diagnostics
  in
  Alcotest.(check (list int)) "errors first, infos last"
    (List.sort Int.compare ranks) ranks

let test_analyze_query_errors () =
  match Analyzer.analyze_query schema "PATTERN (a" with
  | Ok _ -> Alcotest.fail "expected parse diagnostics"
  | Error diags ->
      Alcotest.(check bool) "parse error" true
        (List.exists
           (fun (d : Diagnostic.t) -> d.Diagnostic.code = "parse-error")
           diags);
      Alcotest.(check bool) "has span" true
        (List.for_all
           (fun (d : Diagnostic.t) -> Option.is_some d.Diagnostic.span)
           diags)

let test_analyze_query_invalid_pattern () =
  match
    Analyzer.analyze_query schema
      "PATTERN (a, b) WHERE z.L = 'x' AND a.NOPE = 1 WITHIN 5"
  with
  | Ok _ -> Alcotest.fail "expected validation diagnostics"
  | Error diags ->
      (* Validation accumulates: both the unknown variable and the
         unknown attribute arrive together. *)
      Alcotest.(check bool) "at least two errors" true
        (List.length
           (List.filter
              (fun (d : Diagnostic.t) -> d.Diagnostic.code = "invalid-pattern")
              diags)
        >= 2)

let test_planner_adopts_analysis () =
  Analyzer.register ();
  let p =
    pattern ~within:10
      ~where:
        [
          label "a" "a";
          label "b" "b";
          Pattern.Spec.fields "b" "T" Predicate.Lt "a" "T";
        ]
      [ [ v "a"; v "b" ] ]
  in
  let automaton = Automaton.of_pattern p in
  let plan = Planner.plan automaton in
  (match plan.Planner.analysis with
  | None -> Alcotest.fail "planner did not consult the analyzer"
  | Some a ->
      Alcotest.(check int) "pruned in plan" 1 a.Planner.pruned_transitions;
      Alcotest.(check bool) "effective automaton is pruned" true
        (Planner.effective_automaton plan automaton == a.Planner.automaton));
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "describe mentions the pruning" true
    (contains (Planner.describe plan) "analysis: pruned 1 dead transition")

let suite =
  [
    Alcotest.test_case "clean pattern" `Quick test_clean_pattern;
    Alcotest.test_case "unsatisfiable variable" `Quick test_unsatisfiable_variable;
    Alcotest.test_case "vacuous negation" `Quick test_vacuous_negation;
    Alcotest.test_case "contradictory conditions" `Quick
      test_contradictory_conditions;
    Alcotest.test_case "temporal contradiction" `Quick test_temporal_contradiction;
    Alcotest.test_case "dead transition + dead end" `Quick
      test_dead_transition_and_dead_end;
    Alcotest.test_case "opposite comparisons" `Quick test_opposite_comparisons_dead;
    Alcotest.test_case "unconstrained variable" `Quick test_unconstrained_variable;
    Alcotest.test_case "unconstrained negation" `Quick test_unconstrained_negation;
    Alcotest.test_case "unreferenced group" `Quick test_unreferenced_group;
    Alcotest.test_case "subsumed condition" `Quick test_subsumed_condition;
    Alcotest.test_case "implied constant" `Quick test_implied_constant;
    Alcotest.test_case "same-set chain: no extras" `Quick
      test_same_set_chain_produces_no_extras;
    Alcotest.test_case "diagnostics sorted" `Quick test_diagnostics_sorted;
    Alcotest.test_case "analyze_query: parse errors" `Quick
      test_analyze_query_errors;
    Alcotest.test_case "analyze_query: validation accumulates" `Quick
      test_analyze_query_invalid_pattern;
    Alcotest.test_case "planner adopts analysis" `Quick
      test_planner_adopts_analysis;
  ]
