open Ses_event

let test_span () =
  Alcotest.(check int) "symmetric" 5 (Time.span 2 7);
  Alcotest.(check int) "symmetric rev" 5 (Time.span 7 2);
  Alcotest.(check int) "zero" 0 (Time.span 3 3);
  Alcotest.(check int) "negative side" 12 (Time.span (-5) 7)

let test_units () =
  Alcotest.(check int) "hours are raw" 264 (Time.hours 264);
  Alcotest.(check int) "11 days" 264 (Time.days 11);
  Alcotest.(check int) "day zero" 0 (Time.days 0)

let test_order () =
  Alcotest.(check bool) "lt" true (Time.( <. ) 1 2);
  Alcotest.(check bool) "not lt" false (Time.( <. ) 2 2);
  Alcotest.(check bool) "le" true (Time.( <=. ) 2 2);
  Alcotest.(check int) "compare" (-1) (Time.compare 1 2);
  Alcotest.(check bool) "equal" true (Time.equal 4 4)

let test_min_max_add () =
  Alcotest.(check int) "min" 1 (Time.min 1 2);
  Alcotest.(check int) "max" 2 (Time.max 1 2);
  Alcotest.(check int) "add" 33 (Time.add 9 24)

let test_pp () =
  Alcotest.(check string) "pp day/hour" "day 1 09:00 (t=33)"
    (Format.asprintf "%a" Time.pp 33);
  Alcotest.(check string) "pp midnight" "day 0 00:00 (t=0)"
    (Format.asprintf "%a" Time.pp 0);
  Alcotest.(check string) "pp negative" "day -1 23:00 (t=-1)"
    (Format.asprintf "%a" Time.pp (-1));
  Alcotest.(check string) "pp raw" "42" (Format.asprintf "%a" Time.pp_raw 42)

let suite =
  [
    Alcotest.test_case "span" `Quick test_span;
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "order" `Quick test_order;
    Alcotest.test_case "min/max/add" `Quick test_min_max_add;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
  ]
