(* Merge semantics of the runtime counters: sharded executors sum
   everything except the instance peak (max), replicated executors agree
   on the input counters (max) and sum the work side including the
   peaks. *)

open Ses_core

let snapshot = Alcotest.testable Metrics.pp ( = )

let a =
  {
    Metrics.events_seen = 10;
    events_filtered = 3;
    instances_created = 7;
    max_simultaneous_instances = 5;
    transitions_fired = 20;
    instances_expired = 2;
    instances_killed = 1;
    matches_emitted = 4;
  }

let b =
  {
    Metrics.events_seen = 6;
    events_filtered = 1;
    instances_created = 2;
    max_simultaneous_instances = 9;
    transitions_fired = 8;
    instances_expired = 0;
    instances_killed = 3;
    matches_emitted = 2;
  }

let test_merge_sums_and_max () =
  let m = Metrics.merge [ a; b ] in
  Alcotest.(check int) "events_seen sums" 16 m.Metrics.events_seen;
  Alcotest.(check int) "events_filtered sums" 4 m.Metrics.events_filtered;
  Alcotest.(check int) "instances_created sums" 9 m.Metrics.instances_created;
  Alcotest.(check int) "transitions_fired sums" 28 m.Metrics.transitions_fired;
  Alcotest.(check int) "instances_expired sums" 2 m.Metrics.instances_expired;
  Alcotest.(check int) "instances_killed sums" 4 m.Metrics.instances_killed;
  Alcotest.(check int) "matches_emitted sums" 6 m.Metrics.matches_emitted;
  (* The one non-additive counter: shard peaks need not coincide in
     time, so the merge takes the max. *)
  Alcotest.(check int) "max_simultaneous_instances is a max" 9
    m.Metrics.max_simultaneous_instances

let test_merge_identity () =
  Alcotest.check snapshot "merge [] = zero" Metrics.zero (Metrics.merge []);
  Alcotest.check snapshot "merge of one snapshot is itself" a
    (Metrics.merge [ a ]);
  Alcotest.check snapshot "merge is order-insensitive"
    (Metrics.merge [ a; b ])
    (Metrics.merge [ b; a ])

let test_merge_replicas () =
  let m = Metrics.merge_replicas [ a; b ] in
  (* Replicas each consume the whole input, so the input counters agree
     and take the max rather than double-counting. *)
  Alcotest.(check int) "events_seen is a max" 10 m.Metrics.events_seen;
  Alcotest.(check int) "events_filtered is a max" 3 m.Metrics.events_filtered;
  (* The work side really is disjoint across replicas and sums — and
     the automata run simultaneously, so the peaks sum too. *)
  Alcotest.(check int) "instances_created sums" 9 m.Metrics.instances_created;
  Alcotest.(check int) "transitions_fired sums" 28 m.Metrics.transitions_fired;
  Alcotest.(check int) "instances_expired sums" 2 m.Metrics.instances_expired;
  Alcotest.(check int) "instances_killed sums" 4 m.Metrics.instances_killed;
  Alcotest.(check int) "matches_emitted sums" 6 m.Metrics.matches_emitted;
  Alcotest.(check int) "max_simultaneous_instances sums" 14
    m.Metrics.max_simultaneous_instances

let test_merge_replicas_identity () =
  Alcotest.check snapshot "merge_replicas [] = zero" Metrics.zero
    (Metrics.merge_replicas []);
  Alcotest.check snapshot "merge_replicas of one snapshot is itself" a
    (Metrics.merge_replicas [ a ])

(* Synthetic per-shard population time series (levels sampled per time
   step): [Metrics.merge]'s peak — the max over shard-local peaks — is a
   lower bound on the true global peak (the max over time of the summed
   levels), which the summed shard peaks in turn bound from above. This
   is the sandwich documented on [Metrics.merge]; the telemetry layer's
   atomic [population.global] gauge exists to measure the middle term. *)
let merge_peak_bounds =
  QCheck.Test.make ~count:200
    ~name:"merge peak <= true global peak <= summed shard peaks"
    QCheck.(list_of_size Gen.(1 -- 4) (small_list small_nat))
    (fun series ->
      QCheck.assume (series <> []);
      let horizon =
        List.fold_left (fun acc s -> max acc (List.length s)) 0 series
      in
      let level s t =
        match List.nth_opt s t with Some v -> v | None -> 0
      in
      let peaks = List.map (fun s -> List.fold_left max 0 s) series in
      let true_peak = ref 0 in
      for t = 0 to horizon - 1 do
        let total = List.fold_left (fun acc s -> acc + level s t) 0 series in
        if total > !true_peak then true_peak := total
      done;
      let of_peak peak =
        { Metrics.zero with Metrics.max_simultaneous_instances = peak }
      in
      let merged = Metrics.merge (List.map of_peak peaks) in
      merged.Metrics.max_simultaneous_instances <= !true_peak
      && !true_peak <= List.fold_left ( + ) 0 peaks)

let suite =
  [
    Alcotest.test_case "merge: sums with max peak" `Quick
      test_merge_sums_and_max;
    QCheck_alcotest.to_alcotest merge_peak_bounds;
    Alcotest.test_case "merge: identities" `Quick test_merge_identity;
    Alcotest.test_case "merge_replicas: max inputs, summed work" `Quick
      test_merge_replicas;
    Alcotest.test_case "merge_replicas: identities" `Quick
      test_merge_replicas_identity;
  ]
