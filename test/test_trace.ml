(* Reproduction of Figure 6: the execution steps of the instance that
   produces patient 1's match of the running example. *)

open Ses_core
open Helpers

let steps, outcome = Trace.run (Automaton.of_pattern query_q1) figure_1

let p1_match =
  List.find
    (fun s ->
      subst_repr query_q1 s
      = List.sort compare_name_seq
          [ ("c", 1); ("d", 3); ("p+", 4); ("p+", 9); ("b", 12) ])
    outcome.Engine.matches

let p1_steps = Trace.for_buffer p1_match steps

let rendered =
  List.map
    (fun obs -> Format.asprintf "%a" (Trace.pp_observation query_q1) obs)
    p1_steps

let has needle =
  List.exists
    (fun line ->
      let nl = String.length needle and ll = String.length line in
      let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
      go 0)
    rendered

let test_figure6_b () =
  (* (b) Read e1, match starts: ∅ --c--> {c}. *)
  Alcotest.(check bool) "e1 starts" true (has "read e1: take")

let test_figure6_c () =
  (* (c) Read e2, ignored at {c}. *)
  Alcotest.(check bool) "e2 ignored" true (has "read e2: ignore at c,")

let test_figure6_d_e () =
  (* (d) e3 matched via ({c}, d); (e) e4 via ({c,d}, p+) — the step the
     paper illustrates in detail. *)
  Alcotest.(check bool) "e3 take d" true (has "read e3: take (c --d--> cd)");
  Alcotest.(check bool) "e4 take p+" true
    (has "read e4: take (cd --p+--> cp+d)")

let test_figure6_f () =
  (* (f) Read e6 (patient 2's P), ignored: the c.ID = p+.ID join fails. *)
  Alcotest.(check bool) "e6 ignored" true (has "read e6: ignore at cp+d")

let test_figure6_g () =
  (* (g) Read e9, repetition matched: the p+ loop. *)
  Alcotest.(check bool) "e9 loop" true (has "read e9: take (cp+d --p+--> cp+d)")

let test_figure6_h () =
  (* (h) Read e12, accepting state reached. *)
  Alcotest.(check bool) "e12 accept" true
    (has "read e12: take (cp+d --b--> cp+db)");
  Alcotest.(check bool) "emitted" true
    (has "emit {c/e1, d/e3, p+/e4, p+/e9, b/e12}")

let test_trace_is_complete () =
  (* A Created step per unfiltered event, and every emission recorded. *)
  let created =
    List.length
      (List.filter (function Engine.Created _ -> true | _ -> false) steps)
  in
  Alcotest.(check int) "one per event" 14 created;
  let emitted =
    List.length
      (List.filter (function Engine.Emitted _ -> true | _ -> false) steps)
  in
  Alcotest.(check int) "three raw emissions" 3 emitted

let test_trace_outcome_matches_plain_run () =
  let plain = run query_q1 figure_1 in
  Alcotest.(check (list (list (pair string int))))
    "same matches"
    (substs_repr query_q1 plain.Engine.matches)
    (substs_repr query_q1 outcome.Engine.matches)

let test_observer_removal () =
  let st = Engine.create (Automaton.of_pattern query_q1) in
  let count = ref 0 in
  Engine.set_observer st (Some (fun _ -> incr count));
  ignore (Engine.feed st (Ses_event.Relation.get figure_1 0));
  let after_first = !count in
  Alcotest.(check bool) "observed" true (after_first > 0);
  Engine.set_observer st None;
  ignore (Engine.feed st (Ses_event.Relation.get figure_1 1));
  Alcotest.(check int) "silent after removal" after_first !count

let test_pp_full_trace () =
  let text = Format.asprintf "%a" (Trace.pp query_q1) p1_steps in
  Alcotest.(check bool) "renders" true (String.length text > 0)

let suite =
  [
    Alcotest.test_case "Figure 6(b): match starts" `Quick test_figure6_b;
    Alcotest.test_case "Figure 6(c): e2 ignored" `Quick test_figure6_c;
    Alcotest.test_case "Figure 6(d,e): d then p+" `Quick test_figure6_d_e;
    Alcotest.test_case "Figure 6(f): foreign P ignored" `Quick test_figure6_f;
    Alcotest.test_case "Figure 6(g): repetition" `Quick test_figure6_g;
    Alcotest.test_case "Figure 6(h): accept" `Quick test_figure6_h;
    Alcotest.test_case "trace completeness" `Quick test_trace_is_complete;
    Alcotest.test_case "trace preserves outcome" `Quick
      test_trace_outcome_matches_plain_run;
    Alcotest.test_case "observer removal" `Quick test_observer_removal;
    Alcotest.test_case "full trace rendering" `Quick test_pp_full_trace;
  ]
