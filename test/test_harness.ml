open Ses_harness

let test_report_render () =
  let t =
    Report.make ~title:"T" ~headers:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let rendered = Format.asprintf "%a" Report.pp t in
  Alcotest.(check bool) "title present" true
    (String.length rendered > 0 && rendered.[0] = 'T');
  Alcotest.(check string) "csv" "a,bb\n1,2\n333,4\n" (Report.to_csv t)

let test_report_cells () =
  Alcotest.(check string) "int" "42" (Report.int_cell 42);
  Alcotest.(check string) "float" "1.500" (Report.float_cell 1.5);
  Alcotest.(check string) "float decimals" "1.50" (Report.float_cell ~decimals:2 1.5);
  Alcotest.(check string) "huge goes scientific" "1.000e+12"
    (Report.float_cell 1e12);
  Alcotest.(check string) "ratio" "2.5" (Report.ratio_cell 5 2);
  Alcotest.(check string) "ratio by zero" "-" (Report.ratio_cell 5 0)

let test_report_csv_quoting () =
  let t = Report.make ~title:"q" ~headers:[ "h" ] [ [ "a,b" ] ] in
  Alcotest.(check string) "quoted" "h\n\"a,b\"\n" (Report.to_csv t)

let test_timer () =
  let x, elapsed = Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (elapsed >= 0.0);
  let y, med = Timer.time_median ~repeats:3 (fun () -> 7) in
  Alcotest.(check int) "median result" 7 y;
  Alcotest.(check bool) "median non-negative" true (med >= 0.0)

let test_queries_structure () =
  let open Ses_pattern in
  Alcotest.(check int) "q1 vars" 4 (Pattern.n_vars Queries.q1);
  Alcotest.(check bool) "p3 has group" true (not (Pattern.singleton_only Queries.p3));
  Alcotest.(check bool) "p4 singleton-only" true (Pattern.singleton_only Queries.p4);
  (* p6 aliases p3 by construction; pointer identity is the point. *)
  Alcotest.(check bool) "p6 = p3" true
    ((Queries.p6 == Queries.p3) [@ses.allow "phys-equal"]);
  (* Classification drives the experiments: P5 is case 1, P4 case 2, P3
     case 3 with one group variable. *)
  Alcotest.(check bool) "p5 exclusive" true
    (Exclusivity.classify_set Queries.p5 0 = Exclusivity.Exclusive);
  Alcotest.(check bool) "p4 overlapping" true
    (Exclusivity.classify_set Queries.p4 0 = Exclusivity.Overlapping);
  Alcotest.(check bool) "p3 case 3" true
    (match Exclusivity.classify_set Queries.p3 0 with
    | Exclusivity.Overlapping_with_groups n -> n = 1
    | Exclusivity.Exclusive | Exclusivity.Overlapping -> false);
  (* Experiment 1 patterns. *)
  let p1 = Queries.exp1_exclusive 4 in
  Alcotest.(check int) "exp1 sizes" 5 (Pattern.n_vars p1);
  Alcotest.(check bool) "exp1 exclusive" true
    (Exclusivity.classify_set p1 0 = Exclusivity.Exclusive);
  let p2 = Queries.exp1_overlapping 4 in
  Alcotest.(check bool) "exp1 overlapping" true
    (Exclusivity.classify_set p2 0 = Exclusivity.Overlapping);
  Alcotest.check_raises "out of range" (Invalid_argument "Queries.exp1_exclusive")
    (fun () -> ignore (Queries.exp1_exclusive 7))

let cfg = Experiments.quick_config

let test_datasets_table () =
  let t = Experiments.datasets_table cfg in
  Alcotest.(check int) "one row per dataset" cfg.Experiments.n_datasets
    (List.length t.Report.rows)

let test_exp1_smoke () =
  let small = { cfg with Experiments.exp1_max_vars = 3 } in
  let fig11, table1 = Experiments.exp1 small in
  Alcotest.(check int) "fig11 rows" 2 (List.length fig11.Report.rows);
  Alcotest.(check int) "table1 rows" 2 (List.length table1.Report.rows);
  (* SES never exceeds BF on the exclusive pattern. *)
  List.iter
    (fun row ->
      match row with
      | [ _; ses_p1; bf_p1; ses_p2; bf_p2 ] ->
          Alcotest.(check bool) "SES P1 <= BF P1" true
            (int_of_string ses_p1 <= int_of_string bf_p1);
          Alcotest.(check bool) "SES P2 <= BF P2" true
            (int_of_string ses_p2 <= int_of_string bf_p2)
      | _ -> Alcotest.fail "unexpected row shape")
    fig11.Report.rows

let test_exp2_smoke () =
  let small = { cfg with Experiments.n_datasets = 2 } in
  let t = Experiments.exp2 small in
  Alcotest.(check int) "rows" 2 (List.length t.Report.rows);
  (* Instances grow with W, and case 3 dominates case 2. *)
  let parse row =
    match row with
    | [ _; w; p3; p4 ] -> (int_of_string w, int_of_string p3, int_of_string p4)
    | _ -> Alcotest.fail "unexpected row shape"
  in
  let rows = List.map parse t.Report.rows in
  (match rows with
  | [ (w1, p3_1, p4_1); (w2, p3_2, p4_2) ] ->
      Alcotest.(check bool) "W grows" true (w2 > w1);
      Alcotest.(check bool) "P3 grows" true (p3_2 > p3_1);
      Alcotest.(check bool) "P4 grows" true (p4_2 > p4_1);
      Alcotest.(check bool) "case 3 above case 2" true (p3_1 >= p4_1)
  | _ -> Alcotest.fail "expected two rows")

let test_exp3_smoke () =
  let small = { cfg with Experiments.n_datasets = 1 } in
  let t = Experiments.exp3 small in
  Alcotest.(check int) "one row" 1 (List.length t.Report.rows);
  match List.hd t.Report.rows with
  | [ _; _; t5_no; t5_f; t6_no; t6_f ] ->
      let f = float_of_string in
      Alcotest.(check bool) "times non-negative" true
        (f t5_no >= 0.0 && f t5_f >= 0.0 && f t6_no >= 0.0 && f t6_f >= 0.0)
  | _ -> Alcotest.fail "unexpected row shape"

let test_ablation_partition () =
  let t = Experiments.ablation_partition cfg in
  match t.Report.rows with
  | [ [ _; m1; i1; _ ]; [ _; m2; i2; _ ]; [ _; m3; i3; _ ] ] ->
      Alcotest.(check string) "store partitions find the same matches" m1 m2;
      Alcotest.(check string) "pooled instances find the same matches" m1 m3;
      (* The store-partition peak is per-partition and cannot exceed the
         direct peak; the pooled peak counts lazily-expired instances and
         may exceed it (see Partitioned's documentation). *)
      Alcotest.(check bool) "store-partition peak not larger" true
        (int_of_string i2 <= int_of_string i1);
      Alcotest.(check bool) "pooled peak tracked" true (int_of_string i3 > 0)
  | _ -> Alcotest.fail "expected three rows"

let test_csv_save () =
  let t = Report.make ~title:"x" ~headers:[ "a" ] [ [ "1" ] ] in
  let path = Filename.temp_file "ses_report" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Report.save_csv path t with
      | Ok () ->
          let ic = open_in path in
          let content =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          Alcotest.(check string) "content" "a\n1\n" content
      | Error e -> Alcotest.fail e)

let suite =
  [
    Alcotest.test_case "report rendering" `Quick test_report_render;
    Alcotest.test_case "report cells" `Quick test_report_cells;
    Alcotest.test_case "report csv quoting" `Quick test_report_csv_quoting;
    Alcotest.test_case "timer" `Quick test_timer;
    Alcotest.test_case "experiment queries" `Quick test_queries_structure;
    Alcotest.test_case "datasets table" `Quick test_datasets_table;
    Alcotest.test_case "experiment 1 smoke" `Slow test_exp1_smoke;
    Alcotest.test_case "experiment 2 smoke" `Slow test_exp2_smoke;
    Alcotest.test_case "experiment 3 smoke" `Slow test_exp3_smoke;
    Alcotest.test_case "partition ablation" `Slow test_ablation_partition;
    Alcotest.test_case "report csv save" `Quick test_csv_save;
  ]
