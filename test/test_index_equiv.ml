(* Index-path equivalence: for random relations and random patterns, the
   index-probe access path must be observationally identical to the full
   scan — same finalized matches (in order), same raw emissions (as a
   multiset), and the same input-side metrics — across access modes,
   batch sizes, and with the static analyzer registered or not. Only the
   input-side counters are compared: the work-side ones (instances
   created, transitions fired, in-engine filter drops) legitimately
   differ, because the τ-clip discards events before the engine ever
   allocates for them — which is the point of the access path. *)

open Ses_core
open Ses_gen
open Ses_harness

let () = Ses_baseline.Brute_force.register ()

let batch_grid = [ 1; 7; 256 ]

let canon substs = List.map Substitution.canonical substs

let canon_sorted substs =
  List.sort Substitution.compare_canonical (canon substs)

type observed = {
  o_matches : (int * int) list list;
  o_raw : (int * int) list list;
  o_seen : int;
  o_emitted : int;
}

let observe ~mode ~batch prepared automaton =
  let options =
    { Engine.default_options with Engine.batch_size = batch }
  in
  let o = Access_exec.run ~options ~mode prepared automaton in
  {
    o_matches = canon o.Access_exec.matches;
    o_raw = canon_sorted o.Access_exec.raw;
    o_seen = o.Access_exec.metrics.Metrics.events_seen;
    o_emitted = o.Access_exec.metrics.Metrics.matches_emitted;
  }

let equivalent a b =
  a.o_matches = b.o_matches && a.o_raw = b.o_raw && a.o_seen = b.o_seen
  && a.o_emitted = b.o_emitted

(* Label conditions on every variable make the index path sound for most
   generated patterns, so the property exercises actual probing rather
   than the scan fallback. *)
let indexable_pattern =
  {
    Random_workload.default_pattern with
    Random_workload.p_label_cond = 1.0;
  }

let with_workload ~spec seed f =
  let rng = Prng.create (Int64.of_int seed) in
  let pat = Random_workload.pattern rng spec in
  let r = Random_workload.relation rng Random_workload.default_relation in
  f pat r

(* The analyzer is registered process-wide by other suites' module
   initializers; each analyzer state change is scoped and the registered
   state restored, whatever happens. *)
let with_analyzer on f =
  Fun.protect
    ~finally:(fun () -> Ses_analysis.Analyzer.register ())
    (fun () ->
      if on then Ses_analysis.Analyzer.register ()
      else Planner.clear_analyzer ();
      f ())

let property ~spec seed =
  with_workload ~spec seed (fun pat r ->
      let automaton = Automaton.of_pattern pat in
      List.for_all
        (fun analyzer_on ->
          with_analyzer analyzer_on (fun () ->
              let prepared = Access_exec.prepare r in
              let reference =
                observe ~mode:`Scan
                  ~batch:Engine.default_options.Engine.batch_size prepared
                  automaton
              in
              List.for_all
                (fun mode ->
                  List.for_all
                    (fun batch ->
                      equivalent reference
                        (observe ~mode ~batch prepared automaton))
                    batch_grid)
                [ `Scan; `Index; `Auto ]))
        [ true; false ])

let index_equals_scan =
  QCheck.Test.make ~count:30
    ~name:"index path = full scan (indexable patterns, all modes/batches)"
    QCheck.(int_bound 100_000)
    (property ~spec:indexable_pattern)

(* The default pattern spec leaves some variables unconstrained, so
   [`Index] exercises the soundness fallback to a scan as well. *)
let index_equals_scan_default =
  QCheck.Test.make ~count:20
    ~name:"index path = full scan (default patterns, scan fallback included)"
    QCheck.(int_bound 100_000)
    (property ~spec:Random_workload.default_pattern)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ index_equals_scan; index_equals_scan_default ]
