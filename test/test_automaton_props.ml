(* Structural properties of SES automaton construction, checked over
   randomly generated patterns. *)

open Ses_pattern
open Ses_core

let with_pattern seed f =
  let rng = Ses_gen.Prng.create (Int64.of_int seed) in
  let spec =
    {
      Ses_gen.Random_workload.default_pattern with
      Ses_gen.Random_workload.max_sets = 3;
      max_vars_per_set = 3;
    }
  in
  f (Ses_gen.Random_workload.pattern rng spec)

(* The state count is Σ 2^|Vi| − (m − 1): each set contributes its power
   set and consecutive sets share the boundary state. *)
let state_count =
  QCheck.Test.make ~count:200 ~name:"state count formula"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_pattern seed (fun p ->
          let a = Automaton.of_pattern p in
          let expected =
            List.fold_left
              (fun acc i -> acc + (1 lsl List.length (Pattern.set_vars p i)))
              0
              (List.init (Pattern.n_sets p) Fun.id)
            - (Pattern.n_sets p - 1)
          in
          Automaton.n_states a = expected))

(* Advancing transitions per set: |Vi| · 2^(|Vi|−1); loops: one per group
   variable and subset containing it, i.e. gi · 2^(|Vi|−1). *)
let transition_count =
  QCheck.Test.make ~count:200 ~name:"transition count formula"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_pattern seed (fun p ->
          let a = Automaton.of_pattern p in
          let expected =
            List.fold_left
              (fun acc i ->
                let vars = Pattern.set_vars p i in
                let n = List.length vars in
                let groups =
                  List.length (List.filter (Pattern.is_group p) vars)
                in
                acc + ((n + groups) * (1 lsl (n - 1))))
              0
              (List.init (Pattern.n_sets p) Fun.id)
          in
          Automaton.n_transitions a = expected))

(* Every transition's target is its source plus the bound variable; loops
   are exactly the group variables. *)
let transition_shape =
  QCheck.Test.make ~count:200 ~name:"transition targets and loops"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_pattern seed (fun p ->
          let a = Automaton.of_pattern p in
          List.for_all
            (fun (tr : Automaton.transition) ->
              Varset.equal tr.tgt (Varset.add tr.var tr.src)
              && (not (Automaton.is_loop tr) || Pattern.is_group p tr.var))
            (Automaton.transitions a)))

(* Conditions attached to a transition only mention the bound variable and
   variables available in the context (source state or earlier sets). *)
let condition_scoping =
  QCheck.Test.make ~count:200 ~name:"condition scoping"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_pattern seed (fun p ->
          let a = Automaton.of_pattern p in
          List.for_all
            (fun (tr : Automaton.transition) ->
              List.for_all
                (fun c ->
                  Condition.mentions c tr.var
                  &&
                  match Condition.other_var c tr.var with
                  | None -> true
                  | Some v' -> Varset.mem v' tr.src || v' = tr.var)
                tr.conds)
            (Automaton.transitions a)))

(* Reachability: every state is reachable from the start and reaches the
   accepting state (ignoring conditions). *)
let connectivity =
  QCheck.Test.make ~count:100 ~name:"start-to-accept connectivity"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_pattern seed (fun p ->
          let a = Automaton.of_pattern p in
          let states = Automaton.states a in
          let step q =
            List.filter_map
              (fun (tr : Automaton.transition) ->
                if Automaton.is_loop tr then None else Some tr.tgt)
              (Automaton.outgoing a q)
          in
          let reachable_from start =
            let visited = Hashtbl.create 32 in
            let rec go q =
              if not (Hashtbl.mem visited q) then begin
                Hashtbl.add visited q ();
                List.iter go (step q)
              end
            in
            go start;
            visited
          in
          let fwd = reachable_from (Automaton.start a) in
          List.for_all (fun q -> Hashtbl.mem fwd q) states
          &&
          (* Backwards: every state has a path to accept — check via
             forward search from each state. *)
          List.for_all
            (fun q -> Hashtbl.mem (reachable_from q) (Automaton.accept a))
            states))

(* Paths from start to accept: exactly Π |Vi|! distinct variable orders. *)
let path_count =
  QCheck.Test.make ~count:100 ~name:"path count = product of factorials"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_pattern seed (fun p ->
          let a = Automaton.of_pattern p in
          let rec count q =
            if Varset.equal q (Automaton.accept a) then 1
            else
              List.fold_left
                (fun acc (tr : Automaton.transition) ->
                  if Automaton.is_loop tr then acc else acc + count tr.tgt)
                0 (Automaton.outgoing a q)
          in
          count (Automaton.start a) = Automaton.n_paths a))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      state_count;
      transition_count;
      transition_shape;
      condition_scoping;
      connectivity;
      path_count;
    ]
