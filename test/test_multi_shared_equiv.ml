(* Shared-plan differential properties: {!Multi} with [shared = true]
   (predicate-index routing, alias collapsing, prefix merging) must be
   observationally identical to [shared = false] — one isolated executor
   per query — for every query: same finalized matches (in order), same
   raw emissions (as a multiset), and the same metrics. Metrics are
   compared bit-for-bit on the per-event path; batched delivery zeroes
   the two layout-variant counters, exactly as the batch-equivalence
   suite does. The deterministic fixture pins the delicate merge-point
   semantics: a negation guard inside the shared prefix, a per-owner
   negation at the merge boundary, a member whose pattern is exactly the
   prefix (emitting on τ-expiry from the shared store), and aliased
   re-registrations — and asserts that the sharing actually engaged. *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_gen

let canon substs = List.map Substitution.canonical substs
let canon_sorted substs =
  List.sort Substitution.compare_canonical (canon substs)

(* Same two layout-variant counters as the batch-equivalence suite: the
   batched engine loop pops τ-expired prefixes once per batch, so the
   moment an expiry is counted and the sampled population peak can
   legitimately differ from the per-event schedule. *)
let invariant (m : Metrics.snapshot) =
  {
    m with
    Metrics.max_simultaneous_instances = 0;
    Metrics.instances_expired = 0;
  }

type observed = {
  o_matches : (int * int) list list;
  o_raw : (int * int) list list;
  o_metrics : Metrics.snapshot;
}

let observe ?(options = Engine.default_options) ~shared ~domains ~batch
    queries r =
  let options = { options with Engine.domains } in
  let t = Multi.create_mixed ~options ~shared queries in
  let events = Array.of_seq (Relation.to_seq r) in
  (match batch with
  | None -> Array.iter (fun e -> ignore (Multi.feed t e)) events
  | Some b ->
      let n = Array.length events in
      let i = ref 0 in
      while !i < n do
        let len = min b (n - !i) in
        ignore (Multi.feed_batch t (Array.sub events !i len));
        i := !i + len
      done);
  ignore (Multi.close t);
  List.map
    (fun (name, (o : Engine.outcome)) ->
      ( name,
        {
          o_matches = canon o.Engine.matches;
          o_raw = canon_sorted o.Engine.raw;
          o_metrics = o.Engine.metrics;
        } ))
    (Multi.outcomes t)

(* [exact_metrics] on the per-event path; batched delivery compares
   modulo the layout-variant counters. *)
let equivalent ~exact_metrics reference shared =
  List.length reference = List.length shared
  && List.for_all2
       (fun (n1, a) (n2, b) ->
         n1 = n2
         && a.o_matches = b.o_matches
         && a.o_raw = b.o_raw
         &&
         if exact_metrics then a.o_metrics = b.o_metrics
         else invariant a.o_metrics = invariant b.o_metrics)
       reference shared

let batch_grid = [ None; Some 1; Some 64; Some 4096 ]
let domain_grid = [ 1; 2; 4 ]

let check_all_layouts ?options name queries r =
  List.iter
    (fun domains ->
      List.iter
        (fun batch ->
          let reference =
            observe ?options ~shared:false ~domains ~batch queries r
          in
          let shared =
            observe ?options ~shared:true ~domains ~batch queries r
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %d domains, batch %s" name domains
               (match batch with None -> "per-event" | Some b -> string_of_int b))
            true
            (equivalent ~exact_metrics:(batch = None) reference shared))
        batch_grid)
    domain_grid

(* ---- deterministic merge-point fixture ---- *)

let schema = Random_workload.schema

let v = Variable.singleton

let label name l = Pattern.Spec.const name "L" Predicate.Eq (Value.Str l)

let mk ?(negations = []) ~within sets where =
  Automaton.of_pattern
    (Pattern.make_full_exn ~schema ~sets ~negations ~where ~within)

(* Five queries over the shared two-set prefix a-then-b, one of them
   exactly the prefix; plus an unrelated query and an alias. *)
let fixture_queries () =
  let prefix = [ [ v "p" ]; [ v "q" ] ] in
  let pw = [ label "p" "a"; label "q" "b" ] in
  let ender = mk ~within:12 prefix pw in
  let cont_c = mk ~within:12 (prefix @ [ [ v "r" ] ]) (pw @ [ label "r" "c" ]) in
  let cont_d = mk ~within:12 (prefix @ [ [ v "r" ] ]) (pw @ [ label "r" "d" ]) in
  let neg_shared =
    (* boundary 0: the guard arms inside the shared prefix *)
    mk ~within:12 ~negations:[ (0, v "x") ]
      (prefix @ [ [ v "r" ] ])
      (pw @ [ label "r" "c"; label "x" "e" ])
  in
  let neg_merge =
    (* boundary 1 = merge point: the guard is per owner *)
    mk ~within:12 ~negations:[ (1, v "y") ]
      (prefix @ [ [ v "r" ] ])
      (pw @ [ label "r" "d"; label "y" "e" ])
  in
  let solo = mk ~within:12 [ [ v "m" ]; [ v "n" ] ] [ label "m" "c"; label "n" "d" ] in
  [
    ("pfx-end", ender, `Plain);
    ("pfx-c", cont_c, `Plain);
    ("pfx-d", cont_d, `Plain);
    ("pfx-neg-shared", neg_shared, `Plain);
    ("pfx-neg-merge", neg_merge, `Plain);
    ("solo", solo, `Plain);
    ("pfx-c-alias", cont_c, `Plain);
  ]

(* Labels chosen so every delicate path fires: kills at both guard
   boundaries (the "e" at 1 lands while an instance sits at the armed
   prefix state, the ones at 3 and 42 at the merge state), matches for
   the continuations, a τ-expiry landing while instances sit at the
   merge state (gap 2 → 40), and a tail that expires everything before
   close. *)
let fixture_relation =
  Relation.of_rows_exn schema
    (List.map
       (fun (l, ts) -> ([| Value.Int 1; Value.Str l; Value.Int 0 |], ts))
       [
         ("a", 0);
         ("e", 1);
         ("b", 2);
         ("e", 3);
         ("c", 4);
         ("d", 5);
         ("a", 7);
         ("b", 8);
         ("c", 10);
         ("a", 40);
         ("b", 41);
         ("e", 42);
         ("d", 44);
         ("b", 100);
       ])

let test_fixture_equivalence () =
  check_all_layouts "fixture" (fixture_queries ()) fixture_relation

let test_fixture_strong_filter () =
  (* Gated routing: with the strong filter on, non-routed events are
     never fed at all; metrics must still equal the independent runs
     (whose engines drop the same events via their own filter pass). *)
  let options = { Engine.default_options with Engine.filter = Event_filter.Strong } in
  check_all_layouts ~options "fixture+strong" (fixture_queries ()) fixture_relation

let test_fixture_sharing_engaged () =
  let t = Multi.create_mixed (fixture_queries ()) in
  (match Multi.shared_stats t with
  | [ stats ] ->
      Alcotest.(check bool)
        "a merged group formed" true
        (stats.Shared_plan.st_merged_groups >= 1);
      Alcotest.(check bool)
        "several queries merged" true
        (stats.Shared_plan.st_merged_queries >= 3);
      Alcotest.(check int) "alias collapsed" 1 stats.Shared_plan.st_aliased_queries;
      Alcotest.(check bool)
        "index holds atoms" true
        (stats.Shared_plan.st_index_atoms > 0);
      Alcotest.(check bool)
        "templates detected" true
        (List.length stats.Shared_plan.st_template_groups >= 1)
  | l -> Alcotest.failf "expected one plan, got %d" (List.length l));
  ignore (Multi.close t)

let test_fixture_kill_and_expiry_exercised () =
  (* The fixture is only a good differential witness if the delicate
     paths actually run: both negation queries kill, and the ender emits
     at least one match surfaced by τ-expiry from the shared store. *)
  let outcomes =
    Multi.run (List.map (fun (n, a, _) -> (n, a)) (fixture_queries ()))
      (Relation.to_seq fixture_relation)
  in
  let metrics name =
    (List.assoc name outcomes).Engine.metrics
  in
  Alcotest.(check bool)
    "shared-boundary guard killed" true
    ((metrics "pfx-neg-shared").Metrics.instances_killed >= 1);
  Alcotest.(check bool)
    "merge-boundary guard killed" true
    ((metrics "pfx-neg-merge").Metrics.instances_killed >= 1);
  Alcotest.(check bool)
    "ender matched" true
    ((metrics "pfx-end").Metrics.matches_emitted >= 1);
  Alcotest.(check bool)
    "expiry exercised" true
    ((metrics "pfx-end").Metrics.instances_expired >= 1)

(* ---- random workloads ---- *)

(* A random family sharing a first event set (same label constant, same
   τ), so prefix merging engages with high probability; plus a fully
   random pattern under a rotating strategy and an aliased
   re-registration of the first family member. *)
let random_queries rng =
  let labels = [ "a"; "b"; "c"; "d" ] in
  let l0 = Prng.pick rng labels in
  let within = 6 + Prng.int rng 10 in
  let family_size = 2 + Prng.int rng 3 in
  let member i =
    let cont = Prng.pick rng labels in
    let sets = [ [ v "p" ]; [ v "s" ] ] in
    let where = [ label "p" l0; label "s" cont ] in
    if Prng.chance rng 0.3 then
      ( Printf.sprintf "fam%d" i,
        mk ~negations:[ (0, v "x") ] ~within sets
          (where @ [ label "x" (Prng.pick rng labels) ]),
        `Plain )
    else (Printf.sprintf "fam%d" i, mk ~within sets where, `Plain)
  in
  let family = List.init family_size member in
  let ender = ("fam-end", mk ~within [ [ v "p" ] ] [ label "p" l0 ], `Plain) in
  let rand_strategy = Prng.pick rng [ `Plain; `Auto; `Partitioned ] in
  let rand =
    ( "rand",
      Automaton.of_pattern
        (Random_workload.pattern rng Random_workload.default_pattern),
      rand_strategy )
  in
  let _, a0, s0 = List.hd family in
  family @ [ ender; rand; ("fam0-alias", a0, s0) ]

let shared_equals_independent =
  QCheck.Test.make ~count:25 ~name:"shared multi = independent multi"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let queries = random_queries rng in
      let r = Random_workload.relation rng Random_workload.default_relation in
      List.for_all
        (fun domains ->
          List.for_all
            (fun batch ->
              equivalent ~exact_metrics:(batch = None)
                (observe ~shared:false ~domains ~batch queries r)
                (observe ~shared:true ~domains ~batch queries r))
            batch_grid)
        domain_grid)

let shared_equals_independent_strong =
  QCheck.Test.make ~count:15 ~name:"shared multi = independent multi (strong filter)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let queries = random_queries rng in
      let r = Random_workload.relation rng Random_workload.default_relation in
      let options =
        { Engine.default_options with Engine.filter = Event_filter.Strong }
      in
      List.for_all
        (fun batch ->
          equivalent ~exact_metrics:(batch = None)
            (observe ~options ~shared:false ~domains:1 ~batch queries r)
            (observe ~options ~shared:true ~domains:1 ~batch queries r))
        batch_grid)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ shared_equals_independent; shared_equals_independent_strong ]
  @ [
      Alcotest.test_case "fixture: shared = independent" `Quick
        test_fixture_equivalence;
      Alcotest.test_case "fixture: shared = independent under strong filter"
        `Quick test_fixture_strong_filter;
      Alcotest.test_case "fixture: sharing engaged" `Quick
        test_fixture_sharing_engaged;
      Alcotest.test_case "fixture: kills and expiry exercised" `Quick
        test_fixture_kill_and_expiry_exercised;
    ]
