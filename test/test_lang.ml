open Ses_event
open Ses_pattern
open Ses_lang

let q1_text =
  "PATTERN (c, p+, d) -> (b)\n\
   WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'\n\
  \  AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID\n\
   WITHIN 11 DAYS"

let tokens src =
  match Lexer.tokenize src with
  | Ok toks -> List.map fst toks
  | Error e -> Alcotest.failf "lexer error: %a" Lexer.pp_error e

let test_lexer_basics () =
  Alcotest.(check int) "token count"
    (* PATTERN ( a ) WITHIN 5 EOF *)
    7
    (List.length (tokens "PATTERN (a) WITHIN 5"));
  (match tokens "a.V >= 2.5" with
  | [ Token.IDENT "a"; Token.DOT; Token.IDENT "V"; Token.OP Predicate.Ge;
      Token.FLOAT f; Token.EOF ] ->
      Alcotest.(check (float 0.0)) "float" 2.5 f
  | _ -> Alcotest.fail "unexpected tokens");
  (match tokens "x <> -42" with
  | [ Token.IDENT "x"; Token.OP Predicate.Neq; Token.INT n; Token.EOF ] ->
      Alcotest.(check int) "negative int" (-42) n
  | _ -> Alcotest.fail "unexpected tokens")

let test_lexer_keywords_case_insensitive () =
  (match tokens "pattern Where withIN and DAY hours unit" with
  | [ Token.PATTERN; Token.WHERE; Token.WITHIN; Token.AND; Token.DAYS;
      Token.HOURS; Token.UNITS; Token.EOF ] -> ()
  | _ -> Alcotest.fail "keywords not recognized")

let test_lexer_strings () =
  (match tokens "'hello world'" with
  | [ Token.STRING "hello world"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "string");
  (match tokens "'it''s'" with
  | [ Token.STRING "it's"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "escaped quote");
  match Lexer.tokenize "'unterminated" with
  | Error e -> Alcotest.(check bool) "position" true (e.Lexer.line = 1)
  | Ok _ -> Alcotest.fail "expected lexer error"

let test_lexer_comments () =
  (match tokens "a -- a comment\nb" with
  | [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "comment not skipped")

let test_lexer_error_position () =
  match Lexer.tokenize "abc\n  @" with
  | Error e ->
      Alcotest.(check int) "line" 2 e.Lexer.line;
      Alcotest.(check int) "col" 3 e.Lexer.col
  | Ok _ -> Alcotest.fail "expected error"

let test_lexer_spans () =
  match Lexer.tokenize "a.V >=\n  2.5" with
  | Error e -> Alcotest.failf "lexer error: %a" Lexer.pp_error e
  | Ok toks -> (
      (match toks with
      | (Token.IDENT "a", sa) :: _ ->
          Alcotest.(check int) "ident line" 1 sa.Span.start_line;
          Alcotest.(check int) "ident start" 1 sa.Span.start_col;
          Alcotest.(check int) "ident end" 2 sa.Span.end_col
      | _ -> Alcotest.fail "unexpected tokens");
      match
        List.find_opt
          (fun (t, _) -> match t with Token.FLOAT _ -> true | _ -> false)
          toks
      with
      | Some (_, sf) ->
          Alcotest.(check int) "float line" 2 sf.Span.start_line;
          Alcotest.(check int) "float start" 3 sf.Span.start_col;
          Alcotest.(check int) "float end" 6 sf.Span.end_col
      | None -> Alcotest.fail "no float token")

let test_cond_spans () =
  match Parser.parse q1_text with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok ast ->
      Alcotest.(check bool) "every condition has a span" true
        (List.for_all
           (fun (c : Pattern.Spec.cond) -> Option.is_some c.Pattern.Spec.span)
           ast.Ast.where);
      let first = Option.get (List.hd ast.Ast.where).Pattern.Spec.span in
      Alcotest.(check int) "first cond line" 2 first.Span.start_line;
      Alcotest.(check int) "first cond start" 7 first.Span.start_col;
      Alcotest.(check int) "first cond end" 16 first.Span.end_col

let test_compiled_spans () =
  match Lang.parse_pattern Helpers.chemo_schema q1_text with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok p ->
      Alcotest.(check bool) "compiled conditions keep their spans" true
        (List.for_all
           (fun c -> Option.is_some (Condition.span c))
           (Pattern.conditions p))

let test_parse_q1 () =
  match Parser.parse q1_text with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok ast ->
      Alcotest.(check int) "two sets" 2 (List.length ast.Ast.sets);
      Alcotest.(check int) "seven conditions" 7 (List.length ast.Ast.where);
      Alcotest.(check int) "duration in hours" 264 (Ast.duration ast);
      let set1 = (List.hd ast.Ast.sets).Ast.vars in
      Alcotest.(check (list string)) "set 1 names" [ "c"; "p"; "d" ]
        (List.map (fun (v : Ast.var_decl) -> v.Ast.name) set1);
      Alcotest.(check (list bool)) "group flags" [ false; true; false ]
        (List.map
           (fun (v : Ast.var_decl) ->
             match v.Ast.quantifier.Variable.max_count with
             | Some 1 -> false
             | Some _ | None -> true)
           set1)

let test_parse_minimal () =
  match Parser.parse "PATTERN a WITHIN 5" with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok ast ->
      Alcotest.(check int) "one set" 1 (List.length ast.Ast.sets);
      Alcotest.(check int) "no conditions" 0 (List.length ast.Ast.where);
      Alcotest.(check int) "raw units" 5 (Ast.duration ast)

let test_parse_unparenthesized_chain () =
  match Parser.parse "PATTERN a -> b -> c WITHIN 9 HOURS" with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok ast ->
      Alcotest.(check int) "three sets" 3 (List.length ast.Ast.sets);
      Alcotest.(check int) "hours = raw" 9 (Ast.duration ast)

let expect_parse_error src fragment =
  match Parser.parse src with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  | Error e ->
      let msg = Format.asprintf "%a" Parser.pp_error e in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %s" fragment)
        true (contains fragment msg)

let test_parse_errors () =
  expect_parse_error "(a) WITHIN 5" "PATTERN";
  expect_parse_error "PATTERN () WITHIN 5" "variable name";
  expect_parse_error "PATTERN a" "WITHIN";
  expect_parse_error "PATTERN a WITHIN" "duration";
  expect_parse_error "PATTERN a WHERE a.L 'x' WITHIN 5" "comparison operator";
  expect_parse_error "PATTERN a WHERE a.L = WITHIN 5" "constant or field";
  expect_parse_error "PATTERN a WITHIN 5 extra" "end of input";
  expect_parse_error "PATTERN a WHERE a = 'x' WITHIN 5" "'.'"

let test_compile_q1 () =
  let p =
    match Lang.parse_pattern Helpers.chemo_schema q1_text with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "vars" 4 (Pattern.n_vars p);
  Alcotest.(check int) "tau" 264 (Pattern.tau p);
  Alcotest.(check bool) "p is group" true
    (Pattern.is_group p (Option.get (Pattern.var_id p "p")));
  (* The compiled pattern behaves exactly like the hand-built one. *)
  let parsed = Helpers.run p Helpers.figure_1 in
  let manual = Helpers.run Helpers.query_q1 Helpers.figure_1 in
  Alcotest.(check (list (list (pair string int))))
    "same matches"
    (Helpers.substs_repr Helpers.query_q1 manual.Ses_core.Engine.matches)
    (Helpers.substs_repr p parsed.Ses_core.Engine.matches)

let test_compile_errors () =
  let err src =
    match Lang.parse_pattern Helpers.chemo_schema src with
    | Ok _ -> Alcotest.failf "expected compile error for %S" src
    | Error msg -> msg
  in
  ignore (err "PATTERN a WHERE a.NOPE = 1 WITHIN 5");
  ignore (err "PATTERN a WHERE z.L = 'x' WITHIN 5");
  ignore (err "PATTERN (a, a) WITHIN 5");
  ignore (err "PATTERN a WHERE a.L = 1 WITHIN 5")

let test_timestamp_in_conditions () =
  let p =
    match
      Lang.parse_pattern Helpers.chemo_schema
        "PATTERN a -> b WHERE a.L = 'C' AND b.L = 'B' AND b.T >= 100 WITHIN 500"
    with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "three conditions" 3 (List.length (Pattern.conditions p))

let test_ast_roundtrip () =
  match Parser.parse q1_text with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok ast -> (
      let printed = Format.asprintf "%a" Ast.pp ast in
      match Parser.parse printed with
      | Error e -> Alcotest.failf "reparse error on %S: %a" printed Parser.pp_error e
      | Ok ast2 ->
          Alcotest.(check int) "same duration" (Ast.duration ast) (Ast.duration ast2);
          Alcotest.(check int) "same conditions"
            (List.length ast.Ast.where)
            (List.length ast2.Ast.where);
          Alcotest.(check bool) "same sets" true (ast.Ast.sets = ast2.Ast.sets))

let test_negative_and_float_constants () =
  match
    Parser.parse "PATTERN a WHERE a.V >= -3 AND a.V < 2.75 WITHIN 10"
  with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok ast -> (
      match ast.Ast.where with
      | [ c1; c2 ] ->
          (match c1.Pattern.Spec.right with
          | Pattern.Spec.Const (Value.Int n) ->
              Alcotest.(check int) "negative" (-3) n
          | _ -> Alcotest.fail "expected int constant");
          (match c2.Pattern.Spec.right with
          | Pattern.Spec.Const (Value.Float f) ->
              Alcotest.(check (float 0.0)) "float" 2.75 f
          | _ -> Alcotest.fail "expected float constant")
      | _ -> Alcotest.fail "expected two conditions")

let test_to_query_roundtrip () =
  let rendered = Lang.to_query Helpers.query_q1 in
  let reparsed =
    match Lang.parse_pattern Helpers.chemo_schema rendered with
    | Ok p -> p
    | Error msg -> Alcotest.failf "reparse of %S failed: %s" rendered msg
  in
  Alcotest.(check int) "vars" (Pattern.n_vars Helpers.query_q1)
    (Pattern.n_vars reparsed);
  Alcotest.(check int) "tau" (Pattern.tau Helpers.query_q1) (Pattern.tau reparsed);
  let run p = Helpers.run p Helpers.figure_1 in
  Alcotest.(check (list (list (pair string int))))
    "same matches"
    (Helpers.substs_repr Helpers.query_q1 (run Helpers.query_q1).Ses_core.Engine.matches)
    (Helpers.substs_repr reparsed (run reparsed).Ses_core.Engine.matches)

let test_to_query_quoting () =
  (* A label containing a quote survives the roundtrip. *)
  let schema = Ses_gen.Random_workload.schema in
  let p =
    Pattern.make_exn ~schema
      ~sets:[ [ Variable.singleton "a" ] ]
      ~where:[ Pattern.Spec.const "a" "L" Predicate.Eq (Value.Str "it's") ]
      ~within:5
  in
  match Lang.parse_pattern schema (Lang.to_query p) with
  | Ok p' -> (
      match Pattern.conditions p' with
      | [ { Condition.rhs = Condition.Const (Value.Str s); _ } ] ->
          Alcotest.(check string) "quote preserved" "it's" s
      | _ -> Alcotest.fail "unexpected conditions")
  | Error msg -> Alcotest.fail msg

let to_query_roundtrip_random =
  QCheck.Test.make ~count:100 ~name:"to_query/parse roundtrip (random)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Ses_gen.Prng.create (Int64.of_int seed) in
      let p =
        Ses_gen.Random_workload.pattern rng
          Ses_gen.Random_workload.default_pattern
      in
      match
        Lang.parse_pattern Ses_gen.Random_workload.schema (Lang.to_query p)
      with
      | Error _ -> false
      | Ok p' ->
          Pattern.n_vars p = Pattern.n_vars p'
          && Pattern.n_sets p = Pattern.n_sets p'
          && Pattern.tau p = Pattern.tau p'
          && List.length (Pattern.conditions p)
             = List.length (Pattern.conditions p'))

(* The lexer never raises on arbitrary input — it returns a result. *)
let lexer_total =
  QCheck.Test.make ~count:500 ~name:"lexer is total"
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun src ->
      match Lexer.tokenize src with
      | Ok toks -> toks <> []
      | Error e -> e.Lexer.line >= 1 && e.Lexer.col >= 1)

(* Neither does the parser. *)
let parser_total =
  QCheck.Test.make ~count:500 ~name:"parser is total"
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun src ->
      match Parser.parse src with Ok _ -> true | Error _ -> true)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "keywords case-insensitive" `Quick
      test_lexer_keywords_case_insensitive;
    Alcotest.test_case "string literals" `Quick test_lexer_strings;
    Alcotest.test_case "comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer error positions" `Quick test_lexer_error_position;
    Alcotest.test_case "lexer spans" `Quick test_lexer_spans;
    Alcotest.test_case "condition spans" `Quick test_cond_spans;
    Alcotest.test_case "compiled spans" `Quick test_compiled_spans;
    Alcotest.test_case "parse Q1" `Quick test_parse_q1;
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "parse chain" `Quick test_parse_unparenthesized_chain;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "compile Q1 = hand-built" `Quick test_compile_q1;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "T in conditions" `Quick test_timestamp_in_conditions;
    Alcotest.test_case "ast roundtrip" `Quick test_ast_roundtrip;
    Alcotest.test_case "numeric constants" `Quick test_negative_and_float_constants;
    Alcotest.test_case "to_query roundtrip (Q1)" `Quick test_to_query_roundtrip;
    Alcotest.test_case "to_query quoting" `Quick test_to_query_quoting;
    QCheck_alcotest.to_alcotest to_query_roundtrip_random;
    QCheck_alcotest.to_alcotest lexer_total;
    QCheck_alcotest.to_alcotest parser_total;
  ]
