open Ses_event
open Ses_pattern
open Ses_core
open Helpers

let key_of p = Partitioned.partition_key (Automaton.of_pattern p)

(* Q1 with singleton p and a syntactically complete ID-join graph: the one
   shape of the running example that is partitionable. *)
let q1_singleton_complete =
  Pattern.make_exn ~schema:chemo_schema
    ~sets:[ [ v "c"; v "p"; v "d" ]; [ v "b" ] ]
    ~where:
      ([ clabel "c" "C"; clabel "p" "P"; clabel "d" "D"; clabel "b" "B" ]
      @ Pattern.Spec.
          [
            fields "c" "ID" Predicate.Eq "p" "ID";
            fields "c" "ID" Predicate.Eq "d" "ID";
            fields "c" "ID" Predicate.Eq "b" "ID";
            fields "p" "ID" Predicate.Eq "d" "ID";
            fields "p" "ID" Predicate.Eq "b" "ID";
            fields "d" "ID" Predicate.Eq "b" "ID";
          ])
    ~within:264

(* The same with a p+ group variable: its loop at state {p+} carries no
   join (no partner is bound), so a foreign P event can extend the group
   — not partitionable. *)
let q1_group_complete =
  Pattern.make_exn ~schema:chemo_schema
    ~sets:[ [ v "c"; vplus "p"; v "d" ]; [ v "b" ] ]
    ~where:
      ([ clabel "c" "C"; clabel "p" "P"; clabel "d" "D"; clabel "b" "B" ]
      @ Pattern.Spec.
          [
            fields "c" "ID" Predicate.Eq "p" "ID";
            fields "c" "ID" Predicate.Eq "d" "ID";
            fields "c" "ID" Predicate.Eq "b" "ID";
            fields "p" "ID" Predicate.Eq "d" "ID";
            fields "p" "ID" Predicate.Eq "b" "ID";
            fields "d" "ID" Predicate.Eq "b" "ID";
          ])
    ~within:264

let test_partition_key_complete () =
  match key_of q1_singleton_complete with
  | Some (Schema.Field.Attr 0) -> ()
  | Some _ -> Alcotest.fail "expected the ID attribute"
  | None -> Alcotest.fail "expected a partition key"

let test_partition_key_star_insufficient () =
  (* Q1's joins form a star (c-p, c-d, d-b): connected but not complete,
     so some transition lacks a pin — see the poisoned-branch test. *)
  Alcotest.(check bool) "star-joined Q1 has no key" true
    (key_of query_q1 = None);
  Alcotest.(check bool) "singleton star Q1 has no key" true
    (key_of query_q1_singleton = None)

let test_partition_key_group_loop () =
  Alcotest.(check bool) "unpinned group loop blocks partitioning" true
    (key_of q1_group_complete = None)

let test_partition_key_absent () =
  let p = pattern ~within:10 [ [ v "a"; v "b" ] ] ~where:[ label "a" "x" ] in
  Alcotest.(check bool) "no joins, no key" true (key_of p = None)

let test_partition_key_inequality_ignored () =
  let p =
    pattern ~within:10
      [ [ v "a"; v "b" ] ]
      ~where:[ Pattern.Spec.fields "a" "ID" Predicate.Lt "b" "ID" ]
  in
  Alcotest.(check bool) "inequality does not partition" true (key_of p = None)

let test_partition_key_timestamp_ignored () =
  let p =
    pattern ~within:10
      [ [ v "a"; v "b" ] ]
      ~where:[ Pattern.Spec.fields "a" "T" Predicate.Eq "b" "T" ]
  in
  Alcotest.(check bool) "timestamp never partitions" true (key_of p = None)

let test_mixed_field_joins () =
  (* a.ID = b.V relates different fields: not a partitioning join. *)
  let p =
    pattern ~within:10
      [ [ v "a"; v "b" ] ]
      ~where:[ Pattern.Spec.fields "a" "ID" Predicate.Eq "b" "V" ]
  in
  Alcotest.(check bool) "cross-field join ignored" true (key_of p = None)

let test_two_joined_variables () =
  (* The minimal positive case: two variables, one join. *)
  let p =
    pattern ~within:10
      [ [ v "a" ]; [ v "b" ] ]
      ~where:
        [
          label "a" "x";
          label "b" "y";
          Pattern.Spec.fields "a" "ID" Predicate.Eq "b" "ID";
        ]
  in
  Alcotest.(check bool) "key found" true (key_of p <> None)

let same_outcome (a : Engine.outcome) (b : Engine.outcome) pat =
  Alcotest.(check (list (list (pair string int))))
    "matches agree" (substs_repr pat a.Engine.matches)
    (substs_repr pat b.Engine.matches)

let test_run_equals_direct_on_figure1 () =
  let automaton = Automaton.of_pattern q1_singleton_complete in
  let direct = Engine.run_relation automaton figure_1 in
  let part = Partitioned.run_relation automaton figure_1 in
  same_outcome direct part q1_singleton_complete;
  (* Without the group variable the late-start patient-2 candidate
     {d/e7, c/e8, p/e10, b/e13} binds a different p event than
     {p/e6, d/e7, c/e8, b/e13}; the two are incomparable, so both survive
     — three matches, not the paper's two (which rely on p+ absorbing
     both P administrations). *)
  Alcotest.(check int) "three matches" 3 (List.length part.Engine.matches);
  Alcotest.(check bool) "peak population tracked" true
    (part.Engine.metrics.Metrics.max_simultaneous_instances > 0);
  Alcotest.(check int) "same events seen"
    direct.Engine.metrics.Metrics.events_seen
    part.Engine.metrics.Metrics.events_seen

let test_fallback_without_key () =
  let p =
    pattern ~within:10 [ [ v "a" ]; [ v "b" ] ]
      ~where:[ label "a" "x"; label "b" "y" ]
  in
  let automaton = Automaton.of_pattern p in
  let r = rel_l [ ("x", 0); ("y", 1) ] in
  let part = Partitioned.run_relation automaton r in
  let direct = Engine.run_relation automaton r in
  same_outcome direct part p

(* The poisoned-branch phenomenon behind the completeness requirement:
   with only the star joins a-b and a-c, an instance that bound b first
   has an unpinned c transition; a foreign-entity z event fires it and
   kills the instance's chance to bind its own entity's later z event. *)
let test_poisoned_branch () =
  let star =
    pattern ~within:100
      [ [ v "a"; v "b"; v "c" ] ]
      ~where:
        ([ label "a" "x"; label "b" "y"; label "c" "z" ]
        @ [
            Pattern.Spec.fields "a" "ID" Predicate.Eq "b" "ID";
            Pattern.Spec.fields "a" "ID" Predicate.Eq "c" "ID";
          ])
  in
  let r =
    rel [ (1, "y", 0, 0); (2, "z", 0, 1); (1, "z", 0, 2); (1, "x", 0, 3) ]
  in
  (* Direct run with the star pattern: the entity-1 match is lost. *)
  check_substs star [] (run star r).Engine.matches;
  (* Completing the join graph (adding b-c) prevents the foreign firing
     and recovers the match. *)
  let complete =
    pattern ~within:100
      [ [ v "a"; v "b"; v "c" ] ]
      ~where:
        ([ label "a" "x"; label "b" "y"; label "c" "z" ]
        @ [
            Pattern.Spec.fields "a" "ID" Predicate.Eq "b" "ID";
            Pattern.Spec.fields "a" "ID" Predicate.Eq "c" "ID";
            Pattern.Spec.fields "b" "ID" Predicate.Eq "c" "ID";
          ])
  in
  check_substs complete
    [ [ ("a", 4); ("b", 1); ("c", 3) ] ]
    (run complete r).Engine.matches;
  (* The partitioned runner applies to the complete pattern and agrees. *)
  let part = Partitioned.run_relation (Automaton.of_pattern complete) r in
  check_substs complete [ [ ("a", 4); ("b", 1); ("c", 3) ] ] part.Engine.matches

let partitioned_equals_direct =
  QCheck.Test.make ~count:75 ~name:"partitioned = direct when applicable"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Ses_gen.Prng.create (Int64.of_int seed) in
      let spec =
        {
          Ses_gen.Random_workload.default_pattern with
          Ses_gen.Random_workload.p_id_join = 1.0;
          allow_groups = false;
        }
      in
      let pat = Ses_gen.Random_workload.pattern rng spec in
      let r =
        Ses_gen.Random_workload.relation rng
          Ses_gen.Random_workload.default_relation
      in
      let automaton = Automaton.of_pattern pat in
      let direct = Engine.run_relation automaton r in
      let part = Partitioned.run_relation automaton r in
      List.map Substitution.canonical direct.Engine.matches
      = List.map Substitution.canonical part.Engine.matches)

let suite =
  [
    Alcotest.test_case "key of complete-join singleton Q1" `Quick
      test_partition_key_complete;
    Alcotest.test_case "star joins insufficient" `Quick
      test_partition_key_star_insufficient;
    Alcotest.test_case "group loops block partitioning" `Quick
      test_partition_key_group_loop;
    Alcotest.test_case "no key without joins" `Quick test_partition_key_absent;
    Alcotest.test_case "inequalities ignored" `Quick
      test_partition_key_inequality_ignored;
    Alcotest.test_case "timestamp ignored" `Quick test_partition_key_timestamp_ignored;
    Alcotest.test_case "cross-field joins ignored" `Quick test_mixed_field_joins;
    Alcotest.test_case "two joined variables" `Quick test_two_joined_variables;
    Alcotest.test_case "partitioned = direct on Figure 1" `Quick
      test_run_equals_direct_on_figure1;
    Alcotest.test_case "fallback without key" `Quick test_fallback_without_key;
    Alcotest.test_case "poisoned branch (skip-till-next-match)" `Quick
      test_poisoned_branch;
    QCheck_alcotest.to_alcotest partitioned_equals_direct;
  ]
