(* Cross-implementation property tests: the SES automaton engine against
   the formal conditions of Definition 2 and against the brute-force
   baseline, on randomly generated patterns and relations. *)

open Ses_core
open Ses_gen

let with_workload seed f =
  let rng = Prng.create (Int64.of_int seed) in
  let pat = Random_workload.pattern rng Random_workload.default_pattern in
  let r = Random_workload.relation rng Random_workload.default_relation in
  f pat r

let singleton_spec =
  { Random_workload.default_pattern with Random_workload.allow_groups = false }

(* The SES-within-BF inclusion only holds on relations with strictly
   increasing timestamps (the paper's Sec. 3.1 assumption): with ties, a
   brute-force chain imposes a strict order between same-set variables
   that the set pattern does not. *)
let tie_free =
  { Random_workload.default_relation with Random_workload.min_gap = 1 }

let with_singleton_workload seed f =
  let rng = Prng.create (Int64.of_int seed) in
  let pat = Random_workload.pattern rng singleton_spec in
  let r = Random_workload.relation rng tie_free in
  f pat r

(* Every raw emission of the engine is a matching substitution in the sense
   of conditions 1-3. *)
let raw_satisfies_def2 =
  QCheck.Test.make ~count:150 ~name:"engine emissions satisfy Def. 2 (1-3)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let outcome = Engine.run_relation (Automaton.of_pattern pat) r in
          List.for_all (Substitution.satisfies_1_3 pat) outcome.Engine.raw))

(* Finalized matches are pairwise non-subsumed (MAXIMAL mode). *)
let matches_maximal =
  QCheck.Test.make ~count:150 ~name:"finalized matches are non-subsumed"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let ms =
            (Engine.run_relation (Automaton.of_pattern pat) r).Engine.matches
          in
          List.for_all
            (fun a ->
              List.for_all
                (fun b ->
                  Substitution.equal a b
                  || not (Substitution.proper_subset a b))
                ms)
            ms))

(* Finalized matches have pairwise distinct canonical forms. *)
let matches_distinct =
  QCheck.Test.make ~count:150 ~name:"finalized matches are distinct"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let cs =
            List.map Substitution.canonical
              (Engine.run_relation (Automaton.of_pattern pat) r).Engine.matches
          in
          List.length cs
          = List.length (List.sort_uniq Substitution.compare_canonical cs)))

(* For singleton-only patterns the brute force explores every ordering, so
   its raw output contains everything the SES automaton emits. *)
let ses_raw_subset_of_bf =
  QCheck.Test.make ~count:75 ~name:"SES raw within BF raw (singleton-only)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_singleton_workload seed (fun pat r ->
          let ses = Engine.run_relation (Automaton.of_pattern pat) r in
          let bf = Ses_baseline.Brute_force.run_relation pat r in
          let bf_raw =
            List.map Substitution.canonical bf.Ses_baseline.Brute_force.raw
          in
          List.for_all
            (fun s -> List.mem (Substitution.canonical s) bf_raw)
            ses.Engine.raw))

(* The brute force's raw output also satisfies conditions 1-3. *)
let bf_raw_satisfies_def2 =
  QCheck.Test.make ~count:75 ~name:"BF emissions satisfy Def. 2 (1-3)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_singleton_workload seed (fun pat r ->
          let bf = Ses_baseline.Brute_force.run_relation pat r in
          List.for_all (Substitution.satisfies_1_3 pat)
            bf.Ses_baseline.Brute_force.raw))

(* Group-variable bindings are chronologically inside the window: the span
   of every match respects tau. *)
let matches_within_window =
  QCheck.Test.make ~count:150 ~name:"match span within tau"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let ms =
            (Engine.run_relation (Automaton.of_pattern pat) r).Engine.matches
          in
          List.for_all
            (fun s -> Substitution.span s <= Ses_pattern.Pattern.tau pat)
            ms))

(* Feeding the same relation twice through a fresh stream gives identical
   output: the engine is deterministic. *)
let engine_deterministic =
  QCheck.Test.make ~count:75 ~name:"engine is deterministic"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let a = Automaton.of_pattern pat in
          let run () =
            List.map Substitution.canonical (Engine.run_relation a r).Engine.matches
          in
          run () = run ()))

(* The constant pre-check never changes the raw emissions. *)
let precheck_transparent =
  QCheck.Test.make ~count:75 ~name:"constant pre-check is transparent"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let raw precheck =
            let options =
              { Engine.default_options with Engine.precheck_constants = precheck }
            in
            List.map Substitution.canonical
              (Engine.run_relation ~options automaton r).Engine.raw
          in
          raw true = raw false))

(* The literal finalize policy never fails and always returns a subset of
   the deduplicated candidates. *)
let literal_policy_sane =
  QCheck.Test.make ~count:75 ~name:"literal policy output within candidates"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let options =
            { Engine.default_options with Engine.policy = Substitution.Literal }
          in
          let outcome = Engine.run_relation ~options automaton r in
          let raw = List.map Substitution.canonical outcome.Engine.raw in
          List.for_all
            (fun m -> List.mem (Substitution.canonical m) raw)
            outcome.Engine.matches))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      raw_satisfies_def2;
      precheck_transparent;
      literal_policy_sane;
      matches_maximal;
      matches_distinct;
      ses_raw_subset_of_bf;
      bf_raw_satisfies_def2;
      matches_within_window;
      engine_deterministic;
    ]
