(* The wire protocol is pure and total: [parse ∘ render = Ok] on every
   canonical value (qcheck round-trip, commands and replies), and any
   byte sequence — oversized, NUL-ridden, truncated, not UTF-8 —
   parses to [Ok] or [Error] without ever raising. *)

open Ses_server

(* ---- generators for canonical wire values ---- *)

let token_chars =
  "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-."

let gen_token =
  QCheck.Gen.(
    map
      (fun l -> String.init (List.length l) (List.nth l))
      (list_size (int_range 1 Protocol.max_token_length)
         (map
            (fun i -> token_chars.[i mod String.length token_chars])
            (int_bound 1000))))

(* Printable free text: never empty after trim, no leading space (the
   renderer's single separator must be the only one), bounded well under
   the line cap so a rendered command always fits. *)
let gen_text =
  QCheck.Gen.(
    map
      (fun l ->
        let s = String.init (List.length l) (List.nth l) in
        "x" ^ s)
      (list_size (int_bound 80) (map Char.chr (int_range 33 126))))

let gen_command =
  QCheck.Gen.(
    oneof
      [
        map (fun t -> Protocol.Auth t) gen_token;
        map2 (fun n q -> Protocol.Register (n, q)) gen_token gen_text;
        map (fun n -> Protocol.Unregister n) gen_token;
        map (fun r -> Protocol.Event r) gen_text;
        map (fun n -> Protocol.Batch n) (int_range 1 Protocol.max_batch);
        return Protocol.Metrics;
        return Protocol.Subscribe;
        return Protocol.Ping;
        return Protocol.Quit;
      ])

let gen_reply =
  QCheck.Gen.(
    oneof
      [
        return (Protocol.Ok_done None);
        map (fun m -> Protocol.Ok_done (Some m)) gen_text;
        map (fun m -> Protocol.Err m) gen_text;
        return Protocol.Pong;
        return Protocol.Bye;
        return Protocol.Slow;
        return Protocol.Resume;
        map3
          (fun tenant query subst -> Protocol.Match { tenant; query; subst })
          gen_token gen_token gen_text;
        map3
          (fun tenant query subst -> Protocol.Result { tenant; query; subst })
          gen_token gen_token gen_text;
        map
          (fun kvs -> Protocol.Stats kvs)
          (list_size (int_bound 6)
             (map2
                (fun k v -> (k, "v" ^ string_of_int v))
                gen_token (int_bound 1000)));
      ])

let pp_command c = Printf.sprintf "%S" (Protocol.render_command c)
let pp_reply r = Printf.sprintf "%S" (Protocol.render_reply r)

let command_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse (render command) = Ok command"
    (QCheck.make ~print:pp_command gen_command)
    (fun c ->
      match Protocol.parse_command (Protocol.render_command c) with
      | Ok c' -> c' = c
      | Error _ -> false)

let reply_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse (render reply) = Ok reply"
    (QCheck.make ~print:pp_reply gen_reply)
    (fun r ->
      match Protocol.parse_reply (Protocol.render_reply r) with
      | Ok r' -> r' = r
      | Error _ -> false)

(* ---- totality fuzz: arbitrary bytes never raise ---- *)

let gen_garbage =
  QCheck.Gen.(
    oneof
      [
        (* raw bytes, any value *)
        map
          (fun l ->
            String.init (List.length l) (fun i -> Char.chr (List.nth l i)))
          (list_size (int_bound 200) (int_bound 255));
        (* a keyword with mangled arguments *)
        map2
          (fun w tail -> w ^ " " ^ tail)
          (oneofl
             [
               "AUTH"; "REGISTER"; "UNREGISTER"; "EVENT"; "BATCH"; "METRICS";
               "SUBSCRIBE"; "PING"; "QUIT"; "OK"; "ERR"; "MATCH"; "RESULT";
               "STATS";
             ])
          (map
             (fun l ->
               String.init (List.length l) (fun i -> Char.chr (List.nth l i)))
             (list_size (int_bound 100) (int_bound 255)));
        (* oversized lines *)
        map
          (fun n -> String.make (Protocol.max_line_length + 1 + n) 'a')
          (int_bound 64);
      ])

let never_raises =
  QCheck.Test.make ~count:1000 ~name:"parser is total on arbitrary bytes"
    (QCheck.make ~print:(Printf.sprintf "%S") gen_garbage)
    (fun line ->
      (match Protocol.parse_command line with Ok _ | Error _ -> ());
      (match Protocol.parse_reply line with Ok _ | Error _ -> ());
      true)

(* ---- directed adversarial cases ---- *)

let check_err what line =
  match Protocol.parse_command line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a parse error for %S" what line

let test_adversarial () =
  check_err "oversized line"
    ("EVENT " ^ String.make Protocol.max_line_length 'x');
  check_err "NUL byte" "EVENT a\000b";
  check_err "embedded CR" "EVENT a\rb";
  check_err "empty line" "";
  check_err "unknown command" "FROB 1,2,3";
  check_err "AUTH bad UTF-8 token" "AUTH caf\xc3\xa9";
  check_err "AUTH overlong token" ("AUTH " ^ String.make 65 'a');
  check_err "BATCH no count" "BATCH";
  check_err "BATCH junk count" "BATCH ten";
  check_err "BATCH zero" "BATCH 0";
  check_err "BATCH negative" "BATCH -3";
  check_err "BATCH overflow"
    ("BATCH " ^ string_of_int (Protocol.max_batch + 1));
  check_err "BATCH absurd" "BATCH 999999999999999999999999999";
  check_err "REGISTER missing query" "REGISTER q1";
  check_err "REGISTER blank query" "REGISTER q1    ";
  check_err "REGISTER bad name" "REGISTER q! PATTERN (a)";
  check_err "EVENT empty row" "EVENT";
  check_err "METRICS with argument" "METRICS now";
  (* byte-transparent payloads: bad UTF-8 is fine where free text is *)
  (match Protocol.parse_command "EVENT 1,\xff\xfe,2" with
  | Ok (Protocol.Event "1,\xff\xfe,2") -> ()
  | _ -> Alcotest.fail "EVENT carries arbitrary non-control bytes");
  match Protocol.parse_reply "NOPE stuff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown reply must not parse"

(* Sanitization: rendering free text with framing bytes must still
   produce a single well-formed line. *)
let test_sanitize () =
  let r = Protocol.Err "split\nacross\rlines\000zero" in
  let line = Protocol.render_reply r in
  Alcotest.(check bool)
    "no framing bytes survive" false
    (String.exists (fun c -> c = '\n' || c = '\r' || c = '\000') line);
  match Protocol.parse_reply line with
  | Ok (Protocol.Err _) -> ()
  | _ -> Alcotest.fail "sanitized reply must parse back as ERR"

let suite =
  [
    Alcotest.test_case "adversarial lines are rejected" `Quick
      test_adversarial;
    Alcotest.test_case "render sanitizes framing bytes" `Quick test_sanitize;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ command_roundtrip; reply_roundtrip; never_raises ]
