let () =
  Alcotest.run "ses"
    [
      ("time", Test_time.suite);
      ("value", Test_value.suite);
      ("predicate", Test_predicate.suite);
      ("schema", Test_schema.suite);
      ("event", Test_event.suite);
      ("relation", Test_relation.suite);
      ("condition", Test_condition.suite);
      ("pattern", Test_pattern.suite);
      ("exclusivity", Test_exclusivity.suite);
      ("varset", Test_varset.suite);
      ("automaton", Test_automaton.suite);
      ("automaton-props", Test_automaton_props.suite);
      ("substitution", Test_substitution.suite);
      ("engine", Test_engine.suite);
      ("executor", Test_executor.suite);
      ("event-filter", Test_event_filter.suite);
      ("partitioned", Test_partitioned.suite);
      ("naive", Test_naive.suite);
      ("quantifier", Test_quantifier.suite);
      ("negation", Test_negation.suite);
      ("planner-multi", Test_planner_multi.suite);
      ("trace", Test_trace.suite);
      ("explain", Test_explain.suite);
      ("paper-example", Test_paper_example.suite);
      ("baseline", Test_baseline.suite);
      ("equivalence", Test_equivalence.suite);
      ("lang", Test_lang.suite);
      ("csv", Test_csv.suite);
      ("csv-stream", Test_csv_stream.suite);
      ("store", Test_store.suite);
      ("gen", Test_gen.suite);
      ("harness", Test_harness.suite);
      ("bounds", Test_bounds.suite);
    ]
