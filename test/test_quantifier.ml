(* Bounded quantifiers v{min,max} — the "broader class of SES patterns"
   extension. Singleton and v+ behaviour is covered by the other suites;
   these tests exercise the bounds. *)

open Ses_pattern
open Ses_core
open Helpers

let test_variable_constructors () =
  let r = Variable.repeat ~min:2 ~max:4 "v" in
  Alcotest.(check int) "min" 2 (Variable.min_count r);
  Alcotest.(check (option int)) "max" (Some 4) (Variable.max_count r);
  Alcotest.(check bool) "is_group" true (Variable.is_group r);
  Alcotest.(check string) "render" "v{2,4}" (Variable.to_string r);
  Alcotest.(check string) "exact" "v{3}"
    (Variable.to_string (Variable.repeat ~min:3 ~max:3 "v"));
  Alcotest.(check string) "open" "v{2,}"
    (Variable.to_string (Variable.repeat ~min:2 "v"));
  Alcotest.(check string) "plus" "v+" (Variable.to_string (Variable.group "v"));
  Alcotest.(check string) "single" "v" (Variable.to_string (Variable.singleton "v"));
  Alcotest.(check bool) "singleton not group" false
    (Variable.is_group (Variable.singleton "v"));
  Alcotest.check_raises "min 0" (Invalid_argument "Variable.repeat: min must be >= 1")
    (fun () -> ignore (Variable.repeat ~min:0 "v"));
  Alcotest.check_raises "max < min"
    (Invalid_argument "Variable.repeat: max must be >= min") (fun () ->
      ignore (Variable.repeat ~min:3 ~max:2 "v"))

let test_pattern_validation () =
  (* Quantifiers that bypass Variable.repeat (e.g. built by a parser) are
     validated by Pattern.make. *)
  let bad = { Variable.name = "v"; quantifier = { min_count = 0; max_count = None } } in
  match
    Pattern.make ~schema:Helpers.schema ~sets:[ [ bad ] ] ~where:[] ~within:10
  with
  | Error errs ->
      Alcotest.(check bool) "reported" true
        (List.exists
           (fun e ->
             let has = ref false in
             String.iteri
               (fun i _ ->
                 if i + 10 <= String.length e && String.sub e i 10 = "quantifier"
                 then has := true)
               e;
             !has)
           errs)
  | Ok _ -> Alcotest.fail "expected a validation error"

let bounded ~min ?max () =
  pattern ~within:50
    [ [ { Variable.name = "g";
          quantifier = { Variable.min_count = min; max_count = max } } ];
      [ v "z" ] ]
    ~where:[ label "g" "g"; label "z" "z" ]

let test_minimum_enforced () =
  let p = bounded ~min:2 () in
  (* One g only: the accepting state is reached but the quantifier minimum
     fails — no match. *)
  let too_few = run p (rel_l [ ("g", 0); ("z", 1) ]) in
  check_substs p [] too_few.Engine.matches;
  let enough = run p (rel_l [ ("g", 0); ("g", 1); ("z", 2) ]) in
  check_substs p
    [ [ ("g{2,}", 1); ("g{2,}", 2); ("z", 3) ] ]
    enough.Engine.matches

let test_maximum_enforced () =
  let p = bounded ~min:1 ~max:2 () in
  let outcome = run p (rel_l [ ("g", 0); ("g", 1); ("g", 2); ("z", 3) ]) in
  (* The loop stops at two bindings; later roots cover the remaining
     combinations, and subsumption keeps the two maximal incomparable
     ones. *)
  check_substs p
    [
      [ ("g{1,2}", 1); ("g{1,2}", 2); ("z", 4) ];
      [ ("g{1,2}", 2); ("g{1,2}", 3); ("z", 4) ];
    ]
    outcome.Engine.matches;
  (* Every match respects the bound. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "within max" true
        (List.length
           (Substitution.bindings_of s (Option.get (Pattern.var_id p "g")))
        <= 2))
    outcome.Engine.matches

let test_exact_count () =
  let p = bounded ~min:2 ~max:2 () in
  let outcome = run p (rel_l [ ("g", 0); ("g", 1); ("g", 2); ("z", 3) ]) in
  List.iter
    (fun s ->
      Alcotest.(check int) "exactly two" 2
        (List.length
           (Substitution.bindings_of s (Option.get (Pattern.var_id p "g")))))
    outcome.Engine.matches;
  Alcotest.(check bool) "found some" true (outcome.Engine.matches <> [])

let test_exact_one_behaves_like_singleton () =
  let explicit =
    pattern ~within:50
      [ [ { Variable.name = "x";
            quantifier = { Variable.min_count = 1; max_count = Some 1 } } ];
        [ v "z" ] ]
      ~where:[ label "x" "g"; label "z" "z" ]
  in
  let implicit =
    pattern ~within:50 [ [ v "x" ]; [ v "z" ] ]
      ~where:[ label "x" "g"; label "z" "z" ]
  in
  let r = rel_l [ ("g", 0); ("g", 1); ("z", 2) ] in
  Alcotest.(check (list (list (pair string int))))
    "same behaviour"
    (substs_repr implicit (run implicit r).Engine.matches)
    (substs_repr explicit (run explicit r).Engine.matches)

let test_naive_agreement () =
  let p = bounded ~min:2 ~max:3 () in
  let r = rel_l [ ("g", 0); ("g", 1); ("g", 2); ("g", 3); ("z", 4) ] in
  let oracle = Naive.all_satisfying_1_3 p r in
  (* Oracle counts: subsets of 4 g-events of size 2 or 3, each with z. *)
  Alcotest.(check int) "C(4,2)+C(4,3)" 10 (List.length oracle);
  let outcome = run p r in
  List.iter
    (fun s ->
      Alcotest.(check bool) "engine within oracle" true
        (List.mem (Substitution.canonical s)
           (List.map Substitution.canonical oracle)))
    outcome.Engine.raw

let test_lang_quantifiers () =
  let parse src =
    match Ses_lang.Lang.parse_pattern Helpers.schema src with
    | Ok p -> p
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  let p = parse "PATTERN (a{2,4}, b{3}) -> c{2,} WITHIN 10" in
  let q name = Option.get (Pattern.var_id p name) in
  Alcotest.(check int) "a min" 2 (Pattern.min_count p (q "a"));
  Alcotest.(check (option int)) "a max" (Some 4) (Pattern.max_count p (q "a"));
  Alcotest.(check int) "b min" 3 (Pattern.min_count p (q "b"));
  Alcotest.(check (option int)) "b max" (Some 3) (Pattern.max_count p (q "b"));
  Alcotest.(check (option int)) "c open" None (Pattern.max_count p (q "c"));
  (* Errors. *)
  let err src =
    match Ses_lang.Lang.parse_pattern Helpers.schema src with
    | Ok _ -> Alcotest.failf "expected error for %S" src
    | Error _ -> ()
  in
  err "PATTERN a{0} WITHIN 5";
  err "PATTERN a{3,2} WITHIN 5";
  err "PATTERN a{2 WITHIN 5";
  err "PATTERN a{} WITHIN 5"

let test_lang_roundtrip () =
  let p =
    pattern ~within:30
      [ [ Variable.repeat ~min:2 ~max:5 "a"; v "b" ]; [ Variable.repeat ~min:2 "c" ] ]
      ~where:[ label "a" "x"; label "b" "y"; label "c" "z" ]
  in
  let printed = Ses_lang.Lang.to_query p in
  match Ses_lang.Lang.parse_pattern Helpers.schema printed with
  | Error msg -> Alcotest.failf "reparse of %S failed: %s" printed msg
  | Ok p' ->
      let q name = Option.get (Pattern.var_id p' name) in
      Alcotest.(check int) "a min" 2 (Pattern.min_count p' (q "a"));
      Alcotest.(check (option int)) "a max" (Some 5) (Pattern.max_count p' (q "a"));
      Alcotest.(check (option int)) "c open" None (Pattern.max_count p' (q "c"))

let test_brute_force_bounded () =
  (* The baseline inherits the bounds through the shared engine. *)
  let p = bounded ~min:2 ~max:2 () in
  let r = rel_l [ ("g", 0); ("g", 1); ("g", 2); ("z", 3) ] in
  let bf = Ses_baseline.Brute_force.run_relation p r in
  List.iter
    (fun s ->
      Alcotest.(check int) "exactly two" 2
        (List.length
           (Substitution.bindings_of s (Option.get (Pattern.var_id p "g")))))
    bf.Ses_baseline.Brute_force.matches

let suite =
  [
    Alcotest.test_case "variable constructors" `Quick test_variable_constructors;
    Alcotest.test_case "pattern validation" `Quick test_pattern_validation;
    Alcotest.test_case "minimum enforced" `Quick test_minimum_enforced;
    Alcotest.test_case "maximum enforced" `Quick test_maximum_enforced;
    Alcotest.test_case "exact count" `Quick test_exact_count;
    Alcotest.test_case "{1,1} = singleton" `Quick test_exact_one_behaves_like_singleton;
    Alcotest.test_case "naive oracle agreement" `Quick test_naive_agreement;
    Alcotest.test_case "language quantifiers" `Quick test_lang_quantifiers;
    Alcotest.test_case "language roundtrip" `Quick test_lang_roundtrip;
    Alcotest.test_case "brute force bounded" `Quick test_brute_force_bounded;
  ]
