Self-check: the shipped sources lint clean. The cram sandbox
materializes lib/, bin/ and bench/ next to the driver, so this is the
same repo-wide run CI performs (CI adds test/ and tools/), pinned here
to fail the suite the moment a lint regression lands.

  $ ../../tools/lint/main.exe -q --root ../.. lib bin bench
