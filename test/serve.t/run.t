The long-running server: spin one up on an ephemeral port, drive it
over TCP with scripted clients, scrape Prometheus metrics through the
same port, and stop it with SIGTERM.

  $ ../../bin/ses_cli.exe generate --kind chemo --patients 80 --seed 7 --out chemo.csv
  wrote 10296 events to chemo.csv

The server takes the CSV header verbatim as its row schema and
announces the bound port through --port-file.

  $ ../../bin/ses_cli.exe serve --schema "$(head -1 chemo.csv)" \
  >   --queue-capacity 20000 --port-file port.txt > serve.log 2>&1 &
  $ SERVE_PID=$!
  $ for _ in $(seq 1 100); do [ -s port.txt ] && break; sleep 0.1; done

Tenant acme runs two queries over the whole stream, fed in two halves
over two separate connections (tenant state outlives connections).
The first connection registers both queries, feeds the first half and
unregisters one query mid-stream; its RESULT lines must be exactly
the offline matches of the first half.

  $ tail -n +2 chemo.csv > rows.csv
  $ head -n 5148 rows.csv > rows1.csv
  $ tail -n +5149 rows.csv > rows2.csv
  $ Q_CD="PATTERN (c) -> (d) WHERE c.L = 'C' AND d.L = 'D' AND c.ID = d.ID WITHIN 11 DAYS"
  $ Q_CB="PATTERN (c) -> (b) WHERE c.L = 'C' AND b.L = 'B' AND c.ID = b.ID WITHIN 11 DAYS"
  $ { echo "AUTH acme"; echo "SUBSCRIBE"; \
  >   echo "REGISTER cd $Q_CD"; echo "REGISTER cb $Q_CB"; \
  >   echo "BATCH 5148"; cat rows1.csv; \
  >   echo "UNREGISTER cd"; echo "QUIT"; } > a1.txt
  $ ../../bin/ses_cli.exe client --port-file port.txt --script a1.txt > a1.out
  $ grep -v '^MATCH\|^RESULT' a1.out
  OK tenant acme
  OK subscribed
  OK registered cd
  OK registered cb
  OK batch 5148
  OK unregistered cd matches=77
  BYE

  $ (head -1 chemo.csv; cat rows1.csv) > first.csv
  $ ../../bin/ses_cli.exe match -d first.csv -q "$Q_CD" | sed -n 's/^  {/{/p' | sort > want_cd.txt
  $ grep '^RESULT acme cd ' a1.out | sed 's/^RESULT acme cd //' | sort > got_cd.txt
  $ diff want_cd.txt got_cd.txt && echo retiree-identical
  retiree-identical

A second tenant is completely isolated from acme. Its whole exchange
is deterministic: barriers (REGISTER/METRICS/UNREGISTER/QUIT) drain
the tenant queue first, the match streams one drain after its window
provably closed, and UNREGISTER flushes the finalized results.

  $ { echo "AUTH beta"; echo "SUBSCRIBE"; \
  >   echo "REGISTER q1 PATTERN (c) -> (d) WHERE c.L = 'C' AND d.L = 'D' AND c.ID = d.ID WITHIN 11"; \
  >   echo "EVENT 1,C,5.0,mg,2"; echo "EVENT 1,D,6.0,mg,4"; \
  >   echo "EVENT 9,C,0.5,mg,50"; echo "METRICS"; \
  >   echo "EVENT 9,D,0.5,mg,51"; echo "METRICS"; \
  >   echo "UNREGISTER q1"; echo "QUIT"; } > b.txt
  $ ../../bin/ses_cli.exe client --port-file port.txt --script b.txt
  OK tenant beta
  OK subscribed
  OK registered q1
  STATS tenant=beta queries=1 events=3 queued=0 dropped=0 matches=0 connections=1
  MATCH beta q1 {c/e1, d/e2}
  STATS tenant=beta queries=1 events=4 queued=0 dropped=0 matches=1 connections=1
  RESULT beta q1 {c/e1, d/e2}
  RESULT beta q1 {c/e3, d/e4}
  OK unregistered q1 matches=2
  BYE

Malformed input never kills the loop: a garbage command and an
out-of-schema row get ERR replies on the same connection.

  $ { echo "AUTH beta"; echo "FROB 1"; echo "EVENT not,a,row"; \
  >   echo "PING"; echo "QUIT"; } > bad.txt
  $ ../../bin/ses_cli.exe client --port-file port.txt --script bad.txt
  OK tenant beta
  ERR unknown command FROB
  ERR event: csv: expected 5 fields, found 3
  PONG
  BYE

The second acme connection picks the tenant back up, feeds the rest
of the stream and retires the surviving query; its results must be
byte-identical to an offline run over the full file (the mid-stream
removal of cd left no trace on cb).

  $ { echo "AUTH acme"; echo "SUBSCRIBE"; \
  >   echo "BATCH 5148"; cat rows2.csv; \
  >   echo "METRICS"; echo "UNREGISTER cb"; echo "QUIT"; } > a2.txt
  $ ../../bin/ses_cli.exe client --port-file port.txt --script a2.txt > a2.out
  $ grep -v '^MATCH\|^RESULT' a2.out | sed '/^STATS/s/ matches=[0-9]*//'
  OK tenant acme
  OK subscribed
  OK batch 5148
  STATS tenant=acme queries=1 events=10296 queued=0 dropped=0 connections=1
  OK unregistered cb matches=298
  BYE

  $ ../../bin/ses_cli.exe match -d chemo.csv -q "$Q_CB" | sed -n 's/^  {/{/p' | sort > want_cb.txt
  $ grep '^RESULT acme cb ' a2.out | sed 's/^RESULT acme cb //' | sort > got_cb.txt
  $ diff want_cb.txt got_cb.txt && echo survivor-identical
  survivor-identical

The same port answers HTTP/1.0 GETs: /metrics serves the Prometheus
exposition of the server.* probes, anything else is a 404.

  $ printf 'GET /metrics HTTP/1.0\n\n' > scrape.txt
  $ ../../bin/ses_cli.exe client --port-file port.txt --script scrape.txt > scrape.out
  $ head -1 scrape.out
  HTTP/1.0 200 OK
  $ grep 'server.events.acme\|gauge_last{name="server.connections"}' scrape.out
  ses_gauge_last{name="server.connections"} 0
  ses_counter{name="server.events.acme"} 10296
  $ printf 'GET /nope HTTP/1.0\n\n' > nope.txt
  $ ../../bin/ses_cli.exe client --port-file port.txt --script nope.txt | head -1
  HTTP/1.0 404 Not Found

SIGTERM stops it cleanly.

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ sed 's/:[0-9]*$/:PORT/' serve.log
  ses serve: listening on 127.0.0.1:PORT
  ses serve: shut down
