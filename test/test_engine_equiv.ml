(* Store-equivalence property tests: the state-indexed instance store
   must be observationally identical to the flat reference pool — same
   raw emissions, same finalized matches, same metrics — across the
   option grid (constant pre-check on/off, both finalize policies). The
   hash-based finalize pipeline is likewise checked against a direct
   transcription of Definition 2's conditions 4-5 built from the
   exported primitives. *)

open Ses_core
open Ses_gen

let with_workload seed f =
  let rng = Prng.create (Int64.of_int seed) in
  let pat = Random_workload.pattern rng Random_workload.default_pattern in
  let r = Random_workload.relation rng Random_workload.default_relation in
  f pat r

let canon_sorted substs =
  List.sort Substitution.compare_canonical
    (List.map Substitution.canonical substs)

let run ~store ~precheck ~policy automaton r =
  let options =
    {
      Engine.default_options with
      Engine.store;
      precheck_constants = precheck;
      policy;
    }
  in
  Engine.run_relation ~options automaton r

(* The option grid shared by the parity properties below. *)
let grid =
  [
    (true, Substitution.Operational);
    (false, Substitution.Operational);
    (true, Substitution.Literal);
    (false, Substitution.Literal);
  ]

(* Raw emissions and finalized matches agree between the two stores for
   every option combination. Raw output is compared as a multiset-free
   sorted list of canonical forms: the indexed store visits states in
   bucket order, so within-event emission order may differ, but the set
   of emissions may not. *)
let stores_agree_on_output =
  QCheck.Test.make ~count:120 ~name:"indexed store output = flat store output"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          List.for_all
            (fun (precheck, policy) ->
              let flat = run ~store:Engine.Flat ~precheck ~policy automaton r in
              let idx =
                run ~store:Engine.Indexed ~precheck ~policy automaton r
              in
              canon_sorted flat.Engine.raw = canon_sorted idx.Engine.raw
              && canon_sorted flat.Engine.matches
                 = canon_sorted idx.Engine.matches)
            grid))

(* The runtime counters agree as well: bucket skipping only ever avoids
   work the flat scan would not have recorded (states with no candidate
   transitions fire nothing), so every counter — including max |Ω| —
   must be bit-identical. *)
let stores_agree_on_metrics =
  QCheck.Test.make ~count:120 ~name:"indexed store metrics = flat store metrics"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          List.for_all
            (fun (precheck, policy) ->
              let flat = run ~store:Engine.Flat ~precheck ~policy automaton r in
              let idx =
                run ~store:Engine.Indexed ~precheck ~policy automaton r
              in
              flat.Engine.metrics = idx.Engine.metrics)
            grid))

(* Direct transcription of finalize: dedup by canonical form, apply the
   policy with the exported one-pair-at-a-time primitives, sort. This is
   the O(n²·m log m) algorithm the hash-based pipeline replaced. *)
let reference_finalize policy substs =
  let candidates =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun s ->
        let c = Substitution.canonical s in
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.add seen c ();
          true
        end)
      substs
  in
  let keep =
    match policy with
    | Substitution.Operational ->
        fun s ->
          not
            (List.exists
               (fun s' -> Substitution.proper_subset s s')
               candidates)
    | Substitution.Literal ->
        fun s ->
          Substitution.maximal_within ~candidates s
          && Substitution.skip_till_next_within ~candidates s
  in
  List.sort
    (fun a b ->
      let c =
        Option.compare Ses_event.Time.compare (Substitution.min_ts a)
          (Substitution.min_ts b)
      in
      if c <> 0 then c
      else
        Substitution.compare_canonical (Substitution.canonical a)
          (Substitution.canonical b))
    (List.filter keep candidates)

let finalize_matches_reference =
  QCheck.Test.make ~count:120 ~name:"finalize = reference finalize"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let raw = (Engine.run_relation automaton r).Engine.raw in
          List.for_all
            (fun policy ->
              List.map Substitution.canonical
                (Substitution.finalize ~policy pat raw)
              = List.map Substitution.canonical (reference_finalize policy raw))
            [ Substitution.Operational; Substitution.Literal ]))

(* The O(1) population counter of the indexed store never drifts from
   the actual pool: after every event the counter equals the length of
   the instance dump, and the per-state histogram sums to it. *)
let population_counter_consistent =
  QCheck.Test.make ~count:75 ~name:"population counter matches the pool"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          let automaton = Automaton.of_pattern pat in
          let st = Engine.create automaton in
          Seq.for_all
            (fun e ->
              ignore (Engine.feed st e);
              let by_state = Engine.population_by_state st in
              Engine.population st
              = List.fold_left (fun acc (_, n) -> acc + n) 0 by_state)
            (Ses_event.Relation.to_seq r)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      stores_agree_on_output;
      stores_agree_on_metrics;
      finalize_matches_reference;
      population_counter_consistent;
    ]
