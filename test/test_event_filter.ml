open Ses_event
open Ses_core
open Helpers

let ev l v = Event.make ~seq:0 ~ts:0 [| Value.Int 1; Value.Str l; Value.Int v |]

(* x matches label 'a' with V >= 5; y matches label 'b'. *)
let p =
  pattern ~within:10
    [ [ v "x" ]; [ v "y" ] ]
    ~where:
      [
        label "x" "a";
        Ses_pattern.Pattern.Spec.const "x" "V" Predicate.Ge (Value.Int 5);
        label "y" "b";
      ]

let test_no_filter () =
  let f = Event_filter.make p Event_filter.No_filter in
  Alcotest.(check bool) "ineffective" false (Event_filter.effective f);
  Alcotest.(check bool) "keeps anything" true (Event_filter.keep f (ev "zzz" 0))

let test_paper_filter () =
  let f = Event_filter.make p Event_filter.Paper in
  Alcotest.(check bool) "effective" true (Event_filter.effective f);
  (* Satisfies x's label condition only — kept by the paper filter. *)
  Alcotest.(check bool) "partial satisfaction kept" true
    (Event_filter.keep f (ev "a" 0));
  Alcotest.(check bool) "y label kept" true (Event_filter.keep f (ev "b" 0));
  (* Satisfies only the V >= 5 atom. *)
  Alcotest.(check bool) "value atom kept" true (Event_filter.keep f (ev "q" 9));
  Alcotest.(check bool) "nothing satisfied dropped" false
    (Event_filter.keep f (ev "q" 0))

let test_strong_filter () =
  let f = Event_filter.make p Event_filter.Strong in
  Alcotest.(check bool) "effective" true (Event_filter.effective f);
  (* x needs label AND value. *)
  Alcotest.(check bool) "x fully satisfied" true (Event_filter.keep f (ev "a" 7));
  Alcotest.(check bool) "x label only dropped" false
    (Event_filter.keep f (ev "a" 0));
  Alcotest.(check bool) "y satisfied" true (Event_filter.keep f (ev "b" 0));
  Alcotest.(check bool) "neither dropped" false (Event_filter.keep f (ev "q" 9))

let test_unconstrained_variable_degenerates () =
  (* y carries no constant condition: both filters must keep everything. *)
  let p' =
    pattern ~within:10 [ [ v "x" ]; [ v "y" ] ] ~where:[ label "x" "a" ]
  in
  let fp = Event_filter.make p' Event_filter.Paper in
  let fs = Event_filter.make p' Event_filter.Strong in
  Alcotest.(check bool) "paper ineffective" false (Event_filter.effective fp);
  Alcotest.(check bool) "strong ineffective" false (Event_filter.effective fs);
  Alcotest.(check bool) "keeps unrelated" true (Event_filter.keep fp (ev "z" 0))

let test_filters_preserve_matches () =
  (* The three modes agree on Q1 over Figure 1. *)
  let run_mode mode =
    let options = { Engine.default_options with Engine.filter = mode } in
    (run ~options query_q1 figure_1).Engine.matches
  in
  let reference = run_mode Event_filter.No_filter in
  List.iter
    (fun mode ->
      let got = run_mode mode in
      Alcotest.(check int) "same count" (List.length reference) (List.length got);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "same match" true (Substitution.equal a b))
        reference got)
    [ Event_filter.Paper; Event_filter.Strong ]

let test_filter_reduces_work () =
  let count_filtered mode =
    let options =
      { Engine.default_options with Engine.filter = mode; finalize = false }
    in
    (run ~options query_q1 figure_1).Engine.metrics.Metrics.events_filtered
  in
  Alcotest.(check int) "no filter drops nothing" 0
    (count_filtered Event_filter.No_filter);
  Alcotest.(check int) "figure 1 is all-matching" 0
    (count_filtered Event_filter.Paper);
  (* Add unrelated events and check they are dropped. *)
  let noisy =
    Relation.append figure_1
      (Relation.of_rows_exn chemo_schema
         [
           ([| Value.Int 1; Value.Str "X"; Value.Float 0.; Value.Str "u" |], 50);
           ([| Value.Int 2; Value.Str "Y"; Value.Float 0.; Value.Str "u" |], 60);
         ])
  in
  let options =
    {
      Engine.default_options with
      Engine.filter = Event_filter.Paper;
      finalize = false;
    }
  in
  let outcome = run ~options query_q1 noisy in
  Alcotest.(check int) "noise dropped" 2
    outcome.Engine.metrics.Metrics.events_filtered

let test_pp_mode () =
  Alcotest.(check string) "paper" "paper filter"
    (Format.asprintf "%a" Event_filter.pp_mode Event_filter.Paper);
  Alcotest.(check string) "none" "no filter"
    (Format.asprintf "%a" Event_filter.pp_mode Event_filter.No_filter)

(* Property: on random workloads, filtering never changes the finalized
   match set. *)
let filter_transparent =
  QCheck.Test.make ~count:60 ~name:"filters preserve matches (random)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Ses_gen.Prng.create (Int64.of_int seed) in
      let pat = Ses_gen.Random_workload.pattern rng Ses_gen.Random_workload.default_pattern in
      let r = Ses_gen.Random_workload.relation rng Ses_gen.Random_workload.default_relation in
      let automaton = Automaton.of_pattern pat in
      let matches mode =
        let options = { Engine.default_options with Engine.filter = mode } in
        List.map Substitution.canonical
          (Engine.run_relation ~options automaton r).Engine.matches
      in
      let reference = matches Event_filter.No_filter in
      matches Event_filter.Paper = reference
      && matches Event_filter.Strong = reference)

let suite =
  [
    Alcotest.test_case "no filter" `Quick test_no_filter;
    Alcotest.test_case "paper filter" `Quick test_paper_filter;
    Alcotest.test_case "strong filter" `Quick test_strong_filter;
    Alcotest.test_case "unconstrained variable" `Quick
      test_unconstrained_variable_degenerates;
    Alcotest.test_case "filters preserve Q1 matches" `Quick
      test_filters_preserve_matches;
    Alcotest.test_case "filter reduces work" `Quick test_filter_reduces_work;
    Alcotest.test_case "pp_mode" `Quick test_pp_mode;
    QCheck_alcotest.to_alcotest filter_transparent;
  ]
