(* The streaming CSV source: parity with the materialized reader, error
   reporting with row numbers, ordering enforcement, and the store-side
   filter pushdown — including the end-to-end guarantee that a streamed
   query never builds a Relation.t yet finds the same matches. *)

open Ses_event

let write_tmp content =
  let path = Filename.temp_file "ses_test" ".csv" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let with_tmp content f =
  let path = write_tmp content in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let header = "ID:int,L:string,V:float,U:string,T\n"

let orderly_csv =
  header
  ^ String.concat "\n"
      [
        "1,C,0,u,10";
        "1,P,0,u,20";
        "1,P,0,u,30";
        "1,D,0,u,40";
        "1,B,0,u,50";
        "2,C,0,u,100";
        "2,P,0,u,110";
        "2,P,0,u,120";
        "2,D,0,u,130";
        "2,B,0,u,140";
      ]
  ^ "\n"

let or_fail = function Ok x -> x | Error msg -> Alcotest.fail msg

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Parity: the stream yields exactly the events Csv.load materializes. *)
let test_count_parity () =
  with_tmp orderly_csv (fun path ->
      let relation = or_fail (Ses_store.Csv.load path) in
      let n = or_fail (Ses_store.Csv_stream.count path) in
      Alcotest.(check int) "count" (Relation.cardinality relation) n;
      let _, streamed =
        or_fail
          (Ses_store.Csv_stream.fold path ~init:[] ~f:(fun acc e -> e :: acc))
      in
      let streamed = List.rev streamed in
      let materialized = Array.to_list (Relation.events relation) in
      Alcotest.(check int)
        "same length"
        (List.length materialized)
        (List.length streamed);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "same event" true (Event.equal a b);
          Alcotest.(check int) "same seq" (Event.seq a) (Event.seq b))
        materialized streamed)

let test_out_of_order_rejected () =
  let bad = header ^ "1,C,0,u,50\n1,P,0,u,40\n" in
  with_tmp bad (fun path ->
      match
        Ses_store.Csv_stream.fold path ~init:0 ~f:(fun acc _ -> acc + 1)
      with
      | Ok _ -> Alcotest.fail "out-of-order feed accepted"
      | Error msg ->
          Alcotest.(check bool)
            ("row number in " ^ msg)
            true (contains msg "row 2"))

let test_malformed_header () =
  with_tmp "ID:int,L:string\n1,C\n" (fun path ->
      match Ses_store.Csv_stream.open_source path with
      | Ok src ->
          Ses_store.Csv_stream.close_source src;
          Alcotest.fail "header without T column accepted"
      | Error _ -> ());
  with_tmp "ID:bogus,T\n1,10\n" (fun path ->
      match Ses_store.Csv_stream.open_source path with
      | Ok src ->
          Ses_store.Csv_stream.close_source src;
          Alcotest.fail "unknown type accepted"
      | Error _ -> ())

let test_malformed_row () =
  let bad = header ^ "1,C,0,u,10\nnot-an-int,C,0,u,20\n" in
  with_tmp bad (fun path ->
      match
        Ses_store.Csv_stream.fold path ~init:0 ~f:(fun acc _ -> acc + 1)
      with
      | Ok _ -> Alcotest.fail "malformed row accepted"
      | Error msg ->
          Alcotest.(check bool)
            ("row number in " ^ msg)
            true (contains msg "row 2"));
  let missing = header ^ "1,C,0,u\n" in
  with_tmp missing (fun path ->
      match
        Ses_store.Csv_stream.fold path ~init:0 ~f:(fun acc _ -> acc + 1)
      with
      | Ok _ -> Alcotest.fail "short row accepted"
      | Error _ -> ())

(* Pushdown: rejected rows are dropped store-side, sequence numbers keep
   their scan positions (gaps where rows were dropped). *)
let test_pushdown () =
  with_tmp orderly_csv (fun path ->
      let selection =
        Ses_store.Selection.attr "L" Ses_event.Predicate.Eq (Value.Str "P")
      in
      let result =
        Ses_store.Csv_stream.with_source ~selection path (fun src ->
            let rec drain acc =
              match Ses_store.Csv_stream.next src with
              | Error msg -> Alcotest.fail msg
              | Ok None -> List.rev acc
              | Ok (Some e) -> drain (e :: acc)
            in
            let events = drain [] in
            Alcotest.(check int) "scanned" 10 (Ses_store.Csv_stream.scanned src);
            Alcotest.(check int) "dropped" 6 (Ses_store.Csv_stream.dropped src);
            Ok events)
      in
      let events = or_fail result in
      Alcotest.(check (list int))
        "surviving sequence numbers keep their scan positions"
        [ 1; 2; 6; 7 ]
        (List.map Event.seq events))

let test_unknown_selection_attr () =
  with_tmp orderly_csv (fun path ->
      let selection =
        Ses_store.Selection.attr "NOPE" Ses_event.Predicate.Eq (Value.Str "x")
      in
      match Ses_store.Csv_stream.open_source ~selection path with
      | Ok src ->
          Ses_store.Csv_stream.close_source src;
          Alcotest.fail "unknown attribute accepted"
      | Error _ -> ())

(* Like orderly_csv but with noise rows ("X" labels) no query variable
   can bind — exactly what the pushed-down strong filter drops. *)
let noisy_csv =
  header
  ^ String.concat "\n"
      [
        "1,C,0,u,10";
        "1,P,0,u,20";
        "9,X,0,u,25";
        "1,P,0,u,30";
        "1,D,0,u,40";
        "1,B,0,u,50";
        "9,X,0,u,60";
        "2,C,0,u,100";
        "2,P,0,u,110";
        "2,P,0,u,120";
        "2,D,0,u,130";
        "2,B,0,u,140";
        "9,X,0,u,150";
      ]
  ^ "\n"

(* End to end: a streamed query (Csv_stream -> executor, no Relation.t
   ever built) produces exactly the matches of the materialized path. *)
let test_stream_matches_materialized () =
  let () = Ses_baseline.Brute_force.register () in
  with_tmp noisy_csv (fun path ->
      let pattern = Ses_harness.Queries.q1 in
      let automaton = Ses_core.Automaton.of_pattern pattern in
      let relation = or_fail (Ses_store.Csv.load path) in
      let materialized =
        Ses_core.Engine.run_relation automaton relation
      in
      List.iter
        (fun strategy ->
          let outcome =
            or_fail
              (Ses_harness.Stream_runner.run ~strategy
                 ~query:(fun _schema -> Ok automaton)
                 path)
          in
          Alcotest.(check (list (list (pair string int))))
            ("stream = materialized under "
            ^ Ses_core.Executor.strategy_name strategy)
            (Helpers.substs_repr pattern
               materialized.Ses_core.Engine.matches)
            (Helpers.substs_repr pattern
               outcome.Ses_harness.Stream_runner.matches);
          (* The strong filter was pushed into the scan: fewer events
             reached the executor than were scanned. *)
          Alcotest.(check bool)
            "pushdown engaged" true
            (outcome.Ses_harness.Stream_runner.pushed <> None
            && outcome.Ses_harness.Stream_runner.events_delivered
               < outcome.Ses_harness.Stream_runner.events_scanned))
        Ses_core.Executor.strategies)

let test_stream_no_pushdown_same_matches () =
  with_tmp orderly_csv (fun path ->
      let pattern = Ses_harness.Queries.q1 in
      let automaton = Ses_core.Automaton.of_pattern pattern in
      let with_push =
        or_fail
          (Ses_harness.Stream_runner.run
             ~query:(fun _ -> Ok automaton)
             path)
      in
      let without_push =
        or_fail
          (Ses_harness.Stream_runner.run ~push_filter:false
             ~query:(fun _ -> Ok automaton)
             path)
      in
      Alcotest.(check bool)
        "no filter pushed" true
        (without_push.Ses_harness.Stream_runner.pushed = None);
      Alcotest.(check int)
        "everything delivered"
        without_push.Ses_harness.Stream_runner.events_scanned
        without_push.Ses_harness.Stream_runner.events_delivered;
      Alcotest.(check (list (list (pair string int))))
        "same matches either way"
        (Helpers.substs_repr pattern
           with_push.Ses_harness.Stream_runner.matches)
        (Helpers.substs_repr pattern
           without_push.Ses_harness.Stream_runner.matches))

let suite =
  [
    Alcotest.test_case "count/event parity with Csv.load" `Quick
      test_count_parity;
    Alcotest.test_case "out-of-order rows rejected" `Quick
      test_out_of_order_rejected;
    Alcotest.test_case "malformed header rejected" `Quick test_malformed_header;
    Alcotest.test_case "malformed rows carry row numbers" `Quick
      test_malformed_row;
    Alcotest.test_case "selection pushdown keeps seq numbers" `Quick
      test_pushdown;
    Alcotest.test_case "unknown selection attribute rejected" `Quick
      test_unknown_selection_attr;
    Alcotest.test_case "streamed matches = materialized matches" `Quick
      test_stream_matches_materialized;
    Alcotest.test_case "pushdown does not change matches" `Quick
      test_stream_no_pushdown_same_matches;
  ]
