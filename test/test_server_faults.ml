(* Fault injection against the socket-free server core: connections
   dying mid-BATCH, readers that stall until Block-mode backpressure
   trips, REGISTER with queries that fail analysis. The invariants: the
   runtime object stays usable, other tenants observe nothing, and the
   [server.connections] gauge settles back to its baseline. *)

open Ses_event
open Ses_core
open Ses_server

let schema = Result.get_ok (Schema.of_string "ID:int,L:string,V:int")

let take_lines rt id =
  List.filter (fun l -> l <> "")
    (String.split_on_char '\n' (Runtime.take_output rt id))

let send rt id line = Runtime.input rt id (line ^ "\n")

let q_join =
  "PATTERN (c) -> (d) WHERE c.L = 'C' AND d.L = 'D' AND c.ID = d.ID WITHIN 8"

let conn_gauge_last tl =
  match
    List.assoc_opt "server.connections"
      (Telemetry.snapshot tl).Telemetry.gauges
  with
  | Some g -> g.Telemetry.gauge_last
  | None -> Alcotest.fail "server.connections gauge missing"

(* A second tenant, sharing nothing with the faulty one: its whole
   exchange must come out byte-identical whether or not the faults
   happen. *)
let innocent_exchange rt =
  let id = Runtime.add_conn rt in
  List.iter (send rt id)
    [
      "AUTH innocent"; "SUBSCRIBE"; "REGISTER w " ^ q_join; "EVENT 1,C,5,2";
      "EVENT 1,D,6,4"; "UNREGISTER w"; "QUIT";
    ];
  let lines = take_lines rt id in
  (* the transport reaps the connection once BYE is flushed *)
  Runtime.close_conn rt id;
  lines

let expected_innocent =
  [
    "OK tenant innocent";
    "OK subscribed";
    "OK registered w";
    "RESULT innocent w {c/e1, d/e2}";
    "OK unregistered w matches=1";
    "BYE";
  ]

let test_kill_mid_batch () =
  let tl = Telemetry.create () in
  let cfg =
    { (Runtime.default_config ~schema) with Runtime.telemetry = Some tl }
  in
  let rt = Runtime.create cfg in
  let baseline = Runtime.connections rt in
  let victim = Runtime.add_conn rt in
  send rt victim "AUTH faulty";
  send rt victim ("REGISTER q " ^ q_join);
  send rt victim "BATCH 1000";
  Runtime.input rt victim "1,C,5,2\n1,D,6,4\n";
  (* the peer vanishes with 998 rows still owed *)
  Runtime.close_conn rt victim;
  Alcotest.(check int)
    "victim forgotten" baseline
    (Runtime.connections rt);
  (* the runtime keeps ticking and serving others *)
  Runtime.tick rt;
  Alcotest.(check (list string))
    "other tenant unaffected" expected_innocent (innocent_exchange rt);
  (* the incomplete BATCH body was never ingested (batches are atomic),
     and the tenant's query survives its connection: a new connection
     picks the tenant up, re-feeds the rows and finishes the work *)
  let heir = Runtime.add_conn rt in
  send rt heir "AUTH faulty";
  send rt heir "SUBSCRIBE";
  send rt heir "METRICS";
  let lines = take_lines rt heir in
  Alcotest.(check bool)
    "partial batch discarded" true
    (List.exists
       (fun l ->
         match Protocol.parse_reply l with
         | Ok (Protocol.Stats kvs) ->
             List.assoc "events" kvs = "0" && List.assoc "queries" kvs = "1"
         | _ -> false)
       lines);
  send rt heir "EVENT 1,C,5,2";
  send rt heir "EVENT 1,D,6,4";
  send rt heir "UNREGISTER q";
  let lines = take_lines rt heir in
  Alcotest.(check bool)
    "heir finishes the work" true
    (List.mem "RESULT faulty q {c/e1, d/e2}" lines
    && List.mem "OK unregistered q matches=1" lines);
  Runtime.close_conn rt heir;
  Alcotest.(check int)
    "gauge back to baseline" baseline (conn_gauge_last tl)

let test_stalled_reader_isolated () =
  let tl = Telemetry.create () in
  let cfg =
    {
      (Runtime.default_config ~schema) with
      Runtime.telemetry = Some tl;
      queue_capacity = 4;
      overflow = Runtime.Block;
    }
  in
  let rt = Runtime.create cfg in
  let staller = Runtime.add_conn rt in
  send rt staller "AUTH hog";
  send rt staller "BATCH 10";
  Runtime.input rt staller
    (String.concat ""
       (List.init 10 (fun i -> Printf.sprintf "%d,C,0,%d\n" i (i + 1))));
  Alcotest.(check bool)
    "hog is backpressured" false
    (Runtime.want_read rt staller);
  (* never drained for the hog: the other tenant still gets served *)
  Alcotest.(check (list string))
    "other tenant unaffected" expected_innocent (innocent_exchange rt);
  Alcotest.(check bool)
    "hog still backpressured" false
    (Runtime.want_read rt staller);
  Runtime.close_conn rt staller;
  Alcotest.(check int) "gauge settles" 0 (conn_gauge_last tl)

let test_register_failure_harmless () =
  let rt = Runtime.create (Runtime.default_config ~schema) in
  let id = Runtime.add_conn rt in
  send rt id "AUTH a";
  send rt id "REGISTER bad PATTERN (c) -> (";
  send rt id "REGISTER worse PATTERN (c) WHERE c.NO_SUCH = 1 WITHIN 5";
  (match take_lines rt id with
  | [ ok; e1; e2 ] ->
      Alcotest.(check string) "auth ok" "OK tenant a" ok;
      List.iter
        (fun l ->
          Alcotest.(check bool)
            ("is an ERR: " ^ l)
            true
            (String.length l > 4 && String.sub l 0 4 = "ERR "))
        [ e1; e2 ]
  | ls -> Alcotest.failf "expected 3 lines, got %d" (List.length ls));
  (* the same connection and tenant still work *)
  send rt id "SUBSCRIBE";
  send rt id ("REGISTER good " ^ q_join);
  send rt id "EVENT 1,C,5,2";
  send rt id "EVENT 1,D,6,4";
  send rt id "UNREGISTER good";
  let lines = take_lines rt id in
  Alcotest.(check bool)
    "recovers fully" true
    (List.mem "RESULT a good {c/e1, d/e2}" lines
    && List.mem "OK unregistered good matches=1" lines)

(* Shutdown after faults: every surviving connection gets BYE, queued
   work is flushed to subscribers first. *)
let test_shutdown_flushes () =
  let rt = Runtime.create (Runtime.default_config ~schema) in
  let id = Runtime.add_conn rt in
  send rt id "AUTH a";
  send rt id "SUBSCRIBE";
  send rt id ("REGISTER q " ^ q_join);
  send rt id "BATCH 2";
  Runtime.input rt id "1,C,5,2\n1,D,6,4\n";
  Runtime.shutdown rt;
  let lines = take_lines rt id in
  Alcotest.(check bool) "BYE sent" true (List.mem "BYE" lines);
  Alcotest.(check bool)
    "close-time match flushed" true
    (List.mem "MATCH a q {c/e1, d/e2}" lines);
  Alcotest.(check bool) "closing" true (Runtime.is_closing rt id)

let suite =
  [
    Alcotest.test_case "kill mid-BATCH" `Quick test_kill_mid_batch;
    Alcotest.test_case "stalled reader is isolated" `Quick
      test_stalled_reader_isolated;
    Alcotest.test_case "REGISTER failures are harmless" `Quick
      test_register_failure_harmless;
    Alcotest.test_case "shutdown flushes subscribers" `Quick
      test_shutdown_flushes;
  ]
