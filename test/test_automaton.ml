open Ses_pattern
open Ses_core
open Helpers

let q1 = query_q1

let id name = Option.get (Pattern.var_id q1 name)

let state names = Varset.of_list (List.map id names)

let find_transition a ~src ~var =
  List.filter
    (fun (tr : Automaton.transition) -> tr.var = var)
    (Automaton.outgoing a src)

(* Figure 3: the automaton of the single event set pattern {b}. *)
let test_figure3 () =
  let n2 = Automaton.of_set_pattern q1 1 in
  Alcotest.(check int) "two states" 2 (Automaton.n_states n2);
  Alcotest.(check int) "one transition" 1 (Automaton.n_transitions n2);
  Alcotest.(check bool) "start empty" true (Varset.is_empty (Automaton.start n2));
  Alcotest.(check bool) "accept {b}" true
    (Varset.equal (Automaton.accept n2) (Varset.singleton (id "b")));
  match Automaton.transitions n2 with
  | [ tr ] ->
      Alcotest.(check int) "binds b" (id "b") tr.var;
      (* In isolation, only b.L = 'B' and d.ID = b.ID with d from the
         preceding set V1 — the paper's Figure 3 lists just {b.L = 'B'}
         because it considers V2 in complete isolation, while our
         construction already knows V1 precedes; both the label condition
         and the cross-set join are evaluable at this transition. *)
      Alcotest.(check bool) "label condition present" true
        (List.exists
           (fun (c : Condition.t) ->
             Condition.is_constant c && c.var = id "b")
           tr.conds)
  | _ -> Alcotest.fail "expected exactly one transition"

(* Figure 4(a): the automaton of V1 = {c, p+, d} has 2^3 states and 16
   transitions (12 advancing + 4 loops at the states containing p+). *)
let test_figure4a () =
  let n1 = Automaton.of_set_pattern q1 0 in
  Alcotest.(check int) "8 states" 8 (Automaton.n_states n1);
  Alcotest.(check int) "16 transitions" 16 (Automaton.n_transitions n1);
  let loops =
    List.filter Automaton.is_loop (Automaton.transitions n1)
  in
  Alcotest.(check int) "4 loops" 4 (List.length loops);
  Alcotest.(check bool) "all loops bind p+" true
    (List.for_all (fun (tr : Automaton.transition) -> tr.var = id "p") loops)

(* Figure 5: the concatenated automaton for Q1. *)
let automaton = Automaton.of_pattern q1

let test_figure5_shape () =
  Alcotest.(check int) "9 states" 9 (Automaton.n_states automaton);
  Alcotest.(check int) "17 transitions" 17 (Automaton.n_transitions automaton);
  Alcotest.(check bool) "start" true (Varset.is_empty (Automaton.start automaton));
  Alcotest.(check bool) "accept" true
    (Varset.equal (Automaton.accept automaton) (state [ "c"; "p"; "d"; "b" ]));
  Alcotest.(check int) "6 paths" 6 (Automaton.n_paths automaton)

let cond_strings trs =
  List.sort String.compare
    (List.concat_map
       (fun (tr : Automaton.transition) ->
         List.map
           (Format.asprintf "%a"
              (Condition.pp (Pattern.schema q1) ~name_of:(Pattern.var_name q1)))
           tr.conds)
       trs)

(* Θ1 of Figure 4(a): from ∅, binding c carries only its label condition. *)
let test_theta_start () =
  let trs = find_transition automaton ~src:Varset.empty ~var:(id "c") in
  Alcotest.(check (list string)) "theta1" [ "c.L = 'C'" ] (cond_strings trs)

(* Θ4: from {c}, binding d carries the label condition and the ID join with
   the already-bound c. *)
let test_theta_with_context () =
  let trs = find_transition automaton ~src:(state [ "c" ]) ~var:(id "d") in
  Alcotest.(check (list string)) "theta4"
    [ "c.ID = d.ID"; "d.L = 'D'" ]
    (cond_strings trs)

(* From {p+}, binding d carries only d.L = 'D': the c.ID = d.ID join is not
   evaluable yet (the paper's Figure 4 lists it in Θ9, which contradicts
   its own construction rule in Sec. 4.2.1 — we follow the rule). *)
let test_theta_rule_over_figure () =
  let trs = find_transition automaton ~src:(state [ "p" ]) ~var:(id "d") in
  Alcotest.(check (list string)) "theta9 per the rule" [ "d.L = 'D'" ]
    (cond_strings trs)

(* Θ11: from {c, d}, binding p+ sees both c and d bound; only the c join
   exists in Θ. *)
let test_theta11 () =
  let trs = find_transition automaton ~src:(state [ "c"; "d" ]) ~var:(id "p") in
  Alcotest.(check (list string)) "theta11"
    [ "c.ID = p+.ID"; "p+.L = 'P'" ]
    (cond_strings trs)

(* Θ'17: entering the second event set pattern adds the time constraints
   v'.T < b.T for every v' in V1 (rendered b.T > v'.T by our printer). *)
let test_theta17_time_constraints () =
  let trs =
    find_transition automaton ~src:(state [ "c"; "p"; "d" ]) ~var:(id "b")
  in
  Alcotest.(check (list string)) "theta17"
    [
      "b.L = 'B'";
      "b.T > c.T";
      "b.T > d.T";
      "b.T > p+.T";
      "d.ID = b.ID";
    ]
    (cond_strings trs)

(* The loop at the accepting state of segment 1 survives concatenation:
   state {c,d,p+} keeps its p+ loop (Θ16 in Figure 5). *)
let test_loop_at_merged_state () =
  let loops =
    List.filter Automaton.is_loop
      (Automaton.outgoing automaton (state [ "c"; "p"; "d" ]))
  in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  (* The accepting state has no outgoing transitions: b is in the last
     set and carries no Kleene plus. *)
  Alcotest.(check int) "accept has no outgoing" 0
    (List.length (Automaton.outgoing automaton (Automaton.accept automaton)))

let test_concat_validation () =
  let n1 = Automaton.of_set_pattern q1 0 in
  Alcotest.check_raises "overlapping segments"
    (Invalid_argument "Automaton.concat: overlapping variable segments")
    (fun () -> ignore (Automaton.concat n1 n1));
  let other = Automaton.of_set_pattern query_q1_singleton 1 in
  Alcotest.check_raises "different patterns"
    (Invalid_argument "Automaton.concat: automata of different patterns")
    (fun () -> ignore (Automaton.concat n1 other))

let test_of_pattern_equals_manual_concat () =
  let n1 = Automaton.of_set_pattern q1 0 and n2 = Automaton.of_set_pattern q1 1 in
  let manual = Automaton.concat n1 n2 in
  Alcotest.(check int) "states" (Automaton.n_states automaton)
    (Automaton.n_states manual);
  Alcotest.(check int) "transitions" (Automaton.n_transitions automaton)
    (Automaton.n_transitions manual);
  Alcotest.(check bool) "accept" true
    (Varset.equal (Automaton.accept automaton) (Automaton.accept manual))

let test_three_segments () =
  let p =
    pattern ~within:50
      [ [ v "a" ]; [ v "b"; v "c" ]; [ v "d" ] ]
      ~where:[ label "a" "x" ]
  in
  let a = Automaton.of_pattern p in
  (* 2 + (4-1) + (2-1) states sharing the segment boundaries. *)
  Alcotest.(check int) "states" 6 (Automaton.n_states a);
  Alcotest.(check int) "paths" 2 (Automaton.n_paths a);
  Alcotest.(check int) "tau" 50 (Automaton.tau a)

let test_states_sorted_unique () =
  let states = Automaton.states automaton in
  Alcotest.(check int) "unique" (List.length states)
    (List.length (List.sort_uniq Varset.compare states));
  Alcotest.(check bool) "sorted" true
    (List.sort Varset.compare states = states)

let test_dot_export () =
  let dot = Dot.of_automaton automaton in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "accept doubly circled" true
    (contains "doublecircle" dot);
  Alcotest.(check bool) "mentions cp+db" true (contains "cp+db" dot);
  let plain = Dot.of_automaton ~conditions:false automaton in
  Alcotest.(check bool) "no conditions variant" true
    (not (contains "c.L" plain))

let suite =
  [
    Alcotest.test_case "Figure 3: single-variable set" `Quick test_figure3;
    Alcotest.test_case "Figure 4(a): V1 automaton" `Quick test_figure4a;
    Alcotest.test_case "Figure 5: shape" `Quick test_figure5_shape;
    Alcotest.test_case "conditions at start" `Quick test_theta_start;
    Alcotest.test_case "conditions with context" `Quick test_theta_with_context;
    Alcotest.test_case "construction rule vs Figure 4 typo" `Quick
      test_theta_rule_over_figure;
    Alcotest.test_case "conditions theta11" `Quick test_theta11;
    Alcotest.test_case "time constraints on concatenation" `Quick
      test_theta17_time_constraints;
    Alcotest.test_case "loops after concatenation" `Quick test_loop_at_merged_state;
    Alcotest.test_case "concat validation" `Quick test_concat_validation;
    Alcotest.test_case "of_pattern = manual concat" `Quick
      test_of_pattern_equals_manual_concat;
    Alcotest.test_case "three segments" `Quick test_three_segments;
    Alcotest.test_case "states sorted and unique" `Quick test_states_sorted_unique;
    Alcotest.test_case "dot export" `Quick test_dot_export;
  ]
