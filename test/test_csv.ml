open Ses_event
open Ses_store

let test_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape_field "a\nb")

let test_split_line () =
  let ok line = match Csv.split_line line with Ok f -> f | Error e -> Alcotest.fail e in
  Alcotest.(check (list string)) "plain" [ "a"; "b"; "c" ] (ok "a,b,c");
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ] (ok "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "a\"b" ] (ok "\"a\"\"b\"");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "" ] (ok ",,");
  Alcotest.(check bool) "unterminated" true
    (Result.is_error (Csv.split_line "\"abc"))

let test_header () =
  let schema =
    Schema.make_exn [ ("ID", Value.Tint); ("L", Value.Tstr); ("V", Value.Tfloat) ]
  in
  let header = Csv.header_of_schema schema in
  Alcotest.(check string) "header" "ID:int,L:string,V:float,T" header;
  (match Csv.schema_of_header header with
  | Ok s -> Alcotest.(check bool) "roundtrip" true (Schema.equal s schema)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "missing T" true
    (Result.is_error (Csv.schema_of_header "A:int,B:int"));
  Alcotest.(check bool) "unknown type" true
    (Result.is_error (Csv.schema_of_header "A:blob,T"));
  Alcotest.(check bool) "untyped cell" true
    (Result.is_error (Csv.schema_of_header "A,T"))

let sample =
  Relation.of_rows_exn Helpers.schema
    [
      ([| Value.Int 1; Value.Str "plain"; Value.Int 3 |], 0);
      ([| Value.Int 2; Value.Str "with,comma"; Value.Int (-4) |], 5);
      ([| Value.Int 3; Value.Str "with\"quote"; Value.Int 0 |], 9);
      ([| Value.Int 4; Value.Str "multi\nline"; Value.Int 7 |], 12);
    ]

let relations_equal a b =
  Relation.cardinality a = Relation.cardinality b
  && Schema.equal (Relation.schema a) (Relation.schema b)
  && List.for_all2
       (fun x y ->
         Event.ts x = Event.ts y
         && Array.for_all2 Value.equal x.Event.payload y.Event.payload)
       (Array.to_list (Relation.events a))
       (Array.to_list (Relation.events b))

let test_roundtrip_string () =
  match Csv.of_string (Csv.to_string sample) with
  | Ok r -> Alcotest.(check bool) "equal" true (relations_equal sample r)
  | Error e -> Alcotest.fail e

let test_roundtrip_floats () =
  let schema = Schema.make_exn [ ("X", Value.Tfloat) ] in
  let r =
    Relation.of_rows_exn schema
      [
        ([| Value.Float 2.5 |], 0);
        ([| Value.Float (-0.125) |], 1);
        ([| Value.Float 1e12 |], 2);
      ]
  in
  match Csv.of_string (Csv.to_string r) with
  | Ok r' -> Alcotest.(check bool) "floats survive" true (relations_equal r r')
  | Error e -> Alcotest.fail e

let test_roundtrip_file () =
  let path = Filename.temp_file "ses_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Csv.save path sample with Ok () -> () | Error e -> Alcotest.fail e);
      match Csv.load path with
      | Ok r -> Alcotest.(check bool) "file roundtrip" true (relations_equal sample r)
      | Error e -> Alcotest.fail e)

let test_bad_rows () =
  Alcotest.(check bool) "empty input" true (Result.is_error (Csv.of_string ""));
  Alcotest.(check bool) "arity" true
    (Result.is_error (Csv.of_string "A:int,T\n1,2,3\n"));
  Alcotest.(check bool) "bad timestamp" true
    (Result.is_error (Csv.of_string "A:int,T\n1,xyz\n"));
  Alcotest.(check bool) "bad int" true
    (Result.is_error (Csv.of_string "A:int,T\nfoo,3\n"))

let test_empty_relation () =
  let r = Relation.of_rows_exn Helpers.schema [] in
  match Csv.of_string (Csv.to_string r) with
  | Ok r' -> Alcotest.(check int) "no events" 0 (Relation.cardinality r')
  | Error e -> Alcotest.fail e

let csv_roundtrip_random =
  QCheck.Test.make ~count:50 ~name:"csv roundtrip (random relations)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Ses_gen.Prng.create (Int64.of_int seed) in
      let r =
        Ses_gen.Random_workload.relation rng
          Ses_gen.Random_workload.default_relation
      in
      match Csv.of_string (Csv.to_string r) with
      | Ok r' -> relations_equal r r'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "escape_field" `Quick test_escape;
    Alcotest.test_case "split_line" `Quick test_split_line;
    Alcotest.test_case "header" `Quick test_header;
    Alcotest.test_case "roundtrip via string" `Quick test_roundtrip_string;
    Alcotest.test_case "roundtrip floats" `Quick test_roundtrip_floats;
    Alcotest.test_case "roundtrip via file" `Quick test_roundtrip_file;
    Alcotest.test_case "bad rows" `Quick test_bad_rows;
    Alcotest.test_case "empty relation" `Quick test_empty_relation;
    QCheck_alcotest.to_alcotest csv_roundtrip_random;
  ]
