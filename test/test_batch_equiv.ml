(* Batch-equivalence properties: for every execution strategy,
   [Executor.feed_batch] must be observationally identical to feeding
   the same events one at a time — same finalized matches (in order),
   same raw emissions (as a multiset), and the same layout-invariant
   metrics — at every chunking of the input, including the degenerate
   batch of one, an awkward prime that never divides the input evenly,
   and a batch larger than any test relation. The deterministic fixture
   pins the two semantically delicate spots: a negation kill and a
   τ-expiry landing exactly on a batch boundary. *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_gen
open Helpers

let () = Ses_baseline.Brute_force.register ()

let batch_grid = [ 1; 2; 7; 64; 4096 ]

let canon substs = List.map Substitution.canonical substs
let canon_sorted substs =
  List.sort Substitution.compare_canonical (canon substs)

(* Same two layout-variant counters as the parallel-equivalence suite:
   the batched loop pops τ-expired prefixes once per batch, so both the
   moment an expiry is counted and the sampled population peak can
   legitimately differ from the per-event schedule. Everything else
   must agree exactly. *)
let invariant (m : Metrics.snapshot) =
  {
    m with
    Metrics.max_simultaneous_instances = 0;
    Metrics.instances_expired = 0;
  }

type observed = {
  o_matches : (int * int) list list;
  o_raw : (int * int) list list;
  o_metrics : Metrics.snapshot;
}

let events_of r = Array.of_seq (Relation.to_seq r)

(* Run [strategy] over [r], delivering the input per event when
   [batch = None] and in [Array.sub] chunks of the given size
   otherwise, and collect everything equivalence is judged on. *)
let observe ?(domains = 1) ~batch strategy pat r =
  let options = { Engine.default_options with Engine.domains } in
  let exec = Executor.create ~options strategy (Automaton.of_pattern pat) in
  let events = events_of r in
  (match batch with
  | None -> Array.iter (fun e -> ignore (Executor.feed exec e)) events
  | Some b ->
      let n = Array.length events in
      let i = ref 0 in
      while !i < n do
        let len = min b (n - !i) in
        ignore (Executor.feed_batch exec (Array.sub events !i len));
        i := !i + len
      done);
  ignore (Executor.close exec);
  let raw = Executor.emitted exec in
  {
    o_matches = canon (Substitution.finalize pat raw);
    o_raw = canon_sorted raw;
    o_metrics = Executor.metrics exec;
  }

let equivalent reference batched =
  reference.o_matches = batched.o_matches
  && reference.o_raw = batched.o_raw
  && invariant reference.o_metrics = invariant batched.o_metrics

(* The random workload: group variables and τ-expiry are exercised by
   the default spec; the naive oracle is excluded here (its exhaustive
   enumeration is exponential in the 40-event relation) and covered by
   the deterministic fixture below instead. *)
let strategies = [ `Plain; `Partitioned; `Auto; `Brute_force ]

let with_workload seed f =
  let rng = Prng.create (Int64.of_int seed) in
  let pat = Random_workload.pattern rng Random_workload.default_pattern in
  let r = Random_workload.relation rng Random_workload.default_relation in
  f pat r

let batched_equals_per_event =
  QCheck.Test.make ~count:40
    ~name:"feed_batch = per-event feed (all strategies, all chunkings)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_workload seed (fun pat r ->
          List.for_all
            (fun strategy ->
              let reference = observe ~batch:None strategy pat r in
              List.for_all
                (fun b ->
                  equivalent reference (observe ~batch:(Some b) strategy pat r))
                batch_grid)
            strategies))

(* The sharded executor consumes batches through the domain-pool
   batcher (per-key sub-batches over the worker queues), so it gets its
   own property, across worker counts. Shard-merged metrics follow the
   parallel-equivalence contract, so only outputs are compared here. *)
let sharded_batched_equals_per_event =
  QCheck.Test.make ~count:25
    ~name:"sharded feed_batch = per-event feed (1/2/4 domains)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let pat =
        Random_workload.pattern rng
          {
            Random_workload.default_pattern with
            Random_workload.p_id_join = 1.0;
          }
      in
      let r = Random_workload.relation rng Random_workload.default_relation in
      List.for_all
        (fun domains ->
          let reference =
            observe ~domains ~batch:None `Par_partitioned pat r
          in
          List.for_all
            (fun b ->
              let batched =
                observe ~domains ~batch:(Some b) `Par_partitioned pat r
              in
              reference.o_matches = batched.o_matches
              && reference.o_raw = batched.o_raw)
            batch_grid)
        [ 1; 2; 4 ])

(* Deterministic fixture: an ID-pinned negation kill (id 2), a match
   completing before its kill event arrives (id 1), and a τ-expiry that
   the batch-of-7 boundary lands right on — events 1..7 arrive in one
   chunk, so id 4's first [a] (ts 3) is popped as expired only by the
   next chunk's sweep (its [b] at ts 30 is past τ = 20) while its
   second [a] (ts 12) still matches. *)
let neg_pattern =
  Pattern.make_full_exn ~schema:Helpers.schema
    ~sets:[ [ v "a" ]; [ v "b" ] ]
    ~negations:[ (0, v "x") ]
    ~where:
      ([ label "a" "a"; label "b" "b"; label "x" "x" ]
      @ Pattern.Spec.
          [
            fields "a" "ID" Predicate.Eq "b" "ID";
            fields "x" "ID" Predicate.Eq "a" "ID";
          ])
    ~within:20

let neg_relation =
  rel
    [
      (1, "a", 0, 0);
      (2, "a", 0, 1);
      (3, "a", 0, 2);
      (4, "a", 0, 3);
      (2, "x", 0, 5);
      (1, "b", 0, 8);
      (2, "b", 0, 9);
      (3, "b", 0, 10);
      (4, "a", 0, 12);
      (1, "x", 0, 15);
      (4, "b", 0, 30);
    ]

let test_negation_and_expiry_at_boundaries () =
  let expected =
    [ [ ("a", 1); ("b", 6) ]; [ ("a", 3); ("b", 8) ]; [ ("a", 9); ("b", 11) ] ]
  in
  List.iter
    (fun strategy ->
      let name = Executor.strategy_name strategy in
      let reference = observe ~batch:None strategy neg_pattern neg_relation in
      let repr canonical =
        List.sort Helpers.compare_name_seq
          (List.map
             (fun (var, seq) -> (Pattern.var_name neg_pattern var, seq + 1))
             canonical)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s per-event matches" name)
        true
        (List.map repr reference.o_matches = expected);
      List.iter
        (fun b ->
          let batched =
            observe ~batch:(Some b) strategy neg_pattern neg_relation
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s at batch %d" name b)
            true
            (equivalent reference batched))
        batch_grid)
    (`Naive :: strategies);
  List.iter
    (fun domains ->
      let reference =
        observe ~domains ~batch:None `Par_partitioned neg_pattern neg_relation
      in
      List.iter
        (fun b ->
          let batched =
            observe ~domains ~batch:(Some b) `Par_partitioned neg_pattern
              neg_relation
          in
          Alcotest.(check bool)
            (Printf.sprintf "sharded at %d domains, batch %d" domains b)
            true
            (reference.o_matches = batched.o_matches
            && reference.o_raw = batched.o_raw))
        batch_grid)
    [ 2; 4 ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ batched_equals_per_event; sharded_batched_equals_per_event ]
  @ [
      Alcotest.test_case "negation + expiry at batch boundaries" `Quick
        test_negation_and_expiry_at_boundaries;
    ]
