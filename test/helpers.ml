(* Shared builders for the test suites. *)

open Ses_event
open Ses_pattern

(* A minimal schema used by most algorithmic tests: an entity id, a label
   and an integer value. *)
let schema =
  Schema.make_exn
    [ ("ID", Value.Tint); ("L", Value.Tstr); ("V", Value.Tint) ]

(* [rel rows] builds a relation over {!schema} from (id, label, value, ts)
   quadruples. *)
let rel rows =
  Relation.of_rows_exn schema
    (List.map
       (fun (id, l, v, ts) ->
         ([| Value.Int id; Value.Str l; Value.Int v |], ts))
       rows)

(* [rel_l rows] builds from (label, ts) pairs with id = 1 and v = 0. *)
let rel_l rows = rel (List.map (fun (l, ts) -> (1, l, 0, ts)) rows)

let v name = Variable.singleton name

let vplus name = Variable.group name

let label name l = Pattern.Spec.const name "L" Predicate.Eq (Value.Str l)

let pattern ?(where = []) ~within sets =
  Pattern.make_exn ~schema ~sets ~where ~within

(* Canonical rendering of a substitution for assertions: variable names
   paired with 1-based event numbers, sorted. *)
let compare_name_seq (n, s) (n', s') =
  let c = String.compare n n' in
  if c <> 0 then c else Int.compare s s'

let subst_repr p s =
  List.sort compare_name_seq
    (List.map
       (fun (var, seq) -> (Pattern.var_name p var, seq + 1))
       (Ses_core.Substitution.canonical s))

let substs_repr p ss =
  List.sort (List.compare compare_name_seq) (List.map (subst_repr p) ss)

let check_substs p expected actual =
  Alcotest.(check (list (list (pair string int))))
    "substitutions"
    (List.sort (List.compare compare_name_seq) expected)
    (substs_repr p actual)

let run ?options p relation =
  Ses_core.Engine.run_relation ?options (Ses_core.Automaton.of_pattern p)
    relation

(* The paper's Figure 1 relation and Query Q1, shared by several suites. *)
let chemo_schema =
  Schema.make_exn
    [
      ("ID", Value.Tint);
      ("L", Value.Tstr);
      ("V", Value.Tfloat);
      ("U", Value.Tstr);
    ]

let figure_1 =
  let row id l value u day hour =
    ( [| Value.Int id; Value.Str l; Value.Float value; Value.Str u |],
      (24 * day) + hour )
  in
  Relation.of_rows_exn chemo_schema
    [
      row 1 "C" 1672.5 "mg" 0 9;
      row 1 "B" 0. "WHO-Tox" 0 10;
      row 1 "D" 84. "mgl" 0 11;
      row 1 "P" 111.5 "mg" 1 9;
      row 2 "B" 0. "WHO-Tox" 2 9;
      row 2 "P" 88. "mg" 2 10;
      row 2 "D" 84. "mgl" 2 11;
      row 2 "C" 1320. "mg" 3 9;
      row 1 "P" 111.5 "mg" 3 10;
      row 2 "P" 88. "mg" 3 11;
      row 2 "P" 88. "mg" 4 9;
      row 1 "B" 1. "WHO-Tox" 9 9;
      row 2 "B" 1. "WHO-Tox" 10 9;
      row 2 "B" 0. "WHO-Tox" 11 9;
    ]

let clabel name l = Pattern.Spec.const name "L" Predicate.Eq (Value.Str l)

let query_q1 =
  Pattern.make_exn ~schema:chemo_schema
    ~sets:[ [ v "c"; vplus "p"; v "d" ]; [ v "b" ] ]
    ~where:
      ([ clabel "c" "C"; clabel "p" "P"; clabel "d" "D"; clabel "b" "B" ]
      @ Pattern.Spec.
          [
            fields "c" "ID" Predicate.Eq "p" "ID";
            fields "c" "ID" Predicate.Eq "d" "ID";
            fields "d" "ID" Predicate.Eq "b" "ID";
          ])
    ~within:264

(* Q1 with p as a singleton variable — the version of Example 11 that the
   brute force handles exactly. *)
let query_q1_singleton =
  Pattern.make_exn ~schema:chemo_schema
    ~sets:[ [ v "c"; v "p"; v "d" ]; [ v "b" ] ]
    ~where:
      ([ clabel "c" "C"; clabel "p" "P"; clabel "d" "D"; clabel "b" "B" ]
      @ Pattern.Spec.
          [
            fields "c" "ID" Predicate.Eq "p" "ID";
            fields "c" "ID" Predicate.Eq "d" "ID";
            fields "d" "ID" Predicate.Eq "b" "ID";
          ])
    ~within:264
