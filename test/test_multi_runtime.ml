(* Runtime query add/remove on a live {!Multi}. The load-bearing
   property (the server depends on it): after [Multi.unregister], the
   surviving queries' matches, raw emissions and metrics — including
   [instances_expired] — are exactly those of a fresh Multi built
   without the removed query and fed the same stream. Checked on the
   shared backend (owner-mask retirement inside merged groups, alias
   splitting, single-unit close) and the independent backend, over a
   deterministic merge-point fixture and random workloads, with the
   removal point swept across the stream. *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_gen

let canon substs = List.map Substitution.canonical substs
let canon_sorted substs =
  List.sort Substitution.compare_canonical (canon substs)

type observed = {
  o_matches : (int * int) list list;
  o_raw : (int * int) list list;
  o_metrics : Metrics.snapshot;
}

let observe_outcomes outs =
  List.map
    (fun (name, (o : Engine.outcome)) ->
      ( name,
        {
          o_matches = canon o.Engine.matches;
          o_raw = canon_sorted o.Engine.raw;
          o_metrics = o.Engine.metrics;
        } ))
    outs

(* Feed [events] one at a time, removing [victim] after [at] events. *)
let run_with_unregister ?(options = Engine.default_options) ~shared ~victim
    ~at queries events =
  let t = Multi.create_mixed ~options ~shared queries in
  let removed = ref None in
  Array.iteri
    (fun i e ->
      if i = at then removed := Some (Multi.unregister t victim);
      ignore (Multi.feed t e))
    events;
  if !removed = None then removed := Some (Multi.unregister t victim);
  ignore (Multi.close t);
  (observe_outcomes (Multi.outcomes t), Option.get !removed)

let run_plain ?(options = Engine.default_options) ~shared queries events =
  let t = Multi.create_mixed ~options ~shared queries in
  Array.iter (fun e -> ignore (Multi.feed t e)) events;
  ignore (Multi.close t);
  observe_outcomes (Multi.outcomes t)

let check_observed name expected got =
  Alcotest.(check int)
    (name ^ ": query count") (List.length expected) (List.length got);
  List.iter2
    (fun (n1, a) (n2, b) ->
      Alcotest.(check string) (name ^ ": name") n1 n2;
      Alcotest.(check bool) (name ^ ": " ^ n1 ^ " matches") true
        (a.o_matches = b.o_matches);
      Alcotest.(check bool) (name ^ ": " ^ n1 ^ " raw") true
        (a.o_raw = b.o_raw);
      Alcotest.(check bool) (name ^ ": " ^ n1 ^ " metrics") true
        (a.o_metrics = b.o_metrics))
    expected got

(* ---- deterministic merge-point fixture (as the shared-equiv suite) ---- *)

let schema = Random_workload.schema
let v = Variable.singleton
let label name l = Pattern.Spec.const name "L" Predicate.Eq (Value.Str l)

let mk ?(negations = []) ~within sets where =
  Automaton.of_pattern
    (Pattern.make_full_exn ~schema ~sets ~negations ~where ~within)

let fixture_queries () =
  let prefix = [ [ v "p" ]; [ v "q" ] ] in
  let pw = [ label "p" "a"; label "q" "b" ] in
  let ender = mk ~within:12 prefix pw in
  let cont_c = mk ~within:12 (prefix @ [ [ v "r" ] ]) (pw @ [ label "r" "c" ]) in
  let cont_d = mk ~within:12 (prefix @ [ [ v "r" ] ]) (pw @ [ label "r" "d" ]) in
  let neg_merge =
    mk ~within:12 ~negations:[ (1, v "y") ]
      (prefix @ [ [ v "r" ] ])
      (pw @ [ label "r" "d"; label "y" "e" ])
  in
  let solo =
    mk ~within:12 [ [ v "m" ]; [ v "n" ] ] [ label "m" "c"; label "n" "d" ]
  in
  [
    ("pfx-end", ender, `Plain);
    ("pfx-c", cont_c, `Plain);
    ("pfx-d", cont_d, `Plain);
    ("pfx-neg-merge", neg_merge, `Plain);
    ("solo", solo, `Plain);
    ("pfx-c-alias", cont_c, `Plain);
  ]

let fixture_events =
  Array.of_seq
    (Relation.to_seq
       (Relation.of_rows_exn schema
          (List.map
             (fun (l, ts) -> ([| Value.Int 1; Value.Str l; Value.Int 0 |], ts))
             [
               ("a", 0);
               ("e", 1);
               ("b", 2);
               ("e", 3);
               ("c", 4);
               ("d", 5);
               ("a", 7);
               ("b", 8);
               ("c", 10);
               ("a", 40);
               ("b", 41);
               ("e", 42);
               ("d", 44);
               ("b", 100);
             ])))

let fixture_victims =
  [ "pfx-end"; "pfx-c"; "pfx-d"; "pfx-neg-merge"; "solo"; "pfx-c-alias" ]

let without victim queries =
  List.filter (fun (n, _, _) -> n <> victim) queries

let test_fixture_survivors shared () =
  List.iter
    (fun victim ->
      List.iter
        (fun at ->
          let queries = fixture_queries () in
          let live, _ =
            run_with_unregister ~shared ~victim ~at queries fixture_events
          in
          let fresh = run_plain ~shared (without victim queries) fixture_events in
          check_observed
            (Printf.sprintf "victim %s at %d (shared=%b)" victim at shared)
            fresh live)
        (* before anything; mid-prefix instances alive; after expiries *)
        [ 0; 8; 12 ])
    fixture_victims

let test_fixture_expiry_exercised () =
  (* The equality above only proves something about [instances_expired]
     if survivors actually expire instances after the removal point. *)
  let queries = fixture_queries () in
  let live, _ =
    run_with_unregister ~shared:true ~victim:"pfx-c" ~at:8 queries
      fixture_events
  in
  let m = (List.assoc "pfx-end" live).o_metrics in
  Alcotest.(check bool) "survivor expiries" true
    (m.Metrics.instances_expired >= 1)

let test_retiree_outcome () =
  (* The removed query's returned outcome = running it alone over the
     prefix of the stream fed so far, closed there. *)
  List.iter
    (fun victim ->
      List.iter
        (fun at ->
          let queries = fixture_queries () in
          let _, out =
            run_with_unregister ~shared:true ~victim ~at queries fixture_events
          in
          let offline =
            Multi.run
              (List.filter_map
                 (fun (n, a, _) -> if n = victim then Some (n, a) else None)
                 queries)
              (Array.to_seq (Array.sub fixture_events 0 at))
          in
          let expected = List.assoc victim offline in
          Alcotest.(check bool)
            (Printf.sprintf "retiree %s at %d matches" victim at)
            true
            (canon expected.Engine.matches = canon out.Engine.matches);
          Alcotest.(check bool)
            (Printf.sprintf "retiree %s at %d raw" victim at)
            true
            (canon_sorted expected.Engine.raw = canon_sorted out.Engine.raw))
        [ 0; 8; 12 ])
    (* aliased registrations excepted: the sibling keeps the shared
       executor open, so the retiree's raw lacks the close-time flush *)
    [ "pfx-end"; "pfx-d"; "pfx-neg-merge"; "solo" ]

let test_register_before_feed_shares () =
  (* Registering before the first event rebuilds the plan: same results
     and the same sharing as creation-time registration. *)
  let queries = fixture_queries () in
  let t = Multi.create_mixed [ List.hd queries ] in
  List.iter (Multi.register t) (List.tl queries);
  Array.iter (fun e -> ignore (Multi.feed t e)) fixture_events;
  ignore (Multi.close t);
  let live = observe_outcomes (Multi.outcomes t) in
  let fresh = run_plain ~shared:true queries fixture_events in
  check_observed "register-then-feed" fresh live;
  match Multi.shared_stats t with
  | [ stats ] ->
      Alcotest.(check bool) "merged after rebuild" true
        (stats.Shared_plan.st_merged_groups >= 1);
      Alcotest.(check int) "alias after rebuild" 1
        stats.Shared_plan.st_aliased_queries
  | l -> Alcotest.failf "expected one plan, got %d" (List.length l)

let test_register_mid_stream_extra () =
  (* A query registered after events have been fed must not observe
     them: it runs beside the plan and equals an offline run over the
     suffix. *)
  let at = 6 in
  let queries = fixture_queries () in
  let t = Multi.create_mixed [ List.hd queries ] in
  let late_name, late_auto, late_strat = List.nth queries 1 in
  Array.iteri
    (fun i e ->
      if i = at then Multi.register t (late_name, late_auto, late_strat);
      ignore (Multi.feed t e))
    fixture_events;
  ignore (Multi.close t);
  let outs = Multi.outcomes t in
  Alcotest.(check (list string))
    "registration order kept"
    [ "pfx-end"; late_name ]
    (List.map fst outs);
  let suffix = Array.sub fixture_events at (Array.length fixture_events - at) in
  let offline =
    List.assoc late_name
      (Multi.run [ (late_name, late_auto) ] (Array.to_seq suffix))
  in
  let got = List.assoc late_name outs in
  Alcotest.(check bool) "late query sees only the suffix" true
    (canon offline.Engine.matches = canon got.Engine.matches
    && canon_sorted offline.Engine.raw = canon_sorted got.Engine.raw);
  (* ... and can itself be re-removed. *)
  let t2 = Multi.create_mixed [ List.hd queries ] in
  ignore (Multi.feed t2 fixture_events.(0));
  Multi.register t2 (late_name, late_auto, late_strat);
  ignore (Multi.unregister t2 late_name);
  Alcotest.(check (list string)) "extra removed" [ "pfx-end" ] (Multi.names t2);
  ignore (Multi.close t2)

let test_invalid_arguments () =
  let queries = fixture_queries () in
  let t = Multi.create_mixed queries in
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Multi.unregister: unknown query nope") (fun () ->
      ignore (Multi.unregister t "nope"));
  Alcotest.check_raises "duplicate register"
    (Invalid_argument "Multi.register: duplicate query name solo") (fun () ->
      Multi.register t ("solo", (fun (_, a, _) -> a) (List.hd queries), `Plain));
  Alcotest.check_raises "empty register"
    (Invalid_argument "Multi.register: empty query name") (fun () ->
      Multi.register t ("", (fun (_, a, _) -> a) (List.hd queries), `Plain));
  ignore (Multi.close t);
  (* a name freed by unregister can be reused *)
  let t2 = Multi.create_mixed queries in
  ignore (Multi.unregister t2 "solo");
  Multi.register t2 ("solo", (fun (_, a, _) -> a) (List.hd queries), `Plain);
  Alcotest.(check int) "reuse after unregister" (List.length queries)
    (List.length (Multi.names t2));
  ignore (Multi.close t2);
  let par_options = { Engine.default_options with Engine.domains = 2 } in
  let tp = Multi.create_mixed ~options:par_options queries in
  Alcotest.check_raises "parallel register"
    (Invalid_argument
       "Multi.register: domain-parallel query sets are fixed at creation")
    (fun () ->
      Multi.register tp ("extra", (fun (_, a, _) -> a) (List.hd queries), `Plain));
  Alcotest.check_raises "parallel unregister"
    (Invalid_argument
       "Multi.unregister: domain-parallel query sets are fixed at creation")
    (fun () -> ignore (Multi.unregister tp "solo"));
  ignore (Multi.close tp)

(* ---- random differential ---- *)

let random_queries rng =
  let labels = [ "a"; "b"; "c"; "d" ] in
  let l0 = Prng.pick rng labels in
  let within = 6 + Prng.int rng 10 in
  let family_size = 2 + Prng.int rng 3 in
  let member i =
    let cont = Prng.pick rng labels in
    let sets = [ [ v "p" ]; [ v "s" ] ] in
    let where = [ label "p" l0; label "s" cont ] in
    if Prng.chance rng 0.3 then
      ( Printf.sprintf "fam%d" i,
        mk ~negations:[ (0, v "x") ] ~within sets
          (where @ [ label "x" (Prng.pick rng labels) ]),
        `Plain )
    else (Printf.sprintf "fam%d" i, mk ~within sets where, `Plain)
  in
  let family = List.init family_size member in
  let ender = ("fam-end", mk ~within [ [ v "p" ] ] [ label "p" l0 ], `Plain) in
  let _, a0, s0 = List.hd family in
  family @ [ ender; ("fam0-alias", a0, s0) ]

let unregister_equals_fresh =
  QCheck.Test.make ~count:30
    ~name:"unregister: survivors = fresh multi without the victim"
    QCheck.(triple (int_bound 100_000) (int_bound 1000) bool)
    (fun (seed, pick, shared) ->
      let rng = Prng.create (Int64.of_int seed) in
      let queries = random_queries rng in
      let events =
        Array.of_seq
          (Relation.to_seq
             (Random_workload.relation rng Random_workload.default_relation))
      in
      let victim =
        let n, _, _ = List.nth queries (pick mod List.length queries) in
        n
      in
      let at = Prng.int rng (Array.length events + 1) in
      let live, _ = run_with_unregister ~shared ~victim ~at queries events in
      let fresh = run_plain ~shared (without victim queries) events in
      List.length live = List.length fresh
      && List.for_all2
           (fun (n1, a) (n2, b) ->
             n1 = n2
             && a.o_matches = b.o_matches
             && a.o_raw = b.o_raw
             && a.o_metrics = b.o_metrics)
           fresh live)

let suite =
  List.map QCheck_alcotest.to_alcotest [ unregister_equals_fresh ]
  @ [
      Alcotest.test_case "fixture: survivors = fresh (shared)" `Quick
        (test_fixture_survivors true);
      Alcotest.test_case "fixture: survivors = fresh (independent)" `Quick
        (test_fixture_survivors false);
      Alcotest.test_case "fixture: survivor expiries exercised" `Quick
        test_fixture_expiry_exercised;
      Alcotest.test_case "retiree outcome = offline prefix run" `Quick
        test_retiree_outcome;
      Alcotest.test_case "register before feed rebuilds the plan" `Quick
        test_register_before_feed_shares;
      Alcotest.test_case "register mid-stream runs beside the plan" `Quick
        test_register_mid_stream_extra;
      Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
    ]
