open Ses_event

let test_type_of () =
  Alcotest.(check bool) "int" true (Value.type_of (Value.Int 3) = Value.Tint);
  Alcotest.(check bool) "float" true
    (Value.type_of (Value.Float 3.) = Value.Tfloat);
  Alcotest.(check bool) "str" true (Value.type_of (Value.Str "x") = Value.Tstr)

let test_compat () =
  Alcotest.(check bool) "int/float" true
    (Value.ty_compatible Value.Tint Value.Tfloat);
  Alcotest.(check bool) "float/int" true
    (Value.ty_compatible Value.Tfloat Value.Tint);
  Alcotest.(check bool) "str/str" true
    (Value.ty_compatible Value.Tstr Value.Tstr);
  Alcotest.(check bool) "int/str" false
    (Value.ty_compatible Value.Tint Value.Tstr);
  Alcotest.(check bool) "str/float" false
    (Value.ty_compatible Value.Tstr Value.Tfloat)

let test_compare () =
  Alcotest.(check int) "int eq" 0 (Value.compare (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "int lt" true
    (Value.compare (Value.Int 2) (Value.Int 3) < 0);
  Alcotest.(check int) "int/float coercion" 0
    (Value.compare (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "float/int coercion" true
    (Value.compare (Value.Float 2.5) (Value.Int 3) < 0);
  Alcotest.(check bool) "strings" true
    (Value.compare (Value.Str "abc") (Value.Str "abd") < 0);
  Alcotest.(check bool) "equal via coercion" true
    (Value.equal (Value.Float 4.0) (Value.Int 4))

let test_numeric () =
  Alcotest.(check (option (float 0.0))) "int" (Some 3.0)
    (Value.numeric (Value.Int 3));
  Alcotest.(check (option (float 0.0))) "float" (Some 2.5)
    (Value.numeric (Value.Float 2.5));
  Alcotest.(check (option (float 0.0))) "str" None
    (Value.numeric (Value.Str "x"))

let test_to_string () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "negative int" "-7" (Value.to_string (Value.Int (-7)));
  Alcotest.(check string) "float keeps point" "3." (Value.to_string (Value.Float 3.0));
  Alcotest.(check string) "float fraction" "3.5" (Value.to_string (Value.Float 3.5));
  Alcotest.(check string) "string quoted" "'abc'" (Value.to_string (Value.Str "abc"));
  Alcotest.(check string) "quote doubling" "'it''s'"
    (Value.to_string (Value.Str "it's"))

let test_of_string () =
  let ok = function Ok v -> v | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "int" true
    (Value.equal (Value.Int 5) (ok (Value.of_string Value.Tint " 5 ")));
  Alcotest.(check bool) "float" true
    (Value.equal (Value.Float 2.5) (ok (Value.of_string Value.Tfloat "2.5")));
  Alcotest.(check bool) "string raw" true
    (Value.equal (Value.Str "a b") (ok (Value.of_string Value.Tstr "a b")));
  Alcotest.(check bool) "bad int" true
    (Result.is_error (Value.of_string Value.Tint "abc"));
  Alcotest.(check bool) "bad float" true
    (Result.is_error (Value.of_string Value.Tfloat "x.y"))

let test_pp () =
  Alcotest.(check string) "pp string" "'hi'"
    (Format.asprintf "%a" Value.pp (Value.Str "hi"));
  Alcotest.(check string) "pp float" "2.5"
    (Format.asprintf "%a" Value.pp (Value.Float 2.5));
  Alcotest.(check string) "pp ty" "int"
    (Format.asprintf "%a" Value.pp_ty Value.Tint)

let compare_total_order =
  QCheck.Test.make ~count:200 ~name:"Value.compare is antisymmetric"
    QCheck.(
      pair
        (oneof [ map (fun i -> Value.Int i) small_int;
                 map (fun f -> Value.Float f) (float_bound_exclusive 100.);
                 map (fun s -> Value.Str s) small_string ])
        (oneof [ map (fun i -> Value.Int i) small_int;
                 map (fun f -> Value.Float f) (float_bound_exclusive 100.);
                 map (fun s -> Value.Str s) small_string ]))
    (fun (a, b) ->
      Int.compare (Value.compare a b) 0 = Int.compare 0 (Value.compare b a))

let suite =
  [
    Alcotest.test_case "type_of" `Quick test_type_of;
    Alcotest.test_case "ty_compatible" `Quick test_compat;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "numeric" `Quick test_numeric;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "pp" `Quick test_pp;
    QCheck_alcotest.to_alcotest compare_total_order;
  ]
