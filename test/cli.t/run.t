End-to-end CLI pipeline: generate a seeded workload, inspect it, match the
running example's query, and analyze the pattern.

  $ ../../bin/ses_cli.exe generate --kind chemo --patients 2 --seed 7 -o chemo.csv
  wrote 264 events to chemo.csv

  $ ../../bin/ses_cli.exe window -d chemo.csv --tau 264
  264 events over 1998 time units, W(tau=264) = 48

  $ cat > q1.ses <<'QUERY'
  > PATTERN (c, p+, d) -> (b)
  > WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
  >   AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
  > WITHIN 11 DAYS
  > QUERY

  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1.ses | head -3
  pattern: (<{c, p+, d}, {b}>, {c.L = 'C', p+.L = 'P', d.L = 'D', b.L = 'B', c.ID = p+.ID, c.ID = d.ID, d.ID = b.ID}, 264)
  matches: 8
    {d/e9, c/e13, p+/e14, p+/e18, p+/e21, p+/e30, p+/e33, b/e42}

Several -q patterns run together over one pass of the relation through
the shared multi-query plan; queries agreeing on a leading run of event
sets share one instance population, and byte-identical registrations
collapse to one executor:

  $ ../../bin/ses_cli.exe match -d chemo.csv --strategy plain \
  >   -q "PATTERN (c) -> (d) WHERE c.L = 'C' AND d.L = 'D' WITHIN 11 DAYS" \
  >   -q "PATTERN (c) -> (b) WHERE c.L = 'C' AND b.L = 'B' WITHIN 11 DAYS" \
  >   -q "PATTERN (c) -> (d) WHERE c.L = 'C' AND d.L = 'D' WITHIN 11 DAYS" \
  >   --metrics | grep -E "^(---|matches:|shared plan)"
  --- q1 ---
  matches: 5
  --- q2 ---
  matches: 8
  --- q3 ---
  matches: 5
  shared plan: 1 merged group(s) covering 3 quer(ies), 1 alias(es), 3 indexed atom(s), index hit rate 0.7500

Mixing several -q with --query-file or --stream is rejected:

  $ ../../bin/ses_cli.exe match -d chemo.csv --stream \
  >   -q "PATTERN (c) WHERE c.L = 'C' WITHIN 11 DAYS" \
  >   -q "PATTERN (d) WHERE d.L = 'D' WITHIN 11 DAYS"
  error: --stream supports a single query
  [1]

  $ ../../bin/ses_cli.exe analyze -d chemo.csv --query-file q1.ses
  pattern: (<{c, p+, d}, {b}>, {c.L = 'C', p+.L = 'P', d.L = 'D', b.L = 'B', c.ID = p+.ID, c.ID = d.ID, d.ID = b.ID}, 264)
  automaton: 9 states, 17 transitions, 6 orderings
  diagnostics: none
  window size W = 48
  V1 case 1 (pairwise mutually exclusive): bound 1
  V2 case 1 (pairwise mutually exclusive): bound 1
  overall: 48
  execution plan:
  event filter: strong filter
  access path: index probes (estimated 72 of 264 rows)
    c: index(L) = 'C', estimated 8 rows
    p+: index(L) = 'P', estimated 40 rows
    d: index(L) = 'D', estimated 8 rows
    b: index(L) = 'B', estimated 16 rows
  partitioning: not applicable
  constant pre-check: true
  V1: case 1 (pairwise mutually exclusive)
  V2: case 1 (pairwise mutually exclusive)

  $ ../../bin/ses_cli.exe dot -d chemo.csv --query-file q1.ses --no-conditions | head -5
  digraph ses {
    rankdir=LR;
    node [shape=circle];
    __start [shape=point, style=invis];
    "∅" [shape=circle];

A duplicated dataset doubles the window size (the paper's D-series):

  $ ../../bin/ses_cli.exe generate --kind chemo --patients 2 --seed 7 --duplicate 2 -o chemo2.csv
  wrote 528 events to chemo2.csv

  $ ../../bin/ses_cli.exe window -d chemo2.csv --tau 264
  528 events over 1998 time units, W(tau=264) = 96

Errors are reported with positions:

  $ ../../bin/ses_cli.exe match -d chemo.csv -q "PATTERN (a"
  error: line 1, column 11: expected ')' but found end of input
  [1]

The execution trace reproduces the paper's Figure 6 narrative:

  $ ../../bin/ses_cli.exe trace -d chemo.csv --query-file q1.ses --only-matching --limit 4
  read e9: take (∅ --d--> d), buffer {d/e9}
  read e10: ignore at d, buffer {d/e9}
  read e11: ignore at d, buffer {d/e9}
  read e12: ignore at d, buffer {d/e9}
  matches: 8

Matches render as a table with one column per variable:

  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1.ses --table | head -4
  pattern: (<{c, p+, d}, {b}>, {c.L = 'C', p+.L = 'P', d.L = 'D', b.L = 'B', c.ID = p+.ID, c.ID = d.ID, d.ID = b.ID}, 264)
  8 matches
  ---------
    #  c          p+                                                 d          b          span

Diagnostics explain where the search effort went:

  $ ../../bin/ses_cli.exe explain -d chemo.csv \
  >   -q "PATTERN (c, p+, d) -> (b) WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'ZZZ' WITHIN 11 DAYS" \
  >   | head -9
  264 events, 0 raw candidates, 0 matches
  events per variable (constant conditions only):
    c: 8
    p+: 40
    d: 8
    b: 0
    -> no event can ever bind b
  states entered:
    cp+d: 196

Domain-sharded execution: a complete ID-join query is partitionable, so
per-key pools shard across worker domains — the output stays
byte-identical to the sequential run at any domain count:

  $ cat > q1c.ses <<'QUERY'
  > PATTERN (c, p, d) -> (b)
  > WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
  >   AND c.ID = p.ID AND c.ID = d.ID AND c.ID = b.ID
  >   AND p.ID = d.ID AND p.ID = b.ID AND d.ID = b.ID
  > WITHIN 11 DAYS
  > QUERY

  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1c.ses > seq.out
  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1c.ses \
  >   --strategy par-partitioned --domains 4 > par.out
  $ diff seq.out par.out

Batched execution: --batch sets the chunk size events are fed through
the executors in. Matching output is identical at every batch size —
per-event delivery, an awkward prime, and batches combined with domain
sharding all reproduce the default run byte for byte:

  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1c.ses \
  >   --batch 1 > batch1.out
  $ diff seq.out batch1.out
  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1c.ses \
  >   --batch 7 > batch7.out
  $ diff seq.out batch7.out
  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1c.ses \
  >   --strategy par-partitioned --domains 2 --batch 256 > par_batched.out
  $ diff seq.out par_batched.out
  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1c.ses --batch 0
  error: --batch must be at least 1
  [1]

Telemetry: a recording run exports a runtime profile. Probe names and
counts are deterministic — durations are not — so only the stable
fields are checked. Probes record per batch: the 264-event relation
spans five default-size (64-event) chunks, so the filter pass and the
ingest/event_ns pair record once per chunk, while the expiry sweep,
the transition loop and the population sample record only for the four
chunks where the strong filter keeps any of its 72 events (--access
scan pins the full-scan path this narrative describes; the cost-based
default would probe the indexes here):

  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1.ses \
  >   --access scan --telemetry=prof.json > /dev/null
  $ sed -n 's/^    "\([^"]*\)": {"count":\([0-9]*\),.*/\1 \2/p' prof.json
  expiry 4
  filter 5
  finalize 1
  ingest 5
  transition 4
  event_ns 5
  store.bucket_scan 181
  $ sed -n 's/^    "\([^"]*\)": {"samples":\([0-9]*\),.*/\1 \2/p' prof.json
  population 4

The brute-force baseline across 4 worker domains runs one engine per
ordering (6 for q1), which multiplies the engine-level probes — one
expiry sweep and one transition span per (chain, chunk) — while the
batch-level ingest accounting stays at one span per chunk (the filter
span exists but never fires: the batched path skips it entirely under
no-filter):

  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1.ses \
  >   --access scan --strategy brute-force --domains 4 --telemetry=bf.json > bf.out
  $ grep '^matches:' bf.out
  matches: 8
  $ sed -n 's/^    "\([^"]*\)": {"count":\([0-9]*\),.*/\1 \2/p' bf.json
  expiry 30
  filter 0
  finalize 1
  ingest 5
  transition 30
  event_ns 5
  store.bucket_scan 269

The flat reference store has no state-indexed buckets to scan (the
histogram stays empty) and fuses expiry into the per-instance sweep,
which the transition span covers whole:

  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1.ses \
  >   --access scan --store flat --telemetry=flat.json > flat.out
  $ grep '^matches:' flat.out
  matches: 8
  $ sed -n 's/^    "\([^"]*\)": {"count":\([0-9]*\),.*/\1 \2/p' flat.json
  expiry 0
  filter 5
  finalize 1
  ingest 5
  transition 72
  event_ns 5
  store.bucket_scan 0

The cost-based access path: per-attribute secondary indexes replace
the full scan when the catalog statistics estimate the candidate union
below half the relation (q1's constant conditions keep 72 of 264
rows, so the auto mode would pick it here too). --explain prints the
plan with the decision before the results; with --metrics the measured
candidate count joins the estimate. Matches are identical to the
scan's:

  $ ../../bin/ses_cli.exe match -d chemo.csv --query-file q1.ses \
  >   --access index --explain --telemetry=idx.json > idx.out
  $ head -7 idx.out
  event filter: strong filter
  access path: index probes (estimated 72 of 264 rows)
    c: index(L) = 'C', estimated 8 rows
    p+: index(L) = 'P', estimated 40 rows
    d: index(L) = 'D', estimated 8 rows
    b: index(L) = 'B', estimated 16 rows
  partitioning: not applicable
  $ grep '^matches:' idx.out
  matches: 8

The probe counters surface in telemetry: 4 key probes fetched 72
postings, and all 72 survived the residual filter and the window clip
to reach the engine:

  $ sed -n 's/^    "\(index[^"]*\)": \([0-9]*\),*$/\1 \2/p' idx.json
  index.candidates 72
  index.postings_scanned 72
  index.probe 4

A variable without any constant condition makes the candidate union
unsound, so even the forced index mode refuses and explains itself:

  $ ../../bin/ses_cli.exe match -d chemo.csv \
  >   -q "PATTERN (c) -> (b) WHERE c.L = 'C' WITHIN 11 DAYS" \
  >   --access index --metrics | grep '^access path'
  access path: full scan (variable b has no constant condition)

Catalog statistics: `ses store stats` prints the row count,
per-attribute cardinalities and histograms the planner costs probes
with — from a CSV directly, or from a catalog directory where the
.stats sidecar is persisted next to the CSV and reused while fresh:

  $ ../../bin/ses_cli.exe store stats -d chemo.csv | head -4
  rows: 264
  ID (int): 2 distinct values 1: 132 2: 132
  L (string): 12 distinct values 'P': 40 'N5': 39 'N2': 36 'N1': 32 'N3': 31
    'N4': 30 'B': 16 'C': 8 'D': 8 'L': 8 'R': 8 'V': 8
  $ mkdir catalog && cp chemo.csv catalog/chemo.csv
  $ ../../bin/ses_cli.exe store stats --catalog catalog chemo | head -2
  rows: 264
  ID (int): 2 distinct values 1: 132 2: 132
  $ ls catalog
  chemo.csv
  chemo.stats
  $ ../../bin/ses_cli.exe store stats --catalog catalog
  chemo

Static analysis: contradictory constants are errors, the dead parts of
the automaton are pruned from the plan, and the exit code reflects the
worst severity. A schema is enough — no relation needed:

  $ ../../bin/ses_cli.exe analyze --schema "L:string,ID:int" \
  >   -q "PATTERN (a, b) WHERE a.L = 'X' AND a.L = 'Y' AND b.ID = 1 WITHIN 10"
  pattern: (<{a, b}>, {a.L = 'X', a.L = 'Y', b.ID = 1}, 10)
  automaton: 4 states, 4 transitions, 2 orderings
  diagnostics: 2 error(s), 0 warning(s), 0 info(s)
    line 1, columns 22-44: error[unsatisfiable-variable]: variable a can never bind an event: its conditions on L are contradictory (a.L = 'X', a.L = 'Y')
    error[unmatchable-pattern]: no path from the start state to the accepting state survives analysis: the pattern can never match
  pruned: 3 transition(s), 1 state(s)
  execution plan:
  event filter: strong filter
  partitioning: not applicable
  constant pre-check: true
  analysis: pattern can never match
  analysis: pruned 3 dead transitions, 1 state
  V1: case 2 (overlapping, no groups)
  [1]

The same diagnostics as machine-readable JSON:

  $ ../../bin/ses_cli.exe analyze --schema "L:string,ID:int" --json \
  >   -q "PATTERN (a, b) WHERE a.L = 'X' AND a.L = 'Y' AND b.ID = 1 WITHIN 10"
  {"diagnostics":[{"severity":"error","code":"unsatisfiable-variable","message":"variable a can never bind an event: its conditions on L are contradictory (a.L = 'X', a.L = 'Y')","span":{"start_line":1,"start_col":22,"end_line":1,"end_col":45}},{"severity":"error","code":"unmatchable-pattern","message":"no path from the start state to the accepting state survives analysis: the pattern can never match"}],"errors":2,"warnings":0,"infos":0,"pruned_transitions":3,"pruned_states":1,"never_matches":true}
  [1]

--dot renders the automaton with the transitions the analyzer would
prune dashed and gray:

  $ ../../bin/ses_cli.exe analyze --schema "L:string,ID:int" --dot \
  >   -q "PATTERN (a, b) WHERE a.L = 'X' AND a.L = 'Y' AND b.ID = 1 WITHIN 10" \
  >   | grep -c "style=dashed"
  2

Timestamp conditions are checked against arrival order and the window,
and equality chains yield inferred filter constants:

  $ ../../bin/ses_cli.exe analyze --schema "L:string,ID:int" \
  >   -q "PATTERN (c) -> (p) WHERE p.ID = c.ID AND c.ID = 7 AND c.L = 'C' AND p.L = 'P' AND p.T < c.T WITHIN 10"
  pattern: (<{c}, {p}>, {p.ID = c.ID, c.ID = 7, c.L = 'C', p.L = 'P', p.T < c.T}, 10)
  automaton: 3 states, 2 transitions, 1 orderings
  diagnostics: 2 error(s), 1 warning(s), 1 info(s)
    line 1, columns 83-91: error[temporal-contradiction]: the timing conditions and the window (WITHIN 10) admit no assignment of timestamps
    error[unmatchable-pattern]: no path from the start state to the accepting state survives analysis: the pattern can never match
    line 1, columns 26-91: warning[dead-transition]: transition binding p in state c can never fire: p.T < c.T requires an event older than already-bound c, but events arrive in order
    info[implied-constant]: inferred p.ID = 7 from equality chains; the event filter uses it
  pruned: 1 transition(s), 0 state(s)
  execution plan:
  event filter: strong filter
  partitioning: per key value
  constant pre-check: true
  analysis: pattern can never match
  analysis: pruned 1 dead transition, 0 states
  analysis: inferred filter constraints for 1 variable
  V1: case 1 (pairwise mutually exclusive)
  V2: case 1 (pairwise mutually exclusive)
  [1]

Warnings and infos do not fail the command:

  $ ../../bin/ses_cli.exe analyze --schema "L:string,ID:int" \
  >   -q "PATTERN (a) -> (b) WHERE a.L = 'A' AND a.ID > 3 AND a.ID > 5 WITHIN 10"
  pattern: (<{a}, {b}>, {a.L = 'A', a.ID > 3, a.ID > 5}, 10)
  automaton: 3 states, 2 transitions, 1 orderings
  diagnostics: 0 error(s), 1 warning(s), 1 info(s)
    warning[unconstrained-variable]: variable b has no conditions and matches every event
    line 1, columns 40-47: info[subsumed-condition]: condition a.ID > 3 is implied by the other conditions on a.ID
  execution plan:
  event filter: no filter
  partitioning: not applicable
  constant pre-check: true
  V1: case 1 (pairwise mutually exclusive)
  V2: case 1 (pairwise mutually exclusive)

Parse errors surface as diagnostics with positions:

  $ ../../bin/ses_cli.exe analyze --schema "L:string" -q "PATTERN (a"
  diagnostics: 1 error(s), 0 warning(s), 0 info(s)
    line 1, column 11: error[parse-error]: expected ')' but found end of input
  [1]
