open Ses_event
open Ses_pattern
open Helpers

let test_accessors () =
  let p = query_q1 in
  Alcotest.(check int) "n_vars" 4 (Pattern.n_vars p);
  Alcotest.(check int) "n_sets" 2 (Pattern.n_sets p);
  Alcotest.(check int) "tau" 264 (Pattern.tau p);
  Alcotest.(check (list int)) "set 0" [ 0; 1; 2 ] (Pattern.set_vars p 0);
  Alcotest.(check (list int)) "set 1" [ 3 ] (Pattern.set_vars p 1);
  Alcotest.(check (option int)) "var_id c" (Some 0) (Pattern.var_id p "c");
  Alcotest.(check (option int)) "var_id b" (Some 3) (Pattern.var_id p "b");
  Alcotest.(check (option int)) "var_id missing" None (Pattern.var_id p "z");
  Alcotest.(check string) "p is group" "p+" (Pattern.var_name p 1);
  Alcotest.(check bool) "is_group" true (Pattern.is_group p 1);
  Alcotest.(check bool) "not group" false (Pattern.is_group p 0);
  Alcotest.(check (list int)) "group_vars" [ 1 ] (Pattern.group_vars p);
  Alcotest.(check int) "set_of_var b" 1 (Pattern.set_of_var p 3);
  Alcotest.(check bool) "singleton_only" false (Pattern.singleton_only p);
  Alcotest.(check bool) "q1 singleton version" true
    (Pattern.singleton_only query_q1_singleton);
  Alcotest.(check int) "conditions" 7 (List.length (Pattern.conditions p))

let test_conditions_on () =
  let p = query_q1 in
  let c = Option.get (Pattern.var_id p "c") in
  Alcotest.(check int) "conditions on c" 3 (List.length (Pattern.conditions_on p c));
  Alcotest.(check int) "constant conditions on c" 1
    (List.length (Pattern.constant_conditions_on p c));
  let b = Option.get (Pattern.var_id p "b") in
  Alcotest.(check int) "conditions on b" 2 (List.length (Pattern.conditions_on p b))

let errors_of ~sets ~where ~within =
  match Pattern.make ~schema:Helpers.schema ~sets ~where ~within with
  | Ok _ -> []
  | Error errs -> errs

let test_validation () =
  Alcotest.(check bool) "no sets" true
    (errors_of ~sets:[] ~where:[] ~within:10 <> []);
  Alcotest.(check bool) "empty set" true
    (errors_of ~sets:[ [ v "a" ]; [] ] ~where:[] ~within:10 <> []);
  Alcotest.(check bool) "duplicate names across sets" true
    (errors_of ~sets:[ [ v "a" ]; [ v "a" ] ] ~where:[] ~within:10 <> []);
  Alcotest.(check bool) "duplicate names within a set" true
    (errors_of ~sets:[ [ v "a"; v "a" ] ] ~where:[] ~within:10 <> []);
  Alcotest.(check bool) "negative duration" true
    (errors_of ~sets:[ [ v "a" ] ] ~where:[] ~within:(-1) <> []);
  Alcotest.(check bool) "unknown variable in condition" true
    (errors_of ~sets:[ [ v "a" ] ] ~where:[ label "z" "x" ] ~within:10 <> []);
  Alcotest.(check bool) "unknown attribute" true
    (errors_of ~sets:[ [ v "a" ] ]
       ~where:[ Pattern.Spec.const "a" "NOPE" Predicate.Eq (Value.Int 1) ]
       ~within:10
    <> []);
  Alcotest.(check bool) "type mismatch" true
    (errors_of ~sets:[ [ v "a" ] ]
       ~where:[ Pattern.Spec.const "a" "L" Predicate.Eq (Value.Int 1) ]
       ~within:10
    <> []);
  Alcotest.(check bool) "valid pattern" true
    (errors_of ~sets:[ [ v "a"; vplus "b" ] ] ~where:[ label "a" "x" ] ~within:10
    = [])

let test_too_many_vars () =
  let many = List.init 63 (fun i -> v (Printf.sprintf "x%d" i)) in
  Alcotest.(check bool) "63 vars rejected" true
    (errors_of ~sets:[ many ] ~where:[] ~within:10 <> []);
  let ok = List.init 62 (fun i -> v (Printf.sprintf "x%d" i)) in
  Alcotest.(check bool) "62 vars accepted" true
    (errors_of ~sets:[ ok ] ~where:[] ~within:10 = [])

let test_multiple_errors_reported () =
  let errs =
    errors_of
      ~sets:[ [ v "a" ] ]
      ~where:[ label "z" "x"; Pattern.Spec.const "a" "L" Predicate.Eq (Value.Int 1) ]
      ~within:10
  in
  Alcotest.(check int) "both errors" 2 (List.length errs)

let test_make_exn () =
  Alcotest.check_raises "make_exn raises"
    (Invalid_argument "pattern: no event set patterns") (fun () ->
      ignore
        (Pattern.make_exn ~schema:Helpers.schema ~sets:[] ~where:[] ~within:1))

let test_pp () =
  let rendered = Format.asprintf "%a" Pattern.pp query_q1 in
  Alcotest.(check string) "paper notation"
    "(<{c, p+, d}, {b}>, {c.L = 'C', p+.L = 'P', d.L = 'D', b.L = 'B', c.ID = p+.ID, c.ID = d.ID, d.ID = b.ID}, 264)"
    rendered

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "conditions_on" `Quick test_conditions_on;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "variable limit" `Quick test_too_many_vars;
    Alcotest.test_case "multiple errors" `Quick test_multiple_errors_reported;
    Alcotest.test_case "make_exn" `Quick test_make_exn;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
