(* Access-path planning and index-path execution.

   The τ-boundary fixtures pin the delicate edge of the candidate clip:
   a match whose events straddle exactly the window must survive (the
   clip's window test is inclusive), one event past the window must not
   reappear, and negation killers — events that bind nothing but kill
   instances — must stay in the candidate stream. The planning tests pin
   the cost model's decisions and the statistics estimates they rest
   on. *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_harness
open Helpers

let () = Ses_baseline.Brute_force.register ()

let two_set ~within where =
  Pattern.make_exn ~schema ~sets:[ [ v "a" ]; [ v "b" ] ] ~where ~within

let ab_pattern ~within =
  two_set ~within
    ([ label "a" "a"; label "b" "b" ]
    @ [ Pattern.Spec.fields "a" "ID" Predicate.Eq "b" "ID" ])

let run_both ?options pat r =
  let prepared = Access_exec.prepare r in
  let automaton = Automaton.of_pattern pat in
  let scan = Access_exec.run ?options ~mode:`Scan prepared automaton in
  let index = Access_exec.run ?options ~mode:`Index prepared automaton in
  (scan, index)

let check_equal_outcomes pat name (scan : Access_exec.outcome)
    (index : Access_exec.outcome) =
  Alcotest.(check (list (list (pair string int))))
    (name ^ ": matches equal")
    (substs_repr pat scan.Access_exec.matches)
    (substs_repr pat index.Access_exec.matches);
  Alcotest.(check (list (list (pair string int))))
    (name ^ ": raw equal")
    (substs_repr pat scan.Access_exec.raw)
    (substs_repr pat index.Access_exec.raw)

(* An a–b pair exactly τ apart must match, and the index path must keep
   both events: the clip window is inclusive on both sides. *)
let test_tau_straddling_match () =
  let pat = ab_pattern ~within:10 in
  let r =
    rel [ (1, "a", 0, 0); (1, "b", 0, 10) (* |10 - 0| = τ exactly *) ]
  in
  let scan, index = run_both pat r in
  check_equal_outcomes pat "straddling" scan index;
  check_substs pat [ [ ("a", 1); ("b", 2) ] ] index.Access_exec.matches;
  Alcotest.(check bool)
    "index path taken" true
    (match index.Access_exec.access with
    | Planner.Index_probe _ -> true
    | Planner.Scan _ -> false);
  Alcotest.(check int) "nothing clipped" 0 index.Access_exec.clipped

(* One past the window: no match either way, and the clip removes both
   candidates (each variable's only candidate has no counterpart of the
   other required variable within τ). *)
let test_tau_plus_one_clipped () =
  let pat = ab_pattern ~within:10 in
  let r = rel [ (1, "a", 0, 0); (1, "b", 0, 11) ] in
  let scan, index = run_both pat r in
  check_equal_outcomes pat "past window" scan index;
  Alcotest.(check int) "no matches" 0 (List.length index.Access_exec.matches);
  Alcotest.(check int) "both clipped" 2 index.Access_exec.clipped;
  Alcotest.(check int) "engine saw nothing" 0 index.Access_exec.candidates

(* A mixed relation: matches at the window boundary survive, candidates
   isolated beyond the window are clipped without affecting them. *)
let test_clip_keeps_boundary_matches () =
  let pat = ab_pattern ~within:10 in
  let r =
    rel
      [
        (1, "a", 0, 0);
        (2, "a", 0, 3);
        (1, "b", 0, 10);
        (* isolated candidates, > τ from every counterpart *)
        (3, "a", 0, 50);
        (4, "b", 0, 80);
      ]
  in
  let scan, index = run_both pat r in
  check_equal_outcomes pat "mixed" scan index;
  check_substs pat [ [ ("a", 1); ("b", 3) ] ] index.Access_exec.matches;
  Alcotest.(check int) "isolated candidates clipped" 2
    index.Access_exec.clipped

(* Negation: the killer event binds nothing but must reach the engine
   through the index path, both when it kills (id 2) and when the match
   completes before it arrives (id 1). The fixture is the batch-equiv
   suite's, judged here across access paths. *)
let neg_pattern =
  Pattern.make_full_exn ~schema
    ~sets:[ [ v "a" ]; [ v "b" ] ]
    ~negations:[ (0, v "x") ]
    ~where:
      ([ label "a" "a"; label "b" "b"; label "x" "x" ]
      @ Pattern.Spec.
          [
            fields "a" "ID" Predicate.Eq "b" "ID";
            fields "x" "ID" Predicate.Eq "a" "ID";
          ])
    ~within:20

let test_negation_killer_retained () =
  let r =
    rel
      [
        (1, "a", 0, 0);
        (2, "a", 0, 1);
        (2, "x", 0, 5);
        (1, "b", 0, 8);
        (2, "b", 0, 9);
        (1, "x", 0, 15);
      ]
  in
  let scan, index = run_both neg_pattern r in
  check_equal_outcomes neg_pattern "negation" scan index;
  (* id 2's match is killed by its x at ts 5; id 1 completes at ts 8
     before its x arrives. *)
  check_substs neg_pattern
    [ [ ("a", 1); ("b", 4) ] ]
    index.Access_exec.matches

(* A killer sitting exactly at the τ edge of the match it kills: the
   clip must not drop it. a(ts 0), b(ts 1), x(ts 20) with a trailing
   negation guard and τ = 20: the emission at ts 1 is killed only if x
   survives materialization. *)
let test_trailing_killer_at_tau_edge () =
  let pat =
    Pattern.make_full_exn ~schema
      ~sets:[ [ v "a" ]; [ v "b" ] ]
      ~negations:[ (1, v "x") ]
      ~where:
        ([ label "a" "a"; label "b" "b"; label "x" "x" ]
        @ Pattern.Spec.
            [
              fields "a" "ID" Predicate.Eq "b" "ID";
              fields "x" "ID" Predicate.Eq "a" "ID";
            ])
      ~within:20
  in
  let r = rel [ (1, "a", 0, 0); (1, "b", 0, 1); (1, "x", 0, 20) ] in
  let scan, index = run_both pat r in
  check_equal_outcomes pat "trailing kill at edge" scan index

(* ---------------- planning decisions ---------------- *)

let plan_access ?mode pat r =
  let automaton = Automaton.of_pattern pat in
  let plan = Planner.plan automaton in
  Planner.choose_access ?mode ~stats:(Stats.of_relation r) plan automaton

let test_choose_access_decisions () =
  let selective =
    rel
      ((1, "a", 0, 0) :: (1, "b", 0, 1)
      :: List.init 200 (fun i -> (9, "z", 0, 2 + i)))
  in
  (match plan_access (ab_pattern ~within:10) selective with
  | Planner.Index_probe { probes; rows; _ } ->
      Alcotest.(check int) "rows" 202 rows;
      Alcotest.(check int) "one probe per variable" 2 (List.length probes)
  | Planner.Scan reason -> Alcotest.failf "expected index path, got %s" reason);
  (* Every row carries label "a": probing buys nothing. *)
  let dense = rel (List.init 40 (fun i -> (1, "a", 0, i))) in
  (match
     plan_access
       (two_set ~within:5 [ label "a" "a"; label "b" "a" ])
       dense
   with
  | Planner.Scan _ -> ()
  | Planner.Index_probe _ -> Alcotest.fail "expected scan on dense relation");
  (* An unconstrained variable makes the candidate union unsound: even
     the forced index mode must refuse. *)
  let unconstrained = two_set ~within:5 [ label "a" "a" ] in
  (match plan_access ~mode:`Index unconstrained selective with
  | Planner.Scan reason ->
      Alcotest.(check bool)
        "reason names the variable" true
        (String.length reason > 0)
  | Planner.Index_probe _ ->
      Alcotest.fail "unconstrained variable must force a scan");
  match plan_access ~mode:`Scan (ab_pattern ~within:10) selective with
  | Planner.Scan _ -> ()
  | Planner.Index_probe _ -> Alcotest.fail "`Scan must force a scan"

let test_describe_access () =
  let pat = ab_pattern ~within:10 in
  let r = rel [ (1, "a", 0, 0); (1, "b", 0, 1) ] in
  let automaton = Automaton.of_pattern pat in
  let plan = Planner.plan automaton in
  let access =
    Planner.choose_access ~mode:`Index ~stats:(Stats.of_relation r) plan
      automaton
  in
  let text = Planner.describe ~access plan in
  Alcotest.(check bool)
    "describe names the access path" true
    (let re = "access path: index probes" in
     let n = String.length re in
     let rec find i =
       i + n <= String.length text && (String.sub text i n = re || find (i + 1))
     in
     find 0);
  let scan_text = Planner.describe ~access:(Planner.Scan "forced") plan in
  Alcotest.(check bool)
    "scan reason shown" true
    (let re = "full scan" in
     let n = String.length re in
     let rec find i =
       i + n <= String.length scan_text
       && (String.sub scan_text i n = re || find (i + 1))
     in
     find 0)

(* ---------------- statistics ---------------- *)

let test_stats_estimates () =
  let r =
    rel
      (List.init 60 (fun i -> (1, "hot", 0, i))
      @ List.init 3 (fun i -> (2, "warm", 0, 100 + i))
      @ [ (3, "cold", 0, 200) ])
  in
  let s = Stats.of_relation r in
  Alcotest.(check int) "rows" 64 (Stats.rows s);
  Alcotest.(check (option int))
    "exact histogram count" (Some 60)
    (Stats.estimate_eq s "L" (Value.Str "hot"));
  Alcotest.(check (option int))
    "absent value, complete histogram" (Some 0)
    (Stats.estimate_eq s "L" (Value.Str "absent"));
  Alcotest.(check (option int))
    "unknown attribute" None
    (Stats.estimate_eq s "nope" (Value.Int 1));
  (* With a cap of 1 the histogram keeps only the hot value; absent keys
     get the uniform share of the remainder: (64-60)/(3-1) = 2. *)
  let capped = Stats.of_relation ~cap:1 r in
  (match Stats.find capped "L" with
  | None -> Alcotest.fail "attribute L missing"
  | Some a ->
      Alcotest.(check bool) "incomplete" false a.Stats.complete;
      Alcotest.(check int) "cardinality exact despite cap" 3
        a.Stats.cardinality);
  Alcotest.(check (option int))
    "uniform remainder estimate" (Some 2)
    (Stats.estimate_eq capped "L" (Value.Str "cold"))

let test_stats_round_trip () =
  let r =
    rel
      [
        (1, "with space", 0, 0);
        (1, "line\nbreak", 5, 1);
        (2, "back\\slash", -3, 2);
      ]
  in
  let s = Stats.of_relation r in
  match Stats.of_string (Stats.to_string s) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok s' ->
      Alcotest.(check bool) "round trip preserves stats" true (s = s');
      (match Stats.of_string "garbage" with
      | Ok _ -> Alcotest.fail "garbage accepted"
      | Error _ -> ());
      (match Stats.of_string "ses-stats 1\nrows nope" with
      | Ok _ -> Alcotest.fail "bad row count accepted"
      | Error _ -> ())

let suite =
  [
    Alcotest.test_case "match exactly at tau survives the clip" `Quick
      test_tau_straddling_match;
    Alcotest.test_case "tau + 1 is clipped and matchless" `Quick
      test_tau_plus_one_clipped;
    Alcotest.test_case "clip keeps boundary matches" `Quick
      test_clip_keeps_boundary_matches;
    Alcotest.test_case "negation killer retained" `Quick
      test_negation_killer_retained;
    Alcotest.test_case "trailing killer at the tau edge" `Quick
      test_trailing_killer_at_tau_edge;
    Alcotest.test_case "choose_access decisions" `Quick
      test_choose_access_decisions;
    Alcotest.test_case "describe names the access path" `Quick
      test_describe_access;
    Alcotest.test_case "statistics estimates" `Quick test_stats_estimates;
    Alcotest.test_case "statistics round trip" `Quick test_stats_round_trip;
  ]
