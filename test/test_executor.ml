(* The unified Executor interface: all five strategies behind one
   signature, producing identical finalized matches.

   Dataset discipline matters here. The strategies are only equivalent
   where their documented semantic gaps don't bite: the naive oracle
   also reports non-greedy variants the engine's skip-till-next-match
   strategy never reaches, and the brute-force chains miss matches whose
   group-variable events interleave other bindings. The relations below
   use orderly per-entity flows (C < P* < D < B, one B per window) so
   every maximal substitution is greedily reachable and the finalized
   sets coincide — which is exactly the regime the equivalence claim is
   about. *)

open Ses_event
open Helpers

let () = Ses_baseline.Brute_force.register ()

let all_strategies = Ses_core.Executor.strategies

(* Two patients, strictly sequential per-patient flows. *)
let orderly_chemo =
  let row id l ts = ([| Value.Int id; Value.Str l; Value.Float 0.; Value.Str "u" |], ts) in
  Relation.of_rows_exn chemo_schema
    [
      row 1 "C" 10;
      row 1 "P" 20;
      row 1 "P" 30;
      row 1 "D" 40;
      row 1 "B" 50;
      row 2 "C" 100;
      row 2 "P" 110;
      row 2 "P" 120;
      row 2 "D" 130;
      row 2 "B" 140;
    ]

(* Exactly three same-type events plus one B — the regime where P3/P4
   have the same 6 matches under every strategy. *)
let three_p_one_b =
  Relation.of_rows_exn Ses_gen.Chemo.schema
    (List.map
       (fun (l, ts) -> ([| Value.Int 1; Value.Str l; Value.Float 0.; Value.Str "u" |], ts))
       [ ("P", 10); ("P", 20); ("P", 30); ("B", 40) ])

let matches_of strategy pattern relation =
  let automaton = Ses_core.Automaton.of_pattern pattern in
  let outcome = Ses_core.Executor.run_relation strategy automaton relation in
  substs_repr pattern outcome.Ses_core.Engine.matches

let check_equivalent ~expected_count pattern relation () =
  let reference = matches_of `Plain pattern relation in
  Alcotest.(check int) "plain match count" expected_count (List.length reference);
  List.iter
    (fun strategy ->
      Alcotest.(check (list (list (pair string int))))
        (Ses_core.Executor.strategy_name strategy)
        reference
        (matches_of strategy pattern relation))
    all_strategies

let test_q1_equivalence =
  check_equivalent ~expected_count:2 Ses_harness.Queries.q1 orderly_chemo

let test_p3_equivalence =
  check_equivalent ~expected_count:6 Ses_harness.Queries.p3 three_p_one_b

let test_p4_equivalence =
  check_equivalent ~expected_count:6 Ses_harness.Queries.p4 three_p_one_b

(* The push-based contract itself. *)

let mk_event seq ts l =
  Event.make ~seq ~ts [| Value.Int 1; Value.Str l; Value.Float 0.; Value.Str "u" |]

let test_feed_out_of_order () =
  List.iter
    (fun strategy ->
      let exec =
        Ses_core.Executor.create strategy
          (Ses_core.Automaton.of_pattern Ses_harness.Queries.q1)
      in
      ignore (Ses_core.Executor.feed exec (mk_event 0 100 "C"));
      Alcotest.check_raises
        (Ses_core.Executor.strategy_name strategy ^ " rejects out-of-order")
        (Invalid_argument
           (match strategy with
           | `Naive -> "Naive.feed: events out of chronological order"
           | _ -> "Engine.feed: events out of chronological order"))
        (fun () -> ignore (Ses_core.Executor.feed exec (mk_event 1 50 "P"))))
    all_strategies

let test_close_idempotent () =
  List.iter
    (fun strategy ->
      let exec =
        Ses_core.Executor.create strategy
          (Ses_core.Automaton.of_pattern Ses_harness.Queries.p4)
      in
      List.iteri
        (fun i (l, ts) -> ignore (Ses_core.Executor.feed exec (mk_event i ts l)))
        [ ("P", 10); ("P", 20); ("P", 30); ("B", 40) ];
      ignore (Ses_core.Executor.close exec);
      let emitted_once = Ses_core.Executor.emitted exec in
      Alcotest.(check (list pass))
        (Ses_core.Executor.strategy_name strategy ^ " close is idempotent")
        [] (Ses_core.Executor.close exec);
      Alcotest.(check int)
        (Ses_core.Executor.strategy_name strategy ^ " emitted is stable")
        (List.length emitted_once)
        (List.length (Ses_core.Executor.emitted exec)))
    all_strategies

let test_strategy_names () =
  List.iter
    (fun strategy ->
      let name = Ses_core.Executor.strategy_name strategy in
      match Ses_core.Executor.strategy_of_string name with
      | Ok s ->
          Alcotest.(check string)
            "round-trip" name
            (Ses_core.Executor.strategy_name s)
      | Error msg -> Alcotest.fail msg)
    all_strategies;
  (match Ses_core.Executor.strategy_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus strategy accepted"
  | Error _ -> ());
  List.iter
    (fun strategy ->
      let (module E : Ses_core.Executor.EXECUTOR) =
        Ses_core.Executor.of_strategy strategy
      in
      Alcotest.(check string)
        "module name matches strategy"
        (Ses_core.Executor.strategy_name strategy)
        E.name)
    all_strategies

(* Minimal substring check without extra deps. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Metrics flow through the shared interface uniformly. *)
let test_metrics_uniform () =
  List.iter
    (fun strategy ->
      let automaton = Ses_core.Automaton.of_pattern Ses_harness.Queries.q1 in
      let outcome =
        Ses_core.Executor.run_relation strategy automaton orderly_chemo
      in
      let m = outcome.Ses_core.Engine.metrics in
      let n = Relation.cardinality orderly_chemo in
      (* Brute force accounts per chain (the paper's Sec. 5.2 bookkeeping),
         so its counters are a multiple of the input size. *)
      (match strategy with
      | `Brute_force ->
          Alcotest.(check bool)
            "brute-force events_seen is a positive multiple of the input"
            true
            (m.Ses_core.Metrics.events_seen > 0
            && m.Ses_core.Metrics.events_seen mod n = 0)
      | _ ->
          Alcotest.(check int)
            (Ses_core.Executor.strategy_name strategy ^ " events_seen")
            n m.Ses_core.Metrics.events_seen);
      let json = Ses_core.Metrics.to_json m in
      Alcotest.(check bool)
        "json mentions events_seen" true
        (String.length json > 0
        && String.sub json 0 1 = "{"
        && contains json "\"events_seen\""))
    all_strategies

(* Mixed-strategy Multi: one registration per strategy over the same
   query must agree. *)
let test_multi_mixed () =
  let automaton = Ses_core.Automaton.of_pattern Ses_harness.Queries.q1 in
  let multi =
    Ses_core.Multi.create_mixed
      (List.map
         (fun s -> (Ses_core.Executor.strategy_name s, automaton, s))
         all_strategies)
  in
  Relation.iter (fun e -> ignore (Ses_core.Multi.feed multi e)) orderly_chemo;
  ignore (Ses_core.Multi.close multi);
  let outcomes = Ses_core.Multi.outcomes multi in
  let reference = matches_of `Plain Ses_harness.Queries.q1 orderly_chemo in
  List.iter
    (fun (name, outcome) ->
      Alcotest.(check (list (list (pair string int))))
        ("multi " ^ name) reference
        (substs_repr Ses_harness.Queries.q1 outcome.Ses_core.Engine.matches))
    outcomes

let suite =
  [
    Alcotest.test_case "q1: five strategies agree" `Quick test_q1_equivalence;
    Alcotest.test_case "p3: five strategies agree" `Quick test_p3_equivalence;
    Alcotest.test_case "p4: five strategies agree" `Quick test_p4_equivalence;
    Alcotest.test_case "feed rejects out-of-order" `Quick test_feed_out_of_order;
    Alcotest.test_case "close is idempotent" `Quick test_close_idempotent;
    Alcotest.test_case "strategy names round-trip" `Quick test_strategy_names;
    Alcotest.test_case "metrics are uniform" `Quick test_metrics_uniform;
    Alcotest.test_case "mixed-strategy multi agrees" `Quick test_multi_mixed;
  ]
