open Ses_pattern
open Ses_baseline
open Helpers

let test_factorial () =
  Alcotest.(check int) "0!" 1 (Permutation.factorial 0);
  Alcotest.(check int) "1!" 1 (Permutation.factorial 1);
  Alcotest.(check int) "5!" 120 (Permutation.factorial 5);
  Alcotest.(check int) "20!" 2432902008176640000 (Permutation.factorial 20);
  Alcotest.check_raises "negative" (Invalid_argument "Permutation.factorial")
    (fun () -> ignore (Permutation.factorial (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Permutation.factorial")
    (fun () -> ignore (Permutation.factorial 21))

let test_permutations () =
  Alcotest.(check int) "3 elements" 6 (List.length (Permutation.permutations [ 1; 2; 3 ]));
  Alcotest.(check (list (list int))) "empty" [ [] ] (Permutation.permutations []);
  let perms = Permutation.permutations [ 1; 2; 3 ] in
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq (List.compare Int.compare) perms));
  Alcotest.(check bool) "each is a permutation" true
    (List.for_all
       (fun p -> List.equal Int.equal (List.sort Int.compare p) [ 1; 2; 3 ])
       perms)

let test_cartesian () =
  Alcotest.(check (list (list int))) "two by one"
    [ [ 1; 3 ]; [ 2; 3 ] ]
    (Permutation.cartesian [ [ 1; 2 ]; [ 3 ] ]);
  Alcotest.(check (list (list int))) "empty product" [ [] ] (Permutation.cartesian []);
  Alcotest.(check (list (list int))) "empty choice kills" []
    (Permutation.cartesian [ [ 1 ]; [] ])

let test_n_sequences () =
  Alcotest.(check int) "3! * 1!" 6 (Permutation.n_sequences [ [ 1; 2; 3 ]; [ 4 ] ]);
  Alcotest.(check int) "2! * 2!" 4 (Permutation.n_sequences [ [ 1; 2 ]; [ 3; 4 ] ])

(* Example 11 / Figure 10(b): the singleton variant of Q1 yields six
   variable sequences. *)
let test_orderings_figure10 () =
  let p = query_q1_singleton in
  let os = Brute_force.orderings p in
  Alcotest.(check int) "six orderings" 6 (List.length os);
  Alcotest.(check int) "n_automata" 6 (Brute_force.n_automata p);
  let name ids = List.map (Pattern.var_name p) ids in
  let rendered = List.sort (List.compare String.compare) (List.map name os) in
  Alcotest.(check (list (list string)))
    "all sequences of Figure 10(b)"
    (List.sort (List.compare String.compare)
       [
         [ "c"; "p"; "d"; "b" ];
         [ "c"; "d"; "p"; "b" ];
         [ "p"; "c"; "d"; "b" ];
         [ "p"; "d"; "c"; "b" ];
         [ "d"; "c"; "p"; "b" ];
         [ "d"; "p"; "c"; "b" ];
       ])
    rendered;
  (* b is always last: permutations never cross set boundaries. *)
  Alcotest.(check bool) "b last everywhere" true
    (List.for_all (fun o -> List.nth o 3 = Option.get (Pattern.var_id p "b")) os)

let test_sequence_pattern () =
  let p = query_q1_singleton in
  let ordering = List.hd (Brute_force.orderings p) in
  let chain = Brute_force.sequence_pattern p ordering in
  Alcotest.(check int) "four sets" 4 (Pattern.n_sets chain);
  Alcotest.(check int) "four vars" 4 (Pattern.n_vars chain);
  Alcotest.(check bool) "all singleton sets" true
    (List.for_all
       (fun i -> List.length (Pattern.set_vars chain i) = 1)
       (List.init (Pattern.n_sets chain) Fun.id));
  Alcotest.(check int) "conditions preserved" 7
    (List.length (Pattern.conditions chain));
  Alcotest.(check int) "tau preserved" 264 (Pattern.tau chain);
  (* Chain automata have |V|+1 states and no nondeterministic fan-out. *)
  let a = Ses_core.Automaton.of_pattern chain in
  Alcotest.(check int) "chain states" 5 (Ses_core.Automaton.n_states a);
  Alcotest.(check int) "chain transitions" 4 (Ses_core.Automaton.n_transitions a);
  Alcotest.(check int) "single path" 1 (Ses_core.Automaton.n_paths a)

let test_group_variable_kept () =
  let p = query_q1 in
  let ordering = List.hd (Brute_force.orderings p) in
  let chain = Brute_force.sequence_pattern p ordering in
  Alcotest.(check int) "still one group var" 1
    (List.length (Pattern.group_vars chain))

let test_run_matches_ses () =
  let ses = run query_q1_singleton figure_1 in
  let bf = Brute_force.run_relation query_q1_singleton figure_1 in
  Alcotest.(check int) "six automata" 6 bf.Brute_force.n_automata;
  check_substs query_q1_singleton
    (substs_repr query_q1_singleton ses.Ses_core.Engine.matches)
    bf.Brute_force.matches

let test_bf_raw_superset () =
  let ses = run query_q1_singleton figure_1 in
  let bf = Brute_force.run_relation query_q1_singleton figure_1 in
  let bf_raw =
    List.map Ses_core.Substitution.canonical bf.Brute_force.raw
  in
  Alcotest.(check bool) "SES raw within BF raw" true
    (List.for_all
       (fun s -> List.mem (Ses_core.Substitution.canonical s) bf_raw)
       ses.Ses_core.Engine.raw)

let test_bf_metrics () =
  let bf = Brute_force.run_relation query_q1_singleton figure_1 in
  let m = bf.Brute_force.metrics in
  Alcotest.(check bool) "instances tracked" true
    (m.Ses_core.Metrics.max_simultaneous_instances > 0);
  (* The brute force runs one automaton per ordering, so it creates at
     least as many instances as the single SES automaton. *)
  let ses = run query_q1_singleton figure_1 in
  Alcotest.(check bool) "BF costs more" true
    (m.Ses_core.Metrics.instances_created
    >= ses.Ses_core.Engine.metrics.Ses_core.Metrics.instances_created)

let test_exclusive_ratio () =
  (* With pairwise mutually exclusive variables and no branching, BF's
     instance peak exceeds SES's by roughly (|V1|-1)! (Table 1). *)
  let p =
    pattern ~within:30
      [ [ v "a"; v "b"; v "c" ] ]
      ~where:[ label "a" "x"; label "b" "y"; label "c" "z" ]
  in
  let r =
    rel_l
      [ ("x", 0); ("y", 1); ("z", 2); ("x", 3); ("y", 4); ("z", 5); ("x", 6) ]
  in
  let ses = (run p r).Ses_core.Engine.metrics in
  let bf = (Brute_force.run_relation p r).Brute_force.metrics in
  let ratio =
    float_of_int bf.Ses_core.Metrics.max_simultaneous_instances
    /. float_of_int ses.Ses_core.Metrics.max_simultaneous_instances
  in
  Alcotest.(check bool) "ratio near (3-1)! = 2" true (ratio >= 1.5 && ratio <= 3.0)

let suite =
  [
    Alcotest.test_case "factorial" `Quick test_factorial;
    Alcotest.test_case "permutations" `Quick test_permutations;
    Alcotest.test_case "cartesian" `Quick test_cartesian;
    Alcotest.test_case "n_sequences" `Quick test_n_sequences;
    Alcotest.test_case "Figure 10(b): orderings" `Quick test_orderings_figure10;
    Alcotest.test_case "sequence_pattern" `Quick test_sequence_pattern;
    Alcotest.test_case "group variables kept" `Quick test_group_variable_kept;
    Alcotest.test_case "BF matches = SES matches" `Quick test_run_matches_ses;
    Alcotest.test_case "BF raw superset of SES raw" `Quick test_bf_raw_superset;
    Alcotest.test_case "BF metrics" `Quick test_bf_metrics;
    Alcotest.test_case "Table 1 ratio on a small case" `Quick test_exclusive_ratio;
  ]
