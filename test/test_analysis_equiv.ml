(* The analyzer's two planner contributions — dead-transition pruning
   and inferred filter constants — must be result-preserving: with the
   analyzer registered, every executor strategy produces the same
   finalized matches (element by element) and the same raw emissions (as
   a multiset) as the bare unanalyzed engine on the original automaton.

   The bare engine run never consults the planner, so it is a valid
   baseline even though registration is global. Deterministic cases pin
   the interesting regimes — active pruning, active extras, negation
   kills and τ-expiry — and a QCheck property sweeps random workloads. *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_gen
open Helpers

let () =
  Ses_baseline.Brute_force.register ();
  Ses_analysis.Analyzer.register ()

let canon substs = List.map Substitution.canonical substs

let canon_sorted substs =
  List.sort Substitution.compare_canonical (canon substs)

(* `Naive and `Brute_force are Definition 2 enumeration oracles with
   deliberately different skip semantics — test_equivalence.ml only ever
   relates them to the engine by raw-emission *inclusion*, never
   equality — so the exact-agreement set is the four strategies that
   share the engine's skip-till-next-match semantics. *)
let strategies = [ `Auto; `Plain; `Partitioned; `Par_partitioned ]

let agrees_with_baseline ?(options = Engine.default_options) p r =
  let automaton = Automaton.of_pattern p in
  let baseline = Engine.run_relation ~options automaton r in
  List.for_all
    (fun strategy ->
      let out =
        Executor.drive ~options
          (Executor.create ~options strategy automaton)
          automaton (Relation.to_seq r)
      in
      canon out.Engine.matches = canon baseline.Engine.matches
      && canon_sorted out.Engine.raw = canon_sorted baseline.Engine.raw)
    strategies

let check_agreement name p r =
  Alcotest.(check bool) name true (agrees_with_baseline p r)

(* Active pruning: the b-after-a ordering is dead (arrival order), the
   other ordering matches. *)
let test_pruned_ordering () =
  let p =
    pattern ~within:10
      ~where:
        [
          label "a" "a";
          label "b" "b";
          Pattern.Spec.fields "b" "T" Predicate.Lt "a" "T";
        ]
      [ [ v "a"; v "b" ] ]
  in
  let r =
    Ses_analysis.Analyzer.analyze_pattern p in
  Alcotest.(check int) "pruning active" 1 r.Ses_analysis.Analyzer.pruned_transitions;
  let relation =
    rel [ (1, "b", 0, 1); (1, "a", 0, 2); (1, "b", 0, 3); (1, "a", 0, 4) ]
  in
  check_agreement "pruned ordering" p relation

(* Active extras: b and x inherit a's ID = 1 through equality chains, so
   the strong filter (and the bind-time pre-check) get sharper — while
   the negation guard still kills and old instances still expire. *)
let neg_extras_pattern =
  Pattern.make_full_exn ~schema ~sets:[ [ v "a" ]; [ v "b" ] ]
    ~negations:[ (0, v "x") ]
    ~where:
      ([
         label "a" "a";
         label "b" "b";
         label "x" "x";
         Pattern.Spec.const "a" "ID" Predicate.Eq (Value.Int 1);
       ]
      @ Pattern.Spec.
          [
            fields "b" "ID" Predicate.Eq "a" "ID";
            fields "x" "ID" Predicate.Eq "a" "ID";
          ])
    ~within:8

let neg_extras_relation =
  rel
    [
      (1, "a", 0, 0);
      (2, "a", 0, 1);
      (* kills nothing: wrong ID *)
      (2, "x", 0, 2);
      (1, "b", 0, 3);
      (* second round: the x guard kills before b arrives *)
      (1, "a", 0, 10);
      (1, "x", 0, 11);
      (1, "b", 0, 12);
      (* third round: the a expires (20 + 8 < 30) before its b *)
      (1, "a", 0, 20);
      (1, "b", 0, 30);
    ]

let test_extras_with_negation_and_expiry () =
  let r = Ses_analysis.Analyzer.analyze_pattern neg_extras_pattern in
  Alcotest.(check bool) "extras active" true
    (r.Ses_analysis.Analyzer.filter_extras <> []);
  let automaton = Automaton.of_pattern neg_extras_pattern in
  let baseline = Engine.run_relation automaton neg_extras_relation in
  Alcotest.(check bool) "kill exercised" true
    (baseline.Engine.metrics.Metrics.instances_killed >= 1);
  Alcotest.(check bool) "expiry exercised" true
    (baseline.Engine.metrics.Metrics.instances_expired >= 1);
  check_substs neg_extras_pattern
    [ [ ("a", 1); ("b", 4) ] ]
    baseline.Engine.matches;
  check_agreement "negation + expiry + extras" neg_extras_pattern
    neg_extras_relation

(* A never-matching pattern still runs soundly everywhere: zero matches,
   zero raw, no crashes on a fully pruned automaton. *)
let test_never_matching () =
  let p =
    pattern ~within:10
      ~where:[ label "a" "x"; label "a" "y"; label "b" "b" ]
      [ [ v "a"; v "b" ] ]
  in
  let r = Ses_analysis.Analyzer.analyze_pattern p in
  Alcotest.(check bool) "proved unmatchable" true
    r.Ses_analysis.Analyzer.never_matches;
  let relation = rel [ (1, "x", 0, 1); (1, "y", 0, 2); (1, "b", 0, 3) ] in
  let automaton = Automaton.of_pattern p in
  let out = Planner.run_relation automaton relation in
  Alcotest.(check int) "no matches" 0 (List.length out.Engine.matches);
  check_agreement "never matching" p relation

(* Random workloads: whatever the analyzer decides to prune or infer on
   them, every strategy must agree with the bare engine. *)
let random_workloads_agree =
  QCheck.Test.make ~count:80
    ~name:"all strategies = bare engine under the registered analyzer"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let pat = Random_workload.pattern rng Random_workload.default_pattern in
      let r = Random_workload.relation rng Random_workload.default_relation in
      agrees_with_baseline pat r)

(* And with complete ID joins, so the partitioned path really shards. *)
let random_partitioned_agree =
  QCheck.Test.make ~count:60
    ~name:"partitionable workloads agree under the registered analyzer"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let pat =
        Random_workload.pattern rng
          { Random_workload.default_pattern with Random_workload.p_id_join = 1.0 }
      in
      let r = Random_workload.relation rng Random_workload.default_relation in
      agrees_with_baseline pat r)

let suite =
  [
    Alcotest.test_case "pruned ordering preserved" `Quick test_pruned_ordering;
    Alcotest.test_case "extras + negation + expiry preserved" `Quick
      test_extras_with_negation_and_expiry;
    Alcotest.test_case "never-matching patterns run soundly" `Quick
      test_never_matching;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ random_workloads_agree; random_partitioned_agree ]
