open Ses_core
open Helpers

let canon = Substitution.canonical

let contains all s = List.mem (canon s) (List.map canon all)

let test_figure1_contains_paper_matches () =
  let all = Naive.all_satisfying_1_3 query_q1 figure_1 in
  let outcome = run query_q1 figure_1 in
  (* Everything the engine emits satisfies 1-3, so it appears here. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "raw in oracle" true (contains all s))
    outcome.Engine.raw;
  (* The oracle is strictly larger: it also holds non-greedy variants,
     e.g. patient 2 with the later blood count e14. *)
  Alcotest.(check bool) "oracle is larger" true
    (List.length all > List.length outcome.Engine.raw)

let test_figure1_non_greedy_variant () =
  let all = Naive.all_satisfying_1_3 query_q1 figure_1 in
  let events = Ses_event.Relation.events figure_1 in
  let var name = Option.get (Ses_pattern.Pattern.var_id query_q1 name) in
  let e i = events.(i - 1) in
  (* Patient 2 with b/e14 instead of b/e13 satisfies conditions 1-3 but is
     rejected by skip-till-next-match (Example 4). *)
  let non_greedy =
    [
      (var "p", e 6);
      (var "d", e 7);
      (var "c", e 8);
      (var "p", e 10);
      (var "p", e 11);
      (var "b", e 14);
    ]
  in
  Alcotest.(check bool) "non-greedy variant in oracle" true
    (contains all non_greedy);
  let outcome = run query_q1 figure_1 in
  Alcotest.(check bool) "but not emitted by the engine" false
    (contains outcome.Engine.raw non_greedy)

let test_poisoned_branch_found_by_oracle () =
  (* The star-join scenario from test_partitioned: the engine finds no
     match, the oracle finds the entity-1 substitution. *)
  let star =
    pattern ~within:100
      [ [ v "a"; v "b"; v "c" ] ]
      ~where:
        ([ label "a" "x"; label "b" "y"; label "c" "z" ]
        @ [
            Ses_pattern.Pattern.Spec.fields "a" "ID" Ses_event.Predicate.Eq "b" "ID";
            Ses_pattern.Pattern.Spec.fields "a" "ID" Ses_event.Predicate.Eq "c" "ID";
          ])
  in
  let r =
    rel [ (1, "y", 0, 0); (2, "z", 0, 1); (1, "z", 0, 2); (1, "x", 0, 3) ]
  in
  check_substs star [] (run star r).Engine.matches;
  check_substs star
    [ [ ("a", 4); ("b", 1); ("c", 3) ] ]
    (Naive.matches star r)

let test_group_subsets () =
  let p =
    pattern ~within:20
      [ [ vplus "g" ]; [ v "z" ] ]
      ~where:[ label "g" "g"; label "z" "z" ]
  in
  let r = rel_l [ ("g", 0); ("g", 1); ("z", 2) ] in
  let all = Naive.all_satisfying_1_3 p r in
  (* {g1}, {g2}, {g1,g2}, each with z: three substitutions. *)
  Alcotest.(check int) "three combinations" 3 (List.length all);
  (* Maximality keeps only the full group. *)
  check_substs p
    [ [ ("g+", 1); ("g+", 2); ("z", 3) ] ]
    (Naive.matches p r)

let test_empty_when_unsatisfiable () =
  let p = pattern ~within:5 [ [ v "a" ] ] ~where:[ label "a" "nope" ] in
  let r = rel_l [ ("x", 0); ("y", 1) ] in
  Alcotest.(check int) "no matches" 0
    (List.length (Naive.all_satisfying_1_3 p r))

let test_too_large () =
  (* An unconstrained group variable over 25 events explodes. *)
  let p = pattern ~within:100 [ [ vplus "g" ] ] ~where:[] in
  let r = rel_l (List.init 25 (fun i -> ("x", i))) in
  Alcotest.check_raises "guard" (Naive.Too_large 1000) (fun () ->
      ignore (Naive.all_satisfying_1_3 ~limit:1000 p r))

(* Differential property: on small constrained workloads, everything the
   engine emits is in the oracle's condition-1-3 set. *)
let engine_within_oracle =
  QCheck.Test.make ~count:60 ~name:"engine raw within the naive oracle"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Ses_gen.Prng.create (Int64.of_int seed) in
      let spec =
        {
          Ses_gen.Random_workload.default_pattern with
          Ses_gen.Random_workload.p_label_cond = 1.0;
          max_vars_per_set = 2;
        }
      in
      let pat = Ses_gen.Random_workload.pattern rng spec in
      let r =
        Ses_gen.Random_workload.relation rng
          {
            Ses_gen.Random_workload.default_relation with
            Ses_gen.Random_workload.n_events = 14;
          }
      in
      match Naive.all_satisfying_1_3 ~limit:300_000 pat r with
      | exception Naive.Too_large _ -> QCheck.assume_fail ()
      | oracle ->
          let outcome =
            Ses_core.Engine.run_relation (Automaton.of_pattern pat) r
          in
          List.for_all (contains oracle) outcome.Ses_core.Engine.raw)

let suite =
  [
    Alcotest.test_case "Figure 1: oracle covers engine" `Quick
      test_figure1_contains_paper_matches;
    Alcotest.test_case "Figure 1: non-greedy variant" `Quick
      test_figure1_non_greedy_variant;
    Alcotest.test_case "poisoned branch found by oracle" `Quick
      test_poisoned_branch_found_by_oracle;
    Alcotest.test_case "group subsets" `Quick test_group_subsets;
    Alcotest.test_case "unsatisfiable pattern" `Quick test_empty_when_unsatisfiable;
    Alcotest.test_case "size guard" `Quick test_too_large;
    QCheck_alcotest.to_alcotest engine_within_oracle;
  ]
