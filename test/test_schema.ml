open Ses_event

let test_make_ok () =
  let s = Schema.make_exn [ ("A", Value.Tint); ("B", Value.Tstr) ] in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check (option int)) "index A" (Some 0) (Schema.index_of s "A");
  Alcotest.(check (option int)) "index B" (Some 1) (Schema.index_of s "B");
  Alcotest.(check (option int)) "missing" None (Schema.index_of s "C");
  Alcotest.(check string) "name_of" "B" (Schema.name_of s 1);
  Alcotest.(check bool) "type_of" true (Schema.type_of s 0 = Value.Tint)

let test_make_errors () =
  let err attrs =
    match Schema.make attrs with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "duplicate" true
    (err [ ("A", Value.Tint); ("A", Value.Tstr) ]);
  Alcotest.(check bool) "empty name" true (err [ ("", Value.Tint) ]);
  Alcotest.(check bool) "reserved T" true (err [ ("T", Value.Tint) ]);
  Alcotest.(check bool) "empty schema ok" false (err [])

let test_equal () =
  let a = Schema.make_exn [ ("A", Value.Tint) ] in
  let b = Schema.make_exn [ ("A", Value.Tint) ] in
  let c = Schema.make_exn [ ("A", Value.Tfloat) ] in
  Alcotest.(check bool) "equal" true (Schema.equal a b);
  Alcotest.(check bool) "type differs" false (Schema.equal a c)

let test_field () =
  let s = Schema.make_exn [ ("A", Value.Tint); ("B", Value.Tstr) ] in
  (match Schema.Field.resolve s "B" with
  | Ok (Schema.Field.Attr 1) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Attr 1");
  (match Schema.Field.resolve s "T" with
  | Ok Schema.Field.Timestamp -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Timestamp");
  Alcotest.(check bool) "unknown" true
    (Result.is_error (Schema.Field.resolve s "Z"));
  Alcotest.(check bool) "timestamp type" true
    (Schema.Field.type_of s Schema.Field.Timestamp = Value.Tint);
  Alcotest.(check string) "field name" "T"
    (Schema.Field.name s Schema.Field.Timestamp);
  Alcotest.(check string) "attr name" "A"
    (Schema.Field.name s (Schema.Field.Attr 0));
  Alcotest.(check bool) "field equal" true
    (Schema.Field.equal (Schema.Field.Attr 1) (Schema.Field.Attr 1));
  Alcotest.(check bool) "field differs" false
    (Schema.Field.equal (Schema.Field.Attr 1) Schema.Field.Timestamp)

let test_pp () =
  let s = Schema.make_exn [ ("A", Value.Tint) ] in
  Alcotest.(check string) "pp" "(A:int, T)" (Format.asprintf "%a" Schema.pp s)

let suite =
  [
    Alcotest.test_case "make + accessors" `Quick test_make_ok;
    Alcotest.test_case "make errors" `Quick test_make_errors;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "fields" `Quick test_field;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
