(* Direct unit tests of the state-indexed instance store: bucket order,
   the expired-prefix pop, the two-phase stage/commit discipline, and the
   O(1) size counter. Instances here are just (first_ts, seq) pairs. *)

open Ses_core

let make () = Instance_store.create ~ts_of:fst ~seq_of:snd ()

let q0 = Varset.empty

let q1 = Varset.singleton 0

let q2 = Varset.of_list [ 0; 1 ]

let fill st items =
  List.iter (fun ((_, _) as i, q) -> Instance_store.stage st q i) items;
  Instance_store.commit st

let test_size_tracking () =
  let st = make () in
  Alcotest.(check int) "empty" 0 (Instance_store.size st);
  Instance_store.stage st q1 (0, 1);
  Alcotest.(check int) "staged is invisible" 0 (Instance_store.size st);
  Instance_store.commit st;
  Alcotest.(check int) "committed" 1 (Instance_store.size st);
  fill st [ ((1, 2), q1); ((0, 3), q2) ];
  Alcotest.(check int) "three total" 3 (Instance_store.size st);
  Alcotest.(check int) "bucket q1" 2 (Instance_store.bucket_size st q1);
  Alcotest.(check int) "bucket q2" 1 (Instance_store.bucket_size st q2);
  Alcotest.(check int) "bucket q0 empty" 0 (Instance_store.bucket_size st q0);
  Instance_store.clear st;
  Alcotest.(check int) "cleared" 0 (Instance_store.size st)

let test_bucket_order () =
  let st = make () in
  (* Staged out of order; ties on ts broken by seq. *)
  fill st [ ((5, 3), q1); ((1, 2), q1); ((5, 1), q1); ((0, 4), q1) ];
  Alcotest.(check (list (pair int int)))
    "sorted by (ts, seq)"
    [ (0, 4); (1, 2); (5, 1); (5, 3) ]
    (Instance_store.take_all st q1);
  Alcotest.(check int) "take_all drains" 0 (Instance_store.size st)

let test_commit_merges_into_existing () =
  let st = make () in
  fill st [ ((1, 1), q1); ((5, 2), q1) ];
  fill st [ ((0, 3), q1); ((3, 4), q1); ((9, 5), q1) ];
  Alcotest.(check (list (pair int int)))
    "interleaved merge"
    [ (0, 3); (1, 1); (3, 4); (5, 2); (9, 5) ]
    (Instance_store.take_all st q1)

let test_pop_expired_prefix () =
  let st = make () in
  fill st [ ((0, 1), q1); ((2, 2), q1); ((4, 3), q1); ((6, 4), q1) ];
  let dead = Instance_store.pop_expired st q1 ~expired:(fun (ts, _) -> ts < 4) in
  Alcotest.(check (list (pair int int))) "expired prefix" [ (0, 1); (2, 2) ] dead;
  Alcotest.(check int) "survivors stay" 2 (Instance_store.size st);
  let none = Instance_store.pop_expired st q1 ~expired:(fun _ -> false) in
  Alcotest.(check (list (pair int int))) "nothing expired" [] none;
  let rest = Instance_store.pop_expired st q1 ~expired:(fun _ -> true) in
  Alcotest.(check (list (pair int int)))
    "rest expires in order" [ (4, 3); (6, 4) ] rest;
  Alcotest.(check int) "empty again" 0 (Instance_store.size st)

let test_take_all_put_back () =
  let st = make () in
  fill st [ ((0, 1), q1); ((2, 2), q1); ((4, 3), q1) ];
  let items = Instance_store.take_all st q1 in
  let survivors = List.filter (fun (_, s) -> s <> 2) items in
  Instance_store.put_back st q1 survivors;
  Alcotest.(check int) "two back" 2 (Instance_store.size st);
  Alcotest.(check (list (pair int int)))
    "order preserved" [ (0, 1); (4, 3) ]
    (Instance_store.take_all st q1)

let test_fold_buckets_order () =
  let st = make () in
  fill st [ ((0, 1), q2); ((0, 2), q0); ((0, 3), q1); ((1, 4), q1) ];
  let states =
    List.rev
      (Instance_store.fold_buckets (fun q _ acc -> q :: acc) st [])
  in
  (* Ascending state order, deterministic regardless of hash layout. *)
  Alcotest.(check bool) "ascending states" true
    (states = List.sort Varset.compare states);
  Alcotest.(check int) "three non-empty buckets" 3 (List.length states);
  Alcotest.(check (list (pair int int)))
    "to_list concatenates bucket order"
    (Instance_store.fold_buckets (fun _ items acc -> acc @ items) st [])
    (Instance_store.to_list st)

let suite =
  [
    Alcotest.test_case "size tracking" `Quick test_size_tracking;
    Alcotest.test_case "bucket order" `Quick test_bucket_order;
    Alcotest.test_case "commit merges" `Quick test_commit_merges_into_existing;
    Alcotest.test_case "pop expired prefix" `Quick test_pop_expired_prefix;
    Alcotest.test_case "take_all / put_back" `Quick test_take_all_put_back;
    Alcotest.test_case "fold order" `Quick test_fold_buckets_order;
  ]
