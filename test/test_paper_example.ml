(* End-to-end checks of the paper's running example: relation Event of
   Figure 1, Query Q1, and the matches the paper reports in Examples 1
   and 4. *)

open Ses_core
open Helpers

let outcome = run query_q1 figure_1

(* The paper's intended results (Example 1 / Example 4):
   patient 1: {c/e1, d/e3, p+/e4, p+/e9, b/e12}
   patient 2: {p+/e6, d/e7, c/e8, p+/e10, p+/e11, b/e13}. *)
let patient1 = [ ("b", 12); ("c", 1); ("d", 3); ("p+", 4); ("p+", 9) ]

let patient2 = [ ("b", 13); ("c", 8); ("d", 7); ("p+", 6); ("p+", 10); ("p+", 11) ]

let test_matches () =
  check_substs query_q1
    [ List.sort compare_name_seq patient1; List.sort compare_name_seq patient2 ]
    outcome.Engine.matches

let test_blood_counts_ignored () =
  (* e2 and e5 are measured during (not after) the administrations and must
     not appear in any match (Example 1). *)
  let used =
    List.concat_map
      (fun s -> List.map snd (Substitution.canonical s))
      outcome.Engine.matches
  in
  Alcotest.(check bool) "e2 unused" false (List.mem 1 used);
  Alcotest.(check bool) "e5 unused" false (List.mem 4 used)

let test_e14_not_bound () =
  (* Condition 4 / skip-till-next-match: e13 is bound for patient 2, not the
     later e14 (Example 4). *)
  let used =
    List.concat_map
      (fun s -> List.map snd (Substitution.canonical s))
      outcome.Engine.matches
  in
  Alcotest.(check bool) "e14 unused" false (List.mem 13 used)

let test_maximality () =
  (* Example 4's second counterexample: dropping p+/e11 yields a
     substitution that satisfies conditions 1-3 but is not maximal. It must
     not be reported. *)
  let without_e11 =
    List.sort compare_name_seq [ ("b", 13); ("c", 8); ("d", 7); ("p+", 6); ("p+", 10) ]
  in
  Alcotest.(check bool) "non-maximal absent" false
    (List.mem without_e11 (substs_repr query_q1 outcome.Engine.matches))

let test_raw_candidates () =
  (* The automaton additionally emits the late-start patient-2 candidate
     rooted at e7; finalization removes it by subsumption. *)
  Alcotest.(check int) "three raw candidates" 3 (List.length outcome.Engine.raw);
  Alcotest.(check int) "two final matches" 2 (List.length outcome.Engine.matches)

let test_conditions_1_3_hold () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "satisfies Definition 2 (1-3)" true
        (Substitution.satisfies_1_3 query_q1 s))
    outcome.Engine.raw

let test_spans () =
  (* Figure 2: patient 2's match spans 191 hours ≤ 264. *)
  let p2 =
    List.find
      (fun s -> subst_repr query_q1 s = List.sort compare_name_seq patient2)
      outcome.Engine.matches
  in
  Alcotest.(check int) "191 hours" 191 (Substitution.span p2);
  let p1 =
    List.find
      (fun s -> subst_repr query_q1 s = List.sort compare_name_seq patient1)
      outcome.Engine.matches
  in
  Alcotest.(check int) "216 hours" 216 (Substitution.span p1)

let test_example3_decomposition () =
  (* Example 3: γ = {c/e1, d/e3, p+/e4, p+/e9, b/e12} satisfies Θγ — the
     instantiation decomposes over the two p+ bindings. *)
  let events = Ses_event.Relation.events figure_1 in
  let e i = events.(i - 1) in
  let var name = Option.get (Ses_pattern.Pattern.var_id query_q1 name) in
  let gamma =
    [
      (var "c", e 1);
      (var "d", e 3);
      (var "p", e 4);
      (var "p", e 9);
      (var "b", e 12);
    ]
  in
  Alcotest.(check bool) "theta holds" true
    (Substitution.satisfies_theta query_q1 gamma);
  (* Swapping in e10 (patient 2) violates the c.ID = p+.ID join for one of
     the decomposed instantiations. *)
  let gamma_bad =
    [
      (var "c", e 1);
      (var "d", e 3);
      (var "p", e 4);
      (var "p", e 10);
      (var "b", e 12);
    ]
  in
  Alcotest.(check bool) "theta violated" false
    (Substitution.satisfies_theta query_q1 gamma_bad)

let test_brute_force_agrees () =
  (* Example 11 uses the all-singleton variant of Q1; the brute force must
     find the same finalized matches as the SES automaton. *)
  let ses = run query_q1_singleton figure_1 in
  let bf = Ses_baseline.Brute_force.run_relation query_q1_singleton figure_1 in
  Alcotest.(check (list (list (pair string int))))
    "BF = SES"
    (substs_repr query_q1_singleton ses.Engine.matches)
    (substs_repr query_q1_singleton bf.Ses_baseline.Brute_force.matches)

let test_metrics () =
  let m = outcome.Engine.metrics in
  Alcotest.(check int) "14 events" 14 m.Metrics.events_seen;
  Alcotest.(check int) "3 raw matches" 3 m.Metrics.matches_emitted;
  Alcotest.(check bool) "no expiry (window covers all)" true
    (m.Metrics.instances_expired = 0)

let suite =
  [
    Alcotest.test_case "Q1 matches (Examples 1 and 4)" `Quick test_matches;
    Alcotest.test_case "early blood counts ignored" `Quick test_blood_counts_ignored;
    Alcotest.test_case "skip-till-next: e13 over e14" `Quick test_e14_not_bound;
    Alcotest.test_case "maximality: p+/e11 included" `Quick test_maximality;
    Alcotest.test_case "raw candidates" `Quick test_raw_candidates;
    Alcotest.test_case "Definition 2 (1-3) on all emissions" `Quick
      test_conditions_1_3_hold;
    Alcotest.test_case "match spans (Figure 2)" `Quick test_spans;
    Alcotest.test_case "Example 3: decomposition" `Quick test_example3_decomposition;
    Alcotest.test_case "Example 11: brute force agrees" `Quick
      test_brute_force_agrees;
    Alcotest.test_case "metrics" `Quick test_metrics;
  ]
