(* Domain_pool unit tests: per-worker FIFO ordering, quiesce as a
   read barrier, idempotent shutdown, and failure propagation without
   producer deadlock. Workers only touch their own array slot, so the
   quiesce/shutdown happens-before edges make the caller's reads
   race-free. *)

open Ses_core

let test_fifo_per_worker () =
  let domains = 3 in
  let sink = Array.make domains [] in
  let pool =
    Domain_pool.create ~domains (fun i x -> sink.(i) <- x :: sink.(i))
  in
  Alcotest.(check int) "size" domains (Domain_pool.size pool);
  for x = 0 to 299 do
    Domain_pool.send pool (x mod domains) x
  done;
  Domain_pool.shutdown pool;
  Array.iteri
    (fun i acc ->
      let expected = List.init 100 (fun k -> (k * domains) + i) in
      Alcotest.(check (list int))
        (Printf.sprintf "worker %d processes in send order" i)
        expected (List.rev acc))
    sink

let test_quiesce_and_idempotent_shutdown () =
  let counts = Array.make 2 0 in
  let pool =
    Domain_pool.create ~domains:2 (fun i (_ : int) ->
        counts.(i) <- counts.(i) + 1)
  in
  for x = 1 to 50 do
    Domain_pool.send pool (x mod 2) x
  done;
  Domain_pool.quiesce pool;
  Alcotest.(check int) "all processed at quiesce" 50 (counts.(0) + counts.(1));
  (* The pool keeps accepting work after a quiesce. *)
  for x = 1 to 30 do
    Domain_pool.send pool (x mod 2) x
  done;
  Domain_pool.quiesce pool;
  Alcotest.(check int) "second batch processed" 80 (counts.(0) + counts.(1));
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* no-op, not an error *)
  Domain_pool.quiesce pool;
  Alcotest.(check int) "shutdown drained everything" 80
    (counts.(0) + counts.(1));
  Alcotest.check_raises "send after shutdown"
    (Invalid_argument "Domain_pool.send: pool is shut down") (fun () ->
      Domain_pool.send pool 0 0)

(* A queue bound far smaller than the message count: send must block on
   the full queue rather than drop or fail, so every message still gets
   processed. *)
let test_bounded_queue_backpressure () =
  let counts = Array.make 1 0 in
  let pool =
    Domain_pool.create ~capacity:2 ~domains:1 (fun _ (_ : int) ->
        counts.(0) <- counts.(0) + 1)
  in
  for x = 1 to 500 do
    Domain_pool.send pool 0 x
  done;
  Domain_pool.shutdown pool;
  Alcotest.(check int) "all messages delivered" 500 counts.(0)

exception Boom

(* A worker exception must reach the producer at a later [send] or at a
   synchronisation point — and the worker must keep draining its queue
   meanwhile, so the producer can never deadlock on a full queue. The
   send volume here is far beyond the queue capacity on purpose. *)
let test_failure_propagates () =
  let pool =
    Domain_pool.create ~capacity:16 ~domains:1 (fun _ x ->
        if x = 5 then raise Boom)
  in
  let surfaced = ref false in
  (try
     for x = 0 to 10_000 do
       Domain_pool.send pool 0 x
     done
   with Boom -> surfaced := true);
  if not !surfaced then (
    try Domain_pool.quiesce pool with Boom -> surfaced := true);
  Alcotest.(check bool) "worker exception re-raised to producer" true
    !surfaced;
  (* Shutdown re-raises too, but still joins the domains first. *)
  (try Domain_pool.shutdown pool with Boom -> ());
  Alcotest.check_raises "pool unusable after shutdown"
    (Invalid_argument "Domain_pool.send: pool is shut down") (fun () ->
      Domain_pool.send pool 0 0)

let test_validation () =
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Domain_pool.create: domains < 1") (fun () ->
      ignore (Domain_pool.create ~domains:0 (fun _ (_ : int) -> ())));
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Domain_pool.create: capacity < 1") (fun () ->
      ignore (Domain_pool.create ~capacity:0 ~domains:1 (fun _ (_ : int) -> ())));
  Alcotest.(check bool) "recommended is positive" true
    (Domain_pool.recommended () >= 1)

let suite =
  [
    Alcotest.test_case "per-worker FIFO order" `Quick test_fifo_per_worker;
    Alcotest.test_case "quiesce and idempotent shutdown" `Quick
      test_quiesce_and_idempotent_shutdown;
    Alcotest.test_case "bounded queue backpressure" `Quick
      test_bounded_queue_backpressure;
    Alcotest.test_case "failure propagation" `Quick test_failure_propagates;
    Alcotest.test_case "argument validation" `Quick test_validation;
  ]
