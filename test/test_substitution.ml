open Ses_event
open Ses_core
open Helpers

(* Pattern <{a, g+}, {z}> over the test schema, with label conditions. *)
let p =
  pattern ~within:10
    [ [ v "a"; vplus "g" ]; [ v "z" ] ]
    ~where:[ label "a" "a"; label "g" "g"; label "z" "z" ]

let a = Option.get (Ses_pattern.Pattern.var_id p "a")

let g = Option.get (Ses_pattern.Pattern.var_id p "g")

let z = Option.get (Ses_pattern.Pattern.var_id p "z")

let ev seq l ts =
  Event.make ~seq ~ts [| Value.Int 1; Value.Str l; Value.Int 0 |]

let e_a = ev 0 "a" 0

let e_g1 = ev 1 "g" 1

let e_g2 = ev 2 "g" 2

let e_z = ev 3 "z" 5

let full = [ (a, e_a); (g, e_g1); (g, e_g2); (z, e_z) ]

let test_canonical () =
  Alcotest.(check (list (pair int int)))
    "sorted pairs"
    [ (a, 0); (g, 1); (g, 2); (z, 3) ]
    (Substitution.canonical full);
  Alcotest.(check bool) "order irrelevant" true
    (Substitution.equal full (List.rev full));
  Alcotest.(check bool) "different" false
    (Substitution.equal full [ (a, e_a) ])

let test_subset () =
  let small = [ (a, e_a); (g, e_g1); (z, e_z) ] in
  Alcotest.(check bool) "subset" true (Substitution.subset small full);
  Alcotest.(check bool) "proper" true (Substitution.proper_subset small full);
  Alcotest.(check bool) "not proper of self" false
    (Substitution.proper_subset full full);
  Alcotest.(check bool) "not superset" false (Substitution.subset full small)

let test_bindings_accessors () =
  Alcotest.(check int) "g has two" 2 (List.length (Substitution.bindings_of full g));
  Alcotest.(check int) "a has one" 1 (List.length (Substitution.bindings_of full a));
  Alcotest.(check int) "events" 4 (List.length (Substitution.events full));
  (match Substitution.min_binding full with
  | Some (var, e) ->
      Alcotest.(check int) "min var" a var;
      Alcotest.(check int) "min seq" 0 (Event.seq e)
  | None -> Alcotest.fail "expected a binding");
  Alcotest.(check (option int)) "min_ts" (Some 0) (Substitution.min_ts full);
  Alcotest.(check int) "span" 5 (Substitution.span full);
  Alcotest.(check (option int)) "empty min" None (Substitution.min_ts []);
  Alcotest.(check int) "empty span" 0 (Substitution.span [])

let test_min_binding_tie () =
  (* Equal timestamps: the event with the smaller sequence number wins. *)
  let x = ev 5 "a" 3 and y = ev 4 "g" 3 in
  match Substitution.min_binding [ (a, x); (g, y) ] with
  | Some (_, e) -> Alcotest.(check int) "tie by seq" 4 (Event.seq e)
  | None -> Alcotest.fail "expected a binding"

let test_well_formed () =
  Alcotest.(check bool) "full ok" true (Substitution.well_formed p full);
  Alcotest.(check bool) "missing z" false
    (Substitution.well_formed p [ (a, e_a); (g, e_g1) ]);
  Alcotest.(check bool) "duplicate singleton" false
    (Substitution.well_formed p ((a, ev 9 "a" 4) :: full));
  Alcotest.(check bool) "group needs >= 1" false
    (Substitution.well_formed p [ (a, e_a); (z, e_z) ]);
  Alcotest.(check bool) "duplicate event" false
    (Substitution.well_formed p [ (a, e_a); (g, e_a); (z, e_z) ])

let test_conditions_1_3 () =
  Alcotest.(check bool) "theta ok" true (Substitution.satisfies_theta p full);
  Alcotest.(check bool) "theta violated" false
    (Substitution.satisfies_theta p [ (a, e_g1); (g, e_g2); (z, e_z) ]);
  Alcotest.(check bool) "order ok" true (Substitution.satisfies_order p full);
  (* z before the group events violates condition 2. *)
  let early_z = ev 9 "z" 0 in
  Alcotest.(check bool) "order violated" false
    (Substitution.satisfies_order p [ (a, e_a); (g, e_g1); (z, early_z) ]);
  (* Equal timestamps across sets are not strictly ordered. *)
  let z_tie = ev 9 "z" 2 in
  Alcotest.(check bool) "strictness" false
    (Substitution.satisfies_order p [ (a, e_a); (g, e_g2); (z, z_tie) ]);
  Alcotest.(check bool) "window ok" true (Substitution.satisfies_window p full);
  let late_z = ev 9 "z" 100 in
  Alcotest.(check bool) "window violated" false
    (Substitution.satisfies_window p [ (a, e_a); (g, e_g1); (z, late_z) ]);
  Alcotest.(check bool) "1-3 conjunction" true (Substitution.satisfies_1_3 p full)

let test_finalize_dedup () =
  let out = Substitution.finalize p [ full; List.rev full; full ] in
  Alcotest.(check int) "one survivor" 1 (List.length out)

let test_finalize_operational_subsumption () =
  let small = [ (a, e_a); (g, e_g1); (z, e_z) ] in
  let out = Substitution.finalize p [ small; full ] in
  check_substs p
    [ [ ("a", 1); ("g+", 2); ("g+", 3); ("z", 4) ] ]
    out;
  (* Incomparable substitutions both survive. *)
  let other = [ (a, ev 9 "a" 1); (g, e_g2); (z, e_z) ] in
  let out2 = Substitution.finalize p [ full; other ] in
  Alcotest.(check int) "both kept" 2 (List.length out2)

let test_finalize_literal_minT_restriction () =
  (* Under the literal policy a strict subset with a different minT
     binding survives condition 5 — the late-start anomaly discussed in
     the interface documentation. *)
  let suffix = [ (g, e_g1); (g, e_g2); (z, e_z); (a, ev 9 "a" 1) ] in
  ignore suffix;
  let small_diff_start = [ (a, ev 9 "a" 1); (g, e_g2); (z, e_z) ] in
  let out =
    Substitution.finalize ~policy:Substitution.Literal p
      [ full; small_diff_start ]
  in
  Alcotest.(check int) "literal keeps both" 2 (List.length out);
  (* Same minT binding: the subset is dropped under both policies. *)
  let small_same_start = [ (a, e_a); (g, e_g1); (z, e_z) ] in
  let out2 =
    Substitution.finalize ~policy:Substitution.Literal p
      [ full; small_same_start ]
  in
  Alcotest.(check int) "literal drops same-start subset" 1 (List.length out2)

let test_finalize_sorted () =
  let later = [ (a, ev 9 "a" 3); (g, ev 10 "g" 4); (z, e_z) ] in
  let out = Substitution.finalize p [ later; full ] in
  Alcotest.(check (option int)) "earliest first" (Some 0)
    (Substitution.min_ts (List.hd out))

let test_pp () =
  Alcotest.(check string) "rendering" "{a/e1, g+/e2, g+/e3, z/e4}"
    (Format.asprintf "%a" (Substitution.pp p) full)

let suite =
  [
    Alcotest.test_case "canonical/equal" `Quick test_canonical;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "accessors" `Quick test_bindings_accessors;
    Alcotest.test_case "min_binding tie" `Quick test_min_binding_tie;
    Alcotest.test_case "well_formed" `Quick test_well_formed;
    Alcotest.test_case "conditions 1-3" `Quick test_conditions_1_3;
    Alcotest.test_case "finalize: dedup" `Quick test_finalize_dedup;
    Alcotest.test_case "finalize: operational subsumption" `Quick
      test_finalize_operational_subsumption;
    Alcotest.test_case "finalize: literal minT restriction" `Quick
      test_finalize_literal_minT_restriction;
    Alcotest.test_case "finalize: deterministic order" `Quick test_finalize_sorted;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
