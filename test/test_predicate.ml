open Ses_event

let i n = Value.Int n

let s x = Value.Str x

let f x = Value.Float x

let test_eval_ops () =
  Alcotest.(check bool) "eq" true (Predicate.eval Predicate.Eq (i 3) (i 3));
  Alcotest.(check bool) "neq" true (Predicate.eval Predicate.Neq (i 3) (i 4));
  Alcotest.(check bool) "lt" true (Predicate.eval Predicate.Lt (i 3) (i 4));
  Alcotest.(check bool) "le eq" true (Predicate.eval Predicate.Le (i 4) (i 4));
  Alcotest.(check bool) "gt" true (Predicate.eval Predicate.Gt (i 5) (i 4));
  Alcotest.(check bool) "ge" true (Predicate.eval Predicate.Ge (i 4) (i 4));
  Alcotest.(check bool) "lt false" false (Predicate.eval Predicate.Lt (i 4) (i 4));
  Alcotest.(check bool) "strings" true
    (Predicate.eval Predicate.Lt (s "abc") (s "abd"));
  Alcotest.(check bool) "coercion" true
    (Predicate.eval Predicate.Eq (i 3) (f 3.0))

let test_eval_incompatible () =
  Alcotest.(check bool) "eq cross-type" false
    (Predicate.eval Predicate.Eq (i 3) (s "3"));
  Alcotest.(check bool) "neq cross-type" true
    (Predicate.eval Predicate.Neq (i 3) (s "3"));
  Alcotest.(check bool) "lt cross-type" false
    (Predicate.eval Predicate.Lt (i 3) (s "zzz"));
  Alcotest.(check bool) "ge cross-type" false
    (Predicate.eval Predicate.Ge (s "zzz") (i 3))

let test_negate_flip () =
  List.iter
    (fun op ->
      let again = Predicate.negate (Predicate.negate op) in
      Alcotest.(check string) "negate involutive" (Predicate.to_string op)
        (Predicate.to_string again);
      let again = Predicate.flip (Predicate.flip op) in
      Alcotest.(check string) "flip involutive" (Predicate.to_string op)
        (Predicate.to_string again))
    Predicate.all_ops

let parses s op =
  match Predicate.of_string s with Some got -> got = op | None -> false

let test_of_string () =
  Alcotest.(check bool) "eq" true (parses "=" Predicate.Eq);
  Alcotest.(check bool) "neq" true (parses "<>" Predicate.Neq);
  Alcotest.(check bool) "neq alt" true (parses "!=" Predicate.Neq);
  Alcotest.(check bool) "le" true (parses "<=" Predicate.Le);
  Alcotest.(check bool) "unknown" true (Predicate.of_string "~" = None)

let sat = Predicate.conjunction_satisfiable

let test_conjunction_eq () =
  Alcotest.(check bool) "eq same" true (sat (Predicate.Eq, s "C") (Predicate.Eq, s "C"));
  Alcotest.(check bool) "eq diff" false (sat (Predicate.Eq, s "C") (Predicate.Eq, s "D"));
  Alcotest.(check bool) "eq vs neq same" false
    (sat (Predicate.Eq, i 5) (Predicate.Neq, i 5));
  Alcotest.(check bool) "eq vs neq diff" true
    (sat (Predicate.Eq, i 5) (Predicate.Neq, i 6))

let test_conjunction_ranges () =
  Alcotest.(check bool) "disjoint ranges" false
    (sat (Predicate.Lt, i 3) (Predicate.Gt, i 5));
  Alcotest.(check bool) "touching exclusive" false
    (sat (Predicate.Lt, i 3) (Predicate.Ge, i 3));
  Alcotest.(check bool) "touching inclusive" true
    (sat (Predicate.Le, i 3) (Predicate.Ge, i 3));
  Alcotest.(check bool) "dense between" true
    (sat (Predicate.Gt, f 4.0) (Predicate.Lt, f 5.0));
  Alcotest.(check bool) "eq inside range" true
    (sat (Predicate.Eq, i 4) (Predicate.Le, i 10));
  Alcotest.(check bool) "eq outside range" false
    (sat (Predicate.Eq, i 40) (Predicate.Le, i 10))

let test_conjunction_neq () =
  Alcotest.(check bool) "neq neq" true (sat (Predicate.Neq, i 1) (Predicate.Neq, i 1));
  Alcotest.(check bool) "neq with range" true
    (sat (Predicate.Neq, i 3) (Predicate.Le, i 3))

let test_conjunction_strings () =
  Alcotest.(check bool) "below empty string" false
    (sat (Predicate.Lt, s "") (Predicate.Neq, s "x"));
  Alcotest.(check bool) "le empty string" true
    (sat (Predicate.Le, s "") (Predicate.Neq, s "x"));
  Alcotest.(check bool) "ge empty string" true
    (sat (Predicate.Ge, s "") (Predicate.Eq, s "q"))

let test_conjunction_cross_type () =
  Alcotest.(check bool) "eq int vs eq str" false
    (sat (Predicate.Eq, i 1) (Predicate.Eq, s "1"));
  Alcotest.(check bool) "neq int vs eq str" true
    (sat (Predicate.Neq, i 1) (Predicate.Eq, s "1"));
  Alcotest.(check bool) "eq int vs neq str" true
    (sat (Predicate.Eq, i 1) (Predicate.Neq, s "1"));
  Alcotest.(check bool) "lt int vs gt str" false
    (sat (Predicate.Lt, i 1) (Predicate.Gt, s "a"))

(* Soundness: whenever the decision procedure says "unsatisfiable", no value
   from a dense sample grid satisfies both predicates. *)
let op_gen = QCheck.oneofl Predicate.all_ops

let int_pred = QCheck.(pair op_gen (map (fun n -> i (n - 10)) (int_bound 20)))

let unsat_is_sound =
  QCheck.Test.make ~count:500 ~name:"conjunction_satisfiable soundness (ints)"
    QCheck.(pair int_pred int_pred)
    (fun (p1, p2) ->
      sat p1 p2
      || not
           (List.exists
              (fun k ->
                let x = f (float_of_int k /. 2.0) in
                Predicate.eval (fst p1) x (snd p1)
                && Predicate.eval (fst p2) x (snd p2))
              (List.init 101 (fun k -> k - 50))))

(* Domain: the n-ary typed generalization, property-tested against
   brute-force evaluation over small value grids. *)
module D = Predicate.Domain

let int_grid = List.init 81 (fun k -> i (k - 40))

let float_grid = List.init 161 (fun k -> f (float_of_int (k - 80) /. 2.0))

let string_grid =
  List.map s [ ""; "a"; "ab"; "b"; "ba"; "c"; "x"; "xy"; "z" ]

let atom_gen const =
  QCheck.(pair op_gen const)

let int_const = QCheck.(map (fun n -> i (n - 10)) (int_bound 20))

let float_const =
  QCheck.(map (fun n -> f (float_of_int (n - 10) /. 2.0)) (int_bound 40))

let string_const = QCheck.(map s (oneofl [ ""; "a"; "ab"; "b"; "c"; "x" ]))

let atoms_gen const = QCheck.(list_of_size Gen.(0 -- 4) (atom_gen const))

let satisfies atoms v =
  List.for_all (fun (op, c) -> Predicate.eval op v c) atoms

(* [mem] agrees exactly with evaluating every atom, and [is_empty] with
   the grid: ints are exact, so the directions coincide; the grid covers
   every boundary the constants can produce. *)
let domain_matches_brute_force name ty const grid =
  QCheck.Test.make ~count:500 ~name
    (atoms_gen const)
    (fun atoms ->
      let d = D.of_atoms ty atoms in
      List.for_all (fun v -> D.mem d v = satisfies atoms v) grid
      && ((not (D.is_empty d)) || not (List.exists (satisfies atoms) grid)))

let domain_ints =
  domain_matches_brute_force "Domain vs brute force (ints)" Value.Tint
    int_const int_grid

let domain_floats =
  domain_matches_brute_force "Domain vs brute force (floats)" Value.Tfloat
    float_const float_grid

let domain_strings =
  domain_matches_brute_force "Domain vs brute force (strings)" Value.Tstr
    string_const string_grid

(* The binary procedure against the domain construction: over a dense
   type they must agree exactly; over ints the domain is sharper, so
   binary-unsat must imply domain-empty. *)
let domain_vs_binary =
  QCheck.Test.make ~count:1000 ~name:"Domain generalizes conjunction_satisfiable"
    QCheck.(pair (atom_gen float_const) (atom_gen float_const))
    (fun (a1, a2) ->
      sat a1 a2 = not (D.is_empty (D.of_atoms Value.Tfloat [ a1; a2 ])))

let domain_vs_binary_int =
  QCheck.Test.make ~count:1000
    ~name:"int Domain refines conjunction_satisfiable"
    QCheck.(pair (atom_gen int_const) (atom_gen int_const))
    (fun (a1, a2) ->
      sat a1 a2 || D.is_empty (D.of_atoms Value.Tint [ a1; a2 ]))

(* [implies d atom]: every grid value in the domain satisfies the atom. *)
let implies_sound =
  QCheck.Test.make ~count:500 ~name:"Domain.implies soundness (ints)"
    QCheck.(pair (atoms_gen int_const) (atom_gen int_const))
    (fun (atoms, atom) ->
      let d = D.of_atoms Value.Tint atoms in
      (not (D.implies d atom))
      || List.for_all
           (fun v -> (not (D.mem d v)) || Predicate.eval (fst atom) v (snd atom))
           int_grid)

(* [propagate ty op d] over-approximates {x : exists y in d. x op y}. *)
let propagate_sound =
  QCheck.Test.make ~count:500 ~name:"Domain.propagate over-approximates (ints)"
    QCheck.(pair op_gen (atoms_gen int_const))
    (fun (op, atoms) ->
      let d = D.of_atoms Value.Tint atoms in
      let p = D.propagate Value.Tint op d in
      List.for_all
        (fun x ->
          (not
             (List.exists
                (fun y -> D.mem d y && Predicate.eval op x y)
                int_grid))
          || D.mem p x)
        int_grid)

let suite =
  [
    Alcotest.test_case "eval operators" `Quick test_eval_ops;
    Alcotest.test_case "eval incompatible types" `Quick test_eval_incompatible;
    Alcotest.test_case "negate/flip involutions" `Quick test_negate_flip;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "conjunction: equality" `Quick test_conjunction_eq;
    Alcotest.test_case "conjunction: ranges" `Quick test_conjunction_ranges;
    Alcotest.test_case "conjunction: inequality" `Quick test_conjunction_neq;
    Alcotest.test_case "conjunction: string bounds" `Quick test_conjunction_strings;
    Alcotest.test_case "conjunction: cross-type" `Quick test_conjunction_cross_type;
    QCheck_alcotest.to_alcotest unsat_is_sound;
    QCheck_alcotest.to_alcotest domain_ints;
    QCheck_alcotest.to_alcotest domain_floats;
    QCheck_alcotest.to_alcotest domain_strings;
    QCheck_alcotest.to_alcotest domain_vs_binary;
    QCheck_alcotest.to_alcotest domain_vs_binary_int;
    QCheck_alcotest.to_alcotest implies_sound;
    QCheck_alcotest.to_alcotest propagate_sound;
  ]
