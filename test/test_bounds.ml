(* Theorems 1-3: the measured number of simultaneous automaton instances
   stays within the theoretical upper bounds. *)

open Ses_core
open Ses_harness
open Helpers

let w_of relation tau = Ses_event.Relation.window_size relation tau

let measured p relation =
  (run p relation).Engine.metrics.Metrics.max_simultaneous_instances

let test_per_set_formulas () =
  (* Case 1. *)
  let excl =
    pattern ~within:50 [ [ v "a"; v "b" ] ] ~where:[ label "a" "x"; label "b" "y" ]
  in
  Alcotest.(check (float 0.0)) "case 1 = 1" 1.0 (Bounds.per_set excl 0 ~w:100);
  (* Case 2. *)
  let overlap =
    pattern ~within:50
      [ [ v "a"; v "b"; v "c" ] ]
      ~where:[ label "a" "x"; label "b" "x"; label "c" "x" ]
  in
  Alcotest.(check (float 0.0)) "case 2 = 3!" 6.0 (Bounds.per_set overlap 0 ~w:100);
  (* Case 3 with k = 1: (|V1|-1)! * W^|V1|. *)
  let one_group =
    pattern ~within:50
      [ [ v "a"; v "b"; vplus "g" ] ]
      ~where:[ label "a" "x"; label "b" "x"; label "g" "x" ]
  in
  Alcotest.(check (float 0.0)) "case 3 k=1" (2.0 *. (10.0 ** 3.0))
    (Bounds.per_set one_group 0 ~w:10);
  (* Case 3 with k = 2: k * (|V1|-1)! * k^(W*|V1|). *)
  let two_groups =
    pattern ~within:50
      [ [ vplus "g"; vplus "h" ] ]
      ~where:[ label "g" "x"; label "h" "x" ]
  in
  Alcotest.(check (float 0.0)) "case 3 k=2"
    (2.0 *. 1.0 *. (2.0 ** 6.0))
    (Bounds.per_set two_groups 0 ~w:3)

let test_overall_formula () =
  (* Two sets, worst per-set bound 6, W = 10: 10 * 6^2. *)
  let p =
    pattern ~within:50
      [ [ v "a"; v "b"; v "c" ]; [ v "z" ] ]
      ~where:[ label "a" "x"; label "b" "x"; label "c" "x"; label "z" "z" ]
  in
  Alcotest.(check (float 0.0)) "overall" 360.0 (Bounds.overall p ~w:10);
  Alcotest.(check bool) "describe" true (String.length (Bounds.describe p ~w:10) > 0)

let test_case1_measured_constant () =
  (* Pairwise exclusive variables: instances do not blow up with W. *)
  let p =
    pattern ~within:20
      [ [ v "a"; v "b" ] ]
      ~where:[ label "a" "x"; label "b" "y" ]
  in
  let r =
    rel_l (List.init 40 (fun i -> ((if i mod 2 = 0 then "x" else "y"), i)))
  in
  let m = measured p r in
  (* One fresh instance per event can survive one step; the bound is
     O(W * 1^n) = O(W), far below the case-2/3 blowups. *)
  Alcotest.(check bool) "bounded by overall" true
    (float_of_int m <= Bounds.overall p ~w:(w_of r 20))

let test_case2_measured_within_bound () =
  let p =
    pattern ~within:20
      [ [ v "a"; v "b"; v "c" ] ]
      ~where:[ label "a" "x"; label "b" "x"; label "c" "x" ]
  in
  let r = rel_l (List.init 30 (fun i -> ("x", i))) in
  let m = measured p r in
  Alcotest.(check bool) "within W * |V1|!" true
    (float_of_int m <= Bounds.overall p ~w:(w_of r 20))

let test_case3_measured_within_bound () =
  let p =
    pattern ~within:10
      [ [ v "a"; vplus "g" ] ]
      ~where:[ label "a" "x"; label "g" "x" ]
  in
  let r = rel_l (List.init 25 (fun i -> ("x", i))) in
  let m = measured p r in
  Alcotest.(check bool) "within W * ((|V1|-1)! W^|V1|)^n" true
    (float_of_int m <= Bounds.overall p ~w:(w_of r 10))

let test_case2_growth_is_linear_in_w () =
  (* Theorem 2 implies the per-start instance count is W-independent; the
     total growth is the linear fresh-instance term (the trend Fig. 12
     shows for P4). Duplicating the dataset must scale the peak by about
     the duplication factor, not quadratically. *)
  let p =
    pattern ~within:20
      [ [ v "a"; v "b" ] ]
      ~where:[ label "a" "x"; label "b" "x" ]
  in
  let base = rel_l (List.init 20 (fun i -> ("x", i))) in
  let m1 = measured p base in
  let m3 = measured p (Ses_gen.Dataset.duplicate 3 base) in
  Alcotest.(check bool) "roughly linear" true
    (float_of_int m3 <= 4.5 *. float_of_int m1)

let test_case3_growth_superlinear () =
  (* The group variable makes the peak grow faster than linearly in W
     (Fig. 12's P3 curve). *)
  let p =
    pattern ~within:10
      [ [ v "a"; vplus "g" ] ]
      ~where:[ label "a" "x"; label "g" "x" ]
  in
  let base = rel_l (List.init 15 (fun i -> ("x", i))) in
  let m1 = measured p base in
  let m3 = measured p (Ses_gen.Dataset.duplicate 3 base) in
  Alcotest.(check bool) "superlinear" true
    (float_of_int m3 >= 3.5 *. float_of_int m1)

let suite =
  [
    Alcotest.test_case "per-set formulas" `Quick test_per_set_formulas;
    Alcotest.test_case "overall formula" `Quick test_overall_formula;
    Alcotest.test_case "case 1 measured" `Quick test_case1_measured_constant;
    Alcotest.test_case "case 2 measured" `Quick test_case2_measured_within_bound;
    Alcotest.test_case "case 3 measured" `Quick test_case3_measured_within_bound;
    Alcotest.test_case "case 2 linear growth" `Quick test_case2_growth_is_linear_in_w;
    Alcotest.test_case "case 3 superlinear growth" `Quick test_case3_growth_superlinear;
  ]
