The REPL drives the whole pipeline from a piped script.

  $ ../../bin/ses_cli.exe generate --kind chemo --patients 2 --seed 7 -o chemo.csv > /dev/null

  $ ../../bin/ses_repl.exe <<'SESSION'
  > help
  > count
  > load chemo.csv
  > schema
  > count
  > window 264
  > let q1 = PATTERN (c, p+, d) -> (b) \
  >   WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B' \
  >   AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
  >   WITHIN 11 DAYS
  > list
  > show q1
  > plan q1
  > trace q1 2
  > run missing
  > bogus
  > quit
  > SESSION
  commands:
    load <file.csv>          load an event relation
    schema                   show the loaded relation's schema
    count                    number of events
    window <tau>             window size W (Definition 5)
    let <name> = <query>     define a pattern (query language;
                             end a line with \ to continue)
    list                     defined patterns
    show <name>              pattern, automaton size, complexity cases
    analyze <name>           static diagnostics and pruning summary
    plan <name>              execution plan the library would pick
    run <name>               match the pattern against the relation
    trace <name> [n]         execution narrative (first n steps)
    dot <name>               Graphviz source of the automaton
    quit                     leave
  error: no relation loaded (use: load <file.csv>)
  loaded 264 events from chemo.csv
  (ID:int, L:string, V:float, U:string, T)
  264
  W(tau=264) = 48
  q1 = (<{c, p+, d}, {b}>, {c.L = 'C', p+.L = 'P', d.L = 'D', b.L = 'B', c.ID = p+.ID, c.ID = d.ID, d.ID = b.ID}, 264)
  q1
  (<{c, p+, d}, {b}>, {c.L = 'C', p+.L = 'P', d.L = 'D', b.L = 'B', c.ID = p+.ID, c.ID = d.ID, d.ID = b.ID}, 264)
  automaton: 9 states, 17 transitions, 6 orderings
  V1 case 1 (pairwise mutually exclusive); V2 case 1 (pairwise mutually exclusive)
  event filter: strong filter
  access path: index probes (estimated 72 of 264 rows)
    c: index(L) = 'C', estimated 8 rows
    p+: index(L) = 'P', estimated 40 rows
    d: index(L) = 'D', estimated 8 rows
    b: index(L) = 'B', estimated 16 rows
  partitioning: not applicable
  constant pre-check: true
  V1: case 1 (pairwise mutually exclusive)
  V2: case 1 (pairwise mutually exclusive)
  read e1: new instance
  read e2: new instance
  error: no pattern named "missing" (use: let missing = PATTERN ...)
  error: unknown command "bogus" (try: help)

Defining a pattern reports analyzer errors and warnings inline; the
analyze command prints the full report on demand:

  $ ../../bin/ses_repl.exe <<'SESSION'
  > load chemo.csv
  > let bad = PATTERN (a, b) WHERE a.L = 'X' AND a.L = 'Y' WITHIN 10
  > analyze bad
  > quit
  > SESSION
  loaded 264 events from chemo.csv
  bad = (<{a, b}>, {a.L = 'X', a.L = 'Y'}, 10)
  line 1, columns 23-45: error[unsatisfiable-variable]: variable a can never bind an event: its conditions on L are contradictory (a.L = 'X', a.L = 'Y')
  error[unmatchable-pattern]: no path from the start state to the accepting state survives analysis: the pattern can never match
  warning[unconstrained-variable]: variable b has no conditions and matches every event
  line 1, columns 23-45: error[unsatisfiable-variable]: variable a can never bind an event: its conditions on L are contradictory (a.L = 'X', a.L = 'Y')
  error[unmatchable-pattern]: no path from the start state to the accepting state survives analysis: the pattern can never match
  warning[unconstrained-variable]: variable b has no conditions and matches every event
  pruned: 3 transition(s), 1 state(s)
