open Ses_core
open Helpers

let test_figure1_report () =
  let r = Explain.explain (Automaton.of_pattern query_q1) figure_1 in
  Alcotest.(check int) "events" 14 r.Explain.events;
  Alcotest.(check int) "matches" 2 r.Explain.matches;
  Alcotest.(check int) "raw" 3 r.Explain.raw;
  Alcotest.(check int) "no kills" 0 r.Explain.killed;
  (* Candidate counts from Figure 1: 2 C, 3 D... D appears twice (e3, e7);
     P five times (e4, e6, e9, e10, e11); B five times. *)
  let count name =
    List.assoc
      (Option.get (Ses_pattern.Pattern.var_id query_q1 name))
      r.Explain.candidates_per_variable
  in
  Alcotest.(check int) "c candidates" 2 (count "c");
  Alcotest.(check int) "d candidates" 2 (count "d");
  Alcotest.(check int) "p candidates" 5 (count "p");
  Alcotest.(check int) "b candidates" 5 (count "b");
  (* The accepting state was entered three times: both patients' matches
     plus the late-start candidate removed by finalization. *)
  let accept = Automaton.accept (Automaton.of_pattern query_q1) in
  Alcotest.(check (option int)) "accept entered thrice" (Some 3)
    (List.assoc_opt accept r.Explain.entered);
  (* Every transition's fire count sums to transitions_fired. *)
  let fired_total =
    List.fold_left (fun acc ts -> acc + ts.Explain.fired) 0 r.Explain.transitions
  in
  Alcotest.(check bool) "some fired" true (fired_total > 0)

let test_unmatchable_variable_detected () =
  (* Pattern over a label that never occurs: the report pinpoints it. *)
  let p =
    pattern ~within:10
      [ [ v "a" ]; [ v "z" ] ]
      ~where:[ label "a" "a"; label "z" "nope" ]
  in
  let r =
    Explain.explain (Automaton.of_pattern p) (rel_l [ ("a", 0); ("b", 1) ])
  in
  Alcotest.(check int) "no matches" 0 r.Explain.matches;
  let z = Option.get (Ses_pattern.Pattern.var_id p "z") in
  Alcotest.(check (option int)) "z has no candidates" (Some 0)
    (List.assoc_opt z r.Explain.candidates_per_variable);
  (* The instance that bound a is reported stuck at state {a}. *)
  let a_state = Varset.singleton (Option.get (Ses_pattern.Pattern.var_id p "a")) in
  Alcotest.(check bool) "stuck at {a}" true
    (List.mem_assoc a_state r.Explain.stuck);
  let rendered = Format.asprintf "%a" Explain.pp r in
  Alcotest.(check bool) "narrative mentions never-fired" true
    (let needle = "never fired" in
     let nl = String.length needle and hl = String.length rendered in
     let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
     go 0)

let test_kills_reported () =
  let p =
    Ses_pattern.Pattern.make_full_exn ~schema:Helpers.schema
      ~sets:[ [ v "a" ]; [ v "b" ] ]
      ~negations:[ (0, v "x") ]
      ~where:[ label "a" "a"; label "b" "b"; label "x" "x" ]
      ~within:20
  in
  let r =
    Explain.explain (Automaton.of_pattern p)
      (rel_l [ ("a", 0); ("x", 2); ("b", 5) ])
  in
  Alcotest.(check int) "kill reported" 1 r.Explain.killed;
  Alcotest.(check int) "no match" 0 r.Explain.matches

let test_emission_lag () =
  (* Q1 on Figure 1 emits only at end of stream (the window spans all 14
     events): no expiry-based lag. *)
  let r = Explain.explain (Automaton.of_pattern query_q1) figure_1 in
  Alcotest.(check bool) "no expiry emissions" true (r.Explain.emission_lag = None);
  (* A short-window sequence that expires mid-stream reports its lag. *)
  let p =
    pattern ~within:5 [ [ v "x" ]; [ v "y" ] ]
      ~where:[ label "x" "x"; label "y" "y" ]
  in
  let rel = rel_l [ ("x", 0); ("y", 2); ("z", 50) ] in
  let r = Explain.explain (Automaton.of_pattern p) rel in
  match r.Explain.emission_lag with
  | Some (mean, worst) ->
      (* The match's last event is y@2; it is emitted when z@50 expires
         the instance: lag 48. *)
      Alcotest.(check int) "max lag" 48 worst;
      Alcotest.(check (float 0.01)) "mean lag" 48.0 mean
  | None -> Alcotest.fail "expected an emission lag"

let test_explain_preserves_outcome () =
  let automaton = Automaton.of_pattern query_q1 in
  let direct = Engine.run_relation automaton figure_1 in
  let r = Explain.explain automaton figure_1 in
  Alcotest.(check int) "same matches"
    (List.length direct.Engine.matches)
    r.Explain.matches

let suite =
  [
    Alcotest.test_case "Figure 1 report" `Quick test_figure1_report;
    Alcotest.test_case "unmatchable variable" `Quick test_unmatchable_variable_detected;
    Alcotest.test_case "negation kills reported" `Quick test_kills_reported;
    Alcotest.test_case "emission lag" `Quick test_emission_lag;
    Alcotest.test_case "explain preserves outcome" `Quick test_explain_preserves_outcome;
  ]
