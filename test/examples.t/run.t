The examples are deterministic; lock their key outputs.

  $ ../../examples/quickstart.exe
  Pattern: (<{a, k}, {r}>, {a.KIND = 'A', k.KIND = 'K', r.KIND = 'R', a.SVC = k.SVC, a.SVC = r.SVC}, 60)
  Matches: 1
    {a/e1, k/e3, r/e4}
  Same result via the query language: true

  $ ../../examples/chemotherapy.exe | tail -16
    candidate {d/e7, c/e8, p+/e10, p+/e11, b/e13}
  
  Matching substitutions:
    {c/e1, d/e3, p+/e4, p+/e9, b/e12}
    {p+/e6, d/e7, c/e8, p+/e10, p+/e11, b/e13}
  
  events seen:        14
  events filtered:    0
  instances created:  51
  max simultaneous:   9
  transitions fired:  37
  instances expired:  0
  instances killed:   0
  matches emitted:    3
  
  With the no-severe-toxicity guard: 2 matches

  $ ../../examples/finance.exe | grep -E 'Completed|states'
  Automaton: 9 states, 13 transitions (a brute-force engine would run 6 chain automata)
  Completed baskets: 20 (of 20 generated)

  $ ../../examples/rfid.exe | grep -E 'shipments|agree'
  Complete shipments (direct): 2
  Complete shipments (per-order partitions): 2
  Strategies agree: true

  $ ../../examples/clickstream.exe | grep -E 'funnels|agrees|filter|partitioning'
  event filter: strong filter
  partitioning: per key value
  Completed funnels: 11 (of 18 shoppers, ~2/3 convert)
  Planner agrees with the direct run: true

Every example query ships as a .ses file with its schema; all of them
analyze diagnostic-clean:

  $ for q in ../../examples/queries/*.ses; do
  >   printf '%s: ' "$(basename "$q" .ses)"
  >   ../../bin/ses_cli.exe analyze --schema "$(cat "${q%.ses}.schema")" \
  >     --query-file "$q" | grep '^diagnostics:'
  > done
  chemotherapy: diagnostics: none
  clickstream: diagnostics: none
  finance: diagnostics: none
  rfid: diagnostics: none
