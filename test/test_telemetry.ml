(* Unit tests for the instrumentation layer: log2 histogram bucket
   edges, span nesting under a deterministic clock, merge of forked
   per-shard recorders, gauge/counter semantics, and round-tripping an
   exported profile through its JSON rendering. *)

open Ses_core

(* A deterministic, manually-advanced clock. *)
let manual_clock () =
  let t = ref 0 in
  ((fun () -> !t), fun ns -> t := !t + ns)

let profile_eq (a : Telemetry.profile) (b : Telemetry.profile) =
  a.Telemetry.spans = b.Telemetry.spans
  && a.Telemetry.histograms = b.Telemetry.histograms
  && a.Telemetry.gauges = b.Telemetry.gauges
  && a.Telemetry.counters = b.Telemetry.counters

(* Histogram buckets: 0 holds v < 2, bucket i holds [2^i, 2^(i+1)-1],
   bucket 31 absorbs everything from 2^31 up. *)
let test_bucket_edges () =
  let check v expected =
    Alcotest.(check int)
      (Printf.sprintf "bucket_of %d" v)
      expected
      (Telemetry.Histogram.bucket_of v)
  in
  check (-5) 0;
  check 0 0;
  check 1 0;
  check 2 1;
  check 3 1;
  check 4 2;
  check 7 2;
  check 8 3;
  (* every power-of-two edge up to the overflow bucket *)
  for i = 1 to 30 do
    let lo = 1 lsl i in
    Alcotest.(check int)
      (Printf.sprintf "lower edge 2^%d" i)
      i
      (Telemetry.Histogram.bucket_of lo);
    Alcotest.(check int)
      (Printf.sprintf "upper edge 2^%d - 1" (i + 1))
      i
      (Telemetry.Histogram.bucket_of ((lo * 2) - 1));
    Alcotest.(check int)
      (Printf.sprintf "lower_bound %d" i)
      lo
      (Telemetry.Histogram.lower_bound i)
  done;
  Alcotest.(check int) "lower_bound 0" 0 (Telemetry.Histogram.lower_bound 0);
  (* the overflow bucket *)
  check (1 lsl 31) 31;
  check max_int 31;
  Alcotest.(check int) "n_buckets" 32 Telemetry.Histogram.n_buckets

let test_histogram_observe () =
  let tl = Telemetry.create () in
  let h = Telemetry.histogram tl "h" in
  List.iter (Telemetry.Histogram.observe h) [ 0; 1; 3; 4; 100; -7 ];
  Alcotest.(check int) "count" 6 (Telemetry.Histogram.count h);
  Alcotest.(check int) "sum clamps negatives" 108 (Telemetry.Histogram.sum h);
  Alcotest.(check int) "max" 100 (Telemetry.Histogram.max_value h);
  let buckets = Telemetry.Histogram.bucket_counts h in
  Alcotest.(check int) "bucket 0" 3 buckets.(0);
  Alcotest.(check int) "bucket 1" 1 buckets.(1);
  Alcotest.(check int) "bucket 2" 1 buckets.(2);
  Alcotest.(check int) "bucket 6 (64..127)" 1 buckets.(6);
  Alcotest.(check int) "total across buckets" 6
    (Array.fold_left ( + ) 0 buckets)

(* Nesting: tokens are independent clock readings, so an inner interval
   records inside an outer one — on the same span or another. *)
let test_span_nesting () =
  let clock, advance = manual_clock () in
  let tl = Telemetry.create ~clock () in
  let outer = Telemetry.span tl "outer" in
  let inner = Telemetry.span tl "inner" in
  let t_outer = Telemetry.Span.start outer in
  advance 10;
  let t_inner = Telemetry.Span.start inner in
  advance 5;
  Telemetry.Span.stop inner t_inner;
  advance 10;
  (* recursive nesting of the same span *)
  let t_outer2 = Telemetry.Span.start outer in
  advance 3;
  Telemetry.Span.stop outer t_outer2;
  Telemetry.Span.stop outer t_outer;
  Alcotest.(check int) "inner count" 1 (Telemetry.Span.count inner);
  Alcotest.(check int) "inner total" 5 (Telemetry.Span.total_ns inner);
  Alcotest.(check int) "outer count" 2 (Telemetry.Span.count outer);
  Alcotest.(check int) "outer total" 31 (Telemetry.Span.total_ns outer);
  Alcotest.(check int) "outer max" 28 (Telemetry.Span.max_ns outer)

let test_span_record_and_exceptions () =
  let clock, advance = manual_clock () in
  let tl = Telemetry.create ~clock () in
  let s = Telemetry.span tl "s" in
  let r =
    Telemetry.Span.record s (fun () ->
        advance 7;
        42)
  in
  Alcotest.(check int) "result threads through" 42 r;
  (try
     Telemetry.Span.record s (fun () ->
         advance 4;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "count includes raising thunk" 2
    (Telemetry.Span.count s);
  Alcotest.(check int) "total includes raising thunk" 11
    (Telemetry.Span.total_ns s);
  (* a wall-clock step backwards clamps to zero *)
  let tok = Telemetry.Span.start s in
  Alcotest.(check int) "clamped elapsed" 0
    (Telemetry.Span.stop_elapsed s (tok + 1000));
  Alcotest.(check int) "total unchanged by clamp" 11
    (Telemetry.Span.total_ns s)

(* Forked recorders merge name-by-name at snapshot: histogram counts and
   sums add, maxima take the max; span counts/totals add; counters sum;
   gauge peaks max. *)
let test_fork_merge () =
  let clock, advance = manual_clock () in
  let tl = Telemetry.create ~clock () in
  let shard1 = Telemetry.fork tl in
  let shard2 = Telemetry.fork tl in
  let h1 = Telemetry.histogram shard1 "scan" in
  let h2 = Telemetry.histogram shard2 "scan" in
  List.iter (Telemetry.Histogram.observe h1) [ 1; 8 ];
  List.iter (Telemetry.Histogram.observe h2) [ 8; 300 ];
  let s1 = Telemetry.span shard1 "work" in
  let s2 = Telemetry.span shard2 "work" in
  let t1 = Telemetry.Span.start s1 in
  advance 10;
  Telemetry.Span.stop s1 t1;
  let t2 = Telemetry.Span.start s2 in
  advance 4;
  Telemetry.Span.stop s2 t2;
  Telemetry.Counter.add (Telemetry.counter shard1 "n") 3;
  Telemetry.Counter.add (Telemetry.counter shard2 "n") 5;
  let p = Telemetry.snapshot tl in
  let hist = List.assoc "scan" p.Telemetry.histograms in
  Alcotest.(check int) "hist count sums" 4 hist.Telemetry.hist_count;
  Alcotest.(check int) "hist sum sums" 317 hist.Telemetry.hist_sum;
  Alcotest.(check int) "hist max maxes" 300 hist.Telemetry.hist_max;
  let merged = hist.Telemetry.hist_buckets in
  Alcotest.(check int) "bucket 0 sums" 1 merged.(0);
  Alcotest.(check int) "bucket 3 sums" 2 merged.(3);
  Alcotest.(check int) "bucket 8 sums" 1 merged.(8);
  let span = List.assoc "work" p.Telemetry.spans in
  Alcotest.(check int) "span count sums" 2 span.Telemetry.span_count;
  Alcotest.(check int) "span total sums" 14 span.Telemetry.span_total_ns;
  Alcotest.(check int) "span max maxes" 10 span.Telemetry.span_max_ns;
  Alcotest.(check int) "counter sums" 8 (List.assoc "n" p.Telemetry.counters);
  (* merge_profiles over explicit snapshots agrees with fork+snapshot *)
  let p1 = Telemetry.snapshot shard1 in
  let p2 = Telemetry.snapshot shard2 in
  Alcotest.(check bool) "merge_profiles = snapshot of parent" true
    (profile_eq p (Telemetry.merge_profiles [ p1; p2 ]))

let test_gauge () =
  let tl = Telemetry.create () in
  let g = Telemetry.gauge tl "pop" in
  Telemetry.Gauge.observe g 5;
  Telemetry.Gauge.observe g 12;
  Telemetry.Gauge.observe g 3;
  Alcotest.(check int) "samples" 3 (Telemetry.Gauge.samples g);
  Alcotest.(check int) "last" 3 (Telemetry.Gauge.last g);
  Alcotest.(check int) "peak" 12 (Telemetry.Gauge.peak g);
  (* delta form: levels accumulate, the peak is a level actually held *)
  let d = Telemetry.gauge tl "delta" in
  List.iter (Telemetry.Gauge.add d) [ 4; 3; -2; 6; -11 ];
  Alcotest.(check int) "delta last" 0 (Telemetry.Gauge.last d);
  Alcotest.(check int) "delta peak" 11 (Telemetry.Gauge.peak d)

let test_json_round_trip () =
  let clock, advance = manual_clock () in
  let tl = Telemetry.create ~clock () in
  let s = Telemetry.span tl "ingest" in
  let t = Telemetry.Span.start s in
  advance 123;
  Telemetry.Span.stop s t;
  let h = Telemetry.histogram tl "event_ns" in
  List.iter (Telemetry.Histogram.observe h) [ 1; 5; 1024 ];
  Telemetry.Gauge.observe (Telemetry.gauge tl "population") 9;
  Telemetry.Counter.add (Telemetry.counter tl "csv.select.L.tested") 44;
  let p = Telemetry.snapshot tl in
  (match Telemetry.of_json (Telemetry.to_json p) with
  | Error msg -> Alcotest.failf "of_json: %s" msg
  | Ok p' -> Alcotest.(check bool) "round-trips" true (profile_eq p p'));
  (* an empty profile round-trips too *)
  let empty = Telemetry.snapshot (Telemetry.create ()) in
  match Telemetry.of_json (Telemetry.to_json empty) with
  | Error msg -> Alcotest.failf "of_json empty: %s" msg
  | Ok p' -> Alcotest.(check bool) "empty round-trips" true (profile_eq empty p')

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Telemetry.of_json s with
      | Ok _ -> Alcotest.failf "of_json accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,2]"; "{\"spans\": }"; "{\"spans\": {\"a\": 1}}" ]

let test_prometheus_format () =
  let clock, advance = manual_clock () in
  let tl = Telemetry.create ~clock () in
  let s = Telemetry.span tl "ingest" in
  let t = Telemetry.Span.start s in
  advance 50;
  Telemetry.Span.stop s t;
  List.iter
    (Telemetry.Histogram.observe (Telemetry.histogram tl "event_ns"))
    [ 1; 3; 3 ];
  let text = Telemetry.to_prometheus (Telemetry.snapshot tl) in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (has needle))
    [
      "ses_span_count{name=\"ingest\"} 1";
      "ses_span_duration_ns_total{name=\"ingest\"} 50";
      (* cumulative le buckets: the bucket at le=1 holds one sample, at
         le=3 all three, and +Inf always equals the count *)
      "ses_histogram_bucket{name=\"event_ns\",le=\"1\"} 1";
      "ses_histogram_bucket{name=\"event_ns\",le=\"3\"} 3";
      "ses_histogram_bucket{name=\"event_ns\",le=\"+Inf\"} 3";
      "ses_histogram_count{name=\"event_ns\"} 3";
    ]

let suite =
  [
    Alcotest.test_case "histogram bucket edges" `Quick test_bucket_edges;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span record + exceptions" `Quick
      test_span_record_and_exceptions;
    Alcotest.test_case "fork + merge" `Quick test_fork_merge;
    Alcotest.test_case "gauges" `Quick test_gauge;
    Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "JSON rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "Prometheus exposition" `Quick test_prometheus_format;
  ]
