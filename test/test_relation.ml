open Ses_event

let test_sorting () =
  (* Rows supplied out of order are sorted and renumbered. *)
  let r = Helpers.rel_l [ ("b", 5); ("a", 2); ("c", 9) ] in
  let labels =
    List.map
      (fun e -> match Event.attr e 1 with Value.Str s -> s | _ -> "?")
      (Array.to_list (Relation.events r))
  in
  Alcotest.(check (list string)) "chronological" [ "a"; "b"; "c" ] labels;
  Alcotest.(check int) "seq 0" 0 (Event.seq (Relation.get r 0));
  Alcotest.(check int) "seq 2" 2 (Event.seq (Relation.get r 2))

let test_stable_ties () =
  let r = Helpers.rel [ (1, "x", 0, 5); (2, "y", 0, 5) ] in
  (* Equal timestamps keep insertion order. *)
  Alcotest.(check bool) "first is x" true
    (Value.equal (Event.attr (Relation.get r 0) 1) (Value.Str "x"));
  Alcotest.(check bool) "second is y" true
    (Value.equal (Event.attr (Relation.get r 1) 1) (Value.Str "y"))

let test_of_rows_errors () =
  let bad = [ ([| Value.Int 1 |], 0) ] in
  Alcotest.(check bool) "arity mismatch" true
    (Result.is_error (Relation.of_rows Helpers.schema bad))

let test_filter () =
  let r = Helpers.rel_l [ ("a", 1); ("b", 2); ("a", 3) ] in
  let only_a =
    Relation.filter
      (fun e -> Value.equal (Event.attr e 1) (Value.Str "a"))
      r
  in
  Alcotest.(check int) "two events" 2 (Relation.cardinality only_a);
  Alcotest.(check int) "renumbered" 1 (Event.seq (Relation.get only_a 1))

let test_append () =
  let a = Helpers.rel_l [ ("a", 1); ("c", 5) ] in
  let b = Helpers.rel_l [ ("b", 3) ] in
  let r = Relation.append a b in
  Alcotest.(check int) "merged" 3 (Relation.cardinality r);
  Alcotest.(check int) "middle ts" 3 (Event.ts (Relation.get r 1));
  let other = Relation.of_rows_exn (Schema.make_exn [ ("X", Value.Tint) ]) [] in
  Alcotest.check_raises "schema mismatch"
    (Invalid_argument "Relation.append: schema mismatch") (fun () ->
      ignore (Relation.append a other))

let test_bounds () =
  let r = Helpers.rel_l [ ("a", 2); ("b", 9) ] in
  Alcotest.(check (option int)) "first" (Some 2) (Relation.first_ts r);
  Alcotest.(check (option int)) "last" (Some 9) (Relation.last_ts r);
  Alcotest.(check int) "duration" 7 (Relation.duration r);
  let empty = Relation.of_rows_exn Helpers.schema [] in
  Alcotest.(check bool) "empty" true (Relation.is_empty empty);
  Alcotest.(check (option int)) "empty first" None (Relation.first_ts empty);
  Alcotest.(check int) "empty duration" 0 (Relation.duration empty)

let test_window_size () =
  let r = Helpers.rel_l [ ("a", 0); ("b", 5); ("c", 10); ("d", 11); ("e", 30) ] in
  Alcotest.(check int) "tau 0" 1 (Relation.window_size r 0);
  Alcotest.(check int) "tau 5" 2 (Relation.window_size r 5);
  Alcotest.(check int) "tau 11" 4 (Relation.window_size r 11);
  Alcotest.(check int) "tau 100" 5 (Relation.window_size r 100);
  let empty = Relation.of_rows_exn Helpers.schema [] in
  Alcotest.(check int) "empty" 0 (Relation.window_size empty 10)

let test_window_size_duplicates () =
  let r = Helpers.rel_l [ ("a", 3); ("b", 3); ("c", 3); ("d", 20) ] in
  Alcotest.(check int) "simultaneous all count" 3 (Relation.window_size r 0)

let test_figure1_window () =
  (* Example 9 of the paper: τ = 264 h spans all 14 events of Figure 1. *)
  Alcotest.(check int) "W = 14" 14 (Relation.window_size Helpers.figure_1 264);
  Alcotest.(check int) "events" 14 (Relation.cardinality Helpers.figure_1)

let test_fold_iter_seq () =
  let r = Helpers.rel_l [ ("a", 1); ("b", 2) ] in
  let n = Relation.fold (fun acc _ -> acc + 1) 0 r in
  Alcotest.(check int) "fold" 2 n;
  let count = ref 0 in
  Relation.iter (fun _ -> incr count) r;
  Alcotest.(check int) "iter" 2 !count;
  Alcotest.(check int) "to_seq" 2 (Seq.length (Relation.to_seq r))

let window_monotone =
  QCheck.Test.make ~count:100 ~name:"window_size is monotone in tau"
    QCheck.(pair (list_of_size Gen.(0 -- 30) (int_bound 100)) (int_bound 50))
    (fun (tss, tau) ->
      let r = Helpers.rel_l (List.map (fun ts -> ("x", ts)) tss) in
      Relation.window_size r tau <= Relation.window_size r (tau + 5)
      && Relation.window_size r tau <= Relation.cardinality r)

let suite =
  [
    Alcotest.test_case "sorting + renumbering" `Quick test_sorting;
    Alcotest.test_case "stable timestamp ties" `Quick test_stable_ties;
    Alcotest.test_case "of_rows errors" `Quick test_of_rows_errors;
    Alcotest.test_case "filter" `Quick test_filter;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "window_size" `Quick test_window_size;
    Alcotest.test_case "window_size duplicates" `Quick test_window_size_duplicates;
    Alcotest.test_case "Figure 1 window (Example 9)" `Quick test_figure1_window;
    Alcotest.test_case "fold/iter/to_seq" `Quick test_fold_iter_seq;
    QCheck_alcotest.to_alcotest window_monotone;
  ]
