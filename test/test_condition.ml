open Ses_event
open Ses_pattern

let schema = Helpers.schema

let attr name =
  match Schema.Field.resolve schema name with
  | Ok f -> f
  | Error e -> Alcotest.fail e

let ev seq id l v ts =
  Event.make ~seq ~ts [| Value.Int id; Value.Str l; Value.Int v |]

let test_structure () =
  let c0 = Condition.make_const ~var:0 ~field:(attr "L") Predicate.Eq (Value.Str "C") in
  let c1 = Condition.make_var ~var:0 ~field:(attr "ID") Predicate.Eq ~var':1 ~field':(attr "ID") in
  let refl = Condition.make_var ~var:2 ~field:(attr "ID") Predicate.Le ~var':2 ~field':(attr "V") in
  Alcotest.(check bool) "const" true (Condition.is_constant c0);
  Alcotest.(check bool) "not const" false (Condition.is_constant c1);
  Alcotest.(check (list int)) "vars const" [ 0 ] (Condition.vars c0);
  Alcotest.(check (list int)) "vars pair" [ 0; 1 ] (Condition.vars c1);
  Alcotest.(check (list int)) "vars reflexive" [ 2 ] (Condition.vars refl);
  Alcotest.(check bool) "mentions" true (Condition.mentions c1 1);
  Alcotest.(check bool) "not mentions" false (Condition.mentions c1 2);
  Alcotest.(check (option int)) "other_var lhs" (Some 1) (Condition.other_var c1 0);
  Alcotest.(check (option int)) "other_var rhs" (Some 0) (Condition.other_var c1 1);
  Alcotest.(check (option int)) "other_var const" None (Condition.other_var c0 0);
  Alcotest.(check (option int)) "other_var reflexive" None (Condition.other_var refl 2)

let test_typecheck () =
  let good = Condition.make_const ~var:0 ~field:(attr "ID") Predicate.Eq (Value.Int 1) in
  let coerce = Condition.make_const ~var:0 ~field:(attr "ID") Predicate.Lt (Value.Float 2.5) in
  let bad = Condition.make_const ~var:0 ~field:(attr "L") Predicate.Eq (Value.Int 1) in
  let bad_fields =
    Condition.make_var ~var:0 ~field:(attr "L") Predicate.Eq ~var':1 ~field':(attr "V")
  in
  let ts_ok =
    Condition.make_var ~var:0 ~field:Schema.Field.Timestamp Predicate.Lt ~var':1
      ~field':Schema.Field.Timestamp
  in
  Alcotest.(check bool) "good" true (Result.is_ok (Condition.typecheck schema good));
  Alcotest.(check bool) "numeric coercion ok" true
    (Result.is_ok (Condition.typecheck schema coerce));
  Alcotest.(check bool) "bad const" true (Result.is_error (Condition.typecheck schema bad));
  Alcotest.(check bool) "bad fields" true
    (Result.is_error (Condition.typecheck schema bad_fields));
  Alcotest.(check bool) "timestamps" true (Result.is_ok (Condition.typecheck schema ts_ok))

let bindings_of alist var = Option.value ~default:[] (List.assoc_opt var alist)

let test_holds_const () =
  let c = Condition.make_const ~var:0 ~field:(attr "L") Predicate.Eq (Value.Str "C") in
  let e_c = ev 0 1 "C" 0 0 and e_d = ev 1 1 "D" 0 1 in
  Alcotest.(check bool) "sat" true (Condition.holds c (bindings_of [ (0, [ e_c ]) ]));
  Alcotest.(check bool) "unsat" false (Condition.holds c (bindings_of [ (0, [ e_d ]) ]));
  (* Group decomposition: all bindings must satisfy the condition. *)
  Alcotest.(check bool) "group all sat" true
    (Condition.holds c (bindings_of [ (0, [ e_c; ev 2 1 "C" 0 2 ]) ]));
  Alcotest.(check bool) "group one violates" false
    (Condition.holds c (bindings_of [ (0, [ e_c; e_d ]) ]));
  Alcotest.(check bool) "vacuous without bindings" true
    (Condition.holds c (bindings_of []))

let test_holds_var_pairs () =
  let c = Condition.make_var ~var:0 ~field:(attr "ID") Predicate.Eq ~var':1 ~field':(attr "ID") in
  let a1 = ev 0 1 "x" 0 0 and a2 = ev 1 1 "x" 0 1 in
  let b1 = ev 2 1 "y" 0 2 and b2 = ev 3 2 "y" 0 3 in
  Alcotest.(check bool) "all pairs equal" true
    (Condition.holds c (bindings_of [ (0, [ a1; a2 ]); (1, [ b1 ]) ]));
  Alcotest.(check bool) "one pair differs" false
    (Condition.holds c (bindings_of [ (0, [ a1; a2 ]); (1, [ b1; b2 ]) ]))

let test_holds_reflexive () =
  (* v.ID <= v.V compares attributes of the same event, per binding. *)
  let c = Condition.make_var ~var:0 ~field:(attr "ID") Predicate.Le ~var':0 ~field':(attr "V") in
  Alcotest.(check bool) "sat" true
    (Condition.holds c (bindings_of [ (0, [ ev 0 1 "x" 5 0 ]) ]));
  Alcotest.(check bool) "unsat" false
    (Condition.holds c (bindings_of [ (0, [ ev 0 7 "x" 5 0 ]) ]))

let test_holds_timestamp () =
  let c =
    Condition.make_var ~var:1 ~field:Schema.Field.Timestamp Predicate.Gt ~var':0
      ~field':Schema.Field.Timestamp
  in
  let early = ev 0 1 "x" 0 5 and late = ev 1 1 "y" 0 9 in
  Alcotest.(check bool) "later wins" true
    (Condition.holds c (bindings_of [ (0, [ early ]); (1, [ late ]) ]));
  Alcotest.(check bool) "equal fails strict" false
    (Condition.holds c (bindings_of [ (0, [ early ]); (1, [ ev 2 1 "y" 0 5 ]) ]))

let test_holds_binding_incremental () =
  (* Adding bindings one by one and checking [holds_binding] at each step
     accepts exactly when the full [holds] accepts at the end. *)
  let c = Condition.make_var ~var:0 ~field:(attr "V") Predicate.Le ~var':1 ~field':(attr "V") in
  let xs = [ ev 0 1 "x" 2 0; ev 1 1 "x" 3 1 ] in
  let ys = [ ev 2 1 "y" 3 2; ev 3 1 "y" 9 3 ] in
  let incremental =
    (* Bind xs to var 0, then ys to var 1, checking each new binding. *)
    let step (ok, bound) (var, e) =
      let lookup v = List.rev (bindings_of bound v) in
      let ok' = ok && Condition.holds_binding c ~var ~event:e lookup in
      let bound =
        (var, e :: Option.value ~default:[] (List.assoc_opt var bound))
        :: List.remove_assoc var bound
      in
      (ok', bound)
    in
    fst
      (List.fold_left step (true, [])
         (List.map (fun e -> (0, e)) xs @ List.map (fun e -> (1, e)) ys))
  in
  let full = Condition.holds c (bindings_of [ (0, xs); (1, ys) ]) in
  Alcotest.(check bool) "incremental = full (sat)" full incremental;
  (* And a violating sequence. *)
  let ys_bad = [ ev 2 1 "y" 1 2 ] in
  let full_bad = Condition.holds c (bindings_of [ (0, xs); (1, ys_bad) ]) in
  let inc_bad =
    Condition.holds_binding c ~var:1 ~event:(List.hd ys_bad) (fun v ->
        bindings_of [ (0, xs) ] v)
  in
  Alcotest.(check bool) "incremental = full (unsat)" full_bad inc_bad

let test_pp () =
  let name_of = function 0 -> "c" | 1 -> "p+" | _ -> "?" in
  let c0 = Condition.make_const ~var:0 ~field:(attr "L") Predicate.Eq (Value.Str "C") in
  let c1 = Condition.make_var ~var:0 ~field:(attr "ID") Predicate.Eq ~var':1 ~field':(attr "ID") in
  Alcotest.(check string) "const" "c.L = 'C'"
    (Format.asprintf "%a" (Condition.pp schema ~name_of) c0);
  Alcotest.(check string) "pair" "c.ID = p+.ID"
    (Format.asprintf "%a" (Condition.pp schema ~name_of) c1)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "typecheck" `Quick test_typecheck;
    Alcotest.test_case "holds: constants" `Quick test_holds_const;
    Alcotest.test_case "holds: variable pairs" `Quick test_holds_var_pairs;
    Alcotest.test_case "holds: reflexive" `Quick test_holds_reflexive;
    Alcotest.test_case "holds: timestamps" `Quick test_holds_timestamp;
    Alcotest.test_case "holds_binding incremental" `Quick test_holds_binding_incremental;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
