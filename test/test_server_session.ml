(* The socket-free server core, driven through the same entry points
   the TCP adapter uses ([add_conn] / [input] / [tick] / [take_output]).

   Session: framing and the state machine are deterministic in the
   bytes seen so far regardless of chunking (qcheck), oversized lines
   are recovered from (and keep BATCH framing), QUIT closes.

   Runtime: a golden scenario pins the whole observable exchange
   (barriers, MATCH streaming one drain after the window closes,
   RESULT at UNREGISTER); a qcheck differential replays random
   streams with random register/unregister points and random batch
   boundaries, checking the RESULT lines against a fresh offline
   [Multi] fed the same window; SLOW/RESUME backpressure and the idle
   timeout are exercised with a manual clock. *)

open Ses_event
open Ses_core
open Ses_server

let schema = Result.get_ok (Schema.of_string "ID:int,L:string,V:int")

(* ---- session framing ---- *)

let feed_all chunks =
  let s = Session.create () in
  List.concat_map (Session.feed s) chunks

let test_session_auth_gate () =
  (match feed_all [ "SUBSCRIBE\n" ] with
  | [ Session.Reply (Protocol.Err msg) ] ->
      Alcotest.(check string)
        "gate message" "not authenticated (use AUTH <tenant>)" msg
  | _ -> Alcotest.fail "expected a single ERR");
  match feed_all [ "AUTH t\nAUTH t\n" ] with
  | [ Session.Op (Session.Auth "t"); Session.Reply (Protocol.Err msg) ] ->
      Alcotest.(check string) "re-auth" "already authenticated" msg
  | _ -> Alcotest.fail "expected Auth then ERR"

let test_session_quit () =
  match feed_all [ "QUIT\nPING\n" ] with
  | [ Session.Reply Protocol.Bye; Session.Close ] -> ()
  | _ -> Alcotest.fail "QUIT must emit Bye, Close and ignore the rest"

let test_session_crlf () =
  match feed_all [ "PING\r\n" ] with
  | [ Session.Reply Protocol.Pong ] -> ()
  | _ -> Alcotest.fail "CRLF line must parse"

let test_session_oversized () =
  let big = String.make (Protocol.max_line_length + 10) 'a' in
  (match feed_all [ big ^ "\nPING\n" ] with
  | [ Session.Reply (Protocol.Err _); Session.Reply Protocol.Pong ] -> ()
  | _ -> Alcotest.fail "oversized line: one error, then recovery");
  (* Inside a BATCH the oversized line consumes one announced row, so
     the body keeps its framing and the shortfall is reported. *)
  match feed_all [ "AUTH t\nBATCH 2\n" ^ big ^ "\n1,C,2,3\n" ] with
  | [
      Session.Op (Session.Auth "t");
      Session.Op (Session.Ingest { rows = [ "1,C,2,3" ]; announced = Some 2 });
    ] ->
      ()
  | _ -> Alcotest.fail "oversized batch row must keep framing"

let test_session_truncated_batch () =
  let s = Session.create () in
  let effects = Session.feed s "AUTH t\nBATCH 3\n1,C,2,3\n2,D,0,4\n" in
  Alcotest.(check int) "no ingest yet" 1 (List.length effects);
  Alcotest.(check bool) "still owed rows" true (Session.in_batch s);
  match Session.feed s "3,E,1,5\n" with
  | [ Session.Op (Session.Ingest { rows; announced = Some 3 }) ] ->
      Alcotest.(check (list string))
        "rows in order"
        [ "1,C,2,3"; "2,D,0,4"; "3,E,1,5" ]
        rows
  | _ -> Alcotest.fail "third row must complete the batch"

(* Chunking invariance: the same bytes produce the same effects no
   matter how they are split. *)
let gen_script_and_cuts =
  QCheck.Gen.(
    let line =
      oneofl
        [
          "AUTH t"; "PING"; "SUBSCRIBE"; "METRICS"; "BATCH 2"; "1,C,2,3";
          "2,D,0,4"; "garbage here"; ""; "EVENT 1,C,2,3"; "UNREGISTER q";
        ]
    in
    let* lines = list_size (int_range 1 12) line in
    let script = String.concat "\n" lines ^ "\n" in
    let* cuts =
      list_size (int_bound 6) (int_bound (max 1 (String.length script - 1)))
    in
    return (script, List.sort_uniq Int.compare cuts))

let chunks_of script cuts =
  let n = String.length script in
  let cuts = List.filter (fun c -> c > 0 && c < n) cuts @ [ n ] in
  let rec go start = function
    | [] -> []
    | c :: tl -> String.sub script start (c - start) :: go c tl
  in
  go 0 cuts

let session_chunking_invariant =
  QCheck.Test.make ~count:200 ~name:"session effects are chunking-invariant"
    (QCheck.make
       ~print:(fun (s, c) ->
         Printf.sprintf "%S cut at %s" s
           (String.concat "," (List.map string_of_int c)))
       gen_script_and_cuts)
    (fun (script, cuts) ->
      feed_all [ script ] = feed_all (chunks_of script cuts))

(* ---- runtime helpers ---- *)

let take_lines rt id =
  List.filter (fun l -> l <> "")
    (String.split_on_char '\n' (Runtime.take_output rt id))

let send rt id line = Runtime.input rt id (line ^ "\n")

let q_join =
  "PATTERN (c) -> (d) WHERE c.L = 'C' AND d.L = 'D' AND c.ID = d.ID WITHIN 8"

let q_pair = "PATTERN (c) -> (d) WHERE c.L = 'C' AND d.L = 'D' WITHIN 5"

(* The whole observable exchange, pinned: barriers make STATS counts
   deterministic, the match streams one drain after its window closes,
   UNREGISTER flushes the finalized RESULT. *)
let test_runtime_golden () =
  let rt = Runtime.create (Runtime.default_config ~schema) in
  let id = Runtime.add_conn rt in
  List.iter (send rt id)
    [
      "AUTH acme"; "SUBSCRIBE"; "REGISTER q1 " ^ q_join; "EVENT 1,C,5,2";
      "EVENT 1,D,6,4"; "EVENT 9,C,0,50"; "METRICS"; "EVENT 9,X,0,51";
      "METRICS"; "UNREGISTER q1"; "QUIT";
    ];
  Alcotest.(check (list string))
    "exchange"
    [
      "OK tenant acme";
      "OK subscribed";
      "OK registered q1";
      "STATS tenant=acme queries=1 events=3 queued=0 dropped=0 matches=0 \
       connections=1";
      "MATCH acme q1 {c/e1, d/e2}";
      "STATS tenant=acme queries=1 events=4 queued=0 dropped=0 matches=1 \
       connections=1";
      "RESULT acme q1 {c/e1, d/e2}";
      "OK unregistered q1 matches=1";
      "BYE";
    ]
    (take_lines rt id);
  Alcotest.(check bool) "closing after QUIT" true (Runtime.is_closing rt id)

(* MATCH and RESULT go to subscribers only; the issuer still gets its
   OK acknowledgements. *)
let test_runtime_broadcast () =
  let rt = Runtime.create (Runtime.default_config ~schema) in
  let sub = Runtime.add_conn rt in
  let pub = Runtime.add_conn rt in
  send rt sub "AUTH acme";
  send rt sub "SUBSCRIBE";
  send rt pub "AUTH acme";
  send rt pub ("REGISTER q1 " ^ q_join);
  send rt pub "BATCH 3";
  Runtime.input rt pub "1,C,5,2\n1,D,6,4\n9,C,0,50\n";
  send rt pub "METRICS";
  send rt pub "EVENT 9,X,0,51";
  send rt pub "METRICS";
  send rt pub "UNREGISTER q1";
  let pub_lines = take_lines rt pub in
  let sub_lines = take_lines rt sub in
  Alcotest.(check bool)
    "issuer sees no MATCH/RESULT" true
    (List.for_all
       (fun l ->
         (not (String.length l >= 5 && String.sub l 0 5 = "MATCH"))
         && not (String.length l >= 6 && String.sub l 0 6 = "RESULT"))
       pub_lines);
  Alcotest.(check bool)
    "issuer acknowledged" true
    (List.mem "OK unregistered q1 matches=1" pub_lines);
  Alcotest.(check (list string))
    "subscriber stream"
    [ "OK tenant acme"; "OK subscribed"; "MATCH acme q1 {c/e1, d/e2}";
      "RESULT acme q1 {c/e1, d/e2}" ]
    sub_lines

(* ---- backpressure ---- *)

let small_cfg overflow =
  {
    (Runtime.default_config ~schema) with
    Runtime.queue_capacity = 4;
    overflow;
    drain_quota = 100;
  }

let batch_lines n =
  Printf.sprintf "BATCH %d" n
  :: List.init n (fun i -> Printf.sprintf "%d,C,0,%d" i (i + 1))

let test_backpressure_block () =
  let rt = Runtime.create (small_cfg Runtime.Block) in
  let id = Runtime.add_conn rt in
  send rt id "AUTH a";
  List.iter (send rt id) (batch_lines 10);
  let lines = take_lines rt id in
  Alcotest.(check bool) "SLOW sent" true (List.mem "SLOW" lines);
  Alcotest.(check bool) "reading paused" false (Runtime.want_read rt id);
  Runtime.tick rt;
  let lines = take_lines rt id in
  Alcotest.(check bool) "RESUME sent" true (List.mem "RESUME" lines);
  Alcotest.(check bool) "reading resumed" true (Runtime.want_read rt id)

let test_backpressure_drop () =
  let rt = Runtime.create (small_cfg Runtime.Drop_oldest) in
  let id = Runtime.add_conn rt in
  send rt id "AUTH a";
  List.iter (send rt id) (batch_lines 10);
  Alcotest.(check bool)
    "drop mode keeps reading" true
    (Runtime.want_read rt id);
  send rt id "METRICS";
  let stats =
    List.find
      (fun l -> String.length l >= 5 && String.sub l 0 5 = "STATS")
      (take_lines rt id)
  in
  Alcotest.(check bool)
    "six oldest dropped" true
    (String.length stats >= 9
    &&
    match Protocol.parse_reply stats with
    | Ok (Protocol.Stats kvs) ->
        List.assoc "dropped" kvs = "6" && List.assoc "queued" kvs = "0"
    | _ -> false)

let test_idle_timeout () =
  let cfg =
    { (Runtime.default_config ~schema) with Runtime.idle_timeout = 5. }
  in
  let rt = Runtime.create cfg in
  let id = Runtime.add_conn ~now:0. rt in
  Runtime.input ~now:1. rt id "PING\n";
  Runtime.tick ~now:3. rt;
  Alcotest.(check bool) "still open" false (Runtime.is_closing rt id);
  Runtime.tick ~now:7. rt;
  let lines = take_lines rt id in
  Alcotest.(check bool) "timed out" true (Runtime.is_closing rt id);
  Alcotest.(check bool)
    "ERR then BYE" true
    (List.mem "ERR idle timeout" lines && List.mem "BYE" lines)

(* ---- differential vs an offline Multi ---- *)

(* A random chronological stream is partitioned into random chunks
   (EVENT lines or BATCH bodies). Each query registers at one chunk
   boundary and unregisters at a later one; the RESULT lines the live
   runtime emits must equal the finalized matches of a fresh offline
   [Multi] fed exactly that window of the stream (same seq numbers, so
   the rendered substitutions are byte-identical). *)

let labels = [| "C"; "D"; "E" |]

let gen_diff =
  QCheck.Gen.(
    let* n = int_range 6 40 in
    let* steps = list_repeat n (pair (int_bound 2) (int_bound 2)) in
    let* chunk_seed = list_repeat n (int_bound 3) in
    let* a0 = int_bound 6 and* a1 = int_bound 6 in
    let* b0 = int_bound 8 and* b1 = int_bound 8 in
    return (steps, chunk_seed, (a0, a1), (b0, b1)))

let rows_of_steps steps =
  let ts = ref 0 in
  List.mapi
    (fun i (lbl, dt) ->
      ts := !ts + dt;
      Printf.sprintf "%d,%s,%d,%d" (i mod 3) labels.(lbl) i !ts)
    steps

(* Random chunking: chunk_seed.(i) = 0 starts a new chunk at i. *)
let chunks_of_rows rows seed =
  List.fold_left2
    (fun acc row s ->
      match acc with
      | cur :: tl when s <> 0 -> (row :: cur) :: tl
      | _ -> [ row ] :: acc)
    [] rows seed
  |> List.rev_map List.rev

let offline_window query rows lo hi =
  let pattern =
    Result.get_ok (Ses_lang.Lang.parse_pattern schema query)
  in
  let automaton = Automaton.of_pattern pattern in
  let m = Multi.create_mixed [ ("q", automaton, `Plain) ] in
  List.iteri
    (fun i row ->
      if i >= lo && i < hi then
        match Ses_store.Csv_stream.row_of_line schema ~seq:i row with
        | Ok e -> ignore (Multi.feed m e)
        | Error msg -> Alcotest.failf "offline row %d: %s" i msg)
    rows;
  let outcome = Multi.unregister m "q" in
  List.map
    (fun s -> Format.asprintf "%a" (Substitution.pp pattern) s)
    outcome.Engine.matches

let runtime_matches_offline =
  QCheck.Test.make ~count:60 ~name:"live RESULT lines = offline Multi window"
    (QCheck.make gen_diff)
    (fun (steps, chunk_seed, (a0, a1), (b0, b1)) ->
      let rows = rows_of_steps steps in
      let chunks = chunks_of_rows rows chunk_seed in
      let n_chunks = List.length chunks in
      let clamp x = min x n_chunks in
      (* register at chunk [a], unregister at chunk [b] (b = n_chunks
         means "at the end, before QUIT"). *)
      let queries =
        [
          ("q0", q_join, clamp a0, max (clamp a0) (clamp (a0 + b0)));
          ("q1", q_pair, clamp a1, max (clamp a1) (clamp (a1 + b1)));
        ]
      in
      let rt = Runtime.create (Runtime.default_config ~schema) in
      let id = Runtime.add_conn rt in
      send rt id "AUTH t";
      send rt id "SUBSCRIBE";
      let boundary_action at =
        List.iter
          (fun (name, text, a, b) ->
            if b = at && b > a then send rt id ("UNREGISTER " ^ name);
            if a = at then send rt id ("REGISTER " ^ name ^ " " ^ text))
          queries
      in
      List.iteri
        (fun ci chunk ->
          boundary_action ci;
          (match chunk with
          | [ row ] -> send rt id ("EVENT " ^ row)
          | rows ->
              send rt id (Printf.sprintf "BATCH %d" (List.length rows));
              List.iter (send rt id) rows);
          Runtime.tick rt)
        chunks;
      boundary_action n_chunks;
      send rt id "QUIT";
      let lines = take_lines rt id in
      List.iter
        (fun l ->
          if String.length l >= 3 && String.sub l 0 3 = "ERR" then
            QCheck.Test.fail_reportf "unexpected error line %S" l)
        lines;
      (* chunk boundary -> event index *)
      let starts =
        let idx = ref 0 in
        List.map
          (fun c ->
            let s = !idx in
            idx := !idx + List.length c;
            s)
          chunks
        @ [ List.length rows ]
      in
      let ev_of_boundary b = List.nth starts b in
      List.for_all
        (fun (name, text, a, b) ->
          if b <= a then true
          else begin
            let expected =
              offline_window text rows (ev_of_boundary a) (ev_of_boundary b)
            in
            let prefix = Printf.sprintf "RESULT t %s " name in
            let np = String.length prefix in
            let got =
              List.filter_map
                (fun l ->
                  if String.length l >= np && String.sub l 0 np = prefix then
                    Some (String.sub l np (String.length l - np))
                  else None)
                lines
            in
            if
              List.equal String.equal
                (List.sort String.compare got)
                (List.sort String.compare expected)
            then true
            else
              QCheck.Test.fail_reportf
                "%s window [%d,%d): live %s vs offline %s" name
                (ev_of_boundary a) (ev_of_boundary b)
                (String.concat "; " got)
                (String.concat "; " expected)
          end)
        queries)

let suite =
  [
    Alcotest.test_case "session: auth gate" `Quick test_session_auth_gate;
    Alcotest.test_case "session: quit" `Quick test_session_quit;
    Alcotest.test_case "session: crlf" `Quick test_session_crlf;
    Alcotest.test_case "session: oversized lines" `Quick
      test_session_oversized;
    Alcotest.test_case "session: truncated batch" `Quick
      test_session_truncated_batch;
    Alcotest.test_case "runtime: golden exchange" `Quick test_runtime_golden;
    Alcotest.test_case "runtime: subscriber broadcast" `Quick
      test_runtime_broadcast;
    Alcotest.test_case "runtime: block backpressure" `Quick
      test_backpressure_block;
    Alcotest.test_case "runtime: drop-oldest backpressure" `Quick
      test_backpressure_drop;
    Alcotest.test_case "runtime: idle timeout" `Quick test_idle_timeout;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ session_chunking_invariant; runtime_matches_offline ]
