(* RFID order tracking, one of the paper's motivating application domains.

   An order ships correctly when every expected item class was scanned at
   the packing station — in any order, because packers grab whatever is on
   top — followed by the pallet scan at the shipping gate, within a
   30-minute window. Items of an order are joined on the ORDER attribute.

   The example also demonstrates the textual query language and the
   per-partition evaluation strategy built on the store substrate.

   Run with: dune exec examples/rfid.exe *)

open Ses_event
open Ses_core
open Ses_gen

let query =
  "PATTERN (box, manual, cable) -> (gate)\n\
   WHERE box.READER = 'PACK' AND box.ITEM = 'BOX'\n\
  \  AND manual.READER = 'PACK' AND manual.ITEM = 'MANUAL'\n\
  \  AND cable.READER = 'PACK' AND cable.ITEM = 'CABLE'\n\
  \  AND gate.READER = 'GATE'\n\
  \  AND box.ORDER = manual.ORDER AND box.ORDER = cable.ORDER\n\
  \  AND box.ORDER = gate.ORDER\n\
   WITHIN 1800"

let () =
  let feed =
    Rfid.generate { Rfid.default with Rfid.orders = 25; items_per_order = 3 }
  in
  Format.printf "Generated %d RFID reads@." (Relation.cardinality feed);

  let p = Ses_lang.Lang.parse_pattern_exn Rfid.schema query in
  Format.printf "Pattern: %a@." Ses_pattern.Pattern.pp p;
  let automaton = Automaton.of_pattern p in

  (* Direct evaluation over the full feed. *)
  let direct = Engine.run_relation automaton feed in
  Format.printf "Complete shipments (direct): %d@."
    (List.length direct.Engine.matches);

  (* Per-order partitioned evaluation: the ORDER joins make partitions
     independent, and each partition's instance pool stays tiny. *)
  let order_attr = Option.get (Schema.index_of Rfid.schema "ORDER") in
  let partitions = Ses_store.Partition.by_attribute feed order_attr in
  let per_partition =
    List.concat_map
      (fun (_, part) -> (Engine.run_relation automaton part).Engine.raw)
      partitions
  in
  let finalized = Substitution.finalize p per_partition in
  Format.printf "Complete shipments (per-order partitions): %d@."
    (List.length finalized);
  Format.printf "Strategies agree: %b@."
    (List.length finalized = List.length direct.Engine.matches);

  List.iteri
    (fun i s ->
      if i < 5 then Format.printf "  %a@." (Substitution.pp p) s)
    direct.Engine.matches
