(* Quickstart: define a schema, load a few events, express a sequenced
   event set pattern, and match.

   Scenario: a monitoring feed of service events. An incident is "handled"
   when an alert (A) and its acknowledgement (K) occur — in either order,
   because the pager and the dashboard race — followed by a resolution (R),
   all within 60 minutes.

   Run with: dune exec examples/quickstart.exe *)

open Ses_event
open Ses_pattern
open Ses_core

let () =
  (* 1. Schema: one entity attribute and an event kind, plus the implicit
     timestamp T (minutes here; the library does not care about units). *)
  let schema =
    Schema.make_exn [ ("SVC", Value.Tstr); ("KIND", Value.Tstr) ]
  in

  (* 2. Events: (payload, timestamp) rows; the relation sorts them. *)
  let row svc kind ts = ([| Value.Str svc; Value.Str kind |], ts) in
  let feed =
    Relation.of_rows_exn schema
      [
        row "api" "A" 0;      (* alert *)
        row "db" "K" 2;       (* ack for another service *)
        row "api" "K" 5;      (* ack *)
        row "api" "R" 12;     (* resolution -> match for api *)
        row "db" "A" 15;      (* late alert: its ack came before, no match *)
        row "web" "K" 20;
        row "web" "A" 21;     (* K before A is fine: same set *)
        row "web" "R" 95;     (* too late: outside the 60-minute window *)
      ]
  in

  (* 3. Pattern: (<{a, k}, {r}>, Θ, 60) — a and k in any order, then r. *)
  let p =
    Pattern.make_exn ~schema
      ~sets:
        [
          [ Variable.singleton "a"; Variable.singleton "k" ];
          [ Variable.singleton "r" ];
        ]
      ~where:
        Pattern.Spec.
          [
            const "a" "KIND" Predicate.Eq (Value.Str "A");
            const "k" "KIND" Predicate.Eq (Value.Str "K");
            const "r" "KIND" Predicate.Eq (Value.Str "R");
            fields "a" "SVC" Predicate.Eq "k" "SVC";
            fields "a" "SVC" Predicate.Eq "r" "SVC";
          ]
      ~within:60
  in

  (* 4. Compile to a SES automaton and run. *)
  let automaton = Automaton.of_pattern p in
  let outcome = Engine.run_relation automaton feed in

  Format.printf "Pattern: %a@." Pattern.pp p;
  Format.printf "Matches: %d@." (List.length outcome.Engine.matches);
  List.iter
    (fun s -> Format.printf "  %a@." (Substitution.pp p) s)
    outcome.Engine.matches;

  (* 5. The same pattern in the textual language. *)
  let parsed =
    Ses_lang.Lang.parse_pattern_exn schema
      "PATTERN (a, k) -> (r)\n\
       WHERE a.KIND = 'A' AND k.KIND = 'K' AND r.KIND = 'R'\n\
      \  AND a.SVC = k.SVC AND a.SVC = r.SVC\n\
       WITHIN 60"
  in
  let again = Engine.run_relation (Automaton.of_pattern parsed) feed in
  Format.printf "Same result via the query language: %b@."
    (List.length again.Engine.matches = List.length outcome.Engine.matches)
