(* Basket-trading surveillance over a synthetic execution feed.

   A basket order is filled by buying each constituent symbol once, in
   whatever order the market provides the fills, and the position is hedged
   afterwards. The SES pattern below recognizes completed baskets per
   account: three BUY fills for distinct symbols in any order (PERMUTE),
   followed by a HEDGE, all within a 10-minute window.

   Run with: dune exec examples/finance.exe *)

open Ses_event
open Ses_pattern
open Ses_core
open Ses_gen

let () =
  let feed = Finance.generate Finance.default in
  Format.printf "Generated %d execution events over %d seconds@."
    (Relation.cardinality feed) (Relation.duration feed);

  let buy name sym =
    Pattern.Spec.
      [
        const name "KIND" Predicate.Eq (Value.Str "BUY");
        const name "SYM" Predicate.Eq (Value.Str sym);
      ]
  in
  let p =
    Pattern.make_exn ~schema:Finance.schema
      ~sets:
        [
          [
            Variable.singleton "x";
            Variable.singleton "y";
            Variable.singleton "z";
          ];
          [ Variable.singleton "h" ];
        ]
      ~where:
        (buy "x" "ACME" @ buy "y" "GLOBO" @ buy "z" "INITECH"
        @ Pattern.Spec.
            [
              const "h" "KIND" Predicate.Eq (Value.Str "HEDGE");
              fields "x" "ACC" Predicate.Eq "y" "ACC";
              fields "x" "ACC" Predicate.Eq "z" "ACC";
              fields "x" "ACC" Predicate.Eq "h" "ACC";
            ])
      ~within:600
  in
  Format.printf "Pattern: %a@." Pattern.pp p;

  let automaton = Automaton.of_pattern p in
  Format.printf
    "Automaton: %d states, %d transitions (a brute-force engine would run %d chain automata)@."
    (Automaton.n_states automaton)
    (Automaton.n_transitions automaton)
    (Automaton.n_paths automaton);

  (* The event filter pays off here: most of the feed is unrelated ticks. *)
  let options =
    { Engine.default_options with Engine.filter = Event_filter.Strong }
  in
  let outcome = Engine.run_relation ~options automaton feed in
  Format.printf "Completed baskets: %d (of %d generated)@."
    (List.length outcome.Engine.matches)
    Finance.default.Finance.baskets;
  List.iteri
    (fun i s ->
      if i < 5 then Format.printf "  %a@." (Substitution.pp p) s)
    outcome.Engine.matches;
  Format.printf "%a@." Metrics.pp outcome.Engine.metrics
