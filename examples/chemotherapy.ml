(* The paper's running example, end to end: the 14 chemotherapy events of
   Figure 1 matched against Query Q1,

     "for each patient, find the sets of events that match one
      administration of Ciclofosfamide (C), one or more administrations of
      Prednisone (P), and one administration of Doxorubicina (D) in any
      order, followed by a single blood count measurement (B), all within
      eleven days"

   expressed as the SES pattern (<{c, p+, d}, {b}>, Θ, 264). The expected
   output is the paper's: {c/e1, d/e3, p+/e4, p+/e9, b/e12} for patient 1
   and {p+/e6, d/e7, c/e8, p+/e10, p+/e11, b/e13} for patient 2. *)

open Ses_event
open Ses_pattern
open Ses_core

let schema =
  Schema.make_exn
    [ ("ID", Value.Tint); ("L", Value.Tstr); ("V", Value.Tfloat); ("U", Value.Tstr) ]

(* Figure 1. Timestamps in hours with 3 July 00:00 as the origin. *)
let figure_1 =
  let row id l v u day hour =
    ( [| Value.Int id; Value.Str l; Value.Float v; Value.Str u |],
      Time.add (Time.days day) (Time.hours hour) )
  in
  Relation.of_rows_exn schema
    [
      row 1 "C" 1672.5 "mg" 0 9;      (* e1 *)
      row 1 "B" 0. "WHO-Tox" 0 10;    (* e2 *)
      row 1 "D" 84. "mgl" 0 11;       (* e3 *)
      row 1 "P" 111.5 "mg" 1 9;       (* e4 *)
      row 2 "B" 0. "WHO-Tox" 2 9;     (* e5 *)
      row 2 "P" 88. "mg" 2 10;        (* e6 *)
      row 2 "D" 84. "mgl" 2 11;       (* e7 *)
      row 2 "C" 1320. "mg" 3 9;       (* e8 *)
      row 1 "P" 111.5 "mg" 3 10;      (* e9 *)
      row 2 "P" 88. "mg" 3 11;        (* e10 *)
      row 2 "P" 88. "mg" 4 9;         (* e11 *)
      row 1 "B" 1. "WHO-Tox" 9 9;     (* e12 *)
      row 2 "B" 1. "WHO-Tox" 10 9;    (* e13 *)
      row 2 "B" 0. "WHO-Tox" 11 9;    (* e14 *)
    ]

let query_q1 =
  Pattern.make_exn ~schema
    ~sets:
      [
        [ Variable.singleton "c"; Variable.group "p"; Variable.singleton "d" ];
        [ Variable.singleton "b" ];
      ]
    ~where:
      Pattern.Spec.
        [
          const "c" "L" Predicate.Eq (Value.Str "C");
          const "d" "L" Predicate.Eq (Value.Str "D");
          const "p" "L" Predicate.Eq (Value.Str "P");
          const "b" "L" Predicate.Eq (Value.Str "B");
          fields "c" "ID" Predicate.Eq "p" "ID";
          fields "c" "ID" Predicate.Eq "d" "ID";
          fields "d" "ID" Predicate.Eq "b" "ID";
        ]
    ~within:(Time.days 11)

(* A clinically motivated negation variant: the same protocol, but only
   when no severe toxicity (a WHO-Tox grade >= 3 blood count) was measured
   between the administrations and the final blood count. *)
let query_q1_safe =
  Pattern.make_full_exn ~schema
    ~sets:
      [
        [ Variable.singleton "c"; Variable.group "p"; Variable.singleton "d" ];
        [ Variable.singleton "b" ];
      ]
    ~negations:[ (0, Variable.singleton "tox") ]
    ~where:
      Pattern.Spec.
        [
          const "c" "L" Predicate.Eq (Value.Str "C");
          const "d" "L" Predicate.Eq (Value.Str "D");
          const "p" "L" Predicate.Eq (Value.Str "P");
          const "b" "L" Predicate.Eq (Value.Str "B");
          fields "c" "ID" Predicate.Eq "p" "ID";
          fields "c" "ID" Predicate.Eq "d" "ID";
          fields "d" "ID" Predicate.Eq "b" "ID";
          const "tox" "L" Predicate.Eq (Value.Str "B");
          const "tox" "V" Predicate.Ge (Value.Float 3.0);
          fields "tox" "ID" Predicate.Eq "c" "ID";
        ]
    ~within:(Time.days 11)

let () =
  Format.printf "Pattern: %a@." Pattern.pp query_q1;
  let automaton = Automaton.of_pattern query_q1 in
  Format.printf "SES automaton: %d states, %d transitions, %d paths@.@."
    (Automaton.n_states automaton)
    (Automaton.n_transitions automaton)
    (Automaton.n_paths automaton);
  Format.printf "Input relation (Figure 1):@.%a@." Relation.pp figure_1;
  let outcome = Engine.run_relation automaton figure_1 in
  Format.printf "Raw candidate substitutions: %d@."
    (List.length outcome.raw);
  List.iter
    (fun s -> Format.printf "  candidate %a@." (Substitution.pp query_q1) s)
    outcome.raw;
  Format.printf "@.Matching substitutions:@.";
  List.iter
    (fun s -> Format.printf "  %a@." (Substitution.pp query_q1) s)
    outcome.matches;
  Format.printf "@.%a@." Metrics.pp outcome.metrics;
  (* The negation variant: Figure 1's grades are all <= 1, so the same two
     matches survive; raising a grade between the sets would kill them. *)
  let safe = Engine.run_relation (Automaton.of_pattern query_q1_safe) figure_1 in
  Format.printf "@.With the no-severe-toxicity guard: %d matches@."
    (List.length safe.Engine.matches)
