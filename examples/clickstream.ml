(* Click-stream funnel analysis, one of the paper's motivating domains.

   Which shoppers completed the research funnel? They visited the product
   page, the reviews and the pricing page — in any order, because browser
   tabs — and then checked out, all within a 20-minute session window.
   A strict-sequence engine would need 3! = 6 patterns for the research
   phase; the SES pattern needs one PERMUTE.

   The example uses the planner front door: it selects the strong event
   filter (every variable is label-constrained) and, because the pattern
   joins every variable pair on USER, the partitioned per-user instance
   pools.

   Run with: dune exec examples/clickstream.exe *)

open Ses_event
open Ses_core
open Ses_gen

let query =
  "PATTERN (prod, rev, price) -> buy\n\
   WHERE prod.PAGE = 'product' AND rev.PAGE = 'reviews'\n\
  \  AND price.PAGE = 'pricing' AND buy.PAGE = 'checkout'\n\
  \  AND prod.USER = rev.USER AND prod.USER = price.USER\n\
  \  AND prod.USER = buy.USER AND rev.USER = price.USER\n\
  \  AND rev.USER = buy.USER AND price.USER = buy.USER\n\
   WITHIN 1200"

let () =
  let feed = Clickstream.generate Clickstream.default in
  Format.printf "Generated %d clicks over %d seconds@."
    (Relation.cardinality feed) (Relation.duration feed);

  let p = Ses_lang.Lang.parse_pattern_exn Clickstream.schema query in
  let automaton = Automaton.of_pattern p in
  let plan = Planner.plan automaton in
  Format.printf "Plan:@.%s" (Planner.describe plan);

  let outcome = Planner.execute plan automaton (Relation.to_seq feed) in
  Format.printf "Completed funnels: %d (of %d shoppers, ~2/3 convert)@."
    (List.length outcome.Engine.matches)
    Clickstream.default.Clickstream.shoppers;
  List.iteri
    (fun i s ->
      if i < 5 then Format.printf "  %a@." (Substitution.pp p) s)
    outcome.Engine.matches;

  (* Cross-check with the plain engine: the plan is result-transparent. *)
  let direct = Engine.run_relation automaton feed in
  Format.printf "Planner agrees with the direct run: %b@."
    (List.length direct.Engine.matches = List.length outcome.Engine.matches)
