(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Sec. 5) on the synthetic chemotherapy workload:

     - Experiment 1 / Figure 11: max simultaneous instances, SES vs brute
       force, for P1 (mutually exclusive) and P2 (overlapping), |V1| = 2..6
     - Experiment 1 / Table 1: the BF/SES instance ratio vs (|V1|-1)!
     - Experiment 2 / Figure 12: max simultaneous instances vs window size
       W for P3 (case 3) and P4 (case 2) over D1..D5
     - Experiment 3 / Figure 13: execution time with and without the
       Sec. 4.5 event filter for P5 and P6 over D1..D5
     - this repository's ablations (filter variants, constant pre-check,
       partitioned evaluation) and beyond-paper sweeps (set size vs the
       Theorem 2/3 bounds, event selectivity)

   Part 2 compares streaming (Csv_stream -> executor, O(1) memory)
   against materialized (Csv.load -> Relation.t) evaluation of Q1 over
   the chemotherapy workload, one row per execution strategy, and prints
   the results as machine-readable JSON.

   Part 3 runs bechamel micro-benchmarks of the core operations (one
   Test.make per paper table/figure, exercising the code path that
   dominates it).

   Part 4 compares the state-indexed instance store against the flat
   reference pool (high-population workload) and the hash-based
   finalization against the quadratic reference (finalize-heavy
   workload), writing the results to BENCH_instance_store.json.

   Part 5 measures domain-parallel execution: the partitioned per-key
   pools of the completely ID-joined Q1 sharded across 1/2/4 OCaml
   domains (events/sec each), plus a 4-query set on 1 vs 4 domains,
   writing the results to BENCH_parallel.json.

   Part 6 measures the telemetry layer: Q1 over the chemotherapy
   workload with the no-op sink (the disabled probes' branch cost —
   the number to compare against pre-telemetry baselines) and with a
   recording sink, writing both and the recorded profile to
   BENCH_telemetry.json.

   Part 7 measures the batched execution core: single-domain throughput
   of an ID-joined sequence pattern over a million-event duplicated
   random workload, swept across batch sizes (a batch of 1 pays every
   per-batch overhead per event — the contrast the tuned default is
   picked against), plus the telemetry overhead at the tuned batch,
   writing the results to BENCH_batch.json.

   Part 9 measures the index-accelerated access paths: the million-event
   workload of Part 7 with the access path forced to a full scan and to
   index probes across a selectivity sweep (ID-pinned equality,
   label-only, label+threshold, and an unselective query the cost model
   refuses), matches asserted identical, writing the results to
   BENCH_index.json.

   Usage: dune exec bench/main.exe
            [-- --quick] [-- --exp N] [-- --no-micro] [-- --no-stream]
            [-- --store-only] [-- --parallel-only] [-- --telemetry-only]
            [-- --batch-only] [-- --multi-only] [-- --index-only] *)

open Bechamel
open Toolkit

let quick = Array.exists (( = ) "--quick") Sys.argv

let no_micro = Array.exists (( = ) "--no-micro") Sys.argv

let no_stream = Array.exists (( = ) "--no-stream") Sys.argv

let store_only = Array.exists (( = ) "--store-only") Sys.argv

let parallel_only = Array.exists (( = ) "--parallel-only") Sys.argv

let telemetry_only = Array.exists (( = ) "--telemetry-only") Sys.argv

let batch_only = Array.exists (( = ) "--batch-only") Sys.argv

let multi_only = Array.exists (( = ) "--multi-only") Sys.argv

let index_only = Array.exists (( = ) "--index-only") Sys.argv

let only_exp =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--exp" then int_of_string_opt Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let cfg =
  if quick then Ses_harness.Experiments.quick_config
  else Ses_harness.Experiments.default_config

let show table = Format.printf "%a@.@." Ses_harness.Report.pp table

let run_tables () =
  let module E = Ses_harness.Experiments in
  let wanted n = match only_exp with None -> true | Some k -> k = n in
  show (E.datasets_table cfg);
  if wanted 1 then begin
    let fig11, table1 = E.exp1 cfg in
    show fig11;
    show table1
  end;
  if wanted 2 then show (E.exp2 cfg);
  if wanted 3 then show (E.exp3 cfg);
  if wanted 4 then begin
    show (E.ablation_filter cfg);
    show (E.ablation_precheck cfg);
    show (E.ablation_partition cfg)
  end;
  if wanted 5 then begin
    show (E.sweep_set_size cfg);
    show (E.sweep_selectivity cfg)
  end

(* Streaming vs materialized: Q1 over the chemo workload, one row per
   strategy, as machine-readable JSON. The naive oracle is excluded — its
   exhaustive enumeration is exponential in the input and does not
   terminate on a realistic dataset. *)

let stream_bench () =
  Ses_baseline.Brute_force.register ();
  let module E = Ses_harness.Experiments in
  let module Q = Ses_harness.Queries in
  let d1 = E.dataset cfg in
  let n_events = Ses_event.Relation.cardinality d1 in
  let path = Filename.temp_file "ses_bench" ".csv" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match Ses_store.Csv.save path d1 with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let leg ~elapsed ~(metrics : Ses_core.Metrics.snapshot) ~matches extra =
    Printf.sprintf
      "{\"elapsed_s\":%.6f,\"events_per_sec\":%.0f,\"max_instances\":%d,\"matches\":%d%s}"
      elapsed
      (float_of_int n_events /. elapsed)
      metrics.Ses_core.Metrics.max_simultaneous_instances matches extra
  in
  let row strategy =
    let automaton () = Ses_core.Automaton.of_pattern Q.q1 in
    let mat, mat_s =
      time (fun () ->
          Ses_core.Executor.run_relation strategy (automaton ()) d1)
    in
    let str, str_s =
      time (fun () ->
          match
            Ses_harness.Stream_runner.run ~strategy
              ~query:(fun _schema -> Ok (automaton ()))
              path
          with
          | Ok o -> o
          | Error msg -> failwith msg)
    in
    let n_mat = List.length mat.Ses_core.Engine.matches in
    let n_str = List.length str.Ses_harness.Stream_runner.matches in
    if n_mat <> n_str then
      Printf.eprintf "warning: %s: streaming found %d matches, materialized %d\n"
        (Ses_core.Executor.strategy_name strategy)
        n_str n_mat;
    Printf.sprintf
      "  {\"query\":\"q1\",\"strategy\":%S,\"events\":%d,\n\
      \   \"materialized\":%s,\n\
      \   \"streaming\":%s}"
      (Ses_core.Executor.strategy_name strategy)
      n_events
      (leg ~elapsed:mat_s ~metrics:mat.Ses_core.Engine.metrics ~matches:n_mat
         "")
      (leg ~elapsed:str_s ~metrics:str.Ses_harness.Stream_runner.metrics
         ~matches:n_str
         (Printf.sprintf ",\"delivered\":%d"
            str.Ses_harness.Stream_runner.events_delivered))
  in
  let strategies = [ `Auto; `Plain; `Partitioned; `Brute_force ] in
  Printf.printf "Streaming vs materialized (Q1 over chemo, JSON)\n";
  Printf.printf "-----------------------------------------------\n";
  Printf.printf "[\n%s\n]\n\n"
    (String.concat ",\n" (List.map row strategies))

(* Instance-store benchmark: the state-indexed pool vs the flat
   reference list on a high-population workload (the case-3 overlapping
   group pattern P3, where |Ω| grows superlinearly in the window), and
   the hash-based finalization vs the quadratic reference on a
   finalize-heavy raw candidate set. Results go to stdout and to
   BENCH_instance_store.json. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The pre-optimization finalize: deduplicate by canonical form, then
   apply subsumption one pair at a time with the exported primitives,
   re-canonicalizing on every comparison — O(n² · m log m). *)
let reference_finalize raw =
  let candidates =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun s ->
        let c = Ses_core.Substitution.canonical s in
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.add seen c ();
          true
        end)
      raw
  in
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' -> Ses_core.Substitution.proper_subset s s')
           candidates))
    candidates

let store_bench () =
  let module Q = Ses_harness.Queries in
  let chemo patients =
    Ses_gen.Chemo.generate
      { Ses_gen.Chemo.default with Ses_gen.Chemo.seed = 11L; patients }
  in
  let engine_run ~store automaton d =
    Ses_core.Engine.run_relation
      ~options:
        {
          Ses_core.Engine.default_options with
          Ses_core.Engine.finalize = false;
          store;
        }
      automaton d
  in
  (* High population: the ID-joined group-loop pattern Q1 over a dense
     chemo relation. Each patient keeps a fan of p+ loop instances alive
     for the whole window; the flat pool scans all of them (plus every
     other patient's) on every event, while the indexed store skips the
     buckets whose states cannot fire and stops the expiry sweep at the
     first unexpired instance. *)
  let d = chemo (if quick then 20 else 150) in
  let n_events = Ses_event.Relation.cardinality d in
  let automaton = Ses_core.Automaton.of_pattern Q.q1 in
  let flat, flat_s =
    time (fun () -> engine_run ~store:Ses_core.Engine.Flat automaton d)
  in
  let idx, idx_s =
    time (fun () -> engine_run ~store:Ses_core.Engine.Indexed automaton d)
  in
  let n_raw = List.length idx.Ses_core.Engine.raw in
  if List.length flat.Ses_core.Engine.raw <> n_raw then
    Printf.eprintf "warning: store mismatch: flat emitted %d, indexed %d\n"
      (List.length flat.Ses_core.Engine.raw)
      n_raw;
  (* Finalize-heavy: the raw candidates of the case-3 overlapping group
     pattern P3 on a small relation — thousands of mutually overlapping
     group substitutions with heavy subsumption, the worst case for the
     quadratic reference. *)
  let fd = chemo (if quick then 2 else 3) in
  let fin = engine_run ~store:Ses_core.Engine.Indexed
      (Ses_core.Automaton.of_pattern Q.p3) fd
  in
  let raw = fin.Ses_core.Engine.raw in
  let ref_survivors, ref_s = time (fun () -> reference_finalize raw) in
  let new_survivors, new_s =
    time (fun () -> Ses_core.Substitution.finalize Q.p3 raw)
  in
  if List.length ref_survivors <> List.length new_survivors then
    Printf.eprintf "warning: finalize mismatch: reference %d, hash-based %d\n"
      (List.length ref_survivors)
      (List.length new_survivors);
  let json =
    Printf.sprintf
      "{\n\
      \  \"high_population\": {\n\
      \    \"pattern\": \"q1\", \"events\": %d, \"raw_emissions\": %d,\n\
      \    \"max_instances\": %d,\n\
      \    \"flat_s\": %.6f, \"indexed_s\": %.6f, \"speedup\": %.2f\n\
      \  },\n\
      \  \"finalize_heavy\": {\n\
      \    \"pattern\": \"p3\", \"candidates\": %d, \"matches\": %d,\n\
      \    \"reference_s\": %.6f, \"hash_based_s\": %.6f, \"speedup\": %.2f\n\
      \  }\n\
       }"
      n_events n_raw
      idx.Ses_core.Engine.metrics.Ses_core.Metrics.max_simultaneous_instances
      flat_s idx_s (flat_s /. idx_s)
      (List.length raw)
      (List.length new_survivors)
      ref_s new_s (ref_s /. new_s)
  in
  Printf.printf "Instance store vs flat pool (JSON)\n";
  Printf.printf "----------------------------------\n";
  Printf.printf "%s\n\n" json;
  let oc = open_out "BENCH_instance_store.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc

(* Domain-parallel benchmark: the partitionable (completely ID-joined,
   singleton-p) Q1 over a many-patient chemotherapy relation — one
   independent per-key pool per patient, the regime the sharded executor
   targets — evaluated with the per-key pools on 1, 2 and 4 worker
   domains, plus a 4-query set on 1 vs 4 domains. Matching output is
   asserted identical across domain counts; wall-clock speedup is
   whatever the hardware allows (the JSON records the visible core
   count so a 1-core container's numbers read as what they are). *)

let parallel_bench () =
  let module Q = Ses_harness.Queries in
  let d =
    Ses_gen.Chemo.generate
      {
        Ses_gen.Chemo.default with
        Ses_gen.Chemo.seed = 23L;
        patients = (if quick then 40 else 200);
      }
  in
  let n_events = Ses_event.Relation.cardinality d in
  let automaton () = Ses_core.Automaton.of_pattern Q.q1_complete in
  let run_with domains =
    let options =
      { Ses_core.Engine.default_options with Ses_core.Engine.domains }
    in
    time (fun () ->
        Ses_core.Executor.run_relation ~options `Partitioned (automaton ()) d)
  in
  let counts = [ 1; 2; 4 ] in
  let runs = List.map (fun n -> (n, run_with n)) counts in
  let baseline =
    match runs with
    | (_, (o, _)) :: _ -> o
    | [] -> assert false
  in
  let reference = List.length baseline.Ses_core.Engine.matches in
  List.iter
    (fun (n, (o, _)) ->
      if List.length o.Ses_core.Engine.matches <> reference then
        Printf.eprintf
          "warning: parallel mismatch: %d domains found %d matches, 1 domain %d\n"
          n
          (List.length o.Ses_core.Engine.matches)
          reference)
    runs;
  let leg (n, ((o : Ses_core.Engine.outcome), s)) =
    Printf.sprintf
      "    {\"domains\":%d,\"elapsed_s\":%.6f,\"events_per_sec\":%.0f,\
       \"matches\":%d,\"max_instances\":%d}"
      n s
      (float_of_int n_events /. s)
      (List.length o.Ses_core.Engine.matches)
      o.Ses_core.Engine.metrics.Ses_core.Metrics.max_simultaneous_instances
  in
  let elapsed_of n = snd (List.assoc n runs) in
  (* The multi-query set: four registrations sharing one feed, every
     query on its own domain in the parallel run. All four are
     per-patient or mutually-exclusive patterns — the overlapping P3/P4
     would explode combinatorially on a relation this dense. *)
  let queries () =
    [
      ("q1-complete", Ses_core.Automaton.of_pattern Q.q1_complete);
      ("q1", Ses_core.Automaton.of_pattern Q.q1);
      ("x1-3", Ses_core.Automaton.of_pattern (Q.exp1_exclusive 3));
      ("x1-4", Ses_core.Automaton.of_pattern (Q.exp1_exclusive 4));
    ]
  in
  let multi_with domains =
    let options =
      { Ses_core.Engine.default_options with Ses_core.Engine.domains }
    in
    time (fun () ->
        Ses_core.Multi.run ~options (queries ())
          (Ses_event.Relation.to_seq d))
  in
  let m1, m1_s = multi_with 1 in
  let m4, m4_s = multi_with 4 in
  List.iter2
    (fun (name, (o1 : Ses_core.Engine.outcome)) (_, (o4 : Ses_core.Engine.outcome)) ->
      if
        List.length o1.Ses_core.Engine.matches
        <> List.length o4.Ses_core.Engine.matches
      then
        Printf.eprintf
          "warning: multi mismatch on %s: 4 domains found %d matches, 1 domain %d\n"
          name
          (List.length o4.Ses_core.Engine.matches)
          (List.length o1.Ses_core.Engine.matches))
    m1 m4;
  (* Honest reporting on starved hardware: with a single visible core
     the multi-domain legs only measure queueing overhead, so a speedup
     figure would be noise presented as signal — emit a note instead and
     skip the speedup claims entirely. *)
  let cores = Ses_core.Domain_pool.recommended () in
  let partitioned_tail =
    if cores <= 1 then
      "    \"speedup_note\": \"single visible core: multi-domain runs \
       measure queueing overhead, not parallel speedup\"\n"
    else
      Printf.sprintf
        "    \"speedup_2_domains\": %.2f, \"speedup_4_domains\": %.2f\n"
        (elapsed_of 1 /. elapsed_of 2)
        (elapsed_of 1 /. elapsed_of 4)
  in
  let multi_tail =
    if cores <= 1 then
      ",\n    \"speedup_note\": \"single visible core: multi-domain runs \
       measure queueing overhead, not parallel speedup\""
    else Printf.sprintf ", \"speedup\": %.2f" (m1_s /. m4_s)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"cores_available\": %d,\n\
      \  \"partitioned\": {\n\
      \    \"pattern\": \"q1-complete\", \"events\": %d, \"runs\": [\n\
       %s\n\
      \    ],\n\
       %s\
      \  },\n\
      \  \"multi\": {\n\
      \    \"queries\": 4, \"events\": %d,\n\
      \    \"one_domain_s\": %.6f, \"four_domains_s\": %.6f%s\n\
      \  }\n\
       }"
      cores n_events
      (String.concat ",\n" (List.map leg runs))
      partitioned_tail n_events m1_s m4_s multi_tail
  in
  Printf.printf "Domain-parallel execution (JSON)\n";
  Printf.printf "--------------------------------\n";
  Printf.printf "%s\n\n" json;
  let oc = open_out "BENCH_parallel.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc

(* Telemetry overhead: Q1 (group loop, ~19k events at 150 patients)
   through the plain engine, (a) with the default no-op sink — every
   probe is one untaken branch, so this leg is the pre-telemetry
   baseline modulo that branch — and (b) with a recording sink. Three
   repetitions each, best wall-clock kept; the recorded profile rides
   along in the JSON so the numbers can be cross-checked against the
   probe counts. *)

let telemetry_bench () =
  let module Q = Ses_harness.Queries in
  let d =
    Ses_gen.Chemo.generate
      {
        Ses_gen.Chemo.default with
        Ses_gen.Chemo.seed = 11L;
        patients = (if quick then 20 else 150);
      }
  in
  let n_events = Ses_event.Relation.cardinality d in
  let run_with telemetry =
    Ses_core.Executor.run_relation
      ~options:
        { Ses_core.Engine.default_options with Ses_core.Engine.telemetry }
      `Plain
      (Ses_core.Automaton.of_pattern Q.q1)
      d
  in
  let reps = 3 in
  let best f =
    let rec go n acc best_s =
      if n = 0 then (Option.get acc, best_s)
      else
        let r, s = time f in
        go (n - 1) (Some r) (Float.min best_s s)
    in
    go reps None infinity
  in
  let disabled, disabled_s = best (fun () -> run_with None) in
  let recorder = ref (Ses_core.Telemetry.create ()) in
  let recording, recording_s =
    best (fun () ->
        (* a fresh recorder per repetition, so the kept profile belongs
           to exactly one run *)
        recorder := Ses_core.Telemetry.create ();
        run_with (Some !recorder))
  in
  let n_disabled = List.length disabled.Ses_core.Engine.matches in
  let n_recording = List.length recording.Ses_core.Engine.matches in
  if n_disabled <> n_recording then
    Printf.eprintf
      "warning: telemetry mismatch: recording run found %d matches, no-op %d\n"
      n_recording n_disabled;
  let profile = Ses_core.Telemetry.snapshot !recorder in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": {\"pattern\": \"q1\", \"events\": %d, \"matches\": %d},\n\
      \  \"reps\": %d,\n\
      \  \"disabled\": {\"elapsed_s\": %.6f, \"events_per_sec\": %.0f},\n\
      \  \"recording\": {\"elapsed_s\": %.6f, \"events_per_sec\": %.0f,\n\
      \                \"overhead_pct\": %.2f},\n\
      \  \"profile\":\n\
       %s\n\
       }"
      n_events n_disabled reps disabled_s
      (float_of_int n_events /. disabled_s)
      recording_s
      (float_of_int n_events /. recording_s)
      ((recording_s -. disabled_s) /. disabled_s *. 100.)
      (Ses_core.Telemetry.to_json profile)
  in
  Printf.printf "Telemetry overhead (JSON)\n";
  Printf.printf "-------------------------\n";
  Printf.printf "%s\n\n" json;
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc

(* Part 7: the batched execution core. A single-domain [`Plain] executor
   over a duplicated random workload (D1–D5-style: ~1M events as dense
   simultaneous arrivals over ~1k independent entity ids), evaluating an
   ID-joined two-set sequence under the strong event filter in the
   Exp 3 / Fig 13 regime — a label-sparse stream where the filter drops
   the vast majority of events before any instance is touched. That is
   the regime the sweep contrasts: a batch of 1 routes every event
   through the full engine entry (order check, filter dispatch, the
   pass-array, the expiry sweep) individually, while larger batches pay
   those once per chunk and reject the dropped events in one tight scan.
   Each size runs with probes disabled and with a recording sink — the
   per-batch probe granularity makes the instrumented contrast the
   starker one (per-event clock reads at batch 1 vs per-chunk at the
   tuned batch), and the tuned-batch pair prices telemetry overhead. *)

let batch_bench () =
  let module RW = Ses_gen.Random_workload in
  let copies = if quick then 16 else 256 in
  let spec =
    {
      RW.n_events = (if quick then 1_000 else 4_000);
      n_labels = 26;
      n_ids = 4;
      min_gap = 2;
      max_gap = 3;
      max_value = 5;
    }
  in
  let d = RW.duplicated_relation (Ses_gen.Prng.create 7L) ~copies spec in
  let n_events = Ses_event.Relation.cardinality d in
  let pattern =
    (* a(L='a' ∧ V≥4) ; b(L='b' ∧ V≥4), joined on ID, short window —
       fully ID-joined so every instance is anchored to one of the
       [n_ids * copies] entity keys, and every variable carries constant
       conditions so the strong filter applies (keeping ~2.5% of the
       stream — the Fig 13 selective regime). *)
    let module P = Ses_pattern.Pattern in
    let module V = Ses_pattern.Variable in
    P.make_exn ~schema:RW.schema
      ~sets:[ [ V.singleton "a" ]; [ V.singleton "b" ] ]
      ~where:
        [
          P.Spec.const "a" "L" Ses_event.Predicate.Eq (Ses_event.Value.Str "a");
          P.Spec.const "b" "L" Ses_event.Predicate.Eq (Ses_event.Value.Str "b");
          P.Spec.const "a" "V" Ses_event.Predicate.Ge (Ses_event.Value.Int 4);
          P.Spec.const "b" "V" Ses_event.Predicate.Ge (Ses_event.Value.Int 4);
          P.Spec.fields "a" "ID" Ses_event.Predicate.Eq "b" "ID";
        ]
      ~within:4
  in
  let automaton = Ses_core.Automaton.of_pattern pattern in
  let options_with ?telemetry batch_size =
    {
      Ses_core.Engine.default_options with
      Ses_core.Engine.batch_size;
      filter = Ses_core.Event_filter.Strong;
      finalize = false;
      telemetry;
    }
  in
  let reps = if quick then 1 else 3 in
  let best f =
    let rec go n acc best_s =
      if n = 0 then (Option.get acc, best_s)
      else
        let r, s = time f in
        go (n - 1) (Some r) (Float.min best_s s)
    in
    go reps None infinity
  in
  (* Each size runs twice: probes disabled (the branch-only hot path)
     and with a recording sink (the instrumented pipeline, a fresh
     recorder per repetition). The instrumented contrast is the starker
     one — at batch 1 every event pays the full set of clock reads that
     larger batches pay once per chunk. *)
  let run_at ~recording batch_size =
    best (fun () ->
        let telemetry =
          if recording then Some (Ses_core.Telemetry.create ()) else None
        in
        Ses_core.Executor.run_relation
          ~options:(options_with ?telemetry batch_size)
          `Plain automaton d)
  in
  let sizes = [ 1; 8; 64; 256; 1024; 4096 ] in
  let kept = ref 0 in
  let runs =
    List.map
      (fun b ->
        let outcome, dis_s = run_at ~recording:false b in
        let outcome_rec, rec_s = run_at ~recording:true b in
        let m = outcome.Ses_core.Engine.metrics in
        kept :=
          m.Ses_core.Metrics.events_seen - m.Ses_core.Metrics.events_filtered;
        if
          List.length outcome_rec.Ses_core.Engine.raw
          <> List.length outcome.Ses_core.Engine.raw
        then
          Printf.eprintf
            "warning: instrumented run at batch %d changed the raw emissions\n"
            b;
        (b, List.length outcome.Ses_core.Engine.raw, dis_s, rec_s))
      sizes
  in
  let _, n_raw_1, dis_1, rec_1 = List.hd runs in
  List.iter
    (fun (b, n_raw, _, _) ->
      if n_raw <> n_raw_1 then
        Printf.eprintf
          "warning: batch mismatch: batch %d emitted %d raw matches, batch 1 \
           emitted %d\n"
          b n_raw n_raw_1)
    runs;
  let tuned_batch, _, tuned_dis, tuned_rec =
    List.fold_left
      (fun ((_, _, bs, _) as best) ((_, _, s, _) as r) ->
        if s < bs then r else best)
      (List.hd runs) (List.tl runs)
  in
  let leg (b, _, dis_s, rec_s) =
    Printf.sprintf
      "      {\"batch\": %d, \"disabled_s\": %.6f, \"recording_s\": %.6f,\n\
      \       \"events_per_sec\": %.0f, \"events_per_sec_recording\": %.0f}"
      b dis_s rec_s
      (float_of_int n_events /. dis_s)
      (float_of_int n_events /. rec_s)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": {\"pattern\": \"id-joined-2set\", \"events\": %d,\n\
      \               \"kept_events\": %d, \"entity_keys\": %d, \
       \"raw_matches\": %d},\n\
      \  \"cores_available\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"runs\": [\n\
       %s\n\
      \    ],\n\
      \  \"tuned_batch\": %d,\n\
      \  \"default_batch\": %d,%s\n\
      \  \"speedup_vs_batch_1\": {\"disabled\": %.2f, \"instrumented\": \
       %.2f},\n\
      \  \"telemetry_at_tuned\": {\"disabled_s\": %.6f, \"recording_s\": \
       %.6f,\n\
      \                         \"overhead_pct\": %.2f}\n\
       }"
      n_events !kept
      (spec.RW.n_ids * copies)
      n_raw_1
      (Ses_core.Domain_pool.recommended ())
      reps
      (String.concat ",\n" (List.map leg runs))
      tuned_batch Ses_core.Engine.default_batch_size
      (if tuned_batch = Ses_core.Engine.default_batch_size then ""
       else
         Printf.sprintf
           "\n  \"warning\": \"default batch %d is not the tuned batch %d on \
            this machine/workload\","
           Ses_core.Engine.default_batch_size tuned_batch)
      (dis_1 /. tuned_dis)
      (rec_1 /. tuned_rec) tuned_dis tuned_rec
      ((tuned_rec -. tuned_dis) /. tuned_dis *. 100.)
  in
  Printf.printf "Batched execution (JSON)\n";
  Printf.printf "------------------------\n";
  Printf.printf "%s\n\n" json;
  let oc = open_out "BENCH_batch.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc

(* Part 8: shared-plan multi-query execution. A synthetic 1000-query
   registration set drawn from two structural templates (a 2-set and a
   3-set label sequence), instantiated over varying label/threshold
   constants — the publish/subscribe regime {!Ses_core.Multi}'s shared
   plan targets. Independent execution routes every event through every
   query's own filter; the shared plan evaluates the distinct constant
   atoms once per event in the predicate index and wakes only the
   queries the event can affect, with byte-identical registrations
   collapsed and common prefixes merged. The two legs must produce the
   same per-query matches; the wall-clock ratio is the headline. *)

let multi_bench () =
  let module RW = Ses_gen.Random_workload in
  let n_queries = if quick then 100 else 1_000 in
  let spec =
    {
      RW.n_events = (if quick then 2_000 else 20_000);
      n_labels = 26;
      n_ids = 8;
      min_gap = 0;
      max_gap = 2;
      max_value = 9;
    }
  in
  let d = RW.relation (Ses_gen.Prng.create 11L) spec in
  let n_events = Ses_event.Relation.cardinality d in
  let module P = Ses_pattern.Pattern in
  let module V = Ses_pattern.Variable in
  let lbl i = String.make 1 (Char.chr (Char.code 'a' + (i mod 26))) in
  let label_cond v i =
    P.Spec.const v "L" Ses_event.Predicate.Eq (Ses_event.Value.Str (lbl i))
  in
  let two_set i =
    P.make_exn ~schema:RW.schema
      ~sets:[ [ V.singleton "p" ]; [ V.singleton "s" ] ]
      ~where:[ label_cond "p" i; label_cond "s" (i / 26) ]
      ~within:6
  in
  let three_set i =
    P.make_exn ~schema:RW.schema
      ~sets:[ [ V.singleton "p" ]; [ V.singleton "s" ]; [ V.singleton "r" ] ]
      ~where:
        [
          label_cond "p" i;
          label_cond "s" (i / 26);
          label_cond "r" (i / 2);
          P.Spec.const "r" "V" Ses_event.Predicate.Ge
            (Ses_event.Value.Int (1 + (i mod 5)));
        ]
      ~within:8
  in
  let queries =
    List.init n_queries (fun i ->
        let pattern = if i mod 2 = 0 then two_set (i / 2) else three_set (i / 2) in
        (Printf.sprintf "q%04d" i, Ses_core.Automaton.of_pattern pattern, `Plain))
  in
  let options =
    {
      Ses_core.Engine.default_options with
      Ses_core.Engine.filter = Ses_core.Event_filter.Strong;
      finalize = false;
    }
  in
  let run shared =
    time (fun () ->
        let t = Ses_core.Multi.create_mixed ~options ~shared queries in
        Seq.iter
          (fun e -> ignore (Ses_core.Multi.feed t e))
          (Ses_event.Relation.to_seq d);
        ignore (Ses_core.Multi.close t);
        t)
  in
  let t_ind, ind_s = run false in
  let t_sh, sh_s = run true in
  let raw_of t =
    List.map
      (fun (n, (o : Ses_core.Engine.outcome)) ->
        ( n,
          List.sort Ses_core.Substitution.compare_canonical
            (List.map Ses_core.Substitution.canonical o.raw) ))
      (Ses_core.Multi.outcomes t)
  in
  let matches_equal = raw_of t_ind = raw_of t_sh in
  if not matches_equal then
    Printf.eprintf "warning: shared multi changed the per-query matches\n";
  let stats =
    match Ses_core.Multi.shared_stats t_sh with
    | [ s ] -> s
    | _ -> failwith "multi_bench: expected one sequential shared plan"
  in
  let module SP = Ses_core.Shared_plan in
  let group_counts =
    List.sort
      (fun a b -> Int.compare b a)
      (List.map List.length stats.SP.st_template_groups)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": {\"events\": %d, \"queries\": %d, \"templates\": 2},\n\
      \  \"cores_available\": %d,\n\
      \  \"independent_s\": %.6f, \"shared_s\": %.6f, \"speedup\": %.2f,\n\
      \  \"events_per_sec\": {\"independent\": %.0f, \"shared\": %.0f},\n\
      \  \"matches_equal\": %b,\n\
      \  \"sharing\": {\"merged_groups\": %d, \"merged_queries\": %d,\n\
      \              \"aliased_queries\": %d,\n\
      \              \"template_group_sizes\": [%s]},\n\
      \  \"predicate_index\": {\"atoms\": %d, \"evaluated\": %d, \"saved\": \
       %d,\n\
      \                      \"hit_rate\": %.4f}\n\
       }"
      n_events n_queries
      (Ses_core.Domain_pool.recommended ())
      ind_s sh_s (ind_s /. sh_s)
      (float_of_int n_events /. ind_s)
      (float_of_int n_events /. sh_s)
      matches_equal stats.SP.st_merged_groups stats.SP.st_merged_queries
      stats.SP.st_aliased_queries
      (String.concat ", " (List.map string_of_int group_counts))
      stats.SP.st_index_atoms stats.SP.st_index_evaluated
      stats.SP.st_index_saved stats.SP.st_index_hit_rate
  in
  Printf.printf "Shared-plan multi-query execution (JSON)\n";
  Printf.printf "----------------------------------------\n";
  Printf.printf "%s\n\n" json;
  let oc = open_out "BENCH_multi.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc

(* Part 9: index-accelerated access paths. The batched-core workload
   (~1M events as dense simultaneous arrivals over ~1k entity keys)
   evaluated through {!Ses_harness.Access_exec} with the access path
   forced both ways, across a selectivity sweep: an ID-pinned equality
   query (~0.1% of the stream — the headline regime, where the probe
   touches a thousand rows instead of a million), a label-only query
   (~8%), a label+threshold query (residual filtering on top of the
   probes), and a near-unselective query the cost model must refuse to
   index. Every leg asserts the two paths' matches identical; the JSON
   records what [`Auto] would have chosen, the estimate the decision
   rested on, and the probe counters. *)

let index_bench () =
  let module RW = Ses_gen.Random_workload in
  let module P = Ses_pattern.Pattern in
  let module V = Ses_pattern.Variable in
  let copies = if quick then 16 else 256 in
  let spec =
    {
      RW.n_events = (if quick then 1_000 else 4_000);
      n_labels = 26;
      n_ids = 4;
      min_gap = 2;
      max_gap = 3;
      max_value = 5;
    }
  in
  let d = RW.duplicated_relation (Ses_gen.Prng.create 7L) ~copies spec in
  let n_events = Ses_event.Relation.cardinality d in
  let prepared, prepare_s =
    time (fun () -> Ses_harness.Access_exec.prepare d)
  in
  let cst v f op c = P.Spec.const v f op (Ses_event.Value.Int c) in
  let lbl v s =
    P.Spec.const v "L" Ses_event.Predicate.Eq (Ses_event.Value.Str s)
  in
  let join = P.Spec.fields "a" "ID" Ses_event.Predicate.Eq "b" "ID" in
  let two_set where =
    P.make_exn ~schema:RW.schema
      ~sets:[ [ V.singleton "a" ]; [ V.singleton "b" ] ]
      ~where ~within:4
  in
  let legs =
    [
      ( "id_pinned_eq",
        "one entity key of ~1k: the probe reads ~0.1% of the rows",
        two_set
          [
            lbl "a" "a"; lbl "b" "b";
            cst "a" "ID" Ses_event.Predicate.Eq 7;
            cst "b" "ID" Ses_event.Predicate.Eq 7;
            join;
          ] );
      ( "label_eq",
        "two of 26 labels: the candidate union is ~8% of the rows",
        two_set [ lbl "a" "a"; lbl "b" "b"; join ] );
      ( "label_and_threshold",
        "label probes with a V >= 4 residual filtered off the postings",
        two_set
          [
            lbl "a" "a"; lbl "b" "b";
            cst "a" "V" Ses_event.Predicate.Ge 4;
            cst "b" "V" Ses_event.Predicate.Ge 4;
            join;
          ] );
      ( "unselective",
        "V >= 1 keeps most of the stream: the cost model must scan",
        two_set
          [
            cst "a" "V" Ses_event.Predicate.Ge 1;
            cst "b" "V" Ses_event.Predicate.Ge 1;
            join;
          ] );
    ]
  in
  let options =
    {
      Ses_core.Engine.default_options with
      Ses_core.Engine.filter = Ses_core.Event_filter.Strong;
    }
  in
  let reps = if quick then 1 else 3 in
  let best f =
    let rec go n acc best_s =
      if n = 0 then (Option.get acc, best_s)
      else
        let r, s = time f in
        go (n - 1) (Some r) (Float.min best_s s)
    in
    go reps None infinity
  in
  let canon (o : Ses_harness.Access_exec.outcome) =
    List.map Ses_core.Substitution.canonical o.Ses_harness.Access_exec.matches
  in
  let leg_json (name, description, pattern) =
    let automaton = Ses_core.Automaton.of_pattern pattern in
    let run mode =
      best (fun () ->
          Ses_harness.Access_exec.run ~options ~mode prepared automaton)
    in
    let scan, scan_s = run `Scan in
    (* The first index run builds the probed indexes on the prepared
       handle; [best] keeps the warm repetition, and the cold build is
       priced separately below. *)
    let index, index_s = run `Index in
    let matches_equal = canon scan = canon index in
    if not matches_equal then
      Printf.eprintf "warning: index path changed the matches on %s\n" name;
    let auto =
      Ses_core.Planner.choose_access
        ~stats:(Ses_harness.Access_exec.stats prepared)
        (Ses_core.Planner.plan automaton)
        automaton
    in
    let auto_takes, estimate =
      match auto with
      | Ses_core.Planner.Index_probe { estimate; _ } -> ("index", estimate)
      | Ses_core.Planner.Scan _ -> ("scan", n_events)
    in
    Printf.sprintf
      "    {\"query\": %S, \"description\": %S,\n\
      \     \"scan_s\": %.6f, \"index_s\": %.6f, \"speedup\": %.2f,\n\
      \     \"auto_access\": %S, \"estimated_candidates\": %d,\n\
      \     \"candidates\": %d, \"postings_scanned\": %d, \"clipped\": %d,\n\
      \     \"matches\": %d, \"matches_equal\": %b}"
      name description scan_s index_s (scan_s /. index_s) auto_takes estimate
      index.Ses_harness.Access_exec.candidates
      index.Ses_harness.Access_exec.postings_scanned
      index.Ses_harness.Access_exec.clipped
      (List.length index.Ses_harness.Access_exec.matches)
      matches_equal
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": {\"events\": %d, \"entity_keys\": %d},\n\
      \  \"cores_available\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"prepare_stats_s\": %.6f,\n\
      \  \"runs\": [\n\
       %s\n\
      \  ]\n\
       }"
      n_events
      (spec.RW.n_ids * copies)
      (Ses_core.Domain_pool.recommended ())
      reps prepare_s
      (String.concat ",\n" (List.map leg_json legs))
  in
  Printf.printf "Index-accelerated access paths (JSON)\n";
  Printf.printf "-------------------------------------\n";
  Printf.printf "%s\n\n" json;
  let oc = open_out "BENCH_index.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc

(* Micro-benchmarks: one Test.make per paper artifact, on the D1 dataset. *)

let micro_tests () =
  let module E = Ses_harness.Experiments in
  let module Q = Ses_harness.Queries in
  let d1 = E.dataset cfg in
  let raw_options =
    { Ses_core.Engine.default_options with Ses_core.Engine.finalize = false }
  in
  let ses pattern () =
    ignore
      (Ses_core.Engine.run_relation ~options:raw_options
         (Ses_core.Automaton.of_pattern pattern)
         d1)
  in
  let bf pattern () =
    ignore (Ses_baseline.Brute_force.run_relation ~options:raw_options pattern d1)
  in
  let filtered pattern () =
    let options =
      {
        raw_options with
        Ses_core.Engine.filter = Ses_core.Event_filter.Paper;
      }
    in
    ignore
      (Ses_core.Engine.run_relation ~options
         (Ses_core.Automaton.of_pattern pattern)
         d1)
  in
  Test.make_grouped ~name:"ses" ~fmt:"%s %s"
    [
      (* Figure 11 / Table 1: SES vs BF on the exclusive pattern. *)
      Test.make ~name:"fig11/ses-p1"
        (Staged.stage (ses (Q.exp1_exclusive 4)));
      Test.make ~name:"fig11/bf-p1" (Staged.stage (bf (Q.exp1_exclusive 4)));
      (* Figure 12: case 2 vs case 3 instance growth. *)
      Test.make ~name:"fig12/ses-p4-case2" (Staged.stage (ses Q.p4));
      Test.make ~name:"fig12/ses-p3-case3" (Staged.stage (ses Q.p3));
      (* Figure 13: the filter's effect on the exclusive pattern. *)
      Test.make ~name:"fig13/p5-nofilter" (Staged.stage (ses Q.p5));
      Test.make ~name:"fig13/p5-filter" (Staged.stage (filtered Q.p5));
      (* Construction costs. *)
      Test.make ~name:"build/automaton-q1"
        (Staged.stage (fun () ->
             ignore (Ses_core.Automaton.of_pattern Q.q1)));
      Test.make ~name:"build/automaton-6vars"
        (Staged.stage (fun () ->
             ignore (Ses_core.Automaton.of_pattern (Q.exp1_exclusive 6))));
      (* End-to-end throughput of the planned execution path on Q1. *)
      Test.make ~name:"stream/q1-planned"
        (Staged.stage (fun () ->
             ignore
               (Ses_core.Planner.run_relation
                  (Ses_core.Automaton.of_pattern Q.q1)
                  d1)));
    ]

let run_micro () =
  let benchmark test =
    let bench_cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None ()
    in
    Benchmark.all bench_cfg Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = analyze (benchmark (micro_tests ())) in
  Format.printf "Micro-benchmarks (monotonic clock per run)@.";
  Format.printf "-------------------------------------------@.";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | Some _ | None -> Float.nan
      in
      rows := (name, estimate) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Format.printf "  %-28s (no estimate)@." name
      else if ns > 1e6 then Format.printf "  %-28s %10.3f ms@." name (ns /. 1e6)
      else Format.printf "  %-28s %10.3f us@." name (ns /. 1e3))
    (List.sort
       (fun (a, x) (b, y) ->
         let c = String.compare a b in
         if c <> 0 then c else Float.compare x y)
       !rows);
  Format.printf "@."

let () =
  if store_only then store_bench ()
  else if parallel_only then parallel_bench ()
  else if telemetry_only then telemetry_bench ()
  else if batch_only then batch_bench ()
  else if multi_only then multi_bench ()
  else if index_only then index_bench ()
  else begin
    run_tables ();
    if not no_stream then stream_bench ();
    if not no_micro then run_micro ();
    store_bench ();
    parallel_bench ();
    telemetry_bench ();
    batch_bench ();
    multi_bench ();
    index_bench ()
  end
