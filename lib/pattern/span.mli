(** Source spans of query-language fragments.

    A span covers the characters from (start_line, start_col) inclusive to
    (end_line, end_col) exclusive, all 1-based — the convention of the
    {!Ses_lang} lexer. Conditions built programmatically carry no span;
    conditions parsed from query text carry the span of the condition's
    source, so analyzer diagnostics and resolution errors can point at the
    offending text. *)

type t = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;  (** exclusive *)
}

val make : start_line:int -> start_col:int -> end_line:int -> end_col:int -> t

val point : line:int -> col:int -> t
(** Zero-width span at a single position. *)

val union : t -> t -> t
(** Smallest span covering both. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** ["line 2, columns 7-16"]; the end column prints inclusive. *)

val to_string : t -> string
