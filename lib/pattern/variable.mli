(** Event variables (Sec. 3.2) with quantifiers.

    The paper has two kinds of variables: singletons, which bind exactly
    one input event, and group variables v+ (Kleene plus), which bind one
    or more. Following the SQL change proposal's regular-expression
    quantifiers — and the paper's "broader class of SES patterns" future
    work — this implementation generalizes both to bounded repetition
    v\{min,max\}: a variable binds at least [min] (≥ 1) and at most [max]
    events ([None] = unbounded). [singleton] is \{1,1\} and [group] is
    \{1,∞\}.

    Variables are identified inside a pattern by their position in the
    pattern's variable table; this module only carries the declaration. *)

type quantifier = {
  min_count : int;  (** ≥ 1 *)
  max_count : int option;  (** [None] = unbounded; [Some m] requires m ≥ min *)
}

type t = {
  name : string;
  quantifier : quantifier;
}

val singleton : string -> t
(** [singleton "c"] declares the variable c = c\{1,1\}. *)

val group : string -> t
(** [group "p"] declares the group variable p+ = p\{1,∞\}. *)

val repeat : ?max:int -> min:int -> string -> t
(** [repeat ~min ~max "v"] declares v\{min,max\}; omit [max] for
    unbounded. Raises [Invalid_argument] unless 1 ≤ min (≤ max). *)

val is_group : t -> bool
(** Whether the variable may bind more than one event (max ≠ 1) — such
    variables get looping transitions in the SES automaton. *)

val min_count : t -> int

val max_count : t -> int option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints [name], [name+], [name{m}], [name{m,}] or [name{m,n}]. *)

val to_string : t -> string
