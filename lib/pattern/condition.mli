(** Conditions θ over event variables (Sec. 3.2).

    A condition has the form [v.A φ v'.A'] or [v.A φ C], where A, A' are
    event attributes (or the timestamp T), C is a constant and
    φ ∈ {=, ≠, <, ≤, >, ≥}. Variables are referred to by their integer id
    inside the owning pattern.

    For group variables the paper's semantics decompose a condition over
    all bindings of the variable: a condition holds for a substitution iff
    it holds for {e every combination} of bindings of its two variables
    ({e conjunctive} decomposition, Sec. 3.2). [holds] implements exactly
    that, and [holds_binding] the incremental variant used by transition
    evaluation. *)

open Ses_event

type operand =
  | Const of Value.t
  | Var of int * Schema.Field.t  (** variable id and field *)

type t = {
  var : int;  (** the constrained variable's id *)
  field : Schema.Field.t;
  op : Predicate.op;
  rhs : operand;
  span : Span.t option;
      (** source location when the condition came from query text *)
}

val make_const :
  ?span:Span.t -> var:int -> field:Schema.Field.t -> Predicate.op -> Value.t -> t

val make_var :
  ?span:Span.t ->
  var:int -> field:Schema.Field.t -> Predicate.op ->
  var':int -> field':Schema.Field.t -> t

val span : t -> Span.t option

val is_constant : t -> bool
(** Whether the right-hand side is a constant — the [v.A φ C] form that
    drives mutual exclusivity (Def. 6) and event filtering (Sec. 4.5). *)

val vars : t -> int list
(** The variable ids mentioned (one or two entries, duplicates removed). *)

val mentions : t -> int -> bool

val other_var : t -> int -> int option
(** [other_var c v] is the variable on the opposite side of [v] in [c]:
    [None] for constant conditions or when [c] relates [v] to itself. *)

val typecheck : Schema.t -> t -> (unit, string) result
(** Checks that compared field/constant types are compatible. *)

val holds : t -> (int -> Event.t list) -> bool
(** [holds c bindings] evaluates [c] under the full decomposition: every
    combination of bindings of the two variables must satisfy φ. Variables
    with no bindings make the condition vacuously true. *)

val holds_binding : t -> var:int -> event:Event.t -> (int -> Event.t list) -> bool
(** [holds_binding c ~var ~event bindings] evaluates the instantiations of
    [c] in which [var]'s binding is the new [event]; occurrences of the
    other variable (or of [var] on the opposite side, for reflexive
    conditions) range over [bindings]. This is the transition-time check:
    summed over the run it covers the same combinations as {!holds}. *)

val pp : Schema.t -> name_of:(int -> string) -> Format.formatter -> t -> unit
(** Prints like the paper: [c.ID = p+.ID], [b.L = 'B']. *)
