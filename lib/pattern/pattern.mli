(** Sequenced event set patterns P = (⟨V1, …, Vm⟩, Θ, τ) — Definition 1.

    A pattern owns a table of variables (ids are positions in that table),
    the ordered event set patterns as lists of variable ids, the resolved
    conditions and the maximal duration τ. Construction validates the
    pattern: non-empty sets, globally unique variable names (which yields
    the pairwise-disjointness of Definition 1), resolvable and well-typed
    conditions, and at most {!max_vars} variables (states of the SES
    automaton are bitsets over the variables). *)

open Ses_event

type t

val max_vars : int
(** 62: states are stored in an OCaml [int] bitmask. *)

(** Name-based condition specifications, resolved by {!make}. *)
module Spec : sig
  type operand =
    | Const of Value.t
    | Field of string * string  (** variable name, attribute name (or "T") *)

  type cond = {
    left : string * string;  (** variable name, attribute name (or "T") *)
    op : Predicate.op;
    right : operand;
    span : Span.t option;
        (** source location of the condition in query text, when known *)
  }

  val const : string -> string -> Predicate.op -> Value.t -> cond
  (** [const "c" "L" Eq (Str "C")] is the paper's [c.L = 'C']. *)

  val fields : string -> string -> Predicate.op -> string -> string -> cond
  (** [fields "c" "ID" Eq "p" "ID"] is [c.ID = p.ID]. *)

  val with_span : Span.t -> cond -> cond
  (** Attaches a source span; resolution errors and diagnostics are then
      prefixed with the location. *)
end

val make_full :
  schema:Schema.t ->
  sets:Variable.t list list ->
  negations:(int * Variable.t) list ->
  where:Spec.cond list ->
  within:Time.duration ->
  (t, string list) result
(** [negations] extends the paper's patterns with SASE-style exclusion
    (the SQL proposal's \{- v -\}): [(i, v)] declares that between the
    events matching set Vi and those matching Vi+1 no event may occur
    that satisfies v's conditions. With i = m−1 the guard is {e trailing}:
    no such event may occur after the match's last event for as long as
    the window τ is open. Negated variables never bind; their conditions
    in [where] may compare against constants, the variable itself, or
    positive variables of sets up to and including Vi (anything later
    would not be evaluable when the forbidden event arrives).
    Constraints: 0 ≤ i ≤ m−1, quantifier exactly \{1,1\}, names unique
    across all variables. *)

val make :
  schema:Schema.t ->
  sets:Variable.t list list ->
  where:Spec.cond list ->
  within:Time.duration ->
  (t, string list) result
(** {!make_full} with no negations — the paper's Definition 1. *)

val make_exn :
  schema:Schema.t ->
  sets:Variable.t list list ->
  where:Spec.cond list ->
  within:Time.duration ->
  t

val make_full_exn :
  schema:Schema.t ->
  sets:Variable.t list list ->
  negations:(int * Variable.t) list ->
  where:Spec.cond list ->
  within:Time.duration ->
  t

(** {1 Accessors} *)

val schema : t -> Schema.t

val tau : t -> Time.duration

val n_vars : t -> int
(** Number of {e positive} variables. Negated variables live in the id
    range [n_vars … n_vars + List.length (negations p) − 1]. *)

val variable : t -> int -> Variable.t
(** Accepts positive and negated ids. *)

val var_name : t -> int -> string
(** Display name, including the [+] suffix for group variables and a [!]
    prefix for negated variables. *)

val var_id : t -> string -> int option
(** Lookup by bare name (without [+] or [!]); finds negated variables
    too. *)

val is_group : t -> int -> bool
(** May bind more than one event (quantifier max ≠ 1). *)

val min_count : t -> int -> int

val max_count : t -> int -> int option

val group_vars : t -> int list

val n_sets : t -> int

val set_vars : t -> int -> int list
(** Variable ids of the i-th event set pattern, in declaration order. *)

val set_of_var : t -> int -> int
(** Index of the event set pattern a variable belongs to. *)

val negations : t -> (int * int) list
(** (boundary set index, negated variable id) pairs, sorted by boundary.
    Empty for plain paper patterns. *)

val is_negated : t -> int -> bool

val negation_boundary : t -> int -> int option
(** The boundary a negated variable guards; [None] for positive ids. *)

val conditions : t -> Condition.t list
(** Every condition, including those guarding negated variables. *)

val positive_conditions : t -> Condition.t list
(** Θ proper: the conditions that mention no negated variable — the ones
    attached to automaton transitions. *)

val conditions_on : t -> int -> Condition.t list
(** Conditions mentioning the given variable. *)

val constant_conditions_on : t -> int -> (Schema.Field.t * Predicate.op * Value.t) list
(** The [v.A φ C] conditions on a variable. *)

val singleton_only : t -> bool
(** No group variables anywhere — required by the brute-force baseline's
    exact-equivalence guarantee. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation, e.g.
    [(<{c, p+, d}, {b}>, {c.L = 'C', ...}, 264)]. *)
