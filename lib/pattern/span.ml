type t = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

let make ~start_line ~start_col ~end_line ~end_col =
  { start_line; start_col; end_line; end_col }

let point ~line ~col =
  { start_line = line; start_col = col; end_line = line; end_col = col }

let union a b =
  let start_line, start_col =
    if
      a.start_line < b.start_line
      || (a.start_line = b.start_line && a.start_col <= b.start_col)
    then (a.start_line, a.start_col)
    else (b.start_line, b.start_col)
  in
  let end_line, end_col =
    if
      a.end_line > b.end_line
      || (a.end_line = b.end_line && a.end_col >= b.end_col)
    then (a.end_line, a.end_col)
    else (b.end_line, b.end_col)
  in
  { start_line; start_col; end_line; end_col }

let equal a b =
  a.start_line = b.start_line
  && a.start_col = b.start_col
  && a.end_line = b.end_line
  && a.end_col = b.end_col

let pp ppf s =
  if s.start_line = s.end_line then
    if s.end_col <= s.start_col + 1 then
      Format.fprintf ppf "line %d, column %d" s.start_line s.start_col
    else
      Format.fprintf ppf "line %d, columns %d-%d" s.start_line s.start_col
        (s.end_col - 1)
  else
    Format.fprintf ppf "lines %d:%d-%d:%d" s.start_line s.start_col s.end_line
      (s.end_col - 1)

let to_string s = Format.asprintf "%a" pp s
