open Ses_event

type case =
  | Exclusive
  | Overlapping
  | Overlapping_with_groups of int

let mutually_exclusive p v v' =
  v <> v'
  && List.exists
       (fun (field, op, c) ->
         List.exists
           (fun (field', op', c') ->
             Schema.Field.equal field field'
             && not (Predicate.conjunction_satisfiable (op, c) (op', c')))
           (Pattern.constant_conditions_on p v'))
       (Pattern.constant_conditions_on p v)

let pairwise_exclusive p vars =
  let rec check = function
    | [] -> true
    | v :: rest ->
        List.for_all (mutually_exclusive p v) rest && check rest
  in
  check vars

let all_pairwise_exclusive p =
  pairwise_exclusive p (List.init (Pattern.n_vars p) Fun.id)

let set_pairwise_exclusive p i = pairwise_exclusive p (Pattern.set_vars p i)

let classify_set p i =
  let vars = Pattern.set_vars p i in
  if pairwise_exclusive p vars then Exclusive
  else
    let groups = List.length (List.filter (Pattern.is_group p) vars) in
    if groups = 0 then Overlapping else Overlapping_with_groups groups

let classify p = List.init (Pattern.n_sets p) (classify_set p)

let pp_case ppf = function
  | Exclusive -> Format.pp_print_string ppf "case 1 (pairwise mutually exclusive)"
  | Overlapping -> Format.pp_print_string ppf "case 2 (overlapping, no groups)"
  | Overlapping_with_groups k ->
      Format.fprintf ppf "case 3 (overlapping, %d group variable%s)" k
        (if k = 1 then "" else "s")
