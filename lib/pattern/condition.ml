open Ses_event

type operand =
  | Const of Value.t
  | Var of int * Schema.Field.t

type t = {
  var : int;
  field : Schema.Field.t;
  op : Predicate.op;
  rhs : operand;
  span : Span.t option;
}

let make_const ?span ~var ~field op c = { var; field; op; rhs = Const c; span }

let make_var ?span ~var ~field op ~var' ~field' =
  { var; field; op; rhs = Var (var', field'); span }

let span c = c.span

let is_constant c = match c.rhs with Const _ -> true | Var _ -> false

let vars c =
  match c.rhs with
  | Const _ -> [ c.var ]
  | Var (v', _) -> if v' = c.var then [ c.var ] else [ c.var; v' ]

let mentions c v = List.mem v (vars c)

let other_var c v =
  match c.rhs with
  | Const _ -> None
  | Var (v', _) ->
      if v = c.var && v' <> v then Some v'
      else if v = v' && c.var <> v then Some c.var
      else None

let typecheck schema c =
  let lty = Schema.Field.type_of schema c.field in
  let rty =
    match c.rhs with
    | Const v -> Value.type_of v
    | Var (_, f) -> Schema.Field.type_of schema f
  in
  if Value.ty_compatible lty rty then Ok ()
  else
    Error
      (Format.asprintf "condition compares incompatible types %a and %a"
         Value.pp_ty lty Value.pp_ty rty)

let eval_pair c left right = Predicate.eval c.op left right

let holds c bindings =
  let lefts = List.map (fun e -> Event.get e c.field) (bindings c.var) in
  let rights =
    match c.rhs with
    | Const v -> [ v ]
    | Var (v', f') -> List.map (fun e -> Event.get e f') (bindings v')
  in
  List.for_all (fun l -> List.for_all (fun r -> eval_pair c l r) rights) lefts

let holds_binding c ~var ~event bindings =
  let bindings_for v = if v = var then [ event ] else bindings v in
  let lefts = List.map (fun e -> Event.get e c.field) (bindings_for c.var) in
  let rights =
    match c.rhs with
    | Const v -> [ v ]
    | Var (v', f') -> List.map (fun e -> Event.get e f') (bindings_for v')
  in
  List.for_all (fun l -> List.for_all (fun r -> eval_pair c l r) rights) lefts

let pp schema ~name_of ppf c =
  let pp_field ppf (v, f) =
    Format.fprintf ppf "%s.%s" (name_of v) (Schema.Field.name schema f)
  in
  Format.fprintf ppf "%a %a " pp_field (c.var, c.field) Predicate.pp c.op;
  match c.rhs with
  | Const v -> Value.pp ppf v
  | Var (v', f') -> pp_field ppf (v', f')
