open Ses_event

type t = {
  schema : Schema.t;
  vars : Variable.t array;  (* positive variables, ids 0 .. n-1 *)
  neg_vars : Variable.t array;  (* negated variables, ids n .. n+k-1 *)
  neg_boundaries : int array;  (* boundary set index per negated variable *)
  sets : int list array;
  set_of_var : int array;
  conditions : Condition.t list;
  tau : Time.duration;
}

let max_vars = 62

module Spec = struct
  type operand =
    | Const of Value.t
    | Field of string * string

  type cond = {
    left : string * string;
    op : Predicate.op;
    right : operand;
    span : Span.t option;
  }

  let const v a op c = { left = (v, a); op; right = Const c; span = None }

  let fields v a op v' a' =
    { left = (v, a); op; right = Field (v', a'); span = None }

  let with_span span cond = { cond with span = Some span }
end

let collect_errors checks = List.concat_map (fun c -> c ()) checks

let resolve_cond schema ~var_id (spec : Spec.cond) =
  let located msg =
    match spec.span with
    | None -> msg
    | Some span -> Printf.sprintf "%s: %s" (Span.to_string span) msg
  in
  let resolve_side (vname, aname) =
    match var_id vname with
    | None ->
        Error (located (Printf.sprintf "unknown variable %S in condition" vname))
    | Some v -> (
        match Schema.Field.resolve schema aname with
        | Error e -> Error (located (Printf.sprintf "variable %s: %s" vname e))
        | Ok f -> Ok (v, f))
  in
  match resolve_side spec.left with
  | Error _ as e -> e
  | Ok (v, field) -> (
      match spec.right with
      | Spec.Const c ->
          Ok (Condition.make_const ?span:spec.span ~var:v ~field spec.op c)
      | Spec.Field (v', a') -> (
          match resolve_side (v', a') with
          | Error _ as e -> e
          | Ok (v', field') ->
              Ok
                (Condition.make_var ?span:spec.span ~var:v ~field spec.op
                   ~var':v' ~field')))

let bad_quantifier (v : Variable.t) =
  Variable.min_count v < 1
  ||
  match Variable.max_count v with
  | Some m -> m < Variable.min_count v
  | None -> false

(* Validation accumulates: structural problems, unresolved or ill-typed
   conditions and negation-placement mistakes are all collected in one
   pass, so a query with several defects reports every one of them
   (matching the analyzer's multi-diagnostic style) instead of the first
   hit. *)
let make_full ~schema ~sets ~negations ~where ~within =
  let flat = List.concat sets in
  let neg_flat = List.map snd negations in
  let names =
    List.map (fun (v : Variable.t) -> v.name) (flat @ neg_flat)
  in
  let n_sets = List.length sets in
  let structural =
    collect_errors
      [
        (fun () -> if sets = [] then [ "pattern: no event set patterns" ] else []);
        (fun () ->
          if List.exists (fun s -> s = []) sets then
            [ "pattern: empty event set pattern" ]
          else []);
        (fun () ->
          if List.exists (fun n -> n = "") names then
            [ "pattern: empty variable name" ]
          else []);
        (fun () ->
          let sorted = List.sort_uniq String.compare names in
          if List.length sorted <> List.length names then
            [ "pattern: duplicate variable name (event set patterns must be disjoint)" ]
          else []);
        (fun () ->
          if List.length flat > max_vars then
            [ Printf.sprintf "pattern: more than %d variables" max_vars ]
          else []);
        (fun () -> if within < 0 then [ "pattern: negative duration" ] else []);
        (fun () ->
          List.filter_map
            (fun (v : Variable.t) ->
              if bad_quantifier v then
                Some
                  (Printf.sprintf "pattern: invalid quantifier on variable %S"
                     v.Variable.name)
              else None)
            (flat @ neg_flat));
        (fun () ->
          List.filter_map
            (fun (v : Variable.t) ->
              if Variable.is_group v then
                Some
                  (Printf.sprintf
                     "pattern: negated variable %S must bind exactly one event"
                     v.Variable.name)
              else None)
            neg_flat);
        (fun () ->
          List.filter_map
            (fun (b, (v : Variable.t)) ->
              if b < 0 || b >= n_sets then
                Some
                  (Printf.sprintf
                     "pattern: negation %S at boundary %d (must follow a set)"
                     v.Variable.name b)
              else None)
            negations);
      ]
  in
  begin
    let vars = Array.of_list flat in
    let neg_vars = Array.of_list neg_flat in
    let neg_boundaries = Array.of_list (List.map fst negations) in
    let n_pos = Array.length vars in
    let var_id name =
      let rec find_pos i =
        if i >= n_pos then find_neg 0
        else if vars.(i).Variable.name = name then Some i
        else find_pos (i + 1)
      and find_neg j =
        if j >= Array.length neg_vars then None
        else if neg_vars.(j).Variable.name = name then Some (n_pos + j)
        else find_neg (j + 1)
      in
      find_pos 0
    in
    let sets_arr =
      Array.of_list
        (List.map
           (fun set ->
             List.map
               (fun (v : Variable.t) ->
                 match var_id v.name with
                 | Some i -> i
                 | None -> assert false)
               set)
           sets)
    in
    let set_of_var = Array.make (max 1 n_pos) 0 in
    Array.iteri
      (fun si vs -> List.iter (fun v -> set_of_var.(v) <- si) vs)
      sets_arr;
    let resolved = List.map (resolve_cond schema ~var_id) where in
    let errors =
      List.filter_map (function Error e -> Some e | Ok _ -> None) resolved
    in
    let conditions =
      List.filter_map (function Ok c -> Some c | Error _ -> None) resolved
    in
    let type_errors =
      List.filter_map
        (fun c ->
          match Condition.typecheck schema c with
          | Ok () -> None
          | Error e -> Some e)
        conditions
    in
    (* A negated variable's conditions must be evaluable when the
       forbidden event arrives: the other side must be a constant, the
       variable itself, or a positive variable of a set up to and
       including the guarded boundary. *)
    let is_neg v = v >= n_pos in
    let boundary_of v = neg_boundaries.(v - n_pos) in
    let neg_errors =
      List.filter_map
        (fun (c : Condition.t) ->
          let vs = Condition.vars c in
          match List.filter is_neg vs with
          | [] -> None
          | [ nv ] -> (
              match List.find_opt (fun v -> not (is_neg v)) vs with
              | None -> None
              | Some pos ->
                  if set_of_var.(pos) <= boundary_of nv then None
                  else
                    Some
                      (Printf.sprintf
                         "pattern: negation %S may only reference variables \
                          of sets before its boundary"
                         neg_vars.(nv - n_pos).Variable.name))
          | _ :: _ :: _ ->
              Some "pattern: a condition may not relate two negated variables")
        conditions
    in
    match structural @ errors @ type_errors @ neg_errors with
    | [] ->
        Ok
          {
            schema;
            vars;
            neg_vars;
            neg_boundaries;
            sets = sets_arr;
            set_of_var;
            conditions;
            tau = within;
          }
    | errs -> Error errs
  end

let make ~schema ~sets ~where ~within =
  make_full ~schema ~sets ~negations:[] ~where ~within

let make_exn ~schema ~sets ~where ~within =
  match make ~schema ~sets ~where ~within with
  | Ok p -> p
  | Error errs -> invalid_arg (String.concat "; " errs)

let make_full_exn ~schema ~sets ~negations ~where ~within =
  match make_full ~schema ~sets ~negations ~where ~within with
  | Ok p -> p
  | Error errs -> invalid_arg (String.concat "; " errs)

let schema p = p.schema

let tau p = p.tau

let n_vars p = Array.length p.vars

let is_negated p i = i >= Array.length p.vars

let variable p i =
  if is_negated p i then p.neg_vars.(i - Array.length p.vars) else p.vars.(i)

let var_name p i =
  if is_negated p i then "!" ^ (variable p i).Variable.name
  else Variable.to_string p.vars.(i)

let var_id p name =
  let n_pos = Array.length p.vars in
  let rec find_pos i =
    if i >= n_pos then find_neg 0
    else if p.vars.(i).Variable.name = name then Some i
    else find_pos (i + 1)
  and find_neg j =
    if j >= Array.length p.neg_vars then None
    else if p.neg_vars.(j).Variable.name = name then Some (n_pos + j)
    else find_neg (j + 1)
  in
  find_pos 0

let is_group p i = Variable.is_group (variable p i)

let min_count p i = Variable.min_count (variable p i)

let max_count p i = Variable.max_count (variable p i)

let group_vars p = List.filter (is_group p) (List.init (n_vars p) Fun.id)

let n_sets p = Array.length p.sets

let set_vars p i = p.sets.(i)

let set_of_var p v = p.set_of_var.(v)

let negations p =
  List.sort
    (fun (b, v) (b', v') ->
      let c = Int.compare b b' in
      if c <> 0 then c else Int.compare v v')
    (List.init (Array.length p.neg_vars) (fun j ->
         (p.neg_boundaries.(j), Array.length p.vars + j)))

let negation_boundary p v =
  if is_negated p v then Some p.neg_boundaries.(v - Array.length p.vars)
  else None

let conditions p = p.conditions

let positive_conditions p =
  List.filter
    (fun c -> not (List.exists (is_negated p) (Condition.vars c)))
    p.conditions

let conditions_on p v = List.filter (fun c -> Condition.mentions c v) p.conditions

let constant_conditions_on p v =
  List.filter_map
    (fun (c : Condition.t) ->
      match c.rhs with
      | Condition.Const value when c.var = v -> Some (c.field, c.op, value)
      | Condition.Const _ | Condition.Var _ -> None)
    p.conditions

let singleton_only p = group_vars p = []

let pp ppf p =
  let pp_set ppf vs =
    Format.fprintf ppf "{%s}" (String.concat ", " (List.map (var_name p) vs))
  in
  let pp_chain ppf () =
    Array.iteri
      (fun i vs ->
        if i > 0 then Format.fprintf ppf ", ";
        pp_set ppf vs;
        List.iter
          (fun (b, nv) ->
            if b = i then Format.fprintf ppf ", %s" (var_name p nv))
          (negations p))
      p.sets
  in
  Format.fprintf ppf "(<%a>, {%a}, %d)" pp_chain ()
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (Condition.pp p.schema ~name_of:(var_name p)))
    p.conditions p.tau
