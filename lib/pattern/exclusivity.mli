(** Mutual exclusivity of event variables (Definition 6) and the
    complexity-case classification of Sec. 4.4.

    Two variables are mutually exclusive when Θ contains constant
    conditions [v.A φ C] and [v'.A φ' C'] over the {e same} attribute A
    such that no event satisfies both. Exclusivity rules out
    nondeterminism during execution (Lemma 1); the classification below
    predicts the instance-count bounds of Theorems 1–3. The analysis is
    conservative: the underlying satisfiability check treats the value
    order as dense, so it may fail to detect exclusivity in exotic integer
    cases but never wrongly reports it. *)

(** Shape of an event set pattern w.r.t. the complexity analysis. *)
type case =
  | Exclusive
      (** Case 1: all variables pairwise mutually exclusive — |Ω| is O(1). *)
  | Overlapping
      (** Case 2: not pairwise exclusive, no group variable — |Ω| is
          O(|Vi|!). *)
  | Overlapping_with_groups of int
      (** Case 3: not pairwise exclusive with k ≥ 1 group variables. *)

val mutually_exclusive : Pattern.t -> int -> int -> bool
(** Whether two variables of the pattern are mutually exclusive. *)

val all_pairwise_exclusive : Pattern.t -> bool
(** All variables of the whole pattern, as in Lemma 1. *)

val set_pairwise_exclusive : Pattern.t -> int -> bool
(** All variables of one event set pattern. *)

val classify_set : Pattern.t -> int -> case

val classify : Pattern.t -> case list
(** One case per event set pattern, in order. *)

val pp_case : Format.formatter -> case -> unit
