type quantifier = {
  min_count : int;
  max_count : int option;
}

type t = {
  name : string;
  quantifier : quantifier;
}

let singleton name = { name; quantifier = { min_count = 1; max_count = Some 1 } }

let group name = { name; quantifier = { min_count = 1; max_count = None } }

let repeat ?max ~min name =
  if min < 1 then invalid_arg "Variable.repeat: min must be >= 1";
  (match max with
  | Some m when m < min -> invalid_arg "Variable.repeat: max must be >= min"
  | Some _ | None -> ());
  { name; quantifier = { min_count = min; max_count = max } }

let is_group v =
  match v.quantifier.max_count with
  | Some 1 -> v.quantifier.min_count > 1
  | Some _ | None -> true

let min_count v = v.quantifier.min_count

let max_count v = v.quantifier.max_count

let equal a b = a.name = b.name && a.quantifier = b.quantifier

let to_string v =
  match v.quantifier with
  | { min_count = 1; max_count = Some 1 } -> v.name
  | { min_count = 1; max_count = None } -> v.name ^ "+"
  | { min_count = m; max_count = None } -> Printf.sprintf "%s{%d,}" v.name m
  | { min_count = m; max_count = Some n } when m = n ->
      Printf.sprintf "%s{%d}" v.name m
  | { min_count = m; max_count = Some n } -> Printf.sprintf "%s{%d,%d}" v.name m n

let pp ppf v = Format.pp_print_string ppf (to_string v)
