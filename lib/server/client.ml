(* A tiny scripted client for cram tests and smoke checks: connect,
   send every script line, then print everything the server says until
   it closes the connection (scripts end with QUIT, so the server's BYE
   and close bound the read). *)

let connect ~host ~port ~timeout =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then Error "connect: timed out"
        else begin
          ignore (Unix.select [] [] [] 0.05);
          go ()
        end
  in
  go ()

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let run_script ~host ~port ~timeout lines =
  match connect ~host ~port ~timeout with
  | Error e -> Error e
  | Ok fd -> (
      let finish r =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        r
      in
      match
        List.iter (fun l -> send_all fd (l ^ "\n")) lines;
        let buf = Bytes.create 65536 in
        let out = Buffer.create 4096 in
        let deadline = Unix.gettimeofday () +. timeout in
        let rec read_all () =
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0. then Error "read: timed out"
          else
            match Unix.select [ fd ] [] [] remaining with
            | [], _, _ -> Error "read: timed out"
            | _ -> (
                match Unix.read fd buf 0 (Bytes.length buf) with
                | 0 -> Ok (Buffer.contents out)
                | n ->
                    Buffer.add_subbytes out buf 0 n;
                    read_all ()
                | exception Unix.Unix_error (EINTR, _, _) -> read_all ())
        in
        read_all ()
      with
      | r -> finish r
      | exception Unix.Unix_error (e, _, _) ->
          finish (Error ("client: " ^ Unix.error_message e)))
