(* Per-connection state machine: bytes in, effects out. Owns everything
   that needs no engine — line framing (with oversized-line recovery),
   command parsing, the AUTH gate, BATCH body assembly, PING/QUIT — and
   hands the rest to the runtime as [Op]s. Pure in the testable sense:
   no sockets, no clocks, no engine; [feed] is deterministic in the
   bytes seen so far, however they are chunked. *)

type op =
  | Auth of string
  | Register of string * string
  | Unregister of string
  | Ingest of { rows : string list; announced : int option }
      (* [announced = None] for a single EVENT, [Some n] for a BATCH of
         n lines; [rows] excludes lines the session itself rejected
         (oversized / control bytes), so |rows| <= n. *)
  | Query_metrics
  | Subscribe

type effect_ = Reply of Protocol.reply | Op of op | Close

type batch = {
  announced : int;
  mutable remaining : int;
  mutable rows : string list;
}

type t = {
  buf : Buffer.t;  (* partial line *)
  mutable discarding : bool;  (* inside an oversized line, skip to LF *)
  mutable tenant : string option;
  mutable subscribed : bool;
  mutable batch : batch option;
  mutable closed : bool;
}

let create () =
  {
    buf = Buffer.create 256;
    discarding = false;
    tenant = None;
    subscribed = false;
    batch = None;
    closed = false;
  }

let tenant t = t.tenant
let subscribed t = t.subscribed
let in_batch t = match t.batch with Some b -> b.remaining > 0 | None -> false

let err msg = Reply (Protocol.Err msg)

let batch_row t b line effects =
  b.remaining <- b.remaining - 1;
  let ok = String.length line <= Protocol.max_line_length in
  if ok then b.rows <- line :: b.rows;
  if b.remaining = 0 then begin
    t.batch <- None;
    (* The runtime reports acceptances against [announced]; rows the
       session dropped (oversized) count as rejected via |rows| < n. *)
    Op (Ingest { rows = List.rev b.rows; announced = Some b.announced })
    :: effects
  end
  else effects

let authed t k = match t.tenant with None -> [ err "not authenticated (use AUTH <tenant>)" ] | Some _ -> k ()

let command t (c : Protocol.command) =
  match c with
  | Ping -> [ Reply Protocol.Pong ]
  | Quit ->
      t.closed <- true;
      [ Reply Protocol.Bye; Close ]
  | Auth name -> (
      match t.tenant with
      | Some _ -> [ err "already authenticated" ]
      | None ->
          t.tenant <- Some name;
          [ Op (Auth name) ])
  | Register (name, query) -> authed t (fun () -> [ Op (Register (name, query)) ])
  | Unregister name -> authed t (fun () -> [ Op (Unregister name) ])
  | Event row ->
      authed t (fun () -> [ Op (Ingest { rows = [ row ]; announced = None }) ])
  | Batch n ->
      authed t (fun () ->
          t.batch <- Some { announced = n; remaining = n; rows = [] };
          [])
  | Metrics -> authed t (fun () -> [ Op Query_metrics ])
  | Subscribe ->
      authed t (fun () ->
          t.subscribed <- true;
          [ Op Subscribe ])

let line t line effects =
  (* CRLF tolerated: strip one trailing CR. *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  match t.batch with
  | Some b when b.remaining > 0 -> batch_row t b line effects
  | _ -> (
      match Protocol.parse_command line with
      | Error msg -> err msg :: effects
      | Ok c -> List.rev_append (command t c) effects)

let feed t data =
  if t.closed then []
  else begin
    let effects = ref [] in
    String.iter
      (fun c ->
        if t.closed then ()
        else if c = '\n' then begin
          if t.discarding then t.discarding <- false
          else begin
            let l = Buffer.contents t.buf in
            effects := line t l !effects
          end;
          Buffer.clear t.buf
        end
        else begin
          Buffer.add_char t.buf c;
          if
            (not t.discarding)
            && Buffer.length t.buf > Protocol.max_line_length
          then begin
            (* Oversized: report once, then skip to the next LF. Inside
               a BATCH the line still consumes one announced row so the
               framing survives. *)
            t.discarding <- true;
            Buffer.clear t.buf;
            match t.batch with
            | Some b when b.remaining > 0 ->
                effects :=
                  batch_row t b (String.make (Protocol.max_line_length + 1) 'x')
                    !effects
            | _ -> effects := err "line too long" :: !effects
          end
        end)
      data;
    List.rev !effects
  end
