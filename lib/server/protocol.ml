(* Wire protocol: newline-delimited commands and replies. Parsing and
   rendering are pure and total — any byte sequence yields [Ok] or
   [Error], never an exception — so the fuzz suite can hammer them. *)

let max_line_length = 4096
let max_token_length = 64
let max_batch = 100_000

type command =
  | Auth of string
  | Register of string * string  (* name, query text *)
  | Unregister of string
  | Event of string  (* one CSV row, verbatim *)
  | Batch of int  (* the next n lines are CSV rows *)
  | Metrics
  | Subscribe
  | Ping
  | Quit

type reply =
  | Ok_done of string option
  | Err of string
  | Pong
  | Bye
  | Slow
  | Resume
  | Match of { tenant : string; query : string; subst : string }
  | Result of { tenant : string; query : string; subst : string }
  | Stats of (string * string) list

(* ---- validation ---- *)

let token_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let token_ok s =
  s <> ""
  && String.length s <= max_token_length
  && String.for_all token_char s

let text_char c = c <> '\000' && c <> '\n' && c <> '\r'
let text_ok s = String.for_all text_char s

(* ---- shared line scanning ---- *)

let line_ok line =
  if String.length line > max_line_length then Error "line too long"
  else if not (text_ok line) then Error "illegal control byte in line"
  else Ok ()

(* First space-separated word and the verbatim remainder (leading
   separator stripped, inner bytes untouched). *)
let split_word line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let no_arg cmd rest = if rest = "" then Ok cmd else Error "unexpected argument"

let token_arg what rest k =
  if token_ok rest then k rest
  else Error (what ^ ": expected a name ([A-Za-z0-9_.-], max 64 bytes)")

(* ---- commands ---- *)

let parse_command line =
  match line_ok line with
  | Error _ as e -> e
  | Ok () -> (
      let word, rest = split_word line in
      match word with
      | "AUTH" -> token_arg "AUTH" rest (fun t -> Ok (Auth t))
      | "REGISTER" ->
          let name, query = split_word rest in
          if not (token_ok name) then
            Error "REGISTER: expected a name ([A-Za-z0-9_.-], max 64 bytes)"
          else if String.trim query = "" then
            Error "REGISTER: missing query text"
          else Ok (Register (name, query))
      | "UNREGISTER" -> token_arg "UNREGISTER" rest (fun n -> Ok (Unregister n))
      | "EVENT" ->
          if String.trim rest = "" then Error "EVENT: missing row"
          else Ok (Event rest)
      | "BATCH" -> (
          match int_of_string_opt rest with
          | Some n when n >= 1 && n <= max_batch -> Ok (Batch n)
          | Some _ ->
              Error
                (Printf.sprintf "BATCH: count must be in [1, %d]" max_batch)
          | None -> Error "BATCH: expected a count")
      | "METRICS" -> no_arg Metrics rest
      | "SUBSCRIBE" -> no_arg Subscribe rest
      | "PING" -> no_arg Ping rest
      | "QUIT" -> no_arg Quit rest
      | "" -> Error "empty command"
      | w ->
          if String.length w > max_token_length || not (text_ok w) then
            Error "unknown command"
          else Error ("unknown command " ^ w))

let render_command = function
  | Auth t -> "AUTH " ^ t
  | Register (n, q) -> "REGISTER " ^ n ^ " " ^ q
  | Unregister n -> "UNREGISTER " ^ n
  | Event row -> "EVENT " ^ row
  | Batch n -> "BATCH " ^ string_of_int n
  | Metrics -> "METRICS"
  | Subscribe -> "SUBSCRIBE"
  | Ping -> "PING"
  | Quit -> "QUIT"

(* ---- replies ---- *)

(* Free text going onto the wire must not break line framing. *)
let sanitize s = String.map (fun c -> if text_char c then c else ' ') s

let parse_stats rest =
  let fields = String.split_on_char ' ' rest in
  let rec go acc = function
    | [] -> Ok (Stats (List.rev acc))
    | f :: tl -> (
        match String.index_opt f '=' with
        | None -> Error "STATS: expected key=value fields"
        | Some i ->
            let k = String.sub f 0 i in
            let v = String.sub f (i + 1) (String.length f - i - 1) in
            if not (token_ok k) then Error "STATS: bad key"
            else if v = "" || String.contains v ' ' then
              Error "STATS: bad value"
            else go ((k, v) :: acc) tl)
  in
  match fields with [ "" ] -> Ok (Stats []) | _ -> go [] fields

let parse_tagged rest k =
  let tenant, rest = split_word rest in
  let query, subst = split_word rest in
  if not (token_ok tenant) then Error "expected a tenant name"
  else if not (token_ok query) then Error "expected a query name"
  else if subst = "" then Error "missing substitution"
  else Ok (k tenant query subst)

let parse_reply line =
  match line_ok line with
  | Error _ as e -> e
  | Ok () -> (
      let word, rest = split_word line in
      match word with
      | "OK" -> if rest = "" then Ok (Ok_done None) else Ok (Ok_done (Some rest))
      | "ERR" ->
          if rest = "" then Error "ERR: missing message" else Ok (Err rest)
      | "PONG" -> no_arg Pong rest
      | "BYE" -> no_arg Bye rest
      | "SLOW" -> no_arg Slow rest
      | "RESUME" -> no_arg Resume rest
      | "MATCH" ->
          parse_tagged rest (fun tenant query subst ->
              Match { tenant; query; subst })
      | "RESULT" ->
          parse_tagged rest (fun tenant query subst ->
              Result { tenant; query; subst })
      | "STATS" -> parse_stats rest
      | "" -> Error "empty reply"
      | _ -> Error "unknown reply")

let render_reply = function
  | Ok_done None -> "OK"
  | Ok_done (Some msg) -> "OK " ^ sanitize msg
  | Err msg -> "ERR " ^ sanitize msg
  | Pong -> "PONG"
  | Bye -> "BYE"
  | Slow -> "SLOW"
  | Resume -> "RESUME"
  | Match { tenant; query; subst } ->
      "MATCH " ^ tenant ^ " " ^ query ^ " " ^ sanitize subst
  | Result { tenant; query; subst } ->
      "RESULT " ^ tenant ^ " " ^ query ^ " " ^ sanitize subst
  | Stats [] -> "STATS"
  | Stats fields ->
      "STATS " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fields)
