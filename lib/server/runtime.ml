(* The server core, free of sockets: sessions multiplexed over abstract
   per-connection byte buffers, tenant state (query sets, ingest
   queues), backpressure, idle timeouts and telemetry. The TCP layer is
   a thin adapter: it pushes received bytes through [input], drains
   [take_output] to the wire, and calls [tick] on its loop; the
   integration tests drive exactly the same entry points through
   in-memory pipes, deterministically. *)

open Ses_event
open Ses_pattern
open Ses_core

type overflow = Drop_oldest | Block

type config = {
  schema : Schema.t;
  options : Engine.options;
  queue_capacity : int;
  overflow : overflow;
  idle_timeout : float;  (* seconds; 0 disables *)
  drain_quota : int;  (* events fed per tenant per tick *)
  telemetry : Telemetry.t option;
}

let default_config ~schema =
  {
    schema;
    (* Runtime register/unregister needs the sequential backends. *)
    options = { Engine.default_options with Engine.domains = 1 };
    queue_capacity = 1024;
    overflow = Block;
    idle_timeout = 0.;
    drain_quota = 256;
    telemetry = None;
  }

type tenant = {
  t_name : string;
  mutable t_multi : Multi.t option;  (* created at the first REGISTER *)
  t_queue : Event.t Bounded_queue.t;
  mutable t_queries : (string * Pattern.t) list;
  mutable t_seq : int;
  mutable t_last_ts : Time.t option;
  mutable t_events : int;  (* accepted rows *)
  mutable t_dropped : int;  (* overflow drops *)
  mutable t_matches : int;  (* raw emissions streamed *)
  t_counter : Telemetry.Counter.t option;
}

type conn = {
  c_id : int;
  c_session : Session.t;
  c_out : Buffer.t;
  mutable c_slow : bool;
  mutable c_closing : bool;
  mutable c_last_activity : float;
}

type t = {
  cfg : config;
  conns : (int, conn) Hashtbl.t;
  tenants : (string, tenant) Hashtbl.t;
  mutable next_id : int;
  gauge_conns : Telemetry.Gauge.t option;
  hist_depth : Telemetry.Histogram.t option;
  span_ingest : Telemetry.Span.t option;
  span_emit : Telemetry.Span.t option;
}

let create cfg =
  let cfg =
    {
      cfg with
      options = { cfg.options with Engine.domains = 1 };
      queue_capacity = max 1 cfg.queue_capacity;
      drain_quota = max 1 cfg.drain_quota;
    }
  in
  let probe f name = Option.map (fun tl -> f tl name) cfg.telemetry in
  {
    cfg;
    conns = Hashtbl.create 16;
    tenants = Hashtbl.create 16;
    next_id = 0;
    gauge_conns = probe Telemetry.gauge "server.connections";
    hist_depth = probe Telemetry.histogram "server.queue_depth";
    span_ingest = probe Telemetry.span "server.ingest";
    span_emit = probe Telemetry.span "server.emit";
  }

let connections t = Hashtbl.length t.conns
let conn_ids t = List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.conns [])

let observe_conns t =
  Option.iter
    (fun g -> Telemetry.Gauge.observe g (connections t))
    t.gauge_conns

let send conn reply =
  Buffer.add_string conn.c_out (Protocol.render_reply reply);
  Buffer.add_char conn.c_out '\n'

let tenant_conns t name =
  Hashtbl.fold
    (fun _ c acc ->
      let same_tenant =
        match Session.tenant c.c_session with
        | Some t -> String.equal t name
        | None -> false
      in
      if same_tenant && not c.c_closing then
        c :: acc
      else acc)
    t.conns []

let subscribers t name =
  List.filter (fun c -> Session.subscribed c.c_session) (tenant_conns t name)

let find_tenant t name =
  match Hashtbl.find_opt t.tenants name with
  | Some ten -> ten
  | None ->
      let ten =
        {
          t_name = name;
          t_multi = None;
          t_queue = Bounded_queue.create ~capacity:t.cfg.queue_capacity;
          t_queries = [];
          t_seq = 0;
          t_last_ts = None;
          t_events = 0;
          t_dropped = 0;
          t_matches = 0;
          t_counter =
            Option.map
              (fun tl -> Telemetry.counter tl ("server.events." ^ name))
              t.cfg.telemetry;
        }
      in
      Hashtbl.add t.tenants name ten;
      ten

let render_subst pattern subst =
  Format.asprintf "%a" (Substitution.pp pattern) subst

(* Stream completions to the tenant's subscribers as MATCH lines. *)
let broadcast t ten completions =
  let subs = subscribers t ten.t_name in
  let tok = Option.map Telemetry.Span.start t.span_emit in
  List.iter
    (fun (qname, substs) ->
      ten.t_matches <- ten.t_matches + List.length substs;
      match List.assoc_opt qname ten.t_queries with
      | None -> ()
      | Some pattern ->
          List.iter
            (fun s ->
              let line =
                Protocol.Match
                  {
                    tenant = ten.t_name;
                    query = qname;
                    subst = render_subst pattern s;
                  }
              in
              List.iter (fun c -> send c line) subs)
            substs)
    completions;
  (match (t.span_emit, tok) with
  | Some sp, Some tk -> Telemetry.Span.stop sp tk
  | _ -> ())

(* Feed queued events into the tenant's query set; resume slowed
   connections when the queue falls under the low-water mark. *)
let drain_tenant t ten ~quota =
  let events = Bounded_queue.drain ten.t_queue ~max:quota in
  (if events <> [] then
     let tok = Option.map Telemetry.Span.start t.span_ingest in
     (match ten.t_multi with
     | None -> ()
     | Some m ->
         let completions = Multi.feed_batch m (Array.of_list events) in
         broadcast t ten completions);
     match (t.span_ingest, tok) with
     | Some sp, Some tk -> Telemetry.Span.stop sp tk
     | _ -> ());
  if Bounded_queue.below_low_water ten.t_queue then
    List.iter
      (fun c ->
        if c.c_slow then begin
          c.c_slow <- false;
          send c Protocol.Resume
        end)
      (tenant_conns t ten.t_name)

let drain_all t ten = drain_tenant t ten ~quota:max_int

(* Overflow: drop-oldest keeps reading and sheds the oldest queued
   events; block stops reading the tenant's connections (the TCP layer
   honours [want_read]) until the drain resumes them. SLOW is sent once
   per connection either way. *)
let after_enqueue t ten =
  if Bounded_queue.over ten.t_queue then begin
    (match t.cfg.overflow with
    | Drop_oldest -> ten.t_dropped <- ten.t_dropped + Bounded_queue.drop_oldest ten.t_queue
    | Block -> ());
    List.iter
      (fun c ->
        if not c.c_slow then begin
          c.c_slow <- true;
          send c Protocol.Slow
        end)
      (tenant_conns t ten.t_name)
  end

let register_query t conn ten name query_text =
  if List.mem_assoc name ten.t_queries then
    send conn (Protocol.Err (Printf.sprintf "register %s: duplicate query name" name))
  else
    match Ses_lang.Lang.parse_pattern t.cfg.schema query_text with
    | Error msg ->
        send conn (Protocol.Err (Printf.sprintf "register %s: %s" name msg))
    | Ok pattern -> (
        let automaton = Automaton.of_pattern pattern in
        (* [`Plain] only: the partitioned executors behind [`Auto] defer
           all emissions to close, which would silence streamed MATCH
           lines until UNREGISTER. *)
        (* Barrier: queued events were sent before this REGISTER, so the
           new query must not observe them through a later drain. *)
        drain_all t ten;
        match ten.t_multi with
        | None ->
            ten.t_multi <-
              Some
                (Multi.create_mixed ~options:t.cfg.options
                   [ (name, automaton, `Plain) ]);
            ten.t_queries <- ten.t_queries @ [ (name, pattern) ];
            send conn (Protocol.Ok_done (Some ("registered " ^ name)))
        | Some m -> (
            match Multi.register m (name, automaton, `Plain) with
            | () ->
                ten.t_queries <- ten.t_queries @ [ (name, pattern) ];
                send conn (Protocol.Ok_done (Some ("registered " ^ name)))
            | exception Invalid_argument msg ->
                send conn (Protocol.Err ("register " ^ name ^ ": " ^ msg))))

let unregister_query t conn ten name =
  match List.assoc_opt name ten.t_queries with
  | None -> send conn (Protocol.Err ("unregister " ^ name ^ ": unknown query"))
  | Some pattern -> (
      drain_all t ten;
      match Option.map (fun m -> Multi.unregister m name) ten.t_multi with
      | None | (exception Invalid_argument _) ->
          send conn (Protocol.Err ("unregister " ^ name ^ ": unknown query"))
      | Some (outcome : Engine.outcome) ->
          ten.t_queries <- List.remove_assoc name ten.t_queries;
          let subs = subscribers t ten.t_name in
          List.iter
            (fun s ->
              let line =
                Protocol.Result
                  {
                    tenant = ten.t_name;
                    query = name;
                    subst = render_subst pattern s;
                  }
              in
              List.iter (fun c -> send c line) subs)
            outcome.Engine.matches;
          send conn
            (Protocol.Ok_done
               (Some
                  (Printf.sprintf "unregistered %s matches=%d" name
                     (List.length outcome.Engine.matches)))))

let ingest t conn ten rows announced =
  let accepted = ref 0 and last_err = ref "" in
  List.iter
    (fun row ->
      match Ses_store.Csv_stream.row_of_line t.cfg.schema ~seq:ten.t_seq row with
      | Error msg -> last_err := msg
      | Ok e -> (
          match ten.t_last_ts with
          | Some last when Event.ts e < last ->
              last_err := "row out of order (timestamps must not decrease)"
          | _ ->
              ten.t_seq <- ten.t_seq + 1;
              ten.t_last_ts <- Some (Event.ts e);
              ten.t_events <- ten.t_events + 1;
              incr accepted;
              Bounded_queue.push ten.t_queue e))
    rows;
  Option.iter (fun c -> Telemetry.Counter.add c !accepted) ten.t_counter;
  (match announced with
  | None ->
      (* single EVENT: silent on success, ERR on rejection *)
      if !last_err <> "" then send conn (Protocol.Err ("event: " ^ !last_err))
  | Some n ->
      if !accepted = n then
        send conn (Protocol.Ok_done (Some (Printf.sprintf "batch %d" n)))
      else
        send conn
          (Protocol.Err
             (Printf.sprintf "batch: %d of %d rows rejected%s" (n - !accepted)
                n
                (if !last_err = "" then "" else " (last: " ^ !last_err ^ ")"))));
  after_enqueue t ten

let stats t ten =
  Protocol.Stats
    [
      ("tenant", ten.t_name);
      ("queries", string_of_int (List.length ten.t_queries));
      ("events", string_of_int ten.t_events);
      ("queued", string_of_int (Bounded_queue.length ten.t_queue));
      ("dropped", string_of_int ten.t_dropped);
      ("matches", string_of_int ten.t_matches);
      ("connections", string_of_int (connections t));
    ]

let exec_op t conn (op : Session.op) =
  match op with
  | Auth name ->
      ignore (find_tenant t name);
      send conn (Protocol.Ok_done (Some ("tenant " ^ name)))
  | Subscribe -> send conn (Protocol.Ok_done (Some "subscribed"))
  | Register (name, query) -> (
      match Session.tenant conn.c_session with
      | None -> ()
      | Some tn -> register_query t conn (find_tenant t tn) name query)
  | Unregister name -> (
      match Session.tenant conn.c_session with
      | None -> ()
      | Some tn -> unregister_query t conn (find_tenant t tn) name)
  | Ingest { rows; announced } -> (
      match Session.tenant conn.c_session with
      | None -> ()
      | Some tn -> ingest t conn (find_tenant t tn) rows announced)
  | Query_metrics -> (
      match Session.tenant conn.c_session with
      | None -> ()
      | Some tn ->
          let ten = find_tenant t tn in
          (* Barrier: counts reflect everything sent before METRICS. *)
          drain_all t ten;
          send conn (stats t ten))

let add_conn ?(now = 0.) t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let conn =
    {
      c_id = id;
      c_session = Session.create ();
      c_out = Buffer.create 256;
      c_slow = false;
      c_closing = false;
      c_last_activity = now;
    }
  in
  Hashtbl.add t.conns id conn;
  observe_conns t;
  id

let with_conn t id f =
  match Hashtbl.find_opt t.conns id with None -> () | Some c -> f c

let input ?(now = 0.) t id data =
  with_conn t id (fun conn ->
      conn.c_last_activity <- now;
      List.iter
        (fun (e : Session.effect_) ->
          match e with
          | Session.Reply r -> send conn r
          | Session.Op op -> exec_op t conn op
          | Session.Close ->
              (* QUIT is an ingest barrier: matches for everything the
                 connection's tenant sent beforehand are flushed to the
                 subscribers before the socket closes. *)
              (match Session.tenant conn.c_session with
              | Some tn -> drain_all t (find_tenant t tn)
              | None -> ());
              conn.c_closing <- true)
        (Session.feed conn.c_session data))

let close_conn t id =
  with_conn t id (fun _ ->
      Hashtbl.remove t.conns id;
      observe_conns t)

let take_output t id =
  match Hashtbl.find_opt t.conns id with
  | None -> ""
  | Some conn ->
      let s = Buffer.contents conn.c_out in
      Buffer.clear conn.c_out;
      s

let pending_output t id =
  match Hashtbl.find_opt t.conns id with
  | None -> 0
  | Some conn -> Buffer.length conn.c_out

let want_read t id =
  match Hashtbl.find_opt t.conns id with
  | None -> false
  | Some conn ->
      (not conn.c_closing)
      && not (t.cfg.overflow = Block && conn.c_slow)

let is_closing t id =
  match Hashtbl.find_opt t.conns id with
  | None -> true
  | Some conn -> conn.c_closing

let tick ?(now = 0.) t =
  Hashtbl.iter
    (fun _ ten ->
      Option.iter
        (fun h -> Telemetry.Histogram.observe h (Bounded_queue.length ten.t_queue))
        t.hist_depth;
      drain_tenant t ten ~quota:t.cfg.drain_quota)
    t.tenants;
  if t.cfg.idle_timeout > 0. then
    Hashtbl.iter
      (fun _ conn ->
        if
          (not conn.c_closing)
          && now -. conn.c_last_activity > t.cfg.idle_timeout
        then begin
          send conn (Protocol.Err "idle timeout");
          send conn Protocol.Bye;
          conn.c_closing <- true
        end)
      t.conns

let metrics_page t =
  match t.cfg.telemetry with
  | None -> "# telemetry disabled\n"
  | Some tl -> Telemetry.to_prometheus (Telemetry.snapshot tl)

let shutdown t =
  (* Flush every tenant (queued events, then the engines' close-time
     emissions) to its subscribers, then say goodbye. *)
  Hashtbl.iter
    (fun _ ten ->
      drain_all t ten;
      match ten.t_multi with
      | None -> ()
      | Some m ->
          let flushed = Multi.close m in
          broadcast t ten flushed)
    t.tenants;
  Hashtbl.iter
    (fun _ conn ->
      if not conn.c_closing then begin
        send conn Protocol.Bye;
        conn.c_closing <- true
      end)
    t.conns
