(** Per-connection protocol state machine: bytes in, effects out.

    Owns everything that needs no engine — line framing with
    oversized-line recovery, command parsing, the AUTH gate, BATCH body
    assembly, PING/QUIT — and emits {!op}s for the parts the
    {!Runtime} must execute against tenant state. Deterministic in the
    bytes seen so far, regardless of how they are chunked; never
    raises on any input. *)

type op =
  | Auth of string
  | Register of string * string
  | Unregister of string
  | Ingest of { rows : string list; announced : int option }
      (** [announced = None] for a single [EVENT], [Some n] for a
          [BATCH n]; [rows] excludes lines the session itself rejected
          (oversized), so [List.length rows <= n]. *)
  | Query_metrics
  | Subscribe

type effect_ =
  | Reply of Protocol.reply  (** write this line *)
  | Op of op  (** execute against tenant state *)
  | Close  (** close the connection once output is flushed *)

type t

val create : unit -> t

val tenant : t -> string option
(** The AUTHed tenant, once [Op (Auth _)] has been emitted. *)

val subscribed : t -> bool

val in_batch : t -> bool
(** A [BATCH] body is still owed rows. *)

val feed : t -> string -> effect_ list
(** Consume a chunk of input bytes (any framing) and return the effects
    of every line completed by it, in order. After [Close] has been
    emitted, further input is ignored. *)
