(** The socket adapter: a [select]-based event loop over non-blocking
    TCP sockets, shuttling bytes between the kernel and {!Runtime}.

    A connection whose first bytes are ["GET "] is treated as an
    HTTP/1.0 request instead: [/metrics] is answered with the
    Prometheus exposition of the runtime's telemetry and the socket is
    closed — the scrape endpoint shares the protocol port.

    [SIGTERM]/[SIGINT] trigger a graceful stop: {!Runtime.shutdown}
    (drain tenants, close engines, BYE every connection), best-effort
    flush, exit. All protocol logic lives in {!Runtime}/{!Session};
    the integration tests bypass this module entirely. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port *)
  port_file : string option;  (** write the bound port here, for scripts *)
  log : string -> unit;
      (** Sink for lifecycle lines ("listening on ...", "shut down").
          The library never writes to stdout itself; the CLI passes a
          print-and-flush sink. *)
}

val default_config : config
(** 127.0.0.1, ephemeral port, no port file, silent log. *)

val serve : ?config:config -> Runtime.config -> unit
(** Binds, reports ["ses serve: listening on <host>:<port>"] through
    [config.log], and runs the loop until a stop signal arrives. *)
