(** A FIFO with a soft capacity, backing the per-tenant ingest queues.

    Pushes always succeed (the rows are already parsed; losing them here
    would break protocol framing) — the bound is enforced by the
    caller's overflow policy: {!drop_oldest} back to capacity, or stop
    reading the offending connections until {!drain} brings the depth
    under {!below_low_water}. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val over : 'a t -> bool
(** Depth strictly above capacity. *)

val below_low_water : 'a t -> bool
(** Depth at or under half the capacity — when a slowed connection is
    resumed. *)

val drop_oldest : 'a t -> int
(** Pops from the front until depth = capacity; returns the count. *)

val drain : 'a t -> max:int -> 'a list
(** Pops up to [max] elements, FIFO order. *)
