(* The socket adapter: a select(2) loop over non-blocking fds that
   shuttles bytes between the kernel and {!Runtime}. Also answers
   minimal HTTP/1.0 GETs on the same port (a connection whose first
   bytes are "GET " is served /metrics and closed), so the Prometheus
   scrape needs no second listener. All protocol logic lives in
   {!Runtime}/{!Session}; nothing here is load-bearing for correctness
   and the integration tests bypass this file entirely. *)

type peer_state =
  | Undecided of Buffer.t  (* first bytes not seen yet: protocol? HTTP? *)
  | Proto of int  (* runtime connection id *)
  | Http of Buffer.t  (* request bytes until the blank line *)

type peer = {
  fd : Unix.file_descr;
  mutable state : peer_state;
  mutable outbuf : string;  (* unwritten tail (partial writes) *)
  mutable eof : bool;  (* peer half-closed; flush then close *)
}

type config = {
  host : string;
  port : int;  (* 0 = ephemeral *)
  port_file : string option;  (* write the bound port here *)
  log : string -> unit;  (* lifecycle lines; the CLI wires stdout *)
}

let default_config =
  { host = "127.0.0.1"; port = 0; port_file = None; log = ignore }

let http_response ~status ~body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: text/plain; version=0.0.4\r\n\
     Content-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

let stop_requested = ref false

let handle_signals () =
  let request _ = stop_requested := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request);
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let serve ?(config = default_config) rt_config =
  stop_requested := false;
  handle_signals ();
  let rt = Runtime.create rt_config in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  let addr = Unix.inet_addr_of_string config.host in
  Unix.bind listener (Unix.ADDR_INET (addr, config.port));
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  (match config.port_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (string_of_int port);
      output_char oc '\n';
      close_out oc);
  config.log (Printf.sprintf "ses serve: listening on %s:%d\n" config.host port);
  let peers : (Unix.file_descr, peer) Hashtbl.t = Hashtbl.create 16 in
  let buf = Bytes.create 65536 in
  let close_peer peer =
    (match peer.state with
    | Proto id -> Runtime.close_conn rt id
    | Undecided _ | Http _ -> ());
    Hashtbl.remove peers peer.fd;
    try Unix.close peer.fd with Unix.Unix_error _ -> ()
  in
  let now () = Unix.gettimeofday () in
  (* Everything the runtime has buffered for [id], appended to the
     peer's unwritten tail. *)
  let pull_output peer =
    match peer.state with
    | Proto id ->
        let s = Runtime.take_output rt id in
        if s <> "" then peer.outbuf <- peer.outbuf ^ s
    | Undecided _ | Http _ -> ()
  in
  let decide peer (pending : Buffer.t) =
    let s = Buffer.contents pending in
    if String.length s >= 4 then
      if String.sub s 0 4 = "GET " then begin
        let b = Buffer.create 256 in
        Buffer.add_string b s;
        peer.state <- Http b;
        true
      end
      else begin
        let id = Runtime.add_conn ~now:(now ()) rt in
        peer.state <- Proto id;
        Runtime.input ~now:(now ()) rt id s;
        true
      end
    else if peer.eof then begin
      (* Too short to ever decide: treat as protocol and let it die. *)
      let id = Runtime.add_conn ~now:(now ()) rt in
      peer.state <- Proto id;
      if s <> "" then Runtime.input ~now:(now ()) rt id s;
      true
    end
    else false
  in
  let http_step peer (b : Buffer.t) =
    let s = Buffer.contents b in
    (* Serve as soon as the request line is complete. *)
    match String.index_opt s '\n' with
    | None -> ()
    | Some i ->
        let line = String.trim (String.sub s 0 i) in
        let body, status =
          match String.split_on_char ' ' line with
          | "GET" :: path :: _ when path = "/metrics" ->
              (Runtime.metrics_page rt, "200 OK")
          | _ -> ("not found\n", "404 Not Found")
        in
        peer.outbuf <- peer.outbuf ^ http_response ~status ~body;
        peer.eof <- true
  in
  let read_peer peer =
    match Unix.read peer.fd buf 0 (Bytes.length buf) with
    | 0 -> peer.eof <- true
    | n -> (
        let data = Bytes.sub_string buf 0 n in
        match peer.state with
        | Proto id -> Runtime.input ~now:(now ()) rt id data
        | Http b ->
            Buffer.add_string b data;
            http_step peer b
        | Undecided pending ->
            Buffer.add_string pending data;
            if decide peer pending then begin
              match peer.state with
              | Http b -> http_step peer b
              | _ -> ()
            end)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> peer.eof <- true
  in
  let write_peer peer =
    pull_output peer;
    if peer.outbuf <> "" then begin
      match
        Unix.write_substring peer.fd peer.outbuf 0 (String.length peer.outbuf)
      with
      | n ->
          peer.outbuf <-
            String.sub peer.outbuf n (String.length peer.outbuf - n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ ->
          peer.outbuf <- "";
          peer.eof <- true
    end
  in
  let finished = ref false in
  while not !finished do
    if !stop_requested then begin
      Runtime.shutdown rt;
      Hashtbl.iter (fun _ p -> pull_output p; write_peer p) peers;
      Hashtbl.iter
        (fun _ p -> try Unix.close p.fd with Unix.Unix_error _ -> ())
        peers;
      Hashtbl.reset peers;
      finished := true
    end
    else begin
      Hashtbl.iter (fun _ p -> pull_output p) peers;
      let reads =
        listener
        :: Hashtbl.fold
             (fun fd p acc ->
               let wants =
                 (not p.eof)
                 &&
                 match p.state with
                 | Proto id -> Runtime.want_read rt id
                 | Undecided _ | Http _ -> true
               in
               if wants then fd :: acc else acc)
             peers []
      in
      let writes =
        Hashtbl.fold
          (fun fd p acc -> if p.outbuf <> "" then fd :: acc else acc)
          peers []
      in
      (match Unix.select reads writes [] 0.05 with
      | rs, ws, _ ->
          List.iter
            (fun fd ->
              if fd = listener then begin
                match Unix.accept listener with
                | client, _ ->
                    Unix.set_nonblock client;
                    Hashtbl.replace peers client
                      {
                        fd = client;
                        state = Undecided (Buffer.create 64);
                        outbuf = "";
                        eof = false;
                      }
                | exception
                    Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                    ()
              end
              else
                match Hashtbl.find_opt peers fd with
                | Some p -> read_peer p
                | None -> ())
            rs;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt peers fd with
              | Some p -> write_peer p
              | None -> ())
            ws
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      Runtime.tick ~now:(now ()) rt;
      (* Reap: flush what the runtime queued, then close connections
         that are done (runtime closing + drained, or peer EOF). *)
      let doomed =
        Hashtbl.fold
          (fun _ p acc ->
            pull_output p;
            let closing =
              match p.state with
              | Proto id -> Runtime.is_closing rt id
              | Undecided _ -> false
              | Http _ -> p.eof
            in
            if (closing || p.eof) && p.outbuf = "" then p :: acc else acc)
          peers []
      in
      List.iter close_peer doomed
    end
  done;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  config.log "ses serve: shut down\n"
