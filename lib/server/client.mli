(** A tiny scripted protocol client, backing [ses client --script]:
    connect (retrying until [timeout] — the server may still be
    binding), send every script line, then collect everything the
    server sends until it closes the connection. Scripts end with
    [QUIT] so the server's BYE-and-close bounds the read. *)

val run_script :
  host:string ->
  port:int ->
  timeout:float ->
  string list ->
  (string, string) result
(** The server's entire output, verbatim. [Error] on connect failure or
    when [timeout] seconds pass without the server closing. *)
