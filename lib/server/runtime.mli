(** The server core, free of sockets.

    Multiplexes {!Session}s over abstract per-connection byte buffers
    and owns all tenant state: per-tenant query sets (a sequential
    {!Ses_core.Multi} with runtime register/unregister), bounded ingest
    queues with SLOW/RESUME backpressure, idle timeouts and the
    [server.*] telemetry probes. The TCP layer is a thin adapter —
    push received bytes through {!input}, write {!take_output} to the
    wire, call {!tick} once per loop iteration — and the integration
    tests drive exactly the same entry points through in-memory pipes,
    deterministically (the [?now] parameters are the only clock).

    {b Ordering.} Commands take effect in arrival order per connection.
    Ingested rows are parsed and queued immediately but fed to the
    engines asynchronously ({!tick}, [drain_quota] events per tenant per
    call) — except that [REGISTER], [UNREGISTER], [METRICS] and [QUIT]
    drain the issuing tenant's queue first, so their observable effects
    (RESULT lines, STATS counts, final MATCH lines) deterministically
    reflect everything sent before them. *)

open Ses_event
open Ses_core

type overflow =
  | Drop_oldest  (** shed the oldest queued events, keep reading *)
  | Block  (** stop reading the tenant's connections until drained *)

type config = {
  schema : Schema.t;  (** row schema for EVENT/BATCH lines *)
  options : Engine.options;  (** engine options; [domains] forced to 1 *)
  queue_capacity : int;  (** per-tenant ingest queue bound *)
  overflow : overflow;
  idle_timeout : float;  (** seconds; 0 disables *)
  drain_quota : int;  (** events fed per tenant per {!tick} *)
  telemetry : Telemetry.t option;
}

val default_config : schema:Schema.t -> config
(** Capacity 1024, [Block] overflow, no idle timeout, quota 256, no
    telemetry. *)

type t

val create : config -> t

val add_conn : ?now:float -> t -> int
(** A new connection; returns its id. *)

val input : ?now:float -> t -> int -> string -> unit
(** Bytes received from connection [id], in any chunking. Replies and
    broadcasts are appended to the relevant output buffers. *)

val close_conn : t -> int -> unit
(** The peer is gone (EOF, reset, mid-BATCH kill): forget the
    connection. Tenant state persists — other connections of the same
    tenant are unaffected. *)

val take_output : t -> int -> string
(** Drain the pending output bytes for a connection (empty if none). *)

val pending_output : t -> int -> int

val want_read : t -> int -> bool
(** False when the connection should not be read: it is closing, or
    blocked by [Block]-mode backpressure. *)

val is_closing : t -> int -> bool
(** Close the transport once its pending output is flushed. *)

val tick : ?now:float -> t -> unit
(** One scheduler step: feeds up to [drain_quota] queued events per
    tenant (streaming MATCH lines to subscribers, sending RESUME when a
    queue falls under the low-water mark), samples queue-depth
    telemetry, and expires idle connections. *)

val connections : t -> int
val conn_ids : t -> int list

val metrics_page : t -> string
(** Prometheus text exposition of the telemetry recorder (the
    [/metrics] HTTP body). *)

val shutdown : t -> unit
(** Graceful stop: drains every tenant, closes the engines (flushing
    close-time emissions to subscribers), and marks every connection
    closing with a BYE. *)
