(** The `ses serve` wire protocol: newline-delimited commands (client →
    server) and replies (server → client).

    Grammar (one line each, LF-terminated on the wire; CR tolerated by
    the session layer, lines capped at {!max_line_length} bytes, NUL and
    bare CR/LF rejected):

    {v
    command  ::= "AUTH" token            — pick a tenant
               | "REGISTER" token text   — add a named query (SES text)
               | "UNREGISTER" token      — remove it, flushing results
               | "EVENT" text            — one CSV row
               | "BATCH" int             — the next n lines are CSV rows
               | "METRICS" | "SUBSCRIBE" | "PING" | "QUIT"
    reply    ::= "OK" [text] | "ERR" text | "PONG" | "BYE"
               | "SLOW" | "RESUME"       — backpressure signals
               | "MATCH" token token text    — tenant query substitution
               | "RESULT" token token text   — finalized, at UNREGISTER
               | "STATS" (key "=" value)*
    token    ::= [A-Za-z0-9_.-]{1,64}
    v}

    Parsing and rendering are pure and total: any byte sequence yields
    [Ok] or [Error], never an exception, and [render] output always
    parses back to the same value ([parse ∘ render = Ok] — the qcheck
    round-trip property). *)

val max_line_length : int
(** Longest accepted line, in bytes (4096). *)

val max_token_length : int

val max_batch : int
(** Largest accepted [BATCH] count. *)

type command =
  | Auth of string
  | Register of string * string  (** name, query text *)
  | Unregister of string
  | Event of string  (** one CSV row, verbatim *)
  | Batch of int  (** the next n lines are CSV rows *)
  | Metrics
  | Subscribe
  | Ping
  | Quit

type reply =
  | Ok_done of string option
  | Err of string
  | Pong
  | Bye
  | Slow
  | Resume
  | Match of { tenant : string; query : string; subst : string }
  | Result of { tenant : string; query : string; subst : string }
  | Stats of (string * string) list

val token_ok : string -> bool

val parse_command : string -> (command, string) result
(** One line, without its terminator. *)

val render_command : command -> string
(** Without the terminator. *)

val parse_reply : string -> (reply, string) result

val render_reply : reply -> string
(** Free-text fields are sanitized (NUL/CR/LF become spaces) so a
    rendered reply can never break line framing. *)
