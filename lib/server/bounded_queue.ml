(* A FIFO with a soft capacity. Pushes always succeed — the ingest path
   has already parsed the rows and must not lose protocol framing — so
   "bounded" is enforced by the caller's policy: either [drop_oldest]
   back down to capacity (drop-oldest overflow) or stop reading the
   offending connections until [drain] gets the depth back under the
   low-water mark (block overflow). *)

type 'a t = { q : 'a Queue.t; capacity : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
  { q = Queue.create (); capacity }

let capacity t = t.capacity
let length t = Queue.length t.q
let push t x = Queue.push x t.q
let over t = Queue.length t.q > t.capacity

let below_low_water t = Queue.length t.q <= t.capacity / 2

let drop_oldest t =
  let dropped = ref 0 in
  while Queue.length t.q > t.capacity do
    ignore (Queue.pop t.q);
    incr dropped
  done;
  !dropped

let drain t ~max =
  let n = min max (Queue.length t.q) in
  List.init n (fun _ -> Queue.pop t.q)
