open Ses_event
open Ses_pattern
open Ses_core
module D = Predicate.Domain

type result = {
  pattern : Pattern.t;
  diagnostics : Diagnostic.t list;
  dead : Automaton.transition list;
  original : Automaton.t;
  automaton : Automaton.t;
  filter_extras :
    (int * (Schema.Field.t * Predicate.op * Value.t) list) list;
  domains : (int * (Schema.Field.t * Predicate.Domain.t) list) list;
  pruned_transitions : int;
  pruned_states : int;
  never_matches : bool;
}

(* Domains are tabulated per (variable id, field). *)
module Key = struct
  type t = int * Schema.Field.t

  let compare (v, f) (v', f') =
    let c = Int.compare v v' in
    if c <> 0 then c else Schema.Field.compare f f'
end

module KMap = Map.Make (Key)

let render_cond p c =
  Format.asprintf "%a"
    (Condition.pp (Pattern.schema p) ~name_of:(Pattern.var_name p))
    c

let render_state p q =
  Format.asprintf "%a" (Varset.pp ~name_of:(Pattern.var_name p)) q

let conds_span conds =
  List.fold_left
    (fun acc c ->
      match (acc, Condition.span c) with
      | None, s -> s
      | s, None -> s
      | Some a, Some b -> Some (Span.union a b))
    None conds

let all_var_ids p =
  List.init (Pattern.n_vars p) Fun.id @ List.map snd (Pattern.negations p)

let field_ty p f = Schema.Field.type_of (Pattern.schema p) f

(* The [v.A φ C] conditions on a variable, grouped by field, keeping the
   condition records for spans and rendering. *)
let constant_conds_by_field p v =
  let consts =
    List.filter
      (fun (c : Condition.t) -> Condition.is_constant c)
      (Pattern.conditions_on p v)
  in
  List.fold_left
    (fun acc (c : Condition.t) ->
      let rec add = function
        | [] -> [ (c.Condition.field, [ c ]) ]
        | (f, cs) :: rest when Schema.Field.equal f c.Condition.field ->
            (f, cs @ [ c ]) :: rest
        | entry :: rest -> entry :: add rest
      in
      add acc)
    [] consts

let const_atom (c : Condition.t) =
  match c.rhs with
  | Condition.Const value -> (c.op, value)
  | Condition.Var _ -> invalid_arg "const_atom: not a constant condition"

(* θ as a directed edge: [orient c v f] is [Some (φ, u, g)] when [c] is
   (a flip of) [v.f φ u.g] with u ≠ v. *)
let orient (c : Condition.t) v f =
  match c.rhs with
  | Condition.Const _ -> None
  | Condition.Var (u, g) ->
      if c.var = v && Schema.Field.equal c.field f && u <> v then
        Some (c.op, u, g)
      else if u = v && Schema.Field.equal g f && c.var <> v then
        Some (Predicate.flip c.op, c.var, c.field)
      else None

(* All (v, f) pairs a set of conditions mentions. *)
let keys_of_conds conds =
  List.fold_left
    (fun acc (c : Condition.t) ->
      let add k acc = if List.exists (fun k' -> Key.compare k k' = 0) acc then acc else k :: acc in
      let acc = add (c.var, c.field) acc in
      match c.rhs with
      | Condition.Const _ -> acc
      | Condition.Var (u, g) -> add (u, g) acc)
    [] conds

(* ------------------------------------------------------------------ *)
(* Analysis state: three layers of per-(var, field) domains.           *)
(* ------------------------------------------------------------------ *)

type tables = {
  p : Pattern.t;
  alone : D.t KMap.t;
      (* narrowing of the variable's own constant conditions *)
  bind : D.t KMap.t;
      (* values any binding of the variable is guaranteed to satisfy at
         the moment it binds: constants plus conditions against strictly
         earlier sets (always attached to the binding transition) *)
  matched : D.t KMap.t;
      (* values consistent with appearing in a complete match:
         arc-consistency over all positive conditions *)
}

let dom table p (v, f) =
  match KMap.find_opt (v, f) table with
  | Some d -> d
  | None -> D.top (field_ty p f)

let build_alone p =
  List.fold_left
    (fun acc v ->
      List.fold_left
        (fun acc (f, cs) ->
          let d = D.of_atoms (field_ty p f) (List.map const_atom cs) in
          KMap.add (v, f) d acc)
        acc
        (constant_conds_by_field p v))
    KMap.empty (all_var_ids p)

(* Enforced-at-bind domains. Conditions against variables of strictly
   earlier sets appear in Θδ of every transition binding the variable
   (the prefix is always in scope), so they hold for every binding the
   engine ever makes — the recursion is well-founded because the
   partner's set index strictly decreases. *)
let build_bind p alone =
  let table = ref KMap.empty in
  let positive = Pattern.positive_conditions p in
  let rec bind_dom v f =
    match KMap.find_opt (v, f) !table with
    | Some d -> d
    | None ->
        let ty = field_ty p f in
        let d0 = dom alone p (v, f) in
        let d =
          List.fold_left
            (fun acc c ->
              match orient c v f with
              | Some (op, u, g)
                when (not (Pattern.is_negated p u))
                     && Pattern.set_of_var p u < Pattern.set_of_var p v ->
                  D.inter acc (D.propagate ty op (bind_dom u g))
              | Some _ | None -> acc)
            d0 positive
        in
        table := KMap.add (v, f) d !table;
        d
  in
  List.iter
    (fun v ->
      List.iter
        (fun (f, _) -> ignore (bind_dom v f))
        (constant_conds_by_field p v))
    (List.init (Pattern.n_vars p) Fun.id);
  (* also tabulate every field mentioned by some condition *)
  List.iter
    (fun (v, f) -> if not (Pattern.is_negated p v) then ignore (bind_dom v f))
    (keys_of_conds positive);
  !table

(* Arc-consistency over every positive condition, in both directions,
   for a bounded number of rounds (the domains only shrink, and cyclic
   strict inequalities would otherwise descend forever). An empty domain
   proves no complete match can bind the variable — used for diagnosis
   only, never for pruning. *)
let max_rounds = 16

let build_match p alone =
  let positive = Pattern.positive_conditions p in
  let keys =
    List.filter (fun (v, _) -> not (Pattern.is_negated p v)) (keys_of_conds positive)
  in
  let table =
    ref
      (List.fold_left
         (fun acc (v, f) -> KMap.add (v, f) (dom alone p (v, f)) acc)
         KMap.empty keys)
  in
  let get (v, f) = dom !table p (v, f) in
  let propagate_edge (c : Condition.t) =
    match c.rhs with
    | Condition.Const _ -> ()
    | Condition.Var (u, g) when u <> c.var ->
        let v = c.var and f = c.field in
        let dl = get (v, f) and dr = get (u, g) in
        table :=
          KMap.add (v, f)
            (D.inter dl (D.propagate (field_ty p f) c.op dr))
            !table;
        table :=
          KMap.add (u, g)
            (D.inter dr (D.propagate (field_ty p g) (Predicate.flip c.op) dl))
            !table
    | Condition.Var _ -> ()
  in
  for _ = 1 to max_rounds do
    List.iter propagate_edge positive
  done;
  !table

let build_tables p =
  let alone = build_alone p in
  {
    p;
    alone;
    bind = build_bind p alone;
    matched = build_match p alone;
  }

(* The per-variable field narrowings exported to the planner's access
   paths. A positive variable's candidates may be pruned by anything
   guaranteed at bind time ([bind]); a negated variable never binds, so
   only its own constant conditions ([alone]) constrain the events that
   can trigger it. Top entries carry no information and are skipped. *)
let domains_of t =
  let p = t.p in
  List.filter_map
    (fun v ->
      let table = if Pattern.is_negated p v then t.alone else t.bind in
      let fields =
        KMap.fold
          (fun (u, f) d acc ->
            if u = v && not (D.is_top d) then (f, d) :: acc else acc)
          table []
      in
      if fields = [] then None else Some (v, List.rev fields))
    (all_var_ids p)

(* ------------------------------------------------------------------ *)
(* Per-variable satisfiability and lints                               *)
(* ------------------------------------------------------------------ *)

let variable_diagnostics t =
  let p = t.p in
  List.concat_map
    (fun v ->
      let negated = Pattern.is_negated p v in
      List.filter_map
        (fun (f, cs) ->
          if D.is_empty (dom t.alone p (v, f)) then
            let rendered =
              String.concat ", " (List.map (render_cond p) cs)
            in
            let field = Schema.Field.name (Pattern.schema p) f in
            let span = conds_span cs in
            if negated then
              Some
                (Diagnostic.warning ?span "vacuous-negation"
                   (Printf.sprintf
                      "negation %s can never trigger: its conditions on %s \
                       are contradictory (%s)"
                      (Pattern.var_name p v) field rendered))
            else
              Some
                (Diagnostic.error ?span "unsatisfiable-variable"
                   (Printf.sprintf
                      "variable %s can never bind an event: its conditions \
                       on %s are contradictory (%s)"
                      (Pattern.var_name p v) field rendered))
          else None)
        (constant_conds_by_field p v))
    (all_var_ids p)

let contradiction_diagnostics t =
  let p = t.p in
  KMap.fold
    (fun (v, f) d acc ->
      if D.is_empty d && not (D.is_empty (dom t.alone p (v, f))) then begin
        let conds =
          List.filter
            (fun (c : Condition.t) ->
              (c.var = v && Schema.Field.equal c.field f)
              ||
              match c.rhs with
              | Condition.Var (u, g) -> u = v && Schema.Field.equal g f
              | Condition.Const _ -> false)
            (Pattern.positive_conditions p)
        in
        Diagnostic.error ?span:(conds_span conds) "contradictory-conditions"
          (Printf.sprintf
             "no value of %s.%s is consistent with all conditions relating \
              it to other variables"
             (Pattern.var_name p v)
             (Schema.Field.name (Pattern.schema p) f))
        :: acc
      end
      else acc)
    t.matched []

let lint_diagnostics p =
  let unconstrained =
    List.filter_map
      (fun v ->
        if Pattern.conditions_on p v <> [] then None
        else if Pattern.is_negated p v then
          Some
            (Diagnostic.warning "unconstrained-negation"
               (Printf.sprintf
                  "negation %s has no conditions: any event between its \
                   boundary sets kills the partial match"
                  (Pattern.var_name p v)))
        else if Pattern.is_group p v then
          Some
            (Diagnostic.warning "unconstrained-variable"
               (Printf.sprintf
                  "group variable %s has no conditions and binds every \
                   event in the window"
                  (Pattern.var_name p v)))
        else
          Some
            (Diagnostic.warning "unconstrained-variable"
               (Printf.sprintf
                  "variable %s has no conditions and matches every event"
                  (Pattern.var_name p v))))
      (all_var_ids p)
  in
  let subsumed =
    List.concat_map
      (fun v ->
        List.concat_map
          (fun (f, cs) ->
            match cs with
            | [] | [ _ ] -> []
            | cs ->
                let ty = field_ty p f in
                List.filter_map
                  (fun (c : Condition.t) ->
                    let others = List.filter (fun c' -> not (c' == c)) cs in
                    let d = D.of_atoms ty (List.map const_atom others) in
                    if (not (D.is_empty d)) && D.implies d (const_atom c)
                    then
                      Some
                        (Diagnostic.info ?span:(Condition.span c)
                           "subsumed-condition"
                           (Printf.sprintf
                              "condition %s is implied by the other \
                               conditions on %s.%s"
                              (render_cond p c)
                              (Pattern.var_name p v)
                              (Schema.Field.name (Pattern.schema p) f)))
                    else None)
                  cs)
          (constant_conds_by_field p v))
      (all_var_ids p)
  in
  (* A group variable nobody compares against: each extra event it
     absorbs is constrained only by its own constant conditions, which
     is usually an under-constrained join. *)
  let unreferenced_groups =
    List.filter_map
      (fun v ->
        if
          (not (Pattern.is_group p v))
          || Pattern.conditions_on p v = []
             (* already reported as unconstrained *)
          || List.exists
               (fun c ->
                 (not (Condition.is_constant c)) && Condition.mentions c v)
               (Pattern.conditions p)
        then None
        else
          Some
            (Diagnostic.warning "unreferenced-group"
               (Printf.sprintf
                  "group variable %s is not compared with any other \
                   variable: its repeated bindings are only constrained \
                   by constant conditions"
                  (Pattern.var_name p v))))
      (all_var_ids p)
  in
  unconstrained @ unreferenced_groups @ subsumed

(* ------------------------------------------------------------------ *)
(* Temporal satisfiability: difference constraints over timestamps     *)
(* ------------------------------------------------------------------ *)

(* Constraints are (a, b, w) meaning T_a − T_b ≤ w over nodes 0..n−1
   (the positive variables) plus a zero node n anchoring constants.
   Sources: explicit conditions on T (φ over two timestamps, or against
   an integer constant), the strict inter-set order the automaton
   enforces, and the window (any two match events lie within τ). A
   negative cycle (Bellman–Ford) proves the timing can never be met. *)
let temporal_diagnostics p =
  let n = Pattern.n_vars p in
  if n = 0 then []
  else begin
    let z = n in
    let edges = ref [] in
    let add a b w = edges := (a, b, w) :: !edges in
    let t_conds =
      List.filter
        (fun (c : Condition.t) ->
          Schema.Field.equal c.field Schema.Field.Timestamp
          &&
          match c.rhs with
          | Condition.Var (_, g) -> Schema.Field.equal g Schema.Field.Timestamp
          | Condition.Const (Value.Int _) -> true
          | Condition.Const _ -> false)
        (Pattern.positive_conditions p)
    in
    List.iter
      (fun (c : Condition.t) ->
        let v = c.var in
        match c.rhs with
        | Condition.Var (u, _) when u <> v -> (
            match c.op with
            | Predicate.Lt -> add v u (-1)
            | Predicate.Le -> add v u 0
            | Predicate.Gt -> add u v (-1)
            | Predicate.Ge -> add u v 0
            | Predicate.Eq ->
                add v u 0;
                add u v 0
            | Predicate.Neq -> ())
        | Condition.Var _ -> ()
        | Condition.Const (Value.Int c0) -> (
            match c.op with
            | Predicate.Lt -> add v z (c0 - 1)
            | Predicate.Le -> add v z c0
            | Predicate.Gt -> add z v (-(c0 + 1))
            | Predicate.Ge -> add z v (-c0)
            | Predicate.Eq ->
                add v z c0;
                add z v (-c0)
            | Predicate.Neq -> ())
        | Condition.Const _ -> ())
      t_conds;
    for i = 0 to Pattern.n_sets p - 2 do
      List.iter
        (fun u ->
          List.iter (fun w -> add u w (-1)) (Pattern.set_vars p (i + 1)))
        (Pattern.set_vars p i)
    done;
    let tau = Pattern.tau p in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b then add a b tau
      done
    done;
    let dist = Array.make (n + 1) 0 in
    let relax () =
      List.fold_left
        (fun changed (a, b, w) ->
          if dist.(b) + w < dist.(a) then begin
            dist.(a) <- dist.(b) + w;
            true
          end
          else changed)
        false !edges
    in
    for _ = 0 to n do
      ignore (relax ())
    done;
    if relax () then
      [
        Diagnostic.error
          ?span:(conds_span t_conds)
          "temporal-contradiction"
          (Printf.sprintf
             "the timing conditions and the window (WITHIN %d) admit no \
              assignment of timestamps"
             tau);
      ]
    else []
  end

(* ------------------------------------------------------------------ *)
(* Implied constants (equality chains) for the event filter            *)
(* ------------------------------------------------------------------ *)

(* forced(v, f) = c: every event the engine can ever bind to v satisfies
   f = c, enforced by conditions evaluated when v binds (or, for a
   negated variable, when its guard is checked). Base case: the
   variable's own constant conditions collapse the field to a point.
   Step: an equality v.f = u.g whose partner u is fully bound by the
   time v binds (strictly earlier set — such conditions sit on every
   transition binding v) transfers u's forced constant to v. Same-set
   equalities must NOT transfer: depending on the binding order inside
   the set, the condition may not be attached to the transition that
   binds v, so an event violating the constant can still fire it. *)
let forced_constants p alone =
  let forced = ref KMap.empty in
  List.iter
    (fun v ->
      List.iter
        (fun (f, _) ->
          match D.constant (dom alone p (v, f)) with
          | Some c -> forced := KMap.add (v, f) c !forced
          | None -> ())
        (constant_conds_by_field p v))
    (all_var_ids p);
  let eligible ~src ~dst =
    if Pattern.is_negated p dst then not (Pattern.is_negated p src)
      (* guard conditions are validated to reference only sets up to the
         boundary, so they are evaluable — and checked — at kill time *)
    else
      (not (Pattern.is_negated p src))
      && Pattern.set_of_var p src < Pattern.set_of_var p dst
  in
  let transfer (src, sf) (dst, df) changed =
    if eligible ~src ~dst then
      match (KMap.find_opt (src, sf) !forced, KMap.find_opt (dst, df) !forced) with
      | Some c, None ->
          forced := KMap.add (dst, df) c !forced;
          true
      | _ -> changed
    else changed
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (c : Condition.t) ->
        match (c.op, c.rhs) with
        | Predicate.Eq, Condition.Var (u, g) when u <> c.var ->
            changed := transfer (c.var, c.field) (u, g) !changed;
            changed := transfer (u, g) (c.var, c.field) !changed
        | _ -> ())
      (Pattern.conditions p)
  done;
  !forced

let filter_extras_of p alone forced =
  List.filter_map
    (fun v ->
      let atoms =
        KMap.fold
          (fun (v', f) c acc ->
            if v' = v && not (D.implies (dom alone p (v, f)) (Predicate.Eq, c))
            then (f, Predicate.Eq, c) :: acc
            else acc)
          forced []
      in
      if atoms = [] then None else Some (v, atoms))
    (all_var_ids p)

let implied_diagnostics p extras =
  List.concat_map
    (fun (v, atoms) ->
      List.map
        (fun (f, _, c) ->
          Diagnostic.info "implied-constant"
            (Printf.sprintf
               "inferred %s.%s = %s from equality chains; the event filter \
                uses it"
               (Pattern.var_name p v)
               (Schema.Field.name (Pattern.schema p) f)
               (Value.to_string c)))
        atoms)
    extras

(* ------------------------------------------------------------------ *)
(* Transition deadness                                                 *)
(* ------------------------------------------------------------------ *)

(* Sign sets: which of {<, =, >} an operator admits. Two conditions on
   the same left field against the same partner field admit a common
   outcome only if their sign sets intersect. *)
let signs = function
  | Predicate.Eq -> (false, true, false)
  | Predicate.Neq -> (true, false, true)
  | Predicate.Lt -> (true, false, false)
  | Predicate.Le -> (true, true, false)
  | Predicate.Gt -> (false, false, true)
  | Predicate.Ge -> (false, true, true)

(* Whether a transition can ever fire, using only facts that hold on
   every execution: the new event must satisfy the transition's constant
   atoms; its comparisons against bound partners must be compatible with
   the partners' enforced-at-bind domains; a pair of comparisons against
   the same partner field must admit a common sign; a reflexive strict
   comparison of a field with itself never holds; and a strictly-earlier
   timestamp than an already-bound event contradicts arrival order.
   Anything weaker would not be result-preserving: firing a transition
   consumes the instance, so removing one that can fire changes which
   instances survive. *)
type dead_verdict = {
  reason : string;
  const_only : bool;
      (* deadness already explained by the variable's own constant
         conditions being unsatisfiable (reported separately) *)
}

let transition_dead t (tr : Automaton.transition) =
  let p = t.p in
  let v = tr.var in
  let normalized =
    List.map
      (fun (c : Condition.t) ->
        match c.rhs with
        | Condition.Const value -> `Const (c, c.field, c.op, value)
        | Condition.Var (u, g) ->
            if c.var = v && u = v then `Refl (c, c.field, c.op, g)
            else if c.var = v then `Edge (c, c.field, c.op, u, g)
            else `Edge (c, g, Predicate.flip c.op, c.var, c.field))
      tr.conds
  in
  let fields =
    List.fold_left
      (fun acc item ->
        let f =
          match item with
          | `Const (_, f, _, _) -> f
          | `Refl (_, f, _, _) -> f
          | `Edge (_, f, _, _, _) -> f
        in
        if List.exists (Schema.Field.equal f) acc then acc else f :: acc)
      [] normalized
  in
  let dead_domain =
    List.find_map
      (fun f ->
        let ty = field_ty p f in
        let atoms =
          List.filter_map
            (function
              | `Const (_, f', op, value) when Schema.Field.equal f f' ->
                  Some (op, value)
              | _ -> None)
            normalized
        in
        let d0 = D.of_atoms ty atoms in
        if D.is_empty d0 then
          Some
            {
              reason =
                Printf.sprintf
                  "its constant conditions on %s.%s are unsatisfiable"
                  (Pattern.var_name p v)
                  (Schema.Field.name (Pattern.schema p) f);
              const_only = true;
            }
        else
          let d =
            List.fold_left
              (fun acc item ->
                match item with
                | `Edge (_, f', op, u, g)
                  when Schema.Field.equal f f' && Varset.mem u tr.src ->
                    D.inter acc (D.propagate ty op (dom t.bind p (u, g)))
                | _ -> acc)
              d0 normalized
          in
          if D.is_empty d then
            Some
              {
                reason =
                  Printf.sprintf
                    "no event can satisfy its conditions on %s.%s against \
                     the bound variables"
                    (Pattern.var_name p v)
                    (Schema.Field.name (Pattern.schema p) f);
                const_only = false;
              }
          else None)
      fields
  in
  let dead_signs () =
    let edges =
      List.filter_map
        (function `Edge (_, f, op, u, g) -> Some (f, op, u, g) | _ -> None)
        normalized
    in
    List.find_map
      (fun (f, _, u, g) ->
        let lt, eq, gt =
          List.fold_left
            (fun (lt, eq, gt) (f', op, u', g') ->
              if Schema.Field.equal f f' && u = u' && Schema.Field.equal g g'
              then
                let lt', eq', gt' = signs op in
                (lt && lt', eq && eq', gt && gt')
              else (lt, eq, gt))
            (true, true, true) edges
        in
        if (not lt) && (not eq) && not gt then
          Some
            {
              reason =
                Printf.sprintf
                  "its comparisons of %s.%s against %s.%s contradict each \
                   other"
                  (Pattern.var_name p v)
                  (Schema.Field.name (Pattern.schema p) f)
                  (Pattern.var_name p u)
                  (Schema.Field.name (Pattern.schema p) g);
              const_only = false;
            }
        else None)
      edges
  in
  let dead_time () =
    List.find_map
      (function
        | `Edge (c, f, Predicate.Lt, u, g)
          when Schema.Field.equal f Schema.Field.Timestamp
               && Schema.Field.equal g Schema.Field.Timestamp
               && Varset.mem u tr.src ->
            Some
              {
                reason =
                  Printf.sprintf
                    "%s requires an event older than already-bound %s, but \
                     events arrive in order"
                    (render_cond p c) (Pattern.var_name p u);
                const_only = false;
              }
        | _ -> None)
      normalized
  in
  let dead_refl () =
    List.find_map
      (function
        | `Refl (c, f, (Predicate.Lt | Predicate.Gt | Predicate.Neq), g)
          when Schema.Field.equal f g ->
            Some
              {
                reason =
                  Printf.sprintf
                    "%s compares an event's %s with itself and never holds"
                    (render_cond p c)
                    (Schema.Field.name (Pattern.schema p) f);
                const_only = false;
              }
        | _ -> None)
      normalized
  in
  match dead_domain with
  | Some v -> Some v
  | None -> (
      match dead_time () with
      | Some v -> Some v
      | None -> (
          match dead_refl () with
          | Some v -> Some v
          | None -> dead_signs ()))

(* ------------------------------------------------------------------ *)
(* Reachability on the pruned automaton                                *)
(* ------------------------------------------------------------------ *)

let coreachable automaton =
  let accept = Automaton.accept automaton in
  let transitions = Automaton.transitions automaton in
  let reached = Hashtbl.create 32 in
  Hashtbl.replace reached accept ();
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (tr : Automaton.transition) ->
        if Hashtbl.mem reached tr.tgt && not (Hashtbl.mem reached tr.src)
        then begin
          Hashtbl.replace reached tr.src ();
          changed := true
        end)
      transitions
  done;
  fun q -> Hashtbl.mem reached q

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let analyze automaton =
  let p = Automaton.pattern automaton in
  let t = build_tables p in
  let var_diags = variable_diagnostics t in
  let contra_diags = contradiction_diagnostics t in
  let temporal_diags = temporal_diagnostics p in
  let verdicts =
    List.filter_map
      (fun tr -> Option.map (fun d -> (tr, d)) (transition_dead t tr))
      (Automaton.transitions automaton)
  in
  let dead = List.map fst verdicts in
  let pruned = Automaton.prune automaton ~dead:(fun tr -> List.memq tr dead) in
  let dead_diags =
    List.filter_map
      (fun ((tr : Automaton.transition), verdict) ->
        if verdict.const_only then None
          (* already reported as unsatisfiable-variable *)
        else
          Some
            (Diagnostic.warning
               ?span:(conds_span tr.conds)
               "dead-transition"
               (Printf.sprintf
                  "transition binding %s in state %s can never fire: %s"
                  (Pattern.var_name p tr.var)
                  (render_state p tr.src)
                  verdict.reason)))
      verdicts
  in
  let start_reaches_accept =
    let reach = Hashtbl.create 32 in
    let rec visit q =
      if not (Hashtbl.mem reach q) then begin
        Hashtbl.replace reach q ();
        List.iter
          (fun (tr : Automaton.transition) -> visit tr.tgt)
          (Automaton.outgoing pruned q)
      end
    in
    visit (Automaton.start pruned);
    Hashtbl.mem reach (Automaton.accept pruned)
  in
  let unmatchable =
    if start_reaches_accept then []
    else if dead = [] then []
      (* with no dead transitions the automaton is intact: the start
         always reaches accept by construction *)
    else
      [
        Diagnostic.error "unmatchable-pattern"
          "no path from the start state to the accepting state survives \
           analysis: the pattern can never match";
      ]
  in
  let forced = forced_constants p t.alone in
  let filter_extras = filter_extras_of p t.alone forced in
  let implied_diags = implied_diagnostics p filter_extras in
  let lints = lint_diagnostics p in
  let never_matches =
    Diagnostic.has_errors (var_diags @ contra_diags @ temporal_diags @ unmatchable)
  in
  let deadend_diags =
    if never_matches then []
    else
      let co = coreachable pruned in
      List.filter_map
        (fun q ->
          if co q then None
          else
            Some
              (Diagnostic.warning "dead-end-state"
                 (Printf.sprintf
                    "state %s cannot reach the accepting state: instances \
                     entering it only consume events"
                    (render_state p q))))
        (Automaton.states pruned)
  in
  let diagnostics =
    Diagnostic.sort
      (var_diags @ contra_diags @ temporal_diags @ unmatchable @ dead_diags
     @ deadend_diags @ lints @ implied_diags)
  in
  {
    pattern = p;
    diagnostics;
    dead;
    original = automaton;
    automaton = pruned;
    filter_extras;
    domains = domains_of t;
    pruned_transitions =
      Automaton.n_transitions automaton - Automaton.n_transitions pruned;
    pruned_states = Automaton.n_states automaton - Automaton.n_states pruned;
    never_matches;
  }

let analyze_pattern p = analyze (Automaton.of_pattern p)

let analyze_query schema src =
  match Ses_lang.Parser.parse src with
  | Error e ->
      Error
        [
          Diagnostic.error
            ~span:(Span.point ~line:e.Ses_lang.Parser.line ~col:e.Ses_lang.Parser.col)
            "parse-error" e.Ses_lang.Parser.message;
        ]
  | Ok ast -> (
      match Ses_lang.Lang.compile schema ast with
      | Error msgs ->
          Error (List.map (Diagnostic.error "invalid-pattern") msgs)
      | Ok p -> Ok (analyze_pattern p))

let to_planner (r : result) =
  {
    Planner.automaton = r.automaton;
    filter_extras = r.filter_extras;
    domains = r.domains;
    pruned_transitions = r.pruned_transitions;
    pruned_states = r.pruned_states;
    never_matches = r.never_matches;
  }

let register () = Planner.set_analyzer (fun a -> to_planner (analyze a))

(* The canonical signature of what a planned execution of this result
   actually runs: the pruned automaton, which is what the shared
   multi-query plan merges on. Equal signatures mean structurally
   identical automata after pruning, even when the source queries
   differed only in dead conditions. *)
let signature (r : result) = Query_sig.full r.automaton
