(** Typed diagnostics produced by the static analyzer.

    The severity taxonomy:
    - [Error] — the pattern can never produce a match (unsatisfiable
      variable conditions, a global contradiction, temporal constraints
      that cannot fit the window, or no surviving path to the accepting
      state). Execution is still sound — it just finds nothing — so
      errors are reported, never enforced.
    - [Warning] — almost certainly a mistake, but the pattern may still
      match: vacuous negation guards, unconstrained variables, dead
      transitions, states that cannot reach the accepting state.
    - [Info] — facts worth knowing that require no action: subsumed
      conditions, constants the analyzer inferred for the event filter. *)

open Ses_pattern

type severity =
  | Error
  | Warning
  | Info

type t = {
  severity : severity;
  code : string;  (** stable kebab-case identifier, e.g. ["dead-transition"] *)
  message : string;
  span : Span.t option;  (** location in the query text, when known *)
}

val make : ?span:Span.t -> severity -> string -> string -> t

val error : ?span:Span.t -> string -> string -> t

val warning : ?span:Span.t -> string -> string -> t

val info : ?span:Span.t -> string -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare_severity : severity -> severity -> int
(** Errors before warnings before infos. *)

val sort : t list -> t list
(** Stable sort by severity: errors first, infos last. *)

val has_errors : t list -> bool

val count : severity -> t list -> int

val pp : Format.formatter -> t -> unit
(** ["line 2, columns 7-16: error[code]: message"]. *)

val to_string : t -> string

val json_string : string -> string
(** Quotes and escapes [s] as a JSON string literal — shared by every
    consumer that assembles JSON around {!to_json} objects. *)

val to_json : t -> string
(** One JSON object: severity, code, message and the span (when any). *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects. *)
