(** Static analysis of SES patterns and their automata.

    Five analyses over a pattern P = (⟨V1..Vm⟩, Θ, τ):

    - {e per-variable narrowing}: each variable's constant conditions
      [v.A φ C] are conjoined per field into a typed interval domain
      ({!Ses_event.Predicate.Domain}); an empty domain on a positive
      variable means the pattern can never match (error), on a negated
      variable that its guard never triggers (warning).
    - {e inter-variable contradiction}: arc-consistency over the
      [v.A φ v'.A'] edges, plus Bellman–Ford over the difference
      constraints the timestamps must satisfy (explicit conditions on T,
      the strict inter-set order, and the window τ).
    - {e automaton deadness}: transitions whose condition set can never
      be satisfied by any event — contradictory constants, comparisons
      incompatible with what bound partners are guaranteed to satisfy,
      opposite comparisons against the same partner field, reflexive
      strict comparisons, and timestamp conditions that contradict
      arrival order. Dead transitions are pruned ({!Ses_core.Automaton.prune});
      states that can no longer reach the accepting state are only
      {e reported} (removing them would change which instances are
      consumed).
    - {e implied constants}: equality chains whose partner is fully
      bound earlier ([p.ID = c.ID ∧ c.ID = 7] ⇒ [p.ID = 7]) yield extra
      constant constraints for the Sec. 4.5 event filter.
    - {e lints}: unconstrained variables and negations, subsumed
      conditions.

    The pruning and the inferred filter constants are result-preserving:
    running the pruned automaton with the strengthened filter produces
    the same matches {e and} the same raw emissions as the original
    (differentially tested). Registering the analyzer
    ({!register}) makes {!Ses_core.Planner.plan} apply both. *)

open Ses_event
open Ses_pattern
open Ses_core

type result = {
  pattern : Pattern.t;
  diagnostics : Diagnostic.t list;
      (** sorted: errors first, then warnings, then infos *)
  dead : Automaton.transition list;
      (** transitions that can never fire (physically from the input
          automaton — test membership with [memq]) *)
  original : Automaton.t;
      (** the automaton the analysis ran on — [dead] members are its
          transitions *)
  automaton : Automaton.t;
      (** the pruned automaton; physically the input when nothing was
          dead *)
  filter_extras :
    (int * (Schema.Field.t * Predicate.op * Value.t) list) list;
      (** implied constant constraints per variable id, for
          {!Ses_core.Event_filter.make} *)
  domains : (int * (Schema.Field.t * Predicate.Domain.t) list) list;
      (** per variable id, the non-top field narrowings guaranteed of
          every event the variable can involve: the enforced-at-bind
          domain for positive variables, the own-constant-conditions
          domain for negated ones — exported to
          {!Ses_core.Planner.choose_access} *)
  pruned_transitions : int;
  pruned_states : int;
  never_matches : bool;
      (** some diagnostic proves the pattern can produce no match *)
}

val analyze : Automaton.t -> result

val analyze_pattern : Pattern.t -> result
(** [analyze] on [Automaton.of_pattern p]. *)

val analyze_query :
  Schema.t -> string -> (result, Diagnostic.t list) Stdlib.result
(** Parses and compiles query text, then analyzes. Lexer/parser errors
    and pattern-validation errors (all of them — validation accumulates)
    are returned as error diagnostics. *)

val register : unit -> unit
(** Installs the analyzer as {!Ses_core.Planner.set_analyzer}, so
    planned executions prune dead transitions and adopt the inferred
    filter constants. *)

val signature : result -> string
(** Canonical signature ({!Ses_core.Query_sig.full}) of the {e pruned}
    automaton — the automaton a planned execution runs. Queries whose
    analyses share a signature are structurally identical after pruning,
    so {!Ses_core.Multi}'s shared plan can alias or prefix-merge them
    even when the written queries differ in analyzer-removable parts. *)
