open Ses_pattern

type severity =
  | Error
  | Warning
  | Info

type t = {
  severity : severity;
  code : string;
  message : string;
  span : Span.t option;
}

let make ?span severity code message = { severity; code; message; span }

let error ?span code message = make ?span Error code message

let warning ?span code message = make ?span Warning code message

let info ?span code message = make ?span Info code message

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_severity a b = Int.compare (rank a) (rank b)

let sort ds = List.stable_sort (fun a b -> compare_severity a.severity b.severity) ds

let has_errors ds = List.exists (fun d -> match d.severity with Error -> true | Warning | Info -> false) ds

let count sev ds =
  List.length (List.filter (fun d -> compare_severity d.severity sev = 0) ds)

let pp ppf d =
  (match d.span with
  | Some span -> Format.fprintf ppf "%s: " (Span.to_string span)
  | None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_label d.severity) d.code d.message

let to_string d = Format.asprintf "%a" pp d

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  let span_json =
    match d.span with
    | None -> ""
    | Some s ->
        Printf.sprintf
          ",\"span\":{\"start_line\":%d,\"start_col\":%d,\"end_line\":%d,\"end_col\":%d}"
          s.Span.start_line s.Span.start_col s.Span.end_line s.Span.end_col
  in
  Printf.sprintf "{\"severity\":%s,\"code\":%s,\"message\":%s%s}"
    (json_string (severity_label d.severity))
    (json_string d.code)
    (json_string d.message)
    span_json

let list_to_json ds =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"
