(** Synthetic chemotherapy event generator.

    The paper evaluates on a proprietary event relation from the Department
    of Haematology at the Hospital Meran-Merano (schema ID, L, V, U, T as
    in its Figure 1). This generator produces a relation with the same
    schema and the same observable structure: per-patient treatment cycles
    in which a block of medication administrations — Ciclofosfamide (C),
    Doxorubicina (D), Vincristine (V), Rituximab (R), L-asparaginase (L) —
    is given in randomized within-day order, Prednisone (P) is administered
    daily over several days, and blood-count measurements (B, WHO-Tox) are
    interleaved. Patients are staggered so that events of different
    patients overlap in time, which is what drives the window size W
    (Definition 5). *)

open Ses_event

type config = {
  seed : int64;
  patients : int;
  horizon_days : int;  (** length of the generated period *)
  cycle_days : int;  (** days between treatment cycles of one patient *)
  prednisone_days : int;  (** consecutive days with a P administration *)
  noise_per_day : float;
      (** expected number of non-treatment events (vitals, lab intake,
          administrative scans — labels "N1" … "N5") per patient per day;
          these are the events the Sec. 4.5 filter removes *)
}

val default : config
(** 30 patients, 84 days, 21-day cycles, 5 days of Prednisone, one noise
    event per patient-day — a few thousand events, a laptop-scale analogue
    of the paper's D1; scale [patients] up for denser relations. *)

val schema : Schema.t
(** (ID : int, L : string, V : float, U : string) plus the timestamp. *)

val labels : string list
(** ["C"; "D"; "V"; "R"; "L"; "P"; "B"] — medication labels in the order
    used by the growing patterns of Experiment 1, then Prednisone and the
    blood count (noise labels "N1" … "N5" not included). *)

val generate : config -> Relation.t
