(** Dataset scaling as in Sec. 5.1.

    The paper derives D2–D5 from the original relation D1 by replicating
    every event 2–5 times, which multiplies the window size W accordingly
    while keeping the time distribution fixed. *)

open Ses_event

val duplicate : int -> Relation.t -> Relation.t
(** [duplicate k r] contains every event of [r] exactly [k] times (equal
    payloads and timestamps, distinct sequence numbers). [k] ≥ 1. *)

val d_series : Relation.t -> int -> (string * Relation.t) list
(** [d_series r n] is [("D1", D1); …; ("Dn", Dn)] with D1 = [r] and
    Dk = [duplicate k r]. *)

val describe : Relation.t -> Time.duration -> string
(** One-line summary: cardinality, span, window size at the given τ. *)
