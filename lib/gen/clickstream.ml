open Ses_event

type config = {
  seed : int64;
  shoppers : int;
  window_clicks : int;
}

let default = { seed = 0xC11C5L; shoppers = 18; window_clicks = 8 }

let schema =
  Schema.make_exn
    [ ("USER", Value.Tint); ("PAGE", Value.Tstr); ("REF", Value.Tstr) ]

let noise_pages = [ "home"; "search"; "blog" ]

let referrers = [ "direct"; "search"; "ad"; "mail" ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let rows = ref [] in
  let ts = ref 0 in
  let emit user page =
    rows :=
      ( [| Value.Int user; Value.Str page; Value.Str (Prng.pick rng referrers) |],
        !ts )
      :: !rows
  in
  for shopper = 1 to cfg.shoppers do
    let user = shopper in
    (* The research phase: the three decision pages in any order,
       interleaved with other users' noise clicks. *)
    List.iter
      (fun page ->
        ts := !ts + 5 + Prng.int rng 60;
        emit user page;
        for _ = 1 to Prng.int rng (cfg.window_clicks / 3 + 1) do
          ts := !ts + 1 + Prng.int rng 10;
          emit (cfg.shoppers + 1 + Prng.int rng 20) (Prng.pick rng noise_pages)
        done)
      (Prng.shuffle rng [ "product"; "reviews"; "pricing" ]);
    (* Roughly two thirds convert; the rest wander off. *)
    if Prng.chance rng 0.66 then begin
      ts := !ts + 10 + Prng.int rng 120;
      emit user "checkout"
    end;
    ts := !ts + 120 + Prng.int rng 240
  done;
  Relation.of_rows_exn schema (List.rev !rows)
