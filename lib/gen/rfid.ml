open Ses_event

type config = {
  seed : int64;
  orders : int;
  items_per_order : int;
  stray_reads : int;
}

let default = { seed = 0x5F1DL; orders = 15; items_per_order = 3; stray_reads = 6 }

let schema =
  Schema.make_exn
    [ ("ORDER", Value.Tint); ("READER", Value.Tstr); ("ITEM", Value.Tstr) ]

let item_classes = [ "BOX"; "MANUAL"; "CABLE"; "PSU"; "TOOL" ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let rows = ref [] in
  let ts = ref 0 in
  let emit order reader item =
    rows :=
      ([| Value.Int order; Value.Str reader; Value.Str item |], !ts) :: !rows
  in
  for order = 1 to cfg.orders do
    let items =
      List.filteri (fun i _ -> i < cfg.items_per_order)
        (Prng.shuffle rng item_classes)
    in
    (* Packing scans in arbitrary order, interleaved with dock reads of
       other tags. *)
    List.iter
      (fun item ->
        ts := !ts + 1 + Prng.int rng 40;
        emit order "PACK" item;
        for _ = 1 to Prng.int rng (cfg.stray_reads / 2 + 1) do
          ts := !ts + 1 + Prng.int rng 10;
          emit (cfg.orders + 1 + Prng.int rng 5) "DOCK" (Prng.pick rng item_classes)
        done)
      items;
    ts := !ts + 30 + Prng.int rng 120;
    emit order "GATE" "PALLET"
  done;
  Relation.of_rows_exn schema (List.rev !rows)
