(** Deterministic pseudo-random number generator (splitmix64).

    Self-contained so that generated datasets are reproducible across OCaml
    versions (the stdlib [Random] algorithm changed in 5.x) — every
    experiment in the repository is seeded. *)

type t

val create : int64 -> t

val copy : t -> t

val next_int64 : t -> int64
(** The raw splitmix64 stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates. *)
