open Ses_event
open Ses_pattern

let schema =
  Schema.make_exn
    [ ("ID", Value.Tint); ("L", Value.Tstr); ("V", Value.Tint) ]

type relation_spec = {
  n_events : int;
  n_labels : int;
  n_ids : int;
  min_gap : int;
  max_gap : int;
  max_value : int;
}

let default_relation =
  { n_events = 40; n_labels = 3; n_ids = 2; min_gap = 0; max_gap = 4;
    max_value = 5 }

let label_of_index i = String.make 1 (Char.chr (Char.code 'a' + i))

let relation rng spec =
  let rows = ref [] in
  let ts = ref 0 in
  for _ = 1 to spec.n_events do
    ts := !ts + spec.min_gap + Prng.int rng (spec.max_gap - spec.min_gap + 1);
    let payload =
      [|
        Value.Int (1 + Prng.int rng spec.n_ids);
        Value.Str (label_of_index (Prng.int rng spec.n_labels));
        Value.Int (Prng.int rng (spec.max_value + 1));
      |]
    in
    rows := (payload, !ts) :: !rows
  done;
  Relation.of_rows_exn schema (List.rev !rows)

(* D1–D5-style scaling (the paper's Sec. 5 datasets duplicate a base
   relation to grow it): every generated base event is emitted [copies]
   times at its own timestamp, each copy shifted into a disjoint
   entity-id range, so the relation grows [copies]-fold while each id's
   sub-stream keeps the base spec's shape — dense simultaneous arrivals
   over many independent keys, the regime the batched and partitioned
   paths target. Millions of events in well under a second. *)
let duplicated_relation rng ~copies spec =
  if copies < 1 then invalid_arg "Random_workload.duplicated_relation: copies < 1";
  let rows = ref [] in
  let ts = ref 0 in
  for _ = 1 to spec.n_events do
    ts := !ts + spec.min_gap + Prng.int rng (spec.max_gap - spec.min_gap + 1);
    let id = 1 + Prng.int rng spec.n_ids in
    let label = Value.Str (label_of_index (Prng.int rng spec.n_labels)) in
    let v = Value.Int (Prng.int rng (spec.max_value + 1)) in
    for c = 0 to copies - 1 do
      rows := ([| Value.Int (id + (c * spec.n_ids)); label; v |], !ts) :: !rows
    done
  done;
  Relation.of_rows_exn schema (List.rev !rows)

type pattern_spec = {
  max_sets : int;
  max_vars_per_set : int;
  allow_groups : bool;
  p_label_cond : float;
  p_id_join : float;
  p_value_cond : float;
  n_labels : int;
  max_value : int;
  tau_min : int;
  tau_max : int;
}

let default_pattern =
  {
    max_sets = 2;
    max_vars_per_set = 2;
    allow_groups = true;
    p_label_cond = 0.9;
    p_id_join = 0.5;
    p_value_cond = 0.2;
    n_labels = 3;
    max_value = 5;
    tau_min = 5;
    tau_max = 20;
  }

let pattern rng spec =
  let n_sets = 1 + Prng.int rng spec.max_sets in
  let counter = ref 0 in
  (* At most one group variable: two or more unconstrained group variables
     in one set make the instance pool grow exponentially (Theorem 3 with
     k > 1), which is hostile to a property-test budget. *)
  let has_group = ref false in
  let fresh_var () =
    let name = Printf.sprintf "v%d" !counter in
    incr counter;
    if spec.allow_groups && (not !has_group) && Prng.chance rng 0.3 then begin
      has_group := true;
      Variable.group name
    end
    else Variable.singleton name
  in
  let sets =
    List.init n_sets (fun _ ->
        List.init (1 + Prng.int rng spec.max_vars_per_set) (fun _ ->
            fresh_var ()))
  in
  let all_vars = List.concat sets in
  let names = List.map (fun (v : Variable.t) -> v.name) all_vars in
  let label_conds =
    List.filter_map
      (fun name ->
        if Prng.chance rng spec.p_label_cond then
          Some
            (Pattern.Spec.const name "L" Predicate.Eq
               (Value.Str (label_of_index (Prng.int rng spec.n_labels))))
        else None)
      names
  in
  let value_conds =
    List.filter_map
      (fun name ->
        if Prng.chance rng spec.p_value_cond then
          let op = Prng.pick rng Predicate.[ Le; Ge; Neq ] in
          Some
            (Pattern.Spec.const name "V" op
               (Value.Int (Prng.int rng (spec.max_value + 1))))
        else None)
      names
  in
  let id_joins =
    (* A complete ID-equality graph: redundant transitively, but condition
       attachment is syntactic and the completeness is what makes the
       per-key partitioned evaluation applicable. *)
    if Prng.chance rng spec.p_id_join then
      List.concat_map
        (fun name ->
          List.filter_map
            (fun name' ->
              if name < name' then
                Some (Pattern.Spec.fields name "ID" Predicate.Eq name' "ID")
              else None)
            names)
        names
    else []
  in
  let tau = spec.tau_min + Prng.int rng (spec.tau_max - spec.tau_min + 1) in
  Pattern.make_exn ~schema ~sets
    ~where:(label_conds @ value_conds @ id_joins)
    ~within:tau
