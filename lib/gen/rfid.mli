(** Synthetic RFID tracking feed for the warehouse example.

    RFID-based tracking is one of the application domains the paper cites.
    The scenario: an order is complete when each of its items has been
    scanned at the packing station — in any order, because packers grab
    items as they come — followed by a pallet scan at the shipping gate,
    all within a shift window. *)

open Ses_event

type config = {
  seed : int64;
  orders : int;
  items_per_order : int;  (** distinct item classes per order *)
  stray_reads : int;  (** unrelated reads interleaved per order *)
}

val default : config

val schema : Schema.t
(** (ORDER : int, READER : string — "PACK" | "GATE" | "DOCK",
    ITEM : string) plus the timestamp (seconds). *)

val item_classes : string list

val generate : config -> Relation.t
