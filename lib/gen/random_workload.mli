(** Random relations and random SES patterns for property-based testing.

    The generators are deliberately small-domain (few labels, few entity
    ids, short gaps) so that random patterns actually match, exercise
    nondeterministic branching and group-variable loops, and keep
    brute-force cross-checks affordable. *)

open Ses_event
open Ses_pattern

val schema : Schema.t
(** (ID : int, L : string, V : int) plus the timestamp. *)

type relation_spec = {
  n_events : int;
  n_labels : int;  (** labels "a", "b", … *)
  n_ids : int;  (** entity ids 1 … n *)
  min_gap : int;
      (** minimal time-unit gap between consecutive events; 0 allows
          simultaneous events, 1 yields the strictly increasing timestamps
          the paper assumes (its Sec. 3.1 total order) *)
  max_gap : int;  (** maximal time-unit gap between consecutive events *)
  max_value : int;  (** V is uniform in [0, max_value] *)
}

val default_relation : relation_spec

val relation : Prng.t -> relation_spec -> Relation.t

val duplicated_relation : Prng.t -> copies:int -> relation_spec -> Relation.t
(** [spec.n_events * copies] events, D1–D5 style: each base event is
    duplicated [copies] times at its own timestamp with the entity id
    shifted into a per-copy disjoint range, so every id's sub-stream
    keeps the base spec's shape while the whole relation scales to
    millions of events. Raises [Invalid_argument] when [copies < 1]. *)

type pattern_spec = {
  max_sets : int;  (** ≥ 1 *)
  max_vars_per_set : int;  (** ≥ 1 *)
  allow_groups : bool;  (** at most one group variable is generated *)
  p_label_cond : float;  (** probability a variable gets an L = 'x' condition *)
  p_id_join : float;  (** probability of an ID-equality chain across variables *)
  p_value_cond : float;  (** probability of a V φ k condition *)
  n_labels : int;
  max_value : int;
  tau_min : int;
  tau_max : int;
}

val default_pattern : pattern_spec

val pattern : Prng.t -> pattern_spec -> Pattern.t
