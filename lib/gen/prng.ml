type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t l =
  match l with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
