open Ses_event

type config = {
  seed : int64;
  patients : int;
  horizon_days : int;
  cycle_days : int;
  prednisone_days : int;
  noise_per_day : float;
}

let default =
  {
    seed = 0xC4D0_11AL;
    patients = 30;
    horizon_days = 84;
    cycle_days = 21;
    prednisone_days = 5;
    noise_per_day = 1.0;
  }

let schema =
  Schema.make_exn
    [
      ("ID", Value.Tint);
      ("L", Value.Tstr);
      ("V", Value.Tfloat);
      ("U", Value.Tstr);
    ]

let labels = [ "C"; "D"; "V"; "R"; "L"; "P"; "B" ]

(* Typical dose ranges per medication; the absolute values only matter for
   conditions on V, which the paper's experiment patterns do not use, but a
   realistic relation should still carry them. *)
let dose rng = function
  | "C" -> (1500.0 +. Prng.float rng 400.0, "mg")
  | "D" -> (80.0 +. Prng.float rng 10.0, "mgl")
  | "V" -> (1.4 +. Prng.float rng 0.6, "mg")
  | "R" -> (375.0, "mg")
  | "L" -> (6000.0 +. Prng.float rng 4000.0, "IU")
  | "P" -> (80.0 +. Prng.float rng 40.0, "mg")
  | "B" -> (float_of_int (Prng.int rng 5), "WHO-Tox")
  | "N1" | "N2" | "N3" | "N4" | "N5" -> (Prng.float rng 100.0, "misc")
  | l -> invalid_arg ("Chemo.dose: unknown label " ^ l)

let generate cfg =
  let rng = Prng.create cfg.seed in
  let rows = ref [] in
  let emit pid label day hour =
    let v, u = dose rng label in
    let payload =
      [| Value.Int pid; Value.Str label; Value.Float v; Value.Str u |]
    in
    rows := (payload, Time.add (Time.days day) (Time.hours hour)) :: !rows
  in
  for pid = 1 to cfg.patients do
    (* Non-treatment noise: vitals, lab intake, administrative scans. *)
    for day = 0 to cfg.horizon_days - 1 do
      let n =
        let base = int_of_float cfg.noise_per_day in
        base
        + (if Prng.chance rng (cfg.noise_per_day -. float_of_int base) then 1
           else 0)
      in
      for _ = 1 to n do
        emit pid
          (Printf.sprintf "N%d" (1 + Prng.int rng 5))
          day (7 + Prng.int rng 12)
      done
    done;
    let start_day = (pid * 3) mod cfg.cycle_days in
    let rec cycles cycle_start =
      if cycle_start + cfg.prednisone_days + 3 <= cfg.horizon_days then begin
        (* Pre-treatment blood count. *)
        emit pid "B" cycle_start 8;
        (* The administration block, in randomized within-day order: this
           is the natural order variation that SES patterns are meant to
           ignore (Sec. 1). *)
        List.iteri
          (fun i label -> emit pid label cycle_start (9 + i))
          (Prng.shuffle rng [ "C"; "D"; "V"; "R"; "L" ]);
        (* Daily Prednisone. *)
        for d = 0 to cfg.prednisone_days - 1 do
          emit pid "P" (cycle_start + d) (14 + Prng.int rng 2)
        done;
        (* Post-treatment blood count, after the last P administration. *)
        emit pid "B" (cycle_start + cfg.prednisone_days + 2) 9;
        cycles (cycle_start + cfg.cycle_days)
      end
    in
    cycles start_day
  done;
  Relation.of_rows_exn schema (List.rev !rows)
