open Ses_event

type config = {
  seed : int64;
  baskets : int;
  noise_per_basket : int;
  symbols : string list;
}

let default =
  {
    seed = 0xF1AA5CE5L;
    baskets = 20;
    noise_per_basket = 12;
    symbols = [ "ACME"; "GLOBO"; "INITECH" ];
  }

let schema =
  Schema.make_exn
    [
      ("ACC", Value.Tint);
      ("KIND", Value.Tstr);
      ("SYM", Value.Tstr);
      ("PRICE", Value.Tfloat);
      ("QTY", Value.Tint);
    ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let rows = ref [] in
  let ts = ref 0 in
  let emit acc kind sym price qty =
    rows :=
      ( [|
          Value.Int acc;
          Value.Str kind;
          Value.Str sym;
          Value.Float price;
          Value.Int qty;
        |],
        !ts )
      :: !rows
  in
  let noise_symbols = [ "NOISE1"; "NOISE2"; "NOISE3" ] in
  for basket = 1 to cfg.baskets do
    let acc = 1 + ((basket - 1) mod 4) in
    (* Fills arrive in market order — any permutation of the basket. *)
    List.iter
      (fun sym ->
        ts := !ts + 1 + Prng.int rng 30;
        emit acc "BUY" sym (50.0 +. Prng.float rng 100.0) (100 * (1 + Prng.int rng 9));
        for _ = 1 to Prng.int rng (cfg.noise_per_basket / 3 + 1) do
          ts := !ts + 1 + Prng.int rng 5;
          emit
            (1 + Prng.int rng 4)
            "TICK" (Prng.pick rng noise_symbols)
            (10.0 +. Prng.float rng 20.0)
            0
        done)
      (Prng.shuffle rng cfg.symbols);
    ts := !ts + 1 + Prng.int rng 60;
    emit acc "HEDGE" "FUT" (980.0 +. Prng.float rng 40.0) 1;
    (* Keep executions of one account farther apart than the example
       pattern's 10-minute window, so baskets do not recombine. *)
    ts := !ts + 200 + Prng.int rng 100
  done;
  Relation.of_rows_exn schema (List.rev !rows)
