(** Synthetic click-stream feed for the e-commerce example.

    Click-stream analysis is one of the paper's motivating domains. The
    embedded behaviour: a purchase is preceded by a research phase in
    which the shopper compares the product, its reviews and its pricing
    page — in any order, because tabs — before checking out, all within a
    session window. *)

open Ses_event

type config = {
  seed : int64;
  shoppers : int;  (** converting sessions to embed *)
  window_clicks : int;  (** unrelated page views interleaved per session *)
}

val default : config

val schema : Schema.t
(** (USER : int, PAGE : string, REF : string — referrer kind) plus the
    timestamp (seconds). Research pages are "product", "reviews",
    "pricing"; the conversion is "checkout"; noise pages are "home",
    "search", "blog". *)

val generate : config -> Relation.t
