open Ses_event

let duplicate k r =
  if k < 1 then invalid_arg "Dataset.duplicate: k must be >= 1";
  let rows = ref [] in
  Relation.iter
    (fun e ->
      for _ = 1 to k do
        rows := (e.Event.payload, Event.ts e) :: !rows
      done)
    r;
  Relation.of_rows_exn (Relation.schema r) (List.rev !rows)

let d_series r n =
  List.init n (fun i ->
      let k = i + 1 in
      (Printf.sprintf "D%d" k, if k = 1 then r else duplicate k r))

let describe r tau =
  Printf.sprintf "%d events over %d time units, W(tau=%d) = %d"
    (Relation.cardinality r) (Relation.duration r) tau
    (Relation.window_size r tau)
