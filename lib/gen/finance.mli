(** Synthetic trade-execution feed for the finance example.

    The SQL change proposal that introduces PERMUTE motivates it with
    financial use cases; the example scenario here is basket trading: a
    basket order is filled by buying its constituent symbols in whatever
    order the market allows, and the position is hedged afterwards. An SES
    pattern recognizes completed baskets — the buy fills in any order,
    followed by the hedge, all within a time window. *)

open Ses_event

type config = {
  seed : int64;
  baskets : int;  (** number of basket executions to embed *)
  noise_per_basket : int;  (** unrelated ticks interleaved per basket *)
  symbols : string list;  (** basket constituents *)
}

val default : config

val schema : Schema.t
(** (ACC : int — account, KIND : string — "BUY" | "HEDGE" | "TICK",
    SYM : string, PRICE : float, QTY : int) plus the timestamp (seconds). *)

val generate : config -> Relation.t
