open Ses_event
open Ses_pattern

type mode =
  | No_filter
  | Paper
  | Strong

type t = {
  mode : mode;
  predicate : (Event.t -> bool) option;  (** [None] keeps everything *)
}

let satisfies e (field, op, c) = Predicate.eval op (Event.get e field) c

let satisfies_atom = satisfies

(* Negated variables are included: an event that can only trigger a
   negation guard still affects execution (it kills instances), so
   filtering it out would change results. *)
let per_var_constants ?(extra = []) p =
  let all_vars =
    List.init (Pattern.n_vars p) Fun.id
    @ List.map snd (Pattern.negations p)
  in
  List.map
    (fun v ->
      let inferred =
        List.concat_map (fun (v', atoms) -> if v' = v then atoms else []) extra
      in
      Pattern.constant_conditions_on p v @ inferred)
    all_vars

let strong_clauses ?extra p =
  let per_var = per_var_constants ?extra p in
  if List.for_all (fun cs -> cs <> []) per_var then Some per_var else None

let make ?extra p mode =
  let per_var = per_var_constants ?extra p in
  let all_constrained = List.for_all (fun cs -> cs <> []) per_var in
  let predicate =
    match mode with
    | No_filter -> None
    | Paper ->
        if not all_constrained then None
        else
          let atoms = List.concat per_var in
          Some (fun e -> List.exists (satisfies e) atoms)
    | Strong ->
        if not all_constrained then None
        else
          Some
            (fun e ->
              List.exists (fun cs -> List.for_all (satisfies e) cs) per_var)
  in
  { mode; predicate }

let mode t = t.mode

let effective t = Option.is_some t.predicate

let keep t e = match t.predicate with None -> true | Some f -> f e

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | No_filter -> "no filter"
    | Paper -> "paper filter"
    | Strong -> "strong filter")
