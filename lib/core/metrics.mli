(** Runtime counters collected during the execution of a SES automaton.

    [max_simultaneous_instances] is the |Ω| quantity measured throughout
    Sec. 5 (sampled after each input event has been fully consumed);
    the other counters support the ablation benchmarks. *)

type t

type snapshot = {
  events_seen : int;  (** events read from the input *)
  events_filtered : int;  (** dropped by the Sec. 4.5 filter *)
  instances_created : int;  (** fresh start instances + branches *)
  max_simultaneous_instances : int;  (** max |Ω| *)
  transitions_fired : int;
  instances_expired : int;  (** removed on τ violation *)
  instances_killed : int;  (** removed by a negation guard *)
  matches_emitted : int;  (** raw candidate substitutions *)
}

val create : unit -> t

val on_event : t -> unit

val on_events : t -> int -> unit
(** [on_event], [n] at a time — the batched feed counts a whole chunk
    with one store. *)

val on_filtered : t -> unit

val on_filtered_many : t -> int -> unit

val on_instance_created : t -> unit

val on_transition : t -> unit

val on_expired : t -> unit

val on_killed : t -> unit

val on_match : t -> unit

val sample_population : t -> int -> unit
(** Record the current |Ω|. Callers are expected to pass a maintained
    counter (the engine's instance store tracks its size), not to count
    the population on every event. *)

val snapshot : t -> snapshot

val merge : snapshot list -> snapshot
(** Combines the snapshots of executors that {e split} one input among
    themselves (per-key pools, domain shards): every counter is summed —
    each event, instance and transition is counted by exactly one
    shard — except [max_simultaneous_instances], which takes the max of
    the shard-local peaks. The peaks need not coincide in time, so the
    merged value is a deterministic {e lower bound} on the true global
    peak, which is in turn at most the {e sum} of the shard peaks:

    {v max_i peak_i  ≤  true global peak  ≤  Σ_i peak_i v}

    It is exact when a single shard dominates (and always exact for one
    shard). For the true cross-shard peak, attach a {!Telemetry} recorder:
    the sharded executors maintain a shared atomic [population.global]
    gauge whose peak is measured, not reconstructed — reports can then
    show both numbers. [merge [] = zero]. *)

val merge_replicas : snapshot list -> snapshot
(** Combines the snapshots of executors that each consume the {e whole}
    input (the Sec. 5.2 brute-force chains): [events_seen] and
    [events_filtered] take the max (they agree across replicas), the
    work-side counters sum, and the instance peaks sum — the paper's
    accounting for automata that run simultaneously. *)

val zero : snapshot

val to_json : snapshot -> string
(** One-line JSON object, for machine-readable benchmark output. *)

val pp : Format.formatter -> snapshot -> unit
