(* Probe state is deliberately dumb: records of mutable ints (spans,
   histograms, counters — single-writer) and Atomic.t cells (gauges —
   shared across domains). Everything clever (merging, formatting)
   happens at snapshot time, off the hot path. *)

let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)

module Span = struct
  type t = {
    clock : unit -> int;
    mutable count : int;
    mutable total_ns : int;
    mutable max_ns : int;
  }

  let make clock = { clock; count = 0; total_ns = 0; max_ns = 0 }

  let start s = s.clock ()

  let stop_elapsed s token =
    let d = s.clock () - token in
    let d = if d < 0 then 0 else d in
    s.count <- s.count + 1;
    s.total_ns <- s.total_ns + d;
    if d > s.max_ns then s.max_ns <- d;
    d

  let stop s token = ignore (stop_elapsed s token)

  let record s f =
    let token = start s in
    Fun.protect ~finally:(fun () -> stop s token) f

  let count s = s.count

  let total_ns s = s.total_ns

  let max_ns s = s.max_ns
end

module Histogram = struct
  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max_value : int;
  }

  let n_buckets = 32

  let make () =
    { buckets = Array.make n_buckets 0; count = 0; sum = 0; max_value = 0 }

  (* floor(log2 v) for v >= 2, clamped into the overflow bucket; values
     below 2 (including negatives) land in bucket 0. *)
  let bucket_of v =
    if v < 2 then 0
    else
      let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
      min (n_buckets - 1) (log2 0 v)

  let lower_bound i = if i <= 0 then 0 else 1 lsl i

  let observe h v =
    let b = h.buckets in
    b.(bucket_of v) <- b.(bucket_of v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + max 0 v;
    if v > h.max_value then h.max_value <- v

  let count h = h.count

  let sum h = h.sum

  let max_value h = h.max_value

  let bucket_counts h = Array.copy h.buckets
end

module Gauge = struct
  type t = {
    samples : int Atomic.t;
    level : int Atomic.t;
    last : int Atomic.t;
    peak : int Atomic.t;
  }

  let make () =
    {
      samples = Atomic.make 0;
      level = Atomic.make 0;
      last = Atomic.make 0;
      peak = Atomic.make 0;
    }

  let raise_peak g v =
    let rec go () =
      let p = Atomic.get g.peak in
      if v > p && not (Atomic.compare_and_set g.peak p v) then go ()
    in
    go ()

  let sample g v =
    Atomic.incr g.samples;
    Atomic.set g.last v;
    raise_peak g v

  let observe g v =
    Atomic.set g.level v;
    sample g v

  let add g d = sample g (Atomic.fetch_and_add g.level d + d)

  let samples g = Atomic.get g.samples

  let last g = Atomic.get g.last

  let peak g = Atomic.get g.peak
end

module Counter = struct
  type t = { mutable value : int }

  let make () = { value = 0 }

  let incr c = c.value <- c.value + 1

  let add c n = c.value <- c.value + n

  let value c = c.value
end

type t = {
  clock : unit -> int;
  spans : (string, Span.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  counters : (string, Counter.t) Hashtbl.t;
  mutable children : t list;
}

type sink = t option

let create ?(clock = default_clock) () =
  {
    clock;
    spans = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    counters = Hashtbl.create 16;
    children = [];
  }

let fork parent =
  let child = create ~clock:parent.clock () in
  parent.children <- child :: parent.children;
  child

let now t = t.clock ()

let find_or_create table name make =
  match Hashtbl.find_opt table name with
  | Some x -> x
  | None ->
      let x = make () in
      Hashtbl.replace table name x;
      x

let span t name = find_or_create t.spans name (fun () -> Span.make t.clock)

let histogram t name = find_or_create t.histograms name Histogram.make

let gauge t name = find_or_create t.gauges name Gauge.make

let counter t name = find_or_create t.counters name Counter.make

(* Profiles *)

type span_data = {
  span_count : int;
  span_total_ns : int;
  span_max_ns : int;
}

type histogram_data = {
  hist_count : int;
  hist_sum : int;
  hist_max : int;
  hist_buckets : int array;
}

type gauge_data = {
  gauge_samples : int;
  gauge_last : int;
  gauge_peak : int;
}

type profile = {
  spans : (string * span_data) list;
  histograms : (string * histogram_data) list;
  gauges : (string * gauge_data) list;
  counters : (string * int) list;
}

let trim_trailing_zeros a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  Array.sub a 0 !n

let merge_span a b =
  {
    span_count = a.span_count + b.span_count;
    span_total_ns = a.span_total_ns + b.span_total_ns;
    span_max_ns = max a.span_max_ns b.span_max_ns;
  }

let merge_hist a b =
  let n = max (Array.length a.hist_buckets) (Array.length b.hist_buckets) in
  let get arr i = if i < Array.length arr then arr.(i) else 0 in
  {
    hist_count = a.hist_count + b.hist_count;
    hist_sum = a.hist_sum + b.hist_sum;
    hist_max = max a.hist_max b.hist_max;
    hist_buckets =
      Array.init n (fun i -> get a.hist_buckets i + get b.hist_buckets i);
  }

(* Shard lasts have no global order, so the merged [last] takes the max
   — deterministic, and for level-like gauges a value the system held. *)
let merge_gauge a b =
  {
    gauge_samples = a.gauge_samples + b.gauge_samples;
    gauge_last = max a.gauge_last b.gauge_last;
    gauge_peak = max a.gauge_peak b.gauge_peak;
  }

let merge_assoc merge xs ys =
  let table = Hashtbl.create 16 in
  let absorb (name, v) =
    match Hashtbl.find_opt table name with
    | None -> Hashtbl.replace table name v
    | Some v' -> Hashtbl.replace table name (merge v' v)
  in
  List.iter absorb xs;
  List.iter absorb ys;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name v acc -> (name, v) :: acc) table [])

let empty_profile = { spans = []; histograms = []; gauges = []; counters = [] }

let merge_two a b =
  {
    spans = merge_assoc merge_span a.spans b.spans;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
    gauges = merge_assoc merge_gauge a.gauges b.gauges;
    counters = merge_assoc ( + ) a.counters b.counters;
  }

let merge_profiles = List.fold_left merge_two empty_profile

let own_profile (t : t) =
  let sorted fold table conv =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (fold (fun name v acc -> (name, conv v) :: acc) table [])
  in
  {
    spans =
      sorted Hashtbl.fold t.spans (fun (s : Span.t) ->
          {
            span_count = s.Span.count;
            span_total_ns = s.Span.total_ns;
            span_max_ns = s.Span.max_ns;
          });
    histograms =
      sorted Hashtbl.fold t.histograms (fun h ->
          {
            hist_count = Histogram.count h;
            hist_sum = Histogram.sum h;
            hist_max = Histogram.max_value h;
            hist_buckets = trim_trailing_zeros (Histogram.bucket_counts h);
          });
    gauges =
      sorted Hashtbl.fold t.gauges (fun g ->
          {
            gauge_samples = Gauge.samples g;
            gauge_last = Gauge.last g;
            gauge_peak = Gauge.peak g;
          });
    counters = sorted Hashtbl.fold t.counters Counter.value;
  }

let snapshot t =
  let rec collect t acc =
    List.fold_left (fun acc c -> collect c acc) (own_profile t :: acc)
      t.children
  in
  merge_profiles (collect t [])

(* JSON export: fixed section order, sorted names, one named probe per
   line — line-oriented filters (the cram tests) rely on this shape. *)

let to_json p =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  let section name entries render last =
    add (Printf.sprintf "  %S: {" name);
    (match entries with
    | [] -> add "}"
    | _ ->
        add "\n";
        List.iteri
          (fun i (n, v) ->
            add (Printf.sprintf "    %S: %s%s\n" n (render v)
                   (if i = List.length entries - 1 then "" else ",")))
          entries;
        add "  }");
    if not last then add ",";
    add "\n"
  in
  add "{\n";
  section "spans" p.spans
    (fun s ->
      Printf.sprintf "{\"count\":%d,\"total_ns\":%d,\"max_ns\":%d}" s.span_count
        s.span_total_ns s.span_max_ns)
    false;
  section "histograms" p.histograms
    (fun h ->
      Printf.sprintf "{\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":[%s]}"
        h.hist_count h.hist_sum h.hist_max
        (String.concat ","
           (List.map string_of_int (Array.to_list h.hist_buckets))))
    false;
  section "gauges" p.gauges
    (fun g ->
      Printf.sprintf "{\"samples\":%d,\"last\":%d,\"peak\":%d}" g.gauge_samples
        g.gauge_last g.gauge_peak)
    false;
  section "counters" p.counters string_of_int true;
  add "}";
  Buffer.contents buf

(* A minimal parser for the JSON subset [to_json] emits: objects,
   arrays, double-quoted strings (with backslash escapes for the quote
   and the backslash itself), and integers. Enough for a faithful
   round-trip without a JSON dependency. *)

type json = Obj of (string * json) list | Arr of json list | Int of int

exception Parse_error of string

let of_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let peek_is c = !pos < n && Char.equal text.[!pos] c in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some (('"' | '\\') as c) ->
              Buffer.add_char buf c;
              advance ()
          | _ -> fail "unsupported escape");
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek_is '-' then advance ();
    while
      !pos < n && match text.[!pos] with '0' .. '9' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected integer";
    match int_of_string_opt (String.sub text start (!pos - start)) with
    | Some i -> i
    | None -> fail "invalid integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek_is '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek_is ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some '"' -> fail "unexpected string value"
    | Some _ -> Int (parse_int ())
    | None -> fail "unexpected end of input"
  in
  let field obj name =
    match obj with
    | Obj fields -> (
        match List.assoc_opt name fields with
        | Some v -> v
        | None -> fail (Printf.sprintf "missing field %S" name))
    | _ -> fail "expected object"
  in
  let int_field obj name =
    match field obj name with Int i -> i | _ -> fail "expected integer"
  in
  let entries obj conv =
    match obj with
    | Obj fields -> List.map (fun (name, v) -> (name, conv v)) fields
    | _ -> fail "expected object"
  in
  try
    let root = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    Ok
      {
        spans =
          entries (field root "spans") (fun v ->
              {
                span_count = int_field v "count";
                span_total_ns = int_field v "total_ns";
                span_max_ns = int_field v "max_ns";
              });
        histograms =
          entries (field root "histograms") (fun v ->
              {
                hist_count = int_field v "count";
                hist_sum = int_field v "sum";
                hist_max = int_field v "max";
                hist_buckets =
                  (match field v "buckets" with
                  | Arr items ->
                      Array.of_list
                        (List.map
                           (function
                             | Int i -> i | _ -> fail "expected integer")
                           items)
                  | _ -> fail "expected array");
              });
        gauges =
          entries (field root "gauges") (fun v ->
              {
                gauge_samples = int_field v "samples";
                gauge_last = int_field v "last";
                gauge_peak = int_field v "peak";
              });
        counters =
          entries (field root "counters") (function
            | Int i -> i
            | _ -> fail "expected integer");
      }
  with Parse_error msg -> Error msg

(* Prometheus text exposition. Histogram buckets are cumulative with
   inclusive upper bounds (bucket i covers [2^i, 2^(i+1)-1]), the
   overflow bucket is +Inf. *)

let to_prometheus p =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# TYPE ses_span_count counter";
  List.iter
    (fun (name, s) -> line "ses_span_count{name=%S} %d" name s.span_count)
    p.spans;
  line "# TYPE ses_span_duration_ns_total counter";
  List.iter
    (fun (name, s) ->
      line "ses_span_duration_ns_total{name=%S} %d" name s.span_total_ns)
    p.spans;
  line "# TYPE ses_span_duration_ns_max gauge";
  List.iter
    (fun (name, s) ->
      line "ses_span_duration_ns_max{name=%S} %d" name s.span_max_ns)
    p.spans;
  line "# TYPE ses_histogram histogram";
  List.iter
    (fun (name, h) ->
      let cumulative = ref 0 in
      Array.iteri
        (fun i c ->
          cumulative := !cumulative + c;
          let le =
            if i = Histogram.n_buckets - 1 then "+Inf"
            else string_of_int ((Histogram.lower_bound (i + 1)) - 1)
          in
          line "ses_histogram_bucket{name=%S,le=%S} %d" name le !cumulative)
        h.hist_buckets;
      if Array.length h.hist_buckets < Histogram.n_buckets then
        line "ses_histogram_bucket{name=%S,le=\"+Inf\"} %d" name h.hist_count;
      line "ses_histogram_sum{name=%S} %d" name h.hist_sum;
      line "ses_histogram_count{name=%S} %d" name h.hist_count)
    p.histograms;
  line "# TYPE ses_gauge_peak gauge";
  List.iter
    (fun (name, g) -> line "ses_gauge_peak{name=%S} %d" name g.gauge_peak)
    p.gauges;
  line "# TYPE ses_gauge_last gauge";
  List.iter
    (fun (name, g) -> line "ses_gauge_last{name=%S} %d" name g.gauge_last)
    p.gauges;
  line "# TYPE ses_counter counter";
  List.iter (fun (name, c) -> line "ses_counter{name=%S} %d" name c) p.counters;
  Buffer.contents buf
