open Ses_event
open Ses_pattern

(* Canonical, collision-free serializations of an automaton's structure.
   Everything semantically relevant is written: τ, the per-set variables
   with their quantifier bounds, the negations with their conditions,
   and every state with its outgoing transitions and condition sets.
   Spans and variable names are omitted (they do not affect execution),
   string constants are length-prefixed so no value can fake a
   delimiter, and [Varset.t] states print as their bitmask. *)

let add_int b i = Buffer.add_string b (string_of_int i)

let add_field b = function
  | Schema.Field.Attr i ->
      Buffer.add_char b 'a';
      add_int b i
  | Schema.Field.Timestamp -> Buffer.add_char b 'T'

let add_value b v =
  match v with
  | Value.Int i ->
      Buffer.add_char b 'i';
      add_int b i
  | Value.Float f ->
      Buffer.add_char b 'f';
      Buffer.add_string b (string_of_float f)
  | Value.Str s ->
      Buffer.add_char b 's';
      add_int b (String.length s);
      Buffer.add_char b ':';
      Buffer.add_string b s

(* Skeleton mode widens every constant to a typed slot marker and
   records the value, turning "identical up to constants" into plain
   string equality on the skeleton. *)
type const_mode =
  | Concrete
  | Slot of Value.t list ref

let add_const mode b v =
  match mode with
  | Concrete -> add_value b v
  | Slot acc ->
      acc := v :: !acc;
      Buffer.add_char b '?';
      Buffer.add_string b
        (match Value.type_of v with
        | Value.Tint -> "i"
        | Value.Tfloat -> "f"
        | Value.Tstr -> "s")

(* [pv] renders a variable id: the identity for pattern variables, and a
   masking of the negated variable to a fixed marker inside negation
   conditions — prefix signatures must not depend on the id a negated
   variable happens to get. *)
let add_cond mode ~pv b (c : Condition.t) =
  Buffer.add_char b '[';
  pv b c.Condition.var;
  Buffer.add_char b '.';
  add_field b c.Condition.field;
  Buffer.add_string b (Predicate.to_string c.Condition.op);
  (match c.Condition.rhs with
  | Condition.Const v -> add_const mode b v
  | Condition.Var (v, f) ->
      Buffer.add_char b 'V';
      pv b v;
      Buffer.add_char b '.';
      add_field b f);
  Buffer.add_char b ']'

let ident_pv b v = add_int b v

let mask_pv nv b v = if v = nv then Buffer.add_char b 'N' else add_int b v

let add_sets b p ~n_sets =
  for s = 0 to n_sets - 1 do
    Buffer.add_char b '{';
    List.iter
      (fun v ->
        add_int b v;
        Buffer.add_char b ':';
        add_int b (Pattern.min_count p v);
        (match Pattern.max_count p v with
        | None -> Buffer.add_char b '*'
        | Some m -> add_int b m);
        Buffer.add_char b ';')
      (Pattern.set_vars p s);
    Buffer.add_char b '}'
  done

let add_negations mode b p ~max_boundary =
  List.iter
    (fun (boundary, nv) ->
      if boundary <= max_boundary then begin
        Buffer.add_char b '!';
        add_int b boundary;
        Buffer.add_char b ':';
        List.iter (add_cond mode ~pv:(mask_pv nv) b) (Pattern.conditions_on p nv);
        Buffer.add_char b ';'
      end)
    (Pattern.negations p)

let add_transitions mode b a ~keep =
  List.iter
    (fun q ->
      if keep q then begin
        Buffer.add_char b 'S';
        add_int b (q : Varset.t :> int);
        List.iter
          (fun (tr : Automaton.transition) ->
            if keep tr.Automaton.tgt then begin
              Buffer.add_char b 't';
              add_int b (tr.Automaton.var);
              Buffer.add_char b '>';
              add_int b (tr.Automaton.tgt : Varset.t :> int);
              List.iter (add_cond mode ~pv:ident_pv b) tr.Automaton.conds
            end)
          (Automaton.outgoing a q)
      end)
    (Automaton.states a)

let render mode a ~n_sets ~max_boundary ~keep =
  let p = Automaton.pattern a in
  let b = Buffer.create 256 in
  Buffer.add_char b 'w';
  add_int b (Automaton.tau a);
  add_sets b p ~n_sets;
  add_negations mode b p ~max_boundary;
  add_transitions mode b a ~keep;
  Buffer.contents b

let full a =
  let p = Automaton.pattern a in
  render Concrete a ~n_sets:(Pattern.n_sets p) ~max_boundary:max_int
    ~keep:(fun _ -> true)

let skeleton a =
  let p = Automaton.pattern a in
  let acc = ref [] in
  let s =
    render (Slot acc) a ~n_sets:(Pattern.n_sets p) ~max_boundary:max_int
      ~keep:(fun _ -> true)
  in
  (s, List.rev !acc)

let prefix_vars p depth =
  Varset.of_list
    (List.concat_map (Pattern.set_vars p) (List.init depth Fun.id))

(* The depth-d prefix signature covers exactly what a merged run of the
   first d sets evaluates: the prefix variables with their quantifiers,
   the negations killing strictly inside the prefix (boundary ≤ d − 2 —
   a boundary-(d−1) guard arms at the full prefix state, where queries
   may already diverge), and the transitions between prefix states.
   Queries sharing this string execute the prefix identically. *)
let prefix_signature a depth =
  let p = Automaton.pattern a in
  if depth < 1 || depth > Pattern.n_sets p then
    invalid_arg "Query_sig.prefix_signature: depth out of range";
  let pv = prefix_vars p depth in
  render Concrete a ~n_sets:depth ~max_boundary:(depth - 2)
    ~keep:(fun q -> Varset.subset q pv)
