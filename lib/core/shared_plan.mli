(** The shared evaluation pipeline behind {!Multi}.

    Given a set of named query registrations, builds one plan that
    exploits three kinds of cross-query overlap, none of which changes
    any query's matches or metrics:

    - {b predicate indexing} — the distinct constant atoms across all
      queries' strong-filter clauses are evaluated once per event by a
      {!Predicate_index}; each query (or merged-group member) learns
      whether the event can affect it without re-testing shared atoms.
      Queries whose plan gates on the strong filter are then fed only
      their routed subsequence.
    - {b alias collapsing} — registrations with byte-identical
      [(strategy, canonical automaton signature)] run one executor,
      with results fanned out to every registered name.
    - {b prefix merging} — eligible [`Plain] queries agreeing on a
      leading run of event sets (canonical signature of the
      analyzer-pruned automaton) evaluate that prefix once over a
      shared instance population carrying per-query owner bitmasks,
      forking into private per-query regions at the divergence point.

    Per-query raw emissions, matches and metrics are identical to
    running each registration independently — including raw emission
    order — except that τ-expiry emissions of a strongly-filtered
    member can surface a few events earlier (at the next event the
    shared group processes rather than the next event that member
    keeps); aggregates are unaffected. *)

open Ses_event

type reg = {
  r_name : string;
  r_automaton : Automaton.t;
  r_strategy : Executor.strategy;
}

type t

val create : options:Engine.options -> reg list -> t

val feed : t -> Event.t -> (string * Substitution.t list) list
(** Pushes one event (chronological order required) and returns, per
    registered name in registration order, the raw substitutions whose
    instances completed on it (names with none are omitted). *)

val feed_batch : t -> Event.t array -> (string * Substitution.t list) list
(** Pushes a chronological chunk; same contract as {!feed}, with
    completions aggregated over the chunk. *)

val close : t -> (string * Substitution.t list) list
(** End of input: flushes accepting instances. Subsequent [feed]s
    raise; subsequent [close]s return []. *)

val population : t -> int
(** Total live instances across all registered names — aliases count
    once per name, as independent execution would. *)

type query_result = {
  q_name : string;
  q_automaton : Automaton.t;
  q_alias : int;  (** registrations sharing this id share identical raw *)
  q_raw : Substitution.t list;
  q_metrics : Metrics.snapshot;
}

val results : t -> query_result list
(** Per-registration raw emissions and metrics, in registration order.
    Metrics are compensated so they equal independent execution's.
    Registrations removed by {!retire} are omitted. *)

val retire : t -> string -> query_result
(** Removes a registered query from a live plan and returns its outcome
    to date, with accepting instances flushed in the engine's close
    order. The remaining queries' future matches and metrics are as if
    the plan had been built without the retired one: its owner bit is
    cleared from every shared instance (sole-owner instances drop out),
    its predicate-index slots stop routing, and aliased siblings keep
    their executor. Exception: when an aliased sibling keeps the shared
    executor open, the retiree's raw lacks the close-time flush.
    Raises [Invalid_argument] on an unknown (or already retired) name,
    or if the plan is closed. *)

val events_fed : t -> int
(** Events pushed so far ([feed] counts 1, [feed_batch] its length). *)

(** {1 Introspection} *)

type unit_summary = {
  u_names : string list;  (** registered names sharing this executor *)
  u_kind : [ `Single | `Merged of int ];  (** [`Merged depth] *)
  u_routed : bool;  (** fed through the predicate index *)
  u_gated : bool;  (** non-routed events skipped entirely *)
}

type stats = {
  st_units : unit_summary list;
  st_merged_groups : int;
  st_merged_queries : int;
  st_aliased_queries : int;  (** registrations beyond their unit's first *)
  st_template_groups : string list list;
      (** registration names per template *)
  st_index_atoms : int;
  st_index_evaluated : int;
  st_index_saved : int;
  st_index_hit_rate : float;
}

val stats : t -> stats

val partition : options:Engine.options -> shards:int -> reg list -> reg list array
(** Splits registrations into [shards] groups for the domain-parallel
    mode, keeping every sharing unit (alias set, merged group) whole so
    each worker re-derives the same grouping on its subset. Greedy by
    member count; deterministic. *)
