open Ses_event
open Ses_pattern

(* The shared evaluation pipeline behind {!Multi}: one predicate index
   answering "which queries can this event affect", byte-identical
   registrations collapsed to one executor, and queries agreeing on a
   leading run of event sets evaluated over one shared instance
   population up to the state where their automata diverge.

   The merged-prefix evaluator below re-implements the {!Engine}'s
   per-event loop over instances carrying an owner bitmask. Its
   exactness rests on three facts, each a consequence of signature
   equality and of routing clauses being the per-variable constant
   conditions themselves:

   - a shared-prefix transition has identical conditions for every
     owner, so a fire implies the event satisfies that variable's
     constant clause — which makes the event relevant to {e every}
     owner. Contrapositive: an event not routed to some owner fires no
     shared transition and triggers no shared guard.
   - an event not routed to an owner fails all of that owner's clauses,
     so in that owner's private region it can neither fire a transition
     nor kill: only the τ-expiry sweep matters, which the group still
     runs.
   - an event routed to no owner, arriving while the group holds no
     instances, is a pure no-op for every member engine beyond
     fresh-instance accounting — compensated exactly when metrics are
     snapshot.

   Per-owner emissions and metrics are therefore identical to running
   each member engine independently — including raw emission order —
   except that τ-expiry emissions of a member whose filter is effective
   can surface a few events earlier (at the next event the {e group}
   processes rather than the next event that member keeps). *)

type atom = Schema.Field.t * Predicate.op * Value.t

(* ------------------------------------------------------------------ *)
(* Registration analysis: aliases, templates, merge groups.           *)
(* ------------------------------------------------------------------ *)

type reg = { r_name : string; r_automaton : Automaton.t; r_strategy : Executor.strategy }

(* An alias set: registrations whose (strategy, automaton signature)
   coincide, executed once. [a_effective] is the analyzer-pruned
   automaton when one is registered — what a merged member evaluates
   (result- and metrics-preserving: pruned transitions never fire). *)
type alias_unit = {
  a_regs : int list;  (* registration indices, ascending; head is rep *)
  a_automaton : Automaton.t;
  a_strategy : Executor.strategy;
  a_effective : Automaton.t;
}

type unit_spec =
  | S_single of alias_unit
  | S_merged of { depth : int; members : alias_unit list }

type grouping = {
  g_units : unit_spec list;  (* in first-registration order *)
  g_templates : int list list;
      (* registration indices grouped by constant-free skeleton;
         only groups of ≥ 2 *)
}

let merge_eligible options (u : alias_unit) =
  u.a_strategy = `Plain
  && options.Engine.filter_extras = []
  && options.Engine.store = Engine.Indexed
  && (match options.Engine.filter with
     | Event_filter.No_filter | Event_filter.Strong -> true
     | Event_filter.Paper -> false)

(* Owner bitmasks live in one OCaml int. *)
let max_owners = 62

let group_registrations ~options regs =
  let n = Array.length regs in
  (* Aliases: same strategy, same canonical signature. *)
  let alias_tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let units = ref [] and n_units = ref 0 in
  let unit_arr = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let r = regs.(i) in
    let key =
      Executor.strategy_name r.r_strategy ^ "\x00" ^ Query_sig.full r.r_automaton
    in
    match Hashtbl.find_opt alias_tbl key with
    | Some u -> Hashtbl.replace unit_arr u (i :: Hashtbl.find unit_arr u)
    | None ->
        Hashtbl.add alias_tbl key !n_units;
        Hashtbl.add unit_arr !n_units [ i ];
        units := (!n_units, r) :: !units;
        incr n_units
  done;
  let alias_units =
    List.rev_map
      (fun (u, r) ->
        let effective =
          match Planner.analyze r.r_automaton with
          | Some a -> a.Planner.automaton
          | None -> r.r_automaton
        in
        {
          a_regs = List.rev (Hashtbl.find unit_arr u);
          a_automaton = r.r_automaton;
          a_strategy = r.r_strategy;
          a_effective = effective;
        })
      !units
  in
  (* Prefix-merge groups over the eligible alias units: group by the
     depth-1 prefix signature of the effective automaton, then deepen
     the merge point while every member still agrees (and still has
     sets of its own beyond it — a member whose pattern is exactly the
     prefix stays as an "ender", accepted at the merge state). *)
  let eligible, rest =
    List.partition (fun u -> merge_eligible options u) alias_units
  in
  let by_prefix : (string, alias_unit list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun u ->
      let key = Query_sig.prefix_signature u.a_effective 1 in
      (match Hashtbl.find_opt by_prefix key with
      | None -> order := key :: !order
      | Some _ -> ());
      Hashtbl.replace by_prefix key
        (u :: Option.value ~default:[] (Hashtbl.find_opt by_prefix key)))
    eligible;
  let refine members =
    let n_sets u = Pattern.n_sets (Automaton.pattern u.a_effective) in
    let rec deepen d =
      if
        List.for_all (fun u -> n_sets u > d) members
        && (let sigs =
              List.map (fun u -> Query_sig.prefix_signature u.a_effective (d + 1)) members
            in
            match sigs with
            | [] -> false
            | s0 :: tl -> List.for_all (String.equal s0) tl)
      then deepen (d + 1)
      else d
    in
    deepen 1
  in
  let merged_specs = ref [] and single_specs = ref [] in
  List.iter
    (fun key ->
      let members = List.rev (Hashtbl.find by_prefix key) in
      if List.length members < 2 then
        List.iter (fun u -> single_specs := S_single u :: !single_specs) members
      else begin
        let depth = refine members in
        (* Chunk oversized groups so masks fit one int. *)
        let rec chunk = function
          | [] -> ()
          | ms ->
              let take = min max_owners (List.length ms) in
              let head = List.filteri (fun i _ -> i < take) ms in
              let tail = List.filteri (fun i _ -> i >= take) ms in
              if List.length head >= 2 then
                merged_specs := S_merged { depth; members = head } :: !merged_specs
              else
                List.iter
                  (fun u -> single_specs := S_single u :: !single_specs)
                  head;
              chunk tail
        in
        chunk members
      end)
    (List.rev !order);
  List.iter (fun u -> single_specs := S_single u :: !single_specs) rest;
  let specs = List.rev_append !merged_specs (List.rev !single_specs) in
  (* Order units by their first registration so feed results keep
     registration order regardless of grouping. *)
  let first_reg = function
    | S_single u -> List.hd u.a_regs
    | S_merged { members; _ } -> List.hd (List.hd members).a_regs
  in
  let specs =
    List.sort (fun a b -> Int.compare (first_reg a) (first_reg b)) specs
  in
  (* Templates: constant-free skeleton equality over all registrations. *)
  let by_skel : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let skel_order = ref [] in
  for i = 0 to n - 1 do
    let skel, _ = Query_sig.skeleton regs.(i).r_automaton in
    (match Hashtbl.find_opt by_skel skel with
    | None -> skel_order := skel :: !skel_order
    | Some _ -> ());
    Hashtbl.replace by_skel skel
      (i :: Option.value ~default:[] (Hashtbl.find_opt by_skel skel))
  done;
  let templates =
    List.filter_map
      (fun k ->
        match List.rev (Hashtbl.find by_skel k) with
        | _ :: _ :: _ as g -> Some g
        | _ -> None)
      (List.rev !skel_order)
  in
  { g_units = specs; g_templates = templates }

(* ------------------------------------------------------------------ *)
(* Routing clauses per alias unit.                                    *)
(* ------------------------------------------------------------------ *)

(* [None] = unroutable: fed (or woken) on every event. [Some (cl, gated)]:
   the unit only reacts to events satisfying some clause; [gated] when
   the member's own filter would drop exactly the non-routed events, so
   they need not be fed at all. *)
let routing options (u : alias_unit) : (atom list list * bool) option =
  match u.a_strategy with
  | `Plain -> (
      let p = Automaton.pattern u.a_automaton in
      match options.Engine.filter with
      | Event_filter.Paper -> None
      | Event_filter.No_filter | Event_filter.Strong -> (
          match
            Event_filter.strong_clauses ~extra:options.Engine.filter_extras p
          with
          | None -> None
          | Some clauses ->
              Some (clauses, options.Engine.filter = Event_filter.Strong)))
  | `Auto -> (
      let plan = Planner.plan u.a_automaton in
      match Planner.routing_clauses plan u.a_automaton with
      | None -> None
      | Some clauses -> Some (clauses, true))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Merged-prefix evaluator.                                           *)
(* ------------------------------------------------------------------ *)

type minst = {
  mid : int;
  mstate : Varset.t;
  mbindings : Substitution.binding list;
  mcounts : int array;
  mfirst_ts : Time.t;
  mutable mowners : int;
}

type mtrans = {
  mt_tr : Automaton.transition;
  mt_consts : Condition.t list;
  mt_vars : Condition.t list;
  mt_bucket : minst Instance_store.handle;
}

type mguard = {
  neg_var : int;
  mg_conds : Condition.t list;
  mg_consts : Condition.t list;
}

(* A state slot, used both for the shared prefix region (instances carry
   owner masks) and for each owner's private region. *)
type mslot = {
  ms_state : Varset.t;
  ms_accepting : bool;
  ms_prepared : mtrans list;
  ms_guards : mguard list;
  ms_bucket : minst Instance_store.handle;
  mutable ms_active : mtrans list;
  mutable ms_stamp : int;
}

type boundary = {
  b_tr : Automaton.transition;
  b_consts : Condition.t list;
  b_vars : Condition.t list;
  b_bucket : minst Instance_store.handle;
}

type owner = {
  mutable o_regs : int list;
  mutable o_retired : bool;
      (* all registrations gone: bit cleared from every mask, stores
         empty, never routed or processed again *)
  o_bit : int;
  o_index : int;  (* position in [g_owners]; [o_bit = 1 lsl o_index] *)
  o_automaton : Automaton.t;  (* the registered automaton, for finalize *)
  o_nvars : int;
  o_max_counts : int option array;
  o_minima : (int * int) list;
  o_is_ender : bool;
  o_gated : bool;
  o_boundaries : boundary list;
  o_merge_guards : mguard list;
  o_store : minst Instance_store.t;
  o_slots : mslot array;  (* private states, ascending *)
  o_m : Metrics.t;
  mutable o_pop : int;
  mutable o_routed : int;
  (* Expiries swept at events this (gated) owner's engine would have
     filtered: the engine only counts them at the owner's next kept
     event — and never, if none follows before close. *)
  mutable o_deferred_expired : int;
  mutable o_emissions : Substitution.t list;  (* newest first *)
  (* Collection cursor: suffix of [o_emissions] already handed out by
     feed/feed_batch/close; [o_marked] says the owner sits on its
     group's emitter list awaiting collection. *)
  mutable o_base : Substitution.t list;
  mutable o_marked : bool;
  (* per-event caches, keyed by the group stamp *)
  mutable ob_active : boundary list;
  mutable ob_stamp : int;
  mutable omg_may : bool;
  mutable omg_stamp : int;
}

type merged = {
  g_tau : Time.duration;
  g_depth : int;
  g_prefix_vars : int list;
  g_max_counts : int option array;  (* rep pattern; prefix vars only used *)
  g_store : minst Instance_store.t;
  g_slots : mslot array;  (* shared prefix states, ascending *)
  g_start : mslot;
  g_merge : mslot;
  g_owners : owner array;
  mutable g_all_gated : bool;
  g_fresh : minst;
  mutable g_emitters : owner list;  (* owners with uncollected emissions *)
  mutable g_stamp : int;
  mutable g_next_id : int;
  g_span : Telemetry.Span.t option;
  g_gauge : Telemetry.Gauge.t option;
}

let substitution_of inst = List.rev inst.mbindings

let m_is_fresh inst = inst.mbindings = []

let m_expired tau inst e =
  (not (m_is_fresh inst)) && Time.span (Event.ts e) inst.mfirst_ts > tau

let const_holds c e =
  Condition.holds_binding c ~var:c.Condition.var ~event:e (fun _ -> [])

let iter_owner_bits g mask f =
  Array.iter (fun o -> if o.o_bit land mask <> 0 then f o) g.g_owners

let make_mslot ~automaton ~store ~accept q =
  let prepared =
    List.map
      (fun (tr : Automaton.transition) ->
        let consts, vars = List.partition Condition.is_constant tr.conds in
        {
          mt_tr = tr;
          mt_consts = consts;
          mt_vars = vars;
          mt_bucket = Instance_store.handle store tr.tgt;
        })
      (Automaton.outgoing automaton q)
  in
  {
    ms_state = q;
    ms_accepting = Varset.equal q accept;
    ms_prepared = prepared;
    ms_guards = [];
    ms_bucket = Instance_store.handle store q;
    ms_active = [];
    ms_stamp = 0;
  }

let guards_of p =
  (* Negation guards exactly as the engine arms them: at the state
     binding all variables of sets 0 .. boundary. *)
  List.map
    (fun (b, nv) ->
      let prefix =
        Varset.of_list
          (List.concat_map (Pattern.set_vars p) (List.init (b + 1) Fun.id))
      in
      let conds = Pattern.conditions_on p nv in
      ( b,
        prefix,
        {
          neg_var = nv;
          mg_conds = conds;
          mg_consts = List.filter Condition.is_constant conds;
        } ))
    (Pattern.negations p)

let create_merged ~options ~telemetry_idx ~depth members =
  let rep = List.hd members in
  let rep_p = Automaton.pattern rep.a_effective in
  let prefix_full = Query_sig.prefix_vars rep_p depth in
  let prefix_vars = Varset.to_list prefix_full in
  let g_store =
    Instance_store.create ~ts_of:(fun i -> i.mfirst_ts) ~seq_of:(fun i -> i.mid) ()
  in
  (* Shared slots: states within the prefix, from the representative
     (signature equality makes every member's copy identical). Merge
     guards (boundary = depth−1) are per owner, so the rep's copy of
     them is not armed here. *)
  let shared_states =
    List.filter (fun q -> Varset.subset q prefix_full) (Automaton.states rep.a_effective)
  in
  let g_slots =
    Array.of_list
      (List.map
         (fun q ->
           let slot =
             make_mslot ~automaton:rep.a_effective ~store:g_store
               ~accept:(Varset.of_list []) q
           in
           (* Keep only transitions staying inside the prefix: at the
              merge state the outgoing advancing transitions belong to
              each owner. *)
           {
             slot with
             ms_prepared =
               List.filter
                 (fun mt -> Varset.subset mt.mt_tr.Automaton.tgt prefix_full)
                 slot.ms_prepared;
             ms_guards =
               List.filter_map
                 (fun (b, prefix, gd) ->
                   if b <= depth - 2 && Varset.equal prefix q then Some gd
                   else None)
                 (guards_of rep_p);
           })
         shared_states)
  in
  let find_slot q =
    Array.to_list g_slots |> List.find (fun s -> Varset.equal s.ms_state q)
  in
  let g_start = find_slot (Automaton.start rep.a_effective) in
  let g_merge = find_slot prefix_full in
  let max_nvars =
    List.fold_left
      (fun acc u -> max acc (Pattern.n_vars (Automaton.pattern u.a_effective)))
      0 members
  in
  let owners =
    Array.of_list
      (List.mapi
         (fun k u ->
           let a = u.a_effective in
           let p = Automaton.pattern a in
           let n_vars = Pattern.n_vars p in
           let store =
             Instance_store.create ~ts_of:(fun i -> i.mfirst_ts)
               ~seq_of:(fun i -> i.mid) ()
           in
           let is_ender = Pattern.n_sets p = depth in
           let accept = Automaton.accept a in
           let guards = guards_of p in
           let private_states =
             List.filter
               (fun q -> not (Varset.subset q prefix_full))
               (Automaton.states a)
           in
           let o_slots =
             Array.of_list
               (List.map
                  (fun q ->
                    let slot = make_mslot ~automaton:a ~store ~accept q in
                    {
                      slot with
                      ms_guards =
                        List.filter_map
                          (fun (b, prefix, gd) ->
                            if b >= depth && Varset.equal prefix q then Some gd
                            else None)
                          guards;
                    })
                  private_states)
           in
           let boundaries =
             List.filter_map
               (fun (tr : Automaton.transition) ->
                 if Varset.subset tr.tgt prefix_full then None
                 else
                   let consts, vars =
                     List.partition Condition.is_constant tr.conds
                   in
                   Some
                     {
                       b_tr = tr;
                       b_consts = consts;
                       b_vars = vars;
                       b_bucket = Instance_store.handle store tr.tgt;
                     })
               (Automaton.outgoing a prefix_full)
           in
           {
             o_regs = u.a_regs;
             o_retired = false;
             o_bit = 1 lsl k;
             o_index = k;
             o_automaton = u.a_automaton;
             o_nvars = n_vars;
             o_max_counts =
               Array.init n_vars (fun v -> Pattern.max_count p v);
             o_minima =
               List.filter_map
                 (fun v ->
                   let m = Pattern.min_count p v in
                   if m > 1 then Some (v, m) else None)
                 (List.init n_vars Fun.id);
             o_is_ender = is_ender;
             o_gated =
               options.Engine.filter = Event_filter.Strong
               && Event_filter.strong_clauses p <> None;
             o_boundaries = boundaries;
             o_merge_guards =
               List.filter_map
                 (fun (b, _, gd) -> if b = depth - 1 then Some gd else None)
                 guards;
             o_store = store;
             o_slots;
             o_m = Metrics.create ();
             o_pop = 0;
             o_routed = 0;
             o_deferred_expired = 0;
             o_emissions = [];
             o_base = [];
             o_marked = false;
             ob_active = [];
             ob_stamp = 0;
             omg_may = false;
             omg_stamp = 0;
           })
         members)
  in
  let span, gauge =
    match options.Engine.telemetry with
    | None -> (None, None)
    | Some tl ->
        let child = Telemetry.fork tl in
        let base = Printf.sprintf "multi.merge.%d" telemetry_idx in
        ( Some (Telemetry.span child (base ^ ".prefix")),
          Some (Telemetry.gauge child (base ^ ".population")) )
  in
  {
    g_tau = Automaton.tau rep.a_effective;
    g_depth = depth;
    g_prefix_vars = prefix_vars;
    g_max_counts =
      Array.init (Pattern.n_vars rep_p) (fun v -> Pattern.max_count rep_p v);
    g_store;
    g_slots;
    g_start;
    g_merge;
    g_owners = owners;
    g_all_gated = Array.for_all (fun o -> o.o_gated) owners;
    g_emitters = [];
    g_fresh =
      {
        mid = 0;
        mstate = Automaton.start rep.a_effective;
        mbindings = [];
        mcounts = Array.make (max max_nvars 1) 0;
        mfirst_ts = 0;
        mowners = (1 lsl Array.length owners) - 1;
      };
    g_stamp = 0;
    g_next_id = 1;
    g_span = span;
    g_gauge = gauge;
  }

let group_nonempty g =
  Instance_store.size g.g_store > 0
  || Array.exists (fun o -> Instance_store.size o.o_store > 0) g.g_owners

let next_id g =
  let id = g.g_next_id in
  g.g_next_id <- id + 1;
  id

let slot_candidates stamp slot e =
  if slot.ms_stamp = stamp then slot.ms_active
  else begin
    let trs =
      List.filter
        (fun mt -> List.for_all (fun c -> const_holds c e) mt.mt_consts)
        slot.ms_prepared
    in
    slot.ms_active <- trs;
    slot.ms_stamp <- stamp;
    trs
  end

let slot_guards_may_fire slot e =
  slot.ms_guards <> []
  && List.exists
       (fun gd -> List.for_all (fun c -> const_holds c e) gd.mg_consts)
       slot.ms_guards

let owner_boundaries g o e =
  if o.ob_stamp = g.g_stamp then o.ob_active
  else begin
    let bs =
      List.filter
        (fun b -> List.for_all (fun c -> const_holds c e) b.b_consts)
        o.o_boundaries
    in
    o.ob_active <- bs;
    o.ob_stamp <- g.g_stamp;
    bs
  end

let owner_merge_guards_may g o e =
  if o.omg_stamp = g.g_stamp then o.omg_may
  else begin
    let may =
      o.o_merge_guards <> []
      && List.exists
           (fun gd -> List.for_all (fun c -> const_holds c e) gd.mg_consts)
           o.o_merge_guards
    in
    o.omg_may <- may;
    o.omg_stamp <- g.g_stamp;
    may
  end

let minima_ok o counts = List.for_all (fun (v, m) -> counts.(v) >= m) o.o_minima

let emit_owner g o inst =
  let subst = substitution_of inst in
  o.o_emissions <- subst :: o.o_emissions;
  if not o.o_marked then begin
    o.o_marked <- true;
    g.g_emitters <- o :: g.g_emitters
  end;
  Metrics.on_match o.o_m

(* Shared-region expiry of one instance: count it for every owner, and
   emit it for enders (whose accepting state is the merge state). A
   gated owner not routed this event gets the count deferred to its next
   routed event — its own engine would sweep only then (and an expiry
   with no later kept event is never counted: [Engine.close] drops
   non-accepting instances silently). *)
let expire_shared g s inst rmask =
  iter_owner_bits g inst.mowners (fun o ->
      if o.o_gated && o.o_bit land rmask = 0 then
        o.o_deferred_expired <- o.o_deferred_expired + 1
      else Metrics.on_expired o.o_m;
      o.o_pop <- o.o_pop - 1;
      if
        o.o_is_ender
        && Varset.equal s.ms_state g.g_merge.ms_state
        && minima_ok o inst.mcounts
      then emit_owner g o inst)

(* ConsumeEvent over a shared instance: shared-prefix transitions fire
   uniformly for every owner in the mask; at the merge state each routed
   owner additionally tries its own boundary transitions (in the
   engine's transition order: prefix loops first, then the advancing
   transitions). Survival is per owner — the instance stays with the
   owners for which nothing fired and no guard killed. *)
let consume_shared g s inst e rmask ~fresh =
  let lookup v =
    List.rev
      (List.filter_map
         (fun (v', ev) -> if v' = v then Some ev else None)
         inst.mbindings)
  in
  let shared_fired = ref false in
  List.iter
    (fun mt ->
      let tr = mt.mt_tr in
      let below_max =
        match g.g_max_counts.(tr.var) with
        | None -> true
        | Some m ->
            (not (Varset.mem tr.var tr.src)) || inst.mcounts.(tr.var) < m
      in
      if
        below_max
        && List.for_all
             (fun c -> Condition.holds_binding c ~var:tr.var ~event:e lookup)
             mt.mt_vars
      then begin
        shared_fired := true;
        let counts = Array.copy inst.mcounts in
        counts.(tr.var) <- counts.(tr.var) + 1;
        let succ =
          {
            mid = next_id g;
            mstate = tr.tgt;
            mbindings = (tr.var, e) :: inst.mbindings;
            mcounts = counts;
            mfirst_ts = (if m_is_fresh inst then Event.ts e else inst.mfirst_ts);
            mowners = inst.mowners;
          }
        in
        Instance_store.stage_h mt.mt_bucket succ;
        iter_owner_bits g inst.mowners (fun o ->
            Metrics.on_transition o.o_m;
            Metrics.on_instance_created o.o_m;
            o.o_pop <- o.o_pop + 1)
      end)
    (slot_candidates g.g_stamp s e);
  let bfired = ref 0 in
  if (not fresh) && Varset.equal s.ms_state g.g_merge.ms_state then
    Array.iter
      (fun o ->
        if o.o_bit land inst.mowners <> 0 && o.o_bit land rmask <> 0 then
          List.iter
            (fun b ->
              let tr = b.b_tr in
              let below_max =
                match o.o_max_counts.(tr.var) with
                | None -> true
                | Some m ->
                    (not (Varset.mem tr.var tr.src))
                    || inst.mcounts.(tr.var) < m
              in
              if
                below_max
                && List.for_all
                     (fun c ->
                       Condition.holds_binding c ~var:tr.var ~event:e lookup)
                     b.b_vars
              then begin
                bfired := !bfired lor o.o_bit;
                let counts = Array.make o.o_nvars 0 in
                List.iter (fun v -> counts.(v) <- inst.mcounts.(v)) g.g_prefix_vars;
                counts.(tr.var) <- counts.(tr.var) + 1;
                let succ =
                  {
                    mid = next_id g;
                    mstate = tr.tgt;
                    mbindings = (tr.var, e) :: inst.mbindings;
                    mcounts = counts;
                    mfirst_ts = inst.mfirst_ts;
                    mowners = o.o_bit;
                  }
                in
                Instance_store.stage_h b.b_bucket succ;
                Metrics.on_transition o.o_m;
                Metrics.on_instance_created o.o_m;
                o.o_pop <- o.o_pop + 1
              end)
            (owner_boundaries g o e))
      g.g_owners;
  if fresh then false
  else if !shared_fired then begin
    iter_owner_bits g inst.mowners (fun o -> o.o_pop <- o.o_pop - 1);
    false
  end
  else begin
    let mask = ref (inst.mowners land lnot !bfired) in
    iter_owner_bits g (inst.mowners land !bfired) (fun o ->
        o.o_pop <- o.o_pop - 1);
    if !mask = 0 then false
    else begin
      let shared_killed =
        s.ms_guards <> []
        && List.exists
             (fun gd ->
               List.for_all
                 (fun c ->
                   Condition.holds_binding c ~var:gd.neg_var ~event:e lookup)
                 gd.mg_conds)
             s.ms_guards
      in
      if shared_killed then begin
        iter_owner_bits g !mask (fun o ->
            Metrics.on_killed o.o_m;
            o.o_pop <- o.o_pop - 1);
        false
      end
      else begin
        if Varset.equal s.ms_state g.g_merge.ms_state then
          Array.iter
            (fun o ->
              if
                o.o_bit land !mask <> 0
                && owner_merge_guards_may g o e
                && List.exists
                     (fun gd ->
                       List.for_all
                         (fun c ->
                           Condition.holds_binding c ~var:gd.neg_var ~event:e
                             lookup)
                         gd.mg_conds)
                     o.o_merge_guards
              then begin
                mask := !mask land lnot o.o_bit;
                Metrics.on_killed o.o_m;
                o.o_pop <- o.o_pop - 1
              end)
            g.g_owners;
        if !mask = 0 then false
        else begin
          inst.mowners <- !mask;
          true
        end
      end
    end
  end

(* An owner's private region: the engine loop verbatim, over its own
   store. [full] when the event is routed to the owner; otherwise only
   the expiry sweep can matter (see the module comment). *)
let consume_private g o slot inst e =
  let lookup v =
    List.rev
      (List.filter_map
         (fun (v', ev) -> if v' = v then Some ev else None)
         inst.mbindings)
  in
  let fired = ref false in
  List.iter
    (fun mt ->
      let tr = mt.mt_tr in
      let below_max =
        match o.o_max_counts.(tr.var) with
        | None -> true
        | Some m ->
            (not (Varset.mem tr.var tr.src)) || inst.mcounts.(tr.var) < m
      in
      if
        below_max
        && List.for_all
             (fun c -> Condition.holds_binding c ~var:tr.var ~event:e lookup)
             mt.mt_vars
      then begin
        fired := true;
        let counts = Array.copy inst.mcounts in
        counts.(tr.var) <- counts.(tr.var) + 1;
        let succ =
          {
            mid = next_id g;
            mstate = tr.tgt;
            mbindings = (tr.var, e) :: inst.mbindings;
            mcounts = counts;
            mfirst_ts = inst.mfirst_ts;
            mowners = o.o_bit;
          }
        in
        Instance_store.stage_h mt.mt_bucket succ;
        Metrics.on_transition o.o_m;
        Metrics.on_instance_created o.o_m;
        o.o_pop <- o.o_pop + 1
      end)
    (slot_candidates g.g_stamp slot e);
  if !fired then begin
    o.o_pop <- o.o_pop - 1;
    false
  end
  else begin
    let killed =
      slot.ms_guards <> []
      && List.exists
           (fun gd ->
             List.for_all
               (fun c ->
                 Condition.holds_binding c ~var:gd.neg_var ~event:e lookup)
               gd.mg_conds)
           slot.ms_guards
    in
    if killed then begin
      Metrics.on_killed o.o_m;
      o.o_pop <- o.o_pop - 1;
      false
    end
    else true
  end

let sweep_private_slot g o slot e ~routed =
  if Instance_store.handle_size slot.ms_bucket > 0 then
    List.iter
      (fun inst ->
        if o.o_gated && not routed then
          o.o_deferred_expired <- o.o_deferred_expired + 1
        else Metrics.on_expired o.o_m;
        o.o_pop <- o.o_pop - 1;
        if slot.ms_accepting && minima_ok o inst.mcounts then emit_owner g o inst)
      (Instance_store.pop_expired_h slot.ms_bucket
         ~expired:(fun i -> m_expired g.g_tau i e))

let process_private g o e ~full =
  Array.iter
    (fun slot ->
      sweep_private_slot g o slot e ~routed:full;
      if full && Instance_store.handle_size slot.ms_bucket > 0 then begin
        let scan =
          slot_candidates g.g_stamp slot e <> [] || slot_guards_may_fire slot e
        in
        if scan then begin
          let insts = Instance_store.take_all_h slot.ms_bucket in
          let stayed =
            List.filter (fun i -> consume_private g o slot i e) insts
          in
          Instance_store.put_back_h slot.ms_bucket stayed
        end
      end)
    o.o_slots

(* One event through the group. [rmask] is the owner bitmask the
   predicate index routed the event to. When every owner is gated, an
   event routed to none of them is skipped outright even with instances
   alive: each member engine drops it in its filter pass, so nothing can
   fire, kill or be sampled — and the τ-pops this postpones happen at
   the group's next processed event before anything is consumed, with
   the expiry counts deferred per owner anyway. A group with an ungated
   owner still processes every event while instances are alive (that
   owner's engine sweeps on every event it keeps, i.e. all of them). *)
let process_merged g e rmask =
  if rmask <> 0 || ((not g.g_all_gated) && group_nonempty g) then begin
    g.g_stamp <- g.g_stamp + 1;
    let tok =
      match g.g_span with None -> 0 | Some sp -> Telemetry.Span.start sp
    in
    (* This is the routed owners' "next kept event": expiries their
       engines would sweep now were already popped earlier — count. *)
    Array.iter
      (fun o ->
        if o.o_bit land rmask <> 0 && o.o_deferred_expired > 0 then begin
          for _ = 1 to o.o_deferred_expired do
            Metrics.on_expired o.o_m
          done;
          o.o_deferred_expired <- 0
        end)
      g.g_owners;
    ignore (consume_shared g g.g_start g.g_fresh e rmask ~fresh:true);
    Array.iter
      (fun s ->
        if Instance_store.handle_size s.ms_bucket > 0 then begin
          List.iter
            (fun inst -> expire_shared g s inst rmask)
            (Instance_store.pop_expired_h s.ms_bucket
               ~expired:(fun i -> m_expired g.g_tau i e));
          let is_merge = Varset.equal s.ms_state g.g_merge.ms_state in
          let scan =
            slot_candidates g.g_stamp s e <> []
            || slot_guards_may_fire s e
            || (is_merge
               && Array.exists
                    (fun o ->
                      o.o_bit land rmask <> 0
                      && (owner_boundaries g o e <> []
                         || owner_merge_guards_may g o e))
                    g.g_owners)
          in
          if scan && Instance_store.handle_size s.ms_bucket > 0 then begin
            let insts = Instance_store.take_all_h s.ms_bucket in
            let stayed =
              List.filter (fun i -> consume_shared g s i e rmask ~fresh:false) insts
            in
            Instance_store.put_back_h s.ms_bucket stayed
          end
        end)
      g.g_slots;
    Array.iter
      (fun o ->
        if o.o_bit land rmask <> 0 then process_private g o e ~full:true
        else if Instance_store.size o.o_store > 0 then
          process_private g o e ~full:false)
      g.g_owners;
    Instance_store.commit g.g_store;
    (* Only routed owners can have staged instances (a boundary fire or
       a private consume both require routing), so only they commit. *)
    Array.iter
      (fun o ->
        if o.o_bit land rmask <> 0 then begin
          Instance_store.commit o.o_store;
          Metrics.sample_population o.o_m o.o_pop
        end
        else if (not o.o_gated) && not o.o_retired then
          Metrics.sample_population o.o_m o.o_pop)
      g.g_owners;
    (match g.g_span with None -> () | Some sp -> Telemetry.Span.stop sp tok);
    match g.g_gauge with
    | None -> ()
    | Some gauge -> Telemetry.Gauge.observe gauge (Instance_store.size g.g_store)
  end

let close_merged g =
  (* Enders flush from the merge bucket, every other owner from its own
     accepting bucket — each in bucket order, as the engine does. *)
  let merge_insts = Instance_store.take_all_h g.g_merge.ms_bucket in
  Array.iter
    (fun o ->
      if o.o_is_ender then
        List.iter
          (fun inst ->
            if o.o_bit land inst.mowners <> 0 && minima_ok o inst.mcounts then
              emit_owner g o inst)
          merge_insts
      else
        Array.iter
          (fun slot ->
            if slot.ms_accepting then
              List.iter
                (fun inst ->
                  if minima_ok o inst.mcounts then emit_owner g o inst)
                (Instance_store.take_all_h slot.ms_bucket))
          o.o_slots;
      Instance_store.clear o.o_store;
      o.o_pop <- 0;
      (* Expiries with no later kept event are never counted. *)
      o.o_deferred_expired <- 0)
    g.g_owners;
  Instance_store.clear g.g_store

(* ------------------------------------------------------------------ *)
(* The plan: units, index, dispatch.                                  *)
(* ------------------------------------------------------------------ *)

type feed_mode =
  | Always  (** whole feed: unroutable, or a strategy that needs it *)
  | Routed of { gated : bool }
      (** only routed events (plus, when not gated, any event arriving
          while the unit holds instances — expiry timing) *)

type single = {
  mutable s_regs : int list;
  mutable s_retired : bool;  (* all registrations gone: executor closed *)
  s_automaton : Automaton.t;
  s_exec : Executor.packed;
  s_mode : feed_mode;
  mutable s_fed : int;
  mutable s_routed : int;
  mutable s_live : bool;  (* population > 0 after the last flush *)
  mutable s_buf : Event.t array;
  mutable s_buf_n : int;
  mutable s_pending_routed : bool;
}

type unit_state = U_single of single | U_merged of merged

type t = {
  sp_options : Engine.options;
  sp_regs : reg array;
  sp_units : unit_state array;
  sp_reg_unit : (int * int) array;
      (* registration -> (unit index, owner index or -1) *)
  sp_index : Predicate_index.t;
  sp_slot_target : (int * int) array;  (* index slot -> (unit, owner|-1) *)
  sp_rmask : int array;  (* per-unit scratch: owner bits routed this event *)
  sp_retired : bool array;  (* per registration: removed by {!retire} *)
  sp_templates : int list list;
  mutable sp_total_events : int;
  mutable sp_last_ts : Time.t option;
  mutable sp_closed : bool;
  sp_c_eval : Telemetry.Counter.t option;
  sp_c_saved : Telemetry.Counter.t option;
  mutable sp_synced_eval : int;
  mutable sp_synced_saved : int;
}

let create ~options regs_list =
  let regs = Array.of_list regs_list in
  let { g_units; g_templates } = group_registrations ~options regs in
  let n_merged = ref 0 in
  (* Each built unit carries the routing clauses its index slot should
     register ([None] for merged groups, whose owners register their own
     clauses below). *)
  let built =
    Array.of_list
      (List.map
         (function
           | S_single u ->
               let mode, clauses, exec_options =
                 match routing options u with
                 | None -> (Always, None, options)
                 | Some (cl, gated) ->
                     (* A gated [`Plain] unit receives only events its
                        strong filter keeps, so the executor's own filter
                        pass is redundant work: strip it. The metrics
                        difference is compensated at snapshot. *)
                     let opts =
                       if gated && u.a_strategy = `Plain then
                         { options with Engine.filter = Event_filter.No_filter }
                       else options
                     in
                     (Routed { gated }, Some cl, opts)
               in
               ( U_single
                   {
                     s_regs = u.a_regs;
                     s_retired = false;
                     s_automaton = u.a_automaton;
                     s_exec =
                       Executor.create ~options:exec_options u.a_strategy
                         u.a_automaton;
                     s_mode = mode;
                     s_fed = 0;
                     s_routed = 0;
                     s_live = false;
                     s_buf = [||];
                     s_buf_n = 0;
                     s_pending_routed = false;
                   },
                 clauses )
           | S_merged { depth; members } ->
               let idx = !n_merged in
               incr n_merged;
               ( U_merged
                   (create_merged ~options ~telemetry_idx:idx ~depth members),
                 None ))
         g_units)
  in
  let units = Array.map fst built in
  let reg_unit = Array.make (Array.length regs) (-1, -1) in
  Array.iteri
    (fun ui -> function
      | U_single s -> List.iter (fun r -> reg_unit.(r) <- (ui, -1)) s.s_regs
      | U_merged g ->
          Array.iteri
            (fun oi o -> List.iter (fun r -> reg_unit.(r) <- (ui, oi)) o.o_regs)
            g.g_owners)
    units;
  (* Index slots: one per routed single, one per merged owner. A merged
     owner without clauses registers [None] (woken on every event). *)
  let slots = ref [] and slot_targets = ref [] in
  let push clauses target =
    slots := clauses :: !slots;
    slot_targets := target :: !slot_targets
  in
  Array.iteri
    (fun ui (unit, clauses) ->
      match unit with
      | U_single s -> (
          match s.s_mode with
          | Always -> ()
          | Routed _ -> push clauses (ui, -1))
      | U_merged g ->
          Array.iteri
            (fun oi o ->
              push
                (Event_filter.strong_clauses (Automaton.pattern o.o_automaton))
                (ui, oi))
            g.g_owners)
    built;
  let index = Predicate_index.create (Array.of_list (List.rev !slots)) in
  let c_eval, c_saved =
    match options.Engine.telemetry with
    | None -> (None, None)
    | Some tl ->
        ( Some (Telemetry.counter tl "multi.shared.predicates_evaluated"),
          Some (Telemetry.counter tl "multi.shared.predicates_saved") )
  in
  {
    sp_options = options;
    sp_regs = regs;
    sp_units = units;
    sp_reg_unit = reg_unit;
    sp_index = index;
    sp_slot_target = Array.of_list (List.rev !slot_targets);
    sp_rmask = Array.make (Array.length units) 0;
    sp_retired = Array.make (Array.length regs) false;
    sp_templates = g_templates;
    sp_total_events = 0;
    sp_last_ts = None;
    sp_closed = false;
    sp_c_eval = c_eval;
    sp_c_saved = c_saved;
    sp_synced_eval = 0;
    sp_synced_saved = 0;
  }

let sync_counters t =
  match t.sp_c_eval with
  | None -> ()
  | Some c ->
      let e = Predicate_index.evaluated t.sp_index in
      Telemetry.Counter.add c (e - t.sp_synced_eval);
      t.sp_synced_eval <- e;
      let s = Predicate_index.saved t.sp_index in
      (match t.sp_c_saved with
      | Some cs -> Telemetry.Counter.add cs (s - t.sp_synced_saved)
      | None -> ());
      t.sp_synced_saved <- s

let out_of_order = "Multi.feed: events out of chronological order"

let check_ts t ts =
  (match t.sp_last_ts with
  | Some last when Time.( <. ) ts last -> invalid_arg out_of_order
  | Some _ | None -> ());
  t.sp_last_ts <- Some ts

(* Routing decision for one event: sets the pending flag on routed
   singles and accumulates owner bits in the per-unit [sp_rmask] scratch
   (consumed and reset by the caller when it processes each group). *)
let dispatch t e =
  List.iter
    (fun slot ->
      let ui, oi = t.sp_slot_target.(slot) in
      match t.sp_units.(ui) with
      | U_single s ->
          if not s.s_retired then begin
            s.s_pending_routed <- true;
            s.s_routed <- s.s_routed + 1
          end
      | U_merged g ->
          let o = g.g_owners.(oi) in
          if not o.o_retired then begin
            o.o_routed <- o.o_routed + 1;
            t.sp_rmask.(ui) <- t.sp_rmask.(ui) lor o.o_bit
          end)
    (Predicate_index.relevant t.sp_index e)

let take_rmask t ui =
  let m = t.sp_rmask.(ui) in
  t.sp_rmask.(ui) <- 0;
  m

let single_take s =
  match s.s_mode with
  | Always -> true
  | Routed { gated } ->
      if s.s_pending_routed then true else if gated then false else s.s_live

let single_feed_now s e =
  let take = (not s.s_retired) && single_take s in
  s.s_pending_routed <- false;
  if take then begin
    s.s_fed <- s.s_fed + 1;
    let completed = Executor.feed s.s_exec e in
    s.s_live <- Executor.population s.s_exec > 0;
    completed
  end
  else []

(* Emissions an owner accumulated since a previously captured list
   (physical suffix check — lists only grow by consing). *)
let emissions_since (o : owner) before =
  let rec delta acc l =
    if l == before then acc
    else match l with [] -> acc | x :: tl -> delta (x :: acc) tl
  in
  delta [] o.o_emissions

(* Drain the group's emitter list: every owner that emitted since its
   last collection hands out the delta past its cursor. Owners that
   stayed quiet cost nothing — the feed paths never scan [g_owners]. *)
let collect_merged g ui out =
  match g.g_emitters with
  | [] -> ()
  | emitters ->
      g.g_emitters <- [];
      List.iter
        (fun o ->
          o.o_marked <- false;
          (match emissions_since o o.o_base with
          | [] -> ()
          | completed -> out := (ui, o.o_index, completed) :: !out);
          o.o_base <- o.o_emissions)
        emitters

(* Completions, fanned out to every registered name in registration
   order (each name tagged with its own registration index, so alias
   fan-out interleaves correctly with other units' results). *)
let assemble t completions =
  let tagged =
    List.concat_map
      (fun (ui, oi, completed) ->
        let regs =
          match t.sp_units.(ui) with
          | U_single s -> s.s_regs
          | U_merged g -> g.g_owners.(oi).o_regs
        in
        List.map (fun r -> (r, (t.sp_regs.(r).r_name, completed))) regs)
      completions
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> Int.compare a b) tagged)

let feed t e =
  if t.sp_closed then invalid_arg "Multi.feed: query set is closed";
  check_ts t (Event.ts e);
  t.sp_total_events <- t.sp_total_events + 1;
  dispatch t e;
  let out = ref [] in
  Array.iteri
    (fun ui unit ->
      match unit with
      | U_single s -> (
          match single_feed_now s e with
          | [] -> ()
          | completed -> out := (ui, -1, completed) :: !out)
      | U_merged g ->
          process_merged g e (take_rmask t ui);
          collect_merged g ui out)
    t.sp_units;
  sync_counters t;
  assemble t (List.rev !out)

let flush_single s =
  if s.s_buf_n > 0 then begin
    let chunk = Array.sub s.s_buf 0 s.s_buf_n in
    s.s_buf_n <- 0;
    s.s_fed <- s.s_fed + Array.length chunk;
    let completed = Executor.feed_batch s.s_exec chunk in
    s.s_live <- Executor.population s.s_exec > 0;
    completed
  end
  else []

let feed_batch t events =
  if t.sp_closed then invalid_arg "Multi.feed_batch: query set is closed";
  let n = Array.length events in
  if n = 0 then []
  else begin
    for i = 0 to n - 1 do
      check_ts t (Event.ts events.(i))
    done;
    t.sp_total_events <- t.sp_total_events + n;
    (* Size the singles' sub-batch buffers; merged emissions drain
       through the group emitter lists after the chunk. *)
    Array.iter
      (function
        | U_single s ->
            if Array.length s.s_buf < n then s.s_buf <- Array.make n events.(0);
            s.s_buf_n <- 0
        | U_merged _ -> ())
      t.sp_units;
    Array.iter
      (fun e ->
        dispatch t e;
        Array.iteri
          (fun ui unit ->
            match unit with
            | U_single s ->
                if (not s.s_retired) && single_take s then begin
                  s.s_buf.(s.s_buf_n) <- e;
                  s.s_buf_n <- s.s_buf_n + 1;
                  (* a routed event may create instances: from here the
                     unit must see the rest of the chunk when not gated *)
                  if s.s_pending_routed then s.s_live <- true
                end;
                s.s_pending_routed <- false
            | U_merged g -> process_merged g e (take_rmask t ui))
          t.sp_units)
      events;
    let out = ref [] in
    Array.iteri
      (fun ui unit ->
        match unit with
        | U_single s -> (
            match flush_single s with
            | [] -> ()
            | completed -> out := (ui, -1, completed) :: !out)
        | U_merged g -> collect_merged g ui out)
      t.sp_units;
    sync_counters t;
    assemble t (List.rev !out)
  end

let close t =
  if t.sp_closed then []
  else begin
    t.sp_closed <- true;
    let out = ref [] in
    Array.iteri
      (fun ui unit ->
        match unit with
        | U_single s -> (
            if not s.s_retired then
              match Executor.close s.s_exec with
              | [] -> ()
              | flushed -> out := (ui, -1, flushed) :: !out)
        | U_merged g ->
            close_merged g;
            collect_merged g ui out)
      t.sp_units;
    sync_counters t;
    assemble t (List.rev !out)
  end

(* ------------------------------------------------------------------ *)
(* Owner-mask retirement: remove one registration mid-stream.         *)
(* ------------------------------------------------------------------ *)

(* Retiring the last registration of a merged owner ends that member's
   run as [Engine.close] would: flush its accepting instances (enders
   accept at the merge state, everyone else in a private slot), then
   clear its bit from every shared instance — instances owned by nobody
   else die with it — and empty its private store. The surviving
   owners' masks, stores and metrics are untouched, so their behaviour
   from here on equals a plan built without the retired member. *)
let retire_owner g (o : owner) =
  (* Close-order flush: merge bucket first (enders), then the private
     accepting buckets in slot order — matching [close_merged]. *)
  let flushed = ref [] in
  let emit inst =
    flushed := substitution_of inst :: !flushed;
    Metrics.on_match o.o_m
  in
  if o.o_is_ender then begin
    let insts = Instance_store.take_all_h g.g_merge.ms_bucket in
    List.iter
      (fun inst ->
        if o.o_bit land inst.mowners <> 0 && minima_ok o inst.mcounts then
          emit inst)
      insts;
    Instance_store.put_back_h g.g_merge.ms_bucket insts
  end;
  Array.iter
    (fun slot ->
      if slot.ms_accepting then
        List.iter
          (fun inst -> if minima_ok o inst.mcounts then emit inst)
          (Instance_store.take_all_h slot.ms_bucket))
    o.o_slots;
  (* Clear the owner's bit from the shared region; sole-owner instances
     drop out entirely. *)
  Array.iter
    (fun slot ->
      if Instance_store.handle_size slot.ms_bucket > 0 then begin
        let insts = Instance_store.take_all_h slot.ms_bucket in
        let kept =
          List.filter
            (fun (i : minst) ->
              let m = i.mowners land lnot o.o_bit in
              if m = 0 then false
              else begin
                i.mowners <- m;
                true
              end)
            insts
        in
        Instance_store.put_back_h slot.ms_bucket kept
      end)
    g.g_slots;
  Instance_store.clear o.o_store;
  o.o_pop <- 0;
  o.o_deferred_expired <- 0;
  o.o_retired <- true;
  o.o_base <- o.o_emissions;
  g.g_fresh.mowners <- g.g_fresh.mowners land lnot o.o_bit;
  g.g_all_gated <-
    Array.for_all (fun o -> o.o_retired || o.o_gated) g.g_owners;
  (* Full raw history, oldest first: the live emissions then the flush. *)
  List.rev (!flushed @ o.o_emissions)

let events_fed t = t.sp_total_events

(* ------------------------------------------------------------------ *)
(* Read-side: per-registration results.                               *)
(* ------------------------------------------------------------------ *)

let adjust_metrics t ~mode ~fed snap =
  let n = t.sp_total_events in
  match mode with
  | Always -> snap
  | Routed { gated } ->
      if gated then
        {
          snap with
          Metrics.events_seen = n;
          events_filtered = snap.Metrics.events_filtered + (n - fed);
        }
      else
        {
          snap with
          Metrics.events_seen = n;
          instances_created = snap.Metrics.instances_created + (n - fed);
        }

let owner_metrics t (o : owner) =
  let n = t.sp_total_events in
  let snap = Metrics.snapshot o.o_m in
  if o.o_gated then
    {
      snap with
      Metrics.events_seen = n;
      events_filtered = snap.Metrics.events_filtered + (n - o.o_routed);
      instances_created = snap.Metrics.instances_created + o.o_routed;
    }
  else
    {
      snap with
      Metrics.events_seen = n;
      instances_created = snap.Metrics.instances_created + n;
    }

let reg_raw t r =
  match t.sp_reg_unit.(r) with
  | ui, -1 -> (
      match t.sp_units.(ui) with
      | U_single s -> Executor.emitted s.s_exec
      | U_merged _ -> assert false)
  | ui, oi -> (
      match t.sp_units.(ui) with
      | U_merged g -> List.rev g.g_owners.(oi).o_emissions
      | U_single _ -> assert false)

let reg_metrics t r =
  match t.sp_reg_unit.(r) with
  | ui, -1 -> (
      match t.sp_units.(ui) with
      | U_single s ->
          adjust_metrics t ~mode:s.s_mode ~fed:s.s_fed
            (Executor.metrics s.s_exec)
      | U_merged _ -> assert false)
  | ui, oi -> (
      match t.sp_units.(ui) with
      | U_merged g -> owner_metrics t g.g_owners.(oi)
      | U_single _ -> assert false)

type query_result = {
  q_name : string;
  q_automaton : Automaton.t;
  q_alias : int;  (** registrations sharing this id share identical raw *)
  q_raw : Substitution.t list;
  q_metrics : Metrics.snapshot;
}

let result_of t r =
  let ui, oi = t.sp_reg_unit.(r) in
  {
    q_name = t.sp_regs.(r).r_name;
    q_automaton = t.sp_regs.(r).r_automaton;
    q_alias = (ui * (max_owners + 2)) + oi + 1;
    q_raw = reg_raw t r;
    q_metrics = reg_metrics t r;
  }

let results t =
  List.filter_map
    (fun r -> if t.sp_retired.(r) then None else Some (result_of t r))
    (List.init (Array.length t.sp_regs) Fun.id)

let population t =
  (* Each registered name counts its instances, as independent execution
     would: aliases multiply. *)
  let acc = ref 0 in
  Array.iteri
    (fun r (ui, oi) ->
      if not t.sp_retired.(r) then
        acc :=
          !acc
          +
          match t.sp_units.(ui) with
          | U_single s -> Executor.population s.s_exec
          | U_merged g -> g.g_owners.(oi).o_pop)
    t.sp_reg_unit;
  !acc

let retire t name =
  if t.sp_closed then invalid_arg "Shared_plan.retire: plan is closed";
  let r =
    let found = ref (-1) in
    Array.iteri
      (fun i (reg : reg) ->
        if !found < 0 && (not t.sp_retired.(i)) && String.equal reg.r_name name
        then found := i)
      t.sp_regs;
    if !found < 0 then
      invalid_arg ("Shared_plan.retire: unknown query " ^ name)
    else !found
  in
  (* Capture the registration's outcome-to-date before mutating, close
     order included; the snapshot keeps its meaning after retirement
     because nothing reads the unit's probes for this name again. *)
  let result =
    match t.sp_reg_unit.(r) with
    | ui, -1 -> (
        match t.sp_units.(ui) with
        | U_single s ->
            s.s_regs <- List.filter (fun x -> x <> r) s.s_regs;
            if s.s_regs = [] then begin
              (* Last name on the unit: the executor's run ends here. *)
              ignore (Executor.close s.s_exec);
              s.s_retired <- true;
              s.s_live <- false
            end;
            (* An aliased sibling keeps the executor open, so this
               name's raw lacks the close-time flush — documented. *)
            let raw = Executor.emitted s.s_exec in
            let metrics =
              adjust_metrics t ~mode:s.s_mode ~fed:s.s_fed
                (Executor.metrics s.s_exec)
            in
            (raw, metrics)
        | U_merged _ -> assert false)
    | ui, oi -> (
        match t.sp_units.(ui) with
        | U_merged g ->
            let o = g.g_owners.(oi) in
            o.o_regs <- List.filter (fun x -> x <> r) o.o_regs;
            if o.o_regs = [] then begin
              let raw = retire_owner g o in
              (raw, owner_metrics t o)
            end
            else (List.rev o.o_emissions, owner_metrics t o)
        | U_single _ -> assert false)
  in
  t.sp_retired.(r) <- true;
  let raw, metrics = result in
  {
    q_name = name;
    q_automaton = t.sp_regs.(r).r_automaton;
    q_alias =
      (let ui, oi = t.sp_reg_unit.(r) in
       (ui * (max_owners + 2)) + oi + 1);
    q_raw = raw;
    q_metrics = metrics;
  }

(* ------------------------------------------------------------------ *)
(* Introspection for benchmarks and the CLI.                          *)
(* ------------------------------------------------------------------ *)

type unit_summary = {
  u_names : string list;
  u_kind : [ `Single | `Merged of int ];
  u_routed : bool;
  u_gated : bool;
}

type stats = {
  st_units : unit_summary list;
  st_merged_groups : int;
  st_merged_queries : int;
  st_aliased_queries : int;  (** registrations beyond their unit's first *)
  st_template_groups : string list list;
      (** registration names per template *)
  st_index_atoms : int;
  st_index_evaluated : int;
  st_index_saved : int;
  st_index_hit_rate : float;
}

let stats t =
  let units =
    Array.to_list
      (Array.map
         (function
           | U_single s ->
               [
                 {
                   u_names =
                     List.map (fun r -> t.sp_regs.(r).r_name) s.s_regs;
                   u_kind = `Single;
                   u_routed = (match s.s_mode with Always -> false | _ -> true);
                   u_gated =
                     (match s.s_mode with
                     | Routed { gated } -> gated
                     | Always -> false);
                 };
               ]
           | U_merged g ->
               Array.to_list
                 (Array.map
                    (fun o ->
                      {
                        u_names =
                          List.map (fun r -> t.sp_regs.(r).r_name) o.o_regs;
                        u_kind = `Merged g.g_depth;
                        u_routed = true;
                        u_gated = o.o_gated;
                      })
                    g.g_owners))
         t.sp_units)
    |> List.concat
  in
  let aliased =
    List.fold_left (fun acc u -> acc + max 0 (List.length u.u_names - 1)) 0 units
  in
  let merged_groups, merged_queries =
    Array.fold_left
      (fun (gs, qs) -> function
        | U_merged g ->
            ( gs + 1,
              qs
              + Array.fold_left
                  (fun a o -> a + List.length o.o_regs)
                  0 g.g_owners )
        | U_single _ -> (gs, qs))
      (0, 0) t.sp_units
  in
  {
    st_units = units;
    st_merged_groups = merged_groups;
    st_merged_queries = merged_queries;
    st_aliased_queries = aliased;
    st_template_groups =
      List.map
        (fun g -> List.map (fun r -> t.sp_regs.(r).r_name) g)
        t.sp_templates;
    st_index_atoms = Predicate_index.n_atoms t.sp_index;
    st_index_evaluated = Predicate_index.evaluated t.sp_index;
    st_index_saved = Predicate_index.saved t.sp_index;
    st_index_hit_rate = Predicate_index.hit_rate t.sp_index;
  }

(* ------------------------------------------------------------------ *)
(* Sharding for the domain-parallel mode.                             *)
(* ------------------------------------------------------------------ *)

(* Split registrations into [shards] lists, keeping every unit (alias
   set, merged group) whole so each worker re-derives the same grouping
   on its subset. Greedy by member count, deterministic. *)
let partition ~options ~shards regs_list =
  let regs = Array.of_list regs_list in
  let { g_units; _ } = group_registrations ~options regs in
  let unit_regs =
    List.map
      (function
        | S_single u -> u.a_regs
        | S_merged { members; _ } -> List.concat_map (fun u -> u.a_regs) members)
      g_units
  in
  let shard_load = Array.make shards 0 in
  let shard_regs = Array.make shards [] in
  List.iter
    (fun rs ->
      let best = ref 0 in
      for i = 1 to shards - 1 do
        if shard_load.(i) < shard_load.(!best) then best := i
      done;
      shard_load.(!best) <- shard_load.(!best) + List.length rs;
      shard_regs.(!best) <- List.rev_append rs shard_regs.(!best))
    unit_regs;
  Array.map
    (fun rs -> List.map (fun r -> regs.(r)) (List.sort Int.compare (List.rev rs)))
    shard_regs
