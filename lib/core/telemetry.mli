(** Zero-dependency runtime instrumentation for the execution path.

    A {!t} is a recorder: a set of named probes — {!Span}s (wall-clock
    timers), {!Histogram}s (fixed-bucket log2 value distributions),
    {!Gauge}s (sampled levels with peak tracking) and {!Counter}s —
    created on first use and exported as a {!profile}.

    The probes the engine plants are all guarded by a {!sink}
    ([t option]): with [None] — the default everywhere — each probe
    costs exactly one branch, so the uninstrumented hot path stays the
    hot path. Handles ({!span}, {!histogram}, …) are resolved once at
    stream-construction time, never per event.

    {b Threading.} Spans, histograms and counters are plain mutable
    state: each handle must be written by one domain at a time. The
    domain-parallel executors honour this by {!fork}ing one child
    recorder per shard/worker and writing only to their own; gauges are
    atomic and may be shared across domains (the cross-shard population
    gauge relies on this). {!snapshot} reads children without locks —
    call it only after the workers have quiesced (the executors'
    [metrics]/[close] already impose exactly that discipline).

    {b Clock.} Durations come from the recorder's clock, a
    [unit -> int] returning nanoseconds. The default is derived from
    [Unix.gettimeofday] (the portable choice without C stubs); negative
    intervals are clamped to zero, so a wall-clock step back never
    produces a negative duration. Tests inject a deterministic clock. *)

type t

type sink = t option
(** [None] is the no-op sink: every probe behind it is one branch. *)

val create : ?clock:(unit -> int) -> unit -> t
(** A fresh recorder. [clock] returns the current time in nanoseconds
    and defaults to a [Unix.gettimeofday]-based reading. *)

val fork : t -> t
(** A child recorder sharing the parent's clock. {!snapshot} of the
    parent merges every descendant's probes name-by-name (see
    {!profile} for the merge rules), so a domain-parallel executor
    gives each worker its own child and exports one unified profile.
    Fork before handing the child to another domain. *)

val now : t -> int
(** The recorder's clock, in nanoseconds — for derived rates (rows/sec)
    that must share the time base of the spans. *)

module Span : sig
  type t

  val start : t -> int
  (** A start token (the clock reading). Spans nest freely: tokens are
      independent, so timing a span inside another — or the same span
      recursively — records both intervals. *)

  val stop : t -> int -> unit
  (** [stop s token] records one interval of [now - token] ns. *)

  val stop_elapsed : t -> int -> int
  (** Like {!stop}, but also returns the recorded interval — for
      callers that feed the same measurement to a histogram without a
      second clock read. *)

  val record : t -> (unit -> 'a) -> 'a
  (** Times the thunk (exceptions still record the interval). *)

  val count : t -> int

  val total_ns : t -> int

  val max_ns : t -> int
end

module Histogram : sig
  type t

  val n_buckets : int
  (** 32: bucket 0 holds values < 2, bucket [i] (1 ≤ i < 31) holds
      [2{^i} … 2{^i+1}-1], and bucket 31 is the overflow bucket
      ([≥ 2{^31}], absorbing everything beyond the log2 edges). *)

  val bucket_of : int -> int
  (** The bucket index a value lands in; negatives count as 0. *)

  val lower_bound : int -> int
  (** Inclusive lower edge of bucket [i]: 0 for bucket 0, else 2{^i}. *)

  val observe : t -> int -> unit

  val count : t -> int

  val sum : t -> int

  val max_value : t -> int

  val bucket_counts : t -> int array
  (** A copy, length {!n_buckets}. *)
end

module Gauge : sig
  type t
  (** Atomic: safe to share across domains. *)

  val observe : t -> int -> unit
  (** Sample an absolute level: sets [last], raises [peak]. *)

  val add : t -> int -> unit
  (** Apply a delta to the running level and sample the result — the
      cross-shard form: when every shard reports its own population
      deltas through one shared gauge, [peak] is the true global peak
      (each delta is applied atomically, so every sampled level is a
      level the system actually reached). *)

  val samples : t -> int

  val last : t -> int

  val peak : t -> int
end

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit

  val value : t -> int
end

val span : t -> string -> Span.t
(** Find-or-create by name. Resolve handles once, outside the hot
    loop. *)

val histogram : t -> string -> Histogram.t

val gauge : t -> string -> Gauge.t

val counter : t -> string -> Counter.t

(** {1 Profiles}

    An exported snapshot: plain data, sorted by probe name. Merging —
    across {!fork}ed shards, or of two profiles — is name-by-name:
    span counts/totals sum and maxima take the max; histograms add
    bucket-wise (counts and sums sum, maxima max); gauge samples sum,
    peaks take the max, [last] the max of lasts (shard lasts have no
    global order); counters sum. *)

type span_data = {
  span_count : int;
  span_total_ns : int;
  span_max_ns : int;
}

type histogram_data = {
  hist_count : int;
  hist_sum : int;
  hist_max : int;
  hist_buckets : int array;  (** trailing zero buckets trimmed *)
}

type gauge_data = {
  gauge_samples : int;
  gauge_last : int;
  gauge_peak : int;
}

type profile = {
  spans : (string * span_data) list;
  histograms : (string * histogram_data) list;
  gauges : (string * gauge_data) list;
  counters : (string * int) list;
}

val snapshot : t -> profile
(** The recorder's probes merged with all its descendants'. Quiesce
    worker domains first. *)

val merge_profiles : profile list -> profile

val to_json : profile -> string
(** Deterministic layout: sections in a fixed order, names sorted, one
    line per named probe (so line-oriented filters can pick out the
    stable fields). *)

val of_json : string -> (profile, string) result
(** Parses exactly the subset of JSON {!to_json} emits (objects,
    arrays, strings, integers). [of_json (to_json p) = Ok p]. *)

val to_prometheus : profile -> string
(** Prometheus text exposition: [ses_span_*], [ses_histogram_*]
    (cumulative [le] buckets), [ses_gauge_*], [ses_counter]. *)
