open Ses_event
open Ses_pattern

type transition_stats = {
  transition : Automaton.transition;
  fired : int;
}

type report = {
  pattern : Pattern.t;
  events : int;
  matches : int;
  raw : int;
  candidates_per_variable : (int * int) list;
  entered : (Varset.t * int) list;
  stuck : (Varset.t * int) list;
  transitions : transition_stats list;
  killed : int;
  emission_lag : (float * int) option;
}

let candidate_count p relation v =
  let consts = Pattern.constant_conditions_on p v in
  Relation.fold
    (fun acc e ->
      if
        List.for_all
          (fun (field, op, c) -> Predicate.eval op (Event.get e field) c)
          consts
      then acc + 1
      else acc)
    0 relation

let state_of_buffer buffer =
  Varset.of_list (List.map fst (Substitution.canonical buffer))

let explain ?options automaton relation =
  let p = Automaton.pattern automaton in
  let st = Engine.create ?options automaton in
  let entered = Hashtbl.create 32 in
  let stuck = Hashtbl.create 32 in
  let fired = Hashtbl.create 64 in
  let bump table key =
    Hashtbl.replace table key
      (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  let accept = Automaton.accept automaton in
  let lags = ref [] in
  Engine.set_observer st
    (Some
       (fun obs ->
         match obs with
         | Engine.Took { transition; _ } ->
             bump entered transition.Automaton.tgt;
             bump fired
               ( transition.Automaton.src,
                 transition.Automaton.var,
                 transition.Automaton.tgt )
         | Engine.Expired { accepting = false; buffer; _ } ->
             bump stuck (state_of_buffer buffer)
         | Engine.Expired { accepting = true; event; buffer } ->
             let last =
               List.fold_left
                 (fun acc (_, e) -> max acc (Event.ts e))
                 min_int buffer
             in
             lags := (Event.ts event - last) :: !lags
         | Engine.Created _ | Engine.Ignored _ | Engine.Killed _
         | Engine.Emitted _ ->
             ()));
  Relation.iter (fun e -> ignore (Engine.feed st e)) relation;
  (* Instances still alive at end of input count as stuck unless they sit
     in the accepting state. *)
  List.iter
    (fun (q, n) ->
      if not (Varset.equal q accept) then
        Hashtbl.replace stuck q
          (n + Option.value ~default:0 (Hashtbl.find_opt stuck q)))
    (Engine.population_by_state st);
  ignore (Engine.close st);
  let raw = Engine.emitted st in
  let opts = Option.value ~default:Engine.default_options options in
  let matches =
    if opts.Engine.finalize then
      Substitution.finalize ~policy:opts.Engine.policy p raw
    else raw
  in
  let metrics = Engine.metrics st in
  let table_to_list table =
    List.sort
      (fun (_, a) (_, b) -> Int.compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  in
  {
    pattern = p;
    events = metrics.Metrics.events_seen;
    matches = List.length matches;
    raw = List.length raw;
    candidates_per_variable =
      List.map
        (fun v -> (v, candidate_count p relation v))
        (List.init (Pattern.n_vars p) Fun.id);
    entered = table_to_list entered;
    stuck = table_to_list stuck;
    transitions =
      List.map
        (fun (tr : Automaton.transition) ->
          {
            transition = tr;
            fired =
              Option.value ~default:0
                (Hashtbl.find_opt fired (tr.src, tr.var, tr.tgt));
          })
        (Automaton.transitions automaton);
    killed = metrics.Metrics.instances_killed;
    emission_lag =
      (match !lags with
      | [] -> None
      | ls ->
          let n = List.length ls in
          let total = List.fold_left ( + ) 0 ls in
          Some (float_of_int total /. float_of_int n, List.fold_left max 0 ls));
  }

let pp ppf r =
  let p = r.pattern in
  let name_of = Pattern.var_name p in
  let pp_state = Varset.pp ~name_of in
  Format.fprintf ppf "@[<v>%d events, %d raw candidates, %d matches@,"
    r.events r.raw r.matches;
  if r.killed > 0 then
    Format.fprintf ppf "%d instances killed by negation guards@," r.killed;
  (match r.emission_lag with
  | Some (mean, worst) ->
      Format.fprintf ppf
        "emission lag (MAXIMAL semantics wait for window expiry): mean %.1f, max %d@,"
        mean worst
  | None -> ());
  Format.fprintf ppf "events per variable (constant conditions only):@,";
  List.iter
    (fun (v, n) -> Format.fprintf ppf "  %s: %d@," (name_of v) n)
    r.candidates_per_variable;
  (match List.filter (fun (_, n) -> n = 0) r.candidates_per_variable with
  | [] -> ()
  | dead ->
      Format.fprintf ppf "  -> no event can ever bind %s@,"
        (String.concat ", " (List.map (fun (v, _) -> name_of v) dead)));
  Format.fprintf ppf "states entered:@,";
  List.iter
    (fun (q, n) -> Format.fprintf ppf "  %a: %d@," pp_state q n)
    r.entered;
  (match r.stuck with
  | [] -> ()
  | stuck ->
      Format.fprintf ppf "instances stuck (expired or input ended):@,";
      List.iter
        (fun (q, n) ->
          Format.fprintf ppf "  at %a: %d@," pp_state q n;
          List.iter
            (fun ts ->
              if ts.fired = 0 && Varset.equal ts.transition.Automaton.src q
              then
                Format.fprintf ppf "    transition %s never fired@,"
                  (name_of ts.transition.Automaton.var))
            r.transitions)
        stuck);
  Format.fprintf ppf "@]"
