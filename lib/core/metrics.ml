type t = {
  mutable events_seen : int;
  mutable events_filtered : int;
  mutable instances_created : int;
  mutable max_simultaneous_instances : int;
  mutable transitions_fired : int;
  mutable instances_expired : int;
  mutable instances_killed : int;
  mutable matches_emitted : int;
}

type snapshot = {
  events_seen : int;
  events_filtered : int;
  instances_created : int;
  max_simultaneous_instances : int;
  transitions_fired : int;
  instances_expired : int;
  instances_killed : int;
  matches_emitted : int;
}

let create () : t =
  {
    events_seen = 0;
    events_filtered = 0;
    instances_created = 0;
    max_simultaneous_instances = 0;
    transitions_fired = 0;
    instances_expired = 0;
    instances_killed = 0;
    matches_emitted = 0;
  }

let on_event (m : t) = m.events_seen <- m.events_seen + 1

let on_events (m : t) n = m.events_seen <- m.events_seen + n

let on_filtered (m : t) = m.events_filtered <- m.events_filtered + 1

let on_filtered_many (m : t) n = m.events_filtered <- m.events_filtered + n

let on_instance_created (m : t) = m.instances_created <- m.instances_created + 1

let on_transition (m : t) = m.transitions_fired <- m.transitions_fired + 1

let on_expired (m : t) = m.instances_expired <- m.instances_expired + 1

let on_killed (m : t) = m.instances_killed <- m.instances_killed + 1

let on_match (m : t) = m.matches_emitted <- m.matches_emitted + 1

let sample_population (m : t) n =
  if n > m.max_simultaneous_instances then m.max_simultaneous_instances <- n

let snapshot (m : t) : snapshot =
  {
    events_seen = m.events_seen;
    events_filtered = m.events_filtered;
    instances_created = m.instances_created;
    max_simultaneous_instances = m.max_simultaneous_instances;
    transitions_fired = m.transitions_fired;
    instances_expired = m.instances_expired;
    instances_killed = m.instances_killed;
    matches_emitted = m.matches_emitted;
  }

(* Shard accounting: the snapshots come from executors that split one
   input among themselves (per-key pools, domain shards), so every
   counter is a sum — each event, instance and transition is counted by
   exactly one shard — except [max_simultaneous_instances], whose
   shard-local peaks need not coincide in time: the max of the peaks is
   the only value that is both deterministic and a lower bound on the
   true global peak. *)
let merge snapshots =
  List.fold_left
    (fun acc s ->
      {
        events_seen = acc.events_seen + s.events_seen;
        events_filtered = acc.events_filtered + s.events_filtered;
        instances_created = acc.instances_created + s.instances_created;
        max_simultaneous_instances =
          max acc.max_simultaneous_instances s.max_simultaneous_instances;
        transitions_fired = acc.transitions_fired + s.transitions_fired;
        instances_expired = acc.instances_expired + s.instances_expired;
        instances_killed = acc.instances_killed + s.instances_killed;
        matches_emitted = acc.matches_emitted + s.matches_emitted;
      })
    {
      events_seen = 0;
      events_filtered = 0;
      instances_created = 0;
      max_simultaneous_instances = 0;
      transitions_fired = 0;
      instances_expired = 0;
      instances_killed = 0;
      matches_emitted = 0;
    }
    snapshots

(* Replica accounting (the paper's Sec. 5.2 bookkeeping for the
   brute-force baseline): every replica consumes the whole input, so the
   input-side counters take the max (they are equal across replicas)
   while the work-side counters sum — including the instance peaks,
   since the replicated automata run simultaneously. *)
let merge_replicas snapshots =
  List.fold_left
    (fun acc s ->
      {
        events_seen = max acc.events_seen s.events_seen;
        events_filtered = max acc.events_filtered s.events_filtered;
        instances_created = acc.instances_created + s.instances_created;
        max_simultaneous_instances =
          acc.max_simultaneous_instances + s.max_simultaneous_instances;
        transitions_fired = acc.transitions_fired + s.transitions_fired;
        instances_expired = acc.instances_expired + s.instances_expired;
        instances_killed = acc.instances_killed + s.instances_killed;
        matches_emitted = acc.matches_emitted + s.matches_emitted;
      })
    {
      events_seen = 0;
      events_filtered = 0;
      instances_created = 0;
      max_simultaneous_instances = 0;
      transitions_fired = 0;
      instances_expired = 0;
      instances_killed = 0;
      matches_emitted = 0;
    }
    snapshots

let zero =
  {
    events_seen = 0;
    events_filtered = 0;
    instances_created = 0;
    max_simultaneous_instances = 0;
    transitions_fired = 0;
    instances_expired = 0;
    instances_killed = 0;
    matches_emitted = 0;
  }

let to_json s =
  Printf.sprintf
    "{\"events_seen\":%d,\"events_filtered\":%d,\"instances_created\":%d,\"max_simultaneous_instances\":%d,\"transitions_fired\":%d,\"instances_expired\":%d,\"instances_killed\":%d,\"matches_emitted\":%d}"
    s.events_seen s.events_filtered s.instances_created
    s.max_simultaneous_instances s.transitions_fired s.instances_expired
    s.instances_killed s.matches_emitted

let pp ppf s =
  Format.fprintf ppf
    "@[<v>events seen:        %d@,events filtered:    %d@,instances created:  %d@,max simultaneous:   %d@,transitions fired:  %d@,instances expired:  %d@,instances killed:   %d@,matches emitted:    %d@]"
    s.events_seen s.events_filtered s.instances_created
    s.max_simultaneous_instances s.transitions_fired s.instances_expired
    s.instances_killed s.matches_emitted
