(** Hash-partitioned execution of a SES automaton.

    The paper's conclusion points to "indexing techniques for automaton
    instances" (Cayuga) as future work. When every transition of the
    automaton that extends a non-empty match buffer carries an equality
    pinning the new event's key attribute to an already-bound variable's
    key, two events with different key values can never occur in the same
    match {e and} an event of a foreign key can never fire a transition of
    an instance holding bindings. The instance pool then splits into
    independent pools, one per key value, and each input event touches
    only its key's pool instead of all of Ω — O(|Ω_key|) per event instead
    of O(|Ω|).

    The pinning requirement is stronger than "all variables are joined on
    the key" for two reasons, both consequences of skip-till-next-match
    and both demonstrated in [test/test_partitioned.ml]:

    - {b Syntactic completeness.} Condition attachment is syntactic, so
      with Q1's star-shaped joins (c–p, c–d, d–b) a D administration of
      {e another} patient fires the d transition of an instance that has
      only bound p — that transition carries no join yet — and kills the
      instance's chance to bind its own patient's later D event.
      Partitioning would shield the instance from the foreign event and
      find {e more} matches than the paper's algorithm.
    - {b Group-variable loops.} The paper's decomposition semantics
      evaluate conditions per binding, so Θ can never relate two bindings
      of the {e same} group variable: a loop at a state where no join
      partner is bound (e.g. {p+} alone) accepts events of any key, and
      the same divergence arises. Patterns whose group variable can be
      bound first are therefore never partitionable.

    [partition_key] decides the criterion on the constructed automaton;
    both [create] and [run] fall back to a single plain engine stream when
    it does not hold, so they are always safe to call. When it holds the
    result is identical to {!Engine.run} up to ordering (both finalize
    deterministically): raw emissions are pooled and finalized globally. *)

open Ses_event

val partition_key : Automaton.t -> Schema.Field.t option
(** The field [A] (never the timestamp) such that every transition with a
    non-empty source state carries a condition [v.A = v'.A] with [v'] in
    the source state, if any. *)

(** {1 Incremental interface}

    The push-based view, implementing {!Executor.EXECUTOR}: per-key
    engine pools opened lazily as each key value first appears. [feed]
    routes the event to its key's pool only.

    {2 Domain-sharded execution}

    When [options.domains > 1] and the pattern is partitionable, the
    per-key pools are sharded across that many {!Domain_pool} worker
    domains: each key hashes to a fixed worker, whose bounded queue
    preserves arrival order, so every pool still consumes exactly its
    key's events, sequentially and in order — the per-pool execution is
    byte-identical to the sequential layout and the matching semantics
    are untouched. The differences are operational:

    - [feed] hands the event to its shard's queue and returns [[]];
      completions are collected by [close]/[emitted] instead (finalize
      needs the whole candidate set anyway, so batch callers — {!run},
      {!Executor.drive} — are unaffected).
    - [emitted], [population] and [metrics] first quiesce the workers
      (block until every queue drains), so mid-stream reads are exact
      but momentarily stall the pipeline.
    - A worker exception (e.g. out-of-order events) is re-raised by the
      next [feed], [close] or read, not at the offending [feed].
    - [close] joins the worker domains, flushes every pool and returns
      the accepted substitutions; the stream cannot be fed afterwards
      (raises [Invalid_argument]).

    Non-partitionable patterns fall back to the single sequential pool
    regardless of [options.domains]. *)

type stream

val create :
  ?options:Engine.options -> ?key:Schema.Field.t option -> Automaton.t -> stream
(** [?key] overrides detection (the planner passes its already-computed
    decision); when omitted, {!partition_key} decides. [Some None] forces
    a single unpartitioned pool. [options.domains > 1] runs the keyed
    pools on worker domains as described above. *)

val feed : stream -> Event.t -> Substitution.t list
(** Raw substitutions whose instances completed on this event ([[]] in
    the domain-sharded mode — see above). *)

val feed_batch : stream -> Event.t array -> Substitution.t list
(** Routes a chronological chunk in one pass. Events are grouped by key
    value and each per-key pool consumes its sub-batch through
    {!Engine.feed_batch}, so the engine's per-batch amortizations
    compose with partitioning; pools still see exactly their key's
    events, in order. In the domain-sharded mode the chunk is pushed
    through the producer-side {!Domain_pool.batcher} (buffer limit
    [options.batch_size]) and [[]] is returned, as with {!feed}.
    Completions are returned grouped by pool, each pool's oldest first;
    the cross-pool interleaving may differ from the per-event order
    (finalization is order-insensitive). *)

val close : stream -> Substitution.t list
(** Flushes accepting instances of every pool, oldest pool first (per
    shard, in shard order, when domain-sharded — joining the worker
    domains first). *)

val emitted : stream -> Substitution.t list
(** All raw emissions so far, grouped by pool in pool-creation order
    (per shard when domain-sharded). *)

val population : stream -> int
(** Total live instances across pools. *)

val n_pools : stream -> int
(** Number of per-key pools opened so far (1 when unpartitioned). *)

val n_domains : stream -> int
(** Worker domains in use (1 when sequential). *)

val key : stream -> Schema.Field.t option
(** The partition key actually in use. *)

val metrics : stream -> Metrics.snapshot
(** Summed across pools; [max_simultaneous_instances] is the maximum over
    time of the total population. Expiry is lazy — a pool only discards
    expired instances when one of its own events arrives — so that peak
    may exceed the plain engine's even though the per-event work is
    smaller. In the domain-sharded mode the snapshots merge with
    {!Metrics.merge}: the peak is the max of the per-shard peaks, a
    deterministic lower bound on the sequential layout's global peak. *)

(** {1 Batch interface} *)

val run :
  ?options:Engine.options -> Automaton.t -> Event.t Seq.t -> Engine.outcome
(** [create] + [feed] all + [close] + finalize. *)

val run_relation :
  ?options:Engine.options -> Automaton.t -> Relation.t -> Engine.outcome
