(** Hash-partitioned execution of a SES automaton.

    The paper's conclusion points to "indexing techniques for automaton
    instances" (Cayuga) as future work. When every transition of the
    automaton that extends a non-empty match buffer carries an equality
    pinning the new event's key attribute to an already-bound variable's
    key, two events with different key values can never occur in the same
    match {e and} an event of a foreign key can never fire a transition of
    an instance holding bindings. The instance pool then splits into
    independent pools, one per key value, and each input event touches
    only its key's pool instead of all of Ω — O(|Ω_key|) per event instead
    of O(|Ω|).

    The pinning requirement is stronger than "all variables are joined on
    the key" for two reasons, both consequences of skip-till-next-match
    and both demonstrated in [test/test_partitioned.ml]:

    - {b Syntactic completeness.} Condition attachment is syntactic, so
      with Q1's star-shaped joins (c–p, c–d, d–b) a D administration of
      {e another} patient fires the d transition of an instance that has
      only bound p — that transition carries no join yet — and kills the
      instance's chance to bind its own patient's later D event.
      Partitioning would shield the instance from the foreign event and
      find {e more} matches than the paper's algorithm.
    - {b Group-variable loops.} The paper's decomposition semantics
      evaluate conditions per binding, so Θ can never relate two bindings
      of the {e same} group variable: a loop at a state where no join
      partner is bound (e.g. {p+} alone) accepts events of any key, and
      the same divergence arises. Patterns whose group variable can be
      bound first are therefore never partitionable.

    [partition_key] decides the criterion on the constructed automaton;
    both [create] and [run] fall back to a single plain engine stream when
    it does not hold, so they are always safe to call. When it holds the
    result is identical to {!Engine.run} up to ordering (both finalize
    deterministically): raw emissions are pooled and finalized globally. *)

open Ses_event

val partition_key : Automaton.t -> Schema.Field.t option
(** The field [A] (never the timestamp) such that every transition with a
    non-empty source state carries a condition [v.A = v'.A] with [v'] in
    the source state, if any. *)

(** {1 Incremental interface}

    The push-based view, implementing {!Executor.EXECUTOR}: per-key
    engine pools opened lazily as each key value first appears. [feed]
    routes the event to its key's pool only. *)

type stream

val create :
  ?options:Engine.options -> ?key:Schema.Field.t option -> Automaton.t -> stream
(** [?key] overrides detection (the planner passes its already-computed
    decision); when omitted, {!partition_key} decides. [Some None] forces
    a single unpartitioned pool. *)

val feed : stream -> Event.t -> Substitution.t list
(** Raw substitutions whose instances completed on this event. *)

val close : stream -> Substitution.t list
(** Flushes accepting instances of every pool, oldest pool first. *)

val emitted : stream -> Substitution.t list
(** All raw emissions so far, grouped by pool in pool-creation order. *)

val population : stream -> int
(** Total live instances across pools. *)

val n_pools : stream -> int
(** Number of per-key pools opened so far (1 when unpartitioned). *)

val key : stream -> Schema.Field.t option
(** The partition key actually in use. *)

val metrics : stream -> Metrics.snapshot
(** Summed across pools; [max_simultaneous_instances] is the maximum over
    time of the total population. Expiry is lazy — a pool only discards
    expired instances when one of its own events arrives — so that peak
    may exceed the plain engine's even though the per-event work is
    smaller. *)

(** {1 Batch interface} *)

val run :
  ?options:Engine.options -> Automaton.t -> Event.t Seq.t -> Engine.outcome
(** [create] + [feed] all + [close] + finalize. *)

val run_relation :
  ?options:Engine.options -> Automaton.t -> Relation.t -> Engine.outcome
