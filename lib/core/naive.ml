open Ses_event
open Ses_pattern

exception Too_large of int

let subsets_within ~min_count ~max_count events =
  (* All sublists whose size lies within the quantifier bounds, preserving
     chronological order. *)
  let rec go = function
    | [] -> [ [] ]
    | e :: rest ->
        let tails = go rest in
        List.map (fun t -> e :: t) tails @ tails
  in
  List.filter
    (fun l ->
      let n = List.length l in
      n >= min_count
      && match max_count with Some m -> n <= m | None -> true)
    (go events)

let candidates p relation v =
  let consts = Pattern.constant_conditions_on p v in
  List.filter
    (fun e ->
      List.for_all
        (fun (field, op, c) -> Predicate.eval op (Event.get e field) c)
        consts)
    (Array.to_list (Relation.events relation))

let all_satisfying_1_3 ?(limit = 1_000_000) p relation =
  let all_events = Relation.events relation in
  let per_var =
    List.init (Pattern.n_vars p) (fun v ->
        let events = candidates p relation v in
        if Pattern.is_group p v then
          List.map
            (fun es -> (v, es))
            (subsets_within ~min_count:(Pattern.min_count p v)
               ~max_count:(Pattern.max_count p v) events)
        else List.map (fun e -> (v, [ e ])) events)
  in
  (* Upfront size estimate to fail fast instead of looping forever. *)
  let estimate =
    List.fold_left
      (fun acc choices ->
        if acc > limit then acc else acc * max 1 (List.length choices))
      1 per_var
  in
  if estimate > limit then raise (Too_large limit);
  let checked = ref 0 in
  let results = ref [] in
  let rec assign acc = function
    | [] ->
        incr checked;
        if !checked > limit then raise (Too_large limit);
        let subst =
          List.concat_map (fun (v, es) -> List.map (fun e -> (v, e)) es)
            (List.rev acc)
        in
        if
          Substitution.satisfies_1_3 p subst
          && Substitution.satisfies_negations p all_events subst
        then results := subst :: !results
    | choices :: rest ->
        List.iter (fun choice -> assign (choice :: acc) rest) choices
  in
  assign [] per_var;
  List.sort
    (fun a b -> compare (Substitution.canonical a) (Substitution.canonical b))
    !results

let matches ?limit ?policy p relation =
  Substitution.finalize ?policy p (all_satisfying_1_3 ?limit p relation)
