open Ses_event
open Ses_pattern

exception Too_large of int

let subsets_within ~min_count ~max_count events =
  (* All sublists whose size lies within the quantifier bounds, preserving
     chronological order. *)
  let rec go = function
    | [] -> [ [] ]
    | e :: rest ->
        let tails = go rest in
        List.map (fun t -> e :: t) tails @ tails
  in
  List.filter
    (fun l ->
      let n = List.length l in
      n >= min_count
      && match max_count with Some m -> n <= m | None -> true)
    (go events)

let candidates p all_events v =
  let consts = Pattern.constant_conditions_on p v in
  List.filter
    (fun e ->
      List.for_all
        (fun (field, op, c) -> Predicate.eval op (Event.get e field) c)
        consts)
    (Array.to_list all_events)

let all_satisfying_1_3_events ?(limit = 1_000_000) p all_events =
  let per_var =
    List.init (Pattern.n_vars p) (fun v ->
        let events = candidates p all_events v in
        if Pattern.is_group p v then begin
          (* A group variable ranges over subsets of its candidates, and
             [subsets_within] materializes all 2^n of them — bail before
             that, not after, or a large input hangs instead of raising. *)
          let n = List.length events in
          if n >= Sys.int_size - 2 || 1 lsl n > limit then
            raise (Too_large limit);
          List.map
            (fun es -> (v, es))
            (subsets_within ~min_count:(Pattern.min_count p v)
               ~max_count:(Pattern.max_count p v) events)
        end
        else List.map (fun e -> (v, [ e ])) events)
  in
  (* Upfront size estimate to fail fast instead of looping forever. *)
  let estimate =
    List.fold_left
      (fun acc choices ->
        if acc > limit then acc else acc * max 1 (List.length choices))
      1 per_var
  in
  if estimate > limit then raise (Too_large limit);
  let checked = ref 0 in
  let results = ref [] in
  let rec assign acc = function
    | [] ->
        incr checked;
        if !checked > limit then raise (Too_large limit);
        let subst =
          List.concat_map (fun (v, es) -> List.map (fun e -> (v, e)) es)
            (List.rev acc)
        in
        if
          Substitution.satisfies_1_3 p subst
          && Substitution.satisfies_negations p all_events subst
        then results := subst :: !results
    | choices :: rest ->
        List.iter (fun choice -> assign (choice :: acc) rest) choices
  in
  assign [] per_var;
  List.sort
    (fun a b ->
      Substitution.compare_canonical (Substitution.canonical a)
        (Substitution.canonical b))
    !results

let all_satisfying_1_3 ?limit p relation =
  all_satisfying_1_3_events ?limit p (Relation.events relation)

let matches ?limit ?policy p relation =
  Substitution.finalize ?policy p (all_satisfying_1_3 ?limit p relation)

(* Incremental wrapper: the enumeration needs the whole input, so the
   stream buffers the events (keeping their original sequence numbers —
   a store-side filter may have dropped rows, leaving gaps) and
   enumerates at [close]. *)

type stream = {
  pattern : Pattern.t;
  limit : int;
  mutable events : Event.t list;  (** newest first *)
  mutable last_ts : Time.t option;
  mutable raw : Substitution.t list;
  mutable closed : bool;
  m : Metrics.t;
}

let default_limit = 1_000_000

let create ?(options = Engine.default_options) automaton =
  ignore options;
  {
    pattern = Automaton.pattern automaton;
    limit = default_limit;
    events = [];
    last_ts = None;
    raw = [];
    closed = false;
    m = Metrics.create ();
  }

let feed st e =
  (match st.last_ts with
  | Some t when Time.( <. ) (Event.ts e) t ->
      invalid_arg "Naive.feed: events out of chronological order"
  | Some _ | None -> ());
  st.last_ts <- Some (Event.ts e);
  Metrics.on_event st.m;
  st.events <- e :: st.events;
  []

(* The oracle only buffers, so a batch is just [feed] in a loop — the
   chronology check per event included. *)
let feed_batch st es =
  Array.iter (fun e -> ignore (feed st e)) es;
  []

let close st =
  if st.closed then []
  else begin
    st.closed <- true;
    let all_events = Array.of_list (List.rev st.events) in
    let raw = all_satisfying_1_3_events ~limit:st.limit st.pattern all_events in
    List.iter (fun _ -> Metrics.on_match st.m) raw;
    st.raw <- raw;
    raw
  end

let emitted st = st.raw

let population _ = 0

let metrics st = Metrics.snapshot st.m
