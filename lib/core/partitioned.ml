open Ses_event
open Ses_pattern

(* A transition is key-pinned when its condition set forces the bound
   event's key field to equal the key of an event already in the buffer:
   an equality on (key, key) between the transition's variable and a
   variable of the source state. Reflexive conditions do not pin (they
   compare the new event with itself), and neither does anything
   involving an unbound variable — condition attachment already excludes
   those. *)
let pinned key (tr : Automaton.transition) =
  List.exists
    (fun (c : Condition.t) ->
      c.op = Predicate.Eq
      && Schema.Field.equal c.field key
      && (match c.rhs with
         | Condition.Var (_, f') -> Schema.Field.equal f' key
         | Condition.Const _ -> false)
      &&
      match Condition.other_var c tr.var with
      | Some v' -> Varset.mem v' tr.src
      | None -> false)
    tr.conds

let candidate_fields p =
  List.sort_uniq compare
    (List.filter_map
       (fun (c : Condition.t) ->
         match c.rhs with
         | Condition.Var (_, f')
           when c.op = Predicate.Eq && Schema.Field.equal c.field f'
                && c.field <> Schema.Field.Timestamp ->
             Some c.field
         | Condition.Var _ | Condition.Const _ -> None)
       (Pattern.conditions p))

(* A negation guard is key-pinned when it equates the forbidden event's
   key with an earlier positive variable's key: only same-key events can
   then kill, so per-key pools stay equivalent. *)
let negation_pinned p key =
  List.for_all
    (fun (_, nv) ->
      List.exists
        (fun (c : Condition.t) ->
          c.op = Predicate.Eq
          && Schema.Field.equal c.field key
          && (match c.rhs with
             | Condition.Var (_, f') -> Schema.Field.equal f' key
             | Condition.Const _ -> false)
          && Condition.other_var c nv <> None)
        (Pattern.conditions_on p nv))
    (Pattern.negations p)

let partition_key automaton =
  let p = Automaton.pattern automaton in
  let non_start =
    List.filter
      (fun (tr : Automaton.transition) ->
        not (Varset.is_empty tr.src))
      (Automaton.transitions automaton)
  in
  List.find_opt
    (fun field ->
      List.for_all (pinned field) non_start && negation_pinned p field)
    (candidate_fields p)

let sum_metrics ~max_total streams =
  let add acc st =
    let m = Engine.metrics st in
    {
      Metrics.events_seen = acc.Metrics.events_seen + m.Metrics.events_seen;
      events_filtered = acc.Metrics.events_filtered + m.Metrics.events_filtered;
      instances_created =
        acc.Metrics.instances_created + m.Metrics.instances_created;
      max_simultaneous_instances = 0;
      transitions_fired = acc.Metrics.transitions_fired + m.Metrics.transitions_fired;
      instances_expired = acc.Metrics.instances_expired + m.Metrics.instances_expired;
      instances_killed = acc.Metrics.instances_killed + m.Metrics.instances_killed;
      matches_emitted = acc.Metrics.matches_emitted + m.Metrics.matches_emitted;
    }
  in
  let summed = List.fold_left add Metrics.zero streams in
  { summed with Metrics.max_simultaneous_instances = max_total }

(* Incremental interface: the instance pool splits lazily — a key's pool
   is opened the first time one of its events arrives. *)

type pools =
  | Single of Engine.stream
  | Keyed of {
      field : Schema.Field.t;
      pools : (Value.t, Engine.stream) Hashtbl.t;
      mutable order : Engine.stream list;  (* creation order, newest first *)
      mutable total : int;
      mutable max_total : int;
    }

type stream = {
  automaton : Automaton.t;
  options : Engine.options;
  pools : pools;
}

let create ?(options = Engine.default_options) ?key automaton =
  let key =
    match key with Some k -> k | None -> partition_key automaton
  in
  let pools =
    match key with
    | None -> Single (Engine.create ~options automaton)
    | Some field ->
        Keyed
          { field; pools = Hashtbl.create 32; order = []; total = 0; max_total = 0 }
  in
  { automaton; options; pools }

let key st =
  match st.pools with Single _ -> None | Keyed k -> Some k.field

let n_pools st =
  match st.pools with Single _ -> 1 | Keyed k -> Hashtbl.length k.pools

let ordered_streams st =
  match st.pools with
  | Single s -> [ s ]
  | Keyed k -> List.rev k.order

let feed st e =
  match st.pools with
  | Single s -> Engine.feed s e
  | Keyed k ->
      let kv = Event.get e k.field in
      let pool =
        match Hashtbl.find_opt k.pools kv with
        | Some pool -> pool
        | None ->
            let pool = Engine.create ~options:st.options st.automaton in
            Hashtbl.add k.pools kv pool;
            k.order <- pool :: k.order;
            pool
      in
      (* [Engine.population] is an O(1) counter read on the default
         indexed store, so maintaining the cross-pool total per event is
         cheap even with many pools. *)
      let before = Engine.population pool in
      let completed = Engine.feed pool e in
      k.total <- k.total - before + Engine.population pool;
      if k.total > k.max_total then k.max_total <- k.total;
      completed

let close st =
  match st.pools with
  | Single s -> Engine.close s
  | Keyed k ->
      let flushed =
        List.concat_map (fun pool -> Engine.close pool) (List.rev k.order)
      in
      k.total <- 0;
      flushed

let emitted st = List.concat_map Engine.emitted (ordered_streams st)

let population st =
  match st.pools with Single s -> Engine.population s | Keyed k -> k.total

let metrics st =
  match st.pools with
  | Single s -> Engine.metrics s
  | Keyed k -> sum_metrics ~max_total:k.max_total (List.rev k.order)

let run ?(options = Engine.default_options) automaton events =
  let p = Automaton.pattern automaton in
  let st = create ~options automaton in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let matches =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy p raw
    else raw
  in
  { Engine.matches; raw; metrics = metrics st }

let run_relation ?options automaton relation =
  run ?options automaton (Relation.to_seq relation)
