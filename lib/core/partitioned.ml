open Ses_event
open Ses_pattern

(* A transition is key-pinned when its condition set forces the bound
   event's key field to equal the key of an event already in the buffer:
   an equality on (key, key) between the transition's variable and a
   variable of the source state. Reflexive conditions do not pin (they
   compare the new event with itself), and neither does anything
   involving an unbound variable — condition attachment already excludes
   those. *)
let pinned key (tr : Automaton.transition) =
  List.exists
    (fun (c : Condition.t) ->
      c.op = Predicate.Eq
      && Schema.Field.equal c.field key
      && (match c.rhs with
         | Condition.Var (_, f') -> Schema.Field.equal f' key
         | Condition.Const _ -> false)
      &&
      match Condition.other_var c tr.var with
      | Some v' -> Varset.mem v' tr.src
      | None -> false)
    tr.conds

let candidate_fields p =
  List.sort_uniq Schema.Field.compare
    (List.filter_map
       (fun (c : Condition.t) ->
         match c.rhs with
         | Condition.Var (_, f')
           when c.op = Predicate.Eq && Schema.Field.equal c.field f'
                && c.field <> Schema.Field.Timestamp ->
             Some c.field
         | Condition.Var _ | Condition.Const _ -> None)
       (Pattern.conditions p))

(* A negation guard is key-pinned when it equates the forbidden event's
   key with an earlier positive variable's key: only same-key events can
   then kill, so per-key pools stay equivalent. *)
let negation_pinned p key =
  List.for_all
    (fun (_, nv) ->
      List.exists
        (fun (c : Condition.t) ->
          c.op = Predicate.Eq
          && Schema.Field.equal c.field key
          && (match c.rhs with
             | Condition.Var (_, f') -> Schema.Field.equal f' key
             | Condition.Const _ -> false)
          && Condition.other_var c nv <> None)
        (Pattern.conditions_on p nv))
    (Pattern.negations p)

let partition_key automaton =
  let p = Automaton.pattern automaton in
  let non_start =
    List.filter
      (fun (tr : Automaton.transition) ->
        not (Varset.is_empty tr.src))
      (Automaton.transitions automaton)
  in
  List.find_opt
    (fun field ->
      List.for_all (pinned field) non_start && negation_pinned p field)
    (candidate_fields p)

(* Incremental interface: the instance pool splits lazily — a key's pool
   is opened the first time one of its events arrives. [keyed] is the
   unit of both the sequential layout (one [keyed] holds every key) and
   the domain-sharded layout (one [keyed] per worker domain, holding the
   keys hashed to it); in the sharded case it is touched only by its
   owning worker while the pool runs. *)

type keyed = {
  field : Schema.Field.t;
  pools : (Value.t, Engine.stream) Hashtbl.t;
  mutable order : Engine.stream list;  (* creation order, newest first *)
  mutable total : int;
  mutable max_total : int;
  pop_global : Telemetry.Gauge.t option;
      (* the cross-shard population gauge, shared by every [keyed] of a
         stream: atomic delta-adds from each shard make its peak the
         true global |Ω| peak (at event granularity), where the merged
         [max_total]s only bound it from below. *)
}

let make_keyed ?pop_global field =
  {
    field;
    pools = Hashtbl.create 32;
    order = [];
    total = 0;
    max_total = 0;
    pop_global;
  }

(* Events travel to the workers in per-shard batches: a mutex/condition
   handshake per event would cost more than the engine work it ships, so
   the producer buffers up to [batch_size] events per shard and sends
   them as one message. The buffers belong to the producer thread;
   workers only ever see full batches. *)
let batch_size = 64

type batch = { mutable events : Event.t list; mutable len : int }
(* newest first; reversed into an array on flush *)

type pools =
  | Single of Engine.stream
  | Keyed of keyed
  | Sharded of {
      field : Schema.Field.t;
      shards : keyed array;
      batches : batch array;  (* producer-side, one per shard *)
      pool : Event.t array Domain_pool.t;
      batch_hist : Telemetry.Histogram.t option;  (* batch sizes on flush *)
      mutable flushed : bool;  (* the domains have been joined *)
    }

type stream = {
  automaton : Automaton.t;
  options : Engine.options;
  pools : pools;
}

let feed_keyed ~options ~automaton (k : keyed) e =
  let kv = Event.get e k.field in
  let pool =
    match Hashtbl.find_opt k.pools kv with
    | Some pool -> pool
    | None ->
        let pool = Engine.create ~options automaton in
        Hashtbl.add k.pools kv pool;
        k.order <- pool :: k.order;
        pool
  in
  (* [Engine.population] is an O(1) counter read on the default
     indexed store, so maintaining the cross-pool total per event is
     cheap even with many pools. *)
  let before = Engine.population pool in
  let completed = Engine.feed pool e in
  let delta = Engine.population pool - before in
  k.total <- k.total + delta;
  if k.total > k.max_total then k.max_total <- k.total;
  (match k.pop_global with
  | None -> ()
  | Some g -> Telemetry.Gauge.add g delta);
  completed

let close_keyed (k : keyed) =
  let flushed =
    List.concat_map (fun pool -> Engine.close pool) (List.rev k.order)
  in
  (match k.pop_global with
  | None -> ()
  | Some g -> Telemetry.Gauge.add g (-k.total));
  k.total <- 0;
  flushed

let keyed_streams (k : keyed) = List.rev k.order

let keyed_metrics (k : keyed) =
  {
    (Metrics.merge (List.map Engine.metrics (keyed_streams k))) with
    Metrics.max_simultaneous_instances = k.max_total;
  }

(* Deterministic key→shard routing: [Hashtbl.hash] is structural and
   stable within a program run, so the same key always lands on the same
   worker and each worker sees a fixed, order-preserved subsequence of
   the input. Per-pool execution is then byte-identical to the
   sequential layout — the pools are fully independent, and every pool
   still consumes exactly its key's events, in order. *)
let shard_index ~shards kv = Hashtbl.hash kv mod shards

let create ?(options = Engine.default_options) ?key automaton =
  let key =
    match key with Some k -> k | None -> partition_key automaton
  in
  (* Resolved only for the keyed layouts: a [Single] fallback already
     reports exact |Ω| through the engine's own [population] gauge. *)
  let pop_global () =
    Option.map
      (fun tl -> Telemetry.gauge tl "population.global")
      options.Engine.telemetry
  in
  let pools =
    match key with
    | None -> Single (Engine.create ~options automaton)
    | Some field when options.Engine.domains <= 1 ->
        Keyed (make_keyed ?pop_global:(pop_global ()) field)
    | Some field ->
        let pop_global = pop_global () in
        let shards =
          Array.init options.Engine.domains (fun _ ->
              make_keyed ?pop_global field)
        in
        (* Spans and histograms are single-writer, so each shard's engine
           streams record through their own forked child; only the atomic
           [pop_global] gauge is shared across domains. *)
        let shard_opts =
          Array.init options.Engine.domains (fun _ ->
              match options.Engine.telemetry with
              | None -> options
              | Some tl ->
                  {
                    options with
                    Engine.telemetry = Some (Telemetry.fork tl);
                  })
        in
        let batches =
          Array.init options.Engine.domains (fun _ -> { events = []; len = 0 })
        in
        let batch_hist =
          Option.map
            (fun tl -> Telemetry.histogram tl "pool.batch_events")
            options.Engine.telemetry
        in
        (* Workers discard per-event completions: raw emissions stay in
           each engine stream and are collected by [emitted]/[close]
           after a synchronization point. *)
        let pool =
          Domain_pool.create ?telemetry:options.Engine.telemetry
            ~domains:options.Engine.domains (fun i es ->
              Array.iter
                (fun e ->
                  ignore
                    (feed_keyed ~options:shard_opts.(i) ~automaton shards.(i) e))
                es)
        in
        Sharded { field; shards; batches; pool; batch_hist; flushed = false }
  in
  { automaton; options; pools }

let key st =
  match st.pools with
  | Single _ -> None
  | Keyed k -> Some k.field
  | Sharded s -> Some s.field

let n_domains st =
  match st.pools with
  | Single _ | Keyed _ -> 1
  | Sharded s -> Array.length s.shards

let n_pools st =
  match st.pools with
  | Single _ -> 1
  | Keyed k -> Hashtbl.length k.pools
  | Sharded s ->
      Array.fold_left
        (fun acc (k : keyed) -> acc + Hashtbl.length k.pools)
        0 s.shards

let flush_batch ?hist pool batches i =
  let b = batches.(i) in
  if b.len > 0 then begin
    (match hist with
    | None -> ()
    | Some h -> Telemetry.Histogram.observe h b.len);
    let arr = Array.of_list (List.rev b.events) in
    b.events <- [];
    b.len <- 0;
    Domain_pool.send pool i arr
  end

let flush_all ?hist pool batches =
  Array.iteri (fun i _ -> flush_batch ?hist pool batches i) batches

let feed st e =
  match st.pools with
  | Single s -> Engine.feed s e
  | Keyed k -> feed_keyed ~options:st.options ~automaton:st.automaton k e
  | Sharded s ->
      if s.flushed then
        invalid_arg "Partitioned.feed: stream is closed"
      else begin
        let kv = Event.get e s.field in
        let i = shard_index ~shards:(Array.length s.shards) kv in
        let b = s.batches.(i) in
        b.events <- e :: b.events;
        b.len <- b.len + 1;
        if b.len >= batch_size then flush_batch ?hist:s.batch_hist s.pool s.batches i;
        (* Completions are reported at [close]/[emitted]: the worker
           consumes the event asynchronously. *)
        []
      end

let close st =
  match st.pools with
  | Single s -> Engine.close s
  | Keyed k -> close_keyed k
  | Sharded s ->
      if not s.flushed then flush_all ?hist:s.batch_hist s.pool s.batches;
      Domain_pool.shutdown s.pool;
      if s.flushed then []
      else begin
        s.flushed <- true;
        List.concat_map close_keyed (Array.to_list s.shards)
      end

let ordered_streams st =
  match st.pools with
  | Single s -> [ s ]
  | Keyed k -> keyed_streams k
  | Sharded s ->
      (* A no-op once the pool is shut down; otherwise pushes any
         buffered events and blocks until the workers drain, making
         shard state safe to read. *)
      if not s.flushed then flush_all ?hist:s.batch_hist s.pool s.batches;
      Domain_pool.quiesce s.pool;
      List.concat_map keyed_streams (Array.to_list s.shards)

let emitted st = List.concat_map Engine.emitted (ordered_streams st)

let population st =
  match st.pools with
  | Single s -> Engine.population s
  | Keyed k -> k.total
  | Sharded s ->
      if not s.flushed then flush_all ?hist:s.batch_hist s.pool s.batches;
      Domain_pool.quiesce s.pool;
      Array.fold_left (fun acc (k : keyed) -> acc + k.total) 0 s.shards

let metrics st =
  match st.pools with
  | Single s -> Engine.metrics s
  | Keyed k -> keyed_metrics k
  | Sharded s ->
      if not s.flushed then flush_all ?hist:s.batch_hist s.pool s.batches;
      Domain_pool.quiesce s.pool;
      Metrics.merge (List.map keyed_metrics (Array.to_list s.shards))

let run ?(options = Engine.default_options) automaton events =
  let p = Automaton.pattern automaton in
  let st = create ~options automaton in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let matches =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy p raw
    else raw
  in
  { Engine.matches; raw; metrics = metrics st }

let run_relation ?options automaton relation =
  run ?options automaton (Relation.to_seq relation)
