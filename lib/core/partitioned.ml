open Ses_event
open Ses_pattern

(* A transition is key-pinned when its condition set forces the bound
   event's key field to equal the key of an event already in the buffer:
   an equality on (key, key) between the transition's variable and a
   variable of the source state. Reflexive conditions do not pin (they
   compare the new event with itself), and neither does anything
   involving an unbound variable — condition attachment already excludes
   those. *)
let pinned key (tr : Automaton.transition) =
  List.exists
    (fun (c : Condition.t) ->
      c.op = Predicate.Eq
      && Schema.Field.equal c.field key
      && (match c.rhs with
         | Condition.Var (_, f') -> Schema.Field.equal f' key
         | Condition.Const _ -> false)
      &&
      match Condition.other_var c tr.var with
      | Some v' -> Varset.mem v' tr.src
      | None -> false)
    tr.conds

let candidate_fields p =
  List.sort_uniq compare
    (List.filter_map
       (fun (c : Condition.t) ->
         match c.rhs with
         | Condition.Var (_, f')
           when c.op = Predicate.Eq && Schema.Field.equal c.field f'
                && c.field <> Schema.Field.Timestamp ->
             Some c.field
         | Condition.Var _ | Condition.Const _ -> None)
       (Pattern.conditions p))

(* A negation guard is key-pinned when it equates the forbidden event's
   key with an earlier positive variable's key: only same-key events can
   then kill, so per-key pools stay equivalent. *)
let negation_pinned p key =
  List.for_all
    (fun (_, nv) ->
      List.exists
        (fun (c : Condition.t) ->
          c.op = Predicate.Eq
          && Schema.Field.equal c.field key
          && (match c.rhs with
             | Condition.Var (_, f') -> Schema.Field.equal f' key
             | Condition.Const _ -> false)
          && Condition.other_var c nv <> None)
        (Pattern.conditions_on p nv))
    (Pattern.negations p)

let partition_key automaton =
  let p = Automaton.pattern automaton in
  let non_start =
    List.filter
      (fun (tr : Automaton.transition) ->
        not (Varset.is_empty tr.src))
      (Automaton.transitions automaton)
  in
  List.find_opt
    (fun field ->
      List.for_all (pinned field) non_start && negation_pinned p field)
    (candidate_fields p)

let sum_metrics ~max_total streams =
  let add acc st =
    let m = Engine.metrics st in
    {
      Metrics.events_seen = acc.Metrics.events_seen + m.Metrics.events_seen;
      events_filtered = acc.Metrics.events_filtered + m.Metrics.events_filtered;
      instances_created =
        acc.Metrics.instances_created + m.Metrics.instances_created;
      max_simultaneous_instances = 0;
      transitions_fired = acc.Metrics.transitions_fired + m.Metrics.transitions_fired;
      instances_expired = acc.Metrics.instances_expired + m.Metrics.instances_expired;
      instances_killed = acc.Metrics.instances_killed + m.Metrics.instances_killed;
      matches_emitted = acc.Metrics.matches_emitted + m.Metrics.matches_emitted;
    }
  in
  let summed = List.fold_left add Metrics.zero streams in
  { summed with Metrics.max_simultaneous_instances = max_total }

let run ?(options = Engine.default_options) automaton events =
  let p = Automaton.pattern automaton in
  match partition_key automaton with
  | None -> Engine.run ~options automaton events
  | Some field ->
      let pools : (Value.t, Engine.stream) Hashtbl.t = Hashtbl.create 32 in
      let stream_options = { options with Engine.finalize = false } in
      let total = ref 0 in
      let max_total = ref 0 in
      Seq.iter
        (fun e ->
          let key = Event.get e field in
          let st =
            match Hashtbl.find_opt pools key with
            | Some st -> st
            | None ->
                let st = Engine.create ~options:stream_options automaton in
                Hashtbl.add pools key st;
                st
          in
          let before = Engine.population st in
          ignore (Engine.feed st e);
          total := !total - before + Engine.population st;
          if !total > !max_total then max_total := !total)
        events;
      let streams = Hashtbl.fold (fun _ st acc -> st :: acc) pools [] in
      List.iter (fun st -> ignore (Engine.close st)) streams;
      let raw = List.concat_map Engine.emitted streams in
      let matches =
        if options.Engine.finalize then
          Substitution.finalize ~policy:options.Engine.policy p raw
        else raw
      in
      {
        Engine.matches;
        raw;
        metrics = sum_metrics ~max_total:!max_total streams;
      }

let run_relation ?options automaton relation =
  run ?options automaton (Relation.to_seq relation)
