open Ses_event
open Ses_pattern

(* A transition is key-pinned when its condition set forces the bound
   event's key field to equal the key of an event already in the buffer:
   an equality on (key, key) between the transition's variable and a
   variable of the source state. Reflexive conditions do not pin (they
   compare the new event with itself), and neither does anything
   involving an unbound variable — condition attachment already excludes
   those. *)
let pinned key (tr : Automaton.transition) =
  List.exists
    (fun (c : Condition.t) ->
      c.op = Predicate.Eq
      && Schema.Field.equal c.field key
      && (match c.rhs with
         | Condition.Var (_, f') -> Schema.Field.equal f' key
         | Condition.Const _ -> false)
      &&
      match Condition.other_var c tr.var with
      | Some v' -> Varset.mem v' tr.src
      | None -> false)
    tr.conds

let candidate_fields p =
  List.sort_uniq Schema.Field.compare
    (List.filter_map
       (fun (c : Condition.t) ->
         match c.rhs with
         | Condition.Var (_, f')
           when c.op = Predicate.Eq && Schema.Field.equal c.field f'
                && c.field <> Schema.Field.Timestamp ->
             Some c.field
         | Condition.Var _ | Condition.Const _ -> None)
       (Pattern.conditions p))

(* A negation guard is key-pinned when it equates the forbidden event's
   key with an earlier positive variable's key: only same-key events can
   then kill, so per-key pools stay equivalent. *)
let negation_pinned p key =
  List.for_all
    (fun (_, nv) ->
      List.exists
        (fun (c : Condition.t) ->
          c.op = Predicate.Eq
          && Schema.Field.equal c.field key
          && (match c.rhs with
             | Condition.Var (_, f') -> Schema.Field.equal f' key
             | Condition.Const _ -> false)
          && Condition.other_var c nv <> None)
        (Pattern.conditions_on p nv))
    (Pattern.negations p)

let partition_key automaton =
  let p = Automaton.pattern automaton in
  let non_start =
    List.filter
      (fun (tr : Automaton.transition) ->
        not (Varset.is_empty tr.src))
      (Automaton.transitions automaton)
  in
  List.find_opt
    (fun field ->
      List.for_all (pinned field) non_start && negation_pinned p field)
    (candidate_fields p)

(* Incremental interface: the instance pool splits lazily — a key's pool
   is opened the first time one of its events arrives. [keyed] is the
   unit of both the sequential layout (one [keyed] holds every key) and
   the domain-sharded layout (one [keyed] per worker domain, holding the
   keys hashed to it); in the sharded case it is touched only by its
   owning worker while the pool runs. *)

type keyed = {
  field : Schema.Field.t;
  pools : (Value.t, Engine.stream) Hashtbl.t;
  mutable order : Engine.stream list;  (* creation order, newest first *)
  mutable total : int;
  mutable max_total : int;
  pop_global : Telemetry.Gauge.t option;
      (* the cross-shard population gauge, shared by every [keyed] of a
         stream: atomic delta-adds from each shard make its peak the
         true global |Ω| peak (at event granularity), where the merged
         [max_total]s only bound it from below. *)
}

let make_keyed ?pop_global field =
  {
    field;
    pools = Hashtbl.create 32;
    order = [];
    total = 0;
    max_total = 0;
    pop_global;
  }

(* Events travel to the workers in per-shard batches through a
   {!Domain_pool.batcher}: a mutex/condition handshake per event would
   cost more than the engine work it ships. The buffer limit is
   [options.batch_size]; quiesce/shutdown flush partial batches through
   the pool's registered flushers. *)

type pools =
  | Single of Engine.stream
  | Keyed of keyed
  | Sharded of {
      field : Schema.Field.t;
      shards : keyed array;
      batcher : Event.t Domain_pool.batcher;  (* producer-side buffers *)
      pool : Event.t array Domain_pool.t;
      mutable flushed : bool;  (* the domains have been joined *)
    }

type stream = {
  automaton : Automaton.t;
  options : Engine.options;
  pools : pools;
}

let pool_of ~options ~automaton (k : keyed) kv =
  match Hashtbl.find_opt k.pools kv with
  | Some pool -> pool
  | None ->
      let pool = Engine.create ~options automaton in
      Hashtbl.add k.pools kv pool;
      k.order <- pool :: k.order;
      pool

(* [Engine.population] is an O(1) counter read on the default indexed
   store, so maintaining the cross-pool total per feed is cheap even
   with many pools. *)
let account (k : keyed) delta =
  k.total <- k.total + delta;
  if k.total > k.max_total then k.max_total <- k.total;
  match k.pop_global with
  | None -> ()
  | Some g -> Telemetry.Gauge.add g delta

let feed_keyed ~options ~automaton (k : keyed) e =
  let pool = pool_of ~options ~automaton k (Event.get e k.field) in
  let before = Engine.population pool in
  let completed = Engine.feed pool e in
  account k (Engine.population pool - before);
  completed

(* Route a chunk to its per-key pools as sub-batches: events are grouped
   by key value and each pool consumes its sub-array through
   {!Engine.feed_batch}, so the per-batch amortizations compose with
   partitioning. Pools are independent and each still sees exactly its
   key's events in arrival order; only the accounting granularity
   changes — [total]/[max_total] and the global gauge move once per
   (pool, chunk) instead of once per event, so the recorded peak is a
   lower bound on the per-event one. *)
let feed_keyed_batch ~options ~automaton (k : keyed) (es : Event.t array) =
  if Array.length es = 0 then []
  else begin
    let groups : (Value.t, Event.t list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    (* key first-appearance order, newest first *)
    Array.iter
      (fun e ->
        let kv = Event.get e k.field in
        match Hashtbl.find_opt groups kv with
        | Some sub -> sub := e :: !sub
        | None ->
            Hashtbl.add groups kv (ref [ e ]);
            order := kv :: !order)
      es;
    List.concat_map
      (fun kv ->
        let sub = Array.of_list (List.rev !(Hashtbl.find groups kv)) in
        let pool = pool_of ~options ~automaton k kv in
        let before = Engine.population pool in
        let completed = Engine.feed_batch pool sub in
        account k (Engine.population pool - before);
        completed)
      (List.rev !order)
  end

let close_keyed (k : keyed) =
  let flushed =
    List.concat_map (fun pool -> Engine.close pool) (List.rev k.order)
  in
  (match k.pop_global with
  | None -> ()
  | Some g -> Telemetry.Gauge.add g (-k.total));
  k.total <- 0;
  flushed

let keyed_streams (k : keyed) = List.rev k.order

let keyed_metrics (k : keyed) =
  {
    (Metrics.merge (List.map Engine.metrics (keyed_streams k))) with
    Metrics.max_simultaneous_instances = k.max_total;
  }

(* Deterministic key→shard routing: [Hashtbl.hash] is structural and
   stable within a program run, so the same key always lands on the same
   worker and each worker sees a fixed, order-preserved subsequence of
   the input. Per-pool execution is then byte-identical to the
   sequential layout — the pools are fully independent, and every pool
   still consumes exactly its key's events, in order. This is the one
   audited routing site where representation hashing is the point
   ([Value.t] keys are canonical by construction), hence the allow. *)
let shard_index ~shards kv =
  (Hashtbl.hash kv [@ses.allow "hashtbl-hash"]) mod shards

let create ?(options = Engine.default_options) ?key automaton =
  let key =
    match key with Some k -> k | None -> partition_key automaton
  in
  (* Resolved only for the keyed layouts: a [Single] fallback already
     reports exact |Ω| through the engine's own [population] gauge. *)
  let pop_global () =
    Option.map
      (fun tl -> Telemetry.gauge tl "population.global")
      options.Engine.telemetry
  in
  let pools =
    match key with
    | None -> Single (Engine.create ~options automaton)
    | Some field when options.Engine.domains <= 1 ->
        Keyed (make_keyed ?pop_global:(pop_global ()) field)
    | Some field ->
        let pop_global = pop_global () in
        let shards =
          Array.init options.Engine.domains (fun _ ->
              make_keyed ?pop_global field)
        in
        (* Spans and histograms are single-writer, so each shard's engine
           streams record through their own forked child; only the atomic
           [pop_global] gauge is shared across domains. *)
        let shard_opts =
          Array.init options.Engine.domains (fun _ ->
              match options.Engine.telemetry with
              | None -> options
              | Some tl ->
                  {
                    options with
                    Engine.telemetry = Some (Telemetry.fork tl);
                  })
        in
        let batch_hist =
          Option.map
            (fun tl -> Telemetry.histogram tl "pool.batch_events")
            options.Engine.telemetry
        in
        (* Workers discard per-batch completions: raw emissions stay in
           each engine stream and are collected by [emitted]/[close]
           after a synchronization point. *)
        let pool =
          Domain_pool.create ?telemetry:options.Engine.telemetry
            ~domains:options.Engine.domains (fun i es ->
              ignore
                (feed_keyed_batch ~options:shard_opts.(i) ~automaton
                   shards.(i) es))
        in
        let batcher =
          Domain_pool.batcher ?hist:batch_hist
            ~limit:(max 1 options.Engine.batch_size) pool
        in
        Sharded { field; shards; batcher; pool; flushed = false }
  in
  { automaton; options; pools }

let key st =
  match st.pools with
  | Single _ -> None
  | Keyed k -> Some k.field
  | Sharded s -> Some s.field

let n_domains st =
  match st.pools with
  | Single _ | Keyed _ -> 1
  | Sharded s -> Array.length s.shards

let n_pools st =
  match st.pools with
  | Single _ -> 1
  | Keyed k -> Hashtbl.length k.pools
  | Sharded s ->
      Array.fold_left
        (fun acc (k : keyed) -> acc + Hashtbl.length k.pools)
        0 s.shards

let feed st e =
  match st.pools with
  | Single s -> Engine.feed s e
  | Keyed k -> feed_keyed ~options:st.options ~automaton:st.automaton k e
  | Sharded s ->
      if s.flushed then
        invalid_arg "Partitioned.feed: stream is closed"
      else begin
        let kv = Event.get e s.field in
        Domain_pool.push s.batcher
          (shard_index ~shards:(Array.length s.shards) kv)
          e;
        (* Completions are reported at [close]/[emitted]: the worker
           consumes the event asynchronously. *)
        []
      end

let feed_batch st es =
  match st.pools with
  | Single s -> Engine.feed_batch s es
  | Keyed k ->
      feed_keyed_batch ~options:st.options ~automaton:st.automaton k es
  | Sharded s ->
      if s.flushed then
        invalid_arg "Partitioned.feed_batch: stream is closed"
      else begin
        (* The batcher re-chunks per shard, so routing a whole input
           batch costs one pass; each worker receives sub-batches of its
           own keys only, in arrival order. *)
        let shards = Array.length s.shards in
        Array.iter
          (fun e ->
            let kv = Event.get e s.field in
            Domain_pool.push s.batcher (shard_index ~shards kv) e)
          es;
        []
      end

let close st =
  match st.pools with
  | Single s -> Engine.close s
  | Keyed k -> close_keyed k
  | Sharded s ->
      (* [shutdown] flushes the registered batcher before closing the
         queues, so a partial producer batch is never stranded. *)
      Domain_pool.shutdown s.pool;
      if s.flushed then []
      else begin
        s.flushed <- true;
        List.concat_map close_keyed (Array.to_list s.shards)
      end

let ordered_streams st =
  match st.pools with
  | Single s -> [ s ]
  | Keyed k -> keyed_streams k
  | Sharded s ->
      (* A no-op once the pool is shut down; otherwise flushes any
         buffered events and blocks until the workers drain, making
         shard state safe to read. *)
      Domain_pool.quiesce s.pool;
      List.concat_map keyed_streams (Array.to_list s.shards)

let emitted st = List.concat_map Engine.emitted (ordered_streams st)

let population st =
  match st.pools with
  | Single s -> Engine.population s
  | Keyed k -> k.total
  | Sharded s ->
      Domain_pool.quiesce s.pool;
      Array.fold_left (fun acc (k : keyed) -> acc + k.total) 0 s.shards

let metrics st =
  match st.pools with
  | Single s -> Engine.metrics s
  | Keyed k -> keyed_metrics k
  | Sharded s ->
      Domain_pool.quiesce s.pool;
      Metrics.merge (List.map keyed_metrics (Array.to_list s.shards))

let run ?(options = Engine.default_options) automaton events =
  let p = Automaton.pattern automaton in
  let st = create ~options automaton in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let matches =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy p raw
    else raw
  in
  { Engine.matches; raw; metrics = metrics st }

let run_relation ?options automaton relation =
  run ?options automaton (Relation.to_seq relation)
