open Ses_pattern

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let of_automaton ?(conditions = true) ?(dead = fun _ -> false) a =
  let p = Automaton.pattern a in
  let name_of = Pattern.var_name p in
  let state_name q = Format.asprintf "%a" (Varset.pp ~name_of) q in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph ses {\n  rankdir=LR;\n  node [shape=circle];\n";
  out "  __start [shape=point, style=invis];\n";
  List.iter
    (fun q ->
      let shape =
        if Varset.equal q (Automaton.accept a) then "doublecircle" else "circle"
      in
      out "  \"%s\" [shape=%s];\n" (escape (state_name q)) shape)
    (Automaton.states a);
  out "  __start -> \"%s\";\n" (escape (state_name (Automaton.start a)));
  (* Negation guards: a dashed octagon attached to the boundary state an
     instance sits in while the guard is armed. *)
  List.iter
    (fun (b, nv) ->
      let prefix =
        Varset.of_list
          (List.concat_map (Pattern.set_vars p) (List.init (b + 1) Fun.id))
      in
      let label =
        if conditions then
          Format.asprintf "%s, {%a}" (name_of nv)
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
               (Condition.pp (Pattern.schema p) ~name_of))
            (Pattern.conditions_on p nv)
        else name_of nv
      in
      out "  \"guard_%d\" [shape=octagon, style=dashed, label=\"%s\"];\n" b
        (escape label);
      out "  \"%s\" -> \"guard_%d\" [style=dashed, arrowhead=none];\n"
        (escape (state_name prefix))
        b)
    (Pattern.negations p);
  List.iter
    (fun (tr : Automaton.transition) ->
      let label =
        if conditions then
          Format.asprintf "%s, {%a}" (name_of tr.var)
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
               (Condition.pp (Pattern.schema p) ~name_of))
            tr.conds
        else name_of tr.var
      in
      let attrs =
        if dead tr then "style=dashed, color=gray, fontcolor=gray, " else ""
      in
      out "  \"%s\" -> \"%s\" [%slabel=\"%s\"];\n"
        (escape (state_name tr.src))
        (escape (state_name tr.tgt))
        attrs (escape label))
    (Automaton.transitions a);
  out "}\n";
  Buffer.contents buf
