(** Event filtering (Sec. 4.5).

    Events that cannot satisfy any constant condition of the pattern are
    dropped before the automaton instances iterate over them. The paper's
    filter keeps an event iff it satisfies {e at least one} condition of
    the form [v.A φ C] in Θ; that is only sound when every variable carries
    at least one constant condition (an unconstrained variable matches any
    event), so both filters degrade as follows when some variable has no
    constant condition: [Paper] keeps everything, [Strong] ignores the
    unconstrained variables (they accept any event anyway, so its
    per-variable test is vacuously true — it also keeps everything).

    [Strong] is this repository's sound refinement: keep an event iff there
    is a variable whose {e whole} set of constant conditions the event
    satisfies. Every event a sound run can bind is kept by both filters,
    and everything [Strong] keeps, [Paper] keeps too. *)

open Ses_event
open Ses_pattern

type mode =
  | No_filter
  | Paper  (** satisfies ≥ 1 constant condition *)
  | Strong  (** satisfies all constant conditions of some variable *)

type t

val make :
  ?extra:(int * (Schema.Field.t * Predicate.op * Value.t) list) list ->
  Pattern.t ->
  mode ->
  t
(** [extra] supplies inferred constant constraints per variable id
    (positive or negated), conjoined with the variable's own [v.A φ C]
    conditions. They must be {e implied}: sound only when every event a
    run could bind to that variable necessarily satisfies them (e.g.
    constants propagated through equality chains by the static
    analyzer). A variable with no syntactic constant condition but an
    inferred one counts as constrained, so extras can turn a degenerate
    filter into an effective one. *)

val strong_clauses :
  ?extra:(int * (Schema.Field.t * Predicate.op * Value.t) list) list ->
  Pattern.t ->
  (Schema.Field.t * Predicate.op * Value.t) list list option
(** The per-variable constant-condition conjunctions behind [Strong]
    (negated variables included): an event passes iff it satisfies every
    atom of {e some} clause. [None] when a variable carries no constant
    condition — the filter is then ineffective. Exposed so the store
    layer can push the same predicate down into its scan (see
    {!Ses_harness.Stream_runner}). *)

val satisfies_atom :
  Event.t -> Schema.Field.t * Predicate.op * Value.t -> bool
(** One constant atom [v.A φ C] against one event — the unit both the
    filters here and {!Predicate_index}'s shared evaluation are built
    from. *)

val mode : t -> mode

val effective : t -> bool
(** Whether the filter can ever drop an event ([No_filter] and the
    degenerate cases are ineffective). *)

val keep : t -> Event.t -> bool

val pp_mode : Format.formatter -> mode -> unit
