(** Sets of event variables, the states of a SES automaton (Definition 3).

    Variables are identified by their id in the owning pattern (0 ≤ id <
    {!Ses_pattern.Pattern.max_vars}); a set is an [int] bitmask, so all
    operations are constant time and sets are directly comparable. *)

type t = private int

val empty : t

val is_empty : t -> bool

val singleton : int -> t

val add : int -> t -> t

val remove : int -> t -> t

val mem : int -> t -> bool

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is a ⊆ b. *)

val cardinal : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val of_list : int list -> t

val to_list : t -> int list
(** Ascending variable ids. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val subsets : t -> t list
(** All 2^|s| subsets of [s], the state set of a single event set pattern's
    automaton (Sec. 4.2.1). Ordered by ascending bitmask. *)

val pp : name_of:(int -> string) -> Format.formatter -> t -> unit
(** Prints like the paper's node labels, e.g. [cdp+]; the empty set prints
    as [∅]. *)
