(** Multi-query execution: several SES automata over one event feed.

    Event-processing deployments register many patterns against the same
    stream (the publish/subscribe setting of Cayuga, which the paper cites
    as the home of instance-indexing techniques). [Multi] fans a single
    chronological feed out to one {!Executor} per registered query and
    collects completions per query name. Results are identical to running
    each automaton separately over the same feed. Queries can mix
    strategies: a partitionable pattern can run per-key pools while its
    neighbours run the plain engine. *)

open Ses_event

type t

val create :
  ?options:Engine.options ->
  ?strategy:Executor.strategy ->
  (string * Automaton.t) list ->
  t
(** Registers named queries, all under one strategy (default [`Plain]).
    Names must be distinct and non-empty; raises [Invalid_argument]
    otherwise. The options apply to every query. *)

val create_mixed :
  ?options:Engine.options ->
  (string * Automaton.t * Executor.strategy) list ->
  t
(** Per-query strategies. *)

val names : t -> string list

val strategy_names : t -> (string * string) list
(** Query name paired with the executor name serving it. *)

val feed : t -> Event.t -> (string * Substitution.t list) list
(** Pushes one event to every query; returns the raw substitutions whose
    instances completed on this event, grouped by query name (queries with
    no completions are omitted). *)

val close : t -> (string * Substitution.t list) list
(** Flushes accepting instances of every query. *)

val population : t -> int
(** Total live instances across all queries. *)

val outcomes : t -> (string * Engine.outcome) list
(** Per-query finalized outcomes (callable after [close]). *)

val run :
  ?options:Engine.options ->
  ?strategy:Executor.strategy ->
  (string * Automaton.t) list ->
  Event.t Seq.t ->
  (string * Engine.outcome) list
(** Feed-all + close + outcomes in one call. *)
