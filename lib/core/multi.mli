(** Multi-query execution: several SES automata over one event feed.

    Event-processing deployments register many patterns against the same
    stream (the publish/subscribe setting of Cayuga, which the paper cites
    as the home of instance-indexing techniques). [Multi] evaluates a
    single chronological feed against every registered query and collects
    completions per query name. Results are identical to running each
    automaton separately over the same feed. Queries can mix strategies:
    a partitionable pattern can run per-key pools while its neighbours
    run the plain engine.

    {b Shared plan (default).} With [shared = true], registrations are
    compiled into one {!Shared_plan}: the distinct constant predicates
    across all queries' filters are evaluated once per event by a
    predicate index (routing each event only to the queries it can
    affect), byte-identical registrations collapse to one executor with
    per-name fan-out, and eligible queries agreeing on a leading run of
    event sets share one instance population over that prefix. All of it
    is result-transparent: per-query matches, raw emissions and metrics
    equal the [shared = false] independent execution. Set
    [shared = false] to force one isolated executor per query — the
    differential baseline the equivalence tests compare against.

    {b Domain-parallel mode.} When [options.domains > 1] (clamped to the
    number of queries), worker domains process the broadcast feed in
    parallel. In shared mode, registrations are split into unit-whole
    shards and each worker builds its own shared plan over its shard (on
    its own domain); in independent mode, queries are pinned round-robin.
    Either way each query is still evaluated by one domain, strictly
    sequentially, so per-query results are identical to the sequential
    mode. Operationally (mirroring {!Partitioned}'s sharded mode):
    [feed] returns [[]] — completions surface at [close]/{!outcomes} —
    [population]/{!outcomes} quiesce the workers first, [close] joins
    the domains and forbids further feeding, and worker exceptions
    re-raise at the next call. Executors inside a parallel Multi are
    created with [domains = 1]: queries do not nest domain pools. *)

open Ses_event

type t

val create :
  ?options:Engine.options ->
  ?strategy:Executor.strategy ->
  ?shared:bool ->
  (string * Automaton.t) list ->
  t
(** Registers named queries, all under one strategy (default [`Plain]).
    Names must be distinct and non-empty; raises [Invalid_argument]
    otherwise. The options apply to every query. [shared] (default
    [true]) selects the shared-plan backend. *)

val create_mixed :
  ?options:Engine.options ->
  ?shared:bool ->
  (string * Automaton.t * Executor.strategy) list ->
  t
(** Per-query strategies. *)

val register : t -> string * Automaton.t * Executor.strategy -> unit
(** Adds a query to a live sequential query set. Before the first event
    is fed, a shared backend rebuilds its (still empty) plan so the
    newcomer shares fully; afterwards it runs as an independent executor
    beside the plan (it must not observe events fed before it existed).
    Raises [Invalid_argument] on an empty or duplicate name, or on a
    domain-parallel query set (those are fixed at creation). *)

val unregister : t -> string -> Engine.outcome
(** Removes a query from a live sequential query set and returns its
    finalized outcome to date, accepting instances flushed in close
    order. The remaining queries' future matches and metrics are as if
    the set had been built without it (see {!Shared_plan.retire}).
    Raises [Invalid_argument] on an unknown name or a domain-parallel
    query set. *)

val names : t -> string list

val strategy_names : t -> (string * string) list
(** Query name paired with the executor name serving it. *)

val n_domains : t -> int
(** Worker domains in use (1 in sequential mode). *)

val feed : t -> Event.t -> (string * Substitution.t list) list
(** Pushes one event to every query; returns the raw substitutions whose
    instances completed on this event, grouped by query name in
    registration order (queries with no completions are omitted). *)

val feed_batch : t -> Event.t array -> (string * Substitution.t list) list
(** Pushes a chronological chunk; completions are aggregated over the
    chunk. In domain-parallel mode the chunk enters the broadcast
    batcher and [[]] is returned; per-query results and metrics stay
    identical to the sequential mode. *)

val close : t -> (string * Substitution.t list) list
(** Flushes accepting instances of every query. *)

val population : t -> int
(** Total live instances across all queries (aliased registrations each
    count their own, as independent execution would). *)

val outcomes : t -> (string * Engine.outcome) list
(** Per-query finalized outcomes (callable after [close]). *)

val merged_metrics : t -> Metrics.snapshot
(** The cross-query view, via {!Metrics.merge_replicas}: every query
    observes the whole feed (shared-mode metrics are compensated to the
    independent view), so the input counters take the max and the work
    counters (including the instance peaks) sum. Deterministic in both
    sequential and domain-parallel mode. *)

val shared_stats : t -> Shared_plan.stats list
(** The shared plan's sharing summary — merge groups, aliases, template
    groups, predicate-index hit rate. One entry per worker plan in
    domain-parallel shared mode, a singleton in sequential shared mode,
    [[]] for [shared = false]. *)

val run :
  ?options:Engine.options ->
  ?strategy:Executor.strategy ->
  ?shared:bool ->
  (string * Automaton.t) list ->
  Event.t Seq.t ->
  (string * Engine.outcome) list
(** Feed-all + close + outcomes in one call. *)
