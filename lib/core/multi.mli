(** Multi-query execution: several SES automata over one event feed.

    Event-processing deployments register many patterns against the same
    stream (the publish/subscribe setting of Cayuga, which the paper cites
    as the home of instance-indexing techniques). [Multi] fans a single
    chronological feed out to one {!Executor} per registered query and
    collects completions per query name. Results are identical to running
    each automaton separately over the same feed. Queries can mix
    strategies: a partitionable pattern can run per-key pools while its
    neighbours run the plain engine.

    {b Domain-parallel mode.} When [options.domains > 1] (clamped to the
    number of queries), the queries are pinned round-robin to that many
    {!Domain_pool} worker domains and [feed] broadcasts each event to
    every worker; each query is still evaluated by one domain, strictly
    sequentially, so per-query results are identical to the sequential
    mode. Operationally (mirroring {!Partitioned}'s sharded mode):
    [feed] returns [[]] — completions surface at [close]/{!outcomes} —
    [population]/{!outcomes} quiesce the workers first, [close] joins
    the domains and forbids further feeding, and worker exceptions
    re-raise at the next call. Executors inside a parallel Multi are
    created with [domains = 1]: queries do not nest domain pools. *)

open Ses_event

type t

val create :
  ?options:Engine.options ->
  ?strategy:Executor.strategy ->
  (string * Automaton.t) list ->
  t
(** Registers named queries, all under one strategy (default [`Plain]).
    Names must be distinct and non-empty; raises [Invalid_argument]
    otherwise. The options apply to every query. *)

val create_mixed :
  ?options:Engine.options ->
  (string * Automaton.t * Executor.strategy) list ->
  t
(** Per-query strategies. *)

val names : t -> string list

val strategy_names : t -> (string * string) list
(** Query name paired with the executor name serving it. *)

val n_domains : t -> int
(** Worker domains in use (1 in sequential mode). *)

val feed : t -> Event.t -> (string * Substitution.t list) list
(** Pushes one event to every query; returns the raw substitutions whose
    instances completed on this event, grouped by query name (queries with
    no completions are omitted). *)

val feed_batch : t -> Event.t array -> (string * Substitution.t list) list
(** Pushes a chronological chunk to every query through
    {!Executor.feed_batch}. In domain-parallel mode the chunk enters the
    broadcast batcher and [[]] is returned; each worker still feeds its
    executors event by event, so per-query results and metrics stay
    identical to the sequential mode. *)

val close : t -> (string * Substitution.t list) list
(** Flushes accepting instances of every query. *)

val population : t -> int
(** Total live instances across all queries. *)

val outcomes : t -> (string * Engine.outcome) list
(** Per-query finalized outcomes (callable after [close]). *)

val merged_metrics : t -> Metrics.snapshot
(** The cross-query view, via {!Metrics.merge_replicas}: every query
    consumes the whole feed, so the input counters take the max and the
    work counters (including the instance peaks) sum. Deterministic in
    both sequential and domain-parallel mode. *)

val run :
  ?options:Engine.options ->
  ?strategy:Executor.strategy ->
  (string * Automaton.t) list ->
  Event.t Seq.t ->
  (string * Engine.outcome) list
(** Feed-all + close + outcomes in one call. *)
