(** Graphviz export of SES automata, for rendering figures like the
    paper's Figure 5. *)

val of_automaton :
  ?conditions:bool -> ?dead:(Automaton.transition -> bool) -> Automaton.t -> string
(** DOT source. With [conditions] (default [true]) edges are labelled with
    the bound variable and its condition set; otherwise only with the
    variable. The start state gets an incoming arrow from a hidden node and
    the accepting state a double circle, as in the paper's drawings.
    Negation guards render as dashed octagons attached to the boundary
    state they arm. Transitions on which [dead] holds (default: none)
    render dashed and gray — used by [ses analyze --dot] to show what the
    static analyzer would prune. *)
