type t = int

let empty = 0

let is_empty s = s = 0

let singleton v = 1 lsl v

let add v s = s lor (1 lsl v)

let remove v s = s land lnot (1 lsl v)

let mem v s = s land (1 lsl v) <> 0

let union = ( lor )

let inter = ( land )

let diff a b = a land lnot b

let subset a b = a land b = a

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + (s land 1)) (s lsr 1) in
  count 0 s

let equal = Int.equal

let compare = Int.compare

let hash = Int.hash

let of_list vs = List.fold_left (fun s v -> add v s) empty vs

let to_list s =
  let rec collect acc v s =
    if s = 0 then List.rev acc
    else collect (if s land 1 <> 0 then v :: acc else acc) (v + 1) (s lsr 1)
  in
  collect [] 0 s

let fold f s init = List.fold_left (fun acc v -> f v acc) init (to_list s)

let subsets s =
  (* Enumerates submasks in ascending order by walking the dense rank of
     each member bit. *)
  let members = Array.of_list (to_list s) in
  let n = Array.length members in
  List.init (1 lsl n) (fun mask ->
      let rec build acc i =
        if i >= n then acc
        else build (if mask land (1 lsl i) <> 0 then add members.(i) acc else acc) (i + 1)
      in
      build empty 0)

let pp ~name_of ppf s =
  if is_empty s then Format.pp_print_string ppf "\xe2\x88\x85"
  else List.iter (fun v -> Format.pp_print_string ppf (name_of v)) (to_list s)
