(** Canonical structural signatures of SES automata.

    The shared-plan layer of {!Multi} groups registered queries by
    structure: byte-identical [(automaton, strategy)] registrations alias
    to one executor, queries identical up to constants form a template,
    and queries whose automata agree on a leading run of event sets merge
    their prefix evaluation. All three detections reduce to string
    equality on the serializations below — collision-free (constants are
    length-prefixed, states print as bitmasks) and independent of
    variable names and condition spans, neither of which affects
    execution. *)

open Ses_event
open Ses_pattern

val full : Automaton.t -> string
(** Serializes everything execution observes: τ, per-set variables with
    quantifier bounds, negations (with the negated variable masked, so
    ids assigned to negations don't matter) and every state's outgoing
    transitions with their condition sets. Two automata with equal [full]
    signatures produce identical emissions, matches and layout-invariant
    metrics on every feed. *)

val skeleton : Automaton.t -> string * Value.t list
(** Like {!full} with every constant widened to a typed slot marker; the
    constants are returned in serialization order. Queries with equal
    skeletons are instances of one template — the shared plan's
    constant-dispatch grouping. *)

val prefix_vars : Pattern.t -> int -> Varset.t
(** Variables of the first [depth] event sets. *)

val prefix_signature : Automaton.t -> int -> string
(** Serializes the automaton's restriction to the first [depth] event
    sets: prefix variables and quantifiers, negations with boundary
    ≤ depth − 2 (those killing strictly inside the prefix) and the
    transitions between prefix states. Queries with equal depth-[d]
    prefix signatures run those first [d] sets identically and can share
    one instance population up to the merge state. Raises
    [Invalid_argument] when [depth] is not in [1 .. n_sets]. *)
