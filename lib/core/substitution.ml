open Ses_event
open Ses_pattern

type binding = int * Event.t

type t = binding list

(* Pairs of ints ordered lexicographically — the comparator for both
   canonical (variable, seq) entries and (timestamp, seq) keys. *)
let compare_int_pair (a, b) (a', b') =
  let c = Int.compare a a' in
  if c <> 0 then c else Int.compare b b'

let compare_canonical = List.compare compare_int_pair

let canonical subst =
  List.sort_uniq compare_int_pair
    (List.map (fun (v, e) -> (v, Event.seq e)) subst)

let equal a b = canonical a = canonical b

(* Set inclusion over two canonical forms (sorted, duplicate-free):
   a single merge pass instead of a List.mem per element. *)
let rec subset_canon a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: a', y :: b' ->
      let c = compare_int_pair x y in
      if c = 0 then subset_canon a' b'
      else if c > 0 then subset_canon a b'
      else false

let subset a b = subset_canon (canonical a) (canonical b)

let proper_subset a b =
  let ca = canonical a and cb = canonical b in
  List.length ca < List.length cb && subset_canon ca cb

let bindings_of subst v =
  List.filter_map (fun (v', e) -> if v' = v then Some e else None) subst

let events subst = List.map snd subst

let min_binding subst =
  let earlier (_, e) (_, e') = Event.compare_chrono e e' < 0 in
  match subst with
  | [] -> None
  | b :: rest ->
      Some (List.fold_left (fun best b' -> if earlier b' best then b' else best) b rest)

let min_ts subst = Option.map (fun (_, e) -> Event.ts e) (min_binding subst)

let span subst =
  match subst with
  | [] -> 0
  | (_, e0) :: _ ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (_, e) ->
            (Time.min lo (Event.ts e), Time.max hi (Event.ts e)))
          (Event.ts e0, Event.ts e0) subst
      in
      Time.span lo hi

let well_formed p subst =
  let seqs = List.map (fun (_, e) -> Event.seq e) subst in
  List.length (List.sort_uniq Int.compare seqs) = List.length seqs
  && List.for_all
       (fun v ->
         let n = List.length (bindings_of subst v) in
         n >= Pattern.min_count p v
         &&
         match Pattern.max_count p v with
         | Some m -> n <= m
         | None -> true)
       (List.init (Pattern.n_vars p) Fun.id)

let satisfies_theta p subst =
  let bindings = bindings_of subst in
  List.for_all (fun c -> Condition.holds c bindings) (Pattern.conditions p)

let satisfies_order p subst =
  List.for_all
    (fun (v, e) ->
      List.for_all
        (fun (v', e') ->
          if Pattern.set_of_var p v < Pattern.set_of_var p v' then
            Time.( <. ) (Event.ts e) (Event.ts e')
          else true)
        subst)
    subst

let satisfies_window p subst = span subst <= Pattern.tau p

let satisfies_negations p events subst =
  let bindings = bindings_of subst in
  let start_ts = Option.value ~default:0 (min_ts subst) in
  let n = Array.length events in
  (* The array is chronologically ordered, so sequence numbers ascend
     with the index: binary search for the first position past a given
     sequence number. *)
  let first_seq_above target =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Event.seq events.(mid) <= target then go (mid + 1) hi
        else go lo mid
    in
    go 0 n
  in
  List.for_all
    (fun (boundary, nv) ->
      let before, after =
        List.partition
          (fun (v, _) -> Pattern.set_of_var p v <= boundary)
          subst
      in
      let last_before =
        List.fold_left (fun acc (_, e) -> max acc (Event.seq e)) min_int before
      in
      (* A trailing guard (after the last set) stays armed until the match
         window closes; the engine's expiry check runs before the guard,
         so an event outside τ can no longer kill. *)
      let first_after =
        List.fold_left (fun acc (_, e) -> min acc (Event.seq e)) max_int after
      in
      let conds = Pattern.conditions_on p nv in
      (* Only events strictly inside the (last_before, first_after)
         sequence window can violate the guard; scan just that slice of
         the array instead of the whole relation. *)
      let lo = if last_before = min_int then 0 else first_seq_above last_before in
      let rec ok i =
        i >= n
        ||
        let e = events.(i) in
        let seq = Event.seq e in
        seq >= first_after
        || ((seq <= last_before
            || Time.span (Event.ts e) start_ts > Pattern.tau p
            || not
                 (List.for_all
                    (fun c ->
                      Condition.holds_binding c ~var:nv ~event:e bindings)
                    conds))
           && ok (i + 1))
      in
      ok lo)
    (Pattern.negations p)

let satisfies_1_3 p subst =
  well_formed p subst && satisfies_theta p subst && satisfies_order p subst
  && satisfies_window p subst

let same_min_binding a b =
  match min_binding a, min_binding b with
  | Some (v, e), Some (v', e') -> v = v' && Event.equal e e'
  | None, None -> true
  | None, Some _ | Some _, None -> false

let maximal_within ~candidates subst =
  not
    (List.exists
       (fun cand -> same_min_binding subst cand && proper_subset subst cand)
       candidates)

(* Shared by [skip_till_next_within] and the finalize pipeline: for each
   variable, the chronologically sorted timestamps (with sequence
   numbers) of every event the candidate set binds to it. Built once per
   candidate set, then each γ pair-check is a binary search over the
   variable's array instead of a rescan of every candidate. *)
let bindings_by_var candidates =
  let table = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (v, e) ->
         let l = Option.value ~default:[] (Hashtbl.find_opt table v) in
         Hashtbl.replace table v ((Event.ts e, Event.seq e) :: l)))
    candidates;
  let sorted = Hashtbl.create 16 in
  Hashtbl.iter
    (fun v l ->
      let arr = Array.of_list l in
      Array.sort compare_int_pair arr;
      Hashtbl.replace sorted v arr)
    table;
  sorted

(* A pair v/e, v'/e' of γ is violated when some candidate binds v' to an
   event strictly between e and e' that γ itself does not use. [by_var]
   indexes the candidate bindings; [in_subst] answers (v, seq) ∈ γ. *)
let skip_till_pairs_ok ~by_var ~in_subst subst =
  let pair_ok (_, e) (v', e') =
    match Hashtbl.find_opt by_var v' with
    | None -> true
    | Some arr ->
        let t_lo = Event.ts e and t_hi = Event.ts e' in
        (* First entry with timestamp > t_lo. *)
        let n = Array.length arr in
        let rec lower lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if fst arr.(mid) <= t_lo then lower (mid + 1) hi else lower lo mid
        in
        let rec scan i =
          i >= n
          ||
          let ts, seq = arr.(i) in
          (not (Time.( <. ) ts t_hi)) || (in_subst v' seq && scan (i + 1))
        in
        scan (lower 0 n)
  in
  List.for_all (fun b -> List.for_all (fun b' -> pair_ok b b') subst) subst

let skip_till_next_within ~candidates subst =
  let cs = canonical subst in
  let in_subst v seq = List.mem (v, seq) cs in
  skip_till_pairs_ok ~by_var:(bindings_by_var candidates) ~in_subst subst

type policy =
  | Operational
  | Literal

(* Finalization works on an annotated view of each candidate — the
   canonical form, its size and the minT binding are computed once per
   substitution instead of once per comparison. *)
type annotated = {
  subst : t;
  canon : (int * int) list;  (** sorted, duplicate-free *)
  canon_size : int;
  min_key : (int * int) option;  (** (var, seq) of the minT binding *)
  min_t : Time.t option;
}

let annotate s =
  let canon = canonical s in
  {
    subst = s;
    canon;
    canon_size = List.length canon;
    min_key =
      Option.map (fun (v, e) -> (v, Event.seq e)) (min_binding s);
    min_t = min_ts s;
  }

let dedup_annotated substs =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun s ->
      let a = annotate s in
      if Hashtbl.mem seen a.canon then None
      else begin
        Hashtbl.add seen a.canon ();
        Some a
      end)
    substs

(* Candidates indexed by every (var, seq) binding they contain. Any
   strict superset of γ contains each of γ's bindings, so the posting
   list of γ's rarest binding is a complete set of subsumption suspects —
   in practice a tiny fraction of the candidate set. *)
let posting_index annotated =
  let index = Hashtbl.create 256 in
  List.iter
    (fun a ->
      List.iter
        (fun key ->
          let l = Option.value ~default:[] (Hashtbl.find_opt index key) in
          Hashtbl.replace index key (a :: l))
        a.canon)
    annotated;
  index

let rarest_posting index a =
  let shorter l l' =
    match (l, l') with
    | None, x | x, None -> x
    | Some l, Some l' ->
        Some (if List.length l <= List.length l' then l else l')
  in
  List.fold_left
    (fun best key -> shorter best (Hashtbl.find_opt index key))
    None a.canon

let subsumed candidates index a =
  if a.canon_size = 0 then
    (* The empty substitution is a strict subset of any non-empty one. *)
    List.exists (fun b -> b.canon_size > 0) candidates
  else
    match rarest_posting index a with
    | None -> false
    | Some suspects ->
        List.exists
          (fun b -> b.canon_size > a.canon_size && subset_canon a.canon b.canon)
          suspects

let finalize ?(policy = Operational) p substs =
  ignore p;
  let candidates = dedup_annotated substs in
  let survivors =
    match policy with
    | Operational ->
        let index = posting_index candidates in
        List.filter (fun a -> not (subsumed candidates index a)) candidates
    | Literal ->
        (* Condition 5 compares only substitutions sharing a minT
           binding: group by it and look for strict supersets inside the
           group. Condition 4's pair check runs against the per-variable
           binding index. *)
        let groups = Hashtbl.create 64 in
        List.iter
          (fun a ->
            let l =
              Option.value ~default:[] (Hashtbl.find_opt groups a.min_key)
            in
            Hashtbl.replace groups a.min_key (a :: l))
          candidates;
        let maximal a =
          List.for_all
            (fun b ->
              b.canon_size <= a.canon_size
              || not (subset_canon a.canon b.canon))
            (Option.value ~default:[] (Hashtbl.find_opt groups a.min_key))
        in
        let by_var = bindings_by_var (List.map (fun a -> a.subst) candidates) in
        let skip_ok a =
          let members = Hashtbl.create 16 in
          List.iter (fun key -> Hashtbl.replace members key ()) a.canon;
          skip_till_pairs_ok ~by_var
            ~in_subst:(fun v seq -> Hashtbl.mem members (v, seq))
            a.subst
        in
        List.filter (fun a -> maximal a && skip_ok a) candidates
  in
  List.map
    (fun a -> a.subst)
    (List.sort
       (fun a b ->
         let c = Option.compare Time.compare a.min_t b.min_t in
         if c <> 0 then c else compare_canonical a.canon b.canon)
       survivors)

let pp p ppf subst =
  let items =
    List.map (fun (v, e) -> Pattern.var_name p v ^ "/" ^ Event.name e) subst
  in
  Format.fprintf ppf "{%s}" (String.concat ", " items)
