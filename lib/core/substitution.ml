open Ses_event
open Ses_pattern

type binding = int * Event.t

type t = binding list

let canonical subst =
  List.sort_uniq compare
    (List.map (fun (v, e) -> (v, Event.seq e)) subst)

let equal a b = canonical a = canonical b

let subset a b =
  let cb = canonical b in
  List.for_all (fun p -> List.mem p cb) (canonical a)

let proper_subset a b = subset a b && not (subset b a)

let bindings_of subst v =
  List.filter_map (fun (v', e) -> if v' = v then Some e else None) subst

let events subst = List.map snd subst

let min_binding subst =
  let earlier (_, e) (_, e') = Event.compare_chrono e e' < 0 in
  match subst with
  | [] -> None
  | b :: rest ->
      Some (List.fold_left (fun best b' -> if earlier b' best then b' else best) b rest)

let min_ts subst = Option.map (fun (_, e) -> Event.ts e) (min_binding subst)

let span subst =
  match subst with
  | [] -> 0
  | (_, e0) :: _ ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (_, e) ->
            (Time.min lo (Event.ts e), Time.max hi (Event.ts e)))
          (Event.ts e0, Event.ts e0) subst
      in
      Time.span lo hi

let well_formed p subst =
  let seqs = List.map (fun (_, e) -> Event.seq e) subst in
  List.length (List.sort_uniq Int.compare seqs) = List.length seqs
  && List.for_all
       (fun v ->
         let n = List.length (bindings_of subst v) in
         n >= Pattern.min_count p v
         &&
         match Pattern.max_count p v with
         | Some m -> n <= m
         | None -> true)
       (List.init (Pattern.n_vars p) Fun.id)

let satisfies_theta p subst =
  let bindings = bindings_of subst in
  List.for_all (fun c -> Condition.holds c bindings) (Pattern.conditions p)

let satisfies_order p subst =
  List.for_all
    (fun (v, e) ->
      List.for_all
        (fun (v', e') ->
          if Pattern.set_of_var p v < Pattern.set_of_var p v' then
            Time.( <. ) (Event.ts e) (Event.ts e')
          else true)
        subst)
    subst

let satisfies_window p subst = span subst <= Pattern.tau p

let satisfies_negations p events subst =
  let bindings = bindings_of subst in
  let start_ts = Option.value ~default:0 (min_ts subst) in
  List.for_all
    (fun (boundary, nv) ->
      let before, after =
        List.partition
          (fun (v, _) -> Pattern.set_of_var p v <= boundary)
          subst
      in
      let last_before =
        List.fold_left (fun acc (_, e) -> max acc (Event.seq e)) min_int before
      in
      (* A trailing guard (after the last set) stays armed until the match
         window closes; the engine's expiry check runs before the guard,
         so an event outside τ can no longer kill. *)
      let first_after =
        List.fold_left (fun acc (_, e) -> min acc (Event.seq e)) max_int after
      in
      let conds = Pattern.conditions_on p nv in
      Array.for_all
        (fun e ->
          let seq = Event.seq e in
          seq <= last_before || seq >= first_after
          || Time.span (Event.ts e) start_ts > Pattern.tau p
          || not
               (List.for_all
                  (fun c -> Condition.holds_binding c ~var:nv ~event:e bindings)
                  conds))
        events)
    (Pattern.negations p)

let satisfies_1_3 p subst =
  well_formed p subst && satisfies_theta p subst && satisfies_order p subst
  && satisfies_window p subst

let same_min_binding a b =
  match min_binding a, min_binding b with
  | Some (v, e), Some (v', e') -> v = v' && Event.equal e e'
  | None, None -> true
  | None, Some _ | Some _, None -> false

let maximal_within ~candidates subst =
  not
    (List.exists
       (fun cand -> same_min_binding subst cand && proper_subset subst cand)
       candidates)

let skip_till_next_within ~candidates subst =
  let cs = canonical subst in
  let in_subst v seq = List.mem (v, seq) cs in
  (* A pair v/e, v'/e' of γ is violated when some candidate binds v' to an
     event strictly between e and e' that γ itself does not use. *)
  let pair_ok (_, e) (v', e') =
    not
      (List.exists
         (fun cand ->
           List.exists
             (fun (v'', e'') ->
               v'' = v'
               && Time.( <. ) (Event.ts e) (Event.ts e'')
               && Time.( <. ) (Event.ts e'') (Event.ts e')
               && not (in_subst v' (Event.seq e'')))
             cand)
         candidates)
  in
  List.for_all (fun b -> List.for_all (fun b' -> pair_ok b b') subst) subst

let dedup substs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun s ->
      let key = canonical s in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    substs

type policy =
  | Operational
  | Literal

let finalize ?(policy = Operational) p substs =
  ignore p;
  let candidates = dedup substs in
  let keep =
    match policy with
    | Operational ->
        fun s ->
          not (List.exists (fun cand -> proper_subset s cand) candidates)
    | Literal ->
        fun s ->
          maximal_within ~candidates s && skip_till_next_within ~candidates s
  in
  let survivors = List.filter keep candidates in
  let key s = (min_ts s, canonical s) in
  List.sort (fun a b -> compare (key a) (key b)) survivors

let pp p ppf subst =
  let items =
    List.map (fun (v, e) -> Pattern.var_name p v ^ "/" ^ Event.name e) subst
  in
  Format.fprintf ppf "{%s}" (String.concat ", " items)
