(** Strategy selection for executing a SES automaton.

    The library exposes several result-transparent execution levers: the
    Sec. 4.5 event filter (and its strong variant), the per-event
    constant-condition pre-check, and hash-partitioned instance pools.
    [plan] inspects a pattern's automaton and picks the strongest
    applicable combination; [execute] runs it. The choice never changes
    the matches — only the work — and is explained by [describe] together
    with the complexity-case classification of Sec. 4.4 that predicts the
    instance-pool growth. *)

open Ses_pattern

(** What the static analyzer (when registered) contributes to a plan:
    a result-preserving reduction of the automaton and constant
    constraints implied by the pattern's equality chains. *)
type analysis = {
  automaton : Automaton.t;
      (** the pruned automaton; physically the input automaton when the
          analyzer found nothing to remove *)
  filter_extras :
    (int * (Ses_event.Schema.Field.t * Ses_event.Predicate.op * Ses_event.Value.t) list)
    list;
      (** inferred constant constraints per variable id, fed to
          {!Event_filter.make} and {!Engine.options.filter_extras} *)
  domains :
    (int * (Ses_event.Schema.Field.t * Ses_event.Predicate.Domain.t) list) list;
      (** per variable id, the analyzer's narrowing of each field that
          every binding of the variable is guaranteed to satisfy at bind
          time (non-top entries only) — consulted by {!choose_access} to
          shrink index probes beyond the syntactic constant conditions *)
  pruned_transitions : int;
  pruned_states : int;
  never_matches : bool;
      (** the analyzer proved the pattern unsatisfiable: execution is
          still sound (it finds nothing), planning merely reports it *)
}

val set_analyzer : (Automaton.t -> analysis) -> unit
(** Registers the static analyzer, like
    {!Ses_baseline.Brute_force.register} registers the baseline
    executor: [Ses_analysis] depends on this library, so it injects its
    planning hook here. Subsequent {!plan} calls consult it. *)

val clear_analyzer : unit -> unit
(** Removes the registered analyzer. Primarily for differential tests
    that compare planning with and without analysis. *)

val analyze : Automaton.t -> analysis option
(** Runs the registered analyzer, if any. *)

type t = {
  filter : Event_filter.mode;
      (** [Strong] when the pattern's constant conditions (together with
          any analyzer-inferred ones) make the filter effective,
          [No_filter] otherwise *)
  partition : Ses_event.Schema.Field.t option;
      (** the {!Partitioned} key, when its criterion holds — evaluated
          on the pruned automaton when an analyzer is registered, so
          pruning can unlock partitioning *)
  precheck_constants : bool;  (** always [true]; listed for transparency *)
  cases : Exclusivity.case list;
      (** per event set pattern, Sec. 4.4 — [Exclusive] predicts a
          constant pool, [Overlapping] factorial branching,
          [Overlapping_with_groups] window-dependent growth *)
  analysis : analysis option;
      (** the analyzer's contribution; [None] when none is registered *)
}

val plan : Automaton.t -> t

(** {1 Access paths}

    How a stored relation's events reach the planned stream: a full
    chronological scan, or a union of secondary-index probes — one per
    variable — materializing only the events some variable's constant
    clause accepts. The probe union is exactly the event set the plan's
    [Strong] filter would keep, so feeding it (τ-clipped, see
    {!Ses_harness.Access_exec}) to the engine preserves every match; the
    cost model below merely decides whether that sparse set is worth
    assembling. *)

type probe = {
  probe_var : int;  (** variable id (positive or negated) *)
  probe_var_name : string;
  probe_field : int;  (** attribute position probed *)
  probe_attr_name : string;
  probe_keys : Ses_event.Value.t list option;
      (** [Some ks]: probe exactly these keys (equality atoms); [None]:
          enumerate the index's keys and probe those inside
          [probe_domain] *)
  probe_domain : Ses_event.Predicate.Domain.t;
      (** conjunction of the clause's atoms on the probed field,
          intersected with the analyzer's narrowing *)
  probe_residual :
    (Ses_event.Schema.Field.t * Ses_event.Predicate.op * Ses_event.Value.t) list;
      (** the variable's whole constant clause, re-checked on every
          posting — the probe only over-approximates *)
  probe_required : bool;
      (** positive variable: every match binds it (min_count ≥ 1), so
          its candidates bound the τ-clip *)
  probe_estimate : int;  (** statistics-estimated candidate rows *)
}

type access =
  | Scan of string  (** with the reason indexing was not chosen *)
  | Index_probe of { probes : probe list; estimate : int; rows : int }

type access_mode = [ `Auto | `Scan | `Index ]

val access_mode_of_string : string -> (access_mode, string) result

val access_mode_name : access_mode -> string

val choose_access :
  ?mode:access_mode -> stats:Ses_event.Stats.t -> t -> Automaton.t -> access
(** The cost-based decision (default mode [`Auto]). Indexing requires
    every variable — negated ones included — to carry a constant clause
    with at least one non-timestamp atom (otherwise the candidate union
    is unsound or unbounded, and the result is [Scan] with the reason).
    Per variable the cheapest single-attribute probe is chosen by the
    catalog statistics; [`Auto] then takes the index path only when the
    summed estimate clears a 2× selectivity margin over the row count.
    [`Index] forces the index path whenever it is sound; [`Scan] always
    scans. *)

val describe_access : ?actual:int -> access -> string
(** Human-readable access-path lines ("access path: …"), with the
    measured candidate count when [?actual] is given — estimated vs
    actual is how a misleading histogram shows up. *)

val routing_clauses :
  t ->
  Automaton.t ->
  (Ses_event.Schema.Field.t * Ses_event.Predicate.op * Ses_event.Value.t)
  list
  list
  option
(** The strong-filter clauses of the planned execution — the pattern's
    constant conditions conjoined with the analyzer's inferred extras.
    [Some] exactly when the plan chose the [Strong] filter; {!Multi}'s
    shared plan registers them with its {!Predicate_index} so routed
    delivery drops exactly the events the planned stream's own filter
    would drop. *)

val options_with : t -> Engine.options -> Engine.options
(** [options] with the plan's levers layered on: its [filter],
    [filter_extras] and [precheck_constants] fields are overridden by
    the plan (the caller still supplies the finalize policy). *)

val effective_automaton : t -> Automaton.t -> Automaton.t
(** The automaton a planned execution actually runs: the analyzer's
    pruned automaton when the plan carries one for the same pattern, the
    given automaton otherwise. *)

(** {1 Incremental interface}

    The planned execution as a push-based stream, implementing
    {!Executor.EXECUTOR} — this is the "auto" strategy of the executor
    registry: a {!Partitioned} stream (which embeds the plain-engine
    fallback) running under the planned options. *)

type stream

val create : ?options:Engine.options -> Automaton.t -> stream
(** Plans the automaton and opens the planned stream. *)

val create_with : ?options:Engine.options -> t -> Automaton.t -> stream
(** Opens a stream under an already-computed plan. *)

val plan_of : stream -> t

val feed : stream -> Ses_event.Event.t -> Substitution.t list

val feed_batch : stream -> Ses_event.Event.t array -> Substitution.t list
(** Delegates to {!Partitioned.feed_batch} on the planned stream. *)

val close : stream -> Substitution.t list

val emitted : stream -> Substitution.t list

val population : stream -> int

val metrics : stream -> Metrics.snapshot

(** {1 Batch interface} *)

val execute :
  ?options:Engine.options ->
  t ->
  Automaton.t ->
  Ses_event.Event.t Seq.t ->
  Engine.outcome
(** Runs incrementally ([create_with] + feed + close) with the planned
    levers layered onto [options]. *)

val run : ?options:Engine.options -> Automaton.t -> Ses_event.Event.t Seq.t -> Engine.outcome
(** [execute (plan a) a] — the "just make it fast" entry point. *)

val run_relation :
  ?options:Engine.options -> Automaton.t -> Ses_event.Relation.t -> Engine.outcome

val describe : ?access:access -> t -> string
(** Multi-line human-readable summary; [?access] adds the chosen access
    path (via {!describe_access}). *)
