(** Strategy selection for executing a SES automaton.

    The library exposes several result-transparent execution levers: the
    Sec. 4.5 event filter (and its strong variant), the per-event
    constant-condition pre-check, and hash-partitioned instance pools.
    [plan] inspects a pattern's automaton and picks the strongest
    applicable combination; [execute] runs it. The choice never changes
    the matches — only the work — and is explained by [describe] together
    with the complexity-case classification of Sec. 4.4 that predicts the
    instance-pool growth. *)

open Ses_pattern

type t = {
  filter : Event_filter.mode;
      (** [Strong] when the pattern's constant conditions make any filter
          effective, [No_filter] otherwise *)
  partition : Ses_event.Schema.Field.t option;
      (** the {!Partitioned} key, when its criterion holds *)
  precheck_constants : bool;  (** always [true]; listed for transparency *)
  cases : Exclusivity.case list;
      (** per event set pattern, Sec. 4.4 — [Exclusive] predicts a
          constant pool, [Overlapping] factorial branching,
          [Overlapping_with_groups] window-dependent growth *)
}

val plan : Automaton.t -> t

val options_with : t -> Engine.options -> Engine.options
(** [options] with the plan's levers layered on: its [filter] and
    [precheck_constants] fields are overridden by the plan (the caller
    still supplies the finalize policy). *)

(** {1 Incremental interface}

    The planned execution as a push-based stream, implementing
    {!Executor.EXECUTOR} — this is the "auto" strategy of the executor
    registry: a {!Partitioned} stream (which embeds the plain-engine
    fallback) running under the planned options. *)

type stream

val create : ?options:Engine.options -> Automaton.t -> stream
(** Plans the automaton and opens the planned stream. *)

val create_with : ?options:Engine.options -> t -> Automaton.t -> stream
(** Opens a stream under an already-computed plan. *)

val plan_of : stream -> t

val feed : stream -> Ses_event.Event.t -> Substitution.t list

val close : stream -> Substitution.t list

val emitted : stream -> Substitution.t list

val population : stream -> int

val metrics : stream -> Metrics.snapshot

(** {1 Batch interface} *)

val execute :
  ?options:Engine.options ->
  t ->
  Automaton.t ->
  Ses_event.Event.t Seq.t ->
  Engine.outcome
(** Runs incrementally ([create_with] + feed + close) with the planned
    levers layered onto [options]. *)

val run : ?options:Engine.options -> Automaton.t -> Ses_event.Event.t Seq.t -> Engine.outcome
(** [execute (plan a) a] — the "just make it fast" entry point. *)

val run_relation :
  ?options:Engine.options -> Automaton.t -> Ses_event.Relation.t -> Engine.outcome

val describe : t -> string
(** Multi-line human-readable summary. *)
