(** Execution tracing — the paper's Figure 6 as a first-class artifact.

    Figure 6 walks through seven selected steps of the running example's
    execution: which transition each input event triggers, which events an
    instance ignores, and when the accepting state is reached. [run]
    records that narrative for a whole execution; {!pp_observation} prints
    one step in the same spirit, e.g.

    {v
    read e4: take ({c,d} --p+--> {c,d,p+}), buffer {c/e1, d/e3, p+/e4}
    read e6: ignore at {c,d,p+}, buffer {c/e1, d/e3, p+/e4}
    v} *)

open Ses_event
open Ses_pattern

val run :
  ?options:Engine.options ->
  Automaton.t ->
  Relation.t ->
  Engine.observation list * Engine.outcome
(** Runs the engine with a recording observer; returns the observations in
    execution order together with the normal outcome. *)

val pp_observation :
  Pattern.t -> Format.formatter -> Engine.observation -> unit

val pp :
  Pattern.t -> Format.formatter -> Engine.observation list -> unit
(** One observation per line. *)

val for_buffer :
  Substitution.t -> Engine.observation list -> Engine.observation list
(** Restricts a trace to the steps that belong to the instance line that
    produced the given substitution: steps whose buffer is a prefix-subset
    of it (plus its emission). This reconstructs Figure 6, which follows
    the single instance producing patient 1's match. *)
