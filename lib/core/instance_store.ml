open Ses_event

(* Buckets hold their instances as a list sorted ascending by
   (ts_of, seq_of); [n] caches the length. Pending inserts accumulate
   newest-first on the bucket itself; [dirty] lists the buckets with a
   non-empty pending list so [commit] visits exactly those — staging
   through an interned handle therefore costs no hashtable probe at
   all. [total] counts committed instances only. *)

type 'a bucket = {
  mutable items : 'a list;
  mutable n : int;
  mutable pending : 'a list;  (* staged inserts, newest first *)
}

type 'a t = {
  ts_of : 'a -> Time.t;
  seq_of : 'a -> int;
  buckets : (Varset.t, 'a bucket) Hashtbl.t;
  mutable dirty : 'a bucket list;  (* buckets with pending inserts *)
  mutable total : int;
}

let create ~ts_of ~seq_of () =
  {
    ts_of;
    seq_of;
    buckets = Hashtbl.create 32;
    dirty = [];
    total = 0;
  }

let size st = st.total

let bucket st q = Hashtbl.find_opt st.buckets q

let bucket_size st q =
  match bucket st q with None -> 0 | Some b -> b.n

(* A handle interns the bucket record itself: resolving one per automaton
   state at stream creation removes every per-event hashtable probe from
   the engine's hot loop. Handles stay valid for the lifetime of the
   store — [clear] empties buckets in place instead of dropping them. *)
type 'a handle = { owner : 'a t; hb : 'a bucket }

let fresh_bucket () = { items = []; n = 0; pending = [] }

let handle st q =
  match Hashtbl.find_opt st.buckets q with
  | Some b -> { owner = st; hb = b }
  | None ->
      let b = fresh_bucket () in
      Hashtbl.replace st.buckets q b;
      { owner = st; hb = b }

let handle_size h = h.hb.n

(* Bucket order: ascending (ts_of, seq_of), compared without building
   tuples — this comparison runs once per instance per merge. *)
let before st a b =
  let ta = st.ts_of a and tb = st.ts_of b in
  let c = Time.compare ta tb in
  if c <> 0 then c < 0 else st.seq_of a <= st.seq_of b

let pop_expired_bucket st b ~expired =
  let rec split acc = function
    | x :: rest when expired x -> split (x :: acc) rest
    | rest -> (acc, rest)
  in
  let dead_rev, alive = split [] b.items in
  match dead_rev with
  | [] -> []
  | _ ->
      let k = List.length dead_rev in
      b.items <- alive;
      b.n <- b.n - k;
      st.total <- st.total - k;
      List.rev dead_rev

let pop_expired st q ~expired =
  match bucket st q with
  | None -> []
  | Some b -> pop_expired_bucket st b ~expired

let pop_expired_h h ~expired = pop_expired_bucket h.owner h.hb ~expired

let take_all_bucket st b =
  let items = b.items in
  st.total <- st.total - b.n;
  b.items <- [];
  b.n <- 0;
  items

let take_all st q =
  match bucket st q with None -> [] | Some b -> take_all_bucket st b

let take_all_h h = take_all_bucket h.owner h.hb

let put_back_bucket st b items =
  match items with
  | [] -> ()
  | _ ->
      if b.n <> 0 then invalid_arg "Instance_store.put_back: bucket not empty";
      let k = List.length items in
      b.items <- items;
      b.n <- k;
      st.total <- st.total + k

let put_back st q items =
  match items with
  | [] -> ()
  | _ ->
      let b =
        match bucket st q with
        | Some b -> b
        | None ->
            let b = fresh_bucket () in
            Hashtbl.replace st.buckets q b;
            b
      in
      put_back_bucket st b items

let put_back_h h items = put_back_bucket h.owner h.hb items

let stage_bucket st b a =
  (match b.pending with [] -> st.dirty <- b :: st.dirty | _ :: _ -> ());
  b.pending <- a :: b.pending

let stage_h h a = stage_bucket h.owner h.hb a

let stage st q a = stage_bucket st (handle st q).hb a

let merge st xs ys =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], l | l, [] -> List.rev_append acc l
    | x :: xs', y :: ys' ->
        if before st x y then go (x :: acc) xs' ys else go (y :: acc) xs ys'
  in
  go [] xs ys

let commit st =
  match st.dirty with
  | [] -> ()
  | dirty ->
      st.dirty <- [];
      List.iter
        (fun b ->
          let incoming =
            List.sort
              (fun a b -> if before st a b then -1 else 1)
              b.pending
          in
          let k = List.length incoming in
          b.pending <- [];
          b.items <- merge st b.items incoming;
          b.n <- b.n + k;
          st.total <- st.total + k)
        dirty

let fold_buckets f st init =
  let states =
    Hashtbl.fold
      (fun q b acc -> if b.n > 0 then q :: acc else acc)
      st.buckets []
  in
  List.fold_left
    (fun acc q -> f q (Option.get (bucket st q)).items acc)
    init
    (List.sort Varset.compare states)

let to_list st =
  List.rev (fold_buckets (fun _ items acc -> List.rev_append items acc) st [])

let clear st =
  (* Empty in place: interned bucket handles must survive a clear. *)
  Hashtbl.iter
    (fun _ b ->
      b.items <- [];
      b.n <- 0;
      b.pending <- [])
    st.buckets;
  st.dirty <- [];
  st.total <- 0
