open Ses_event

type atom = Schema.Field.t * Predicate.op * Value.t

(* One strong-filter clause: a conjunction of constant atoms over one
   variable of one query. The query is relevant to an event iff some
   clause is fully satisfied. [c_atoms] holds deduplicated atom ids with
   the clause's anchor first. *)
type clause = { c_query : int; c_atoms : int array }

(* Equality dispatch for one field: anchor atoms of the form [A = C],
   keyed by the constant so a whole field's worth of anchors resolves in
   one probe of the table matching the event value's type. *)
type field_entry = {
  f_field : Schema.Field.t;
  f_int : (int, int) Hashtbl.t;
  f_str : (string, int) Hashtbl.t;
  f_float : (float, int) Hashtbl.t;
}

type t = {
  atoms : atom array;
  a_stamp : int array;  (* event stamp of the atom's last evaluation *)
  a_truth : bool array;
  subscribers : clause array array;  (* by anchor atom id *)
  fields : field_entry array;  (* fields carrying equality anchors *)
  scan_anchors : int array;  (* non-equality anchors, evaluated per event *)
  always : int list;  (* unroutable queries, relevant to every event *)
  q_stamp : int array;
  naive_cost : int;
      (* atoms the registered strong filters conjoin in total: what
         evaluating every clause of every query against one event costs
         without sharing (and without short-circuiting) *)
  mutable stamp : int;
  mutable evaluated : int;
  mutable saved : int;
}

let atom_key (field, op, v) =
  let b = Buffer.create 24 in
  (match field with
  | Schema.Field.Attr i ->
      Buffer.add_char b 'a';
      Buffer.add_string b (string_of_int i)
  | Schema.Field.Timestamp -> Buffer.add_char b 'T');
  Buffer.add_string b (Predicate.to_string op);
  (match v with
  | Value.Int i ->
      Buffer.add_char b 'i';
      Buffer.add_string b (string_of_int i)
  | Value.Float f ->
      Buffer.add_char b 'f';
      Buffer.add_string b (string_of_float f)
  | Value.Str s ->
      Buffer.add_char b 's';
      Buffer.add_string b s);
  Buffer.contents b

let create specs =
  let n_queries = Array.length specs in
  let ids = Hashtbl.create 64 in
  let atoms_rev = ref [] in
  let n_atoms = ref 0 in
  let intern atom =
    let key = atom_key atom in
    match Hashtbl.find_opt ids key with
    | Some i -> i
    | None ->
        let i = !n_atoms in
        Hashtbl.replace ids key i;
        atoms_rev := atom :: !atoms_rev;
        incr n_atoms;
        i
  in
  let always = ref [] in
  let clauses = ref [] in
  let naive_cost = ref 0 in
  Array.iteri
    (fun qid spec ->
      match spec with
      | None -> always := qid :: !always
      | Some cs ->
          if List.exists (fun c -> c = []) cs then
            (* A vacuous clause accepts every event. *)
            always := qid :: !always
          else
            List.iter
              (fun c ->
                naive_cost := !naive_cost + List.length c;
                let atom_ids =
                  List.sort_uniq Int.compare (List.map intern c)
                in
                clauses :=
                  { c_query = qid; c_atoms = Array.of_list atom_ids }
                  :: !clauses)
              cs)
    specs;
  let atoms = Array.of_list (List.rev !atoms_rev) in
  let n = Array.length atoms in
  (* Distinct equality constants per field, for anchor selectivity: the
     more values a field splits its anchors over, the fewer clauses one
     event can wake through it. *)
  let eq_values = Hashtbl.create 8 in
  Array.iter
    (fun (field, op, v) ->
      if op = Predicate.Eq then begin
        let key = atom_key (field, Predicate.Eq, Value.Int 0) in
        let seen =
          match Hashtbl.find_opt eq_values key with
          | Some set -> set
          | None ->
              let set = Hashtbl.create 16 in
              Hashtbl.replace eq_values key set;
              set
        in
        Hashtbl.replace seen (atom_key (field, Predicate.Eq, v)) ()
      end)
    atoms;
  let selectivity i =
    let field, op, _ = atoms.(i) in
    if op <> Predicate.Eq then 0
    else
      match
        Hashtbl.find_opt eq_values (atom_key (field, Predicate.Eq, Value.Int 0))
      with
      | Some set -> Hashtbl.length set
      | None -> 0
  in
  (* Anchor: the clause's most selective equality atom, else its first
     atom (by id, for determinism), which then joins the per-event scan
     list. The anchor moves to slot 0 so verification skips it. *)
  let subs = Array.make n [] in
  let scan = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let best = ref c.c_atoms.(0) in
      Array.iter
        (fun i -> if selectivity i > selectivity !best then best := i)
        c.c_atoms;
      let anchor = !best in
      let rest =
        Array.of_list
          (List.filter (fun i -> i <> anchor) (Array.to_list c.c_atoms))
      in
      let c_atoms = Array.append [| anchor |] rest in
      subs.(anchor) <- { c with c_atoms } :: subs.(anchor);
      if selectivity anchor = 0 then Hashtbl.replace scan anchor ())
    !clauses;
  let subscribers = Array.map (fun l -> Array.of_list (List.rev l)) subs in
  (* Dispatch tables over the equality anchors, one entry per field. *)
  let field_tbl = Hashtbl.create 8 in
  let field_order = ref [] in
  for i = 0 to n - 1 do
    let field, op, v = atoms.(i) in
    if op = Predicate.Eq && Array.length subscribers.(i) > 0 then begin
      let key = atom_key (field, Predicate.Eq, Value.Int 0) in
      let fe =
        match Hashtbl.find_opt field_tbl key with
        | Some fe -> fe
        | None ->
            let fe =
              {
                f_field = field;
                f_int = Hashtbl.create 16;
                f_str = Hashtbl.create 16;
                f_float = Hashtbl.create 16;
              }
            in
            Hashtbl.replace field_tbl key fe;
            field_order := fe :: !field_order;
            fe
      in
      match v with
      | Value.Int c -> Hashtbl.replace fe.f_int c i
      | Value.Str s -> Hashtbl.replace fe.f_str s i
      | Value.Float f -> Hashtbl.replace fe.f_float f i
    end
  done;
  {
    atoms;
    a_stamp = Array.make (max 1 n) 0;
    a_truth = Array.make (max 1 n) false;
    subscribers;
    fields = Array.of_list (List.rev !field_order);
    scan_anchors =
      Array.of_list
        (List.sort Int.compare (Hashtbl.fold (fun i () acc -> i :: acc) scan []));
    always = List.rev !always;
    q_stamp = Array.make (max 1 n_queries) 0;
    naive_cost = !naive_cost;
    stamp = 0;
    evaluated = 0;
    saved = 0;
  }

let atom_true t e i =
  if t.a_stamp.(i) = t.stamp then t.a_truth.(i)
  else begin
    t.a_stamp.(i) <- t.stamp;
    t.evaluated <- t.evaluated + 1;
    let v = Event_filter.satisfies_atom e t.atoms.(i) in
    t.a_truth.(i) <- v;
    v
  end

(* Anchor [i] holds on [e]: lazily verify each subscribing clause's
   remaining atoms, waking each query at most once per event. *)
let fire t e out i =
  Array.iter
    (fun c ->
      if t.q_stamp.(c.c_query) <> t.stamp then begin
        let n = Array.length c.c_atoms in
        let ok = ref true in
        let j = ref 1 in
        while !ok && !j < n do
          if not (atom_true t e c.c_atoms.(!j)) then ok := false;
          incr j
        done;
        if !ok then begin
          t.q_stamp.(c.c_query) <- t.stamp;
          out := c.c_query :: !out
        end
      end)
    t.subscribers.(i)

let relevant t e =
  t.stamp <- t.stamp + 1;
  let before = t.evaluated in
  let out = ref [] in
  Array.iter
    (fun fe ->
      t.evaluated <- t.evaluated + 1;
      let hit =
        match Event.get e fe.f_field with
        | Value.Int i -> Hashtbl.find_opt fe.f_int i
        | Value.Str s -> Hashtbl.find_opt fe.f_str s
        | Value.Float f -> Hashtbl.find_opt fe.f_float f
      in
      match hit with
      | None -> ()
      | Some a ->
          t.a_stamp.(a) <- t.stamp;
          t.a_truth.(a) <- true;
          fire t e out a)
    t.fields;
  Array.iter (fun a -> if atom_true t e a then fire t e out a) t.scan_anchors;
  let spent = t.evaluated - before in
  if t.naive_cost > spent then t.saved <- t.saved + (t.naive_cost - spent);
  t.always @ List.rev !out

let n_atoms t = Array.length t.atoms

let evaluated t = t.evaluated

let saved t = t.saved

let hit_rate t =
  let total = t.evaluated + t.saved in
  if total = 0 then 0.0 else float_of_int t.saved /. float_of_int total
