open Ses_event

type strategy =
  [ `Auto | `Plain | `Partitioned | `Par_partitioned | `Naive | `Brute_force ]

let strategies : strategy list =
  [ `Auto; `Plain; `Partitioned; `Par_partitioned; `Naive; `Brute_force ]

let strategy_name = function
  | `Auto -> "auto"
  | `Plain -> "plain"
  | `Partitioned -> "partitioned"
  | `Par_partitioned -> "par-partitioned"
  | `Naive -> "naive"
  | `Brute_force -> "brute-force"

(* Strategies whose executors may be fed the routed subsequence of the
   stream by {!Multi}'s shared plan: those whose per-event behaviour on a
   strong-clause-failing event is provably limited to expiry sweeps and
   fresh-instance accounting. The pool-splitting strategies keep their
   own per-key/per-shard accounting and the oracle baselines count
   differently, so they always see the whole feed. *)
let supports_shared_routing = function
  | `Plain | `Auto -> true
  | `Partitioned | `Par_partitioned | `Naive | `Brute_force -> false

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Ok `Auto
  | "plain" | "engine" -> Ok `Plain
  | "partitioned" -> Ok `Partitioned
  | "par-partitioned" | "par_partitioned" | "parallel" -> Ok `Par_partitioned
  | "naive" -> Ok `Naive
  | "brute-force" | "brute_force" | "bf" -> Ok `Brute_force
  | other ->
      Error
        (Printf.sprintf
           "unknown strategy %S (expected auto, plain, partitioned, \
            par-partitioned, naive or brute-force)"
           other)

module type EXECUTOR = sig
  type t

  val name : string

  val create : ?options:Engine.options -> Automaton.t -> t

  val feed : t -> Event.t -> Substitution.t list

  val feed_batch : t -> Event.t array -> Substitution.t list

  val close : t -> Substitution.t list

  val emitted : t -> Substitution.t list

  val population : t -> int

  val metrics : t -> Metrics.snapshot
end

(* Registry-wide default for executors without a native batched path:
   feed one event at a time, concatenating completions in feed order. *)
let batch_of_feed feed t es =
  let acc = ref [] in
  Array.iter (fun e -> acc := List.rev_append (feed t e) !acc) es;
  List.rev !acc

module Plain : EXECUTOR = struct
  type t = Engine.stream

  let name = "plain"

  let create = Engine.create

  let feed = Engine.feed

  let feed_batch = Engine.feed_batch

  let close = Engine.close

  let emitted = Engine.emitted

  let population = Engine.population

  let metrics = Engine.metrics
end

module Partitioned_exec : EXECUTOR = struct
  type t = Partitioned.stream

  let name = "partitioned"

  let create ?options automaton = Partitioned.create ?options automaton

  let feed = Partitioned.feed

  let feed_batch = Partitioned.feed_batch

  let close = Partitioned.close

  let emitted = Partitioned.emitted

  let population = Partitioned.population

  let metrics = Partitioned.metrics
end

(* [`Partitioned] with parallelism made unconditional: when the caller
   did not ask for a specific domain count through the options, shard
   across the machine's recommended count. Everything else — key
   detection, single-pool fallback — is [Partitioned.create]. *)
module Par_partitioned_exec : EXECUTOR = struct
  type t = Partitioned.stream

  let name = "par-partitioned"

  let create ?(options = Engine.default_options) automaton =
    let domains =
      if options.Engine.domains > 1 then options.Engine.domains
      else Domain_pool.recommended ()
    in
    Partitioned.create ~options:{ options with Engine.domains } automaton

  let feed = Partitioned.feed

  let feed_batch = Partitioned.feed_batch

  let close = Partitioned.close

  let emitted = Partitioned.emitted

  let population = Partitioned.population

  let metrics = Partitioned.metrics
end

module Auto : EXECUTOR = struct
  type t = Planner.stream

  let name = "auto"

  let create = Planner.create

  let feed = Planner.feed

  let feed_batch = Planner.feed_batch

  let close = Planner.close

  let emitted = Planner.emitted

  let population = Planner.population

  let metrics = Planner.metrics
end

module Naive_exec : EXECUTOR = struct
  type t = Naive.stream

  let name = "naive"

  let create = Naive.create

  let feed = Naive.feed

  let feed_batch = Naive.feed_batch

  let close = Naive.close

  let emitted = Naive.emitted

  let population = Naive.population

  let metrics = Naive.metrics
end

(* Uniform instrumentation over any strategy: an [ingest] span and an
   [event_ns] histogram per pushed unit — one event through [feed], a
   whole chunk through [feed_batch] — resolved once at [create] from
   [options.telemetry] (one interval read feeds both). Applied by
   [of_strategy] so every strategy — including the injected brute-force
   baseline — reports through the same probe names. *)
module Instrument (E : EXECUTOR) : EXECUTOR = struct
  type probes = {
    ingest : Telemetry.Span.t;
    event_ns : Telemetry.Histogram.t;
  }

  type t = {
    inner : E.t;
    probes : probes option;
  }

  let name = E.name

  let create ?(options = Engine.default_options) automaton =
    let inner = E.create ~options automaton in
    let probes =
      Option.map
        (fun tl ->
          {
            ingest = Telemetry.span tl "ingest";
            event_ns = Telemetry.histogram tl "event_ns";
          })
        options.Engine.telemetry
    in
    { inner; probes }

  let feed t e =
    match t.probes with
    | None -> E.feed t.inner e
    | Some p ->
        let tok = Telemetry.Span.start p.ingest in
        let out = E.feed t.inner e in
        Telemetry.Histogram.observe p.event_ns
          (Telemetry.Span.stop_elapsed p.ingest tok);
        out

  (* Batch-aggregate probes: one [ingest] span and one [event_ns] sample
     per chunk, so instrumentation overhead amortizes with batch size. *)
  let feed_batch t es =
    match t.probes with
    | None -> E.feed_batch t.inner es
    | Some p ->
        let tok = Telemetry.Span.start p.ingest in
        let out = E.feed_batch t.inner es in
        Telemetry.Histogram.observe p.event_ns
          (Telemetry.Span.stop_elapsed p.ingest tok);
        out

  let close t = E.close t.inner

  let emitted t = E.emitted t.inner

  let population t = E.population t.inner

  let metrics t = E.metrics t.inner
end

(* The brute-force baseline lives in [ses_baseline], which depends on
   this library, so its executor is injected rather than referenced:
   [Ses_baseline.Brute_force.register] installs it. *)
let brute_force : (module EXECUTOR) option ref = ref None

let register_brute_force m = brute_force := Some m

module Auto_i = Instrument (Auto)
module Plain_i = Instrument (Plain)
module Partitioned_i = Instrument (Partitioned_exec)
module Par_partitioned_i = Instrument (Par_partitioned_exec)
module Naive_i = Instrument (Naive_exec)

let of_strategy : strategy -> (module EXECUTOR) = function
  | `Auto -> (module Auto_i)
  | `Plain -> (module Plain_i)
  | `Partitioned -> (module Partitioned_i)
  | `Par_partitioned -> (module Par_partitioned_i)
  | `Naive -> (module Naive_i)
  | `Brute_force -> (
      match !brute_force with
      | Some m ->
          let module M = (val m : EXECUTOR) in
          (module Instrument (M))
      | None ->
          failwith
            "Executor: brute-force strategy not registered (call \
             Ses_baseline.Brute_force.register first)")

type packed = Packed : (module EXECUTOR with type t = 'a) * 'a -> packed

let create ?options strategy automaton =
  let (module E) = of_strategy strategy in
  Packed ((module E), E.create ?options automaton)

let name (Packed ((module E), _)) = E.name

let feed (Packed ((module E), t)) e = E.feed t e

let feed_batch (Packed ((module E), t)) es = E.feed_batch t es

let close (Packed ((module E), t)) = E.close t

let emitted (Packed ((module E), t)) = E.emitted t

let population (Packed ((module E), t)) = E.population t

let metrics (Packed ((module E), t)) = E.metrics t

let drive ?(options = Engine.default_options) exec automaton events =
  (* Chunk the sequence into [options.batch_size] arrays and push them
     through the batched path: all per-batch amortizations (engine
     prechecks, bucket handles, telemetry probes, domain-pool shipping)
     activate from here without the caller changing shape. *)
  let chunk = max 1 options.Engine.batch_size in
  (* One buffer reused for every full chunk (executors don't retain the
     array past the call — see {!EXECUTOR.feed_batch}); a fresh per-chunk
     array above ~256 words would be allocated on the major heap, and the
     resulting churn dominates the batch path's own cost. Allocated lazily
     off the first event since [Event.t] has no dummy value. *)
  let buf = ref [||] and n = ref 0 in
  let flush () =
    if !n > 0 then begin
      let arr =
        if !n = Array.length !buf then !buf else Array.sub !buf 0 !n
      in
      n := 0;
      ignore (feed_batch exec arr)
    end
  in
  Seq.iter
    (fun e ->
      if Array.length !buf = 0 then buf := Array.make chunk e;
      !buf.(!n) <- e;
      incr n;
      if !n >= chunk then flush ())
    events;
  flush ();
  ignore (close exec);
  let raw = emitted exec in
  let finalize () =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy
        (Automaton.pattern automaton) raw
    else raw
  in
  let matches =
    match options.Engine.telemetry with
    | None -> finalize ()
    | Some tl -> Telemetry.Span.record (Telemetry.span tl "finalize") finalize
  in
  { Engine.matches; raw; metrics = metrics exec }

let run ?(options = Engine.default_options) strategy automaton events =
  drive ~options (create ~options strategy automaton) automaton events

let run_relation ?options strategy automaton relation =
  run ?options strategy automaton (Relation.to_seq relation)
