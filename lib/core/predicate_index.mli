(** Global predicate index: shared per-event evaluation of the constant
    atoms of many queries' strong filters.

    Independent multi-query execution runs each query's event filter
    against each event — N clause evaluations per event, most of them
    over the same handful of atoms. The index registers every query's
    {!Event_filter.strong_clauses} once, deduplicates the atoms, and
    answers "which queries is this event relevant to?" with work
    proportional to the atoms the event actually touches:

    - every clause designates an {e anchor} — its most selective
      equality atom when it has one (selectivity = distinct constants
      registered on the atom's field), otherwise its first atom;
    - equality anchors dispatch through one hash probe per field
      (constant → atom), so a thousand [ID = k] clauses cost one lookup;
    - non-equality anchors are evaluated once per event;
    - when an anchor holds, the subscribing clauses verify their
      remaining atoms lazily, memoized per event, waking each query at
      most once.

    Soundness matches the strong filter's: an event reported
    not-relevant to a query fails every clause, so it can neither fire a
    transition nor trigger a negation kill there — only τ-expiry timing
    can depend on it (see {!Multi}). *)

open Ses_event

type atom = Schema.Field.t * Predicate.op * Value.t

type t

val create : atom list list option array -> t
(** One slot per query id: [Some clauses] registers the query's strong
    clauses (relevant iff some clause is fully satisfied), [None] marks
    it unroutable — it is reported relevant to every event, as is a
    query with a vacuous (empty) clause. *)

val relevant : t -> Event.t -> int list
(** Query ids the event may affect: the unroutable queries followed by
    the woken ones, each at most once, deterministically ordered. *)

val n_atoms : t -> int
(** Distinct atoms registered. *)

val evaluated : t -> int
(** Atom evaluations and dispatch probes performed so far. *)

val saved : t -> int
(** Atom evaluations avoided so far, against re-running every clause of
    every query per event without sharing. *)

val hit_rate : t -> float
(** [saved / (evaluated + saved)]; 0 before any event. *)
