(* A fixed pool of worker domains, each fed through its own bounded
   FIFO queue.

   The pool is the substrate of the domain-parallel executors: the
   caller's thread is the single producer, each worker domain is the
   single consumer of its own queue, so every message sent to worker [i]
   is processed sequentially and in send order — exactly the discipline
   key-routed event streams need. Workers own their state (the closures
   passed to [create] capture it); the mutex/condition handshakes of
   [quiesce] and the [Domain.join] of [shutdown] publish that state to
   the caller, so reading it after either call is race-free under the
   OCaml 5 memory model. (The handshake alone is what synchronizes:
   [quiesce] observes [pending = 0] under each worker's mutex — a lock
   the worker last released *after* its final write to worker state —
   and [shutdown] joins the domain, whose termination happens-after
   everything the worker did. Both therefore order all worker writes
   before the caller's subsequent reads.)

   Producer-side batching lives here too: a [batcher] buffers items per
   worker (or one broadcast buffer for all workers) and ships them as
   arrays when a buffer fills. Both [quiesce] and [shutdown] first flush
   every batcher registered on the pool, so a partial batch can never be
   stranded in the producer's buffer at a synchronization point — the
   flush happens while the pool still accepts sends, before queues are
   drained or closed. *)

type 'a worker = {
  queue : 'a Queue.t;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  idle : Condition.t;  (* signalled when [pending] drops to 0 *)
  mutable pending : int;  (* queued + currently being processed *)
  mutable closed : bool;
  mutable ready : bool;  (* worker-side init completed (or failed) *)
  mutable failure : exn option;  (* first exception raised by [f] *)
  mutable handle : unit Domain.t option;
}

type 'a t = {
  workers : 'a worker array;
  capacity : int;
  depth : Telemetry.Gauge.t option;  (* queue depth sampled on send *)
  mutable stopped : bool;
  mutable flushers : (unit -> unit) list;
      (* registered batcher flushes, run by [quiesce]/[shutdown] while
         the pool still accepts sends *)
}

let default_capacity = 1024

let make_worker () =
  {
    queue = Queue.create ();
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    idle = Condition.create ();
    pending = 0;
    closed = false;
    ready = false;
    failure = None;
    handle = None;
  }

(* The worker loop: pop, process outside the lock, account. After a
   failure the worker keeps draining its queue without processing — the
   producer must never deadlock on a full queue — and the stored
   exception is re-raised on the caller's side by [send], [quiesce] or
   [shutdown]. *)
let worker_loop w f =
  let rec loop () =
    Mutex.lock w.mutex;
    while Queue.is_empty w.queue && not w.closed do
      Condition.wait w.not_empty w.mutex
    done;
    if Queue.is_empty w.queue then Mutex.unlock w.mutex (* closed: exit *)
    else begin
      let x = Queue.pop w.queue in
      Condition.signal w.not_full;
      let broken = w.failure <> None in
      Mutex.unlock w.mutex;
      let failed = if broken then None else (try f x; None with e -> Some e) in
      Mutex.lock w.mutex;
      (match failed with
      | Some e when w.failure = None -> w.failure <- Some e
      | Some _ | None -> ());
      w.pending <- w.pending - 1;
      if w.pending = 0 then Condition.broadcast w.idle;
      Mutex.unlock w.mutex;
      loop ()
    end
  in
  loop ()

(* Shared body of [create] and [create_with]: [init i] runs *on* worker
   [i]'s domain before it processes anything, and the constructor waits
   for every worker's ready flag (set under its mutex) before returning
   — so the init's writes happen-before anything the caller does with
   the pool, and a caller-side read of state the init published (e.g.
   a slot the worker filled) is race-free immediately. An init that
   raises marks the worker failed and ready; the exception then
   re-raises on the caller's side like a processing failure, and the
   worker keeps draining its queue so the producer never deadlocks. *)
let create_gen ~capacity ~telemetry ~domains ~init f =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  if capacity < 1 then invalid_arg "Domain_pool.create: capacity < 1";
  let workers = Array.init domains (fun _ -> make_worker ()) in
  Array.iteri
    (fun i w ->
      (* Each worker writes its span through its own forked recorder
         (spans are single-writer); the handle is resolved before
         [Domain.spawn], whose happens-before covers the publication. *)
      let sp =
        Option.map
          (fun tl ->
            Telemetry.span (Telemetry.fork tl) (Printf.sprintf "worker.%d" i))
          telemetry
      in
      w.handle <-
        Some
          (Domain.spawn (fun () ->
               let run =
                 match (try Ok (init i) with e -> Error e) with
                 | Error e ->
                     Mutex.lock w.mutex;
                     w.failure <- Some e;
                     Mutex.unlock w.mutex;
                     fun _ -> ()
                 | Ok state -> (
                     let body x = f i state x in
                     match sp with
                     | None -> body
                     | Some sp ->
                         fun x -> Telemetry.Span.record sp (fun () -> body x))
               in
               Mutex.lock w.mutex;
               w.ready <- true;
               Condition.broadcast w.idle;
               Mutex.unlock w.mutex;
               worker_loop w run)))
    workers;
  Array.iter
    (fun w ->
      Mutex.lock w.mutex;
      while not w.ready do
        Condition.wait w.idle w.mutex
      done;
      Mutex.unlock w.mutex)
    workers;
  let depth =
    Option.map (fun tl -> Telemetry.gauge tl "pool.queue_depth") telemetry
  in
  { workers; capacity; depth; stopped = false; flushers = [] }

let create ?(capacity = default_capacity) ?telemetry ~domains f =
  create_gen ~capacity ~telemetry ~domains ~init:(fun _ -> ()) (fun i () x ->
      f i x)

let create_with ?(capacity = default_capacity) ?telemetry ~domains ~init f =
  create_gen ~capacity ~telemetry ~domains ~init (fun _ state x -> f state x)

let size pool = Array.length pool.workers

let check_failure w =
  match w.failure with
  | Some e ->
      Mutex.unlock w.mutex;
      raise e
  | None -> ()

let send pool i x =
  if pool.stopped then invalid_arg "Domain_pool.send: pool is shut down";
  let w = pool.workers.(i) in
  Mutex.lock w.mutex;
  check_failure w;
  while Queue.length w.queue >= pool.capacity do
    Condition.wait w.not_full w.mutex
  done;
  check_failure w;
  Queue.push x w.queue;
  w.pending <- w.pending + 1;
  (match pool.depth with
  | None -> ()
  | Some g -> Telemetry.Gauge.observe g (Queue.length w.queue));
  Condition.signal w.not_empty;
  Mutex.unlock w.mutex

let run_flushers pool = List.iter (fun flush -> flush ()) pool.flushers

(* Flush partial producer batches, then wait until every queue is
   drained and every worker is between messages. On return the workers'
   state is stable (the producer is the only enqueuer) and its reads are
   synchronized through the mutexes. *)
let quiesce pool =
  if not pool.stopped then begin
    run_flushers pool;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        while w.pending > 0 && w.failure = None do
          Condition.wait w.idle w.mutex
        done;
        check_failure w;
        Mutex.unlock w.mutex)
      pool.workers
  end

let shutdown pool =
  if not pool.stopped then begin
    (* Flush before closing: a worker drains its whole queue before
       exiting, so everything shipped here is still processed. *)
    run_flushers pool;
    pool.stopped <- true;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.closed <- true;
        Condition.broadcast w.not_empty;
        Mutex.unlock w.mutex)
      pool.workers;
    Array.iter
      (fun w ->
        match w.handle with
        | Some d ->
            Domain.join d;
            w.handle <- None
        | None -> ())
      pool.workers;
    match
      Array.fold_left
        (fun acc w -> match acc with Some _ -> acc | None -> w.failure)
        None pool.workers
    with
    | Some e -> raise e
    | None -> ()
  end

let recommended () = max 1 (Domain.recommended_domain_count ())

(* Producer-side batching over an array-message pool: a mutex/condition
   handshake per item would cost more than the work it ships, so items
   are buffered (newest first) and sent as one array when a buffer
   reaches [limit]. The buffers belong to the producer thread; workers
   only ever see flushed arrays. Registration in [flushers] is what
   makes the quiesce/shutdown guarantee above hold. *)
type 'a batcher = {
  bpool : 'a array t;
  limit : int;
  hist : Telemetry.Histogram.t option;  (* batch sizes on flush *)
  buffers : 'a list array;  (* per worker, newest first *)
  lens : int array;
  mutable bcast : 'a list;  (* broadcast buffer, newest first *)
  mutable bcast_len : int;
}

let observe_flush b n =
  match b.hist with
  | None -> ()
  | Some h -> Telemetry.Histogram.observe h n

let flush_worker b i =
  if b.lens.(i) > 0 then begin
    observe_flush b b.lens.(i);
    let arr = Array.of_list (List.rev b.buffers.(i)) in
    b.buffers.(i) <- [];
    b.lens.(i) <- 0;
    send b.bpool i arr
  end

let flush_broadcast b =
  if b.bcast_len > 0 then begin
    observe_flush b b.bcast_len;
    (* One shared array for every worker: the workers only read it. *)
    let arr = Array.of_list (List.rev b.bcast) in
    b.bcast <- [];
    b.bcast_len <- 0;
    for i = 0 to Array.length b.bpool.workers - 1 do
      send b.bpool i arr
    done
  end

let flush b =
  Array.iteri (fun i _ -> flush_worker b i) b.lens;
  flush_broadcast b

let batcher ?hist ?(limit = 64) pool =
  if limit < 1 then invalid_arg "Domain_pool.batcher: limit < 1";
  let b =
    {
      bpool = pool;
      limit;
      hist;
      buffers = Array.make (Array.length pool.workers) [];
      lens = Array.make (Array.length pool.workers) 0;
      bcast = [];
      bcast_len = 0;
    }
  in
  pool.flushers <- (fun () -> flush b) :: pool.flushers;
  b

let push b i x =
  b.buffers.(i) <- x :: b.buffers.(i);
  b.lens.(i) <- b.lens.(i) + 1;
  if b.lens.(i) >= b.limit then flush_worker b i

let broadcast b x =
  b.bcast <- x :: b.bcast;
  b.bcast_len <- b.bcast_len + 1;
  if b.bcast_len >= b.limit then flush_broadcast b
