(* A fixed pool of worker domains, each fed through its own bounded
   FIFO queue.

   The pool is the substrate of the domain-parallel executors: the
   caller's thread is the single producer, each worker domain is the
   single consumer of its own queue, so every message sent to worker [i]
   is processed sequentially and in send order — exactly the discipline
   key-routed event streams need. Workers own their state (the closures
   passed to [create] capture it); the mutex/condition handshakes of
   [quiesce] and the [Domain.join] of [shutdown] publish that state to
   the caller, so reading it after either call is race-free under the
   OCaml 5 memory model. *)

type 'a worker = {
  queue : 'a Queue.t;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  idle : Condition.t;  (* signalled when [pending] drops to 0 *)
  mutable pending : int;  (* queued + currently being processed *)
  mutable closed : bool;
  mutable failure : exn option;  (* first exception raised by [f] *)
  mutable handle : unit Domain.t option;
}

type 'a t = {
  workers : 'a worker array;
  capacity : int;
  depth : Telemetry.Gauge.t option;  (* queue depth sampled on send *)
  mutable stopped : bool;
}

let default_capacity = 1024

let make_worker () =
  {
    queue = Queue.create ();
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    idle = Condition.create ();
    pending = 0;
    closed = false;
    failure = None;
    handle = None;
  }

(* The worker loop: pop, process outside the lock, account. After a
   failure the worker keeps draining its queue without processing — the
   producer must never deadlock on a full queue — and the stored
   exception is re-raised on the caller's side by [send], [quiesce] or
   [shutdown]. *)
let worker_loop w f =
  let rec loop () =
    Mutex.lock w.mutex;
    while Queue.is_empty w.queue && not w.closed do
      Condition.wait w.not_empty w.mutex
    done;
    if Queue.is_empty w.queue then Mutex.unlock w.mutex (* closed: exit *)
    else begin
      let x = Queue.pop w.queue in
      Condition.signal w.not_full;
      let broken = w.failure <> None in
      Mutex.unlock w.mutex;
      let failed = if broken then None else (try f x; None with e -> Some e) in
      Mutex.lock w.mutex;
      (match failed with
      | Some e when w.failure = None -> w.failure <- Some e
      | Some _ | None -> ());
      w.pending <- w.pending - 1;
      if w.pending = 0 then Condition.broadcast w.idle;
      Mutex.unlock w.mutex;
      loop ()
    end
  in
  loop ()

let create ?(capacity = default_capacity) ?telemetry ~domains f =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  if capacity < 1 then invalid_arg "Domain_pool.create: capacity < 1";
  let workers = Array.init domains (fun _ -> make_worker ()) in
  Array.iteri
    (fun i w ->
      (* Each worker writes its span through its own forked recorder
         (spans are single-writer); the handle is resolved before
         [Domain.spawn], whose happens-before covers the publication. *)
      let run =
        match telemetry with
        | None -> f i
        | Some tl ->
            let sp =
              Telemetry.span (Telemetry.fork tl) (Printf.sprintf "worker.%d" i)
            in
            fun x -> Telemetry.Span.record sp (fun () -> f i x)
      in
      w.handle <- Some (Domain.spawn (fun () -> worker_loop w run)))
    workers;
  let depth =
    Option.map (fun tl -> Telemetry.gauge tl "pool.queue_depth") telemetry
  in
  { workers; capacity; depth; stopped = false }

let size pool = Array.length pool.workers

let check_failure w =
  match w.failure with
  | Some e ->
      Mutex.unlock w.mutex;
      raise e
  | None -> ()

let send pool i x =
  if pool.stopped then invalid_arg "Domain_pool.send: pool is shut down";
  let w = pool.workers.(i) in
  Mutex.lock w.mutex;
  check_failure w;
  while Queue.length w.queue >= pool.capacity do
    Condition.wait w.not_full w.mutex
  done;
  check_failure w;
  Queue.push x w.queue;
  w.pending <- w.pending + 1;
  (match pool.depth with
  | None -> ()
  | Some g -> Telemetry.Gauge.observe g (Queue.length w.queue));
  Condition.signal w.not_empty;
  Mutex.unlock w.mutex

(* Wait until every queue is drained and every worker is between
   messages. On return the workers' state is stable (the producer is the
   only enqueuer) and its reads are synchronized through the mutexes. *)
let quiesce pool =
  if not pool.stopped then
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        while w.pending > 0 && w.failure = None do
          Condition.wait w.idle w.mutex
        done;
        check_failure w;
        Mutex.unlock w.mutex)
      pool.workers

let shutdown pool =
  if not pool.stopped then begin
    pool.stopped <- true;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.closed <- true;
        Condition.broadcast w.not_empty;
        Mutex.unlock w.mutex)
      pool.workers;
    Array.iter
      (fun w ->
        match w.handle with
        | Some d ->
            Domain.join d;
            w.handle <- None
        | None -> ())
      pool.workers;
    match
      Array.fold_left
        (fun acc w -> match acc with Some _ -> acc | None -> w.failure)
        None pool.workers
    with
    | Some e -> raise e
    | None -> ()
  end

let recommended () = max 1 (Domain.recommended_domain_count ())
