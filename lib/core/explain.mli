(** Match diagnostics: why a pattern did or did not match.

    [explain] runs the engine once with an instrumented observer and
    aggregates where the search effort went: how many input events could
    bind each variable at all (its constant conditions), how often each
    state was entered and each transition fired, where instances were
    still stuck when they expired or the input ended, and how many were
    killed by negation guards. The report turns "0 matches" from a
    mystery into a pointer — e.g. "state {c,d} was reached 17 times but
    the p transition never fired: no event satisfies p's conditions
    against the bound c". *)

open Ses_event
open Ses_pattern

type transition_stats = {
  transition : Automaton.transition;
  fired : int;  (** times taken *)
}

type report = {
  pattern : Pattern.t;
  events : int;
  matches : int;  (** finalized *)
  raw : int;
  candidates_per_variable : (int * int) list;
      (** positive variable id → events satisfying all its constant
          conditions *)
  entered : (Varset.t * int) list;
      (** state → times an instance arrived there (loops re-count) *)
  stuck : (Varset.t * int) list;
      (** non-accepting state → instances that expired or were left there
          at end of input *)
  transitions : transition_stats list;
  killed : int;  (** instances removed by negation guards *)
  emission_lag : (float * int) option;
      (** (mean, max) delay in time units between a match's last event and
          its emission — MAXIMAL semantics emit at window expiry, so this
          is the detection latency an application pays; [None] when
          nothing was emitted via expiry (end-of-stream flushes have no
          triggering event) *)
}

val explain : ?options:Engine.options -> Automaton.t -> Relation.t -> report

val pp : Format.formatter -> report -> unit
(** Human-readable narrative, including the "never fired" transitions out
    of the most-visited stuck states. *)
