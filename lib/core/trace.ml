open Ses_event
open Ses_pattern

let run ?options automaton relation =
  let st = Engine.create ?options automaton in
  let steps = ref [] in
  Engine.set_observer st (Some (fun obs -> steps := obs :: !steps));
  Relation.iter (fun e -> ignore (Engine.feed st e)) relation;
  ignore (Engine.close st);
  let raw = Engine.emitted st in
  let opts = Option.value ~default:Engine.default_options options in
  let matches =
    if opts.Engine.finalize then
      Substitution.finalize ~policy:opts.Engine.policy
        (Automaton.pattern automaton) raw
    else raw
  in
  ( List.rev !steps,
    { Engine.matches; raw; metrics = Engine.metrics st } )

let pp_observation p ppf (obs : Engine.observation) =
  let name_of = Pattern.var_name p in
  let pp_state = Varset.pp ~name_of in
  let pp_subst = Substitution.pp p in
  match obs with
  | Engine.Created e -> Format.fprintf ppf "read %s: new instance" (Event.name e)
  | Engine.Took { event; transition; buffer } ->
      Format.fprintf ppf "read %s: take (%a --%s--> %a), buffer %a"
        (Event.name event) pp_state transition.Automaton.src
        (name_of transition.Automaton.var)
        pp_state transition.Automaton.tgt pp_subst buffer
  | Engine.Ignored { event; state; buffer } ->
      Format.fprintf ppf "read %s: ignore at %a, buffer %a" (Event.name event)
        pp_state state pp_subst buffer
  | Engine.Expired { event; accepting; buffer } ->
      Format.fprintf ppf "read %s: expire%s, buffer %a" (Event.name event)
        (if accepting then " (accepting)" else "")
        pp_subst buffer
  | Engine.Killed { event; state; buffer } ->
      Format.fprintf ppf "read %s: kill at %a (negation), buffer %a"
        (Event.name event) pp_state state pp_subst buffer
  | Engine.Emitted subst -> Format.fprintf ppf "emit %a" pp_subst subst

let pp p ppf steps =
  Format.fprintf ppf "@[<v>";
  List.iter (fun obs -> Format.fprintf ppf "%a@," (pp_observation p) obs) steps;
  Format.fprintf ppf "@]"

let for_buffer target steps =
  let within buffer = Substitution.subset buffer target in
  List.filter
    (fun (obs : Engine.observation) ->
      match obs with
      | Engine.Created _ -> false
      | Engine.Took { buffer; _ } -> buffer <> [] && within buffer
      | Engine.Ignored { buffer; _ } -> buffer <> [] && within buffer
      | Engine.Expired { buffer; _ } -> buffer <> [] && within buffer
      | Engine.Killed { buffer; _ } -> buffer <> [] && within buffer
      | Engine.Emitted subst -> Substitution.equal subst target)
    steps
