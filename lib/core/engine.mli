(** Execution of SES automata: [SESExec] (Algorithm 1) and [ConsumeEvent]
    (Algorithm 2).

    The engine keeps a pool Ω of automaton instances (Definition 4). For
    every input event a fresh instance is opened in the start state; each
    instance either expires (the time window τ would be violated — emitting
    its match buffer when it is in the accepting state), or consumes the
    event: every outgoing transition whose condition set Θδ is satisfied
    spawns a successor instance (nondeterministic branching); when no
    transition fires the instance survives unchanged unless it is still in
    the start state (skip-till-next-match) — or, when the pattern carries
    negation guards and the instance sits exactly between two event set
    patterns, the event may kill it instead. At end of input, instances
    sitting in the accepting state (with all quantifier minima met) flush
    their buffers.

    Raw emissions are post-processed by {!Substitution.finalize}
    (deduplication, Definition 2 conditions 4 and 5) unless disabled. *)

open Ses_event

(** How the pool Ω is represented. [Flat] is the paper's verbatim list,
    rescanned in full on every event — kept as the reference path for
    differential testing and benchmarking. [Indexed] (the default) is the
    {!Instance_store}: instances bucketed by automaton state and sorted
    by the start of their window, so states the event cannot affect are
    skipped in O(1) and the τ-expiry sweep stops at the first unexpired
    instance. The two representations produce the same emissions (as
    sets; the within-event emission order may differ) and the same
    metrics. *)
type store_kind =
  | Flat
  | Indexed

type options = {
  filter : Event_filter.mode;  (** Sec. 4.5 optimization; default [No_filter] *)
  filter_extras :
    (int * (Schema.Field.t * Predicate.op * Value.t) list) list;
      (** inferred constant constraints per variable id, conjoined into
          the event filter's clauses (see {!Event_filter.make}); supplied
          by the static analyzer via {!Planner}, default [[]]. Must be
          implied by the pattern — extras that are not implied change
          results. *)
  policy : Substitution.policy;
      (** conditions 4–5 post-filter (default [Operational]) *)
  finalize : bool;
      (** run {!Substitution.finalize} at all; [false] returns raw
          emissions as [matches] (default [true]) *)
  precheck_constants : bool;
      (** evaluate each transition's constant conditions once per input
          event, shared across all instances, instead of once per
          instance (default [true]; disable to time the paper's verbatim
          loop — the optimization never changes the result, only work) *)
  store : store_kind;  (** pool representation (default [Indexed]) *)
  domains : int;
      (** worker domains for the executors that can use them (default 1
          = fully sequential). The plain engine is inherently sequential
          and ignores this; {!Partitioned} shards its per-key pools
          across this many domains when the pattern is partitionable,
          and {!Multi} spreads its queries across them. *)
  batch_size : int;
      (** the unit of work on the batched hot path (default
          {!default_batch_size}, tuned by [bench --batch-only]): the
          chunk size {!Executor.drive} and the stream runner feed
          through {!feed_batch}, and the producer-side buffer limit for
          the domain-parallel executors' queues. The engine itself
          accepts any batch size through {!feed_batch}; this option only
          sets how callers chunk. *)
  telemetry : Telemetry.sink;
      (** instrumentation recorder (default [None] = no-op: every probe
          on the hot path costs one branch). The engine plants [filter],
          [transition], [expiry] and [finalize] spans, a
          [store.bucket_scan] histogram and a [population] gauge; the
          executors layered above add their own probes to the same
          recorder. *)
}

val default_options : options

val default_batch_size : int

type outcome = {
  matches : Substitution.t list;  (** finalized matching substitutions *)
  raw : Substitution.t list;  (** candidate emissions before finalize *)
  metrics : Metrics.snapshot;
}

(** Execution events, for tracing and debugging (the paper's Figure 6
    illustrates an execution as a sequence of exactly these): a fresh
    instance opened for an input event, a transition taken (with the
    buffer {e after} binding), an event ignored by an instance (no
    transition fired), an instance expired (emitting when it was
    accepting), a substitution emitted. *)
type observation =
  | Created of Event.t
  | Took of {
      event : Event.t;
      transition : Automaton.transition;
      buffer : Substitution.t;
    }
  | Ignored of {
      event : Event.t;
      state : Varset.t;
      buffer : Substitution.t;
    }
  | Expired of {
      event : Event.t;
      accepting : bool;
      buffer : Substitution.t;
    }
  | Killed of {
      event : Event.t;
      state : Varset.t;
      buffer : Substitution.t;
    }  (** removed by a negation guard *)
  | Emitted of Substitution.t

val run : ?options:options -> Automaton.t -> Event.t Seq.t -> outcome
(** Events must arrive in chronological order (enforced by
    {!Ses_event.Relation}; raises [Invalid_argument] on out-of-order
    input). *)

val run_relation : ?options:options -> Automaton.t -> Relation.t -> outcome

(** {1 Incremental interface}

    The push-based view of the same loop, for callers that receive events
    one at a time. [feed] returns the substitutions whose instances expired
    on this event (raw, not finalized — finalization needs the whole
    candidate set); [close] flushes accepting instances. *)

type stream

val create : ?options:options -> Automaton.t -> stream

val feed : stream -> Event.t -> Substitution.t list
(** Equivalent to [feed_batch st [| e |]]: the batch-of-one view of the
    same loop, kept as the reference ordering (per-event expiry pops and
    exact observer narration). *)

val feed_batch : stream -> Event.t array -> Substitution.t list
(** Pushes a chronological chunk (also checked against events already
    fed; raises [Invalid_argument] on violations) and returns the raw
    substitutions completed by it, oldest first. Observably equivalent
    to feeding the events one at a time — same finalized matches, same
    multiset of raw emissions, same layout-invariant metrics — with the
    per-event overheads amortized: the event filter runs in one pass
    over the chunk, constant-precheck caches are stamped instead of
    reset, τ-expired prefixes are popped once per batch (instances whose
    window closes mid-batch are caught before they can consume an
    event), and telemetry probes record per batch. Within a batch the
    {e position} of an expiry emission in the raw stream may differ
    from the one-by-one order; its presence never does. With an observer
    installed the engine processes the chunk event by event so narration
    order stays exact. *)

val close : stream -> Substitution.t list

val population : stream -> int
(** Current |Ω|; O(1) with the indexed store. *)

val population_by_state : stream -> (Varset.t * int) list
(** Live instances grouped by their current state, descending by count;
    equal counts are ordered by state, so the listing is deterministic. *)

val metrics : stream -> Metrics.snapshot

val emitted : stream -> Substitution.t list
(** All raw emissions so far, oldest first. *)

val set_observer : stream -> (observation -> unit) option -> unit
(** Installs (or removes) a callback invoked synchronously on every
    execution event of this stream. See {!Trace} for a convenient
    recorder. *)
