(** State-indexed store of live automaton instances.

    The engine's pool Ω, bucketed by automaton state so that per-event
    work concentrates on the states that can actually react to the event:
    a state whose outgoing transitions all fail the per-event constant
    pre-check (and whose negation guards cannot fire) is left untouched
    in O(1) instead of being walked instance by instance.

    Within a bucket, instances are kept sorted ascending by
    [(ts_of, seq_of)] — for the engine, the timestamp of the earliest
    bound event and a unique creation stamp. Because expiry of an
    instance on event [e] depends only on [Event.ts e - first_ts], the
    expired instances of a bucket always form a prefix of this order:
    {!pop_expired} stops at the first unexpired instance instead of
    visiting the whole bucket.

    Mutations during an event are two-phase: {!stage} queues an instance
    for (re-)insertion without making it visible, and {!commit} merges
    everything staged into the buckets. This is exactly the engine's
    discipline — successors spawned while consuming event [e] must not
    themselves consume [e].

    The store is polymorphic in the instance type; the two key accessors
    are supplied at creation so this module depends only on {!Varset} and
    the event library's clock. *)

open Ses_event

type 'a t

val create : ts_of:('a -> Time.t) -> seq_of:('a -> int) -> unit -> 'a t
(** [seq_of] must be injective over the instances ever stored (the engine
    uses a monotone creation counter), making the per-bucket order — and
    therefore every traversal — deterministic. *)

val size : 'a t -> int
(** Total live instances across all buckets, O(1). Staged instances do
    not count until {!commit}. *)

val bucket_size : 'a t -> Varset.t -> int

(** {1 Bucket handles}

    A handle interns one state's bucket: resolving handles once per
    stream (the engine does it per automaton state at [create]) removes
    every per-event hashtable probe from the hot loop — a batch, or a
    whole run, probes each {!Varset} bucket exactly once. Handles remain
    valid for the lifetime of the store; {!clear} empties the buckets in
    place rather than invalidating them. *)

type 'a handle

val handle : 'a t -> Varset.t -> 'a handle
(** Interns (creating if needed, possibly empty) the bucket of the given
    state. *)

val handle_size : 'a handle -> int

val pop_expired_h : 'a handle -> expired:('a -> bool) -> 'a list
(** {!pop_expired} through a handle, skipping the bucket lookup. *)

val take_all_h : 'a handle -> 'a list

val put_back_h : 'a handle -> 'a list -> unit

val stage_h : 'a handle -> 'a -> unit
(** {!stage} through a handle — no hashtable probe at all: pending
    inserts live on the bucket record itself, and the store keeps a
    dirty list so {!commit} touches only buckets actually staged
    into. *)

val pop_expired : 'a t -> Varset.t -> expired:('a -> bool) -> 'a list
(** Removes and returns, in bucket order, the maximal prefix of the
    bucket on which [expired] holds. [expired] must be antitone in the
    bucket order (true on a prefix); the engine's τ check is, since
    buckets are sorted by [first_ts]. *)

val take_all : 'a t -> Varset.t -> 'a list
(** Removes and returns the whole bucket, in bucket order. *)

val put_back : 'a t -> Varset.t -> 'a list -> unit
(** Restores survivors of a {!take_all}, which must still be in bucket
    order and target an empty bucket; O(length). *)

val stage : 'a t -> Varset.t -> 'a -> unit
(** Queues an instance for insertion into the bucket of the given state;
    invisible to every reader until {!commit}. *)

val commit : 'a t -> unit
(** Sorts what was staged and merges it into the buckets. *)

val fold_buckets : (Varset.t -> 'a list -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** Folds over non-empty buckets in ascending state order; each bucket is
    presented in bucket order. *)

val to_list : 'a t -> 'a list
(** All instances, ascending by state then bucket order. *)

val clear : 'a t -> unit
