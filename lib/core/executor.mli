(** The unified push-based execution interface.

    Every way this library can evaluate a SES pattern — the plain engine
    (Algorithms 1–2), hash-partitioned instance pools, the planner's
    automatic lever selection, the Definition 2 oracle, and the Sec. 5.2
    brute-force baseline — implements the same [EXECUTOR] signature:
    [create] an executor from an automaton, [feed] it one chronological
    event at a time (receiving the raw substitutions completed by that
    event), [close] it to flush accepting instances, and read uniform
    {!Metrics} at any point. This is the shape a streaming deployment
    needs (one [feed] per arriving event, O(1) memory in the input), and
    it lets equivalence tests, the CLI and the benchmarks drive all
    strategies through one harness.

    [feed] and [close] return {e raw} emissions: finalization
    (deduplication and the Definition 2 condition 4–5 post-filter) needs
    the whole candidate set, so it is applied by {!run} — or by the
    caller, over {!emitted} — once the input ends. *)

open Ses_event

type strategy =
  [ `Auto | `Plain | `Partitioned | `Par_partitioned | `Naive | `Brute_force ]
(** [`Auto] runs {!Planner.plan}'s choice of levers; [`Plain] the bare
    {!Engine}; [`Partitioned] per-key pools (with single-pool fallback);
    [`Par_partitioned] per-key pools sharded across worker domains —
    [options.domains] of them when > 1, else the machine's recommended
    count (see {!Partitioned} for the sharded-mode contract: [feed]
    returns [[]], reads quiesce, fall back to one sequential pool on
    non-partitionable patterns); [`Naive] the exhaustive Definition 2
    oracle; [`Brute_force] the one-automaton-per-ordering baseline of
    Sec. 5.2.

    [`Auto] and [`Partitioned] also shard when [options.domains > 1]:
    the domain count rides on {!Engine.options} so the planner, the
    stream runner and the CLI pick it up with no call-site changes. *)

val strategies : strategy list

val strategy_name : strategy -> string

val strategy_of_string : string -> (strategy, string) result

val supports_shared_routing : strategy -> bool
(** Whether {!Multi}'s shared plan may feed this strategy's executors
    only the events its predicate index routes to them ([`Plain] and
    [`Auto]). The other strategies split pools across keys or domains,
    or are counting baselines, so they always receive the whole feed. *)

module type EXECUTOR = sig
  type t

  val name : string

  val create : ?options:Engine.options -> Automaton.t -> t

  val feed : t -> Event.t -> Substitution.t list
  (** Pushes one event (chronological order required; implementations
      raise [Invalid_argument] on violations) and returns the raw
      substitutions whose instances completed on it. *)

  val feed_batch : t -> Event.t array -> Substitution.t list
  (** Pushes a chronological chunk and returns the raw substitutions it
      completed. Observably equivalent to feeding the events one at a
      time — same finalized matches, same multiset of raw emissions —
      with per-event overheads amortized over the chunk. Every strategy
      implements this natively (see {!Engine.feed_batch} for the
      engine-level contract); implementations without a cheaper path may
      fall back to a per-event loop. The array is owned by the caller
      and may be reused for the next chunk once the call returns —
      implementations that keep events past the call (queues, buffers)
      must copy them out, as the in-repo ones do. *)

  val close : t -> Substitution.t list
  (** End of input: flushes accepting instances. *)

  val emitted : t -> Substitution.t list
  (** All raw emissions so far, oldest first. *)

  val population : t -> int
  (** Live automaton instances (|Ω|). *)

  val metrics : t -> Metrics.snapshot
end

val of_strategy : strategy -> (module EXECUTOR)
(** The registry. [`Brute_force] is injected by [ses_baseline] (a
    dependent library): raises [Failure] unless
    [Ses_baseline.Brute_force.register] has been called.

    Every returned module is wrapped in a uniform instrumentation layer:
    when [options.telemetry] carries a recorder, each [feed] (and each
    [feed_batch] chunk) is timed into an [ingest] span and an [event_ns]
    histogram, so all five strategies report ingest cost through the
    same probe names — per event on the per-event path, per batch on the
    batched one. *)

val register_brute_force : (module EXECUTOR) -> unit

val batch_of_feed :
  ('t -> Event.t -> Substitution.t list) ->
  't ->
  Event.t array ->
  Substitution.t list
(** [batch_of_feed feed t es] is the registry-wide default [feed_batch]:
    a per-event loop concatenating completions in feed order. External
    [EXECUTOR] implementations without a native batched path can use it
    directly. *)

(** {1 Packed executors}

    A strategy instantiated on an automaton, with the existential [t]
    hidden — the convenient form for callers that pick the strategy at
    runtime (CLI flags, mixed-strategy {!Multi} registrations). *)

type packed

val create : ?options:Engine.options -> strategy -> Automaton.t -> packed

val name : packed -> string

val feed : packed -> Event.t -> Substitution.t list

val feed_batch : packed -> Event.t array -> Substitution.t list

val close : packed -> Substitution.t list

val emitted : packed -> Substitution.t list

val population : packed -> int

val metrics : packed -> Metrics.snapshot

(** {1 The shared batch harness} *)

val drive :
  ?options:Engine.options ->
  packed ->
  Automaton.t ->
  Event.t Seq.t ->
  Engine.outcome
(** Feeds the whole sequence in [options.batch_size] chunks through
    [feed_batch], closes, and finalizes per [options] — the one loop
    every strategy's batch entry point now shares. *)

val run :
  ?options:Engine.options ->
  strategy ->
  Automaton.t ->
  Event.t Seq.t ->
  Engine.outcome

val run_relation :
  ?options:Engine.options ->
  strategy ->
  Automaton.t ->
  Relation.t ->
  Engine.outcome
