(** The unified push-based execution interface.

    Every way this library can evaluate a SES pattern — the plain engine
    (Algorithms 1–2), hash-partitioned instance pools, the planner's
    automatic lever selection, the Definition 2 oracle, and the Sec. 5.2
    brute-force baseline — implements the same [EXECUTOR] signature:
    [create] an executor from an automaton, [feed] it one chronological
    event at a time (receiving the raw substitutions completed by that
    event), [close] it to flush accepting instances, and read uniform
    {!Metrics} at any point. This is the shape a streaming deployment
    needs (one [feed] per arriving event, O(1) memory in the input), and
    it lets equivalence tests, the CLI and the benchmarks drive all
    strategies through one harness.

    [feed] and [close] return {e raw} emissions: finalization
    (deduplication and the Definition 2 condition 4–5 post-filter) needs
    the whole candidate set, so it is applied by {!run} — or by the
    caller, over {!emitted} — once the input ends. *)

open Ses_event

type strategy =
  [ `Auto | `Plain | `Partitioned | `Par_partitioned | `Naive | `Brute_force ]
(** [`Auto] runs {!Planner.plan}'s choice of levers; [`Plain] the bare
    {!Engine}; [`Partitioned] per-key pools (with single-pool fallback);
    [`Par_partitioned] per-key pools sharded across worker domains —
    [options.domains] of them when > 1, else the machine's recommended
    count (see {!Partitioned} for the sharded-mode contract: [feed]
    returns [[]], reads quiesce, fall back to one sequential pool on
    non-partitionable patterns); [`Naive] the exhaustive Definition 2
    oracle; [`Brute_force] the one-automaton-per-ordering baseline of
    Sec. 5.2.

    [`Auto] and [`Partitioned] also shard when [options.domains > 1]:
    the domain count rides on {!Engine.options} so the planner, the
    stream runner and the CLI pick it up with no call-site changes. *)

val strategies : strategy list

val strategy_name : strategy -> string

val strategy_of_string : string -> (strategy, string) result

module type EXECUTOR = sig
  type t

  val name : string

  val create : ?options:Engine.options -> Automaton.t -> t

  val feed : t -> Event.t -> Substitution.t list
  (** Pushes one event (chronological order required; implementations
      raise [Invalid_argument] on violations) and returns the raw
      substitutions whose instances completed on it. *)

  val close : t -> Substitution.t list
  (** End of input: flushes accepting instances. *)

  val emitted : t -> Substitution.t list
  (** All raw emissions so far, oldest first. *)

  val population : t -> int
  (** Live automaton instances (|Ω|). *)

  val metrics : t -> Metrics.snapshot
end

val of_strategy : strategy -> (module EXECUTOR)
(** The registry. [`Brute_force] is injected by [ses_baseline] (a
    dependent library): raises [Failure] unless
    [Ses_baseline.Brute_force.register] has been called.

    Every returned module is wrapped in a uniform instrumentation layer:
    when [options.telemetry] carries a recorder, each [feed] is timed
    into an [ingest] span and an [event_ns] histogram, so all five
    strategies report per-event cost through the same probe names. *)

val register_brute_force : (module EXECUTOR) -> unit

(** {1 Packed executors}

    A strategy instantiated on an automaton, with the existential [t]
    hidden — the convenient form for callers that pick the strategy at
    runtime (CLI flags, mixed-strategy {!Multi} registrations). *)

type packed

val create : ?options:Engine.options -> strategy -> Automaton.t -> packed

val name : packed -> string

val feed : packed -> Event.t -> Substitution.t list

val close : packed -> Substitution.t list

val emitted : packed -> Substitution.t list

val population : packed -> int

val metrics : packed -> Metrics.snapshot

(** {1 The shared batch harness} *)

val drive :
  ?options:Engine.options ->
  packed ->
  Automaton.t ->
  Event.t Seq.t ->
  Engine.outcome
(** Feeds the whole sequence, closes, and finalizes per [options] —
    the one loop every strategy's batch entry point now shares. *)

val run :
  ?options:Engine.options ->
  strategy ->
  Automaton.t ->
  Event.t Seq.t ->
  Engine.outcome

val run_relation :
  ?options:Engine.options ->
  strategy ->
  Automaton.t ->
  Relation.t ->
  Engine.outcome
