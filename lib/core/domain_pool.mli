(** A fixed pool of OCaml 5 worker domains behind bounded
    single-producer/single-consumer queues.

    [create ~domains f] spawns [domains] workers; worker [i] processes
    the messages sent to it with [f i], sequentially and in send order.
    This is the execution substrate of the domain-parallel executors:
    {!Partitioned} routes each partition key to a fixed worker (so a
    key's events are still consumed one at a time, in order, preserving
    the engine's semantics), and {!Multi} assigns whole queries to
    workers and broadcasts the feed.

    Workers keep their state in the closures passed to [create]. After
    {!quiesce} or {!shutdown} returns, that state may be read (and after
    [shutdown], mutated) from the calling thread without races: both
    calls establish the necessary happens-before edges.

    Pools whose message type is an array can be fed through a {!batcher},
    which buffers items on the producer side and ships them as whole
    arrays — one queue handshake per batch instead of per item. Batchers
    register themselves with the pool, and {!quiesce}/{!shutdown} flush
    them before synchronizing, so a partial batch is never stranded. *)

type 'a t

val create :
  ?capacity:int ->
  ?telemetry:Telemetry.t ->
  domains:int ->
  (int -> 'a -> unit) ->
  'a t
(** [create ~domains f] spawns the workers. [capacity] bounds each
    worker's queue (default 1024): {!send} blocks when the consumer
    falls that far behind, so an unbounded event source cannot exhaust
    memory. Raises [Invalid_argument] when [domains] or [capacity]
    is < 1.

    With [telemetry], worker [i] times each message it processes into a
    [worker.i] span (through its own {!Telemetry.fork}, so the
    single-writer discipline holds), and {!send} samples the receiving
    queue's depth into a [pool.queue_depth] gauge. A custom
    {!Telemetry.create} clock must be safe to call from any domain. *)

val create_with :
  ?capacity:int ->
  ?telemetry:Telemetry.t ->
  domains:int ->
  init:(int -> 'state) ->
  ('state -> 'a -> unit) ->
  'a t
(** Like {!create}, but worker [i] first builds its own state by running
    [init i] {e on its domain}, then processes each message with
    [f state]. The call returns only after every worker has finished its
    init (a ready handshake under the worker's mutex), so state the init
    publishes into caller-visible slots may be read immediately without
    races. An init that raises marks its worker failed: the exception
    re-raises at the next {!send}/{!quiesce}/{!shutdown} and the worker
    drains its queue without processing. This is how {!Multi} builds one
    shared plan per worker domain — the plan's interior mutability stays
    domain-local for the pool's whole lifetime. *)

val size : 'a t -> int
(** Number of worker domains. *)

val send : 'a t -> int -> 'a -> unit
(** [send pool i x] enqueues [x] for worker [i]; blocks while the
    queue is full. If the worker's processing function has raised, that
    exception is re-raised here (and by {!quiesce}/{!shutdown}) — the
    worker keeps draining its queue without processing so the producer
    never deadlocks. Single producer: concurrent sends to the same pool
    from several threads are not supported. Raises [Invalid_argument]
    after {!shutdown}. *)

val quiesce : 'a t -> unit
(** Flushes every registered {!batcher}, then blocks until every queue
    is empty and every worker is idle. A no-op after {!shutdown}.
    Re-raises the first worker exception, if any. *)

val shutdown : 'a t -> unit
(** Flushes every registered {!batcher}, drains every queue, then joins
    all worker domains. Idempotent. Re-raises the first worker
    exception, if any. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count], clamped to at least 1. *)

(** {1 Producer-side batching}

    For pools whose messages are arrays of items. The buffers live on
    the producer thread, so a batcher inherits {!send}'s single-producer
    discipline: one thread pushes, flushes happen inline. *)

type 'a batcher

val batcher :
  ?hist:Telemetry.Histogram.t -> ?limit:int -> 'a array t -> 'a batcher
(** [batcher pool] buffers items per worker and sends each buffer as one
    array when it reaches [limit] items (default 64; raises
    [Invalid_argument] when < 1). [hist], when given, records the size
    of every shipped batch. The batcher registers its {!flush} with the
    pool: {!quiesce} and {!shutdown} run it automatically. *)

val push : 'a batcher -> int -> 'a -> unit
(** [push b i x] buffers [x] for worker [i], shipping the buffer when
    full. Items reach worker [i] in push order (broadcast items are
    interleaved at flush granularity). *)

val broadcast : 'a batcher -> 'a -> unit
(** [broadcast b x] buffers [x] for {e every} worker; on flush one
    shared array is sent to each queue — the workers must only read
    it. *)

val flush : 'a batcher -> unit
(** Ships all non-empty buffers (per-worker first, then the broadcast
    buffer) immediately. Idempotent on empty buffers. *)
