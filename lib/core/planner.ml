open Ses_pattern

type t = {
  filter : Event_filter.mode;
  partition : Ses_event.Schema.Field.t option;
  precheck_constants : bool;
  cases : Exclusivity.case list;
}

let plan automaton =
  let p = Automaton.pattern automaton in
  let strong = Event_filter.make p Event_filter.Strong in
  {
    filter =
      (if Event_filter.effective strong then Event_filter.Strong
       else Event_filter.No_filter);
    partition = Partitioned.partition_key automaton;
    precheck_constants = true;
    cases = Exclusivity.classify p;
  }

let options_with plan options =
  {
    options with
    Engine.filter = plan.filter;
    precheck_constants = plan.precheck_constants;
  }

(* Incremental execution under a plan: the partitioned stream already
   embeds the single-pool fallback, so the planned stream is a
   partitioned stream with the plan's levers layered onto the options
   and the plan's (precomputed) partition decision. *)

type stream = { plan : t; inner : Partitioned.stream }

let create_with ?(options = Engine.default_options) plan automaton =
  {
    plan;
    inner =
      Partitioned.create ~options:(options_with plan options)
        ~key:plan.partition automaton;
  }

let create ?options automaton = create_with ?options (plan automaton) automaton

let plan_of st = st.plan

let feed st e = Partitioned.feed st.inner e

let close st = Partitioned.close st.inner

let emitted st = Partitioned.emitted st.inner

let population st = Partitioned.population st.inner

let metrics st = Partitioned.metrics st.inner

let execute ?(options = Engine.default_options) plan automaton events =
  let st = create_with ~options plan automaton in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let matches =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy
        (Automaton.pattern automaton) raw
    else raw
  in
  { Engine.matches; raw; metrics = metrics st }

let run ?options automaton events =
  execute ?options (plan automaton) automaton events

let run_relation ?options automaton relation =
  run ?options automaton (Ses_event.Relation.to_seq relation)

let describe plan =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Format.asprintf "event filter: %a\n" Event_filter.pp_mode plan.filter);
  (match plan.partition with
  | Some _ -> Buffer.add_string buf "partitioning: per key value\n"
  | None -> Buffer.add_string buf "partitioning: not applicable\n");
  Buffer.add_string buf
    (Printf.sprintf "constant pre-check: %b\n" plan.precheck_constants);
  List.iteri
    (fun i case ->
      Buffer.add_string buf
        (Format.asprintf "V%d: %a\n" (i + 1) Exclusivity.pp_case case))
    plan.cases;
  Buffer.contents buf
