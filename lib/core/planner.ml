open Ses_pattern

type analysis = {
  automaton : Automaton.t;
  filter_extras :
    (int * (Ses_event.Schema.Field.t * Ses_event.Predicate.op * Ses_event.Value.t) list)
    list;
  pruned_transitions : int;
  pruned_states : int;
  never_matches : bool;
}

(* The static analyzer lives in [Ses_analysis], which depends on this
   library; it injects itself here (like the brute-force baseline's
   executor registration) so planning picks up pruning and inferred
   filter constraints whenever the analyzer is linked and registered. *)
let analyzer : (Automaton.t -> analysis) option ref = ref None

let set_analyzer f = analyzer := Some f

let analyze automaton = Option.map (fun f -> f automaton) !analyzer

type t = {
  filter : Event_filter.mode;
  partition : Ses_event.Schema.Field.t option;
  precheck_constants : bool;
  cases : Exclusivity.case list;
  analysis : analysis option;
}

let plan automaton =
  let p = Automaton.pattern automaton in
  let analysis = analyze automaton in
  let planning_automaton =
    match analysis with Some a -> a.automaton | None -> automaton
  in
  let extra =
    match analysis with Some a -> a.filter_extras | None -> []
  in
  let strong = Event_filter.make ~extra p Event_filter.Strong in
  {
    filter =
      (if Event_filter.effective strong then Event_filter.Strong
       else Event_filter.No_filter);
    partition = Partitioned.partition_key planning_automaton;
    precheck_constants = true;
    cases = Exclusivity.classify p;
    analysis;
  }

(* The per-variable constant clauses the plan's Strong filter tests —
   the pattern's own constant conditions conjoined with the analyzer's
   inferred extras. [Some] exactly when the plan chose [Strong], so a
   shared multi-query plan routing only clause-passing events to this
   query drops precisely the events the planned stream's own filter
   would have dropped. *)
let routing_clauses plan automaton =
  let extra =
    match plan.analysis with Some a -> a.filter_extras | None -> []
  in
  Event_filter.strong_clauses ~extra (Automaton.pattern automaton)

let options_with plan options =
  {
    options with
    Engine.filter = plan.filter;
    filter_extras =
      (match plan.analysis with Some a -> a.filter_extras | None -> []);
    precheck_constants = plan.precheck_constants;
  }

(* The plan's pruned automaton replaces the caller's only when it stems
   from the same pattern — a plan reused across automata falls back to
   the automaton it is given. *)
let effective_automaton plan automaton =
  match plan.analysis with
  | Some a when Automaton.pattern a.automaton == Automaton.pattern automaton ->
      a.automaton
  | Some _ | None -> automaton

(* Incremental execution under a plan: the partitioned stream already
   embeds the single-pool fallback, so the planned stream is a
   partitioned stream with the plan's levers layered onto the options
   and the plan's (precomputed) partition decision. *)

type stream = { plan : t; inner : Partitioned.stream }

let create_with ?(options = Engine.default_options) plan automaton =
  {
    plan;
    inner =
      Partitioned.create ~options:(options_with plan options)
        ~key:plan.partition
        (effective_automaton plan automaton);
  }

let create ?options automaton = create_with ?options (plan automaton) automaton

let plan_of st = st.plan

let feed st e = Partitioned.feed st.inner e

let feed_batch st es = Partitioned.feed_batch st.inner es

let close st = Partitioned.close st.inner

let emitted st = Partitioned.emitted st.inner

let population st = Partitioned.population st.inner

let metrics st = Partitioned.metrics st.inner

let execute ?(options = Engine.default_options) plan automaton events =
  let st = create_with ~options plan automaton in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let matches =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy
        (Automaton.pattern automaton) raw
    else raw
  in
  { Engine.matches; raw; metrics = metrics st }

let run ?options automaton events =
  execute ?options (plan automaton) automaton events

let run_relation ?options automaton relation =
  run ?options automaton (Ses_event.Relation.to_seq relation)

let describe plan =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Format.asprintf "event filter: %a\n" Event_filter.pp_mode plan.filter);
  (match plan.partition with
  | Some _ -> Buffer.add_string buf "partitioning: per key value\n"
  | None -> Buffer.add_string buf "partitioning: not applicable\n");
  Buffer.add_string buf
    (Printf.sprintf "constant pre-check: %b\n" plan.precheck_constants);
  (* Analysis lines appear only when the analyzer changed something, so
     the description of an already-clean plan is unaffected by whether
     an analyzer is registered. *)
  (match plan.analysis with
  | None -> ()
  | Some a ->
      if a.never_matches then
        Buffer.add_string buf "analysis: pattern can never match\n";
      if a.pruned_transitions > 0 then
        Buffer.add_string buf
          (Printf.sprintf "analysis: pruned %d dead transition%s, %d state%s\n"
             a.pruned_transitions
             (if a.pruned_transitions = 1 then "" else "s")
             a.pruned_states
             (if a.pruned_states = 1 then "" else "s"));
      let n_extras = List.length a.filter_extras in
      if n_extras > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "analysis: inferred filter constraints for %d variable%s\n"
             n_extras
             (if n_extras = 1 then "" else "s")));
  List.iteri
    (fun i case ->
      Buffer.add_string buf
        (Format.asprintf "V%d: %a\n" (i + 1) Exclusivity.pp_case case))
    plan.cases;
  Buffer.contents buf
