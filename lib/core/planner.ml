open Ses_pattern

type t = {
  filter : Event_filter.mode;
  partition : Ses_event.Schema.Field.t option;
  precheck_constants : bool;
  cases : Exclusivity.case list;
}

let plan automaton =
  let p = Automaton.pattern automaton in
  let strong = Event_filter.make p Event_filter.Strong in
  {
    filter =
      (if Event_filter.effective strong then Event_filter.Strong
       else Event_filter.No_filter);
    partition = Partitioned.partition_key automaton;
    precheck_constants = true;
    cases = Exclusivity.classify p;
  }

let execute ?(options = Engine.default_options) plan automaton events =
  let options =
    {
      options with
      Engine.filter = plan.filter;
      precheck_constants = plan.precheck_constants;
    }
  in
  match plan.partition with
  | Some _ -> Partitioned.run ~options automaton events
  | None -> Engine.run ~options automaton events

let run ?options automaton events =
  execute ?options (plan automaton) automaton events

let run_relation ?options automaton relation =
  run ?options automaton (Ses_event.Relation.to_seq relation)

let describe plan =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Format.asprintf "event filter: %a\n" Event_filter.pp_mode plan.filter);
  (match plan.partition with
  | Some _ -> Buffer.add_string buf "partitioning: per key value\n"
  | None -> Buffer.add_string buf "partitioning: not applicable\n");
  Buffer.add_string buf
    (Printf.sprintf "constant pre-check: %b\n" plan.precheck_constants);
  List.iteri
    (fun i case ->
      Buffer.add_string buf
        (Format.asprintf "V%d: %a\n" (i + 1) Exclusivity.pp_case case))
    plan.cases;
  Buffer.contents buf
