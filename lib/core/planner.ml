open Ses_pattern

type analysis = {
  automaton : Automaton.t;
  filter_extras :
    (int * (Ses_event.Schema.Field.t * Ses_event.Predicate.op * Ses_event.Value.t) list)
    list;
  domains :
    (int * (Ses_event.Schema.Field.t * Ses_event.Predicate.Domain.t) list) list;
      (** Per variable id, the analyzer's narrowing of each field any
          binding of the variable is guaranteed to satisfy. Non-top
          entries only. *)
  pruned_transitions : int;
  pruned_states : int;
  never_matches : bool;
}

(* The static analyzer lives in [Ses_analysis], which depends on this
   library; it injects itself here (like the brute-force baseline's
   executor registration) so planning picks up pruning and inferred
   filter constraints whenever the analyzer is linked and registered. *)
let analyzer : (Automaton.t -> analysis) option ref = ref None

let set_analyzer f = analyzer := Some f

let clear_analyzer () = analyzer := None

let analyze automaton = Option.map (fun f -> f automaton) !analyzer

type t = {
  filter : Event_filter.mode;
  partition : Ses_event.Schema.Field.t option;
  precheck_constants : bool;
  cases : Exclusivity.case list;
  analysis : analysis option;
}

let plan automaton =
  let p = Automaton.pattern automaton in
  let analysis = analyze automaton in
  let planning_automaton =
    match analysis with Some a -> a.automaton | None -> automaton
  in
  let extra =
    match analysis with Some a -> a.filter_extras | None -> []
  in
  let strong = Event_filter.make ~extra p Event_filter.Strong in
  {
    filter =
      (if Event_filter.effective strong then Event_filter.Strong
       else Event_filter.No_filter);
    partition = Partitioned.partition_key planning_automaton;
    precheck_constants = true;
    cases = Exclusivity.classify p;
    analysis;
  }

(* ------------------------------------------------------------------ *)
(* Access paths: full scan vs index-probe-then-union.                  *)
(* ------------------------------------------------------------------ *)

type probe = {
  probe_var : int;
  probe_var_name : string;
  probe_field : int;
  probe_attr_name : string;
  probe_keys : Ses_event.Value.t list option;
  probe_domain : Ses_event.Predicate.Domain.t;
  probe_residual :
    (Ses_event.Schema.Field.t * Ses_event.Predicate.op * Ses_event.Value.t) list;
  probe_required : bool;
  probe_estimate : int;
}

type access =
  | Scan of string
  | Index_probe of { probes : probe list; estimate : int; rows : int }

type access_mode = [ `Auto | `Scan | `Index ]

let access_mode_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Ok `Auto
  | "scan" -> Ok `Scan
  | "index" -> Ok `Index
  | other ->
      Error
        (Printf.sprintf "unknown access mode %S (expected auto, scan or index)"
           other)

let access_mode_name = function
  | `Auto -> "auto"
  | `Scan -> "scan"
  | `Index -> "index"

(* The analyzer's narrowing of a variable's field, when registered. *)
let analysis_domain plan v field =
  match plan.analysis with
  | None -> None
  | Some a ->
      Option.bind (List.assoc_opt v a.domains) (fun fields ->
          Option.map snd
            (List.find_opt
               (fun (f, _) -> Ses_event.Schema.Field.equal f field)
               fields))

(* Estimated rows whose attribute falls in [dom], from the histogram:
   exact counts for listed values, plus everything outside the histogram
   when it is incomplete (any of those rows might fall in [dom]). *)
let estimate_domain stats name dom =
  let module D = Ses_event.Predicate.Domain in
  match Ses_event.Stats.find stats name with
  | None -> Ses_event.Stats.rows stats
  | Some a ->
      let in_hist =
        List.fold_left
          (fun acc (v, c) -> if D.mem dom v then acc + c else acc)
          0 a.Ses_event.Stats.histogram
      in
      if a.Ses_event.Stats.complete then in_hist
      else
        in_hist
        + (Ses_event.Stats.rows stats - a.Ses_event.Stats.histogram_rows)

(* Per variable: the best single-attribute index probe covering its
   constant clause, or the reason none exists. The full clause rides
   along as [probe_residual] and is re-checked on every posting, so the
   probe attribute only has to be a sound over-approximation. *)
let probe_of_var ~stats plan schema ~required v ~var_name clause =
  let module D = Ses_event.Predicate.Domain in
  let module F = Ses_event.Schema.Field in
  let attr_atoms =
    List.filter_map
      (fun (f, op, c) ->
        match f with F.Attr i -> Some (i, (op, c)) | F.Timestamp -> None)
      clause
  in
  if attr_atoms = [] then
    Error
      (Printf.sprintf "variable %d is constrained only on the timestamp" v)
  else begin
    let fields = List.sort_uniq Int.compare (List.map fst attr_atoms) in
    let candidates =
      List.map
        (fun i ->
          let ty = Ses_event.Schema.type_of schema i in
          let atoms =
            List.filter_map
              (fun (j, a) -> if j = i then Some a else None)
              attr_atoms
          in
          let dom = D.of_atoms ty atoms in
          let dom =
            match analysis_domain plan v (F.Attr i) with
            | Some d -> D.inter dom d
            | None -> dom
          in
          let name = Ses_event.Schema.name_of schema i in
          let keys, estimate =
            if D.is_empty dom then (Some [], 0)
            else
              match D.constant dom with
              | Some c ->
                  ( Some [ c ],
                    Option.value
                      ~default:(Ses_event.Stats.rows stats)
                      (Ses_event.Stats.estimate_eq stats name c) )
              | None -> (None, estimate_domain stats name dom)
          in
          {
            probe_var = v;
            probe_var_name = var_name;
            probe_field = i;
            probe_attr_name = name;
            probe_keys = keys;
            probe_domain = dom;
            probe_residual = clause;
            probe_required = required;
            probe_estimate = estimate;
          })
        fields
    in
    Ok
      (List.fold_left
         (fun best p ->
           if p.probe_estimate < best.probe_estimate then p else best)
         (List.hd candidates) (List.tl candidates))
  end

let choose_access ?(mode = `Auto) ~stats plan automaton =
  let p = Automaton.pattern automaton in
  let schema = Pattern.schema p in
  let extras =
    match plan.analysis with Some a -> a.filter_extras | None -> []
  in
  let n_pos = Pattern.n_vars p in
  let n_all = n_pos + List.length (Pattern.negations p) in
  let rows = Ses_event.Stats.rows stats in
  (* Candidate soundness needs every variable — negated ones included —
     to carry a constant clause: the candidate union is then exactly the
     events the Strong filter keeps (see Event_filter). *)
  let rec collect acc v =
    if v >= n_all then Ok (List.rev acc)
    else
      let clause =
        Pattern.constant_conditions_on p v
        @ Option.value ~default:[] (List.assoc_opt v extras)
      in
      if clause = [] then
        Error
          (Printf.sprintf "variable %s has no constant condition"
             (Pattern.var_name p v))
      else
        match
          probe_of_var ~stats plan schema ~required:(v < n_pos) v
            ~var_name:(Pattern.var_name p v) clause
        with
        | Error _ as e -> e
        | Ok probe -> collect (probe :: acc) (v + 1)
  in
  match mode with
  | `Scan -> Scan "forced by caller"
  | (`Auto | `Index) as mode -> (
      match collect [] 0 with
      | Error reason -> Scan reason
      | Ok probes ->
          let estimate =
            List.fold_left (fun acc p -> acc + p.probe_estimate) 0 probes
          in
          if mode = `Index then Index_probe { probes; estimate; rows }
          else if
            (* Auto: probing pays off when the candidate union is clearly
               sparser than the relation — the index path re-sorts and
               τ-clips candidates, so demand at least a 2× margin. *)
            rows > 0 && 2 * estimate <= rows
          then Index_probe { probes; estimate; rows }
          else
            Scan
              (Printf.sprintf
                 "estimated %d candidate rows of %d: not selective enough"
                 estimate rows))

(* The per-variable constant clauses the plan's Strong filter tests —
   the pattern's own constant conditions conjoined with the analyzer's
   inferred extras. [Some] exactly when the plan chose [Strong], so a
   shared multi-query plan routing only clause-passing events to this
   query drops precisely the events the planned stream's own filter
   would have dropped. *)
let routing_clauses plan automaton =
  let extra =
    match plan.analysis with Some a -> a.filter_extras | None -> []
  in
  Event_filter.strong_clauses ~extra (Automaton.pattern automaton)

let options_with plan options =
  {
    options with
    Engine.filter = plan.filter;
    filter_extras =
      (match plan.analysis with Some a -> a.filter_extras | None -> []);
    precheck_constants = plan.precheck_constants;
  }

(* The plan's pruned automaton replaces the caller's only when it stems
   from the same pattern — a plan reused across automata falls back to
   the automaton it is given. *)
let effective_automaton plan automaton =
  match plan.analysis with
  | Some a when Automaton.pattern a.automaton == Automaton.pattern automaton ->
      a.automaton
  | Some _ | None -> automaton

(* Incremental execution under a plan: the partitioned stream already
   embeds the single-pool fallback, so the planned stream is a
   partitioned stream with the plan's levers layered onto the options
   and the plan's (precomputed) partition decision. *)

type stream = { plan : t; inner : Partitioned.stream }

let create_with ?(options = Engine.default_options) plan automaton =
  {
    plan;
    inner =
      Partitioned.create ~options:(options_with plan options)
        ~key:plan.partition
        (effective_automaton plan automaton);
  }

let create ?options automaton = create_with ?options (plan automaton) automaton

let plan_of st = st.plan

let feed st e = Partitioned.feed st.inner e

let feed_batch st es = Partitioned.feed_batch st.inner es

let close st = Partitioned.close st.inner

let emitted st = Partitioned.emitted st.inner

let population st = Partitioned.population st.inner

let metrics st = Partitioned.metrics st.inner

let execute ?(options = Engine.default_options) plan automaton events =
  let st = create_with ~options plan automaton in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let matches =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy
        (Automaton.pattern automaton) raw
    else raw
  in
  { Engine.matches; raw; metrics = metrics st }

let run ?options automaton events =
  execute ?options (plan automaton) automaton events

let run_relation ?options automaton relation =
  run ?options automaton (Ses_event.Relation.to_seq relation)

let describe_access ?actual access =
  let buf = Buffer.create 128 in
  (match access with
  | Scan reason ->
      Buffer.add_string buf (Printf.sprintf "access path: full scan (%s)\n" reason)
  | Index_probe { probes; estimate; rows } ->
      Buffer.add_string buf
        (Printf.sprintf "access path: index probes (estimated %d of %d rows)\n"
           estimate rows);
      List.iter
        (fun pr ->
          let keys =
            match pr.probe_keys with
            | Some [ c ] -> Ses_event.Value.to_string c
            | Some cs ->
                Printf.sprintf "%d keys" (List.length cs)
            | None ->
                Format.asprintf "keys in %a" Ses_event.Predicate.Domain.pp
                  pr.probe_domain
          in
          Buffer.add_string buf
            (Printf.sprintf "  %s: index(%s) = %s, estimated %d row%s%s\n"
               pr.probe_var_name pr.probe_attr_name keys pr.probe_estimate
               (if pr.probe_estimate = 1 then "" else "s")
               (if pr.probe_required then "" else " (guard only)")))
        probes);
  (match actual with
  | Some n ->
      Buffer.add_string buf
        (Printf.sprintf "  actual candidates after residual + tau clip: %d\n" n)
  | None -> ());
  Buffer.contents buf

let describe ?access plan =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Format.asprintf "event filter: %a\n" Event_filter.pp_mode plan.filter);
  (match access with
  | Some a -> Buffer.add_string buf (describe_access a)
  | None -> ());
  (match plan.partition with
  | Some _ -> Buffer.add_string buf "partitioning: per key value\n"
  | None -> Buffer.add_string buf "partitioning: not applicable\n");
  Buffer.add_string buf
    (Printf.sprintf "constant pre-check: %b\n" plan.precheck_constants);
  (* Analysis lines appear only when the analyzer changed something, so
     the description of an already-clean plan is unaffected by whether
     an analyzer is registered. *)
  (match plan.analysis with
  | None -> ()
  | Some a ->
      if a.never_matches then
        Buffer.add_string buf "analysis: pattern can never match\n";
      if a.pruned_transitions > 0 then
        Buffer.add_string buf
          (Printf.sprintf "analysis: pruned %d dead transition%s, %d state%s\n"
             a.pruned_transitions
             (if a.pruned_transitions = 1 then "" else "s")
             a.pruned_states
             (if a.pruned_states = 1 then "" else "s"));
      let n_extras = List.length a.filter_extras in
      if n_extras > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "analysis: inferred filter constraints for %d variable%s\n"
             n_extras
             (if n_extras = 1 then "" else "s")));
  List.iteri
    (fun i case ->
      Buffer.add_string buf
        (Format.asprintf "V%d: %a\n" (i + 1) Exclusivity.pp_case case))
    plan.cases;
  Buffer.contents buf
