open Ses_event
open Ses_pattern

type store_kind =
  | Flat
  | Indexed

type options = {
  filter : Event_filter.mode;
  filter_extras :
    (int * (Schema.Field.t * Predicate.op * Value.t) list) list;
  policy : Substitution.policy;
  finalize : bool;
  precheck_constants : bool;
  store : store_kind;
  domains : int;
  telemetry : Telemetry.sink;
}

let default_options =
  {
    filter = Event_filter.No_filter;
    filter_extras = [];
    policy = Substitution.Operational;
    finalize = true;
    precheck_constants = true;
    store = Indexed;
    domains = 1;
    telemetry = None;
  }

(* A transition with its condition set split into the constant atoms
   (v.A phi C, instance-independent) and the rest. With
   [precheck_constants] the constant atoms are evaluated once per input
   event instead of once per instance. *)
type prepared_transition = {
  transition : Automaton.transition;
  const_conds : Condition.t list;
  var_conds : Condition.t list;
}

(* An automaton instance (Definition 4): current state plus match buffer.
   Bindings are kept newest-first; [first_ts] is the timestamp of the
   earliest bound event (the first one, since events arrive in order).
   [counts] caches the number of bindings per variable so quantifier
   checks are O(1); it is copied on extension, never mutated in place.
   [id] is a per-stream creation stamp: it makes the instance-store
   bucket order (first_ts, id) total and deterministic. *)
type instance = {
  id : int;
  state : Varset.t;
  bindings : Substitution.binding list;
  counts : int array;
  first_ts : Time.t;
}

(* A negation guard: the variable whose occurrence kills, with its
   conditions split like a transition's so the constant part can veto a
   whole bucket once per event. *)
type guard = {
  neg_var : int;
  guard_conds : Condition.t list;
  guard_consts : Condition.t list;
}

type observation =
  | Created of Event.t
  | Took of {
      event : Event.t;
      transition : Automaton.transition;
      buffer : Substitution.t;
    }
  | Ignored of {
      event : Event.t;
      state : Varset.t;
      buffer : Substitution.t;
    }
  | Expired of {
      event : Event.t;
      accepting : bool;
      buffer : Substitution.t;
    }
  | Killed of {
      event : Event.t;
      state : Varset.t;
      buffer : Substitution.t;
    }
  | Emitted of Substitution.t

(* The two population representations behind the [store] option: the
   reference flat list (the paper's Ω, scanned in full per event) and the
   state-indexed store. *)
type flat_pool = { mutable omega : instance list }

type population =
  | Omega of flat_pool
  | Store of instance Instance_store.t

(* Telemetry handles, resolved once per stream so an enabled probe is a
   field read, and a disabled stream pays one branch on [probes]. *)
type probes = {
  filter_span : Telemetry.Span.t;
  transition_span : Telemetry.Span.t;
  expiry_span : Telemetry.Span.t;
  bucket_scan : Telemetry.Histogram.t;
  population_gauge : Telemetry.Gauge.t;
}

type stream = {
  automaton : Automaton.t;
  options : options;
  filter : Event_filter.t;
  max_counts : int option array;  (** per-variable quantifier maxima *)
  strict_minima : (int * int) list;
      (** (variable, min) for variables whose quantifier requires more than
          one binding; checked at acceptance *)
  negation_guards : (Varset.t * guard list) list;
      (** per boundary: the exact state an instance sits in between the
          two sets, and the guards armed there — an instance in that
          state is killed when an event satisfies all conditions of some
          guard *)
  prepared : (Varset.t, prepared_transition list) Hashtbl.t;
  active : (Varset.t, prepared_transition list) Hashtbl.t;
      (** per-event cache: transitions whose constant atoms the current
          event satisfies; cleared at the start of every [feed] *)
  states : Varset.t list;  (** automaton states, ascending — bucket order *)
  fresh : instance;
      (** the start-state instance opened for every event; it is immutable
          and never stored, so one allocation serves the whole stream *)
  pop : population;
  probes : probes option;
  mutable next_id : int;
  mutable emissions : Substitution.t list;  (** newest first *)
  mutable last_ts : Time.t option;
  mutable observer : (observation -> unit) option;
  m : Metrics.t;
}

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
}

let prepare automaton =
  let prepared = Hashtbl.create 32 in
  List.iter
    (fun q ->
      let trs =
        List.map
          (fun (tr : Automaton.transition) ->
            let const_conds, var_conds =
              List.partition Condition.is_constant tr.conds
            in
            { transition = tr; const_conds; var_conds })
          (Automaton.outgoing automaton q)
      in
      Hashtbl.replace prepared q trs)
    (Automaton.states automaton);
  prepared

let create ?(options = default_options) automaton =
  let p = Automaton.pattern automaton in
  {
    automaton;
    options;
    filter = Event_filter.make ~extra:options.filter_extras p options.filter;
    max_counts =
      Array.init (Pattern.n_vars p) (fun v -> Pattern.max_count p v);
    strict_minima =
      List.filter_map
        (fun v ->
          let m = Pattern.min_count p v in
          if m > 1 then Some (v, m) else None)
        (List.init (Pattern.n_vars p) Fun.id);
    negation_guards =
      (let prefix b =
         Varset.of_list
           (List.concat_map (Pattern.set_vars p) (List.init (b + 1) Fun.id))
       in
       let boundaries =
         List.sort_uniq Int.compare (List.map fst (Pattern.negations p))
       in
       List.map
         (fun b ->
           ( prefix b,
             List.filter_map
               (fun (b', nv) ->
                 if b' = b then
                   let conds = Pattern.conditions_on p nv in
                   Some
                     {
                       neg_var = nv;
                       guard_conds = conds;
                       guard_consts = List.filter Condition.is_constant conds;
                     }
                 else None)
               (Pattern.negations p) ))
         boundaries);
    prepared = prepare automaton;
    active = Hashtbl.create 32;
    states = Automaton.states automaton;
    fresh =
      {
        id = 0;
        state = Automaton.start automaton;
        bindings = [];
        counts = Array.make (Pattern.n_vars p) 0;
        first_ts = 0;
      };
    pop =
      (match options.store with
      | Flat -> Omega { omega = [] }
      | Indexed ->
          Store
            (Instance_store.create
               ~ts_of:(fun inst -> inst.first_ts)
               ~seq_of:(fun inst -> inst.id)
               ()));
    probes =
      Option.map
        (fun tl ->
          {
            filter_span = Telemetry.span tl "filter";
            transition_span = Telemetry.span tl "transition";
            expiry_span = Telemetry.span tl "expiry";
            bucket_scan = Telemetry.histogram tl "store.bucket_scan";
            population_gauge = Telemetry.gauge tl "population";
          })
        options.telemetry;
    next_id = 1;
    emissions = [];
    last_ts = None;
    observer = None;
    m = Metrics.create ();
  }

let set_observer st observer = st.observer <- observer

let observe st obs =
  match st.observer with None -> () | Some f -> f obs

let substitution_of inst = List.rev inst.bindings

let is_fresh inst = inst.bindings = []

let expired tau inst e =
  (not (is_fresh inst)) && Time.span (Event.ts e) inst.first_ts > tau

let const_holds c e =
  (* Constant conditions mention exactly one variable; binding it to [e]
     needs no buffer lookup. *)
  Condition.holds_binding c ~var:c.Condition.var ~event:e (fun _ -> [])

(* Transitions of state [q] worth trying on event [e]. Without the
   constant pre-check this is every outgoing transition; with it,
   transitions whose constant atoms [e] fails are pruned once per event
   and shared by all instances in [q]. *)
let candidate_transitions st q e =
  if not st.options.precheck_constants then
    Option.value ~default:[] (Hashtbl.find_opt st.prepared q)
  else
    match Hashtbl.find_opt st.active q with
    | Some trs -> trs
    | None ->
        let trs =
          List.filter
            (fun pt -> List.for_all (fun c -> const_holds c e) pt.const_conds)
            (Option.value ~default:[] (Hashtbl.find_opt st.prepared q))
        in
        Hashtbl.replace st.active q trs;
        trs

(* Whether some negation guard armed at state [q] could kill on event
   [e]: at least one guard whose constant atoms [e] satisfies. Shared per
   bucket per event by the indexed store's skip decision. *)
let guards_may_fire st q e =
  List.exists
    (fun (prefix, guards) ->
      Varset.equal q prefix
      && List.exists
           (fun g -> List.for_all (fun c -> const_holds c e) g.guard_consts)
           guards)
    st.negation_guards

(* ConsumeEvent (Algorithm 2): successors of [inst] on event [e].
   Returns the physically identical [ [inst] ] when the instance survives
   unchanged, which lets the indexed feed keep untouched survivors in
   bucket order without re-sorting. *)
let consume st inst e =
  let lookup v =
    List.rev
      (List.filter_map
         (fun (v', ev) -> if v' = v then Some ev else None)
         inst.bindings)
  in
  let precheck = st.options.precheck_constants in
  let fired =
    List.filter_map
      (fun pt ->
        let tr = pt.transition in
        (* Quantifier maximum: a loop must not bind beyond max. The
           per-instance binding counts make this an array read. *)
        let below_max =
          match st.max_counts.(tr.var) with
          | None -> true
          | Some m ->
              (not (Varset.mem tr.var tr.src)) || inst.counts.(tr.var) < m
        in
        let remaining = if precheck then pt.var_conds else tr.conds in
        let ok =
          below_max
          && List.for_all
               (fun c -> Condition.holds_binding c ~var:tr.var ~event:e lookup)
               remaining
        in
        if not ok then None
        else begin
          Metrics.on_transition st.m;
          Metrics.on_instance_created st.m;
          let counts = Array.copy inst.counts in
          counts.(tr.var) <- counts.(tr.var) + 1;
          let id = st.next_id in
          st.next_id <- id + 1;
          let successor =
            {
              id;
              state = tr.tgt;
              bindings = (tr.var, e) :: inst.bindings;
              counts;
              first_ts = (if is_fresh inst then Event.ts e else inst.first_ts);
            }
          in
          observe st
            (Took { event = e; transition = tr; buffer = substitution_of successor });
          Some successor
        end)
      (candidate_transitions st inst.state e)
  in
  match fired with
  | [] ->
      if is_fresh inst then []
      else begin
        let killed =
          List.exists
            (fun (prefix, guards) ->
              Varset.equal inst.state prefix
              && List.exists
                   (fun g ->
                     List.for_all
                       (fun c ->
                         Condition.holds_binding c ~var:g.neg_var ~event:e
                           lookup)
                       g.guard_conds)
                   guards)
            st.negation_guards
        in
        if killed then begin
          Metrics.on_killed st.m;
          observe st
            (Killed { event = e; state = inst.state; buffer = substitution_of inst });
          []
        end
        else begin
          observe st
            (Ignored
               { event = e; state = inst.state; buffer = substitution_of inst });
          [ inst ]
        end
      end
  | _ :: _ -> fired

let minima_satisfied st inst =
  List.for_all (fun (v, m) -> inst.counts.(v) >= m) st.strict_minima

let emit st inst =
  let subst = substitution_of inst in
  st.emissions <- subst :: st.emissions;
  Metrics.on_match st.m;
  observe st (Emitted subst);
  subst

let population st =
  match st.pop with
  | Omega o -> List.length o.omega
  | Store s -> Instance_store.size s

(* Algorithm 1's loop body over the flat list: the reference path, kept
   verbatim for differential testing and for benchmarking the store
   against it. *)
let feed_flat st o e =
  let tau = Automaton.tau st.automaton in
  let accept = Automaton.accept st.automaton in
  let completed = ref [] in
  let survivors = ref [] in
  (* The flat loop interleaves expiry and consumption per instance, so
     one transition span covers the whole sweep (the probe map in
     docs/architecture.md notes the asymmetry with the indexed path). *)
  let tok =
    match st.probes with
    | None -> 0
    | Some p -> Telemetry.Span.start p.transition_span
  in
  List.iter
    (fun inst ->
      if expired tau inst e then begin
        Metrics.on_expired st.m;
        let accepting =
          Varset.equal inst.state accept && minima_satisfied st inst
        in
        observe st
          (Expired { event = e; accepting; buffer = substitution_of inst });
        if accepting then completed := emit st inst :: !completed
      end
      else survivors := List.rev_append (consume st inst e) !survivors)
    (st.fresh :: o.omega);
  o.omega <- List.rev !survivors;
  let n = List.length o.omega in
  Metrics.sample_population st.m n;
  (match st.probes with
  | None -> ()
  | Some p ->
      Telemetry.Span.stop p.transition_span tok;
      Telemetry.Gauge.observe p.population_gauge n);
  List.rev !completed

(* The same loop over the state-indexed store. Buckets are visited in
   ascending state order; a bucket is only walked when the event could
   affect it — some transition survived the constant pre-check, some
   negation guard could fire, or an observer wants the per-instance
   [Ignored] narration. Expired instances are popped off the sorted
   prefix without touching the rest. *)
let feed_indexed st store e =
  let tau = Automaton.tau st.automaton in
  let accept = Automaton.accept st.automaton in
  let completed = ref [] in
  let stage_successors insts =
    List.iter (fun succ -> Instance_store.stage store succ.state succ) insts
  in
  stage_successors (consume st st.fresh e);
  List.iter
    (fun q ->
      if Instance_store.bucket_size store q > 0 then begin
        let tok =
          match st.probes with
          | None -> 0
          | Some p -> Telemetry.Span.start p.expiry_span
        in
        let dead =
          Instance_store.pop_expired store q ~expired:(fun inst ->
              expired tau inst e)
        in
        (match st.probes with
        | None -> ()
        | Some p -> Telemetry.Span.stop p.expiry_span tok);
        List.iter
          (fun inst ->
            Metrics.on_expired st.m;
            let accepting =
              Varset.equal q accept && minima_satisfied st inst
            in
            observe st
              (Expired { event = e; accepting; buffer = substitution_of inst });
            if accepting then completed := emit st inst :: !completed)
          dead;
        let scan =
          candidate_transitions st q e <> []
          || guards_may_fire st q e
          || st.observer <> None
        in
        if scan && Instance_store.bucket_size store q > 0 then begin
          let tok =
            match st.probes with
            | None -> 0
            | Some p ->
                Telemetry.Histogram.observe p.bucket_scan
                  (Instance_store.bucket_size store q);
                Telemetry.Span.start p.transition_span
          in
          let insts = Instance_store.take_all store q in
          let stayed =
            List.filter
              (fun inst ->
                match consume st inst e with
                | [ s ] when s == inst -> true
                | succs ->
                    stage_successors succs;
                    false)
              insts
          in
          Instance_store.put_back store q stayed;
          match st.probes with
          | None -> ()
          | Some p -> Telemetry.Span.stop p.transition_span tok
        end
      end)
    st.states;
  Instance_store.commit store;
  let n = Instance_store.size store in
  Metrics.sample_population st.m n;
  (match st.probes with
  | None -> ()
  | Some p -> Telemetry.Gauge.observe p.population_gauge n);
  List.rev !completed

let feed st e =
  (match st.last_ts with
  | Some t when Time.( <. ) (Event.ts e) t ->
      invalid_arg "Engine.feed: events out of chronological order"
  | Some _ | None -> ());
  st.last_ts <- Some (Event.ts e);
  Metrics.on_event st.m;
  let kept =
    match st.probes with
    | None -> Event_filter.keep st.filter e
    | Some p ->
        let tok = Telemetry.Span.start p.filter_span in
        let kept = Event_filter.keep st.filter e in
        Telemetry.Span.stop p.filter_span tok;
        kept
  in
  if not kept then begin
    Metrics.on_filtered st.m;
    []
  end
  else begin
    Hashtbl.reset st.active;
    Metrics.on_instance_created st.m;
    observe st (Created e);
    match st.pop with
    | Omega o -> feed_flat st o e
    | Store s -> feed_indexed st s e
  end

let close st =
  let accept = Automaton.accept st.automaton in
  let flush insts =
    List.filter_map
      (fun inst ->
        if Varset.equal inst.state accept && minima_satisfied st inst then
          Some (emit st inst)
        else None)
      insts
  in
  match st.pop with
  | Omega o ->
      let flushed = flush (List.rev o.omega) in
      o.omega <- [];
      flushed
  | Store s ->
      (* Only the accepting bucket can flush; everything else just dies. *)
      let flushed = flush (Instance_store.take_all s accept) in
      Instance_store.clear s;
      flushed

let population_by_state st =
  let counts =
    match st.pop with
    | Omega o ->
        let table = Hashtbl.create 16 in
        List.iter
          (fun inst ->
            let n =
              Option.value ~default:0 (Hashtbl.find_opt table inst.state)
            in
            Hashtbl.replace table inst.state (n + 1))
          o.omega;
        Hashtbl.fold (fun q n acc -> (q, n) :: acc) table []
    | Store s ->
        Instance_store.fold_buckets
          (fun q insts acc -> (q, List.length insts) :: acc)
          s []
  in
  (* Descending by count; equal counts ordered by state so the listing is
     deterministic. *)
  List.sort
    (fun (qa, a) (qb, b) ->
      let c = Int.compare b a in
      if c <> 0 then c else Varset.compare qa qb)
    counts

let metrics st = Metrics.snapshot st.m

let emitted st = List.rev st.emissions

let run ?(options = default_options) automaton events =
  let st = create ~options automaton in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let finalize () =
    if options.finalize then
      Substitution.finalize ~policy:options.policy
        (Automaton.pattern automaton) raw
    else raw
  in
  let matches =
    match options.telemetry with
    | None -> finalize ()
    | Some tl -> Telemetry.Span.record (Telemetry.span tl "finalize") finalize
  in
  { matches; raw; metrics = Metrics.snapshot st.m }

let run_relation ?options automaton relation =
  run ?options automaton (Relation.to_seq relation)
